// Quickstart: build a small belief network, observe a node, run loopy BP
// through the Credo engine, and read the posteriors.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"credo/internal/bp"
	"credo/internal/core"
	"credo/internal/graph"
)

func main() {
	// A 5-node chain of binary variables: rumor sources influence their
	// neighbours through a "stay the same with probability 0.85" coupling.
	b := graph.NewBuilder(2)
	if err := b.SetShared(graph.DiagonalJointMatrix(2, 0.85)); err != nil {
		log.Fatal(err)
	}
	ids := make([]int32, 5)
	for i := range ids {
		id, err := b.AddNamedNode(fmt.Sprintf("person%d", i), nil) // uniform prior
		if err != nil {
			log.Fatal(err)
		}
		ids[i] = id
	}
	for i := 0; i+1 < len(ids); i++ {
		// Undirected acquaintance: influence flows both ways.
		if err := b.AddUndirected(ids[i], ids[i+1], nil); err != nil {
			log.Fatal(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// person0 is observed spreading the rumor (state 1).
	if err := g.Observe(ids[0], 1); err != nil {
		log.Fatal(err)
	}

	// The engine picks an implementation from the graph's metadata; for a
	// 5-node graph that is C Edge.
	eng := core.Engine{Options: bp.Options{WorkQueue: true}}
	rep, err := eng.Run(g)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("implementation: %s, iterations: %d, converged: %v\n",
		rep.Implementation, rep.Result.Iterations, rep.Result.Converged)
	for _, id := range ids {
		bel := g.Belief(id)
		fmt.Printf("%-8s believes the rumor with probability %.3f\n", g.Names[id], bel[1])
	}
}
