// The family-out problem of the paper's Figure 1, built programmatically:
// the family may be out; if so the light may be on and the dog is likely
// out; the dog may also be out because of a bowel problem; an audible bark
// hints the dog is out.
//
// The example runs exact two-pass BP (the network is a tree), checks it
// against brute-force enumeration, and then conditions on evidence —
// reproducing the posterior-update story of paper §2.1.
//
//	go run ./examples/familyout
package main

import (
	"fmt"
	"log"

	"credo/internal/bp"
	"credo/internal/graph"
)

// state indices: 0 = true, 1 = false.
const (
	sTrue  = 0
	sFalse = 1
)

func buildNetwork() (*graph.Graph, map[string]int32, error) {
	b := graph.NewBuilder(2)
	ids := map[string]int32{}
	add := func(name string, prior []float32) error {
		id, err := b.AddNamedNode(name, prior)
		ids[name] = id
		return err
	}
	// Priors from Figure 1: p(fo)=0.15, p(bp)=0.01; internal nodes start
	// uninformative.
	if err := add("family-out", []float32{0.15, 0.85}); err != nil {
		return nil, nil, err
	}
	if err := add("bowel-problem", []float32{0.01, 0.99}); err != nil {
		return nil, nil, err
	}
	if err := add("light-on", nil); err != nil {
		return nil, nil, err
	}
	if err := add("dog-out", nil); err != nil {
		return nil, nil, err
	}
	if err := add("hear-bark", nil); err != nil {
		return nil, nil, err
	}

	cpt := func(pTrueGivenTrue, pTrueGivenFalse float32) *graph.JointMatrix {
		m := graph.NewJointMatrix(2, 2)
		m.Set(sTrue, sTrue, pTrueGivenTrue)
		m.Set(sTrue, sFalse, 1-pTrueGivenTrue)
		m.Set(sFalse, sTrue, pTrueGivenFalse)
		m.Set(sFalse, sFalse, 1-pTrueGivenFalse)
		return &m
	}
	// Figure 1's conditionals (dog-out's two-parent CPT becomes two
	// pairwise couplings under the paper's §2.1 MRF move).
	edges := []struct {
		src, dst string
		m        *graph.JointMatrix
	}{
		{"family-out", "light-on", cpt(0.6, 0.05)},
		{"family-out", "dog-out", cpt(0.88, 0.2)},
		{"bowel-problem", "dog-out", cpt(0.95, 0.4)},
		{"dog-out", "hear-bark", cpt(0.7, 0.01)},
	}
	for _, e := range edges {
		if err := b.AddEdge(ids[e.src], ids[e.dst], e.m); err != nil {
			return nil, nil, err
		}
	}
	g, err := b.Build()
	return g, ids, err
}

func report(g *graph.Graph, ids map[string]int32, header string) {
	fmt.Println(header)
	for _, name := range []string{"family-out", "bowel-problem", "light-on", "dog-out", "hear-bark"} {
		fmt.Printf("  p(%-13s = true) = %.4f\n", name, g.Belief(ids[name])[sTrue])
	}
}

func main() {
	g, ids, err := buildNetwork()
	if err != nil {
		log.Fatal(err)
	}

	// Exact inference on the tree, cross-checked against enumeration.
	oracle, err := bp.BruteForceMarginals(g)
	if err != nil {
		log.Fatal(err)
	}
	if err := bp.ExactTree(g); err != nil {
		log.Fatal(err)
	}
	for v := 0; v < g.NumNodes; v++ {
		diff := float64(g.Belief(int32(v))[sTrue]) - oracle[v][sTrue]
		if diff > 1e-5 || diff < -1e-5 {
			log.Fatalf("exact BP disagrees with enumeration at node %d by %g", v, diff)
		}
	}
	report(g, ids, "prior marginals (exact two-pass BP, verified against enumeration):")

	// Evidence: we come home, the light is on and we hear barking.
	g2, ids2, err := buildNetwork()
	if err != nil {
		log.Fatal(err)
	}
	if err := g2.Observe(ids2["light-on"], sTrue); err != nil {
		log.Fatal(err)
	}
	if err := g2.Observe(ids2["hear-bark"], sTrue); err != nil {
		log.Fatal(err)
	}
	if err := bp.ExactTree(g2); err != nil {
		log.Fatal(err)
	}
	report(g2, ids2, "\nposterior after observing light-on=true and hear-bark=true:")

	// The same inference via loopy BP (Algorithm 1) — the engine Credo
	// actually scales. Loopy messages travel along directed edges only,
	// so the network uses the paper's §3.3 MRF treatment: every link is
	// stored as two directed edges, letting evidence at the leaves flow
	// back up to the roots. The result is approximate but directionally
	// faithful.
	g3, ids3, err := buildUndirected()
	if err != nil {
		log.Fatal(err)
	}
	_ = g3.Observe(ids3["light-on"], sTrue)
	_ = g3.Observe(ids3["hear-bark"], sTrue)
	res := bp.RunNode(g3, bp.Options{})
	report(g3, ids3, fmt.Sprintf("\nloopy BP on the doubled-edge MRF (converged=%v in %d iterations):", res.Converged, res.Iterations))
}

// buildUndirected builds the same network with each link stored as two
// directed edges (forward CPT plus normalized transpose), the form the
// loopy engines process.
func buildUndirected() (*graph.Graph, map[string]int32, error) {
	g, ids, err := buildNetwork()
	if err != nil {
		return nil, nil, err
	}
	g2, err := g.Undirected()
	return g2, ids, err
}
