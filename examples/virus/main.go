// Virus propagation — the paper's second use case (§4): a three-state
// belief network (susceptible / infected / recovered) over a social graph.
// A handful of individuals are observed infected; belief propagation
// estimates everyone else's infection risk from the contact structure.
//
//	go run ./examples/virus
package main

import (
	"fmt"
	"log"
	"sort"

	"credo/internal/bp"
	"credo/internal/core"
	"credo/internal/gen"
	"credo/internal/graph"
)

// The three states of the use case.
const (
	susceptible = 0
	infected    = 1
	recovered   = 2
)

func main() {
	// A power-law contact network, standing in for the social graphs of
	// Table 1. Everyone starts mostly susceptible.
	const people = 5000
	contacts, err := gen.PowerLaw(people, 25000, gen.Config{
		Seed:          7,
		States:        3,
		UniformPriors: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Replace the generated coupling with an epidemiological one: a
	// contact of an infected person is likely infected or recovering; a
	// susceptible contact keeps you susceptible.
	// A susceptible or recovered contact says little about your state;
	// an infected contact is strong evidence of exposure.
	coupling := graph.NewJointMatrix(3, 3)
	for i, row := range [][3]float32{
		susceptible: {0.40, 0.28, 0.32},
		infected:    {0.15, 0.70, 0.15},
		recovered:   {0.33, 0.34, 0.33},
	} {
		for j, p := range row {
			coupling.Set(i, j, p)
		}
	}
	contacts.Shared = &coupling

	// Bias priors toward susceptibility.
	for v := 0; v < contacts.NumNodes; v++ {
		p := contacts.Prior(int32(v))
		p[susceptible], p[infected], p[recovered] = 0.90, 0.05, 0.05
	}
	contacts.ResetBeliefs()

	// The observed outbreak: the most connected individuals test
	// positive (hub seeding — the worst case for an epidemic).
	md := contacts.Stats()
	type degreed struct {
		v   int32
		out int
	}
	byDegree := make([]degreed, contacts.NumNodes)
	for v := int32(0); v < int32(contacts.NumNodes); v++ {
		byDegree[v] = degreed{v, contacts.OutDegree(v)}
	}
	sort.Slice(byDegree, func(i, j int) bool { return byDegree[i].out > byDegree[j].out })
	for _, d := range byDegree[:25] {
		if err := contacts.Observe(d.v, infected); err != nil {
			log.Fatal(err)
		}
	}

	eng := core.Engine{Options: bp.Options{WorkQueue: true}}
	rep, err := eng.Run(contacts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %d people, %d contacts (max degree %d)\n", md.NumNodes, md.NumEdges, md.MaxInDegree)
	fmt.Printf("engine: %s, %d iterations, converged=%v\n",
		rep.Implementation, rep.Result.Iterations, rep.Result.Converged)

	// Rank the population by inferred infection risk.
	type risk struct {
		person int32
		p      float32
	}
	risks := make([]risk, 0, contacts.NumNodes)
	for v := int32(0); v < int32(contacts.NumNodes); v++ {
		if contacts.Observed[v] {
			continue
		}
		risks = append(risks, risk{v, contacts.Belief(v)[infected]})
	}
	sort.Slice(risks, func(i, j int) bool { return risks[i].p > risks[j].p })

	fmt.Println("\nhighest inferred infection risk (unobserved individuals):")
	for _, r := range risks[:10] {
		b := contacts.Belief(r.person)
		fmt.Printf("  person %-6d p(infected)=%.3f  p(susceptible)=%.3f  p(recovered)=%.3f\n",
			r.person, b[infected], b[susceptible], b[recovered])
	}
	var avg float64
	for _, r := range risks {
		avg += float64(r.p)
	}
	fmt.Printf("\npopulation mean p(infected) = %.4f (baseline prior was 0.05)\n", avg/float64(len(risks)))
}
