// Image correction — the paper's third use case (§4): a lattice MRF whose
// nodes are pixels and whose beliefs range over intensity levels. A noisy
// observation seeds each pixel's prior; loopy BP pulls pixels toward their
// neighbourhood consensus, denoising the image.
//
// The example synthesizes a two-tone test pattern, corrupts it with
// impulse noise, denoises it with the per-edge engine, and reports the
// pixel error before and after.
//
//	go run ./examples/imagecorrection
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"credo/internal/bp"
	"credo/internal/gen"
)

const (
	width  = 48
	height = 24
	levels = 16 // intensity levels (a belief per level)
	noise  = 0.22
)

// pattern produces the clean test image: two tones split by a diagonal
// band plus a bright rectangle.
func pattern(x, y int) int {
	switch {
	case x > width/4 && x < width/2 && y > height/4 && y < 3*height/4:
		return levels - 1
	case (x+y)%int(width) < width/3:
		return levels / 3
	default:
		return 2
	}
}

func main() {
	rng := rand.New(rand.NewSource(11))

	// The lattice MRF with a smoothness coupling: neighbours agree with
	// probability mass concentrated on the diagonal.
	img, err := gen.Grid(width, height, gen.Config{
		Seed:          3,
		States:        levels,
		Shared:        true,
		Keep:          0.6,
		UniformPriors: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Seed priors from the noisy observation: the observed level gets
	// most of the mass, the rest spreads uniformly (the per-pixel error
	// rate the paper's §2.2 single-estimate assumption describes).
	truth := make([]int, width*height)
	noisy := make([]int, width*height)
	flipped := 0
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			id := y*width + x
			truth[id] = pattern(x, y)
			noisy[id] = truth[id]
			if rng.Float64() < noise {
				noisy[id] = rng.Intn(levels)
				flipped++
			}
			p := img.Prior(int32(id))
			for l := 0; l < levels; l++ {
				p[l] = 0.25 / float32(levels-1)
			}
			p[noisy[id]] = 0.75
		}
	}
	img.ResetBeliefs()

	mp := img.Clone()
	res := bp.RunEdge(img, bp.Options{WorkQueue: true})
	// Loopy max-product oscillates on lattices; damping stabilizes it.
	mpRes := bp.RunMaxProduct(mp, bp.Options{WorkQueue: true, Damping: 0.4})

	decode := func(vals []int) int { // pixel error count against truth
		errs := 0
		for i, v := range vals {
			if v != truth[i] {
				errs++
			}
		}
		return errs
	}
	denoised := make([]int, width*height)
	for id := 0; id < width*height; id++ {
		denoised[id] = argmax(img.Belief(int32(id)))
	}
	mapDecoded := bp.DecodeMAP(mp)

	fmt.Printf("image %dx%d, %d levels, %d/%d pixels corrupted\n", width, height, levels, flipped, width*height)
	fmt.Printf("sum-product: %d iterations, converged=%v\n", res.Iterations, res.Converged)
	fmt.Printf("max-product: %d iterations, converged=%v\n", mpRes.Iterations, mpRes.Converged)
	fmt.Printf("pixel errors: noisy %d -> sum-product %d -> max-product %d\n",
		decode(noisy), decode(denoised), decode(mapDecoded))
	fmt.Println("\nnoisy:")
	render(noisy)
	fmt.Println("\ndenoised:")
	render(denoised)
}

func argmax(b []float32) int {
	best := 0
	for i, v := range b {
		if v > b[best] {
			best = i
		}
	}
	return best
}

// render draws the image as ASCII intensity.
func render(img []int) {
	ramp := " .:-=+*#%@"
	var sb strings.Builder
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			l := img[y*width+x] * (len(ramp) - 1) / (levels - 1)
			sb.WriteByte(ramp[l])
		}
		sb.WriteByte('\n')
	}
	fmt.Print(sb.String())
}
