# Targets mirror .github/workflows/ci.yml one-to-one so a green `make ci`
# locally means a green pipeline.

GO ?= go
STATICCHECK ?= staticcheck

.PHONY: all build vet fmt staticcheck lint test cover race fuzz bench telemetry-smoke server-smoke profile clean ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fails (and lists the files) if anything is not gofmt-clean.
fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# The CI lint job pins staticcheck (honnef.co/go/tools) via go install;
# locally it runs when the binary is on PATH and is skipped otherwise, so
# `make ci` stays green on machines without network access.
staticcheck:
	@if command -v $(STATICCHECK) >/dev/null 2>&1; then \
		$(STATICCHECK) ./...; \
	else \
		echo "staticcheck not installed; skipping (CI pins and runs it)"; \
	fi

lint: vet fmt staticcheck

test:
	$(GO) test -shuffle=on ./...

# The CI coverage job: full test run with a coverage profile and the
# 84.0% floor (measured 85.2% when the gate was added).
cover:
	$(GO) test -coverprofile=coverage.out ./...
	@total=$$($(GO) tool cover -func=coverage.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "total coverage: $$total%"; \
	awk -v t="$$total" 'BEGIN { exit (t >= 84.0) ? 0 : 1 }' \
		|| { echo "coverage $$total% is below the 84.0% floor"; exit 1; }

# The CI race job: the concurrent engines, the kernel layer, the
# telemetry sinks, the parallel ingest path and the serving layer,
# twice, under the race detector.
race:
	$(GO) test -race -count=2 ./internal/poolbp/ ./internal/ompbp/ ./internal/cudabp/ ./internal/bp/ ./internal/relaxbp/ ./internal/enginetest/ ./internal/kernel/ ./internal/telemetry/ ./internal/mtxbp/ ./internal/graph/ ./internal/serve/

# The CI fuzz-smoke job: 20s on each parser fuzz target. The ingest
# differential runs as its own invocation — -fuzz takes one target, and
# FuzzRead does not match FuzzParallelRead.
fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=20s ./internal/bif/
	$(GO) test -fuzz=FuzzRead -fuzztime=20s ./internal/mtxbp/
	$(GO) test -fuzz=FuzzParallelRead -fuzztime=20s ./internal/mtxbp/
	$(GO) test -fuzz=FuzzDampedKernel -fuzztime=20s ./internal/kernel/
	$(GO) test -fuzz=FuzzQueryDecode -fuzztime=20s ./internal/serve/
	$(GO) test -fuzz=FuzzBatchLaneEquivalence -fuzztime=20s ./internal/bp/
	$(GO) test -fuzz=FuzzDeltaApply -fuzztime=20s ./internal/enginetest/

# The CI bench-smoke job: one iteration of every benchmark, output kept,
# plus the kernel micro-benchmarks with allocation stats and the
# bit-identity-verified ingest experiment at the CI tier.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./... | tee bench.txt
	$(GO) test -run '^$$' -bench 'BenchmarkKernels/micro' -benchtime 0.1s -benchmem ./internal/kernel/ | tee kernel-bench.txt
	$(GO) test -run '^$$' -bench BenchmarkProbeOverhead -benchtime 0.1s -benchmem ./internal/telemetry/ | tee probe-bench.txt
	$(GO) test -run '^$$' -bench BenchmarkTraceOverhead -benchtime 0.1s -benchmem ./internal/serve/ | tee trace-bench.txt
	$(GO) run ./cmd/credobench -exp ingest -tier ci -o ingest.txt
	$(GO) run ./cmd/credobench -exp robust -tier ci -o robust.txt
	$(GO) run ./cmd/credobench -exp batch -tier ci -o batch.txt
	$(GO) run ./cmd/credobench -exp delta -tier ci -o delta.txt

# The CI telemetry-smoke step: run the sprinkler example with the probe
# layer on and assert the JSONL event stream is well-formed and framed.
telemetry-smoke:
	$(GO) run ./cmd/credo -bif internal/bif/testdata/sprinkler.bif -mrf \
		-telemetry -trace-out telemetry.jsonl
	jq -es 'length > 0 and (.[0].kind == "run_start") and (.[-1].kind == "run_end")' telemetry.jsonl

# The CI server-smoke job: boot the credoserved daemon with the
# sprinkler network, drive cold and warm queries and the ops sidecar
# with curl+jq, and validate the JSONL telemetry trace.
server-smoke:
	./scripts/server_smoke.sh

# CPU-profile the million-edge pool benchmark; open with
# `go tool pprof cpu.pprof` (the -http flag on credo serves live
# /debug/pprof endpoints for in-flight runs instead).
profile:
	$(GO) test -run '^$$' -bench 'BenchmarkMillionEdge' -benchtime 1x \
		-cpuprofile cpu.pprof -o poolbp.test ./internal/poolbp/
	@echo "wrote cpu.pprof — inspect with: $(GO) tool pprof poolbp.test cpu.pprof"

# Remove every artifact the smoke and bench targets leave behind.
clean:
	rm -f bench.txt kernel-bench.txt probe-bench.txt trace-bench.txt \
		ingest.txt robust.txt batch.txt delta.txt \
		results_ci.txt coverage.out \
		telemetry.jsonl server-smoke.jsonl server-smoke.log \
		server-smoke-flight.json credoserved.smoke \
		cpu.pprof poolbp.test

ci: build lint test cover race fuzz bench telemetry-smoke server-smoke
