# Targets mirror .github/workflows/ci.yml one-to-one so a green `make ci`
# locally means a green pipeline.

GO ?= go

.PHONY: all build vet fmt lint test race fuzz bench telemetry-smoke profile ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fails (and lists the files) if anything is not gofmt-clean.
fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

lint: vet fmt

test:
	$(GO) test ./...

# The CI race job: the concurrent engines, the kernel layer, the
# telemetry sinks and the parallel ingest path, twice, under the race
# detector.
race:
	$(GO) test -race -count=2 ./internal/poolbp/ ./internal/ompbp/ ./internal/cudabp/ ./internal/bp/ ./internal/relaxbp/ ./internal/enginetest/ ./internal/kernel/ ./internal/telemetry/ ./internal/mtxbp/ ./internal/graph/

# The CI fuzz-smoke job: 20s on each parser fuzz target. The ingest
# differential runs as its own invocation — -fuzz takes one target, and
# FuzzRead does not match FuzzParallelRead.
fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=20s ./internal/bif/
	$(GO) test -fuzz=FuzzRead -fuzztime=20s ./internal/mtxbp/
	$(GO) test -fuzz=FuzzParallelRead -fuzztime=20s ./internal/mtxbp/

# The CI bench-smoke job: one iteration of every benchmark, output kept,
# plus the kernel micro-benchmarks with allocation stats and the
# bit-identity-verified ingest experiment at the CI tier.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./... | tee bench.txt
	$(GO) test -run '^$$' -bench 'BenchmarkKernels/micro' -benchtime 0.1s -benchmem ./internal/kernel/ | tee kernel-bench.txt
	$(GO) run ./cmd/credobench -exp ingest -tier ci -o ingest.txt

# The CI telemetry-smoke step: run the sprinkler example with the probe
# layer on and assert the JSONL event stream is well-formed and framed.
telemetry-smoke:
	$(GO) run ./cmd/credo -bif internal/bif/testdata/sprinkler.bif -mrf \
		-telemetry -trace-out telemetry.jsonl
	jq -es 'length > 0 and (.[0].kind == "run_start") and (.[-1].kind == "run_end")' telemetry.jsonl

# CPU-profile the million-edge pool benchmark; open with
# `go tool pprof cpu.pprof` (the -http flag on credo serves live
# /debug/pprof endpoints for in-flight runs instead).
profile:
	$(GO) test -run '^$$' -bench 'BenchmarkMillionEdge' -benchtime 1x \
		-cpuprofile cpu.pprof -o poolbp.test ./internal/poolbp/
	@echo "wrote cpu.pprof — inspect with: $(GO) tool pprof poolbp.test cpu.pprof"

ci: build lint test race fuzz bench telemetry-smoke
