// Package bif implements a parser and writer for the Bayesian Interchange
// Format (BIF), the context-free-grammar standard Credo's input comparison
// (§3.2.1) measures against. Faithful to the paper's critique, the parser
// loads the whole input into memory before tokenizing and walking the
// grammar's production rules.
//
// The supported subset covers the constructs of the Bayesian Network
// Repository files: network/variable/probability blocks, discrete variable
// types with named states, prior tables and conditional entries. Because
// Credo's graph model is pairwise (paper §2.1), a variable with several
// parents is converted to one edge per parent whose matrix is the CPT
// marginalized over the remaining parents under uniform assumptions.
package bif

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"credo/internal/graph"
)

// Network is the raw parse of a BIF file before pairwise conversion.
type Network struct {
	Name      string
	Variables []Variable
	Probs     []Probability
}

// Variable is a discrete BIF variable declaration.
type Variable struct {
	Name   string
	States []string
}

// Probability is one probability block: the child variable, its parents,
// the unconditional table (roots) or per-parent-configuration rows.
type Probability struct {
	Child   string
	Parents []string
	// Table holds the flat `table ...` values: parent configurations vary
	// slowest, child states fastest.
	Table []float32
	// Rows holds `( parentStates ) values ;` entries.
	Rows []CondRow
}

// CondRow is a single conditional entry of a probability block.
type CondRow struct {
	ParentStates []string
	Values       []float32
}

// Parse reads an entire BIF document and converts it to a pairwise belief
// graph.
func Parse(r io.Reader) (*graph.Graph, error) {
	n, err := ParseNetwork(r)
	if err != nil {
		return nil, err
	}
	return n.ToGraph()
}

// ParseFile parses the BIF file at path.
func ParseFile(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Parse(f)
}

// ParseNetwork reads an entire BIF document into its raw form.
func ParseNetwork(r io.Reader) (*Network, error) {
	// As in the formats the paper replaces, the whole file is loaded
	// before parsing begins.
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("bif: %w", err)
	}
	toks, err := tokenize(string(data))
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.network()
}

type parser struct {
	toks []string
	pos  int
}

func (p *parser) peek() string {
	if p.pos >= len(p.toks) {
		return ""
	}
	return p.toks[p.pos]
}

func (p *parser) next() string {
	t := p.peek()
	p.pos++
	return t
}

func (p *parser) expect(want string) error {
	if got := p.next(); got != want {
		return fmt.Errorf("bif: expected %q, got %q (token %d)", want, got, p.pos)
	}
	return nil
}

// skipBlock consumes a balanced { ... } block (for properties and other
// ignored constructs).
func (p *parser) skipBlock() error {
	if err := p.expect("{"); err != nil {
		return err
	}
	depth := 1
	for depth > 0 {
		t := p.next()
		switch t {
		case "":
			return fmt.Errorf("bif: unterminated block")
		case "{":
			depth++
		case "}":
			depth--
		}
	}
	return nil
}

// skipStatement consumes tokens through the next semicolon.
func (p *parser) skipStatement() error {
	for {
		t := p.next()
		if t == ";" {
			return nil
		}
		if t == "" {
			return fmt.Errorf("bif: unterminated statement")
		}
	}
}

func (p *parser) network() (*Network, error) {
	n := &Network{}
	for p.peek() != "" {
		switch kw := p.next(); kw {
		case "network":
			n.Name = p.next()
			if err := p.skipBlock(); err != nil {
				return nil, err
			}
		case "variable":
			v, err := p.variable()
			if err != nil {
				return nil, err
			}
			n.Variables = append(n.Variables, v)
		case "probability":
			pr, err := p.probability()
			if err != nil {
				return nil, err
			}
			n.Probs = append(n.Probs, pr)
		default:
			return nil, fmt.Errorf("bif: unexpected top-level token %q", kw)
		}
	}
	return n, nil
}

func (p *parser) variable() (Variable, error) {
	v := Variable{Name: p.next()}
	if v.Name == "" || v.Name == "{" {
		return v, fmt.Errorf("bif: variable missing name")
	}
	if err := p.expect("{"); err != nil {
		return v, err
	}
	for {
		switch t := p.next(); t {
		case "}":
			if len(v.States) == 0 {
				return v, fmt.Errorf("bif: variable %q has no discrete type", v.Name)
			}
			return v, nil
		case "type":
			if err := p.expect("discrete"); err != nil {
				return v, err
			}
			if err := p.expect("["); err != nil {
				return v, err
			}
			cnt, err := strconv.Atoi(p.next())
			if err != nil {
				return v, fmt.Errorf("bif: variable %q: bad state count: %w", v.Name, err)
			}
			if err := p.expect("]"); err != nil {
				return v, err
			}
			if err := p.expect("{"); err != nil {
				return v, err
			}
			for {
				s := p.next()
				if s == "}" {
					break
				}
				if s == "," {
					continue
				}
				if s == "" {
					return v, fmt.Errorf("bif: variable %q: unterminated state list", v.Name)
				}
				v.States = append(v.States, s)
			}
			if len(v.States) != cnt {
				return v, fmt.Errorf("bif: variable %q declares %d states but lists %d", v.Name, cnt, len(v.States))
			}
			if err := p.expect(";"); err != nil {
				return v, err
			}
		case "property":
			if err := p.skipStatement(); err != nil {
				return v, err
			}
		case "":
			return v, fmt.Errorf("bif: unterminated variable %q", v.Name)
		default:
			return v, fmt.Errorf("bif: variable %q: unexpected token %q", v.Name, t)
		}
	}
}

func (p *parser) probability() (Probability, error) {
	var pr Probability
	if err := p.expect("("); err != nil {
		return pr, err
	}
	pr.Child = p.next()
	switch t := p.next(); t {
	case ")":
	case "|":
		for {
			tok := p.next()
			if tok == ")" {
				break
			}
			if tok == "," {
				continue
			}
			if tok == "" {
				return pr, fmt.Errorf("bif: probability (%s): unterminated parent list", pr.Child)
			}
			pr.Parents = append(pr.Parents, tok)
		}
	default:
		return pr, fmt.Errorf("bif: probability (%s): unexpected token %q", pr.Child, t)
	}
	if err := p.expect("{"); err != nil {
		return pr, err
	}
	for {
		switch t := p.next(); t {
		case "}":
			return pr, nil
		case "table":
			vals, err := p.values()
			if err != nil {
				return pr, err
			}
			pr.Table = vals
		case "(":
			var row CondRow
			for {
				tok := p.next()
				if tok == ")" {
					break
				}
				if tok == "," {
					continue
				}
				if tok == "" {
					return pr, fmt.Errorf("bif: probability (%s): unterminated condition", pr.Child)
				}
				row.ParentStates = append(row.ParentStates, tok)
			}
			vals, err := p.values()
			if err != nil {
				return pr, err
			}
			row.Values = vals
			pr.Rows = append(pr.Rows, row)
		case "property", "default":
			if err := p.skipStatement(); err != nil {
				return pr, err
			}
		case "":
			return pr, fmt.Errorf("bif: unterminated probability (%s)", pr.Child)
		default:
			return pr, fmt.Errorf("bif: probability (%s): unexpected token %q", pr.Child, t)
		}
	}
}

// values parses a comma-separated float list terminated by a semicolon.
func (p *parser) values() ([]float32, error) {
	var vals []float32
	for {
		t := p.next()
		switch t {
		case ";":
			return vals, nil
		case ",":
			continue
		case "":
			return nil, fmt.Errorf("bif: unterminated value list")
		default:
			f, err := strconv.ParseFloat(t, 32)
			if err != nil {
				return nil, fmt.Errorf("bif: bad probability value %q: %w", t, err)
			}
			vals = append(vals, float32(f))
		}
	}
}

// ToGraph converts the raw network to a pairwise belief graph.
func (n *Network) ToGraph() (*graph.Graph, error) {
	if len(n.Variables) == 0 {
		return nil, fmt.Errorf("bif: network %q declares no variables", n.Name)
	}
	states := len(n.Variables[0].States)
	idx := make(map[string]int32, len(n.Variables))
	stateIdx := make([]map[string]int, len(n.Variables))
	for i, v := range n.Variables {
		if len(v.States) != states {
			return nil, fmt.Errorf("bif: variable %q has %d states; Credo requires a uniform belief width (%d)", v.Name, len(v.States), states)
		}
		if _, dup := idx[v.Name]; dup {
			return nil, fmt.Errorf("bif: duplicate variable %q", v.Name)
		}
		idx[v.Name] = int32(i)
		m := make(map[string]int, states)
		for j, s := range v.States {
			m[s] = j
		}
		stateIdx[i] = m
	}

	// Collect priors first so nodes can be added with them.
	priors := make([][]float32, len(n.Variables))
	type pendingEdge struct {
		parent, child int32
		mat           graph.JointMatrix
	}
	var edges []pendingEdge

	for _, pr := range n.Probs {
		child, ok := idx[pr.Child]
		if !ok {
			return nil, fmt.Errorf("bif: probability block for undeclared variable %q", pr.Child)
		}
		if len(pr.Parents) == 0 {
			if len(pr.Table) != states {
				return nil, fmt.Errorf("bif: prior for %q has %d values, want %d", pr.Child, len(pr.Table), states)
			}
			priors[child] = pr.Table
			continue
		}
		cpt, err := pr.flatCPT(states, stateIdx, idx)
		if err != nil {
			return nil, err
		}
		for pi, pname := range pr.Parents {
			parent, ok := idx[pname]
			if !ok {
				return nil, fmt.Errorf("bif: probability (%s) references undeclared parent %q", pr.Child, pname)
			}
			edges = append(edges, pendingEdge{
				parent: parent,
				child:  child,
				mat:    marginalCPT(cpt, states, len(pr.Parents), pi),
			})
		}
	}

	b := graph.NewBuilder(states)
	for i, v := range n.Variables {
		if _, err := b.AddNamedNode(v.Name, priors[i]); err != nil {
			return nil, err
		}
	}
	for _, e := range edges {
		if err := b.AddEdge(e.parent, e.child, &e.mat); err != nil {
			return nil, err
		}
	}
	return b.Build()
}

// flatCPT assembles the full conditional table indexed by parent
// configuration (parents vary with the first parent slowest) with child
// states fastest.
func (pr *Probability) flatCPT(states int, stateIdx []map[string]int, idx map[string]int32) ([]float32, error) {
	configs := 1
	for range pr.Parents {
		configs *= states
	}
	cpt := make([]float32, configs*states)
	if pr.Table != nil {
		if len(pr.Table) != len(cpt) {
			return nil, fmt.Errorf("bif: probability (%s): table has %d values, want %d", pr.Child, len(pr.Table), len(cpt))
		}
		copy(cpt, pr.Table)
		return cpt, nil
	}
	seen := make([]bool, configs)
	for _, row := range pr.Rows {
		if len(row.ParentStates) != len(pr.Parents) {
			return nil, fmt.Errorf("bif: probability (%s): condition with %d states for %d parents", pr.Child, len(row.ParentStates), len(pr.Parents))
		}
		if len(row.Values) != states {
			return nil, fmt.Errorf("bif: probability (%s): row has %d values, want %d", pr.Child, len(row.Values), states)
		}
		cfg := 0
		for i, s := range row.ParentStates {
			pv, ok := idx[pr.Parents[i]]
			if !ok {
				return nil, fmt.Errorf("bif: probability (%s): undeclared parent %q", pr.Child, pr.Parents[i])
			}
			si, ok := stateIdx[pv][s]
			if !ok {
				return nil, fmt.Errorf("bif: probability (%s): parent %q has no state %q", pr.Child, pr.Parents[i], s)
			}
			cfg = cfg*states + si
		}
		copy(cpt[cfg*states:(cfg+1)*states], row.Values)
		seen[cfg] = true
	}
	for cfg, ok := range seen {
		if !ok {
			// Unspecified configurations default to uniform.
			u := float32(1) / float32(states)
			for j := 0; j < states; j++ {
				cpt[cfg*states+j] = u
			}
		}
	}
	return cpt, nil
}

// marginalCPT reduces a multi-parent CPT to the pairwise matrix for parent
// `which` by averaging over the configurations of the other parents.
func marginalCPT(cpt []float32, states, numParents, which int) graph.JointMatrix {
	m := graph.NewJointMatrix(states, states)
	configs := len(cpt) / states
	counts := make([]int, states)
	// The parent `which` contributes digit (numParents-1-which) in the
	// mixed-radix configuration index (first parent is slowest).
	div := 1
	for i := which + 1; i < numParents; i++ {
		div *= states
	}
	for cfg := 0; cfg < configs; cfg++ {
		pState := (cfg / div) % states
		for j := 0; j < states; j++ {
			m.Data[pState*states+j] += cpt[cfg*states+j]
		}
		counts[pState]++
	}
	for i := 0; i < states; i++ {
		if counts[i] > 0 {
			inv := 1 / float32(counts[i])
			for j := 0; j < states; j++ {
				m.Data[i*states+j] *= inv
			}
		}
	}
	m.NormalizeRows()
	return m
}

// tokenize splits BIF source into tokens: identifiers/numbers, quoted
// strings (quotes stripped) and single-character punctuation. // and /* */
// comments are skipped.
func tokenize(src string) ([]string, error) {
	var toks []string
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < len(src) && src[i+1] == '*':
			end := strings.Index(src[i+2:], "*/")
			if end < 0 {
				return nil, fmt.Errorf("bif: unterminated comment")
			}
			i += end + 4
		case c == '"':
			end := strings.IndexByte(src[i+1:], '"')
			if end < 0 {
				return nil, fmt.Errorf("bif: unterminated string")
			}
			toks = append(toks, src[i+1:i+1+end])
			i += end + 2
		case strings.IndexByte("{}()[]|,;", c) >= 0:
			toks = append(toks, string(c))
			i++
		default:
			j := i
			for j < len(src) && strings.IndexByte("{}()[]|,; \t\n\r\"", src[j]) < 0 {
				j++
			}
			toks = append(toks, src[i:j])
			i = j
		}
	}
	return toks, nil
}
