package bif

import (
	"strings"
	"testing"
)

// FuzzParse checks the BIF parser never panics and that whatever it
// accepts builds a structurally valid graph. `go test` runs the seed
// corpus; `go test -fuzz=FuzzParse` explores further.
func FuzzParse(f *testing.F) {
	f.Add(familyOutBIF)
	f.Add("network x { }")
	f.Add("network x { }\nvariable a { type discrete [ 2 ] { y, n }; }")
	f.Add(`variable a { type discrete [ 1 ] { y }; } probability ( a ) { table 1.0; }`)
	f.Add("/* unterminated")
	f.Add(`network "quoted name" { property p; }`)
	f.Add("probability ( | ) { }")
	f.Add("variable v { type discrete [ 2 ] { a, b }; } probability ( v | v ) { table 1, 0, 0, 1; }")
	f.Fuzz(func(t *testing.T, src string) {
		g, err := Parse(strings.NewReader(src))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted input produced invalid graph: %v\ninput: %q", err, src)
		}
	})
}
