package bif

import (
	"bufio"
	"fmt"
	"io"
	"strconv"

	"credo/internal/graph"
)

// Write serializes g as a BIF document. Because a BIF probability block
// enumerates a variable with its full parent set, Write requires every node
// to have at most one parent (directed forests — the shape of the Bayesian
// Network Repository inputs the paper benchmarks). Graphs with multi-parent
// nodes should use the mtxbp format instead.
func Write(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	fmt.Fprintf(bw, "network credo {\n}\n")
	for v := 0; v < g.NumNodes; v++ {
		if g.InDegree(int32(v)) > 1 {
			return fmt.Errorf("bif: node %d has %d parents; BIF writer supports at most 1", v, g.InDegree(int32(v)))
		}
		fmt.Fprintf(bw, "variable %s {\n  type discrete [ %d ] { ", nodeName(g, v), g.States)
		for j := 0; j < g.States; j++ {
			if j > 0 {
				bw.WriteString(", ")
			}
			fmt.Fprintf(bw, "s%d", j)
		}
		bw.WriteString(" };\n}\n")
	}
	for v := 0; v < g.NumNodes; v++ {
		lo, hi := g.InOffsets[v], g.InOffsets[v+1]
		if lo == hi {
			fmt.Fprintf(bw, "probability ( %s ) {\n  table ", nodeName(g, v))
			writeValues(bw, g.Prior(int32(v)))
			bw.WriteString(";\n}\n")
			continue
		}
		e := g.InEdges[lo]
		parent := g.EdgeSrc[e]
		fmt.Fprintf(bw, "probability ( %s | %s ) {\n", nodeName(g, v), nodeName(g, int(parent)))
		m := g.Matrix(e)
		for i := 0; i < g.States; i++ {
			fmt.Fprintf(bw, "  ( s%d ) ", i)
			writeValues(bw, m.Row(i))
			bw.WriteString(";\n")
		}
		bw.WriteString("}\n")
	}
	return bw.Flush()
}

func nodeName(g *graph.Graph, v int) string {
	if v < len(g.Names) && g.Names[v] != "" {
		return g.Names[v]
	}
	return "n" + strconv.Itoa(v)
}

func writeValues(bw *bufio.Writer, vals []float32) {
	for i, f := range vals {
		if i > 0 {
			bw.WriteString(", ")
		}
		bw.WriteString(strconv.FormatFloat(float64(f), 'g', 7, 32))
	}
}
