package bif

import (
	"math"
	"path/filepath"
	"testing"

	"credo/internal/bp"
)

// TestRepositoryNetworks parses the classic Bayesian Network Repository
// style fixtures under testdata and cross-checks the pairwise conversion
// end to end: structure, validity, and exact inference (VE vs brute
// force) on the converted model.
func TestRepositoryNetworks(t *testing.T) {
	cases := []struct {
		file     string
		nodes    int
		edges    int // pairwise edges after multi-parent expansion
		roots    int // nodes with a prior table
		evidence string
	}{
		{"sprinkler.bif", 4, 4, 1, "wetgrass"},
		{"cancer.bif", 5, 4, 2, "xray"},
		{"asia.bif", 8, 8, 2, "dysp"},
	}
	for _, tc := range cases {
		t.Run(tc.file, func(t *testing.T) {
			g, err := ParseFile(filepath.Join("testdata", tc.file))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			if g.NumNodes != tc.nodes {
				t.Fatalf("nodes = %d, want %d", g.NumNodes, tc.nodes)
			}
			if g.NumEdges != tc.edges {
				t.Fatalf("edges = %d, want %d", g.NumEdges, tc.edges)
			}
			if err := g.Validate(); err != nil {
				t.Fatalf("validate: %v", err)
			}

			// Exact marginals by two independent engines must agree.
			bf, err := bp.BruteForceMarginals(g)
			if err != nil {
				t.Fatal(err)
			}
			for v := int32(0); v < int32(g.NumNodes); v++ {
				ve, err := bp.VariableElimination(g, v)
				if err != nil {
					t.Fatal(err)
				}
				for j := range ve {
					if math.Abs(ve[j]-bf[v][j]) > 1e-9 {
						t.Fatalf("node %d: VE %v vs brute force %v", v, ve, bf[v])
					}
				}
			}

			// Evidence moves posteriors: observe the named leaf and check
			// at least one ancestor's marginal changes.
			var leaf int32 = -1
			for i, n := range g.Names {
				if n == tc.evidence {
					leaf = int32(i)
				}
			}
			if leaf < 0 {
				t.Fatalf("fixture missing evidence node %q", tc.evidence)
			}
			if err := g.Observe(leaf, 0); err != nil {
				t.Fatal(err)
			}
			post, err := bp.BruteForceMarginals(g)
			if err != nil {
				t.Fatal(err)
			}
			moved := false
			for v := range post {
				if int32(v) == leaf {
					continue
				}
				if math.Abs(post[v][0]-bf[v][0]) > 1e-6 {
					moved = true
				}
			}
			if !moved {
				t.Errorf("observing %s moved no other marginal", tc.evidence)
			}
		})
	}
}

// TestRepositoryLoopyAgreesDirectionally: loopy BP on the repository
// networks points posteriors the same direction as exact inference.
func TestRepositoryLoopyAgreesDirectionally(t *testing.T) {
	g, err := ParseFile(filepath.Join("testdata", "cancer.bif"))
	if err != nil {
		t.Fatal(err)
	}
	var cancer, xray int32 = -1, -1
	for i, n := range g.Names {
		switch n {
		case "cancer":
			cancer = int32(i)
		case "xray":
			xray = int32(i)
		}
	}
	prior, err := bp.VariableElimination(g, cancer)
	if err != nil {
		t.Fatal(err)
	}
	_ = g.Observe(xray, 0) // positive x-ray
	exact, err := bp.VariableElimination(g, cancer)
	if err != nil {
		t.Fatal(err)
	}
	if exact[0] <= prior[0] {
		t.Fatalf("positive x-ray must raise p(cancer): %v -> %v", prior[0], exact[0])
	}
	// Loopy messages travel along directed edges only, so evidence at a
	// leaf reaches its ancestors via the paper's §3.3 MRF treatment: each
	// link stored as two directed edges.
	mrf, err := g.Undirected()
	if err != nil {
		t.Fatal(err)
	}
	_ = mrf.Observe(xray, 0)
	bp.RunNode(mrf, bp.Options{})
	loopy := mrf.Belief(cancer)
	if float64(loopy[0]) <= prior[0] {
		t.Errorf("loopy posterior %v did not move toward exact %v", loopy[0], exact[0])
	}
}
