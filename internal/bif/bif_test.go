package bif

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"credo/internal/gen"
	"credo/internal/graph"
)

const familyOutBIF = `
// The family-out network of the paper's Figure 1.
network family_out {
  property "example" ;
}
variable family-out {
  type discrete [ 2 ] { true, false };
}
variable bowel-problem {
  type discrete [ 2 ] { true, false };
}
variable light-on {
  type discrete [ 2 ] { true, false };
}
variable dog-out {
  type discrete [ 2 ] { true, false };
}
variable hear-bark {
  type discrete [ 2 ] { true, false };
}
probability ( family-out ) {
  table 0.15, 0.85;
}
probability ( bowel-problem ) {
  table 0.01, 0.99;
}
probability ( light-on | family-out ) {
  ( true ) 0.6, 0.4;
  ( false ) 0.05, 0.95;
}
probability ( dog-out | family-out, bowel-problem ) {
  ( true, true ) 0.99, 0.01;
  ( true, false ) 0.90, 0.10;
  ( false, true ) 0.97, 0.03;
  ( false, false ) 0.3, 0.7;
}
probability ( hear-bark | dog-out ) {
  ( true ) 0.7, 0.3;
  ( false ) 0.01, 0.99;
}
`

func TestParseFamilyOut(t *testing.T) {
	g, err := Parse(strings.NewReader(familyOutBIF))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if g.NumNodes != 5 {
		t.Fatalf("nodes = %d, want 5", g.NumNodes)
	}
	// dog-out has two parents -> two pairwise edges; total 4 edges.
	if g.NumEdges != 4 {
		t.Fatalf("edges = %d, want 4", g.NumEdges)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if g.Names[0] != "family-out" {
		t.Errorf("name[0] = %q", g.Names[0])
	}
	// family-out prior must be preserved.
	if got := g.Prior(0)[0]; math.Abs(float64(got)-0.15) > 1e-6 {
		t.Errorf("family-out prior = %v, want 0.15", got)
	}
	// Marginalized dog-out|family-out CPT: avg of (0.99,0.90) = 0.945 for
	// family-out=true.
	var doEdge int32 = -1
	for e := 0; e < g.NumEdges; e++ {
		if g.Names[g.EdgeSrc[e]] == "family-out" && g.Names[g.EdgeDst[e]] == "dog-out" {
			doEdge = int32(e)
		}
	}
	if doEdge < 0 {
		t.Fatal("missing family-out -> dog-out edge")
	}
	if got := g.Matrix(doEdge).At(0, 0); math.Abs(float64(got)-0.945) > 1e-5 {
		t.Errorf("marginalized CPT (0,0) = %v, want 0.945", got)
	}
}

func TestParseNetworkRaw(t *testing.T) {
	n, err := ParseNetwork(strings.NewReader(familyOutBIF))
	if err != nil {
		t.Fatalf("ParseNetwork: %v", err)
	}
	if n.Name != "family_out" {
		t.Errorf("network name = %q", n.Name)
	}
	if len(n.Variables) != 5 || len(n.Probs) != 5 {
		t.Fatalf("got %d variables, %d probability blocks", len(n.Variables), len(n.Probs))
	}
	if n.Variables[0].States[0] != "true" {
		t.Errorf("state name = %q", n.Variables[0].States[0])
	}
}

func TestParseTableForm(t *testing.T) {
	src := `
network t { }
variable a { type discrete [ 2 ] { y, n }; }
variable b { type discrete [ 2 ] { y, n }; }
probability ( a ) { table 0.3, 0.7; }
probability ( b | a ) { table 0.9, 0.1, 0.2, 0.8; }
`
	g, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if g.NumEdges != 1 {
		t.Fatalf("edges = %d, want 1", g.NumEdges)
	}
	m := g.Matrix(0)
	if m.At(0, 0) != 0.9 || m.At(1, 1) != 0.8 {
		t.Errorf("table CPT = %v %v", m.At(0, 0), m.At(1, 1))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"garbage", "hello world"},
		{"no variables", "network x { }"},
		{"bad state count", "network x { }\nvariable a { type discrete [ 3 ] { y, n }; }"},
		{"mixed widths", "network x { }\nvariable a { type discrete [ 2 ] { y, n }; }\nvariable b { type discrete [ 3 ] { y, n, m }; }"},
		{"undeclared child", "network x { }\nvariable a { type discrete [ 2 ] { y, n }; }\nprobability ( zz ) { table 0.5, 0.5; }"},
		{"undeclared parent", "network x { }\nvariable a { type discrete [ 2 ] { y, n }; }\nprobability ( a | zz ) { ( y ) 0.5, 0.5; }"},
		{"bad prior arity", "network x { }\nvariable a { type discrete [ 2 ] { y, n }; }\nprobability ( a ) { table 0.5; }"},
		{"bad state in row", "network x { }\nvariable a { type discrete [ 2 ] { y, n }; }\nvariable b { type discrete [ 2 ] { y, n }; }\nprobability ( b | a ) { ( qq ) 0.5, 0.5; }"},
		{"unterminated block", "network x { "},
		{"unterminated comment", "/* oops"},
		{"unterminated string", "network \"oops { }"},
		{"duplicate variable", "network x { }\nvariable a { type discrete [ 2 ] { y, n }; }\nvariable a { type discrete [ 2 ] { y, n }; }"},
		{"bad value", "network x { }\nvariable a { type discrete [ 2 ] { y, n }; }\nprobability ( a ) { table zz, 0.5; }"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Parse(strings.NewReader(tc.src)); err == nil {
				t.Error("Parse accepted malformed input")
			}
		})
	}
}

func TestWriteRoundTrip(t *testing.T) {
	g, err := gen.DirectedTree(15, 2, gen.Config{Seed: 9, States: 2, UniformPriors: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Parse(&buf)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got.NumNodes != g.NumNodes || got.NumEdges != g.NumEdges {
		t.Fatalf("shape %d/%d, want %d/%d", got.NumNodes, got.NumEdges, g.NumNodes, g.NumEdges)
	}
	for e := 0; e < g.NumEdges; e++ {
		a, b := g.Matrix(int32(e)), got.Matrix(int32(e))
		for i := range a.Data {
			if d := float64(a.Data[i] - b.Data[i]); math.Abs(d) > 1e-5 {
				t.Fatalf("edge %d matrix entry %d differs by %v", e, i, d)
			}
		}
	}
}

func TestWriteRejectsMultiParent(t *testing.T) {
	b := graph.NewBuilder(2)
	for i := 0; i < 3; i++ {
		_, _ = b.AddNode(nil)
	}
	m := graph.DiagonalJointMatrix(2, 0.8)
	_ = b.AddEdge(0, 2, &m)
	_ = b.AddEdge(1, 2, &m)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := Write(&bytes.Buffer{}, g); err == nil {
		t.Error("Write accepted a multi-parent node")
	}
}

func TestTokenizeComments(t *testing.T) {
	toks, err := tokenize("a // line comment\nb /* block */ c \"quoted token\" ;")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "c", "quoted token", ";"}
	if len(toks) != len(want) {
		t.Fatalf("tokens = %v", toks)
	}
	for i := range want {
		if toks[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, toks[i], want[i])
		}
	}
}
