package telemetry

import (
	"strings"
	"testing"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindRunStart:  "run_start",
		KindIteration: "iteration",
		KindRunEnd:    "run_end",
		KindWorker:    "worker",
		Kind(200):     "unknown",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestConvergedFraction(t *testing.T) {
	cases := []struct {
		e    Event
		want float64
	}{
		{Event{Active: 25, Items: 100}, 0.75},
		{Event{Active: 0, Items: 100}, 1},
		{Event{Active: -1, Items: 100}, 0}, // no queue: no occupancy data
		{Event{Active: 25, Items: 0}, 0},   // no denominator
		{Event{Active: 150, Items: 100}, 0},
	}
	for _, c := range cases {
		if got := c.e.ConvergedFraction(); got != c.want {
			t.Errorf("ConvergedFraction(active=%d items=%d) = %g, want %g",
				c.e.Active, c.e.Items, got, c.want)
		}
	}
}

// countingProbe records how many events it saw.
type countingProbe struct{ n int }

func (c *countingProbe) Emit(Event) { c.n++ }

func TestMulti(t *testing.T) {
	if Multi() != nil {
		t.Error("Multi() should be nil")
	}
	if Multi(nil, nil) != nil {
		t.Error("Multi(nil, nil) should be nil")
	}
	a := &countingProbe{}
	if got := Multi(nil, a, nil); got != Probe(a) {
		t.Error("Multi with one live probe should return it unwrapped")
	}
	b := &countingProbe{}
	m := Multi(a, nil, b)
	m.Emit(Event{Kind: KindIteration})
	m.Emit(Event{Kind: KindRunEnd})
	if a.n != 2 || b.n != 2 {
		t.Errorf("fan-out counts = %d, %d, want 2, 2", a.n, b.n)
	}
}

func TestRecorderZeroValueAndWrap(t *testing.T) {
	var zero Recorder
	zero.Emit(Event{Kind: KindRunStart})
	if zero.Len() != 1 {
		t.Fatalf("zero-value recorder Len = %d, want 1", zero.Len())
	}

	r := NewRecorder(4)
	for i := int32(1); i <= 6; i++ {
		r.Emit(Event{Kind: KindIteration, Iter: i})
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want capacity 4", r.Len())
	}
	if r.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", r.Dropped())
	}
	events := r.Events()
	for i, want := range []int32{3, 4, 5, 6} {
		if events[i].Iter != want {
			t.Errorf("events[%d].Iter = %d, want %d (ring must stay chronological)", i, events[i].Iter, want)
		}
	}

	r.Reset()
	if r.Len() != 0 || r.Dropped() != 0 {
		t.Errorf("after Reset: Len=%d Dropped=%d, want 0, 0", r.Len(), r.Dropped())
	}
	r.Emit(Event{Kind: KindIteration, Iter: 9})
	if got := r.Events(); len(got) != 1 || got[0].Iter != 9 {
		t.Errorf("recorder unusable after Reset: %+v", got)
	}
}

func TestRecorderDefaultCapacity(t *testing.T) {
	r := NewRecorder(0)
	for i := 0; i < DefaultRecorderCapacity+10; i++ {
		r.Emit(Event{Kind: KindIteration, Iter: int32(i)})
	}
	if r.Len() != DefaultRecorderCapacity {
		t.Errorf("Len = %d, want %d", r.Len(), DefaultRecorderCapacity)
	}
	if r.Dropped() != 10 {
		t.Errorf("Dropped = %d, want 10", r.Dropped())
	}
}

func TestWriteConvergenceReportEmpty(t *testing.T) {
	var sb strings.Builder
	WriteConvergenceReport(&sb, nil)
	if !strings.Contains(sb.String(), "no iteration events") {
		t.Errorf("empty report: %q", sb.String())
	}
}
