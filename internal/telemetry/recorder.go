package telemetry

import "sync"

// DefaultRecorderCapacity bounds a zero-value Recorder: enough for a
// 200-iteration run of every engine in a six-way comparison with room
// to spare, small enough (~a few hundred KB) to always be safe to
// enable.
const DefaultRecorderCapacity = 4096

// Recorder is the ring-buffered in-memory sink: it keeps the most
// recent events up to a fixed capacity, overwriting the oldest once
// full, so attaching one to an unboundedly long run can never grow
// memory without bound. A Recorder is safe for concurrent emission.
//
// The zero value is ready to use at DefaultRecorderCapacity.
type Recorder struct {
	mu      sync.Mutex
	buf     []Event
	next    int   // ring write position
	wrapped bool  // the ring has overwritten at least one event
	dropped int64 // events overwritten
}

// NewRecorder returns a recorder keeping the last capacity events
// (minimum 1; <= 0 means DefaultRecorderCapacity).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultRecorderCapacity
	}
	return &Recorder{buf: make([]Event, 0, capacity)}
}

// Emit implements Probe.
func (r *Recorder) Emit(e Event) {
	r.mu.Lock()
	if cap(r.buf) == 0 {
		r.buf = make([]Event, 0, DefaultRecorderCapacity)
	}
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.next] = e
		r.next++
		if r.next == len(r.buf) {
			r.next = 0
		}
		r.wrapped = true
		r.dropped++
	}
	r.mu.Unlock()
}

// Events returns a chronological copy of the retained events.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.buf))
	if r.wrapped {
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
		return out
	}
	return append(out, r.buf...)
}

// Len returns the number of retained events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Dropped returns how many events the ring has overwritten.
func (r *Recorder) Dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Reset empties the recorder, keeping its capacity.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.buf = r.buf[:0]
	r.next = 0
	r.wrapped = false
	r.dropped = 0
	r.mu.Unlock()
}
