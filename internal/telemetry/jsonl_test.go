package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestJSONLWellFormed checks the hand-rolled encoder against the real
// JSON parser: every line of every event kind must round-trip.
func TestJSONLWellFormed(t *testing.T) {
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	w.Emit(Event{Kind: KindRunStart, Engine: "bp.node", Items: 100, Threshold: 0.001})
	w.Emit(Event{Kind: KindIteration, Engine: "bp.node", Iter: 1, Delta: 1.6836238,
		Updated: 100, Edges: 400, Active: 73, Items: 100})
	w.Emit(Event{Kind: KindIteration, Engine: "relax", Iter: 2, Delta: 0.25,
		Updated: 100, Active: 12, Items: 100, StaleDrops: 40, Wasted: 9, Contention: 3})
	w.Emit(Event{Kind: KindIteration, Engine: "bp.edge", Iter: 3, Delta: 0.1,
		Updated: 100, Edges: 400, Active: -1, Items: 400, FastPath: 350, Rescales: 2})
	w.Emit(Event{Kind: KindWorker, Engine: "pool.node", Worker: 3, BusyNs: 900, WallNs: 1000})
	w.Emit(Event{Kind: KindRunEnd, Engine: "bp.node", Iter: 20, Delta: 0.0009,
		Converged: true, Updated: 2000, Edges: 8000})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 6 {
		t.Fatalf("got %d lines, want 6:\n%s", len(lines), buf.String())
	}
	var decoded []map[string]any
	for i, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i+1, err, line)
		}
		decoded = append(decoded, m)
	}

	// Sequence numbers are monotonically increasing from 1.
	for i, m := range decoded {
		if int(m["seq"].(float64)) != i+1 {
			t.Errorf("line %d: seq = %v, want %d", i+1, m["seq"], i+1)
		}
	}
	if decoded[0]["kind"] != "run_start" || decoded[0]["threshold"].(float64) != 0.001 {
		t.Errorf("run_start line wrong: %v", decoded[0])
	}
	if decoded[1]["active"].(float64) != 73 {
		t.Errorf("iteration line lost active: %v", decoded[1])
	}
	if decoded[2]["stale_drops"].(float64) != 40 || decoded[2]["queue_contention"].(float64) != 3 {
		t.Errorf("relax counters missing: %v", decoded[2])
	}
	if _, ok := decoded[3]["active"]; ok {
		t.Errorf("active=-1 (no queue) must be omitted, not encoded: %v", decoded[3])
	}
	if decoded[3]["kernel_fast_path"].(float64) != 350 {
		t.Errorf("kernel counters missing: %v", decoded[3])
	}
	if decoded[4]["kind"] != "worker" || decoded[4]["busy_ns"].(float64) != 900 {
		t.Errorf("worker line wrong: %v", decoded[4])
	}
	if decoded[5]["converged"] != true {
		t.Errorf("run_end line wrong: %v", decoded[5])
	}
}

// TestJSONLFlushOnRunEnd asserts the file is complete the moment a run
// finishes, without an explicit Flush.
func TestJSONLFlushOnRunEnd(t *testing.T) {
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	w.Emit(Event{Kind: KindIteration, Engine: "bp.node", Iter: 1, Delta: 1})
	w.Emit(Event{Kind: KindRunEnd, Engine: "bp.node", Iter: 1, Delta: 1, Converged: true})
	if got := buf.String(); !strings.Contains(got, "run_end") {
		t.Errorf("run_end must flush the stream, buffer holds only:\n%q", got)
	}
}

// TestJSONLFloatPrecision locks float32 round-tripping: the residual
// written must parse back to the exact float32 the engine reported.
func TestJSONLFloatPrecision(t *testing.T) {
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	const delta = float32(1.6836238)
	w.Emit(Event{Kind: KindIteration, Engine: "bp.node", Iter: 1, Delta: delta})
	w.Flush()
	var m struct {
		Delta float64 `json:"delta"`
	}
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	if float32(m.Delta) != delta {
		t.Errorf("delta round-trip %v != %v", m.Delta, delta)
	}
}
