package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
)

func flightRec(id uint64) *FlightRecord {
	return &FlightRecord{Kind: "flight", ID: id, Name: "query", Reasons: []string{"slow"}}
}

func TestFlightRingWrap(t *testing.T) {
	f := NewFlightRecorder(3)
	for i := 1; i <= 5; i++ {
		f.Capture(flightRec(uint64(i)))
	}
	if f.Captured() != 5 || f.Depth() != 3 {
		t.Fatalf("captured %d depth %d", f.Captured(), f.Depth())
	}
	recs := f.Records()
	if len(recs) != 3 {
		t.Fatalf("retained %d, want 3", len(recs))
	}
	for i, want := range []uint64{3, 4, 5} {
		if recs[i].ID != want {
			t.Errorf("records[%d].ID = %d, want %d (oldest first)", i, recs[i].ID, want)
		}
	}
}

func TestFlightNilSafe(t *testing.T) {
	var f *FlightRecorder
	f.Capture(flightRec(1))
	f.SetSink(nil)
	if f.Captured() != 0 || f.Depth() != 0 || f.Records() != nil {
		t.Error("nil recorder not inert")
	}
	rr := httptest.NewRecorder()
	f.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/flight", nil))
	var dump struct {
		Captured int64           `json:"captured"`
		Depth    int             `json:"depth"`
		Records  []*FlightRecord `json:"records"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &dump); err != nil {
		t.Fatalf("nil handler body: %v", err)
	}
	if dump.Captured != 0 || dump.Records == nil || len(dump.Records) != 0 {
		t.Errorf("nil dump: %+v", dump)
	}
}

func TestFlightHandler(t *testing.T) {
	f := NewFlightRecorder(8)
	f.Capture(flightRec(7))
	rr := httptest.NewRecorder()
	f.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/flight", nil))
	if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type %q", ct)
	}
	var dump struct {
		Captured int64           `json:"captured"`
		Depth    int             `json:"depth"`
		Records  []*FlightRecord `json:"records"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &dump); err != nil {
		t.Fatal(err)
	}
	if dump.Captured != 1 || dump.Depth != 8 || len(dump.Records) != 1 || dump.Records[0].ID != 7 {
		t.Errorf("dump: %+v", dump)
	}
}

// TestFlightJSONLSink checks captured records append to the trace file
// as "kind":"flight" lines interleaving with ordinary events.
func TestFlightJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	f := NewFlightRecorder(4)
	f.SetSink(w)

	w.Emit(Event{Kind: KindRunStart, Engine: "relax", Items: 10})
	f.Capture(&FlightRecord{Kind: "flight", ID: 3, Name: "query", Reasons: []string{"shed"},
		Spans: []FlightSpan{{Name: "admit", Parent: -1, StartNs: 10, EndNs: 20}}})
	w.Flush()

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines:\n%s", len(lines), buf.String())
	}
	var rec FlightRecord
	if err := json.Unmarshal([]byte(lines[1]), &rec); err != nil {
		t.Fatalf("flight line not JSON: %v", err)
	}
	if rec.Kind != "flight" || rec.ID != 3 || len(rec.Spans) != 1 {
		t.Errorf("flight line: %+v", rec)
	}
	// Every line in the stream must remain independently parseable.
	for i, l := range lines {
		var any map[string]any
		if err := json.Unmarshal([]byte(l), &any); err != nil {
			t.Errorf("line %d not JSON: %v", i, err)
		}
	}
}

// TestFlightConcurrentCaptureAndRead hammers the ring from writer
// goroutines while readers snapshot it — the lock-free path the serving
// layer relies on; run under -race in CI.
func TestFlightConcurrentCaptureAndRead(t *testing.T) {
	f := NewFlightRecorder(8)
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func(w int) {
			for i := 0; i < 500; i++ {
				f.Capture(flightRec(uint64(w*1000 + i)))
			}
			done <- struct{}{}
		}(w)
	}
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				done <- struct{}{}
				return
			default:
				for _, r := range f.Records() {
					if r.Kind != "flight" {
						panic(fmt.Sprintf("torn record: %+v", r))
					}
				}
			}
		}
	}()
	for i := 0; i < 4; i++ {
		<-done
	}
	close(stop)
	<-done
	if f.Captured() != 2000 {
		t.Errorf("captured %d, want 2000", f.Captured())
	}
}
