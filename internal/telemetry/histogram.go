package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Histogram is a fixed-bound, atomically updated distribution sink: a
// set of cumulative-style buckets (each bucket i counts observations
// <= bounds[i], with an implicit +Inf overflow bucket) plus a running
// count and sum. Observe is lock-free — one binary search and two
// atomic adds — so the serving path can record every query latency
// without contending on a mutex, and scrapes read whatever mix of
// observations has landed (each bucket is individually consistent,
// which is all the Prometheus exposition promises anyway).
type Histogram struct {
	bounds []float64
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated (cold relative to counts)
}

// NewHistogram returns a histogram over the given ascending upper
// bounds. The bounds slice is retained; callers must not mutate it.
func NewHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// LogBounds returns n log-spaced upper bounds starting at start and
// multiplying by factor — the bucketing scheme of the latency
// histograms: constant relative error per bucket, so the same bounds
// resolve a 40µs sprinkler query and a 4s million-node run.
func LogBounds(start, factor float64, n int) []float64 {
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// DefaultLatencyBounds covers 1µs to ~67s in factor-2 buckets — wide
// enough that no realistic query lands in the overflow bucket, tight
// enough (±50%) for meaningful p99 interpolation.
var DefaultLatencyBounds = LogBounds(1e-6, 2, 27)

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Quantile estimates the q-quantile (0 < q <= 1) by linear
// interpolation inside the bucket holding the target rank, the same
// estimate Prometheus' histogram_quantile computes server-side. An
// observation in the overflow bucket clamps to the largest bound; an
// empty histogram returns 0.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 || len(h.bounds) == 0 {
		return 0
	}
	rank := q * float64(total)
	cum := int64(0)
	for i := range h.bounds {
		c := h.counts[i].Load()
		if float64(cum+c) >= rank {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			if c == 0 {
				return h.bounds[i]
			}
			return lo + (h.bounds[i]-lo)*(rank-float64(cum))/float64(c)
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}

// WriteProm renders the histogram as one Prometheus series: cumulative
// name_bucket{...,le="..."} lines (zero buckets elided to keep the
// exposition readable, +Inf always present), then name_sum and
// name_count. labels is the pre-rendered label set without braces
// (empty for none); HELP/TYPE headers are the caller's, emitted once
// per metric family.
func (h *Histogram) WriteProm(w io.Writer, name, labels string) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	cum := int64(0)
	for i, bound := range h.bounds {
		c := h.counts[i].Load()
		cum += c
		if c == 0 {
			continue
		}
		fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n", name, labels, sep,
			strconv.FormatFloat(bound, 'g', -1, 64), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, cum)
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", name, h.Sum(), name, h.count.Load())
		return
	}
	fmt.Fprintf(w, "%s_sum{%s} %g\n%s_count{%s} %d\n", name, labels, h.Sum(), name, labels, h.count.Load())
}

// histVec is a label-keyed family of histograms sharing one bound set.
// The hot path is an RLock plus a map lookup; a new label combination
// takes the write lock once and never again.
type histVec[K comparable] struct {
	bounds []float64
	mu     sync.RWMutex
	m      map[K]*Histogram
}

func newHistVec[K comparable](bounds []float64) *histVec[K] {
	return &histVec[K]{bounds: bounds, m: make(map[K]*Histogram)}
}

// at returns the histogram for key, creating it on first use.
func (v *histVec[K]) at(key K) *Histogram {
	v.mu.RLock()
	h := v.m[key]
	v.mu.RUnlock()
	if h != nil {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h = v.m[key]; h == nil {
		h = NewHistogram(v.bounds)
		v.m[key] = h
	}
	return h
}

// keys returns the registered label combinations, unsorted.
func (v *histVec[K]) keys() []K {
	v.mu.RLock()
	defer v.mu.RUnlock()
	ks := make([]K, 0, len(v.m))
	for k := range v.m {
		ks = append(ks, k)
	}
	return ks
}
