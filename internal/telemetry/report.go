package telemetry

import (
	"fmt"
	"io"

	"credo/internal/viz"
)

// trajectory is one engine's recorded convergence series.
type trajectory struct {
	engine    string
	deltas    []float64
	iters     int32
	final     float32
	converged bool
	ended     bool
	updated   int64
	stale     int64
	wasted    int64
}

// Trajectories folds a recorded event stream into per-engine
// convergence series, in first-seen engine order.
func trajectories(events []Event) []*trajectory {
	var out []*trajectory
	byEngine := make(map[string]*trajectory)
	get := func(name string) *trajectory {
		tr, ok := byEngine[name]
		if !ok {
			tr = &trajectory{engine: name}
			byEngine[name] = tr
			out = append(out, tr)
		}
		return tr
	}
	for _, e := range events {
		switch e.Kind {
		case KindIteration:
			tr := get(e.Engine)
			tr.deltas = append(tr.deltas, float64(e.Delta))
			tr.iters = e.Iter
			tr.final = e.Delta
			// The relaxed-queue counters arrive cumulative, so the latest
			// observation is current even before a run_end closes the run.
			tr.stale = e.StaleDrops
			tr.wasted = e.Wasted
		case KindRunEnd:
			tr := get(e.Engine)
			tr.iters = e.Iter
			tr.final = e.Delta
			tr.converged = e.Converged
			tr.ended = true
			if e.Updated > 0 {
				tr.updated = e.Updated
			}
			tr.stale = e.StaleDrops
			tr.wasted = e.Wasted
		}
	}
	return out
}

// WriteConvergenceReport renders the recorded runs as per-engine
// terminal sparklines of the residual trajectory (log scale — the
// natural shape for deltas spanning decades) with the convergence
// outcome alongside. It is the -telemetry flag's end-of-run report.
func WriteConvergenceReport(w io.Writer, events []Event) {
	trs := trajectories(events)
	if len(trs) == 0 {
		fmt.Fprintln(w, "telemetry: no iteration events recorded")
		return
	}
	nameW := 0
	for _, tr := range trs {
		if len(tr.engine) > nameW {
			nameW = len(tr.engine)
		}
	}
	fmt.Fprintln(w, "convergence trajectories (residual per iteration, log scale):")
	for _, tr := range trs {
		status := "hit cap"
		if tr.converged {
			status = "converged"
		} else if !tr.ended {
			status = "running"
		}
		spark := viz.LogSparkline(tr.deltas)
		if spark == "" {
			spark = "(no iteration boundaries recorded)"
		}
		fmt.Fprintf(w, "  %-*s %s  %d it, Δ=%.3g, %s", nameW, tr.engine, spark, tr.iters, tr.final, status)
		if tr.updated > 0 {
			fmt.Fprintf(w, ", %d updates", tr.updated)
		}
		if tr.stale > 0 || tr.wasted > 0 {
			fmt.Fprintf(w, ", stale=%d wasted=%d", tr.stale, tr.wasted)
		}
		fmt.Fprintln(w)
	}
}
