package telemetry

import (
	"context"
	"runtime/trace"
)

// noop is the shared no-op closure returned whenever execution tracing
// is off; returning the same func keeps the disabled path allocation
// free.
var noop = func() {}

// BeginRun opens a runtime/trace task for one engine execution when the
// execution tracer is active (go test -trace, or the /debug/pprof/trace
// endpoint of the telemetry server). The returned context carries the
// task for StartRegion; the returned func ends it. With tracing off
// both are no-ops and nothing allocates.
func BeginRun(engine string) (context.Context, func()) {
	if !trace.IsEnabled() {
		return context.Background(), noop
	}
	ctx, task := trace.NewTask(context.Background(), engine)
	return ctx, task.End
}

// StartRegion opens a trace region (an engine phase: one iteration, a
// compute region, a frontier rebuild) under the task in ctx and returns
// the func that ends it. A no-op when tracing is off.
func StartRegion(ctx context.Context, name string) func() {
	if !trace.IsEnabled() {
		return noop
	}
	return trace.StartRegion(ctx, name).End
}
