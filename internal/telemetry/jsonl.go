package telemetry

import (
	"bufio"
	"io"
	"strconv"
	"sync"
	"time"
)

// JSONLWriter streams every event as one JSON object per line — the
// event-stream format of the -trace-out flag. Encoding is hand-rolled
// with strconv appenders into a reused buffer (encoding/json's
// reflection would allocate per event), and writes go through a
// bufio.Writer that is flushed on every KindRunEnd so the file is
// complete the moment a run finishes. Safe for concurrent emission.
type JSONLWriter struct {
	mu    sync.Mutex
	w     *bufio.Writer
	buf   []byte
	seq   int64
	start time.Time
}

// NewJSONLWriter returns a writer streaming onto w.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	return &JSONLWriter{w: bufio.NewWriter(w), start: time.Now()}
}

// Emit implements Probe.
func (j *JSONLWriter) Emit(e Event) {
	j.mu.Lock()
	j.seq++
	b := j.buf[:0]
	b = append(b, `{"seq":`...)
	b = strconv.AppendInt(b, j.seq, 10)
	b = append(b, `,"t_ns":`...)
	b = strconv.AppendInt(b, time.Since(j.start).Nanoseconds(), 10)
	b = append(b, `,"kind":"`...)
	b = append(b, e.Kind.String()...)
	b = append(b, `","engine":"`...)
	b = append(b, e.Engine...) // engine names are plain identifiers, no escaping needed
	b = append(b, '"')
	switch e.Kind {
	case KindRunStart:
		b = appendInt(b, "items", e.Items)
		b = appendFloat(b, "threshold", e.Threshold)
	case KindIteration:
		b = appendInt(b, "iter", int64(e.Iter))
		b = appendFloat(b, "delta", e.Delta)
		b = appendInt(b, "updated", e.Updated)
		b = appendInt(b, "edges", e.Edges)
		if e.Active >= 0 {
			b = appendInt(b, "active", e.Active)
		}
		b = appendInt(b, "items", e.Items)
		if e.StaleDrops != 0 || e.Wasted != 0 || e.Contention != 0 {
			b = appendInt(b, "stale_drops", e.StaleDrops)
			b = appendInt(b, "wasted_updates", e.Wasted)
			b = appendInt(b, "queue_contention", e.Contention)
		}
		if e.FastPath != 0 || e.Rescales != 0 {
			b = appendInt(b, "kernel_fast_path", e.FastPath)
			b = appendInt(b, "kernel_rescales", e.Rescales)
		}
	case KindRunEnd:
		b = appendInt(b, "iter", int64(e.Iter))
		b = appendFloat(b, "delta", e.Delta)
		b = appendInt(b, "updated", e.Updated)
		b = appendInt(b, "edges", e.Edges)
		b = append(b, `,"converged":`...)
		b = strconv.AppendBool(b, e.Converged)
		if e.StaleDrops != 0 || e.Wasted != 0 || e.Contention != 0 {
			b = appendInt(b, "stale_drops", e.StaleDrops)
			b = appendInt(b, "wasted_updates", e.Wasted)
			b = appendInt(b, "queue_contention", e.Contention)
		}
	case KindWorker:
		b = appendInt(b, "worker", int64(e.Worker))
		b = appendInt(b, "busy_ns", e.BusyNs)
		b = appendInt(b, "wall_ns", e.WallNs)
	case KindIngest:
		if e.Worker >= 0 {
			b = appendInt(b, "chunk", int64(e.Worker))
		} else {
			b = appendInt(b, "chunks", int64(e.Iter))
			b = appendInt(b, "total_bytes", e.Items)
			b = appendInt(b, "wall_ns", e.WallNs)
			b = appendInt(b, "parse_wall_ns", e.Active)
		}
		b = appendInt(b, "lines", e.Updated)
		b = appendInt(b, "bytes", e.Edges)
		b = appendInt(b, "busy_ns", e.BusyNs)
	case KindServe:
		switch e.Engine {
		case "serve.query":
			b = append(b, `,"warm":`...)
			b = strconv.AppendBool(b, e.Warm)
			b = append(b, `,"converged":`...)
			b = strconv.AppendBool(b, e.Converged)
			b = appendInt(b, "updated", e.Updated)
			b = appendInt(b, "iter", int64(e.Iter))
			if e.Impl != "" {
				// Engine/variant labels are plain identifiers from the
				// serving layer's fixed sets, no escaping needed.
				b = append(b, `,"impl":"`...)
				b = append(b, e.Impl...)
				b = append(b, '"')
			}
			if e.Variant != "" {
				b = append(b, `,"variant":"`...)
				b = append(b, e.Variant...)
				b = append(b, '"')
			}
			b = append(b, `,"batched":`...)
			b = strconv.AppendBool(b, e.Batched)
		case "serve.update":
			// A graph delta batch: Iter carries the applied mutation
			// count, Updated the belief updates of the warm snapshot's
			// re-convergence (0 when it was invalidated instead).
			b = append(b, `,"warm":`...)
			b = strconv.AppendBool(b, e.Warm)
			b = append(b, `,"converged":`...)
			b = strconv.AppendBool(b, e.Converged)
			b = appendInt(b, "updated", e.Updated)
			b = appendInt(b, "applied", int64(e.Iter))
		case "serve.shed":
			b = appendInt(b, "retry_after_s", e.RetryAfterSec)
			b = appendInt(b, "waiting", e.Waiting)
		case "serve.batch":
			if e.Flush != FlushNone {
				b = append(b, `,"flush":"`...)
				b = append(b, e.Flush.String()...)
				b = append(b, '"')
			}
		}
		b = appendInt(b, "depth", e.Active)
		b = appendInt(b, "capacity", e.Items)
		b = appendInt(b, "wall_ns", e.BusyNs)
	}
	b = append(b, '}', '\n')
	j.buf = b
	j.w.Write(b)
	if e.Kind == KindRunEnd || e.Kind == KindServe {
		j.w.Flush()
	}
	j.mu.Unlock()
}

// WriteRaw appends one pre-encoded JSON document as its own line and
// flushes — the flight recorder's path into the event stream, so flight
// dumps land in file order with the events that produced them.
func (j *JSONLWriter) WriteRaw(line []byte) {
	j.mu.Lock()
	j.w.Write(line)
	j.w.WriteByte('\n')
	j.w.Flush()
	j.mu.Unlock()
}

// Flush forces any buffered lines onto the underlying writer.
func (j *JSONLWriter) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.w.Flush()
}

func appendInt(b []byte, key string, v int64) []byte {
	b = append(b, ',', '"')
	b = append(b, key...)
	b = append(b, '"', ':')
	return strconv.AppendInt(b, v, 10)
}

func appendFloat(b []byte, key string, v float32) []byte {
	b = append(b, ',', '"')
	b = append(b, key...)
	b = append(b, '"', ':')
	return strconv.AppendFloat(b, float64(v), 'g', -1, 32)
}
