package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestLogBounds(t *testing.T) {
	b := LogBounds(1e-6, 2, 4)
	want := []float64{1e-6, 2e-6, 4e-6, 8e-6}
	if len(b) != len(want) {
		t.Fatalf("LogBounds len = %d, want %d", len(b), len(want))
	}
	for i := range b {
		if math.Abs(b[i]-want[i]) > 1e-12 {
			t.Errorf("bound[%d] = %g, want %g", i, b[i], want[i])
		}
	}
	if n := len(DefaultLatencyBounds); n != 27 {
		t.Errorf("DefaultLatencyBounds has %d buckets, want 27", n)
	}
	// 2^26 µs ≈ 67s: the default grid must span sub-microsecond to
	// over-a-minute so no serving latency falls off either end.
	if last := DefaultLatencyBounds[len(DefaultLatencyBounds)-1]; last < 60 {
		t.Errorf("top latency bound %g s does not cover a minute", last)
	}
}

func TestHistogramObserveAndQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	if h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatalf("empty histogram: count %d quantile %g", h.Count(), h.Quantile(0.5))
	}
	for _, v := range []float64{0.5, 1.5, 1.5, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 106.5; math.Abs(got-want) > 1e-9 {
		t.Errorf("sum = %g, want %g", got, want)
	}
	// Median lands in the (1,2] bucket; interpolation keeps it inside.
	if q := h.Quantile(0.5); q <= 1 || q > 2 {
		t.Errorf("p50 = %g, want in (1,2]", q)
	}
	// The overflow observation clamps to the top bound instead of
	// inventing mass beyond the grid.
	if q := h.Quantile(0.999); q != 8 {
		t.Errorf("p99.9 = %g, want clamp to top bound 8", q)
	}
}

func TestHistogramWriteProm(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	h.Observe(0.5)
	h.Observe(3)

	var sb strings.Builder
	h.WriteProm(&sb, "x_seconds", `stage="run"`)
	got := sb.String()
	for _, want := range []string{
		`x_seconds_bucket{stage="run",le="1"} 1`,
		`x_seconds_bucket{stage="run",le="4"} 2`,
		`x_seconds_bucket{stage="run",le="+Inf"} 2`,
		`x_seconds_sum{stage="run"} 3.5`,
		`x_seconds_count{stage="run"} 2`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("WriteProm missing %q:\n%s", want, got)
		}
	}
	// The empty (2,4] cumulative still appears... but the zero-count
	// le="2" line is elided only when nothing at or below it; cumulative
	// counts must be monotonic.
	if strings.Contains(got, `le="2"} 0`) {
		t.Errorf("cumulative bucket below an observation reported 0:\n%s", got)
	}
}

// TestHistVecConcurrent hammers one histVec key set from many goroutines;
// run under -race this pins the double-checked map creation.
func TestHistVecConcurrent(t *testing.T) {
	var m Metrics
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				m.ObserveStage("admit", 0.001)
				m.ObserveStage("run", 0.01)
				m.Emit(Event{Kind: KindServe, Engine: "serve.query",
					Impl: "pool.node", BusyNs: int64(1000 * (i + 1))})
			}
		}(w)
	}
	wg.Wait()
	var sb strings.Builder
	m.WriteText(&sb)
	got := sb.String()
	for _, want := range []string{
		`credo_serve_stage_seconds_count{stage="admit"} 1600`,
		`credo_serve_stage_seconds_count{stage="run"} 1600`,
		`credo_serve_latency_seconds_count{engine="pool.node",variant="vanilla",start="cold",path="solo"} 1600`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestLatencyQuantileExposition(t *testing.T) {
	var m Metrics
	for i := 0; i < 100; i++ {
		// 1..100 ms spread: p50 ≈ 50 ms, p99 ≈ 99 ms on the log grid.
		m.Emit(Event{Kind: KindServe, Engine: "serve.query", Impl: "relax",
			Variant: "damped", Warm: true, BusyNs: int64(i+1) * 1e6})
	}
	var sb strings.Builder
	m.WriteText(&sb)
	got := sb.String()
	if !strings.Contains(got, `credo_serve_latency_quantile_seconds{engine="relax",variant="damped",start="warm",path="solo",q="0.5"}`) {
		t.Fatalf("missing p50 gauge:\n%s", got)
	}
	if !strings.Contains(got, `q="0.99"`) || !strings.Contains(got, `q="0.95"`) {
		t.Errorf("missing p95/p99 gauges")
	}
}
