package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

// TestServerEndpointsUnderConcurrentEmission scrapes every ops-plane
// endpoint while emitters, tracers and the flight recorder write at full
// tilt — the steady state of a loaded daemon. Run under -race in CI,
// this is the lock-discipline gate for the whole observability surface:
// histogram lazy-init, histVec map growth, trace pooling and the
// lock-free flight ring all cross goroutines here.
func TestServerEndpointsUnderConcurrentEmission(t *testing.T) {
	var m Metrics
	flight := NewFlightRecorder(16)
	tc := NewTracer(1)
	tc.Metrics = &m
	tc.Flight = flight
	tc.SlowNs = 0 // flag every trace → constant flight captures

	srv, err := NewServer("127.0.0.1:0", &m, flight)
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				tr := tc.Start("query")
				sp := tr.Span("run")
				tr.Emit(Event{Kind: KindIteration, Engine: "relax", Iter: int32(i), Delta: 0.5})
				sp.End()
				tr.SetQuery("relax", "vanilla", i%2 == 0, false)
				tr.Finish()
				m.Emit(Event{Kind: KindServe, Engine: "serve.query", Impl: "relax",
					Warm: i%2 == 0, BusyNs: int64(i%1000+1) * 1000})
				m.Emit(Event{Kind: KindServe, Engine: "serve.batch",
					Flush: FlushDeadline, Active: int64(i%8 + 1), Items: 8})
				m.Emit(Event{Kind: KindServe, Engine: "serve.shed",
					RetryAfterSec: 1, Waiting: int64(i % 4)})
			}
		}(w)
	}

	get := func(path string) []byte {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	for i := 0; i < 20; i++ {
		metrics := string(get("/metrics"))
		for _, want := range []string{
			"credo_serve_latency_seconds_bucket",
			"credo_serve_stage_seconds_bucket",
			"credo_serve_batch_deadline_occupancy_bucket",
			`credo_serve_batch_flushes{reason="deadline"}`,
		} {
			if i > 10 && !strings.Contains(metrics, want) {
				t.Errorf("scrape %d missing %q", i, want)
			}
		}
		var vars map[string]json.RawMessage
		if err := json.Unmarshal(get("/debug/vars"), &vars); err != nil {
			t.Fatalf("/debug/vars scrape %d: %v", i, err)
		}
		var dump struct {
			Captured int64           `json:"captured"`
			Records  []*FlightRecord `json:"records"`
		}
		if err := json.Unmarshal(get("/debug/flight"), &dump); err != nil {
			t.Fatalf("/debug/flight scrape %d: %v", i, err)
		}
		for _, r := range dump.Records {
			if r.Kind != "flight" {
				t.Fatalf("torn flight record: %+v", r)
			}
		}
	}
	close(stop)
	wg.Wait()

	if flight.Captured() == 0 {
		t.Error("no flight records captured under load")
	}
}
