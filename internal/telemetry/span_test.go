package telemetry

import (
	"strings"
	"testing"
	"time"
)

// TestNilTracerIsFree pins the disabled contract end to end: a nil
// tracer yields a nil trace, and every method on the nil trace and its
// zero spans is a safe no-op.
func TestNilTracerIsFree(t *testing.T) {
	var tc *Tracer
	tr := tc.Start("query")
	if tr != nil {
		t.Fatalf("nil tracer Start = %v, want nil", tr)
	}
	sp := tr.Span("admit")
	sp.Child("inner").End()
	sp.End()
	tr.SetQuery("relax", "vanilla", true, false)
	tr.MarkShed()
	tr.MarkIterCap()
	tr.MarkNonConverged()
	tr.MarkColdDelta()
	tr.Emit(Event{Kind: KindIteration})
	if d := tr.Finish(); d != 0 {
		t.Errorf("nil Finish = %v, want 0", d)
	}
}

func TestTracerSampling(t *testing.T) {
	if tr := NewTracer(0).Start("q"); tr != nil {
		t.Error("sample 0 still traced")
	}
	tc := NewTracer(0.5)
	traced := 0
	for i := 0; i < 100; i++ {
		if tr := tc.Start("q"); tr != nil {
			traced++
			tr.Finish()
		}
	}
	if traced != 50 {
		t.Errorf("sample 0.5 traced %d of 100", traced)
	}
}

// TestTraceCapturesSpanTree drives one traced request through a span
// tree and a probe stream, forces capture (SlowNs = 0 flags every
// trace), and checks the flight record reproduces the whole thing.
func TestTraceCapturesSpanTree(t *testing.T) {
	tc := NewTracer(1)
	tc.SlowNs = 0
	tc.Flight = NewFlightRecorder(4)

	tr := tc.Start("query")
	if tr == nil {
		t.Fatal("sample 1 did not trace")
	}
	admit := tr.Span("admit")
	admit.End()
	run := tr.Span("run")
	child := run.Child("kernel")
	child.End()
	// run intentionally left open: Finish must close it at trace end.

	tr.Emit(Event{Kind: KindIteration, Engine: "relax", Iter: 1, Delta: 0.5, Updated: 10, Active: 3})
	tr.Emit(Event{Kind: KindIteration, Engine: "relax", Iter: 2, Delta: 0.01, Updated: 4, Active: 1})
	tr.Emit(Event{Kind: KindRunEnd, Engine: "relax", Iter: 2, Delta: 0.01, Converged: false})
	tr.SetQuery("relax", "vanilla", true, false)
	tr.Finish()

	recs := tc.Flight.Records()
	if len(recs) != 1 {
		t.Fatalf("captured %d records, want 1", len(recs))
	}
	rec := recs[0]
	if rec.Engine != "relax" || !rec.Warm || rec.Batched {
		t.Errorf("labels: %+v", rec)
	}
	wantReasons := map[string]bool{"slow": true, "non_converged": true}
	for _, r := range rec.Reasons {
		if !wantReasons[r] {
			t.Errorf("unexpected reason %q", r)
		}
		delete(wantReasons, r)
	}
	for r := range wantReasons {
		t.Errorf("missing reason %q", r)
	}
	if len(rec.Spans) != 3 {
		t.Fatalf("spans = %+v, want 3", rec.Spans)
	}
	byName := map[string]FlightSpan{}
	for _, sp := range rec.Spans {
		byName[sp.Name] = sp
	}
	if byName["kernel"].Parent != 1 || byName["admit"].Parent != -1 {
		t.Errorf("parent links wrong: %+v", rec.Spans)
	}
	if byName["run"].EndNs != rec.WallNs {
		t.Errorf("open span not closed at trace end: %+v (wall %d)", byName["run"], rec.WallNs)
	}
	if len(rec.Trajectory) != 2 || rec.Trajectory[1].Delta != 0.01 {
		t.Errorf("trajectory: %+v", rec.Trajectory)
	}
	if rec.Iterations != 2 {
		t.Errorf("iterations = %d, want 2", rec.Iterations)
	}
}

// TestTraceBounded overflows both retention arrays and checks the trace
// counts the losses instead of growing.
func TestTraceBounded(t *testing.T) {
	tc := NewTracer(1)
	tc.SlowNs = 0
	tc.Flight = NewFlightRecorder(2)
	tr := tc.Start("query")
	for i := 0; i < traceMaxSpans+10; i++ {
		tr.Span("s")
	}
	for i := 0; i < traceMaxPoints+10; i++ {
		tr.Emit(Event{Kind: KindIteration, Iter: int32(i)})
	}
	tr.Finish()
	recs := tc.Flight.Records()
	if len(recs) != 1 {
		t.Fatalf("captured %d", len(recs))
	}
	if recs[0].LostSpans != 10 || recs[0].LostPoints != 10 {
		t.Errorf("lost spans/points = %d/%d, want 10/10", recs[0].LostSpans, recs[0].LostPoints)
	}
	if len(recs[0].Spans) != traceMaxSpans || len(recs[0].Trajectory) != traceMaxPoints {
		t.Errorf("retained %d spans %d points", len(recs[0].Spans), len(recs[0].Trajectory))
	}
}

// TestTracePoolReuse finishes a trace twice and starts a fresh one from
// the pool: the stale handle must be inert and the reused trace clean.
func TestTracePoolReuse(t *testing.T) {
	tc := NewTracer(1)
	tc.Flight = NewFlightRecorder(4)
	tc.SlowNs = 0

	tr := tc.Start("query")
	tr.Span("a").End()
	tr.Finish()
	tr.Finish() // stale double-finish: must not capture again or panic

	tr2 := tc.Start("query")
	tr2.Span("b").End()
	tr2.Finish()

	recs := tc.Flight.Records()
	if len(recs) != 2 {
		t.Fatalf("captured %d records, want 2", len(recs))
	}
	if len(recs[1].Spans) != 1 || recs[1].Spans[0].Name != "b" {
		t.Errorf("reused trace carried stale spans: %+v", recs[1].Spans)
	}
}

// TestFinishFeedsStageHistograms checks span wall times land in the
// per-stage histograms keyed by span name.
func TestFinishFeedsStageHistograms(t *testing.T) {
	var m Metrics
	tc := NewTracer(1)
	tc.Metrics = &m
	tr := tc.Start("query")
	sp := tr.Span("decode")
	time.Sleep(time.Millisecond)
	sp.End()
	tr.Finish()

	var sb strings.Builder
	m.WriteText(&sb)
	if !strings.Contains(sb.String(), `credo_serve_stage_seconds_count{stage="decode"} 1`) {
		t.Errorf("stage histogram missing:\n%s", sb.String())
	}
}

// TestDisabledTraceAllocFree locks the founding contract for the span
// layer: with tracing disabled (nil tracer → nil trace) the entire span
// API costs zero allocations.
func TestDisabledTraceAllocFree(t *testing.T) {
	var tc *Tracer
	allocs := testing.AllocsPerRun(100, func() {
		tr := tc.Start("query")
		sp := tr.Span("admit")
		sp.Child("inner").End()
		sp.End()
		tr.SetQuery("relax", "vanilla", false, false)
		tr.MarkIterCap()
		tr.Emit(Event{Kind: KindIteration, Iter: 1, Delta: 0.5})
		tr.Finish()
	})
	if allocs != 0 {
		t.Errorf("disabled trace path allocates %.1f per run, want 0", allocs)
	}
}

// TestEnabledTraceAllocBound: a sampled trace that stays non-anomalous
// must not allocate either — spans are value handles into pooled
// arrays; only flight capture (the anomalous cold path) allocates.
func TestEnabledTraceAllocBound(t *testing.T) {
	tc := NewTracer(1)
	allocs := testing.AllocsPerRun(100, func() {
		tr := tc.Start("query")
		sp := tr.Span("admit")
		sp.End()
		run := tr.Span("run")
		tr.Emit(Event{Kind: KindIteration, Iter: 1, Delta: 0.5})
		run.End()
		tr.SetQuery("relax", "vanilla", false, false)
		tr.Finish()
	})
	if allocs != 0 {
		t.Errorf("healthy traced path allocates %.1f per run, want 0", allocs)
	}
}
