package telemetry

import (
	"encoding/json"
	"net/http"
	"sync/atomic"
)

// DefaultFlightDepth is the records retained when NewFlightRecorder is
// given a non-positive depth: enough history to cover a burst of
// anomalies between scrapes at a bounded memory cost (records are a few
// KB each).
const DefaultFlightDepth = 64

// FlightRecord is one retained anomalous request: the full span tree,
// the convergence trajectory, the query labels and the reasons the
// trace qualified. It is immutable once captured.
type FlightRecord struct {
	Kind        string       `json:"kind"` // always "flight" (JSONL discriminator)
	ID          uint64       `json:"id"`
	Name        string       `json:"name"`
	Reasons     []string     `json:"reasons"`
	Engine      string       `json:"engine,omitempty"`
	Variant     string       `json:"variant,omitempty"`
	Warm        bool         `json:"warm"`
	Batched     bool         `json:"batched"`
	StartUnixNs int64        `json:"start_unix_ns"`
	WallNs      int64        `json:"wall_ns"`
	Iterations  int32        `json:"iterations"`
	FinalDelta  float32      `json:"final_delta"`
	Spans       []FlightSpan `json:"spans"`
	Trajectory  []TracePoint `json:"trajectory"`
	LostSpans   int32        `json:"lost_spans,omitempty"`
	LostPoints  int32        `json:"lost_points,omitempty"`
}

// FlightSpan is one span of a flight record's tree. Parent is the index
// of the enclosing span in the record's Spans slice, -1 at the root
// level; times are nanosecond offsets from the trace start.
type FlightSpan struct {
	Name    string `json:"name"`
	Parent  int32  `json:"parent"`
	StartNs int64  `json:"start_ns"`
	EndNs   int64  `json:"end_ns"`
}

// FlightRecorder is the bounded ring that retains flight records: a
// slot array written lock-free (one atomic fetch-add claims a slot, one
// atomic pointer store publishes the record), so capture on the serving
// path never queues behind a reader. Once the ring wraps, the oldest
// record is overwritten — retention is "the last depth anomalies", a
// fixed memory budget no incident can blow through.
//
// Readers snapshot the published pointers without stopping writers; a
// scrape racing a wrap can observe a slot's newer record in an older
// position, which is harmless for a diagnostic dump (records carry
// their own IDs and timestamps).
type FlightRecorder struct {
	slots    []atomic.Pointer[FlightRecord]
	pos      atomic.Uint64
	captured atomic.Int64
	sink     atomic.Pointer[JSONLWriter]
}

// NewFlightRecorder returns a recorder retaining the last depth records
// (<= 0 means DefaultFlightDepth).
func NewFlightRecorder(depth int) *FlightRecorder {
	if depth <= 0 {
		depth = DefaultFlightDepth
	}
	return &FlightRecorder{slots: make([]atomic.Pointer[FlightRecord], depth)}
}

// SetSink attaches a JSONL writer: every captured record is also
// appended to it as one "kind":"flight" line, interleaving cleanly with
// the event stream of the -trace-out file.
func (f *FlightRecorder) SetSink(w *JSONLWriter) {
	if f == nil {
		return
	}
	f.sink.Store(w)
}

// Capture publishes one record into the ring (and the JSONL sink when
// attached). Safe for concurrent use; nil recorder and nil record are
// no-ops.
func (f *FlightRecorder) Capture(rec *FlightRecord) {
	if f == nil || rec == nil {
		return
	}
	i := f.pos.Add(1) - 1
	f.slots[i%uint64(len(f.slots))].Store(rec)
	f.captured.Add(1)
	if w := f.sink.Load(); w != nil {
		if b, err := json.Marshal(rec); err == nil {
			w.WriteRaw(b)
		}
	}
}

// Captured returns the total records captured since creation (retained
// or since overwritten).
func (f *FlightRecorder) Captured() int64 {
	if f == nil {
		return 0
	}
	return f.captured.Load()
}

// Depth returns the ring capacity.
func (f *FlightRecorder) Depth() int {
	if f == nil {
		return 0
	}
	return len(f.slots)
}

// Records returns the retained records, oldest first.
func (f *FlightRecorder) Records() []*FlightRecord {
	if f == nil {
		return nil
	}
	n := uint64(len(f.slots))
	pos := f.pos.Load()
	start := uint64(0)
	if pos > n {
		start = pos - n
	}
	out := make([]*FlightRecord, 0, pos-start)
	for i := start; i < pos; i++ {
		if rec := f.slots[i%n].Load(); rec != nil {
			out = append(out, rec)
		}
	}
	return out
}

// flightDump is the wire shape of the /debug/flight endpoint.
type flightDump struct {
	Captured int64           `json:"captured"`
	Depth    int             `json:"depth"`
	Records  []*FlightRecord `json:"records"`
}

// Handler serves the retained records as one JSON document — the
// /debug/flight endpoint of the ops plane. Valid on a nil recorder
// (an empty dump), so the ops server can always mount the route.
func (f *FlightRecorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		recs := f.Records()
		if recs == nil {
			recs = []*FlightRecord{}
		}
		json.NewEncoder(w).Encode(flightDump{
			Captured: f.Captured(),
			Depth:    f.Depth(),
			Records:  recs,
		})
	})
}
