// Package telemetry is the engine-agnostic instrumentation layer: every
// engine reports per-iteration convergence state, work rates and
// scheduler health through the Probe interface, and pluggable sinks turn
// that stream into whatever the operator needs — an in-memory ring for
// post-run reports, a JSONL event stream for offline analysis, a
// Prometheus-style text exposition with expvar and pprof for live
// serving, and terminal sparkline reports rendered through internal/viz.
//
// The layer is built around one contract: observability is free when it
// is off. Options.Probe is a nil interface by default; every engine
// guards its emission sites with a nil check, the Event payload is a
// flat value struct that never escapes on that path, and the disabled
// path is locked at 0 allocs/run by the allocation tests and within
// noise of the uninstrumented engines by BenchmarkProbeOverhead. When a
// probe is attached, events fire only at iteration/batch boundaries —
// never per node or per edge — so even the enabled path costs a few
// interface calls per sweep.
//
// The design follows the diagnosis workflow of the scheduling
// literature (Van der Merwe et al.; Aksenov et al.): per-iteration
// residual/update trajectories are the signal that exposes scheduler
// pathologies, so the Event model carries exactly those series — global
// residual norms, beliefs-updated counts, frontier/queue occupancy,
// relaxed-queue stale/wasted traffic, per-worker utilization and kernel
// fast-path ratios.
package telemetry

// Kind discriminates probe events.
type Kind uint8

const (
	// KindRunStart opens a run: Engine, Items and Threshold are set.
	KindRunStart Kind = iota
	// KindIteration is one iteration/batch boundary: Iter, Delta,
	// Updated, Edges, Active and the cumulative counter groups are set.
	KindIteration
	// KindRunEnd closes a run: Iter holds the final iteration count,
	// Delta the final residual and Converged the outcome.
	KindRunEnd
	// KindWorker reports one worker's utilization for the whole run:
	// Worker, BusyNs and WallNs are set (sync wait = WallNs - BusyNs).
	KindWorker
	// KindIngest reports graph-loading progress from the parallel chunked
	// ingest path (internal/mtxbp). Engine is the phase ("ingest.nodes",
	// "ingest.edges"); a per-chunk event has Worker >= 0 (the chunk
	// index) and carries that chunk's increments — Updated data lines
	// parsed, Edges bytes consumed, BusyNs parse time; the phase summary
	// has Worker == -1 and carries Iter chunk count, Items total region
	// bytes, BusyNs summed parse time, WallNs the phase wall clock and
	// Active the wall clock of the phase's fan-out sub-spans alone
	// (chunk parse plus block install — the parallelizable span).
	KindIngest
	// KindServe reports one serving-layer outcome (internal/serve).
	// Engine discriminates the path: "serve.query" is a completed query
	// (Warm marks a warm start, Converged the outcome, Updated the belief
	// updates applied, BusyNs the query wall clock, Active the admission
	// depth — in-flight plus waiting — observed at completion, Items the
	// admission capacity); "serve.shed" is a request rejected by
	// admission control (Active/Items as above); "serve.load" is a graph
	// loaded into the registry (Items its node count, BusyNs load wall).
	KindServe
)

// String returns the JSONL name of the kind.
func (k Kind) String() string {
	switch k {
	case KindRunStart:
		return "run_start"
	case KindIteration:
		return "iteration"
	case KindRunEnd:
		return "run_end"
	case KindWorker:
		return "worker"
	case KindIngest:
		return "ingest"
	case KindServe:
		return "serve"
	}
	return "unknown"
}

// Event is one probe emission. It is a flat value struct — no pointers,
// no maps — so that building and passing one on the disabled path costs
// nothing and on the enabled path never allocates. Fields outside an
// event kind's set are zero.
type Event struct {
	// Kind discriminates which fields are meaningful.
	Kind Kind
	// Engine names the emitting engine ("bp.node", "pool.edge",
	// "relax", "cuda.node", ...). Always a compile-time constant in the
	// engines, so carrying it allocates nothing.
	Engine string

	// Iter is the 1-based iteration (sweep engines), convergence-check
	// index (poolbp), or sweep-equivalent batch number (residual
	// engines).
	Iter int32
	// Worker is the worker id of a KindWorker event, -1 otherwise.
	Worker int32

	// Delta is the global residual norm at this boundary: the sum over
	// nodes of the L1 belief change (sweep engines) or the largest
	// pending residual (residual engines).
	Delta float32
	// Threshold is the run's convergence bound (KindRunStart).
	Threshold float32

	// Updated counts node belief updates. In a KindIteration event it is
	// the increment since the previous boundary (so sinks may sum it); in
	// a KindRunEnd event it is the run's cumulative total.
	Updated int64
	// Edges counts edge message computations on the same basis as
	// Updated.
	Edges int64
	// Active is the frontier/queue occupancy after the boundary: work
	// queue length, residual heap size, or the relaxed engine's
	// in-flight entry count. -1 when the engine runs without a queue.
	Active int64
	// Items is the paradigm's total item count (nodes or edges), the
	// denominator that turns Active into a convergence fraction.
	Items int64

	// Converged reports a KindRunEnd outcome.
	Converged bool

	// Warm marks a KindServe query that re-converged from a warm-start
	// snapshot instead of from the priors.
	Warm bool

	// Impl is the resolved engine implementation label of a serve.query
	// event ("residual", "relax", "pool.node", "batch", ...) — the
	// engine dimension of the latency histograms.
	Impl string
	// Variant is the message-update rule label of a serve.query event
	// ("vanilla", "damped", "circular").
	Variant string
	// Batched marks a serve.query that ran through the cross-query
	// batcher (one lane of a flush) rather than the solo path.
	Batched bool
	// Flush is the trigger of a serve.batch flush event.
	Flush FlushReason
	// RetryAfterSec is the Retry-After hint (seconds, as sent on the
	// wire) of a serve.shed event.
	RetryAfterSec int64
	// Waiting is the admission waiting-line depth alone (admitted
	// in-flight queries excluded) at a serve.shed event.
	Waiting int64

	// Relaxed-scheduling counters, cumulative, read from the live
	// atomics the engine itself accounts with (single source of truth
	// with the final OpCounts).
	StaleDrops int64
	Wasted     int64
	Contention int64

	// Kernel-layer counters, cumulative: fused fast-path folds taken
	// and max-rescales of linear running products.
	FastPath int64
	Rescales int64

	// Worker utilization (KindWorker): BusyNs is the time the worker
	// spent executing region bodies, WallNs the wall-clock span of all
	// parallel regions. WallNs-BusyNs is time lost to barrier waits and
	// queue starvation.
	BusyNs int64
	WallNs int64
}

// ConvergedFraction returns 1 - Active/Items — the fraction of the item
// space outside the unconverged frontier — or 0 when the event carries
// no occupancy data.
func (e Event) ConvergedFraction() float64 {
	if e.Items <= 0 || e.Active < 0 {
		return 0
	}
	f := 1 - float64(e.Active)/float64(e.Items)
	if f < 0 {
		return 0
	}
	return f
}

// FlushReason discriminates what triggered a cross-query batch flush —
// the label the adaptive-batch-window tuning reads: a K-full flush
// means the window could shrink, a deadline flush at low occupancy
// means arrivals are too sparse for the current K.
type FlushReason uint8

const (
	// FlushNone is the zero value (no reason recorded).
	FlushNone FlushReason = iota
	// FlushFull: the Kth query arrived and filled every lane.
	FlushFull
	// FlushDeadline: the accumulation window expired on a partial batch.
	FlushDeadline
	// FlushShutdown: the server drained its batchers while shutting down.
	FlushShutdown
	// FlushDirect: a direct QueryBatched call bypassed accumulation
	// (tests and the credobench serve experiment).
	FlushDirect
)

// String returns the Prometheus/JSONL label of the reason.
func (f FlushReason) String() string {
	switch f {
	case FlushFull:
		return "full"
	case FlushDeadline:
		return "deadline"
	case FlushShutdown:
		return "shutdown"
	case FlushDirect:
		return "direct"
	}
	return "none"
}

// Probe receives engine events at iteration/batch boundaries. Emit may
// be called concurrently from engine workers; every sink in this
// package is safe for concurrent use. Implementations must not retain
// references into the event (it is a value; copying it is retention
// enough).
type Probe interface {
	Emit(e Event)
}

// multi fans one emission out to several sinks.
type multi []Probe

func (m multi) Emit(e Event) {
	for _, p := range m {
		p.Emit(e)
	}
}

// Multi combines probes into one that forwards every event to each of
// them in order. Nil entries are dropped; Multi returns nil when
// nothing remains (keeping the disabled fast path) and the probe itself
// when exactly one remains.
func Multi(probes ...Probe) Probe {
	var ps multi
	for _, p := range probes {
		if p != nil {
			ps = append(ps, p)
		}
	}
	switch len(ps) {
	case 0:
		return nil
	case 1:
		return ps[0]
	}
	return ps
}
