package telemetry

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Request-scoped tracing. A Tracer hands out pooled Traces — one per
// sampled serving request — and every layer the request crosses opens a
// Span on it: admission wait, batch accumulation, warm-vs-cold staging,
// the engine run (the engines open their own span through
// bp.Options.Trace) and belief extraction. Engine probe events mirror
// into the trace as a bounded convergence trajectory, so a finished
// trace holds both *where the wall time went* (the span tree) and *what
// convergence did meanwhile* (the residual series) — exactly the two
// series the scheduling literature reads together.
//
// The layer keeps the package's founding contract: observability is
// free when it is off. A nil *Tracer returns a nil *Trace, every Trace
// and Span method is a nil-safe no-op, and span handles are value
// structs carved out of the trace's pre-allocated arrays — the disabled
// path is locked at 0 allocs by TestDisabledTraceAllocFree, and the
// enabled path allocates only when a trace is captured by the flight
// recorder (the anomalous-query cold path).

// Per-trace retention bounds. Spans cover pipeline stages (a dozen per
// request, never per node); trajectory points arrive once per engine
// iteration, so 256 covers a 200-iteration capped run with margin.
// Overflow is counted, never grown — a trace can never amplify a
// pathological run's memory.
const (
	traceMaxSpans  = 32
	traceMaxPoints = 256
)

// traceFlag marks one anomaly class on a trace; any set flag makes the
// trace flight-recordable at Finish.
type traceFlag uint8

const (
	flagSlow traceFlag = 1 << iota
	flagShed
	flagIterCap
	flagNonConverged
	flagColdDelta
)

// flagNames renders the set flags as the flight record's reason list.
func flagNames(f traceFlag) []string {
	var out []string
	for _, r := range []struct {
		flag traceFlag
		name string
	}{
		{flagSlow, "slow"},
		{flagShed, "shed"},
		{flagIterCap, "iter_cap"},
		{flagNonConverged, "non_converged"},
		{flagColdDelta, "cold_large_delta"},
	} {
		if f&r.flag != 0 {
			out = append(out, r.name)
		}
	}
	return out
}

// Tracer creates request traces. The zero value is unusable — build one
// with NewTracer — but a nil *Tracer is the valid disabled state: Start
// returns nil and the whole span API degrades to free no-ops.
type Tracer struct {
	// Metrics, when non-nil, receives per-stage wall times from every
	// finished trace (the credo_serve_stage_seconds histograms).
	Metrics *Metrics

	// Flight, when non-nil, retains anomalous traces: any trace with an
	// anomaly flag set (slow, shed, iteration cap, non-converged lane,
	// cold-staged-on-large-delta) is captured at Finish.
	Flight *FlightRecorder

	// SlowNs is the latency anomaly threshold: a trace whose total wall
	// reaches it is flagged slow. Zero flags every trace (the forced-
	// capture smoke mode); negative disables the latency trigger.
	// NewTracer leaves it at -1.
	SlowNs int64

	every uint64 // trace every Nth Start; 0 = never
	seq   atomic.Uint64
	ids   atomic.Uint64
	pool  sync.Pool
}

// NewTracer returns a tracer sampling the given fraction of Start calls
// (1 traces every request, 0.01 every hundredth, <= 0 none). The
// latency trigger starts disabled; set SlowNs (and Metrics / Flight)
// before serving.
func NewTracer(sample float64) *Tracer {
	t := &Tracer{SlowNs: -1}
	switch {
	case sample <= 0:
		t.every = 0
	case sample >= 1:
		t.every = 1
	default:
		t.every = uint64(math.Round(1 / sample))
		if t.every < 1 {
			t.every = 1
		}
	}
	t.pool.New = func() any {
		return &Trace{
			spans:  make([]spanRec, 0, traceMaxSpans),
			points: make([]TracePoint, 0, traceMaxPoints),
		}
	}
	return t
}

// Start opens a trace for one request, or returns nil when the tracer
// is nil or sampling skips this request. The caller owns the trace
// until Finish returns it to the pool.
func (t *Tracer) Start(name string) *Trace {
	if t == nil || t.every == 0 {
		return nil
	}
	if t.every > 1 && t.seq.Add(1)%t.every != 0 {
		return nil
	}
	tr := t.pool.Get().(*Trace)
	tr.tracer = t
	tr.id = t.ids.Add(1)
	tr.name = name
	tr.start = time.Now()
	return tr
}

// spanRec is one recorded span: offsets on the trace's monotonic clock
// (time.Since against the trace start, so wall-clock steps never warp a
// span) plus the parent link. endNs == 0 means still open — Finish
// closes stragglers at the trace end.
type spanRec struct {
	name    string
	parent  int32
	startNs int64
	endNs   int64
}

// TracePoint is one convergence-trajectory sample, mirrored from a
// KindIteration probe event with the trace-relative arrival time.
type TracePoint struct {
	TNs     int64   `json:"t_ns"`
	Engine  string  `json:"engine"`
	Iter    int32   `json:"iter"`
	Delta   float32 `json:"delta"`
	Updated int64   `json:"updated"`
	Active  int64   `json:"active"`
}

// Trace is one request's span tree and convergence trajectory. All
// methods are safe on a nil receiver (the unsampled/disabled state) and
// safe for concurrent use — spans and probe events may arrive from the
// batcher and engine worker goroutines while the handler goroutine owns
// the request.
type Trace struct {
	tracer *Tracer
	id     uint64
	name   string
	start  time.Time

	mu         sync.Mutex
	spans      []spanRec
	points     []TracePoint
	lostSpans  int32
	lostPoints int32
	flags      traceFlag
	engine     string
	variant    string
	warm       bool
	batched    bool
	endIter    int32
	endDelta   float32
	done       bool
}

// Span is a handle on one open span — a value struct, so opening and
// ending spans never allocates. The zero Span (from a nil trace or a
// full span table) is a valid no-op handle.
type Span struct {
	t   *Trace
	idx int32
}

// Span opens a root-level span. End it with Span.End; a span left open
// is closed at the trace end by Finish.
func (t *Trace) Span(name string) Span { return t.span(name, -1) }

// Child opens a span nested under s.
func (s Span) Child(name string) Span {
	if s.t == nil {
		return Span{}
	}
	return s.t.span(name, s.idx)
}

func (t *Trace) span(name string, parent int32) Span {
	if t == nil {
		return Span{}
	}
	now := time.Since(t.start).Nanoseconds()
	t.mu.Lock()
	if len(t.spans) == cap(t.spans) {
		t.lostSpans++
		t.mu.Unlock()
		return Span{}
	}
	idx := int32(len(t.spans))
	t.spans = append(t.spans, spanRec{name: name, parent: parent, startNs: now})
	t.mu.Unlock()
	return Span{t: t, idx: idx}
}

// End closes the span at the current trace clock.
func (s Span) End() {
	if s.t == nil {
		return
	}
	now := time.Since(s.t.start).Nanoseconds()
	s.t.mu.Lock()
	s.t.spans[s.idx].endNs = now
	s.t.mu.Unlock()
}

// SetQuery attaches the resolved query labels — the latency-histogram
// dimensions — to the trace for its flight record.
func (t *Trace) SetQuery(engine, variant string, warm, batched bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.engine, t.variant, t.warm, t.batched = engine, variant, warm, batched
	t.mu.Unlock()
}

// MarkShed flags the request as rejected by admission control.
func (t *Trace) MarkShed() { t.mark(flagShed) }

// MarkIterCap flags the run as stopped by the iteration cap.
func (t *Trace) MarkIterCap() { t.mark(flagIterCap) }

// MarkNonConverged flags a lane or run that ended unconverged.
func (t *Trace) MarkNonConverged() { t.mark(flagNonConverged) }

// MarkColdDelta flags a batch lane staged cold because its evidence
// delta against the warm snapshot was too large.
func (t *Trace) MarkColdDelta() { t.mark(flagColdDelta) }

func (t *Trace) mark(f traceFlag) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.flags |= f
	t.mu.Unlock()
}

// Emit implements Probe: engine iteration events append to the bounded
// convergence trajectory and a run end records the outcome, so the
// existing per-iteration probe contract doubles as span annotation with
// no engine changes beyond attaching the trace to the probe chain.
func (t *Trace) Emit(e Event) {
	if t == nil {
		return
	}
	switch e.Kind {
	case KindIteration:
		now := time.Since(t.start).Nanoseconds()
		t.mu.Lock()
		if len(t.points) < cap(t.points) {
			t.points = append(t.points, TracePoint{
				TNs:     now,
				Engine:  e.Engine,
				Iter:    e.Iter,
				Delta:   e.Delta,
				Updated: e.Updated,
				Active:  e.Active,
			})
		} else {
			t.lostPoints++
		}
		t.mu.Unlock()
	case KindRunEnd:
		t.mu.Lock()
		t.endIter, t.endDelta = e.Iter, e.Delta
		if !e.Converged {
			t.flags |= flagNonConverged
		}
		t.mu.Unlock()
	}
}

// Finish closes the trace: stage wall times feed the metrics
// histograms, an anomalous trace (any flag set, or total wall past the
// tracer's SlowNs) is captured by the flight recorder, and the trace
// returns to the pool. It reports the total wall clock, is idempotent,
// and is a no-op on nil.
func (t *Trace) Finish() time.Duration {
	if t == nil {
		return 0
	}
	total := time.Since(t.start)
	t.mu.Lock()
	// tracer == nil means a stale handle re-finishing a trace that was
	// already reset and pooled; it must not touch the trace's state (a
	// poisoned done flag would silently drop the next request's trace).
	if t.done || t.tracer == nil {
		t.mu.Unlock()
		return total
	}
	t.done = true
	tc := t.tracer
	if tc.SlowNs >= 0 && total.Nanoseconds() >= tc.SlowNs {
		t.flags |= flagSlow
	}
	if tc.Metrics != nil {
		for i := range t.spans {
			sp := &t.spans[i]
			end := sp.endNs
			if end == 0 {
				end = total.Nanoseconds()
			}
			tc.Metrics.ObserveStage(sp.name, float64(end-sp.startNs)/1e9)
		}
	}
	if tc.Flight != nil && t.flags != 0 {
		tc.Flight.Capture(t.record(total))
	}
	t.reset()
	t.mu.Unlock()
	tc.pool.Put(t)
	return total
}

// record snapshots the trace into an immutable flight record (the only
// allocation of the tracing layer, paid on the anomalous path alone).
func (t *Trace) record(total time.Duration) *FlightRecord {
	rec := &FlightRecord{
		Kind:        "flight",
		ID:          t.id,
		Name:        t.name,
		Reasons:     flagNames(t.flags),
		Engine:      t.engine,
		Variant:     t.variant,
		Warm:        t.warm,
		Batched:     t.batched,
		StartUnixNs: t.start.UnixNano(),
		WallNs:      total.Nanoseconds(),
		Iterations:  t.endIter,
		FinalDelta:  t.endDelta,
		LostSpans:   t.lostSpans,
		LostPoints:  t.lostPoints,
		Spans:       make([]FlightSpan, len(t.spans)),
		Trajectory:  append([]TracePoint(nil), t.points...),
	}
	for i, sp := range t.spans {
		end := sp.endNs
		if end == 0 {
			end = rec.WallNs
		}
		rec.Spans[i] = FlightSpan{Name: sp.name, Parent: sp.parent, StartNs: sp.startNs, EndNs: end}
	}
	return rec
}

// reset clears the trace for pooled reuse, keeping the backing arrays.
// Caller holds t.mu.
func (t *Trace) reset() {
	t.tracer = nil
	t.id = 0
	t.name = ""
	t.start = time.Time{}
	t.spans = t.spans[:0]
	t.points = t.points[:0]
	t.lostSpans, t.lostPoints = 0, 0
	t.flags = 0
	t.engine, t.variant = "", ""
	t.warm, t.batched = false, false
	t.endIter, t.endDelta = 0, 0
	t.done = false
}
