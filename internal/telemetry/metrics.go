package telemetry

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"sync/atomic"
)

// Metrics is the live-export sink: a fixed set of counters and gauges
// updated atomically on every event and rendered on demand as a
// Prometheus-style text exposition (WriteText / Handler) or an expvar
// map. Attach one probe per process and scrape it from the -http
// endpoint while a long run is in flight.
type Metrics struct {
	runs       atomic.Int64  // completed runs (KindRunEnd)
	converged  atomic.Int64  // completed runs that converged
	iterations atomic.Int64  // iteration/batch boundaries observed
	updated    atomic.Int64  // node belief updates
	edges      atomic.Int64  // edge message computations
	staleDrops atomic.Int64  // relaxed-queue entries superseded before pop
	wasted     atomic.Int64  // relaxed-queue pops below threshold
	contention atomic.Int64  // failed TryLock acquisitions
	fastPath   atomic.Int64  // kernel linear fast-path folds
	rescales   atomic.Int64  // kernel max-rescales
	lastDelta  atomic.Uint64 // float64 bits of the last residual norm
	lastActive atomic.Int64  // last frontier/queue occupancy (-1 unknown)
	lastItems  atomic.Int64  // last item-space size

	ingestBytes atomic.Int64 // bytes consumed by the ingest chunk parsers
	ingestLines atomic.Int64 // data lines parsed by the ingest chunk parsers

	servQueries atomic.Int64 // served queries completed (serve.query)
	servWarm    atomic.Int64 // served queries that warm-started
	servShed    atomic.Int64 // requests rejected by admission control
	servLoads   atomic.Int64 // graphs loaded into the serving registry
	servDepth   atomic.Int64 // last observed admission depth (in-flight + waiting)
	servWallNs  atomic.Int64 // wall clock of the last served query
	servFlushes atomic.Int64 // cross-query batch flushes (serve.batch)
	servBatched atomic.Int64 // lanes occupied across batch flushes

	mu         sync.Mutex
	lastEngine string
}

// Emit implements Probe.
func (m *Metrics) Emit(e Event) {
	switch e.Kind {
	case KindRunStart:
		m.mu.Lock()
		m.lastEngine = e.Engine
		m.mu.Unlock()
		m.lastItems.Store(e.Items)
	case KindIteration:
		m.iterations.Add(1)
		// Iteration events carry per-boundary increments for Updated and
		// Edges (the Event contract), so summing them yields run totals;
		// the relaxed/kernel counter groups arrive as running totals and
		// go through storeMax instead.
		if e.Updated > 0 {
			m.updated.Add(e.Updated)
		}
		if e.Edges > 0 {
			m.edges.Add(e.Edges)
		}
		m.lastDelta.Store(math.Float64bits(float64(e.Delta)))
		m.lastActive.Store(e.Active)
		if e.Items > 0 {
			m.lastItems.Store(e.Items)
		}
		m.storeMax(&m.staleDrops, e.StaleDrops)
		m.storeMax(&m.wasted, e.Wasted)
		m.storeMax(&m.contention, e.Contention)
		m.storeMax(&m.fastPath, e.FastPath)
		m.storeMax(&m.rescales, e.Rescales)
	case KindRunEnd:
		m.runs.Add(1)
		if e.Converged {
			m.converged.Add(1)
		}
		m.lastDelta.Store(math.Float64bits(float64(e.Delta)))
		m.storeMax(&m.staleDrops, e.StaleDrops)
		m.storeMax(&m.wasted, e.Wasted)
		m.storeMax(&m.contention, e.Contention)
	case KindIngest:
		// Only per-chunk events (Worker >= 0) carry increments; the phase
		// summary repeats the totals and would double-count.
		if e.Worker >= 0 {
			m.ingestBytes.Add(e.Edges)
			m.ingestLines.Add(e.Updated)
		}
	case KindServe:
		switch e.Engine {
		case "serve.query":
			m.servQueries.Add(1)
			if e.Warm {
				m.servWarm.Add(1)
			}
			m.servWallNs.Store(e.BusyNs)
			m.servDepth.Store(e.Active)
		case "serve.shed":
			m.servShed.Add(1)
			m.servDepth.Store(e.Active)
		case "serve.batch":
			// One event per flush: Active carries the lane occupancy, so
			// occupancy/flushes is the mean batch fill.
			m.servFlushes.Add(1)
			m.servBatched.Add(e.Active)
		case "serve.load":
			m.servLoads.Add(1)
		}
	}
}

// storeMax raises c to v when v is larger — cumulative counter groups
// arrive as running totals, so the largest observation is the total.
func (m *Metrics) storeMax(c *atomic.Int64, v int64) {
	for {
		cur := c.Load()
		if v <= cur || c.CompareAndSwap(cur, v) {
			return
		}
	}
}

// WriteText renders the Prometheus text exposition format (version
// 0.0.4: # HELP/# TYPE comments and name value lines).
func (m *Metrics) WriteText(w io.Writer) {
	m.mu.Lock()
	engine := m.lastEngine
	m.mu.Unlock()
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		fmt.Fprintf(w, "%s %d\n", name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
		fmt.Fprintf(w, "%s %g\n", name, v)
	}
	counter("credo_runs_total", "Completed propagation runs.", m.runs.Load())
	counter("credo_runs_converged_total", "Completed runs that converged.", m.converged.Load())
	counter("credo_iterations_total", "Iteration/batch boundaries observed.", m.iterations.Load())
	counter("credo_belief_updates_total", "Node belief updates.", m.updated.Load())
	counter("credo_edge_messages_total", "Edge message computations.", m.edges.Load())
	counter("credo_relax_stale_drops_total", "Relaxed-queue entries superseded before pop.", m.staleDrops.Load())
	counter("credo_relax_wasted_updates_total", "Relaxed-queue pops recomputed below threshold.", m.wasted.Load())
	counter("credo_queue_contention_total", "Failed TryLock acquisitions on sharded queues.", m.contention.Load())
	counter("credo_kernel_fast_path_total", "Kernel linear fast-path folds.", m.fastPath.Load())
	counter("credo_kernel_rescales_total", "Kernel max-rescales of linear products.", m.rescales.Load())
	counter("credo_ingest_bytes_total", "Bytes consumed by the mtxbp ingest parsers.", m.ingestBytes.Load())
	counter("credo_ingest_lines_total", "Data lines parsed by the mtxbp ingest parsers.", m.ingestLines.Load())
	counter("credo_serve_queries_total", "Posterior queries served.", m.servQueries.Load())
	counter("credo_serve_warm_total", "Served queries that re-converged from a warm-start snapshot.", m.servWarm.Load())
	counter("credo_serve_shed_total", "Requests rejected by admission control.", m.servShed.Load())
	counter("credo_serve_loads_total", "Graphs loaded into the serving registry.", m.servLoads.Load())
	counter("credo_serve_batch_flushes", "Cross-query batch flushes executed.", m.servFlushes.Load())
	counter("credo_serve_batch_occupancy", "Lanes occupied across batch flushes (occupancy/flushes = mean fill).", m.servBatched.Load())
	gauge("credo_serve_depth", "Admission depth (in-flight + waiting) at the last serve event.", float64(m.servDepth.Load()))
	gauge("credo_serve_last_wall_ns", "Wall clock of the last served query in nanoseconds.", float64(m.servWallNs.Load()))
	// The residual originates as a float32; format at 32-bit precision so
	// the exposition shows 0.0008, not the widened float64 digits.
	fmt.Fprintf(w, "# HELP credo_last_delta Global residual norm at the last boundary.\n# TYPE credo_last_delta gauge\n")
	fmt.Fprintf(w, "credo_last_delta %s\n",
		strconv.FormatFloat(math.Float64frombits(m.lastDelta.Load()), 'g', -1, 32))
	gauge("credo_active_items", "Frontier/queue occupancy at the last boundary.", float64(m.lastActive.Load()))
	gauge("credo_total_items", "Item-space size of the last observed run.", float64(m.lastItems.Load()))
	if engine != "" {
		fmt.Fprintf(w, "# HELP credo_engine_info Engine of the last observed run.\n# TYPE credo_engine_info gauge\ncredo_engine_info{engine=%q} 1\n", engine)
	}
}

// Handler returns an http.Handler serving the text exposition.
func (m *Metrics) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		m.WriteText(w)
	})
}

// snapshot returns the expvar view of the metrics.
func (m *Metrics) snapshot() any {
	m.mu.Lock()
	engine := m.lastEngine
	m.mu.Unlock()
	return map[string]any{
		"runs":                  m.runs.Load(),
		"runs_converged":        m.converged.Load(),
		"iterations":            m.iterations.Load(),
		"belief_updates":        m.updated.Load(),
		"edge_messages":         m.edges.Load(),
		"stale_drops":           m.staleDrops.Load(),
		"wasted_updates":        m.wasted.Load(),
		"queue_contention":      m.contention.Load(),
		"kernel_fast_path":      m.fastPath.Load(),
		"kernel_rescales":       m.rescales.Load(),
		"ingest_bytes":          m.ingestBytes.Load(),
		"ingest_lines":          m.ingestLines.Load(),
		"serve_queries":         m.servQueries.Load(),
		"serve_warm":            m.servWarm.Load(),
		"serve_shed":            m.servShed.Load(),
		"serve_loads":           m.servLoads.Load(),
		"serve_batch_flushes":   m.servFlushes.Load(),
		"serve_batch_occupancy": m.servBatched.Load(),
		"serve_depth":           m.servDepth.Load(),
		"serve_wall_ns":         m.servWallNs.Load(),
		"last_delta":            math.Float64frombits(m.lastDelta.Load()),
		"active_items":          m.lastActive.Load(),
		"total_items":           m.lastItems.Load(),
		"engine":                engine,
	}
}

var expvarOnce sync.Once

// PublishExpvar exposes the metrics under the "credo.telemetry" expvar
// name (idempotent — expvar forbids duplicate names, and the process
// has one /debug/vars namespace).
func (m *Metrics) PublishExpvar() {
	expvarOnce.Do(func() {
		expvar.Publish("credo.telemetry", expvar.Func(m.snapshot))
	})
}

// Server is a live telemetry endpoint: /metrics (Prometheus text),
// /debug/vars (expvar) and /debug/pprof (runtime profiling), all from
// the standard library.
type Server struct {
	Addr string // actual listen address (useful with ":0")
	srv  *http.Server
	ln   net.Listener
}

// NewServer binds addr and returns the server ready to Start. The
// metrics probe is published to expvar as a side effect so /debug/vars
// carries the same numbers as /metrics.
func NewServer(addr string, m *Metrics) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	m.PublishExpvar()
	mux := http.NewServeMux()
	mux.Handle("/metrics", m.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return &Server{Addr: ln.Addr().String(), srv: &http.Server{Handler: mux}, ln: ln}, nil
}

// Start serves in a background goroutine until Close.
func (s *Server) Start() {
	go s.srv.Serve(s.ln)
}

// Close shuts the endpoint down.
func (s *Server) Close() error { return s.srv.Close() }
