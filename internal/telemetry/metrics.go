package telemetry

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Metrics is the live-export sink: a fixed set of counters and gauges
// updated atomically on every event and rendered on demand as a
// Prometheus-style text exposition (WriteText / Handler) or an expvar
// map. Attach one probe per process and scrape it from the -http
// endpoint while a long run is in flight.
type Metrics struct {
	runs       atomic.Int64  // completed runs (KindRunEnd)
	converged  atomic.Int64  // completed runs that converged
	iterations atomic.Int64  // iteration/batch boundaries observed
	updated    atomic.Int64  // node belief updates
	edges      atomic.Int64  // edge message computations
	staleDrops atomic.Int64  // relaxed-queue entries superseded before pop
	wasted     atomic.Int64  // relaxed-queue pops below threshold
	contention atomic.Int64  // failed TryLock acquisitions
	fastPath   atomic.Int64  // kernel linear fast-path folds
	rescales   atomic.Int64  // kernel max-rescales
	lastDelta  atomic.Uint64 // float64 bits of the last residual norm
	lastActive atomic.Int64  // last frontier/queue occupancy (-1 unknown)
	lastItems  atomic.Int64  // last item-space size

	ingestBytes atomic.Int64 // bytes consumed by the ingest chunk parsers
	ingestLines atomic.Int64 // data lines parsed by the ingest chunk parsers

	servQueries   atomic.Int64 // served queries completed (serve.query)
	servWarm      atomic.Int64 // served queries that warm-started
	servUpdates   atomic.Int64 // graph delta batches applied (serve.update)
	servMutations atomic.Int64 // mutations landed across all delta batches
	servShed      atomic.Int64 // requests rejected by admission control
	servLoads     atomic.Int64 // graphs loaded into the serving registry
	servDepth     atomic.Int64 // last observed admission depth (in-flight + waiting)
	servWallNs    atomic.Int64 // wall clock of the last served query
	servFlushes   atomic.Int64 // cross-query batch flushes (serve.batch)
	servBatched   atomic.Int64 // lanes occupied across batch flushes
	servWaiting   atomic.Int64 // waiting-line depth at the last shed

	// flushBy counts batch flushes by FlushReason (indexed by the
	// reason's ordinal) — the signal adaptive -batch-window tuning needs.
	flushBy [FlushDirect + 1]atomic.Int64

	// Histogram families, created on first use so the zero-value
	// Metrics literal every caller builds keeps working.
	histOnce    sync.Once
	lat         *histVec[LatencyKey] // serve latency by query labels
	latAll      *Histogram           // aggregate across all label sets
	stage       *histVec[string]     // per-pipeline-stage wall (trace spans)
	deadlineOcc *Histogram           // lane occupancy at deadline flushes

	mu         sync.Mutex
	lastEngine string
}

// LatencyKey labels one served-latency series: the four dimensions the
// batcher-tuning analysis slices by.
type LatencyKey struct {
	Engine  string // resolved implementation ("residual", "batch", ...)
	Variant string // update rule ("vanilla", "damped", "circular")
	Warm    bool   // warm-start vs cold
	Batched bool   // batch lane vs solo path
}

// hists lazily builds the histogram families.
func (m *Metrics) hists() {
	m.histOnce.Do(func() {
		m.lat = newHistVec[LatencyKey](DefaultLatencyBounds)
		m.latAll = NewHistogram(DefaultLatencyBounds)
		m.stage = newHistVec[string](DefaultLatencyBounds)
		// Occupancy is 1..K lanes; unit-ish buckets cover any plausible K.
		m.deadlineOcc = NewHistogram([]float64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64})
	})
}

// ObserveStage records one pipeline stage's wall time (seconds) into
// the stage histogram family — the tracer feeds every finished trace's
// spans through here.
func (m *Metrics) ObserveStage(stage string, seconds float64) {
	m.hists()
	m.stage.at(stage).Observe(seconds)
}

// Emit implements Probe.
func (m *Metrics) Emit(e Event) {
	switch e.Kind {
	case KindRunStart:
		m.mu.Lock()
		m.lastEngine = e.Engine
		m.mu.Unlock()
		m.lastItems.Store(e.Items)
	case KindIteration:
		m.iterations.Add(1)
		// Iteration events carry per-boundary increments for Updated and
		// Edges (the Event contract), so summing them yields run totals;
		// the relaxed/kernel counter groups arrive as running totals and
		// go through storeMax instead.
		if e.Updated > 0 {
			m.updated.Add(e.Updated)
		}
		if e.Edges > 0 {
			m.edges.Add(e.Edges)
		}
		m.lastDelta.Store(math.Float64bits(float64(e.Delta)))
		m.lastActive.Store(e.Active)
		if e.Items > 0 {
			m.lastItems.Store(e.Items)
		}
		m.storeMax(&m.staleDrops, e.StaleDrops)
		m.storeMax(&m.wasted, e.Wasted)
		m.storeMax(&m.contention, e.Contention)
		m.storeMax(&m.fastPath, e.FastPath)
		m.storeMax(&m.rescales, e.Rescales)
	case KindRunEnd:
		m.runs.Add(1)
		if e.Converged {
			m.converged.Add(1)
		}
		m.lastDelta.Store(math.Float64bits(float64(e.Delta)))
		m.storeMax(&m.staleDrops, e.StaleDrops)
		m.storeMax(&m.wasted, e.Wasted)
		m.storeMax(&m.contention, e.Contention)
	case KindIngest:
		// Only per-chunk events (Worker >= 0) carry increments; the phase
		// summary repeats the totals and would double-count.
		if e.Worker >= 0 {
			m.ingestBytes.Add(e.Edges)
			m.ingestLines.Add(e.Updated)
		}
	case KindServe:
		switch e.Engine {
		case "serve.query":
			m.servQueries.Add(1)
			if e.Warm {
				m.servWarm.Add(1)
			}
			m.servWallNs.Store(e.BusyNs)
			m.servDepth.Store(e.Active)
			m.hists()
			key := LatencyKey{Engine: e.Impl, Variant: e.Variant, Warm: e.Warm, Batched: e.Batched}
			if key.Engine == "" {
				key.Engine = "unknown"
			}
			if key.Variant == "" {
				key.Variant = "vanilla"
			}
			secs := float64(e.BusyNs) / 1e9
			m.lat.at(key).Observe(secs)
			m.latAll.Observe(secs)
		case "serve.shed":
			m.servShed.Add(1)
			m.servDepth.Store(e.Active)
			m.servWaiting.Store(e.Waiting)
		case "serve.batch":
			// One event per flush: Active carries the lane occupancy, so
			// occupancy/flushes is the mean batch fill.
			m.servFlushes.Add(1)
			m.servBatched.Add(e.Active)
			m.flushBy[e.Flush].Add(1)
			if e.Flush == FlushDeadline {
				// Occupancy at the deadline is the direct input to
				// adaptive window sizing: a window that keeps expiring
				// near-empty is too long (or K too large) for the
				// observed arrival rate.
				m.hists()
				m.deadlineOcc.Observe(float64(e.Active))
			}
		case "serve.load":
			m.servLoads.Add(1)
		case "serve.update":
			// One event per applied delta batch: Iter carries the number
			// of mutations that landed, Updated the belief updates the
			// warm re-convergence spent.
			m.servUpdates.Add(1)
			m.servMutations.Add(int64(e.Iter))
		}
	}
}

// storeMax raises c to v when v is larger — cumulative counter groups
// arrive as running totals, so the largest observation is the total.
func (m *Metrics) storeMax(c *atomic.Int64, v int64) {
	for {
		cur := c.Load()
		if v <= cur || c.CompareAndSwap(cur, v) {
			return
		}
	}
}

// WriteText renders the Prometheus text exposition format (version
// 0.0.4: # HELP/# TYPE comments and name value lines).
func (m *Metrics) WriteText(w io.Writer) {
	m.mu.Lock()
	engine := m.lastEngine
	m.mu.Unlock()
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		fmt.Fprintf(w, "%s %d\n", name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
		fmt.Fprintf(w, "%s %g\n", name, v)
	}
	counter("credo_runs_total", "Completed propagation runs.", m.runs.Load())
	counter("credo_runs_converged_total", "Completed runs that converged.", m.converged.Load())
	counter("credo_iterations_total", "Iteration/batch boundaries observed.", m.iterations.Load())
	counter("credo_belief_updates_total", "Node belief updates.", m.updated.Load())
	counter("credo_edge_messages_total", "Edge message computations.", m.edges.Load())
	counter("credo_relax_stale_drops_total", "Relaxed-queue entries superseded before pop.", m.staleDrops.Load())
	counter("credo_relax_wasted_updates_total", "Relaxed-queue pops recomputed below threshold.", m.wasted.Load())
	counter("credo_queue_contention_total", "Failed TryLock acquisitions on sharded queues.", m.contention.Load())
	counter("credo_kernel_fast_path_total", "Kernel linear fast-path folds.", m.fastPath.Load())
	counter("credo_kernel_rescales_total", "Kernel max-rescales of linear products.", m.rescales.Load())
	counter("credo_ingest_bytes_total", "Bytes consumed by the mtxbp ingest parsers.", m.ingestBytes.Load())
	counter("credo_ingest_lines_total", "Data lines parsed by the mtxbp ingest parsers.", m.ingestLines.Load())
	counter("credo_serve_queries_total", "Posterior queries served.", m.servQueries.Load())
	counter("credo_serve_warm_total", "Served queries that re-converged from a warm-start snapshot.", m.servWarm.Load())
	counter("credo_serve_shed_total", "Requests rejected by admission control.", m.servShed.Load())
	counter("credo_serve_loads_total", "Graphs loaded into the serving registry.", m.servLoads.Load())
	counter("credo_serve_updates_total", "Graph delta batches applied to residents.", m.servUpdates.Load())
	counter("credo_serve_mutations_total", "Mutations landed across all delta batches.", m.servMutations.Load())
	// Batch flushes carry the trigger as a label; the series sum is the
	// former unlabeled total.
	fmt.Fprintf(w, "# HELP credo_serve_batch_flushes Cross-query batch flushes executed, by trigger.\n# TYPE credo_serve_batch_flushes counter\n")
	for r := FlushFull; r <= FlushDirect; r++ {
		fmt.Fprintf(w, "credo_serve_batch_flushes{reason=%q} %d\n", r.String(), m.flushBy[r].Load())
	}
	counter("credo_serve_batch_occupancy", "Lanes occupied across batch flushes (occupancy/flushes = mean fill).", m.servBatched.Load())
	gauge("credo_serve_depth", "Admission depth (in-flight + waiting) at the last serve event.", float64(m.servDepth.Load()))
	gauge("credo_serve_waiting", "Admission waiting-line depth at the last shed.", float64(m.servWaiting.Load()))
	gauge("credo_serve_last_wall_ns", "Wall clock of the last served query in nanoseconds.", float64(m.servWallNs.Load()))
	m.writeHistograms(w)
	// The residual originates as a float32; format at 32-bit precision so
	// the exposition shows 0.0008, not the widened float64 digits.
	fmt.Fprintf(w, "# HELP credo_last_delta Global residual norm at the last boundary.\n# TYPE credo_last_delta gauge\n")
	fmt.Fprintf(w, "credo_last_delta %s\n",
		strconv.FormatFloat(math.Float64frombits(m.lastDelta.Load()), 'g', -1, 32))
	gauge("credo_active_items", "Frontier/queue occupancy at the last boundary.", float64(m.lastActive.Load()))
	gauge("credo_total_items", "Item-space size of the last observed run.", float64(m.lastItems.Load()))
	if engine != "" {
		fmt.Fprintf(w, "# HELP credo_engine_info Engine of the last observed run.\n# TYPE credo_engine_info gauge\ncredo_engine_info{engine=%q} 1\n", engine)
	}
}

// quantiles exported per latency series alongside the raw buckets.
var latencyQuantiles = []float64{0.5, 0.95, 0.99}

// writeHistograms renders the latency, stage and batch-occupancy
// histogram families. Families that never observed anything are elided
// entirely, so non-serving processes keep their exposition unchanged.
func (m *Metrics) writeHistograms(w io.Writer) {
	m.hists() // synchronizes with concurrent emitters creating the families
	if keys := m.lat.keys(); len(keys) > 0 {
		sort.Slice(keys, func(i, j int) bool {
			a, b := keys[i], keys[j]
			if a.Engine != b.Engine {
				return a.Engine < b.Engine
			}
			if a.Variant != b.Variant {
				return a.Variant < b.Variant
			}
			if a.Warm != b.Warm {
				return !a.Warm
			}
			return !a.Batched
		})
		fmt.Fprintf(w, "# HELP credo_serve_latency_seconds Served query latency.\n# TYPE credo_serve_latency_seconds histogram\n")
		for _, k := range keys {
			m.lat.at(k).WriteProm(w, "credo_serve_latency_seconds", latencyLabels(k))
		}
		fmt.Fprintf(w, "# HELP credo_serve_latency_quantile_seconds Latency quantiles interpolated from the log buckets.\n# TYPE credo_serve_latency_quantile_seconds gauge\n")
		for _, k := range keys {
			h := m.lat.at(k)
			for _, q := range latencyQuantiles {
				fmt.Fprintf(w, "credo_serve_latency_quantile_seconds{%s,q=\"%g\"} %g\n",
					latencyLabels(k), q, h.Quantile(q))
			}
		}
	}
	if keys := m.stage.keys(); len(keys) > 0 {
		sort.Strings(keys)
		fmt.Fprintf(w, "# HELP credo_serve_stage_seconds Wall time per serving-pipeline stage (trace spans).\n# TYPE credo_serve_stage_seconds histogram\n")
		for _, k := range keys {
			m.stage.at(k).WriteProm(w, "credo_serve_stage_seconds", fmt.Sprintf("stage=%q", k))
		}
	}
	if m.deadlineOcc.Count() > 0 {
		fmt.Fprintf(w, "# HELP credo_serve_batch_deadline_occupancy Lanes occupied when the accumulation window expired.\n# TYPE credo_serve_batch_deadline_occupancy histogram\n")
		m.deadlineOcc.WriteProm(w, "credo_serve_batch_deadline_occupancy", "")
	}
}

// latencyLabels renders a LatencyKey as a Prometheus label set. The
// warm/cold and batch/solo booleans surface as the categorical names
// the histogram contract promises.
func latencyLabels(k LatencyKey) string {
	start := "cold"
	if k.Warm {
		start = "warm"
	}
	path := "solo"
	if k.Batched {
		path = "batch"
	}
	return fmt.Sprintf("engine=%q,variant=%q,start=%q,path=%q", k.Engine, k.Variant, start, path)
}

// Handler returns an http.Handler serving the text exposition.
func (m *Metrics) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		m.WriteText(w)
	})
}

// snapshot returns the expvar view of the metrics.
func (m *Metrics) snapshot() any {
	m.mu.Lock()
	engine := m.lastEngine
	m.mu.Unlock()
	m.hists()
	latCount := m.latAll.Count()
	p50, p95, p99 := m.latAll.Quantile(0.5), m.latAll.Quantile(0.95), m.latAll.Quantile(0.99)
	flushes := map[string]int64{}
	for r := FlushFull; r <= FlushDirect; r++ {
		flushes[r.String()] = m.flushBy[r].Load()
	}
	return map[string]any{
		"serve_latency_count":   latCount,
		"serve_latency_p50":     p50,
		"serve_latency_p95":     p95,
		"serve_latency_p99":     p99,
		"serve_flush_reasons":   flushes,
		"serve_waiting":         m.servWaiting.Load(),
		"runs":                  m.runs.Load(),
		"runs_converged":        m.converged.Load(),
		"iterations":            m.iterations.Load(),
		"belief_updates":        m.updated.Load(),
		"edge_messages":         m.edges.Load(),
		"stale_drops":           m.staleDrops.Load(),
		"wasted_updates":        m.wasted.Load(),
		"queue_contention":      m.contention.Load(),
		"kernel_fast_path":      m.fastPath.Load(),
		"kernel_rescales":       m.rescales.Load(),
		"ingest_bytes":          m.ingestBytes.Load(),
		"ingest_lines":          m.ingestLines.Load(),
		"serve_queries":         m.servQueries.Load(),
		"serve_warm":            m.servWarm.Load(),
		"serve_shed":            m.servShed.Load(),
		"serve_loads":           m.servLoads.Load(),
		"serve_updates":         m.servUpdates.Load(),
		"serve_mutations":       m.servMutations.Load(),
		"serve_batch_flushes":   m.servFlushes.Load(),
		"serve_batch_occupancy": m.servBatched.Load(),
		"serve_depth":           m.servDepth.Load(),
		"serve_wall_ns":         m.servWallNs.Load(),
		"last_delta":            math.Float64frombits(m.lastDelta.Load()),
		"active_items":          m.lastActive.Load(),
		"total_items":           m.lastItems.Load(),
		"engine":                engine,
	}
}

// The process has one /debug/vars namespace and expvar forbids
// duplicate names, so "credo.telemetry" is registered once as an
// indirection through this pointer: the most recently published
// Metrics answers. A daemon publishes exactly one Metrics for its
// lifetime; the indirection exists so tests that each build their own
// ops server read their own instance regardless of run order.
var (
	expvarOnce    sync.Once
	expvarCurrent atomic.Pointer[Metrics]
)

// PublishExpvar exposes the metrics under the "credo.telemetry" expvar
// name, replacing any previously published instance.
func (m *Metrics) PublishExpvar() {
	expvarCurrent.Store(m)
	expvarOnce.Do(func() {
		expvar.Publish("credo.telemetry", expvar.Func(func() any {
			return expvarCurrent.Load().snapshot()
		}))
	})
}

// Server is a live telemetry endpoint: /metrics (Prometheus text),
// /debug/vars (expvar), /debug/pprof (runtime profiling) and
// /debug/flight (the flight recorder's retained anomalous-request
// dumps), all from the standard library.
type Server struct {
	Addr string // actual listen address (useful with ":0")
	srv  *http.Server
	ln   net.Listener
}

// NewServer binds addr and returns the server ready to Start. The
// metrics probe is published to expvar as a side effect so /debug/vars
// carries the same numbers as /metrics. flight may be nil — the
// /debug/flight route always exists and answers with an empty dump.
func NewServer(addr string, m *Metrics, flight *FlightRecorder) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	m.PublishExpvar()
	mux := http.NewServeMux()
	mux.Handle("/metrics", m.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.Handle("/debug/flight", flight.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return &Server{Addr: ln.Addr().String(), srv: &http.Server{Handler: mux}, ln: ln}, nil
}

// Start serves in a background goroutine until Close.
func (s *Server) Start() {
	go s.srv.Serve(s.ln)
}

// Close shuts the endpoint down.
func (s *Server) Close() error { return s.srv.Close() }
