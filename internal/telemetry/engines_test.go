// Package telemetry_test holds the cross-engine integration tests of the
// probe layer: every engine must frame its run with run_start/run_end,
// emit iteration boundaries in between, stay race-clean when workers
// emit concurrently, and cost nothing when no probe is attached.
package telemetry_test

import (
	"bytes"
	"sync"
	"testing"

	"credo/internal/bp"
	"credo/internal/cudabp"
	"credo/internal/gen"
	"credo/internal/gpusim"
	"credo/internal/graph"
	"credo/internal/ompbp"
	"credo/internal/poolbp"
	"credo/internal/relaxbp"
	"credo/internal/telemetry"
)

func testGraph(t testing.TB) *graph.Graph {
	t.Helper()
	g, err := gen.Synthetic(200, 800, gen.Config{Seed: 5, States: 2, Shared: true})
	if err != nil {
		t.Fatalf("Synthetic: %v", err)
	}
	return g
}

// TestEveryEngineEmitsFramedEvents locks the cross-engine event
// contract: each of the twelve entry points opens with run_start,
// closes with run_end, reports at least one iteration boundary, and —
// for the engines whose boundaries carry per-boundary increments that
// cover the whole run — the increments sum to the run_end total.
func TestEveryEngineEmitsFramedEvents(t *testing.T) {
	opts := func(p telemetry.Probe) bp.Options {
		return bp.Options{WorkQueue: true, Probe: p}
	}
	pascal := gpusim.Pascal()
	cases := []struct {
		engine     string
		sumUpdates bool // iteration Updated increments sum to the run_end total
		run        func(p telemetry.Probe, g *graph.Graph) bp.Result
	}{
		{"bp.node", true, func(p telemetry.Probe, g *graph.Graph) bp.Result {
			return bp.RunNode(g, opts(p))
		}},
		{"bp.edge", true, func(p telemetry.Probe, g *graph.Graph) bp.Result {
			return bp.RunEdge(g, opts(p))
		}},
		{"bp.residual", false, func(p telemetry.Probe, g *graph.Graph) bp.Result {
			return bp.RunResidual(g, opts(p))
		}},
		{"bp.traditional", false, func(p telemetry.Probe, g *graph.Graph) bp.Result {
			return bp.RunTraditional(g, opts(p))
		}},
		{"bp.maxproduct", true, func(p telemetry.Probe, g *graph.Graph) bp.Result {
			return bp.RunMaxProduct(g, opts(p))
		}},
		{"pool.node", true, func(p telemetry.Probe, g *graph.Graph) bp.Result {
			return poolbp.RunNode(g, poolbp.Options{Options: opts(p), Workers: 4})
		}},
		{"pool.edge", true, func(p telemetry.Probe, g *graph.Graph) bp.Result {
			return poolbp.RunEdge(g, poolbp.Options{Options: opts(p), Workers: 4})
		}},
		{"relax", false, func(p telemetry.Probe, g *graph.Graph) bp.Result {
			return relaxbp.Run(g, relaxbp.Options{Options: opts(p), Workers: 4, Seed: 7})
		}},
		{"omp.node", true, func(p telemetry.Probe, g *graph.Graph) bp.Result {
			return ompbp.RunNode(g, ompbp.Options{Options: opts(p), Threads: 4})
		}},
		{"omp.edge", true, func(p telemetry.Probe, g *graph.Graph) bp.Result {
			return ompbp.RunEdge(g, ompbp.Options{Options: opts(p), Threads: 4})
		}},
		{"cuda.node", true, func(p telemetry.Probe, g *graph.Graph) bp.Result {
			res, err := cudabp.RunNode(g, gpusim.NewDevice(pascal), cudabp.Options{Options: opts(p)})
			if err != nil {
				t.Fatalf("cuda.node: %v", err)
			}
			return res.Result
		}},
		{"cuda.edge", true, func(p telemetry.Probe, g *graph.Graph) bp.Result {
			res, err := cudabp.RunEdge(g, gpusim.NewDevice(pascal), cudabp.Options{Options: opts(p)})
			if err != nil {
				t.Fatalf("cuda.edge: %v", err)
			}
			return res.Result
		}},
	}

	for _, c := range cases {
		t.Run(c.engine, func(t *testing.T) {
			rec := telemetry.NewRecorder(0)
			res := c.run(rec, testGraph(t))
			events := rec.Events()
			if len(events) < 3 {
				t.Fatalf("%d events, want at least run_start + iteration + run_end", len(events))
			}
			first, last := events[0], events[len(events)-1]
			if first.Kind != telemetry.KindRunStart || first.Engine != c.engine {
				t.Errorf("first event = %v %q, want run_start %q", first.Kind, first.Engine, c.engine)
			}
			if first.Items <= 0 {
				t.Errorf("run_start Items = %d, want > 0", first.Items)
			}
			if last.Kind != telemetry.KindRunEnd {
				t.Fatalf("last event = %v, want run_end", last.Kind)
			}
			if last.Converged != res.Converged || int(last.Iter) != res.Iterations {
				t.Errorf("run_end (iter=%d converged=%v) disagrees with Result (iter=%d converged=%v)",
					last.Iter, last.Converged, res.Iterations, res.Converged)
			}
			var iters, sum int64
			for _, e := range events {
				if e.Kind != telemetry.KindIteration {
					continue
				}
				if e.Engine != c.engine {
					t.Errorf("iteration event from %q in a %q run", e.Engine, c.engine)
				}
				iters++
				sum += e.Updated
			}
			if iters == 0 {
				t.Error("no iteration events")
			}
			if c.sumUpdates && sum != res.Ops.NodesProcessed {
				t.Errorf("iteration Updated increments sum to %d, run total is %d", sum, res.Ops.NodesProcessed)
			}
		})
	}
}

// TestPoolWorkerUtilization locks the poolbp-specific part of the
// contract: one worker event per team member, framed before run_end.
func TestPoolWorkerUtilization(t *testing.T) {
	const workers = 4
	rec := telemetry.NewRecorder(0)
	poolbp.RunNode(testGraph(t), poolbp.Options{
		Options: bp.Options{WorkQueue: true, Probe: rec},
		Workers: workers,
	})
	var worker []telemetry.Event
	for _, e := range rec.Events() {
		if e.Kind == telemetry.KindWorker {
			worker = append(worker, e)
		}
	}
	if len(worker) != workers {
		t.Fatalf("%d worker events, want %d", len(worker), workers)
	}
	for _, e := range worker {
		if e.Worker < 0 || int(e.Worker) >= workers {
			t.Errorf("worker id %d out of range", e.Worker)
		}
		if e.BusyNs < 0 || e.WallNs < e.BusyNs {
			t.Errorf("worker %d: busy %dns exceeds wall %dns", e.Worker, e.BusyNs, e.WallNs)
		}
	}
}

// TestConcurrentEmission shares one probe stack across engines running
// in parallel, each with internal worker teams emitting concurrently —
// the scenario the race job locks down.
func TestConcurrentEmission(t *testing.T) {
	rec := telemetry.NewRecorder(0)
	var metrics telemetry.Metrics
	var buf bytes.Buffer
	probe := telemetry.Multi(rec, &metrics, telemetry.NewJSONLWriter(&buf))

	var wg sync.WaitGroup
	run := func(f func()) { wg.Add(1); go func() { defer wg.Done(); f() }() }
	run(func() {
		poolbp.RunNode(testGraph(t), poolbp.Options{Options: bp.Options{WorkQueue: true, Probe: probe}, Workers: 4})
	})
	run(func() {
		relaxbp.Run(testGraph(t), relaxbp.Options{Options: bp.Options{WorkQueue: true, Probe: probe}, Workers: 4, Seed: 3})
	})
	run(func() {
		ompbp.RunNode(testGraph(t), ompbp.Options{Options: bp.Options{WorkQueue: true, Probe: probe}, Threads: 4})
	})
	wg.Wait()

	ends := map[string]bool{}
	for _, e := range rec.Events() {
		if e.Kind == telemetry.KindRunEnd {
			ends[e.Engine] = true
		}
	}
	for _, engine := range []string{"pool.node", "relax", "omp.node"} {
		if !ends[engine] {
			t.Errorf("no run_end recorded for %s", engine)
		}
	}
	if buf.Len() == 0 {
		t.Error("JSONL sink recorded nothing")
	}
}

// TestDisabledProbeAllocFree is the other half of the observability
// contract: with Options.Probe left nil the sequential engines must not
// allocate at all — the probe layer's presence is free when it is off.
func TestDisabledProbeAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; asserted in the non-race build")
	}
	g := testGraph(t)
	for _, c := range []struct {
		name string
		run  func(*graph.Graph, bp.Options) bp.Result
	}{
		{"bp.node", bp.RunNode},
		{"bp.edge", bp.RunEdge},
		{"bp.residual", bp.RunResidual},
	} {
		allocs := testing.AllocsPerRun(5, func() {
			c.run(g, bp.Options{WorkQueue: true})
		})
		if allocs != 0 {
			t.Errorf("%s with nil probe: %.1f allocs/run, want 0", c.name, allocs)
		}
	}
}

// BenchmarkProbeOverhead compares a run with no probe against the same
// run feeding the ring recorder — the number EXPERIMENTS.md quotes for
// the cost of leaving telemetry on.
func BenchmarkProbeOverhead(b *testing.B) {
	g := testGraph(b)
	b.Run("off", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			bp.RunNode(g, bp.Options{WorkQueue: true})
		}
	})
	b.Run("recorder", func(b *testing.B) {
		rec := telemetry.NewRecorder(0)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			bp.RunNode(g, bp.Options{WorkQueue: true, Probe: rec})
		}
	})
}
