package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// metricsStream drives one synthetic converged run into m.
func metricsStream(m *Metrics) {
	m.Emit(Event{Kind: KindRunStart, Engine: "relax", Items: 100, Threshold: 0.001})
	// Iteration events carry per-boundary increments for Updated/Edges and
	// running totals for the relaxed/kernel counter groups.
	m.Emit(Event{Kind: KindIteration, Engine: "relax", Iter: 1, Delta: 0.9,
		Updated: 100, Edges: 400, Active: 80, Items: 100, StaleDrops: 5, Wasted: 1})
	m.Emit(Event{Kind: KindIteration, Engine: "relax", Iter: 2, Delta: 0.1,
		Updated: 100, Edges: 400, Active: 10, Items: 100, StaleDrops: 12, Wasted: 4, Contention: 2})
	m.Emit(Event{Kind: KindRunEnd, Engine: "relax", Iter: 2, Delta: 0.0008,
		Converged: true, Updated: 200, Edges: 800, StaleDrops: 12, Wasted: 4, Contention: 2})
}

func TestMetricsAccumulation(t *testing.T) {
	var m Metrics
	metricsStream(&m)

	var sb strings.Builder
	m.WriteText(&sb)
	got := sb.String()
	for _, want := range []string{
		"credo_runs_total 1",
		"credo_runs_converged_total 1",
		"credo_iterations_total 2",
		// Incremental Updated/Edges sum to the run totals — the RunEnd
		// cumulative copy must not be double-counted.
		"credo_belief_updates_total 200",
		"credo_edge_messages_total 800",
		// Cumulative groups go through storeMax, so replaying the final
		// totals on RunEnd leaves them unchanged.
		"credo_relax_stale_drops_total 12",
		"credo_relax_wasted_updates_total 4",
		"credo_queue_contention_total 2",
		"credo_last_delta 0.0008",
		"credo_active_items 10",
		"credo_total_items 100",
		`credo_engine_info{engine="relax"} 1`,
		"# TYPE credo_runs_total counter",
		"# TYPE credo_last_delta gauge",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("exposition missing %q:\n%s", want, got)
		}
	}
}

func TestMetricsServer(t *testing.T) {
	var m Metrics
	metricsStream(&m)
	srv, err := NewServer("127.0.0.1:0", &m, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	if got := get("/metrics"); !strings.Contains(got, "credo_runs_total 1") {
		t.Errorf("/metrics exposition incomplete:\n%s", got)
	}

	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(get("/debug/vars")), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	var snap map[string]any
	if err := json.Unmarshal(vars["credo.telemetry"], &snap); err != nil {
		t.Fatalf("credo.telemetry expvar: %v", err)
	}
	if snap["runs"].(float64) != 1 || snap["engine"] != "relax" {
		t.Errorf("expvar snapshot wrong: %v", snap)
	}

	if got := get("/debug/pprof/cmdline"); got == "" {
		t.Error("/debug/pprof/cmdline empty")
	}
}
