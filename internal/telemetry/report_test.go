package telemetry

import (
	"strings"
	"testing"
)

// reportEvents builds a two-engine stream: one converged run with a
// decaying residual, one still mid-flight.
func reportEvents() []Event {
	events := []Event{
		{Kind: KindRunStart, Engine: "bp.node", Items: 100, Threshold: 0.001},
	}
	deltas := []float32{1.8, 0.9, 0.2, 0.04, 0.0008}
	for i, d := range deltas {
		events = append(events, Event{
			Kind: KindIteration, Engine: "bp.node",
			Iter: int32(i + 1), Delta: d, Updated: 100, Edges: 400,
			Active: int64(100 - 20*i), Items: 100,
		})
	}
	events = append(events,
		Event{Kind: KindRunEnd, Engine: "bp.node", Iter: 5, Delta: 0.0008,
			Converged: true, Updated: 500, Edges: 2000},
		Event{Kind: KindRunStart, Engine: "relax", Items: 100, Threshold: 0.001},
		Event{Kind: KindIteration, Engine: "relax", Iter: 1, Delta: 0.7,
			Updated: 100, Active: 40, Items: 100, StaleDrops: 12, Wasted: 3},
	)
	return events
}

func TestWriteConvergenceReport(t *testing.T) {
	var sb strings.Builder
	WriteConvergenceReport(&sb, reportEvents())
	got := sb.String()
	for _, want := range []string{
		"convergence trajectories",
		"bp.node",
		"5 it",
		"converged",
		"500 updates",
		"relax",
		"running",           // no run_end seen for relax
		"stale=12 wasted=3", // relaxed-queue cost surfaces in the report
	} {
		if !strings.Contains(got, want) {
			t.Errorf("report missing %q:\n%s", want, got)
		}
	}

	// The sparkline must span the full block range for a residual series
	// spanning decades.
	if !strings.ContainsRune(got, '█') || !strings.ContainsRune(got, '▁') {
		t.Errorf("bp.node sparkline should reach both extremes:\n%s", got)
	}
}

func TestWriteConvergenceReportHitCap(t *testing.T) {
	events := []Event{
		{Kind: KindIteration, Engine: "bp.edge", Iter: 1, Delta: 0.5},
		{Kind: KindRunEnd, Engine: "bp.edge", Iter: 200, Delta: 0.5, Converged: false},
	}
	var sb strings.Builder
	WriteConvergenceReport(&sb, events)
	if !strings.Contains(sb.String(), "hit cap") {
		t.Errorf("unconverged run should report hit cap:\n%s", sb.String())
	}
}
