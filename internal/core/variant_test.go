package core

import (
	"testing"

	"credo/internal/bp"
	"credo/internal/gen"
	"credo/internal/graph"
	"credo/internal/kernel"
)

// must adapts a generator's (graph, error) return for test setup.
func must(t *testing.T) func(*graph.Graph, error) *graph.Graph {
	return func(g *graph.Graph, err error) *graph.Graph {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
}

// TestChooseVariantRule ties the selector's variant call to the
// calibrated regimes: weak coupling stays vanilla, frustration goes
// damped, strong attractive coupling goes circular.
func TestChooseVariantRule(t *testing.T) {
	var s Selector
	easy := must(t)(gen.Synthetic(50, 200, gen.Config{Seed: 1, States: 2}))
	if v := s.ChooseVariant(easy); v != kernel.VariantVanilla {
		t.Errorf("weakly coupled graph: chose %s, want vanilla", v)
	}
	frust := must(t)(gen.FrustratedGrid(10, 10, 0.5, gen.Config{Seed: 11, States: 2, Keep: 0.95}))
	if v := s.ChooseVariant(frust); v != kernel.VariantDamped {
		t.Errorf("frustrated grid: chose %s, want damped", v)
	}
	hub := must(t)(gen.HubSkew(4, 60, gen.Config{Seed: 13, States: 2, Keep: 0.95}))
	if v := s.ChooseVariant(hub); v != kernel.VariantCircular {
		t.Errorf("attractive hub graph: chose %s, want circular", v)
	}
}

// fixedVariant is an ml.Classifier stub returning one class.
type fixedVariant int

func (f fixedVariant) Fit([][]float64, []int) error { return nil }
func (f fixedVariant) Predict([]float64) int        { return int(f) }

// TestChooseVariantClassifier checks that a loaded variant classifier
// overrides the threshold rule, and that out-of-range predictions fall
// back to it.
func TestChooseVariantClassifier(t *testing.T) {
	easy := must(t)(gen.Synthetic(50, 200, gen.Config{Seed: 1, States: 2}))
	s := Selector{VariantClassifier: fixedVariant(kernel.VariantDamped)}
	if v := s.ChooseVariant(easy); v != kernel.VariantDamped {
		t.Errorf("classifier says damped, got %s", v)
	}
	s.VariantClassifier = fixedVariant(99)
	if v := s.ChooseVariant(easy); v != kernel.VariantVanilla {
		t.Errorf("bogus classifier class must fall back to the rule, got %s", v)
	}
}

// TestAutoVariantEndToEnd runs the engine with AutoVariant on the three
// regimes and checks the report carries the selected rule and a
// converged result — including on a hub graph where vanilla is pinned
// diverging.
func TestAutoVariantEndToEnd(t *testing.T) {
	cases := []struct {
		name  string
		build func() (*graph.Graph, error)
		want  kernel.Variant
	}{
		{"easy-vanilla", func() (*graph.Graph, error) {
			return gen.Synthetic(50, 200, gen.Config{Seed: 1, States: 2})
		}, kernel.VariantVanilla},
		{"frustgrid-damped", func() (*graph.Graph, error) {
			return gen.FrustratedGrid(10, 10, 0.5, gen.Config{Seed: 11, States: 2, Keep: 0.95})
		}, kernel.VariantDamped},
		// The corpus acceptance case: vanilla is pinned diverging here.
		{"hubskew-circular", func() (*graph.Graph, error) {
			return gen.HubSkew(6, 300, gen.Config{Seed: 13, States: 2, Keep: 0.95})
		}, kernel.VariantCircular},
	}
	for _, c := range cases {
		g := must(t)(c.build())
		eng := Engine{AutoVariant: true}
		// Force the node implementation: it is the schedule every variant
		// is pinned convergent on (circularSafe).
		rep, err := eng.RunWith(g, CNode)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if rep.Variant != c.want {
			t.Errorf("%s: report variant %s, want %s", c.name, rep.Variant, c.want)
		}
		if !rep.Result.Converged {
			t.Errorf("%s: auto-selected %s did not converge (%d iterations)",
				c.name, rep.Variant, rep.Result.Iterations)
		}
	}
}

// TestAutoVariantDegradesCircularOffNodeSchedule pins the safety
// downgrade: on a strong attractive graph the selector picks circular,
// but an edge-paradigm run must degrade to damped (circular is pinned
// DIVERGING under edge interleaving) — and still converge.
func TestAutoVariantDegradesCircularOffNodeSchedule(t *testing.T) {
	g := must(t)(gen.HubSkew(6, 300, gen.Config{Seed: 13, States: 2, Keep: 0.95}))
	eng := Engine{AutoVariant: true}
	rep, err := eng.RunWith(g, CEdge)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Variant != kernel.VariantDamped {
		t.Errorf("edge run variant %s, want damped (degraded from circular)", rep.Variant)
	}
	if !rep.Result.Converged {
		t.Errorf("degraded damped edge run did not converge (%d iterations)", rep.Result.Iterations)
	}
}

// TestAutoVariantExplicitOptionsWin: any explicit variant request —
// enum, damping factor, or correction strength — disables the selector.
func TestAutoVariantExplicitOptionsWin(t *testing.T) {
	g := must(t)(gen.HubSkew(6, 300, gen.Config{Seed: 13, States: 2, Keep: 0.95}))
	explicit := []struct {
		name string
		opts bp.Options
		want kernel.Variant
	}{
		{"damping", bp.Options{Damping: 0.6}, kernel.VariantDamped},
		{"variant-enum", bp.Options{Variant: kernel.VariantDamped}, kernel.VariantDamped},
		{"alpha", bp.Options{Kernel: kernel.Config{Alpha: 0.9}}, kernel.VariantCircular},
	}
	for _, c := range explicit {
		eng := Engine{AutoVariant: true, Options: c.opts}
		rep, err := eng.RunWith(g.Clone(), CNode)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if rep.Variant != c.want {
			t.Errorf("%s: report variant %s, want the explicit %s", c.name, rep.Variant, c.want)
		}
	}
}
