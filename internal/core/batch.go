package core

import (
	"runtime"
	"time"

	"credo/internal/bp"
	"credo/internal/features"
	"credo/internal/graph"
	"credo/internal/kernel"
	"credo/internal/perfmodel"
	"credo/internal/poolbp"
)

// BatchReport describes one batched Credo execution: K queries with
// different evidence over one structure, serviced by a single SoA pass
// per sweep.
type BatchReport struct {
	// Implementation is the back end the batch ran on — CNode for the
	// sequential batched sweep, Pool for the worker-pool form. The device
	// and edge-paradigm back ends have no batched path.
	Implementation Implementation
	// Variant is the update rule every lane used.
	Variant kernel.Variant
	// Result is the batched propagation outcome, one LaneResult per
	// staged query.
	Result bp.BatchResult
	// EstimatedTime is the modelled execution time of the whole batch.
	EstimatedTime time.Duration
}

// RunBatch executes the queries staged in bs over g through the batched
// node paradigm. Selection is the CPU-side subset of Choose: the
// persistent pool takes the batch when PoolWorkers is set and the graph
// carries enough per-sweep work (features.PoolViable), otherwise the
// sequential batched sweep runs it. Batched execution is always the
// node-paradigm synchronous schedule — the one SoA amortization is
// defined on — so under AutoVariant the circular rule stays eligible.
// The staged beliefs are updated in place, lane by lane.
func (e *Engine) RunBatch(g *graph.Graph, bs *graph.BatchState) BatchReport {
	cpu := e.CPU
	if cpu.Name == "" {
		cpu = perfmodel.I7_7700HQ()
	}
	impl := CNode
	if e.PoolWorkers > 0 && features.PoolViable(g.Stats()) {
		impl = Pool
	}
	// Both batched back ends run the node-paradigm schedule, so the
	// variant pick is made for CNode even when the pool executes it —
	// circular must not be degraded by the solo pool's paradigm rule.
	e = e.withAutoVariant(g, CNode)
	variant := e.Options.ResolveVariant().Variant
	if impl == Pool {
		workers := e.PoolWorkers
		if workers <= 0 {
			workers = runtime.NumCPU()
		}
		res := poolbp.RunBatch(g, bs, poolbp.Options{Options: e.Options, Workers: workers})
		return BatchReport{
			Implementation: Pool,
			Variant:        variant,
			Result:         res,
			EstimatedTime:  cpu.PoolTime(res.Ops, perfmodel.PoolOptions{Workers: workers}),
		}
	}
	res := bp.RunBatch(g, bs, e.Options)
	return BatchReport{
		Implementation: CNode,
		Variant:        variant,
		Result:         res,
		EstimatedTime:  cpu.SequentialTime(res.Ops),
	}
}
