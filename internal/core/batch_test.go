package core

import (
	"math"
	"testing"

	"credo/internal/bp"
	"credo/internal/gen"
	"credo/internal/graph"
	"credo/internal/kernel"
)

// stageBatch builds a K-lane batch state over g with a distinct evidence
// clamp per lane past lane 0.
func stageBatch(t *testing.T, g *graph.Graph, k int) *graph.BatchState {
	t.Helper()
	bs, err := graph.NewBatchState(g, k)
	if err != nil {
		t.Fatal(err)
	}
	for l := 1; l < k; l++ {
		if err := bs.Observe(l, int32((l*7)%g.NumNodes), l%g.States); err != nil {
			t.Fatal(err)
		}
	}
	return bs
}

// TestRunBatchSequentialDispatch pins the small-graph path: below the
// pool-viability floor RunBatch runs the sequential batched sweep even
// with PoolWorkers set, and every lane matches its solo run bitwise.
func TestRunBatchSequentialDispatch(t *testing.T) {
	g, err := gen.Synthetic(300, 1200, gen.Config{Seed: 19, States: 3})
	if err != nil {
		t.Fatal(err)
	}
	const k = 4
	bs := stageBatch(t, g, k)
	e := &Engine{Options: bp.Options{WorkQueue: true}}
	e.PoolWorkers = 4 // 1200 edges is far below features.MinPoolEdges
	rep := e.RunBatch(g, bs)
	if rep.Implementation != CNode {
		t.Fatalf("small-graph batch dispatched to %v, want C Node", rep.Implementation)
	}
	if rep.Variant != kernel.VariantVanilla {
		t.Errorf("variant = %v, want vanilla", rep.Variant)
	}
	if len(rep.Result.Lanes) != k {
		t.Fatalf("got %d lane results, want %d", len(rep.Result.Lanes), k)
	}
	if rep.EstimatedTime <= 0 {
		t.Error("no modelled time on the sequential batch report")
	}

	// The engine must hand the kernel the same schedule the solo node
	// paradigm runs (work queue stripped by the batch layer), so lanes
	// reproduce solo answers bitwise.
	lane := make([]float32, g.NumNodes*g.States)
	solo := bp.Options{WorkQueue: false}
	for l := 0; l < k; l++ {
		sg := g.Clone()
		if l > 0 {
			if err := sg.Observe(int32((l*7)%g.NumNodes), l%g.States); err != nil {
				t.Fatal(err)
			}
		}
		res := bp.RunNode(sg, solo)
		if res.Iterations != rep.Result.Lanes[l].Iterations {
			t.Errorf("lane %d: %d sweeps, solo %d", l, rep.Result.Lanes[l].Iterations, res.Iterations)
		}
		bs.ExtractLane(l, lane)
		for i := range lane {
			if math.Float32bits(lane[i]) != math.Float32bits(sg.Beliefs[i]) {
				t.Fatalf("lane %d diverges from solo at %d: %g vs %g", l, i, lane[i], sg.Beliefs[i])
			}
		}
	}
}

// TestRunBatchPoolDispatch pins the large-graph path: past the viability
// floor an engine with PoolWorkers routes the batch to the worker pool.
func TestRunBatchPoolDispatch(t *testing.T) {
	g, err := gen.Synthetic(12_500, 50_000, gen.Config{Seed: 7, States: 2})
	if err != nil {
		t.Fatal(err)
	}
	bs := stageBatch(t, g, 2)
	e := &Engine{Options: bp.Options{MaxIterations: 8}}
	e.PoolWorkers = 4
	rep := e.RunBatch(g, bs)
	if rep.Implementation != Pool {
		t.Fatalf("viable batch dispatched to %v, want Pool", rep.Implementation)
	}
	if len(rep.Result.Lanes) != 2 || rep.EstimatedTime <= 0 {
		t.Fatalf("incomplete pool batch report: %+v", rep)
	}

	// Without PoolWorkers the same graph stays on the sequential sweep.
	e2 := &Engine{Options: bp.Options{MaxIterations: 8}}
	if rep2 := e2.RunBatch(g, stageBatch(t, g, 2)); rep2.Implementation != CNode {
		t.Fatalf("no-pool batch dispatched to %v, want C Node", rep2.Implementation)
	}
}
