// Package core is the Credo engine (§3.1): given a parsed belief graph, it
// chooses the best implementation — C Edge, C Node, CUDA Edge, CUDA Node,
// or (when enabled) the persistent worker-pool and relaxed-residual
// engines — from the graph's metadata alone, then executes loopy BP with
// that implementation.
//
// Selection is two-staged, as in the paper: a platform rule derived from
// the CUDA transfer-overhead crossover (§3.6: CUDA pays off above ~100,000
// nodes at 2 beliefs, already above ~1,000 nodes at 32) decides C versus
// CUDA, and the metadata classifier of §3.7 decides Node versus Edge. A
// graph whose device footprint exceeds VRAM always falls back to the C
// implementations.
package core

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"credo/internal/bp"
	"credo/internal/features"
	"credo/internal/gpusim"
	"credo/internal/graph"
	"credo/internal/kernel"
	"credo/internal/ml"
	"credo/internal/perfmodel"
	"credo/internal/poolbp"
	"credo/internal/relaxbp"
)

// Implementation identifies one of Credo's execution back ends.
type Implementation int

// The four implementations of §3.6, plus the persistent worker-pool
// engine (internal/poolbp) — the fifth candidate this reproduction adds
// beyond the paper, which the selector considers only when
// Selector.PoolWorkers is set — and the relaxed-priority residual engine
// (internal/relaxbp), the sixth, considered only when
// Selector.RelaxWorkers is set.
const (
	CEdge Implementation = iota
	CNode
	CUDAEdge
	CUDANode
	Pool
	Relax
)

// String returns the paper's name for the implementation.
func (i Implementation) String() string {
	switch i {
	case CEdge:
		return "C Edge"
	case CNode:
		return "C Node"
	case CUDAEdge:
		return "CUDA Edge"
	case CUDANode:
		return "CUDA Node"
	case Pool:
		return "Go Pool"
	case Relax:
		return "Go Relax"
	}
	return fmt.Sprintf("Implementation(%d)", int(i))
}

// IsCUDA reports whether the implementation runs on the device.
func (i Implementation) IsCUDA() bool { return i == CUDAEdge || i == CUDANode }

// IsNode reports whether the implementation uses per-node processing.
func (i Implementation) IsNode() bool { return i == CNode || i == CUDANode }

// Selector picks an implementation from graph metadata.
type Selector struct {
	// Classifier decides Node versus Edge from the §3.7 feature vector.
	// Nil falls back to the paper's coarse rule (Edge on the CPU, Node on
	// the device), which covers 80% of the benchmarks.
	Classifier ml.Classifier

	// GPU is the device architecture selection accounts for. Zero-value
	// uses Pascal.
	GPU gpusim.ArchProfile

	// DisableCUDA restricts selection to the C implementations.
	DisableCUDA bool

	// PoolWorkers enables the persistent worker-pool engine as a fifth
	// candidate with a team of this size (zero keeps the paper's four-way
	// selection). CPU-bound graphs with enough per-sweep parallel work
	// (features.PoolViable) are then routed to the pool instead of the
	// sequential C implementations; the Node/Edge classifier still decides
	// the pool's processing paradigm.
	PoolWorkers int

	// RelaxWorkers enables the relaxed-priority residual engine as a
	// sixth candidate with a team of this size (zero keeps it out of the
	// selection). CPU-bound graphs large enough for the relaxed queue
	// traffic to amortize (features.RelaxViable) are then routed to it
	// ahead of the pool and the sequential C implementations — residual
	// scheduling saves message updates on exactly the graphs where sweeps
	// are expensive.
	RelaxWorkers int

	// VariantClassifier decides the update rule (vanilla, damped,
	// circular) from the oscillation-risk feature vector
	// (features.RiskVector). Nil falls back to the calibrated threshold
	// rule (features.RecommendVariant). Orthogonal to Classifier: one
	// picks HOW messages flow (paradigm), the other WHICH update rule
	// keeps them convergent.
	VariantClassifier ml.Classifier
}

// cudaCrossover returns the node count above which the device pays for
// itself at the given belief width. The paper derives its rule — 100,000
// nodes at 2 beliefs sliding down to 1,000 at 32 (§3.6) — from its own
// initial benchmarking; the constants here are calibrated the same way
// against this reproduction's Figure 7, where the simulated device's fixed
// overheads amortize from ≈50,000 nodes at 2 beliefs.
func cudaCrossover(states int) float64 {
	if states < 2 {
		states = 2
	}
	if states > graph.MaxStates {
		states = graph.MaxStates
	}
	// log10 interpolation: 4.7 (≈50k) at s=2 down to 3.0 (1k) at s=32.
	exp := 4.7 - 1.7*float64(states-2)/30.0
	return math.Pow(10, exp)
}

// Choose picks the implementation for a graph with the given metadata and
// device memory footprint (bytes).
func (s *Selector) Choose(md graph.Metadata, footprint int64) Implementation {
	gpu := s.GPU
	if gpu.Name == "" {
		gpu = gpusim.Pascal()
	}
	useCUDA := !s.DisableCUDA &&
		float64(md.NumNodes) >= cudaCrossover(md.States) &&
		footprint <= gpu.VRAMBytes

	node := false
	if s.Classifier != nil {
		node = s.Classifier.Predict(features.Vector(md)) == int(features.LabelNode)
	} else {
		// Coarse §3.7 rule: Edge dominates the CPU implementations, Node
		// the device ones.
		node = useCUDA
	}
	switch {
	// Setting RelaxWorkers is an explicit opt-in: the relaxed residual
	// engine takes any CPU-bound graph large enough for its queue traffic
	// to amortize, ahead of the pool and the paper's four-way choice (the
	// device still wins the graphs it pays for).
	case s.RelaxWorkers > 0 && !useCUDA && features.RelaxViable(md):
		return Relax
	// Setting PoolWorkers is an explicit opt-in: the pool takes any graph
	// with enough per-sweep work, ahead of the paper's four-way choice.
	case s.PoolWorkers > 0 && features.PoolViable(md):
		return Pool
	case useCUDA && node:
		return CUDANode
	case useCUDA:
		return CUDAEdge
	case node:
		return CNode
	default:
		return CEdge
	}
}

// ChooseVariant picks the update rule for a graph: the trained variant
// classifier's call when one is loaded, the calibrated threshold rule
// (features.RecommendVariant) otherwise.
func (s *Selector) ChooseVariant(g *graph.Graph) kernel.Variant {
	if s.VariantClassifier != nil {
		if p := s.VariantClassifier.Predict(features.RiskVector(g)); p >= 0 && p <= int(kernel.VariantCircular) {
			return kernel.Variant(p)
		}
	}
	return features.RecommendVariant(g)
}

// paradigmNode reports whether the Node paradigm should drive a CPU-side
// run of the given metadata: the classifier's call when one is loaded, the
// coarse Edge-dominates-the-CPU rule otherwise.
func (s *Selector) paradigmNode(md graph.Metadata) bool {
	if s.Classifier != nil {
		return s.Classifier.Predict(features.Vector(md)) == int(features.LabelNode)
	}
	return false
}

// Engine runs belief propagation with automatic implementation selection.
type Engine struct {
	Selector

	// CPU prices the C implementations' operation counts so that every
	// report carries a comparable estimated time. Zero-value uses the
	// paper's i7-7700HQ.
	CPU perfmodel.CPUProfile

	// Options are the propagation parameters applied to every run.
	Options bp.Options

	// CUDAOptions shape device runs (block size, convergence batching).
	BlockDim int
	Batch    int

	// AutoVariant lets the selector pick the update rule per graph
	// (Selector.ChooseVariant) when Options carry no explicit variant
	// request. Explicit Variant/Damping/Alpha settings always win.
	AutoVariant bool
}

// Report describes one Credo execution.
type Report struct {
	// Implementation is the back end Credo selected (or was forced to).
	Implementation Implementation
	// Variant is the update rule the run used (vanilla, damped or
	// circular — chosen by the selector under AutoVariant, or passed
	// through from Options).
	Variant kernel.Variant
	// Result is the propagation outcome.
	Result bp.Result
	// EstimatedTime is the modelled execution time: the priced operation
	// counts for C implementations, the device's simulated time for CUDA
	// ones.
	EstimatedTime time.Duration
	// DeviceStats is the device activity breakdown for CUDA runs.
	DeviceStats *gpusim.Stats
}

// Run selects an implementation for g and executes it. The graph's
// beliefs are updated in place.
func (e *Engine) Run(g *graph.Graph) (Report, error) {
	return e.RunWith(g, e.Choose(g.Stats(), deviceFootprint(g)))
}

// circularSafe reports whether an implementation runs the synchronous
// node-paradigm schedule the circular correction is calibrated on. The
// edge-interleaved schedules read reverse-message state mid-sweep in an
// order that re-excites the very echo the correction cancels — on the
// hard corpus their circular runs diverge — so the auto-variant path
// degrades circular to damped for them.
func (e *Engine) circularSafe(impl Implementation, md graph.Metadata) bool {
	switch impl {
	case CNode, CUDANode:
		return true
	case Pool:
		return e.paradigmNode(md)
	}
	return false
}

// withAutoVariant returns the engine whose Options carry the update rule
// the run should use: e itself when AutoVariant is off or Options already
// request a variant (explicit settings always win), otherwise a copy with
// the selector's pick resolved in.
func (e *Engine) withAutoVariant(g *graph.Graph, impl Implementation) *Engine {
	noExplicit := e.Options.Variant == kernel.VariantVanilla &&
		e.Options.Damping == 0 && e.Options.Kernel.Alpha == 0
	if !e.AutoVariant || !noExplicit {
		return e
	}
	v := e.ChooseVariant(g)
	if v == kernel.VariantCircular && !e.circularSafe(impl, g.Stats()) {
		v = kernel.VariantDamped
	}
	auto := *e
	auto.Options.Variant = v
	auto.Options = auto.Options.ResolveVariant()
	return &auto
}

// RunWith executes a specific implementation on g. Under AutoVariant, the
// selector picks the update rule — unless Options already request one —
// degrading circular to damped when impl does not run the node-paradigm
// schedule circular is pinned convergent on.
func (e *Engine) RunWith(g *graph.Graph, impl Implementation) (Report, error) {
	cpu := e.CPU
	if cpu.Name == "" {
		cpu = perfmodel.I7_7700HQ()
	}
	gpu := e.GPU
	if gpu.Name == "" {
		gpu = gpusim.Pascal()
	}
	e = e.withAutoVariant(g, impl)
	variant := e.Options.ResolveVariant().Variant
	switch impl {
	case CEdge, CNode:
		var res bp.Result
		if impl == CNode {
			res = bp.RunNode(g, e.Options)
		} else {
			res = bp.RunEdge(g, e.Options)
		}
		return Report{
			Implementation: impl,
			Variant:        variant,
			Result:         res,
			EstimatedTime:  cpu.SequentialTime(res.Ops),
		}, nil
	case Pool:
		workers := e.PoolWorkers
		if workers <= 0 {
			workers = runtime.NumCPU()
		}
		popts := poolbp.Options{Options: e.Options, Workers: workers}
		var res bp.Result
		if e.paradigmNode(g.Stats()) {
			res = poolbp.RunNode(g, popts)
		} else {
			res = poolbp.RunEdge(g, popts)
		}
		return Report{
			Implementation: impl,
			Variant:        variant,
			Result:         res,
			EstimatedTime:  cpu.PoolTime(res.Ops, perfmodel.PoolOptions{Workers: workers}),
		}, nil
	case Relax:
		workers := e.RelaxWorkers
		if workers <= 0 {
			workers = runtime.NumCPU()
		}
		res := relaxbp.Run(g, relaxbp.Options{Options: e.Options, Workers: workers})
		return Report{
			Implementation: impl,
			Variant:        variant,
			Result:         res,
			EstimatedTime:  cpu.RelaxTime(res.Ops, perfmodel.RelaxOptions{Workers: workers}),
		}, nil
	case CUDAEdge, CUDANode:
		dev := gpusim.NewDevice(gpu)
		opts := cudaOptions(e)
		var res cudaResult
		var err error
		if impl == CUDANode {
			res, err = runCUDANode(g, dev, opts)
		} else {
			res, err = runCUDAEdge(g, dev, opts)
		}
		if err != nil {
			return Report{Implementation: impl}, err
		}
		stats := res.DeviceStats
		return Report{
			Implementation: impl,
			Variant:        variant,
			Result:         res.Result,
			EstimatedTime:  res.SimTime,
			DeviceStats:    &stats,
		}, nil
	}
	return Report{}, fmt.Errorf("core: unknown implementation %v", impl)
}
