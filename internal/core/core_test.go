package core

import (
	"math"
	"testing"

	"credo/internal/bp"
	"credo/internal/features"
	"credo/internal/gen"
	"credo/internal/gpusim"
	"credo/internal/graph"
	"credo/internal/ml"
)

func TestImplementationString(t *testing.T) {
	cases := map[Implementation]string{
		CEdge: "C Edge", CNode: "C Node", CUDAEdge: "CUDA Edge", CUDANode: "CUDA Node",
	}
	for impl, want := range cases {
		if impl.String() != want {
			t.Errorf("%d.String() = %q, want %q", impl, impl.String(), want)
		}
	}
	if CEdge.IsCUDA() || !CUDANode.IsCUDA() {
		t.Error("IsCUDA wrong")
	}
	if CEdge.IsNode() || !CNode.IsNode() {
		t.Error("IsNode wrong")
	}
}

func TestCudaCrossoverShape(t *testing.T) {
	if got := cudaCrossover(2); math.Abs(got-math.Pow(10, 4.7)) > 1 {
		t.Errorf("crossover(2) = %v, want ≈5e4 (calibrated to this environment's Figure 7)", got)
	}
	if got := cudaCrossover(32); math.Abs(got-1e3) > 0.01 {
		t.Errorf("crossover(32) = %v, want 1e3 (paper §3.6)", got)
	}
	if cudaCrossover(3) >= cudaCrossover(2) {
		t.Error("crossover must fall as beliefs rise")
	}
	if cudaCrossover(0) != cudaCrossover(2) || cudaCrossover(99) != cudaCrossover(32) {
		t.Error("crossover not clamped at the belief range")
	}
}

func TestSelectorRule(t *testing.T) {
	var s Selector
	small := graph.Metadata{NumNodes: 100, NumEdges: 400, States: 2}
	big := graph.Metadata{NumNodes: 2_000_000, NumEdges: 8_000_000, States: 2}
	if got := s.Choose(small, 1<<20); got != CEdge {
		t.Errorf("small graph chose %v, want C Edge", got)
	}
	if got := s.Choose(big, 1<<30); got != CUDANode {
		t.Errorf("large graph chose %v, want CUDA Node", got)
	}
	// Wide beliefs shift the crossover down: 10k nodes at 32 beliefs is
	// already CUDA territory.
	wide := graph.Metadata{NumNodes: 10_000, NumEdges: 40_000, States: 32}
	if got := s.Choose(wide, 1<<30); !got.IsCUDA() {
		t.Errorf("wide-belief graph chose %v, want a CUDA implementation", got)
	}
	// But the same graph at 2 beliefs stays on the CPU.
	narrow := graph.Metadata{NumNodes: 10_000, NumEdges: 40_000, States: 2}
	if got := s.Choose(narrow, 1<<30); got.IsCUDA() {
		t.Errorf("narrow-belief mid graph chose %v, want a C implementation", got)
	}
}

func TestSelectorVRAMFallback(t *testing.T) {
	var s Selector
	big := graph.Metadata{NumNodes: 2_000_000, NumEdges: 8_000_000, States: 2}
	if got := s.Choose(big, 100<<30); got.IsCUDA() {
		t.Errorf("graph exceeding VRAM chose %v, want a C implementation", got)
	}
}

func TestSelectorDisableCUDA(t *testing.T) {
	s := Selector{DisableCUDA: true}
	big := graph.Metadata{NumNodes: 2_000_000, NumEdges: 8_000_000, States: 2}
	if got := s.Choose(big, 1<<20); got.IsCUDA() {
		t.Errorf("DisableCUDA chose %v", got)
	}
}

// constClassifier always predicts one label.
type constClassifier int

func (c constClassifier) Fit([][]float64, []int) error { return nil }
func (c constClassifier) Predict([]float64) int        { return int(c) }

func TestSelectorUsesClassifier(t *testing.T) {
	s := Selector{Classifier: constClassifier(features.LabelNode)}
	small := graph.Metadata{NumNodes: 100, NumEdges: 400, States: 2}
	if got := s.Choose(small, 1<<10); got != CNode {
		t.Errorf("classifier=Node on CPU chose %v, want C Node", got)
	}
	s.Classifier = constClassifier(features.LabelEdge)
	big := graph.Metadata{NumNodes: 500_000, NumEdges: 2_000_000, States: 2}
	if got := s.Choose(big, 1<<20); got != CUDAEdge {
		t.Errorf("classifier=Edge on CUDA chose %v, want CUDA Edge", got)
	}
}

func TestEngineRunAllImplementations(t *testing.T) {
	base, err := gen.Synthetic(300, 1200, gen.Config{Seed: 19, States: 3})
	if err != nil {
		t.Fatal(err)
	}
	var eng Engine
	ref := base.Clone()
	bp.RunNode(ref, bp.Options{})
	for _, impl := range []Implementation{CEdge, CNode, CUDAEdge, CUDANode} {
		g := base.Clone()
		rep, err := eng.RunWith(g, impl)
		if err != nil {
			t.Fatalf("%v: %v", impl, err)
		}
		if rep.Implementation != impl {
			t.Errorf("report says %v, want %v", rep.Implementation, impl)
		}
		if rep.EstimatedTime <= 0 {
			t.Errorf("%v: no estimated time", impl)
		}
		if impl.IsCUDA() && rep.DeviceStats == nil {
			t.Errorf("%v: missing device stats", impl)
		}
		if !impl.IsCUDA() && rep.DeviceStats != nil {
			t.Errorf("%v: unexpected device stats", impl)
		}
		var maxd float64
		for i := range g.Beliefs {
			d := math.Abs(float64(g.Beliefs[i] - ref.Beliefs[i]))
			if d > maxd {
				maxd = d
			}
		}
		if maxd > 1e-3 {
			t.Errorf("%v beliefs diverge from reference by %v", impl, maxd)
		}
	}
}

func TestEngineAutoSelection(t *testing.T) {
	g, err := gen.Synthetic(200, 800, gen.Config{Seed: 23, States: 2})
	if err != nil {
		t.Fatal(err)
	}
	var eng Engine
	rep, err := eng.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Implementation != CEdge {
		t.Errorf("200-node graph auto-selected %v, want C Edge", rep.Implementation)
	}
	if !rep.Result.Converged {
		t.Error("run did not converge")
	}
}

func TestEngineWithTrainedClassifier(t *testing.T) {
	// Train a tiny forest on synthetic labels and wire it in end to end.
	var X [][]float64
	var y []int
	for i := 0; i < 40; i++ {
		n := 100 * (i + 1)
		md := graph.Metadata{NumNodes: n, NumEdges: 4 * n, States: 2, MaxInDegree: 10, MaxOutDegree: 10}
		md.AvgInDegree = 4
		X = append(X, features.Vector(md))
		if n > 2000 {
			y = append(y, int(features.LabelNode))
		} else {
			y = append(y, int(features.LabelEdge))
		}
	}
	forest := &ml.RandomForest{Seed: 7}
	if err := forest.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	eng := Engine{Selector: Selector{Classifier: forest}}
	g, err := gen.Synthetic(150, 600, gen.Config{Seed: 2, States: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Implementation.IsCUDA() {
		t.Errorf("small graph routed to %v", rep.Implementation)
	}
}

func TestEngineVoltaProfile(t *testing.T) {
	g, err := gen.Synthetic(2000, 8000, gen.Config{Seed: 3, States: 32}) // wide beliefs force CUDA
	if err != nil {
		t.Fatal(err)
	}
	eng := Engine{Selector: Selector{GPU: gpusim.Volta()}}
	rep, err := eng.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Implementation.IsCUDA() {
		t.Fatalf("expected a CUDA implementation, got %v", rep.Implementation)
	}
}

func TestSelectorPoolGate(t *testing.T) {
	big := graph.Metadata{NumNodes: 250_000, NumEdges: 1_000_000, States: 2}
	small := graph.Metadata{NumNodes: 100, NumEdges: 400, States: 2}
	var off Selector
	if got := off.Choose(big, 1<<30); got == Pool {
		t.Error("pool chosen without opting in via PoolWorkers")
	}
	on := Selector{PoolWorkers: 8}
	if got := on.Choose(big, 1<<30); got != Pool {
		t.Errorf("big graph with PoolWorkers chose %v, want Go Pool", got)
	}
	if got := on.Choose(small, 1<<20); got == Pool {
		t.Errorf("small graph chose the pool despite the viability floor")
	}
	if Pool.String() != "Go Pool" {
		t.Errorf("Pool.String() = %q", Pool.String())
	}
	if Pool.IsCUDA() {
		t.Error("pool claims to be CUDA")
	}
}

func TestEngineRunPool(t *testing.T) {
	base, err := gen.Synthetic(300, 1200, gen.Config{Seed: 19, States: 3})
	if err != nil {
		t.Fatal(err)
	}
	oracle := base.Clone()
	bp.RunNode(oracle, bp.Options{})
	eng := Engine{Selector: Selector{PoolWorkers: 4}}
	g := base.Clone()
	rep, err := eng.RunWith(g, Pool)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Implementation != Pool {
		t.Errorf("report says %v, want Go Pool", rep.Implementation)
	}
	if !rep.Result.Converged {
		t.Error("pool run did not converge")
	}
	if rep.EstimatedTime <= 0 {
		t.Errorf("estimated time %v", rep.EstimatedTime)
	}
	if rep.Result.Ops.SyncOps == 0 {
		t.Error("pool run recorded no barrier crossings")
	}
	var maxd float64
	for i := range g.Beliefs {
		if d := math.Abs(float64(g.Beliefs[i] - oracle.Beliefs[i])); d > maxd {
			maxd = d
		}
	}
	if maxd > 5e-3 {
		t.Errorf("pool beliefs diverge from the sequential oracle by %v", maxd)
	}
}
