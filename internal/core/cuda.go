package core

import (
	"credo/internal/cudabp"
	"credo/internal/gpusim"
	"credo/internal/graph"
)

type cudaResult = cudabp.Result

func cudaOptions(e *Engine) cudabp.Options {
	return cudabp.Options{Options: e.Options, BlockDim: e.BlockDim, Batch: e.Batch}
}

func runCUDAEdge(g *graph.Graph, dev *gpusim.Device, opts cudabp.Options) (cudaResult, error) {
	return cudabp.RunEdge(g, dev, opts)
}

func runCUDANode(g *graph.Graph, dev *gpusim.Device, opts cudabp.Options) (cudaResult, error) {
	return cudabp.RunNode(g, dev, opts)
}

// deviceFootprint estimates the device bytes a CUDA run of g needs; the
// larger of the two paradigms' footprints is used for the VRAM admission
// check.
func deviceFootprint(g *graph.Graph) int64 {
	f := g.MemoryFootprint()
	f += int64(g.NumNodes*g.States) * 4
	f += int64(g.NumNodes) * 4
	f += int64(g.NumEdges) * 12
	return f
}
