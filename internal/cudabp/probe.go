package cudabp

import (
	"credo/internal/bp"
	"credo/internal/telemetry"
)

// Engine names as they appear in telemetry events.
const (
	engNode = "cuda.node"
	engEdge = "cuda.edge"
)

// Probe events fire once per simulated iteration. On a real device the
// per-iteration residual lives in VRAM between batch transfers; the
// simulation computes it host-side every iteration anyway, so the
// trace reports the series a device-side ring buffer would hold.
func emitRunStart(probe telemetry.Probe, engine string, items int64, threshold float32) {
	if probe == nil {
		return
	}
	probe.Emit(telemetry.Event{
		Kind:      telemetry.KindRunStart,
		Engine:    engine,
		Items:     items,
		Threshold: threshold,
	})
}

func emitRunEnd(probe telemetry.Probe, engine string, res *bp.Result) {
	if probe == nil {
		return
	}
	probe.Emit(telemetry.Event{
		Kind:      telemetry.KindRunEnd,
		Engine:    engine,
		Iter:      int32(res.Iterations),
		Delta:     res.FinalDelta,
		Converged: res.Converged,
		Updated:   res.Ops.NodesProcessed,
		Edges:     res.Ops.EdgesProcessed,
	})
}
