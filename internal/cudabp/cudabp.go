// Package cudabp implements the paper's CUDA Node and CUDA Edge loopy-BP
// engines (§3.6) on the simulated device of package gpusim, plus the
// OpenACC-style variant of §2.4 whose scheduler behaviours the paper
// measured as uncompetitive.
//
// Each engine mirrors its C counterpart exactly in arithmetic (Jacobi
// updates, log-space accumulation, the same combine stage), so beliefs
// agree with the sequential engines within floating-point tolerance. The
// CUDA-specific behaviours are what differ:
//
//   - the whole graph is uploaded once and stays resident, with the
//     convergence scalar transferred back only every Batch iterations;
//   - the shared joint probability matrix lives in constant memory;
//   - the reductive convergence sum uses per-block shared memory;
//   - the edge paradigm folds messages into destination accumulators with
//     global atomics, while the node paradigm performs uncoalesced parent
//     gathers instead.
package cudabp

import (
	"fmt"
	"time"

	"credo/internal/bp"
	"credo/internal/gpusim"
	"credo/internal/graph"
	"credo/internal/kernel"
	"credo/internal/telemetry"
)

// DefaultBlockDim is the paper's block size for all benchmarks (§4).
const DefaultBlockDim = 1024

// DefaultBatch is the number of iterations between convergence-check
// transfers (§3.6 "minimize CPU-GPU transfers utilizing batching").
const DefaultBatch = 4

// Options configures a device run.
type Options struct {
	bp.Options
	// BlockDim is threads per block. Zero means DefaultBlockDim.
	BlockDim int
	// Batch is the number of iterations between host convergence checks.
	// Zero means DefaultBatch.
	Batch int
	// FuseKernels launches each iteration's pipeline (messages, combine,
	// reduce) as one fused kernel with grid-wide barriers — Gunrock's
	// kernel-fusion optimization (paper §5.2). It trades launch overhead
	// for barrier cost, paying off on small graphs where launches
	// dominate.
	FuseKernels bool
}

func (o Options) withDefaults(numNodes int) Options {
	if o.BlockDim <= 0 {
		o.BlockDim = DefaultBlockDim
	}
	if o.Batch <= 0 {
		o.Batch = DefaultBatch
	}
	if o.Threshold == 0 {
		o.Threshold = bp.DefaultThreshold
	}
	if o.MaxIterations == 0 {
		o.MaxIterations = bp.DefaultMaxIterations
	}
	if o.QueueThreshold == 0 {
		o.QueueThreshold = o.Threshold
	}
	o.Options = o.Options.ResolveVariant()
	return o
}

// Result extends the CPU result with the device's simulated time and
// activity breakdown.
type Result struct {
	bp.Result
	// SimTime is the simulated device-side elapsed time, including the
	// initialization, transfer and kernel costs.
	SimTime time.Duration
	// DeviceStats is the device activity accumulated by this run.
	DeviceStats gpusim.Stats
}

// footprint returns the device bytes a run needs: the graph plus the
// engine's accumulators, deltas and queues.
func footprint(g *graph.Graph, edges bool) int64 {
	f := g.MemoryFootprint()
	f += int64(g.NumNodes*g.States) * 4 // accumulators
	f += int64(g.NumNodes) * 4          // node deltas
	if edges {
		f += int64(g.NumEdges) * 4 // edge deltas
		f += int64(g.NumEdges) * 8 // edge queue double buffer
	} else {
		f += int64(g.NumNodes) * 8 // node queue double buffer
	}
	return f
}

// RunEdge executes CUDA Edge loopy BP on dev. It returns an error when the
// graph does not fit in the device's VRAM (the paper's TW/OR exclusion).
func RunEdge(g *graph.Graph, dev *gpusim.Device, opts Options) (Result, error) {
	opts = opts.withDefaults(g.NumNodes)
	s := g.States
	bytes := footprint(g, true)
	if err := dev.Malloc(bytes); err != nil {
		return Result{}, fmt.Errorf("cudabp: edge: %w", err)
	}
	defer dev.Free(bytes)
	dev.CopyToDevice(g.MemoryFootprint())

	k := kernel.New(g, opts.Kernel)
	var res Result
	cur := append([]float32(nil), g.Beliefs...)
	nxt := append([]float32(nil), g.Beliefs...)

	// Log-domain accumulators as raw bits for device atomics.
	accBits := make([]uint32, g.NumNodes*s)
	for e := 0; e < g.NumEdges; e++ {
		dst := int(g.EdgeDst[e])
		m := g.Message(int32(e))
		for j := 0; j < s; j++ {
			f := f32(accBits[dst*s+j]) + bp.Logf(m[j])
			accBits[dst*s+j] = bits32(f)
		}
	}

	nodeDelta := make([]float32, g.NumNodes)

	active := make([]int32, g.NumEdges)
	for e := range active {
		active[e] = int32(e)
	}
	if opts.WorkQueue {
		res.Ops.QueuePushes += int64(g.NumEdges)
	}

	shared := g.SharedMatrix()
	matBytes := int64(s*s) * 4

	probe := opts.Probe
	ctx, endTask := telemetry.BeginRun(engEdge)
	emitRunStart(probe, engEdge, int64(g.NumEdges), opts.Threshold)

	for iter := 0; iter < opts.MaxIterations; iter++ {
		res.Iterations = iter + 1
		res.Ops.Iterations++
		endIter := telemetry.StartRegion(ctx, "iteration")

		n := len(active)
		grid := (n + opts.BlockDim - 1) / opts.BlockDim
		edgeBody := func(blk *gpusim.Block) {
			lo := blk.Index * opts.BlockDim
			hi := lo + opts.BlockDim
			if hi > n {
				hi = n
			}
			msg := make([]float32, s)
			var ks kernel.Scratch
			for _, e := range active[lo:hi] {
				src, dst := g.EdgeSrc[e], g.EdgeDst[e]
				parent := cur[int(src)*s : int(src)*s+s]
				k.Message(&ks, msg, e, parent)
				old := g.Message(e)
				base := int(dst) * s
				for j := 0; j < s; j++ {
					blk.AtomicAddFloat32(accBits, base+j, bp.Logf(msg[j])-bp.Logf(old[j]))
					old[j] = msg[j]
				}
				blk.ChargeRandomGlobal(int64(s) * 4) // source belief gather
				if shared {
					blk.ChargeConstant(matBytes)
				} else {
					mb := matBytes
					if mb < 64 {
						mb = 64 // one sector minimum per scattered matrix
					}
					blk.ChargeGlobal(mb)
				}
				blk.ChargeGlobal(int64(2*s) * 4) // message read+write
				blk.ChargeOps(int64(s*s + 3*s))
				blk.ChargeSpecialOps(int64(2 * s))
			}
		}

		var sum float32
		if opts.FuseKernels {
			cgrid, cbody := combineKernel(g, opts, cur, nxt, accBits, nodeDelta)
			rgrid, partial, rbody := reduceKernel(g, opts, nodeDelta)
			dev.LaunchFused("bp_iteration", []gpusim.FusedStage{
				{Grid: grid, BlockDim: opts.BlockDim, ThreadStateBytes: 4 * s, Kernel: edgeBody},
				{Grid: cgrid, BlockDim: opts.BlockDim, Kernel: cbody},
				{Grid: rgrid, BlockDim: opts.BlockDim, Kernel: rbody},
			})
			for _, p := range partial {
				sum += p
			}
		} else {
			dev.Launch(gpusim.LaunchConfig{Name: "edge_messages", Grid: grid, BlockDim: opts.BlockDim, ThreadStateBytes: 4 * s}, edgeBody)
			launchCombine(g, dev, opts, cur, nxt, accBits, nodeDelta)
			sum = launchReduce(g, dev, opts, nodeDelta)
		}
		res.Ops.EdgesProcessed += int64(n)
		res.Ops.AtomicOps += int64(n * s)
		res.Ops.MatrixOps += int64(n * s * s)
		res.Ops.NodesProcessed += int64(g.NumNodes)
		res.FinalDelta = sum

		if opts.WorkQueue {
			active = rebuildEdgeFrontier(g, dev, opts, nodeDelta)
			res.Ops.QueuePushes += int64(len(active))
		}

		cur, nxt = nxt, cur

		endIter()
		if probe != nil {
			qlen := int64(-1)
			if opts.WorkQueue {
				qlen = int64(len(active))
			}
			probe.Emit(telemetry.Event{
				Kind:    telemetry.KindIteration,
				Engine:  engEdge,
				Iter:    int32(iter + 1),
				Delta:   sum,
				Updated: int64(g.NumNodes),
				Edges:   int64(n),
				Active:  qlen,
				Items:   int64(g.NumEdges),
			})
		}

		// The convergence scalar only crosses the bus at batch
		// boundaries, so the device can overrun by up to Batch-1
		// iterations past true convergence.
		if (iter+1)%opts.Batch == 0 || iter+1 == opts.MaxIterations {
			dev.CopyToHost(4)
			if sum < opts.Threshold || (opts.WorkQueue && len(active) == 0) {
				res.Converged = true
				break
			}
		}
	}

	copy(g.Beliefs, cur)
	dev.CopyToHost(int64(len(g.Beliefs)) * 4)
	res.SimTime = dev.SimTime()
	res.DeviceStats = dev.Stats()
	emitRunEnd(probe, engEdge, &res.Result)
	endTask()
	return res, nil
}

// RunNode executes CUDA Node loopy BP on dev.
func RunNode(g *graph.Graph, dev *gpusim.Device, opts Options) (Result, error) {
	opts = opts.withDefaults(g.NumNodes)
	s := g.States
	bytes := footprint(g, false)
	if err := dev.Malloc(bytes); err != nil {
		return Result{}, fmt.Errorf("cudabp: node: %w", err)
	}
	defer dev.Free(bytes)
	dev.CopyToDevice(g.MemoryFootprint())

	k := kernel.New(g, opts.Kernel)
	var res Result
	cur := append([]float32(nil), g.Beliefs...)
	nxt := append([]float32(nil), g.Beliefs...)
	nodeDelta := make([]float32, g.NumNodes)

	active := make([]int32, g.NumNodes)
	for v := range active {
		active[v] = int32(v)
	}
	if opts.WorkQueue {
		res.Ops.QueuePushes += int64(g.NumNodes)
	}

	shared := g.SharedMatrix()
	matBytes := int64(s*s) * 4

	probe := opts.Probe
	ctx, endTask := telemetry.BeginRun(engNode)
	emitRunStart(probe, engNode, int64(g.NumNodes), opts.Threshold)

	for iter := 0; iter < opts.MaxIterations; iter++ {
		res.Iterations = iter + 1
		res.Ops.Iterations++
		endIter := telemetry.StartRegion(ctx, "iteration")

		n := len(active)
		if opts.WorkQueue && n < g.NumNodes {
			// Nodes outside the queue keep their previous beliefs and
			// contribute no delta (device-side this is simply no write).
			copy(nxt, cur)
			for v := range nodeDelta {
				nodeDelta[v] = 0
			}
		}
		grid := (n + opts.BlockDim - 1) / opts.BlockDim
		var edgesThisIter int64
		nodeBody := func(blk *gpusim.Block) {
			lo := blk.Index * opts.BlockDim
			hi := lo + opts.BlockDim
			if hi > n {
				hi = n
			}
			// Per-block kernel scratch: blocks may execute concurrently,
			// so each block body owns its state.
			var ks kernel.Scratch
			for _, v := range active[lo:hi] {
				if g.Observed[v] {
					copy(nxt[int(v)*s:int(v)*s+s], cur[int(v)*s:int(v)*s+s])
					nodeDelta[v] = 0
					continue
				}
				elo, ehi := g.InOffsets[v], g.InOffsets[v+1]
				k.Begin(&ks, g.Priors[int(v)*s:int(v)*s+s], int(ehi-elo))
				for _, e := range g.InEdges[elo:ehi] {
					src := g.EdgeSrc[e]
					k.Accumulate(&ks, e, cur[int(src)*s:int(src)*s+s])
					blk.ChargeRandomGlobal(int64(s) * 4) // random parent gather
					if shared {
						blk.ChargeConstant(matBytes)
					} else {
						// Per-edge matrices are fetched from scattered
						// addresses; each row costs a full memory sector.
						blk.ChargeRandomGlobal(int64(s) * 64)
					}
					blk.ChargeOps(int64(s*s + 2*s))
					blk.ChargeSpecialOps(int64(s))
				}
				nb := nxt[int(v)*s : int(v)*s+s]
				ob := cur[int(v)*s : int(v)*s+s]
				k.Finish(&ks, nb)
				bp.Blend(nb, ob, opts.Damping)
				nodeDelta[v] = graph.L1Diff(nb, ob)
				blk.ChargeGlobal(int64(3*s) * 4) // prior load + belief write + old belief
				blk.ChargeSpecialOps(int64(s))
				blk.ChargeOps(int64(3 * s))
			}
		}

		var sum float32
		if opts.FuseKernels {
			rgrid, partial, rbody := reduceKernel(g, opts, nodeDelta)
			dev.LaunchFused("bp_iteration", []gpusim.FusedStage{
				{Grid: grid, BlockDim: opts.BlockDim, ThreadStateBytes: 8 * s, Kernel: nodeBody},
				{Grid: rgrid, BlockDim: opts.BlockDim, Kernel: rbody},
			})
			for _, p := range partial {
				sum += p
			}
		} else {
			dev.Launch(gpusim.LaunchConfig{Name: "node_update", Grid: grid, BlockDim: opts.BlockDim, ThreadStateBytes: 8 * s}, nodeBody)
			sum = launchReduce(g, dev, opts, nodeDelta)
		}
		for _, v := range active {
			edgesThisIter += int64(g.InDegree(v))
		}
		res.Ops.EdgesProcessed += edgesThisIter
		res.Ops.RandomLoads += edgesThisIter * int64(s)
		res.Ops.MatrixOps += edgesThisIter * int64(s*s)
		res.Ops.NodesProcessed += int64(n)
		res.FinalDelta = sum

		if opts.WorkQueue {
			active = rebuildNodeFrontier(g, dev, opts, nodeDelta)
			res.Ops.QueuePushes += int64(len(active))
		}

		cur, nxt = nxt, cur

		endIter()
		if probe != nil {
			qlen := int64(-1)
			if opts.WorkQueue {
				qlen = int64(len(active))
			}
			probe.Emit(telemetry.Event{
				Kind:    telemetry.KindIteration,
				Engine:  engNode,
				Iter:    int32(iter + 1),
				Delta:   sum,
				Updated: int64(n),
				Edges:   edgesThisIter,
				Active:  qlen,
				Items:   int64(g.NumNodes),
			})
		}

		if (iter+1)%opts.Batch == 0 || iter+1 == opts.MaxIterations {
			dev.CopyToHost(4)
			if sum < opts.Threshold || (opts.WorkQueue && len(active) == 0) {
				res.Converged = true
				break
			}
		}
	}

	copy(g.Beliefs, cur)
	dev.CopyToHost(int64(len(g.Beliefs)) * 4)
	res.SimTime = dev.SimTime()
	res.DeviceStats = dev.Stats()
	emitRunEnd(probe, engNode, &res.Result)
	endTask()
	return res, nil
}

// launchCombine runs the edge paradigm's combine kernel: every node folds
// its accumulator with its prior into the next belief buffer.
func launchCombine(g *graph.Graph, dev *gpusim.Device, opts Options, cur, nxt []float32, accBits []uint32, nodeDelta []float32) {
	grid, body := combineKernel(g, opts, cur, nxt, accBits, nodeDelta)
	dev.Launch(gpusim.LaunchConfig{Name: "node_combine", Grid: grid, BlockDim: opts.BlockDim}, body)
}

// combineKernel builds the combine stage's grid shape and body.
func combineKernel(g *graph.Graph, opts Options, cur, nxt []float32, accBits []uint32, nodeDelta []float32) (int, func(*gpusim.Block)) {
	s := g.States
	grid := (g.NumNodes + opts.BlockDim - 1) / opts.BlockDim
	return grid, func(blk *gpusim.Block) {
		lo := blk.Index * opts.BlockDim
		hi := lo + opts.BlockDim
		if hi > g.NumNodes {
			hi = g.NumNodes
		}
		acc := make([]float32, s)
		for v := lo; v < hi; v++ {
			if g.Observed[v] {
				copy(nxt[v*s:v*s+s], cur[v*s:v*s+s])
				nodeDelta[v] = 0
				continue
			}
			for j := 0; j < s; j++ {
				acc[j] = f32(accBits[v*s+j])
			}
			nb := nxt[v*s : v*s+s]
			ob := cur[v*s : v*s+s]
			bp.ExpNormalize(nb, g.Priors[v*s:v*s+s], acc)
			bp.Blend(nb, ob, opts.Damping)
			nodeDelta[v] = graph.L1Diff(nb, ob)
			blk.ChargeGlobal(int64(4*s) * 4)
			blk.ChargeSpecialOps(int64(s))
			blk.ChargeOps(int64(3 * s))
		}
	}
}

// launchReduce runs the reductive convergence sum, which uses per-block
// shared memory and __syncthreads (§3.6), and returns the total.
func launchReduce(g *graph.Graph, dev *gpusim.Device, opts Options, nodeDelta []float32) float32 {
	grid, partial, body := reduceKernel(g, opts, nodeDelta)
	dev.Launch(gpusim.LaunchConfig{Name: "reduce_delta", Grid: grid, BlockDim: opts.BlockDim}, body)
	var sum float32
	for _, p := range partial {
		sum += p
	}
	return sum
}

// reduceKernel builds the reduce stage's grid, partial buffer and body.
func reduceKernel(g *graph.Graph, opts Options, nodeDelta []float32) (int, []float32, func(*gpusim.Block)) {
	grid := (g.NumNodes + opts.BlockDim - 1) / opts.BlockDim
	partial := make([]float32, grid)
	return grid, partial, func(blk *gpusim.Block) {
		lo := blk.Index * opts.BlockDim
		hi := lo + opts.BlockDim
		if hi > g.NumNodes {
			hi = g.NumNodes
		}
		var sum float32
		for v := lo; v < hi; v++ {
			sum += nodeDelta[v]
		}
		partial[blk.Index] = sum
		blk.ChargeGlobal(int64(hi-lo) * 4)
		blk.ChargeOps(int64(hi - lo))
		// Tree reduction in shared memory: log2(blockDim) barriers.
		for w := opts.BlockDim; w > 1; w >>= 1 {
			blk.SyncThreads()
		}
	}
}

// rebuildEdgeFrontier runs the queue-rebuild kernel of the edge paradigm
// (§3.5): the next queue holds the out-edges of every node whose belief
// moved beyond the threshold this iteration (their messages are now
// stale). Pushes are aggregated per block — survivors are collected into
// block-local (shared) memory and a single atomic reserves the block's
// slice of the next queue.
func rebuildEdgeFrontier(g *graph.Graph, dev *gpusim.Device, opts Options, nodeDelta []float32) []int32 {
	n := g.NumNodes
	grid := (n + opts.BlockDim - 1) / opts.BlockDim
	next := make([]int32, g.NumEdges)
	cursor := make([]int32, 1)
	dev.Launch(gpusim.LaunchConfig{Name: "edge_frontier", Grid: grid, BlockDim: opts.BlockDim}, func(blk *gpusim.Block) {
		lo := blk.Index * opts.BlockDim
		hi := lo + opts.BlockDim
		if hi > n {
			hi = n
		}
		var local []int32
		for v := lo; v < hi; v++ {
			blk.ChargeGlobal(4)
			if nodeDelta[v] <= opts.QueueThreshold {
				continue
			}
			elo, ehi := g.OutOffsets[v], g.OutOffsets[v+1]
			local = append(local, g.OutEdges[elo:ehi]...)
			blk.ChargeGlobal(int64(ehi-elo) * 4)
		}
		if len(local) == 0 {
			return
		}
		blk.SyncThreads()
		end := blk.AtomicAddInt32(cursor, 0, int32(len(local)))
		copy(next[end-int32(len(local)):end], local)
		blk.ChargeGlobal(int64(len(local)) * 4)
	})
	return next[:cursor[0]]
}

// rebuildNodeFrontier is the node paradigm's queue rebuild: the next queue
// holds the successors of every node that moved, deduplicated with an
// atomic test-and-set mark per node.
func rebuildNodeFrontier(g *graph.Graph, dev *gpusim.Device, opts Options, nodeDelta []float32) []int32 {
	n := g.NumNodes
	grid := (n + opts.BlockDim - 1) / opts.BlockDim
	next := make([]int32, n)
	cursor := make([]int32, 1)
	mark := make([]int32, n)
	dev.Launch(gpusim.LaunchConfig{Name: "node_frontier", Grid: grid, BlockDim: opts.BlockDim}, func(blk *gpusim.Block) {
		lo := blk.Index * opts.BlockDim
		hi := lo + opts.BlockDim
		if hi > n {
			hi = n
		}
		var local []int32
		for v := lo; v < hi; v++ {
			blk.ChargeGlobal(4)
			if nodeDelta[v] <= opts.QueueThreshold {
				continue
			}
			elo, ehi := g.OutOffsets[v], g.OutOffsets[v+1]
			blk.ChargeGlobal(int64(ehi-elo) * 4)
			for _, e := range g.OutEdges[elo:ehi] {
				dst := g.EdgeDst[e]
				if blk.AtomicAddInt32(mark, int(dst), 1) == 1 {
					local = append(local, dst)
				}
			}
		}
		if len(local) == 0 {
			return
		}
		blk.SyncThreads()
		end := blk.AtomicAddInt32(cursor, 0, int32(len(local)))
		copy(next[end-int32(len(local)):end], local)
		blk.ChargeGlobal(int64(len(local)) * 4)
	})
	return next[:cursor[0]]
}
