package cudabp

import (
	"math"
	"testing"

	"credo/internal/bp"
	"credo/internal/gen"
	"credo/internal/gpusim"
	"credo/internal/graph"
)

func maxBeliefDiff(a, b *graph.Graph) float64 {
	var maxd float64
	for i := range a.Beliefs {
		d := math.Abs(float64(a.Beliefs[i] - b.Beliefs[i]))
		if d > maxd {
			maxd = d
		}
	}
	return maxd
}

func TestCUDAMatchesSequential(t *testing.T) {
	for _, tc := range []struct {
		name string
		seq  func(*graph.Graph, bp.Options) bp.Result
		cu   func(*graph.Graph, *gpusim.Device, Options) (Result, error)
	}{
		{"edge", bp.RunEdge, RunEdge},
		{"node", bp.RunNode, RunNode},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g1, err := gen.Synthetic(400, 1600, gen.Config{Seed: 17, States: 3})
			if err != nil {
				t.Fatal(err)
			}
			g2 := g1.Clone()
			tc.seq(g1, bp.Options{})
			dev := gpusim.NewDevice(gpusim.Pascal())
			res, err := tc.cu(g2, dev, Options{BlockDim: 64})
			if err != nil {
				t.Fatal(err)
			}
			if d := maxBeliefDiff(g1, g2); d > 1e-3 {
				t.Errorf("CUDA %s beliefs diverge from sequential by %v", tc.name, d)
			}
			if !res.Converged {
				t.Errorf("CUDA %s did not converge: %+v", tc.name, res.Result)
			}
			if res.SimTime <= 0 {
				t.Error("no simulated time accumulated")
			}
		})
	}
}

func TestCUDAWorkQueues(t *testing.T) {
	for _, tc := range []struct {
		name string
		cu   func(*graph.Graph, *gpusim.Device, Options) (Result, error)
	}{{"edge", RunEdge}, {"node", RunNode}} {
		t.Run(tc.name, func(t *testing.T) {
			base, err := gen.Synthetic(600, 2400, gen.Config{Seed: 5, States: 2})
			if err != nil {
				t.Fatal(err)
			}
			g1, g2 := base.Clone(), base.Clone()
			r1, err := tc.cu(g1, gpusim.NewDevice(gpusim.Pascal()), Options{BlockDim: 128})
			if err != nil {
				t.Fatal(err)
			}
			r2, err := tc.cu(g2, gpusim.NewDevice(gpusim.Pascal()), Options{BlockDim: 128, Options: bp.Options{WorkQueue: true}})
			if err != nil {
				t.Fatal(err)
			}
			if d := maxBeliefDiff(g1, g2); d > 5e-3 {
				t.Errorf("queue beliefs diverge by %v", d)
			}
			if r2.Ops.EdgesProcessed >= r1.Ops.EdgesProcessed {
				t.Errorf("queue did not reduce edge work: %d >= %d", r2.Ops.EdgesProcessed, r1.Ops.EdgesProcessed)
			}
		})
	}
}

func TestVRAMExceeded(t *testing.T) {
	// A tiny profile rejects even a small graph, reproducing the paper's
	// TW/OR exclusion mechanism.
	p := gpusim.Pascal()
	p.VRAMBytes = 1024
	g, err := gen.Synthetic(100, 400, gen.Config{Seed: 1, States: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunEdge(g, gpusim.NewDevice(p), Options{}); err == nil {
		t.Error("edge run accepted a graph exceeding VRAM")
	}
	if _, err := RunNode(g, gpusim.NewDevice(p), Options{}); err == nil {
		t.Error("node run accepted a graph exceeding VRAM")
	}
}

func TestDeviceMemoryReleased(t *testing.T) {
	g, err := gen.Synthetic(50, 200, gen.Config{Seed: 2, States: 2})
	if err != nil {
		t.Fatal(err)
	}
	dev := gpusim.NewDevice(gpusim.Pascal())
	if _, err := RunEdge(g, dev, Options{}); err != nil {
		t.Fatal(err)
	}
	if dev.Allocated() != 0 {
		t.Errorf("device still holds %d bytes after run", dev.Allocated())
	}
}

func TestEdgeUsesAtomicsNodeDoesNot(t *testing.T) {
	g, err := gen.Synthetic(200, 800, gen.Config{Seed: 8, States: 2})
	if err != nil {
		t.Fatal(err)
	}
	devE := gpusim.NewDevice(gpusim.Pascal())
	re, err := RunEdge(g.Clone(), devE, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if re.Ops.AtomicOps == 0 || devE.Stats().Atomics == 0 {
		t.Error("edge paradigm recorded no atomics")
	}
	devN := gpusim.NewDevice(gpusim.Pascal())
	rn, err := RunNode(g.Clone(), devN, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rn.Ops.AtomicOps != 0 {
		t.Errorf("node paradigm recorded %d belief atomics", rn.Ops.AtomicOps)
	}
	if rn.Ops.RandomLoads == 0 {
		t.Error("node paradigm recorded no random loads")
	}
}

func TestSharedMatrixUsesConstantMemory(t *testing.T) {
	run := func(shared bool) gpusim.Stats {
		g, err := gen.Synthetic(300, 1200, gen.Config{Seed: 4, States: 4, Shared: shared})
		if err != nil {
			t.Fatal(err)
		}
		dev := gpusim.NewDevice(gpusim.Pascal())
		if _, err := RunEdge(g, dev, Options{Options: bp.Options{MaxIterations: 10}}); err != nil {
			t.Fatal(err)
		}
		return dev.Stats()
	}
	sharedStats := run(true)
	perEdgeStats := run(false)
	if sharedStats.MemoryTime >= perEdgeStats.MemoryTime {
		t.Errorf("constant-memory shared matrix not cheaper: %v >= %v",
			sharedStats.MemoryTime, perEdgeStats.MemoryTime)
	}
}

func TestBatchedConvergenceOverrun(t *testing.T) {
	// With Batch=4 the device may overrun true convergence by up to 3
	// iterations but never more.
	g, err := gen.Synthetic(200, 800, gen.Config{Seed: 12, States: 2})
	if err != nil {
		t.Fatal(err)
	}
	seq := bp.RunEdge(g.Clone(), bp.Options{})
	gc := g.Clone()
	res, err := RunEdge(gc, gpusim.NewDevice(gpusim.Pascal()), Options{Batch: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations < seq.Iterations {
		t.Errorf("CUDA converged in fewer iterations (%d) than sequential (%d)", res.Iterations, seq.Iterations)
	}
	if res.Iterations > seq.Iterations+4 {
		t.Errorf("CUDA overran by more than one batch: %d vs %d", res.Iterations, seq.Iterations)
	}
}

func TestOpenACCRunsLongerAndTransfersMore(t *testing.T) {
	g, err := gen.Synthetic(300, 1200, gen.Config{Seed: 3, States: 2})
	if err != nil {
		t.Fatal(err)
	}
	cudaDev := gpusim.NewDevice(gpusim.Pascal())
	cudaRes, err := RunEdge(g.Clone(), cudaDev, Options{})
	if err != nil {
		t.Fatal(err)
	}
	accDev := gpusim.NewDevice(gpusim.Pascal())
	accRes, err := RunOpenACCEdge(g.Clone(), accDev, OpenACCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if accRes.Iterations <= cudaRes.Iterations {
		t.Errorf("OpenACC converged as fast as CUDA: %d vs %d iterations", accRes.Iterations, cudaRes.Iterations)
	}
	if accDev.Stats().BytesToDevice <= cudaDev.Stats().BytesToDevice {
		t.Error("OpenACC default scheduler did not transfer more data")
	}
	if accRes.SimTime <= cudaRes.SimTime {
		t.Errorf("OpenACC not slower than CUDA: %v vs %v", accRes.SimTime, cudaRes.SimTime)
	}
	// Batched transfers recover most of the gap.
	accDev2 := gpusim.NewDevice(gpusim.Pascal())
	accRes2, err := RunOpenACCEdge(g.Clone(), accDev2, OpenACCOptions{BatchTransfers: true})
	if err != nil {
		t.Fatal(err)
	}
	if accRes2.SimTime >= accRes.SimTime {
		t.Error("batched transfers did not reduce OpenACC time")
	}
}

func TestObservedNodesClampedOnDevice(t *testing.T) {
	g, err := gen.Synthetic(100, 400, gen.Config{Seed: 6, States: 3})
	if err != nil {
		t.Fatal(err)
	}
	_ = g.Observe(42, 2)
	for _, run := range []func(*graph.Graph, *gpusim.Device, Options) (Result, error){RunEdge, RunNode} {
		c := g.Clone()
		if _, err := run(c, gpusim.NewDevice(gpusim.Pascal()), Options{}); err != nil {
			t.Fatal(err)
		}
		b := c.Belief(42)
		if b[0] != 0 || b[1] != 0 || b[2] != 1 {
			t.Errorf("observed node drifted to %v", b)
		}
	}
}

func TestTransferDominatesSmallGraphs(t *testing.T) {
	// §4.1.1: for the smallest benchmark, memory management and transfer
	// overhead dwarf compute.
	g, err := gen.Synthetic(10, 40, gen.Config{Seed: 1, States: 2})
	if err != nil {
		t.Fatal(err)
	}
	dev := gpusim.NewDevice(gpusim.Pascal())
	if _, err := RunEdge(g, dev, Options{}); err != nil {
		t.Fatal(err)
	}
	st := dev.Stats()
	overhead := st.InitTime + st.TransferTime + st.LaunchTime
	if frac := overhead / st.Total(); frac < 0.9 {
		t.Errorf("overhead fraction = %.3f, want > 0.9 for a 10-node graph", frac)
	}
}

func TestKernelFusion(t *testing.T) {
	g, err := gen.Synthetic(300, 1200, gen.Config{Seed: 14, States: 2})
	if err != nil {
		t.Fatal(err)
	}
	g1, g2 := g.Clone(), g.Clone()
	devPlain := gpusim.NewDevice(gpusim.Pascal())
	r1, err := RunEdge(g1, devPlain, Options{})
	if err != nil {
		t.Fatal(err)
	}
	devFused := gpusim.NewDevice(gpusim.Pascal())
	r2, err := RunEdge(g2, devFused, Options{FuseKernels: true})
	if err != nil {
		t.Fatal(err)
	}
	// Functionally identical.
	if d := maxBeliefDiff(g1, g2); d > 1e-6 {
		t.Errorf("fused beliefs differ by %v", d)
	}
	if r1.Iterations != r2.Iterations {
		t.Errorf("iterations differ: %d vs %d", r1.Iterations, r2.Iterations)
	}
	// Fewer launches charged.
	if devFused.Stats().LaunchTime >= devPlain.Stats().LaunchTime {
		t.Errorf("fusion did not reduce launch time: %v >= %v",
			devFused.Stats().LaunchTime, devPlain.Stats().LaunchTime)
	}
}
