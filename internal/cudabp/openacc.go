package cudabp

import (
	"math"
	"time"

	"credo/internal/gpusim"
	"credo/internal/graph"
)

// OpenACCOptions configures the pragma-based GPU variant of §2.4.
type OpenACCOptions struct {
	Options
	// BatchTransfers overrides the OpenACC scheduler's default of
	// shipping the full data set across the bus every iteration, keeping
	// the graph resident and moving only the batched convergence scalar —
	// the manual data-placement fix the paper applied to make the
	// implementation competitive at all.
	BatchTransfers bool
}

// convergenceSlack models OpenACC's imprecise convergence reduction: the
// computed delta never falls below this noise floor, so runs terminate
// "much closer to the cap on iterations" than the CUDA engines (§2.4).
const convergenceSlack = 16

// RunOpenACCEdge executes the edge paradigm the way the OpenACC port
// behaves: same kernels, but with the scheduler's per-iteration full data
// transfers (unless BatchTransfers) and a convergence check that loses
// precision and overruns.
func RunOpenACCEdge(g *graph.Graph, dev *gpusim.Device, opts OpenACCOptions) (Result, error) {
	return runOpenACC(g, dev, opts, true)
}

// RunOpenACCNode is the node-paradigm OpenACC variant.
func RunOpenACCNode(g *graph.Graph, dev *gpusim.Device, opts OpenACCOptions) (Result, error) {
	return runOpenACC(g, dev, opts, false)
}

func runOpenACC(g *graph.Graph, dev *gpusim.Device, opts OpenACCOptions, edges bool) (Result, error) {
	o := opts.Options
	// OpenACC lacks the fine-grained control work queues require (§2.4).
	o.WorkQueue = false
	o = Options{Options: o.Options, BlockDim: opts.BlockDim, Batch: opts.Batch}.withDefaults(g.NumNodes)

	// The imprecise reduction makes the observed delta sit above the true
	// one; we model it by tightening the threshold the device must reach.
	o.Threshold /= convergenceSlack
	if !opts.BatchTransfers {
		// Default scheduler: the full graph crosses the bus every
		// iteration in both directions. Charge it up front per expected
		// iteration as the run proceeds (folded in below).
		o.Batch = 1
	}

	var res Result
	var err error
	if edges {
		res, err = RunEdge(g, dev, o)
	} else {
		res, err = RunNode(g, dev, o)
	}
	if err != nil {
		return res, err
	}
	if !opts.BatchTransfers {
		per := g.MemoryFootprint()
		for i := 0; i < res.Iterations; i++ {
			dev.CopyToDevice(per)
			dev.CopyToHost(per)
		}
	}
	// Pragma-generated kernels carry extra launch bookkeeping per region.
	extra := float64(res.Iterations) * 2 * dev.Profile.KernelLaunch
	res.SimTime = dev.SimTime() + time.Duration(extra*float64(time.Second))
	res.DeviceStats = dev.Stats()
	return res, nil
}

func f32(bits uint32) float32 { return math.Float32frombits(bits) }
func bits32(f float32) uint32 { return math.Float32bits(f) }
