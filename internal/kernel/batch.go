package kernel

import (
	"math"
	"sync/atomic"

	"credo/internal/graph"
)

// This file is the K-way batched form of the kernel: one combine carries K
// belief vectors per node in struct-of-arrays layout — entry (state j,
// lane k) of a node block lives at j*K+k, so the K lanes of one state are
// contiguous. A single pass over the adjacency and the shared transposed
// joint matrices then services K concurrent queries with different
// evidence but identical structure: every matrix coefficient is loaded
// once and fused into K multiply-accumulates over unit-stride lane
// vectors, which is where the batched throughput comes from (the node
// paradigm is memory-bound; K-way batching multiplies arithmetic
// intensity without touching the traffic).
//
// The numerical policy is applied per lane so that every lane is
// bit-for-bit the combine the solo kernel would have produced for that
// lane's evidence: per-lane LogEps clamps, per-lane max-rescales with
// per-lane rescale budgets, and a per-lane conversion to log space when a
// lane's running magnitude keeps collapsing. Lanes never read each
// other's state — the differential and fuzz tests pin every lane of a
// batch against its standalone K=1 run.

// BatchScratch is the per-worker state of an in-progress K-way node
// combine. Buffers grow to States*K on first use and are reused; steady
// state allocates nothing. The zero value is ready to use.
type BatchScratch struct {
	// Counters accumulates policy statistics across combines run through
	// this scratch. FastPath counts edge folds (each servicing K lanes),
	// matching the solo kernel's per-fold accounting.
	Counters Counters

	prod []float32 // linear running products, [state*K + lane]
	acc  []float32 // log-space accumulators, same layout
	racc []float32 // per-lane dot-product accumulators (generic width)
	m    []float32 // per-lane running maxima (generic width)
	logl []bool    // per-lane log-space flags
	resc []int32   // per-lane rescale counts
	wr   []bool    // per-lane write mask of the current node update

	lane [graph.MaxStates]float32 // contiguous gather of one lane's parent
	lmsg [graph.MaxStates]float32 // materialized per-lane message (log + circular)
	lacc [graph.MaxStates]float32 // contiguous gather of one lane's accumulator
	lpri [graph.MaxStates]float32 // contiguous gather of one lane's prior
	ldst [graph.MaxStates]float32 // contiguous combine result before scatter
	corr [graph.MaxStates]float32 // circular-corrected parent belief
	rmsg [graph.MaxStates]float32 // circular reverse-message snapshot

	prior  []float32 // node's per-lane prior block, set by BeginBatch
	anyLog bool      // at least one lane is in log space
}

// ensure sizes the per-lane buffers for a States×K combine.
func (sc *BatchScratch) ensure(s, k int) {
	n := s * k
	if cap(sc.prod) < n {
		sc.prod = make([]float32, n)
		sc.acc = make([]float32, n)
	}
	sc.prod = sc.prod[:n]
	sc.acc = sc.acc[:n]
	if cap(sc.racc) < k {
		sc.racc = make([]float32, k)
		sc.m = make([]float32, k)
		sc.logl = make([]bool, k)
		sc.resc = make([]int32, k)
		sc.wr = make([]bool, k)
	}
	sc.racc = sc.racc[:k]
	sc.m = sc.m[:k]
	sc.logl = sc.logl[:k]
	sc.resc = sc.resc[:k]
	sc.wr = sc.wr[:k]
}

// BatchKernel is the K-lane view of a graph's matrices: the solo kernel's
// dispatch plus the lane count. Like Kernel it is immutable and shareable
// across workers; mutable state lives in BatchScratch (and, for the
// circular variant, in the per-edge-per-lane correction state, which is
// accessed atomically).
type BatchKernel struct {
	Kernel
	lanes int
	bst   *batchEdgeState
}

// NewBatch selects the K-lane kernel for one run over g. cfg.Alpha > 0
// allocates per-edge-per-lane Circular-BP correction state
// (O(NumEdges·States·K) — the one batched configuration that is not
// allocation-free after warmup).
func NewBatch(g *graph.Graph, cfg Config, k int) BatchKernel {
	alpha := cfg.Alpha
	cfg.Alpha = 0 // the solo edge state is never used by the batched paths
	b := BatchKernel{Kernel: New(g, cfg), lanes: k}
	if alpha > 0 {
		b.bst = newBatchEdgeState(g, g.States, k, alpha)
	}
	return b
}

// Lanes returns the lane count the kernel was built for.
func (b *BatchKernel) Lanes() int { return b.lanes }

// BeginBatch starts a K-way combine: prior is the node's per-lane prior
// block (States*K, SoA) and inDegree its in-edge count. The degree half
// of the underflow guard applies to every lane alike — it depends only on
// structure.
func (b *BatchKernel) BeginBatch(sc *BatchScratch, prior []float32, inDegree int) {
	s, k := b.s, b.lanes
	sc.ensure(s, k)
	sc.prior = prior
	for l := 0; l < k; l++ {
		sc.resc[l] = 0
	}
	if b.mode == LogSpace || inDegree >= b.logFallbackDegree {
		if b.mode != LogSpace {
			sc.Counters.LogFallbacks += int64(k)
		}
		sc.anyLog = true
		for l := 0; l < k; l++ {
			sc.logl[l] = true
		}
		acc := sc.acc
		for i := range acc {
			acc[i] = 0
		}
		return
	}
	sc.anyLog = false
	for l := 0; l < k; l++ {
		sc.logl[l] = false
	}
	prod := sc.prod
	for i := range prod {
		prod[i] = 1
	}
}

// AccumulateBatch folds in-edge e into all K lanes: parent is the source
// node's per-lane belief block (States*K, SoA). The fast path loads each
// transposed-matrix coefficient once and fuses it into K lane MACs; the
// per-lane clamp, multiply and rescale check reproduce the solo kernel's
// fold for each lane exactly.
func (b *BatchKernel) AccumulateBatch(sc *BatchScratch, e int32, parent []float32) {
	if b.bst != nil {
		b.accumulateCircularBatch(sc, e, parent)
		return
	}
	if sc.anyLog {
		// At least one lane is in log space: fold lane by lane, each
		// through the same code shape the solo kernel would use.
		for l := 0; l < b.lanes; l++ {
			b.accumulateLane(sc, e, parent, l)
		}
		sc.Counters.FastPath++
		return
	}
	sc.Counters.FastPath++
	k := b.lanes
	switch b.w {
	case 2:
		t := b.matT(e)
		t0, t1, t2, t3 := t[0], t[1], t[2], t[3]
		p0, p1 := parent[:k], parent[k:2*k]
		q0, q1 := sc.prod[:k], sc.prod[k:2*k]
		for l := 0; l < k; l++ {
			r0 := p0[l]*t0 + p1[l]*t1
			r1 := p0[l]*t2 + p1[l]*t3
			if r0 < LogEps {
				r0 = LogEps
			}
			if r1 < LogEps {
				r1 = LogEps
			}
			r0 *= q0[l]
			r1 *= q1[l]
			q0[l], q1[l] = r0, r1
			m := r0
			if r1 > m {
				m = r1
			}
			if !(m >= rescaleFloor) {
				b.rescaleLane(sc, l, m)
			}
		}
	case 3:
		t := b.matT(e)
		p0, p1, p2 := parent[:k], parent[k:2*k], parent[2*k:3*k]
		q0, q1, q2 := sc.prod[:k], sc.prod[k:2*k], sc.prod[2*k:3*k]
		for l := 0; l < k; l++ {
			r0 := p0[l]*t[0] + p1[l]*t[1] + p2[l]*t[2]
			r1 := p0[l]*t[3] + p1[l]*t[4] + p2[l]*t[5]
			r2 := p0[l]*t[6] + p1[l]*t[7] + p2[l]*t[8]
			if r0 < LogEps {
				r0 = LogEps
			}
			if r1 < LogEps {
				r1 = LogEps
			}
			if r2 < LogEps {
				r2 = LogEps
			}
			r0 *= q0[l]
			r1 *= q1[l]
			r2 *= q2[l]
			q0[l], q1[l], q2[l] = r0, r1, r2
			m := r0
			if r1 > m {
				m = r1
			}
			if r2 > m {
				m = r2
			}
			if !(m >= rescaleFloor) {
				b.rescaleLane(sc, l, m)
			}
		}
	case 4:
		t := b.matT(e)
		p0, p1, p2, p3 := parent[:k], parent[k:2*k], parent[2*k:3*k], parent[3*k:4*k]
		q0, q1, q2, q3 := sc.prod[:k], sc.prod[k:2*k], sc.prod[2*k:3*k], sc.prod[3*k:4*k]
		for l := 0; l < k; l++ {
			r0 := p0[l]*t[0] + p1[l]*t[1] + p2[l]*t[2] + p3[l]*t[3]
			r1 := p0[l]*t[4] + p1[l]*t[5] + p2[l]*t[6] + p3[l]*t[7]
			r2 := p0[l]*t[8] + p1[l]*t[9] + p2[l]*t[10] + p3[l]*t[11]
			r3 := p0[l]*t[12] + p1[l]*t[13] + p2[l]*t[14] + p3[l]*t[15]
			if r0 < LogEps {
				r0 = LogEps
			}
			if r1 < LogEps {
				r1 = LogEps
			}
			if r2 < LogEps {
				r2 = LogEps
			}
			if r3 < LogEps {
				r3 = LogEps
			}
			r0 *= q0[l]
			r1 *= q1[l]
			r2 *= q2[l]
			r3 *= q3[l]
			q0[l], q1[l], q2[l], q3[l] = r0, r1, r2, r3
			m := r0
			if r1 > m {
				m = r1
			}
			if r2 > m {
				m = r2
			}
			if r3 > m {
				m = r3
			}
			if !(m >= rescaleFloor) {
				b.rescaleLane(sc, l, m)
			}
		}
	default:
		b.accumulateBlockedBatch(sc, b.matT(e), parent)
	}
}

// accumulateBlockedBatch is the generic-width K-lane fold: for each
// output state, the blocked (4-wide) dot product of the solo kernel is
// evaluated for all K lanes with each matrix coefficient loaded once.
// Per-lane partial sums accumulate in the same block order as the solo
// routine, so each lane's result is bitwise the solo result.
func (b *BatchKernel) accumulateBlockedBatch(sc *BatchScratch, t, parent []float32) {
	s, k := b.s, b.lanes
	mm := sc.m[:k]
	neg := float32(math.Inf(-1))
	for l := 0; l < k; l++ {
		mm[l] = neg
	}
	racc := sc.racc[:k]
	for j := 0; j < s; j++ {
		col := t[j*s : j*s+s]
		for l := range racc {
			racc[l] = 0
		}
		i := 0
		for ; i+4 <= s; i += 4 {
			c0, c1, c2, c3 := col[i], col[i+1], col[i+2], col[i+3]
			p0 := parent[i*k : i*k+k]
			p1 := parent[(i+1)*k : (i+1)*k+k]
			p2 := parent[(i+2)*k : (i+2)*k+k]
			p3 := parent[(i+3)*k : (i+3)*k+k]
			for l := 0; l < k; l++ {
				racc[l] += p0[l]*c0 + p1[l]*c1 + p2[l]*c2 + p3[l]*c3
			}
		}
		for ; i < s; i++ {
			c := col[i]
			p := parent[i*k : i*k+k]
			for l := 0; l < k; l++ {
				racc[l] += p[l] * c
			}
		}
		q := sc.prod[j*k : j*k+k]
		for l := 0; l < k; l++ {
			r := racc[l]
			if r < LogEps {
				r = LogEps
			}
			r *= q[l]
			q[l] = r
			if r > mm[l] {
				mm[l] = r
			}
		}
	}
	for l := 0; l < k; l++ {
		if !(mm[l] >= rescaleFloor) {
			b.rescaleLane(sc, l, mm[l])
		}
	}
}

// accumulateLane folds edge e into lane l alone — the mixed-mode path
// once any lane has converted to log space. The lane's strided parent is
// gathered contiguous and sent through the solo kernel's own raw gather,
// so the lane keeps tracking its standalone run bit-for-bit.
func (b *BatchKernel) accumulateLane(sc *BatchScratch, e int32, parent []float32, l int) {
	s, k := b.s, b.lanes
	lp := sc.lane[:s]
	for j := 0; j < s; j++ {
		lp[j] = parent[j*k+l]
	}
	if sc.logl[l] {
		msg := sc.lmsg[:s]
		b.rawInto(msg, b.matT(e), lp)
		graph.Normalize(msg)
		for j := 0; j < s; j++ {
			sc.acc[j*k+l] += Logf(msg[j])
		}
		return
	}
	raw := sc.lmsg[:s]
	b.rawInto(raw, b.matT(e), lp)
	m := float32(math.Inf(-1))
	for j := 0; j < s; j++ {
		r := raw[j]
		if r < LogEps {
			r = LogEps
		}
		r *= sc.prod[j*k+l]
		sc.prod[j*k+l] = r
		if r > m {
			m = r
		}
	}
	if !(m >= rescaleFloor) {
		b.rescaleLane(sc, l, m)
	}
}

// rescaleLane divides lane l's running product by its maximum and
// converts the lane to log space once its rescale budget is exhausted —
// the solo kernel's magnitude guard, confined to one lane.
func (b *BatchKernel) rescaleLane(sc *BatchScratch, l int, m float32) {
	s, k := b.s, b.lanes
	for j := 0; j < s; j++ {
		sc.prod[j*k+l] /= m
	}
	sc.Counters.Rescales++
	sc.resc[l]++
	if int(sc.resc[l]) > b.maxRescales {
		sc.logl[l] = true
		sc.anyLog = true
		sc.Counters.LogFallbacks++
		for j := 0; j < s; j++ {
			sc.acc[j*k+l] = Logf(sc.prod[j*k+l])
		}
	}
}

// FinishBatch completes the combine into the node's per-lane destination
// block (States*K, SoA), writing only lanes whose write mask is set —
// finished or clamped lanes keep their beliefs without breaking the SoA
// stride. Each written lane is the solo Finish of that lane's state:
// prior-multiply, normalize, degrade to uniform on a zero or non-finite
// sum.
func (b *BatchKernel) FinishBatch(sc *BatchScratch, dst []float32, write []bool) {
	s, k := b.s, b.lanes
	for l := 0; l < k; l++ {
		if !write[l] {
			continue
		}
		if sc.logl[l] {
			la, lp, ld := sc.lacc[:s], sc.lpri[:s], sc.ldst[:s]
			for j := 0; j < s; j++ {
				la[j] = sc.acc[j*k+l]
				lp[j] = sc.prior[j*k+l]
			}
			ExpNormalize(ld, lp, la)
			for j := 0; j < s; j++ {
				dst[j*k+l] = ld[j]
			}
			continue
		}
		var sum float32
		for j := 0; j < s; j++ {
			v := sc.prior[j*k+l] * sc.prod[j*k+l]
			dst[j*k+l] = v
			sum += v
		}
		if !(sum > 0) || math.IsInf(float64(sum), 0) {
			u := 1 / float32(s)
			for j := 0; j < s; j++ {
				dst[j*k+l] = u
			}
			continue
		}
		inv := 1 / sum
		for j := 0; j < s; j++ {
			dst[j*k+l] *= inv
		}
	}
}

// NodeUpdateBatch runs the whole K-way combine for node v. from and
// priors are the full SoA arrays ((v*States+j)*K+k layout — pass the
// engine's previous-iteration buffer and the batch's per-lane priors),
// observed the per-node-per-lane clamp flags (v*K+k) and active the
// per-lane liveness mask (false = the lane converged and is frozen). It
// returns the in-degree processed and the number of lanes written; a
// zero lane count means every lane was clamped or frozen and the node
// was skipped entirely. Damping, when configured, blends each written
// lane with its previous belief, exactly as the solo kernel does.
func (b *BatchKernel) NodeUpdateBatch(sc *BatchScratch, dst []float32, v int32, from, priors []float32, observed, active []bool) (int, int) {
	g := b.g
	s, k := b.s, b.lanes
	sc.ensure(s, k)
	wr := sc.wr[:k]
	wrote := 0
	for l := 0; l < k; l++ {
		w := active[l] && !observed[int(v)*k+l]
		wr[l] = w
		if w {
			wrote++
		}
	}
	if wrote == 0 {
		return 0, 0
	}
	lo, hi := g.InOffsets[v], g.InOffsets[v+1]
	base := int(v) * s * k
	b.BeginBatch(sc, priors[base:base+s*k], int(hi-lo))
	for _, e := range g.InEdges[lo:hi] {
		src := int(g.EdgeSrc[e])
		b.AccumulateBatch(sc, e, from[src*s*k:src*s*k+s*k])
	}
	nb := dst[base : base+s*k]
	b.FinishBatch(sc, nb, wr)
	if b.damping > 0 {
		old := from[base : base+s*k]
		d := b.damping
		w := 1 - d
		for l := 0; l < k; l++ {
			if !wr[l] {
				continue
			}
			for j := 0; j < s; j++ {
				nb[j*k+l] = w*nb[j*k+l] + d*old[j*k+l]
			}
		}
	}
	return int(hi - lo), wrote
}

// batchEdgeState is the Circular-BP correction state of a batched run:
// the last message sent along every directed edge, per lane, at index
// (e*States+j)*K+k. Entries are float32 bit patterns accessed atomically
// so the parallel batched engine can read a reverse message another
// worker is writing; lanes are fully independent — one lane's correction
// never reads another lane's message.
type batchEdgeState struct {
	alpha float32
	lanes int
	rev   []int32
	msg   []uint32
}

func newBatchEdgeState(g *graph.Graph, states, lanes int, alpha float32) *batchEdgeState {
	st := &batchEdgeState{
		alpha: alpha,
		lanes: lanes,
		rev:   buildReverseIndex(g),
		msg:   make([]uint32, g.NumEdges*states*lanes),
	}
	u := math.Float32bits(1 / float32(states))
	for i := range st.msg {
		st.msg[i] = u
	}
	return st
}

// loadLane reads edge e's last lane-l message into dst.
func (st *batchEdgeState) loadLane(dst []float32, e int32, s, l int) {
	base := int(e) * s * st.lanes
	for j := 0; j < s; j++ {
		dst[j] = math.Float32frombits(atomic.LoadUint32(&st.msg[base+j*st.lanes+l]))
	}
}

// storeLane publishes edge e's new lane-l message.
func (st *batchEdgeState) storeLane(src []float32, e int32, s, l int) {
	base := int(e) * s * st.lanes
	for j := 0; j < s; j++ {
		atomic.StoreUint32(&st.msg[base+j*st.lanes+l], math.Float32bits(src[j]))
	}
}

// accumulateCircularBatch is the Circular-BP fold of in-edge e for all K
// lanes: per lane, materialize the α-corrected normalized message from
// that lane's parent and that lane's reverse message, publish it to the
// lane's correction state, and fold it into the lane's accumulator. The
// per-lane math mirrors the solo accumulateCircular exactly; only the
// correction state is lane-indexed, which is what keeps lanes from
// cross-contaminating through the loop correction.
func (b *BatchKernel) accumulateCircularBatch(sc *BatchScratch, e int32, parent []float32) {
	s, k := b.s, b.lanes
	sc.Counters.FastPath++
	for l := 0; l < k; l++ {
		lp := sc.lane[:s]
		for j := 0; j < s; j++ {
			lp[j] = parent[j*k+l]
		}
		cp := lp
		if r := b.bst.rev[e]; r >= 0 {
			rm := sc.rmsg[:s]
			b.bst.loadLane(rm, r, s, l)
			cc := sc.corr[:s]
			alpha := float64(b.bst.alpha)
			maxl := math.Inf(-1)
			for i := 0; i < s; i++ {
				lg := float64(Logf(lp[i])) - alpha*float64(Logf(rm[i]))
				cc[i] = float32(lg)
				if lg > maxl {
					maxl = lg
				}
			}
			for i := 0; i < s; i++ {
				cc[i] = float32(math.Exp(float64(cc[i]) - maxl))
			}
			cp = cc
		}
		msg := sc.lmsg[:s]
		b.rawInto(msg, b.matT(e), cp)
		graph.Normalize(msg)
		b.bst.storeLane(msg, e, s, l)
		if sc.logl[l] {
			for j := 0; j < s; j++ {
				sc.acc[j*k+l] += Logf(msg[j])
			}
			continue
		}
		m := float32(math.Inf(-1))
		for j := 0; j < s; j++ {
			v := msg[j]
			if v < LogEps {
				v = LogEps
			}
			v *= sc.prod[j*k+l]
			sc.prod[j*k+l] = v
			if v > m {
				m = v
			}
		}
		if !(m >= rescaleFloor) {
			b.rescaleLane(sc, l, m)
		}
	}
}
