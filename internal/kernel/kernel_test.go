package kernel_test

import (
	"math"
	"math/rand"
	"testing"

	"credo/internal/gen"
	"credo/internal/graph"
	"credo/internal/kernel"
)

// buildStar builds a hub (node 0) with `parents` in-edges carrying random
// stochastic matrices and random parent priors.
func buildStar(t testing.TB, states, parents int, shared bool, seed int64) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(states)
	if shared {
		if err := b.SetShared(gen.RandomJointMatrix(rng, states, 0.7)); err != nil {
			t.Fatalf("SetShared: %v", err)
		}
	}
	prior := make([]float32, states)
	gen.RandomDistribution(rng, prior)
	if _, err := b.AddNode(prior); err != nil {
		t.Fatalf("AddNode: %v", err)
	}
	for i := 0; i < parents; i++ {
		gen.RandomDistribution(rng, prior)
		if _, err := b.AddNode(prior); err != nil {
			t.Fatalf("AddNode: %v", err)
		}
		var mat *graph.JointMatrix
		if !shared {
			m := gen.RandomJointMatrix(rng, states, 0.7)
			mat = &m
		}
		if err := b.AddEdge(int32(i+1), 0, mat); err != nil {
			t.Fatalf("AddEdge: %v", err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

func maxDiff(a, b []float32) float64 {
	var m float64
	for i := range a {
		d := math.Abs(float64(a[i]) - float64(b[i]))
		if d > m {
			m = d
		}
	}
	return m
}

// TestNodeUpdateMatchesLogSpaceOracle checks the linear fast path against
// the log-space reference for every supported width, shared and per-edge.
func TestNodeUpdateMatchesLogSpaceOracle(t *testing.T) {
	widths := []int{1, 2, 3, 4, 5, 7, 8, 16, 31, 32}
	for _, s := range widths {
		for _, shared := range []bool{false, true} {
			for _, mode := range []kernel.Mode{kernel.Specialized, kernel.Generic} {
				g := buildStar(t, s, 6, shared, int64(s)*100+7)
				oracle := kernel.New(g, kernel.Config{Mode: kernel.LogSpace})
				k := kernel.New(g, kernel.Config{Mode: mode})
				var scO, sc kernel.Scratch
				want := make([]float32, s)
				got := make([]float32, s)
				oracle.NodeUpdate(&scO, want, 0, g.Beliefs)
				k.NodeUpdate(&sc, got, 0, g.Beliefs)
				if d := maxDiff(got, want); d > 1e-5 {
					t.Errorf("states=%d shared=%v mode=%v: L∞ vs oracle = %g", s, shared, mode, d)
				}
				if sc.Counters.FastPath != 6 {
					t.Errorf("states=%d mode=%v: FastPath = %d, want 6", s, mode, sc.Counters.FastPath)
				}
			}
		}
	}
}

// TestNodeUpdateMaxMatchesLogSpaceOracle is the max-product analogue.
func TestNodeUpdateMaxMatchesLogSpaceOracle(t *testing.T) {
	for _, s := range []int{2, 3, 4, 8, 32} {
		g := buildStar(t, s, 5, false, int64(s)*13+1)
		oracle := kernel.New(g, kernel.Config{Mode: kernel.LogSpace})
		k := kernel.New(g, kernel.Config{Mode: kernel.Specialized})
		var scO, sc kernel.Scratch
		want := make([]float32, s)
		got := make([]float32, s)
		oracle.NodeUpdateMax(&scO, want, 0, g.Beliefs)
		k.NodeUpdateMax(&sc, got, 0, g.Beliefs)
		if d := maxDiff(got, want); d > 1e-5 {
			t.Errorf("states=%d: max-product L∞ vs oracle = %g", s, d)
		}
	}
}

// TestMessageLogSpaceBitwise verifies that the LogSpace kernel's message is
// bit-for-bit the historical computeMessage (PropagateInto + Normalize).
func TestMessageLogSpaceBitwise(t *testing.T) {
	for _, s := range []int{2, 3, 4, 9, 32} {
		g := buildStar(t, s, 3, false, int64(s)+40)
		k := kernel.New(g, kernel.Config{Mode: kernel.LogSpace})
		got := make([]float32, s)
		want := make([]float32, s)
		var sc kernel.Scratch
		for e := int32(0); e < int32(g.NumEdges); e++ {
			parent := g.Belief(g.EdgeSrc[e])
			k.Message(&sc, got, e, parent)
			g.Matrix(e).PropagateInto(want, parent)
			graph.Normalize(want)
			for j := 0; j < s; j++ {
				if got[j] != want[j] {
					t.Fatalf("states=%d edge=%d entry %d: %v != %v (not bitwise)", s, e, j, got[j], want[j])
				}
			}
		}
	}
}

// TestReverseAccumulateMatchesOracle covers the ψ-direction fold used by
// the traditional engine.
func TestReverseAccumulateMatchesOracle(t *testing.T) {
	for _, s := range []int{2, 3, 4, 8} {
		g := buildStar(t, s, 4, false, int64(s)*3+5)
		oracle := kernel.New(g, kernel.Config{Mode: kernel.LogSpace})
		k := kernel.New(g, kernel.Config{Mode: kernel.Specialized})
		var scO, sc kernel.Scratch
		// Fold the hub's in-edges backward from the parents' beliefs, as
		// if they were children.
		want := make([]float32, s)
		got := make([]float32, s)
		oracle.Begin(&scO, g.Prior(0), g.NumEdges)
		k.Begin(&sc, g.Prior(0), g.NumEdges)
		for e := int32(0); e < int32(g.NumEdges); e++ {
			child := g.Belief(g.EdgeSrc[e])
			oracle.AccumulateReverse(&scO, e, child)
			k.AccumulateReverse(&sc, e, child)
		}
		oracle.Finish(&scO, want)
		k.Finish(&sc, got)
		if d := maxDiff(got, want); d > 1e-5 {
			t.Errorf("states=%d: reverse L∞ vs oracle = %g", s, d)
		}
	}
}

// degenerateStar builds a hub whose parents are alternately clamped to
// opposing states with deterministic couplings, so every pair of messages
// collapses the hub's running product toward zero — the rescale stress.
func degenerateStar(t testing.TB, parents int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(2)
	if _, err := b.AddNode(nil); err != nil {
		t.Fatalf("AddNode: %v", err)
	}
	m := graph.DiagonalJointMatrix(2, 1) // deterministic coupling
	for i := 0; i < parents; i++ {
		if _, err := b.AddNode(nil); err != nil {
			t.Fatalf("AddNode: %v", err)
		}
		if err := b.AddEdge(int32(i+1), 0, &m); err != nil {
			t.Fatalf("AddEdge: %v", err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	for i := 0; i < parents; i++ {
		if err := g.Observe(int32(i+1), i%2); err != nil {
			t.Fatalf("Observe: %v", err)
		}
	}
	return g
}

// TestRescaleKeepsLinearPathAccurate drives repeated max-rescales (without
// tripping the fallback) and checks the result still matches the oracle.
func TestRescaleKeepsLinearPathAccurate(t *testing.T) {
	g := degenerateStar(t, 20) // 10 collapses, rescale each time
	k := kernel.New(g, kernel.Config{Mode: kernel.Specialized})
	oracle := kernel.New(g, kernel.Config{Mode: kernel.LogSpace})
	var sc, scO kernel.Scratch
	got := make([]float32, 2)
	want := make([]float32, 2)
	k.NodeUpdate(&sc, got, 0, g.Beliefs)
	oracle.NodeUpdate(&scO, want, 0, g.Beliefs)
	if sc.Counters.Rescales == 0 {
		t.Fatal("degenerate star did not trigger any rescale")
	}
	if sc.Counters.LogFallbacks != 0 {
		t.Fatalf("LogFallbacks = %d, want 0 (guards should not trip at defaults)", sc.Counters.LogFallbacks)
	}
	if d := maxDiff(got, want); d > 1e-4 {
		t.Errorf("rescaled linear path L∞ vs oracle = %g", d)
	}
}

// TestMagnitudeGuardForcesLogFallback shrinks MaxRescales so the same
// stress converts to log space mid-combine.
func TestMagnitudeGuardForcesLogFallback(t *testing.T) {
	g := degenerateStar(t, 20)
	k := kernel.New(g, kernel.Config{Mode: kernel.Specialized, MaxRescales: 2})
	oracle := kernel.New(g, kernel.Config{Mode: kernel.LogSpace})
	var sc, scO kernel.Scratch
	got := make([]float32, 2)
	want := make([]float32, 2)
	k.NodeUpdate(&sc, got, 0, g.Beliefs)
	oracle.NodeUpdate(&scO, want, 0, g.Beliefs)
	if sc.Counters.LogFallbacks == 0 {
		t.Fatal("magnitude guard did not force a log fallback")
	}
	if d := maxDiff(got, want); d > 1e-4 {
		t.Errorf("fallback path L∞ vs oracle = %g", d)
	}
}

// TestDegreeGuardStartsInLogSpace checks the in-degree half of the guard.
func TestDegreeGuardStartsInLogSpace(t *testing.T) {
	g := buildStar(t, 3, 8, false, 77)
	k := kernel.New(g, kernel.Config{Mode: kernel.Specialized, LogFallbackDegree: 4})
	oracle := kernel.New(g, kernel.Config{Mode: kernel.LogSpace})
	var sc, scO kernel.Scratch
	got := make([]float32, 3)
	want := make([]float32, 3)
	k.NodeUpdate(&sc, got, 0, g.Beliefs)
	oracle.NodeUpdate(&scO, want, 0, g.Beliefs)
	if sc.Counters.LogFallbacks != 1 {
		t.Fatalf("LogFallbacks = %d, want 1 (degree 8 ≥ guard 4)", sc.Counters.LogFallbacks)
	}
	if sc.Counters.FastPath != 0 {
		t.Fatalf("FastPath = %d, want 0 when the combine starts in log space", sc.Counters.FastPath)
	}
	if d := maxDiff(got, want); d > 1e-5 {
		t.Errorf("degree-guard path L∞ vs oracle = %g", d)
	}
}

// TestScratchReuse runs many combines through one scratch and verifies
// state does not leak between them.
func TestScratchReuse(t *testing.T) {
	g := buildStar(t, 4, 5, true, 3)
	k := kernel.New(g, kernel.Config{})
	var sc kernel.Scratch
	first := make([]float32, 4)
	k.NodeUpdate(&sc, first, 0, g.Beliefs)
	for i := 0; i < 10; i++ {
		got := make([]float32, 4)
		k.NodeUpdate(&sc, got, 0, g.Beliefs)
		for j := range got {
			if got[j] != first[j] {
				t.Fatalf("combine %d entry %d: %v != first run %v", i, j, got[j], first[j])
			}
		}
	}
}
