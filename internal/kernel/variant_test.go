package kernel_test

import (
	"math"
	"math/rand"
	"testing"

	"credo/internal/gen"
	"credo/internal/graph"
	"credo/internal/kernel"
)

// buildRing builds an n-node undirected ring (both directed edges per
// link) with random per-edge matrices and random priors, so every edge
// has a reverse partner and the circular correction is active.
func buildRing(t testing.TB, states, n int, seed int64) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(states)
	prior := make([]float32, states)
	for i := 0; i < n; i++ {
		gen.RandomDistribution(rng, prior)
		if _, err := b.AddNode(prior); err != nil {
			t.Fatalf("AddNode: %v", err)
		}
	}
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		m := gen.RandomJointMatrix(rng, states, 0.7)
		if err := b.AddEdge(int32(i), int32(j), &m); err != nil {
			t.Fatalf("AddEdge: %v", err)
		}
		m2 := gen.RandomJointMatrix(rng, states, 0.7)
		if err := b.AddEdge(int32(j), int32(i), &m2); err != nil {
			t.Fatalf("AddEdge: %v", err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

// TestVariantStrings pins the flag vocabulary: String and ParseVariant
// are inverses over every variant, and unknown names error.
func TestVariantStrings(t *testing.T) {
	for _, v := range kernel.Variants() {
		got, err := kernel.ParseVariant(v.String())
		if err != nil {
			t.Errorf("ParseVariant(%q): %v", v.String(), err)
		}
		if got != v {
			t.Errorf("ParseVariant(%q) = %v, want %v", v.String(), got, v)
		}
	}
	if v, err := kernel.ParseVariant(""); err != nil || v != kernel.VariantVanilla {
		t.Errorf("ParseVariant(\"\") = %v, %v; want vanilla, nil", v, err)
	}
	if _, err := kernel.ParseVariant("bogus"); err == nil {
		t.Error("ParseVariant(\"bogus\") did not error")
	}
}

// TestDampedNodeUpdateBlends checks the kernel's damping is exactly the
// convex blend (1−d)·b_new + d·b_old of the vanilla update with the
// previous belief.
func TestDampedNodeUpdateBlends(t *testing.T) {
	for _, d := range []float32{0.25, 0.5, 0.9} {
		for _, mode := range []kernel.Mode{kernel.Specialized, kernel.Generic, kernel.LogSpace} {
			g := buildStar(t, 3, 5, false, 42)
			vk := kernel.New(g, kernel.Config{Mode: mode})
			dk := kernel.New(g, kernel.Config{Mode: mode, Damping: d})
			var sc kernel.Scratch
			vanilla := make([]float32, 3)
			damped := make([]float32, 3)
			vk.NodeUpdate(&sc, vanilla, 0, g.Beliefs)
			dk.NodeUpdate(&sc, damped, 0, g.Beliefs)
			old := g.Belief(0)
			for j := range damped {
				want := (1-d)*vanilla[j] + d*old[j]
				if diff := math.Abs(float64(damped[j] - want)); diff > 1e-6 {
					t.Errorf("mode=%v d=%g entry %d: damped=%v want blend %v", mode, d, j, damped[j], want)
				}
			}
		}
	}
}

// TestCircularNoReverseMatchesVanilla pins the correction's no-op
// guarantee: on a DAG (a star has no reverse edges) the circular kernel
// computes the same update as vanilla — the correction state exists but
// every rev index is -1.
func TestCircularNoReverseMatchesVanilla(t *testing.T) {
	for _, s := range []int{2, 3, 5} {
		g := buildStar(t, s, 6, false, int64(s)*9+1)
		vk := kernel.New(g, kernel.Config{Mode: kernel.Specialized})
		ck := kernel.New(g, kernel.Config{Mode: kernel.Specialized, Alpha: 1})
		var sc kernel.Scratch
		vanilla := make([]float32, s)
		circ := make([]float32, s)
		vk.NodeUpdate(&sc, vanilla, 0, g.Beliefs)
		ck.NodeUpdate(&sc, circ, 0, g.Beliefs)
		if d := maxDiff(circ, vanilla); d > 1e-6 {
			t.Errorf("states=%d: circular-on-DAG L∞ vs vanilla = %g", s, d)
		}
	}
}

// TestCircularFirstSweepMatchesVanilla pins the uniform-initialization
// guarantee on a graph that DOES have reverse edges: the stored reverse
// messages start uniform, and dividing by a uniform distribution shifts
// every log entry equally, so the first sweep's corrected messages are
// the vanilla messages.
func TestCircularFirstSweepMatchesVanilla(t *testing.T) {
	g := buildRing(t, 3, 8, 7)
	vk := kernel.New(g, kernel.Config{Mode: kernel.Specialized})
	ck := kernel.New(g, kernel.Config{Mode: kernel.Specialized, Alpha: 1})
	var sc kernel.Scratch
	vanilla := make([]float32, 3)
	circ := make([]float32, 3)
	// One node's first update, before any message has been published.
	vk.NodeUpdate(&sc, vanilla, 0, g.Beliefs)
	ck.NodeUpdate(&sc, circ, 0, g.Beliefs)
	if d := maxDiff(circ, vanilla); d > 1e-6 {
		t.Errorf("first-sweep circular L∞ vs vanilla = %g", d)
	}
}

// TestVariantKernelsAllocFree locks the steady-state allocation contract
// of both robust variants: once the kernel is built (the circular
// edge-state is a construction-time cost), per-update work lives
// entirely in the caller's Scratch — zero allocations, same as vanilla.
func TestVariantKernelsAllocFree(t *testing.T) {
	g := buildRing(t, 4, 16, 11)
	configs := map[string]kernel.Config{
		"vanilla":  {Mode: kernel.Specialized},
		"damped":   {Mode: kernel.Specialized, Damping: 0.5},
		"circular": {Mode: kernel.Specialized, Alpha: 1},
	}
	for name, cfg := range configs {
		k := kernel.New(g, cfg)
		var sc kernel.Scratch
		out := make([]float32, 4)
		allocs := testing.AllocsPerRun(10, func() {
			for v := int32(0); v < int32(g.NumNodes); v++ {
				k.NodeUpdate(&sc, out, v, g.Beliefs)
			}
		})
		if allocs != 0 {
			t.Errorf("%s: %.1f allocs per sweep, want 0", name, allocs)
		}
	}
}

// FuzzDampedKernel drives the damped kernel with fuzzer-chosen widths,
// beliefs and damping factors in (0,1], asserting the update never
// produces NaN/Inf or an unnormalized belief and that the specialized
// and generic paths agree to float32 round-off.
func FuzzDampedKernel(f *testing.F) {
	f.Add(uint8(2), uint8(3), uint16(500), int64(1))
	f.Add(uint8(4), uint8(1), uint16(999), int64(7))
	f.Add(uint8(32), uint8(8), uint16(1), int64(42))
	f.Add(uint8(7), uint8(5), uint16(250), int64(-3))
	f.Fuzz(func(t *testing.T, statesRaw, parentsRaw uint8, dampRaw uint16, seed int64) {
		states := 1 + int(statesRaw)%graph.MaxStates
		parents := 1 + int(parentsRaw)%8
		damping := float32(1+dampRaw%1000) / 1000 // (0, 1]
		g := buildStar(t, states, parents, false, seed)
		// Scribble random beliefs over the parents so the fold sees
		// arbitrary (normalized) messages, not just priors.
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		for v := 1; v <= parents; v++ {
			gen.RandomDistribution(rng, g.Beliefs[v*states:(v+1)*states])
		}
		spec := kernel.New(g, kernel.Config{Mode: kernel.Specialized, Damping: damping})
		genk := kernel.New(g, kernel.Config{Mode: kernel.Generic, Damping: damping})
		var sc kernel.Scratch
		specOut := make([]float32, states)
		genOut := make([]float32, states)
		spec.NodeUpdate(&sc, specOut, 0, g.Beliefs)
		genk.NodeUpdate(&sc, genOut, 0, g.Beliefs)
		for name, out := range map[string][]float32{"specialized": specOut, "generic": genOut} {
			var sum float64
			for j, x := range out {
				if math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
					t.Fatalf("%s states=%d parents=%d d=%g: entry %d is %v", name, states, parents, damping, j, x)
				}
				if x < 0 || x > 1 {
					t.Fatalf("%s states=%d parents=%d d=%g: entry %d = %v outside [0,1]", name, states, parents, damping, j, x)
				}
				sum += float64(x)
			}
			if math.Abs(sum-1) > 1e-3 {
				t.Fatalf("%s states=%d parents=%d d=%g: belief sums to %v", name, states, parents, damping, sum)
			}
		}
		if d := maxDiff(specOut, genOut); d > 1e-5 {
			t.Fatalf("states=%d parents=%d d=%g: specialized vs generic L∞ = %g", states, parents, damping, d)
		}
	})
}
