// Package kernel is the message-kernel layer shared by every Credo engine.
// It carries the paper's §3.4 data-layout and inner-loop optimizations to
// their conclusion: a kernel is selected once per run from a Config and a
// built graph, and every engine's hot loop drives it through one small API
// instead of re-implementing message math.
//
// A node combine is expressed as
//
//	k := kernel.New(g, cfg)
//	k.Begin(&sc, g.Prior(v), inDeg)     // start the combine
//	k.Accumulate(&sc, e, parentBelief)  // fold one in-edge, fused
//	k.Finish(&sc, g.Belief(v))          // prior-multiply + normalize
//
// (or the NodeUpdate convenience wrapping the three), and an edge-paradigm
// message as k.Message(dst, e, parentBelief).
//
// Three mechanisms produce the speedups measured by BenchmarkKernels:
//
//   - Transposed matrices. The gather direction computes
//     raw[j] = Σ_i parent[i]·M[i,j], a column walk of the row-major joint
//     matrix. The kernel reads the column-major copy JointMatrix.T built at
//     graph construction, making every inner product contiguous.
//
//   - Width specialization. States is 2, 3 or 4 in all of the paper's use
//     cases except image correction; for those widths the kernel dispatches
//     to fully unrolled fused multiply-accumulate routines with no inner
//     loops. Wider graphs (up to graph.MaxStates) take a blocked generic
//     routine. Mode selects between the two for differential testing.
//
//   - Linear-space accumulation. The engines historically combined messages
//     in log space — acc[j] += log(msg[j]) per edge, exp-normalize at the
//     end — spending two float64 transcendentals per belief entry per edge.
//     The kernel instead keeps a running product in linear space, clamping
//     each raw message entry at LogEps (mirroring Logf's clamp) and
//     rescaling the product by its maximum whenever it decays below
//     rescaleFloor. Because every factor is applied to all entries and the
//     final normalization divides it out, skipping the per-message
//     normalization and the rescales are both exact in real arithmetic; in
//     float32 the result tracks the log-space oracle to ~1e-6. Log space
//     remains as a guarded fallback: nodes whose in-degree reaches
//     Config.LogFallbackDegree start there, and a node whose running
//     magnitude keeps collapsing (more than Config.MaxRescales rescales)
//     converts its product to logs mid-combine. Mode LogSpace forces the
//     historical path everywhere and reproduces it bit-for-bit — it is the
//     oracle the policy tests compare against.
//
// Scratch is plain old data (fixed graph.MaxStates arrays, no pointers into
// the kernel) so engines can embed it per worker and hot paths allocate
// nothing.
package kernel

import (
	"math"

	"credo/internal/graph"
)

// Mode selects the kernel implementation for a run.
type Mode uint8

const (
	// Specialized dispatches States=2, 3 and 4 to fully unrolled fused
	// kernels and everything else to the blocked generic routine. It is the
	// default.
	Specialized Mode = iota

	// Generic always uses the blocked generic routine, with the same
	// linear-space numerical policy as Specialized. The differential
	// harness runs every engine under both and compares.
	Generic

	// LogSpace reproduces the pre-kernel scalar path bit-for-bit:
	// PropagateInto-ordered message sums, per-message normalization, and
	// log-space accumulation on every node. It is the numerical oracle and
	// the baseline BenchmarkKernels measures speedups against.
	LogSpace
)

// String names the mode for benchmarks and test output.
func (m Mode) String() string {
	switch m {
	case Specialized:
		return "specialized"
	case Generic:
		return "generic"
	case LogSpace:
		return "logspace"
	default:
		return "unknown"
	}
}

// Defaults for the linear-vs-log numerical policy.
const (
	// DefaultLogFallbackDegree is the in-degree at which a node's combine
	// starts directly in log space. At LogEps clamping, a linear product
	// survives roughly MaxRescales×30 orders of magnitude of decay between
	// conversions, so only extreme hubs ever need to start in log space;
	// the default keeps even the 10k-degree power-law hubs of the social
	// benchmarks on the fast path.
	DefaultLogFallbackDegree = 1 << 16

	// DefaultMaxRescales bounds how many times one node's running product
	// may be rescaled before the combine converts to log space — the
	// running-magnitude half of the underflow guard.
	DefaultMaxRescales = 32
)

// LogEps keeps log() finite and bounds how far a clamped linear factor can
// drag the running product: probabilities are clamped to at least LogEps
// before entering either accumulator. It equals the historical bp clamp so
// the two domains agree.
const LogEps = 1e-30

// rescaleFloor triggers a max-rescale of the linear running product. With
// factors clamped at LogEps, the post-multiply maximum is at least
// rescaleFloor·LogEps = 1e-42, comfortably above the float32 denormal
// floor, so the maximum used as the rescale divisor can never be zero.
const rescaleFloor = 1e-12

// Config selects the kernel for a run. The zero value means Specialized
// with default underflow guards.
type Config struct {
	// Mode selects the implementation; see the Mode constants.
	Mode Mode

	// LogFallbackDegree is the in-degree at which a node starts its
	// combine in log space. Zero means DefaultLogFallbackDegree.
	LogFallbackDegree int

	// MaxRescales is the number of linear-product rescales after which a
	// combine converts to log space. Zero means DefaultMaxRescales.
	MaxRescales int

	// Damping, when positive, blends every NodeUpdate/NodeUpdateMax result
	// with the node's previous belief: b ← (1−d)·b_new + d·b_old (the
	// VariantDamped rule). Zero keeps the vanilla path bit-identical —
	// the only cost is one compare per node update. Engines whose combine
	// stage bypasses NodeUpdate (the edge paradigms, relaxbp, cudabp)
	// apply the same blend themselves via bp.Blend.
	Damping float32

	// Alpha, when positive, enables Circular-BP loop correction
	// (VariantCircular): each message along e=(u→v) is computed from the
	// corrected source belief b_u · m_{v→u}^(−α), requiring per-edge
	// correction state allocated by New (O(NumEdges·States) — the one
	// configuration that is not allocation-free). Zero keeps the vanilla
	// path: one nil check per fold.
	Alpha float32
}

// Counters reports what the numerical policy did during a run. Engines
// fold them into OpCounts (KernelFastPath, RescaleOps); they are
// diagnostic and deliberately not priced by perfmodel, whose OpCounts
// semantics model the abstract algorithm.
type Counters struct {
	// FastPath counts in-edge folds taken through the linear fused path.
	FastPath int64
	// Rescales counts max-rescales of linear running products.
	Rescales int64
	// LogFallbacks counts combines that entered log space by policy
	// (degree guard) or conversion (magnitude guard).
	LogFallbacks int64
}

// Add accumulates other into c.
func (c *Counters) Add(other Counters) {
	c.FastPath += other.FastPath
	c.Rescales += other.Rescales
	c.LogFallbacks += other.LogFallbacks
}

// Scratch is the per-worker state of an in-progress node combine. It is
// plain old data: embed one per worker (or on the stack) and pass its
// address to Begin/Accumulate/Finish. The zero value is ready to use.
type Scratch struct {
	// Counters accumulates policy statistics across every combine run
	// through this scratch.
	Counters Counters

	prod     [graph.MaxStates]float32 // linear running product
	acc      [graph.MaxStates]float32 // log-space accumulator
	msg      [graph.MaxStates]float32 // materialized message (log + circular paths)
	corr     [graph.MaxStates]float32 // circular-corrected parent belief
	rmsg     [graph.MaxStates]float32 // circular reverse-message snapshot
	prior    []float32                // node prior, set by Begin
	log      bool                     // combine is in log space
	rescales int                      // rescales of the current combine
}

// Kernel is an immutable per-run view of a graph's matrices plus the
// selected implementation. It is a small value: copy it freely, share one
// across workers (all methods are read-only on the kernel itself; mutable
// state lives in Scratch).
type Kernel struct {
	g    *graph.Graph
	s    int
	mode Mode

	// w is the dispatch class: 2, 3, 4 for the unrolled kernels, 0 for the
	// blocked generic routine, -1 for the strict sequential reference
	// (LogSpace mode).
	w int

	logFallbackDegree int
	maxRescales       int

	// damping is the VariantDamped blend weight applied by
	// NodeUpdate/NodeUpdateMax; zero means vanilla (no blend, no cost).
	damping float32

	// st carries the Circular-BP per-edge correction state; nil means
	// vanilla (every fold pays one nil check). It is shared by all copies
	// of the kernel value, which is what lets concurrent workers exchange
	// reverse messages.
	st *edgeState

	// sharedT/shared cache the shared-matrix case so per-edge dispatch is
	// a nil check, not a branch through the graph.
	sharedT []float32
	shared  *graph.JointMatrix
}

// New selects the kernel for one run over g. It ensures the graph carries
// transposed matrix copies (a no-op for graphs from Builder.Build).
func New(g *graph.Graph, cfg Config) Kernel {
	g.EnsureTransposed()
	k := Kernel{
		g:                 g,
		s:                 g.States,
		mode:              cfg.Mode,
		logFallbackDegree: cfg.LogFallbackDegree,
		maxRescales:       cfg.MaxRescales,
		damping:           cfg.Damping,
	}
	if cfg.Alpha > 0 {
		k.st = newEdgeState(g, g.States, cfg.Alpha)
	}
	if k.logFallbackDegree <= 0 {
		k.logFallbackDegree = DefaultLogFallbackDegree
	}
	if k.maxRescales <= 0 {
		k.maxRescales = DefaultMaxRescales
	}
	switch cfg.Mode {
	case Specialized:
		switch g.States {
		case 2, 3, 4:
			k.w = g.States
		default:
			k.w = 0
		}
	case Generic:
		k.w = 0
	case LogSpace:
		k.w = -1
	}
	if g.Shared != nil {
		k.shared = g.Shared
		k.sharedT = g.Shared.T
	}
	return k
}

// States returns the belief width the kernel was built for.
func (k *Kernel) States() int { return k.s }

// Mode returns the mode the kernel was built with.
func (k *Kernel) Mode() Mode { return k.mode }

// matT returns the transposed matrix data of edge e.
func (k *Kernel) matT(e int32) []float32 {
	if k.sharedT != nil {
		return k.sharedT
	}
	return k.g.EdgeMats[e].T
}

// mat returns the row-major matrix of edge e.
func (k *Kernel) mat(e int32) *graph.JointMatrix {
	if k.shared != nil {
		return k.shared
	}
	return &k.g.EdgeMats[e]
}

// Begin starts a node combine: prior is the node's prior distribution and
// inDegree its in-edge count (the degree half of the underflow guard).
func (k *Kernel) Begin(sc *Scratch, prior []float32, inDegree int) {
	sc.prior = prior
	sc.rescales = 0
	if k.mode == LogSpace || inDegree >= k.logFallbackDegree {
		if k.mode != LogSpace {
			sc.Counters.LogFallbacks++
		}
		sc.log = true
		acc := sc.acc[:k.s]
		for j := range acc {
			acc[j] = 0
		}
		return
	}
	sc.log = false
	prod := sc.prod[:k.s]
	for j := range prod {
		prod[j] = 1
	}
}

// Accumulate folds in-edge e (with the given parent belief) into the
// combine — the fused gather: message and accumulation in one pass, with
// no materialized msg on the linear path.
func (k *Kernel) Accumulate(sc *Scratch, e int32, parent []float32) {
	if k.st != nil {
		k.accumulateCircular(sc, e, parent, false)
		return
	}
	if sc.log {
		s := k.s
		msg := sc.msg[:s]
		k.rawInto(msg, k.matT(e), parent)
		graph.Normalize(msg)
		acc := sc.acc[:s]
		for j := range acc {
			acc[j] += Logf(msg[j])
		}
		return
	}
	sc.Counters.FastPath++
	var m float32
	switch k.w {
	case 2:
		t := k.matT(e)
		p0, p1 := parent[0], parent[1]
		r0 := p0*t[0] + p1*t[1]
		r1 := p0*t[2] + p1*t[3]
		if r0 < LogEps {
			r0 = LogEps
		}
		if r1 < LogEps {
			r1 = LogEps
		}
		r0 *= sc.prod[0]
		r1 *= sc.prod[1]
		sc.prod[0], sc.prod[1] = r0, r1
		m = r0
		if r1 > m {
			m = r1
		}
	case 3:
		t := k.matT(e)
		p0, p1, p2 := parent[0], parent[1], parent[2]
		r0 := p0*t[0] + p1*t[1] + p2*t[2]
		r1 := p0*t[3] + p1*t[4] + p2*t[5]
		r2 := p0*t[6] + p1*t[7] + p2*t[8]
		if r0 < LogEps {
			r0 = LogEps
		}
		if r1 < LogEps {
			r1 = LogEps
		}
		if r2 < LogEps {
			r2 = LogEps
		}
		r0 *= sc.prod[0]
		r1 *= sc.prod[1]
		r2 *= sc.prod[2]
		sc.prod[0], sc.prod[1], sc.prod[2] = r0, r1, r2
		m = r0
		if r1 > m {
			m = r1
		}
		if r2 > m {
			m = r2
		}
	case 4:
		t := k.matT(e)
		p0, p1, p2, p3 := parent[0], parent[1], parent[2], parent[3]
		r0 := p0*t[0] + p1*t[1] + p2*t[2] + p3*t[3]
		r1 := p0*t[4] + p1*t[5] + p2*t[6] + p3*t[7]
		r2 := p0*t[8] + p1*t[9] + p2*t[10] + p3*t[11]
		r3 := p0*t[12] + p1*t[13] + p2*t[14] + p3*t[15]
		if r0 < LogEps {
			r0 = LogEps
		}
		if r1 < LogEps {
			r1 = LogEps
		}
		if r2 < LogEps {
			r2 = LogEps
		}
		if r3 < LogEps {
			r3 = LogEps
		}
		r0 *= sc.prod[0]
		r1 *= sc.prod[1]
		r2 *= sc.prod[2]
		r3 *= sc.prod[3]
		sc.prod[0], sc.prod[1], sc.prod[2], sc.prod[3] = r0, r1, r2, r3
		m = r0
		if r1 > m {
			m = r1
		}
		if r2 > m {
			m = r2
		}
		if r3 > m {
			m = r3
		}
	default:
		m = k.accumulateBlocked(sc, k.matT(e), parent)
	}
	// !(m >= floor) also routes NaN through the rescale path, where it
	// poisons the product and Finish degrades to uniform, matching
	// ExpNormalize's behavior on non-finite input.
	if !(m >= rescaleFloor) {
		k.rescale(sc, m)
	}
}

// accumulateBlocked is the generic-width linear fold: a blocked (4-wide)
// contiguous dot product per output entry over the transposed matrix,
// fused with the clamp, multiply and max scan.
func (k *Kernel) accumulateBlocked(sc *Scratch, t, parent []float32) float32 {
	s := k.s
	m := float32(math.Inf(-1))
	for j := 0; j < s; j++ {
		col := t[j*s : j*s+s]
		var r float32
		i := 0
		for ; i+4 <= s; i += 4 {
			r += parent[i]*col[i] + parent[i+1]*col[i+1] + parent[i+2]*col[i+2] + parent[i+3]*col[i+3]
		}
		for ; i < s; i++ {
			r += parent[i] * col[i]
		}
		if r < LogEps {
			r = LogEps
		}
		r *= sc.prod[j]
		sc.prod[j] = r
		if r > m {
			m = r
		}
	}
	return m
}

// rescale divides the running product by its maximum and converts the
// combine to log space once the magnitude guard trips.
func (k *Kernel) rescale(sc *Scratch, m float32) {
	s := k.s
	prod := sc.prod[:s]
	for j := range prod {
		prod[j] /= m
	}
	sc.Counters.Rescales++
	sc.rescales++
	if sc.rescales > k.maxRescales {
		// The node's products keep collapsing — the running-magnitude
		// guard sends the rest of this combine to log space. The scale
		// already divided out is a uniform shift in log space, which
		// ExpNormalize's max-subtraction cancels.
		sc.log = true
		sc.Counters.LogFallbacks++
		acc := sc.acc[:s]
		for j := range acc {
			acc[j] = Logf(prod[j])
		}
	}
}

// AccumulateMax folds in-edge e with max-product semantics:
// raw[j] = max_i parent[i]·M[i,j] instead of the sum.
func (k *Kernel) AccumulateMax(sc *Scratch, e int32, parent []float32) {
	if k.st != nil {
		k.accumulateCircular(sc, e, parent, true)
		return
	}
	s := k.s
	if sc.log {
		msg := sc.msg[:s]
		k.rawMaxInto(msg, k.matT(e), parent)
		graph.Normalize(msg)
		acc := sc.acc[:s]
		for j := range acc {
			acc[j] += Logf(msg[j])
		}
		return
	}
	sc.Counters.FastPath++
	t := k.matT(e)
	m := float32(math.Inf(-1))
	for j := 0; j < s; j++ {
		col := t[j*s : j*s+s]
		var best float32
		for i, w := range col {
			if v := parent[i] * w; v > best {
				best = v
			}
		}
		if best < LogEps {
			best = LogEps
		}
		best *= sc.prod[j]
		sc.prod[j] = best
		if best > m {
			m = best
		}
	}
	if !(m >= rescaleFloor) {
		k.rescale(sc, m)
	}
}

// AccumulateReverse folds out-edge e backward through its matrix (the ψ
// direction of the traditional algorithm): raw[j] = Σ_k M[j,k]·child[k],
// which walks rows of the row-major matrix — already contiguous, so this
// direction reads Data, not T.
func (k *Kernel) AccumulateReverse(sc *Scratch, e int32, child []float32) {
	s := k.s
	if sc.log {
		msg := sc.msg[:s]
		k.rawReverseInto(msg, k.mat(e).Data, child)
		graph.Normalize(msg)
		acc := sc.acc[:s]
		for j := range acc {
			acc[j] += Logf(msg[j])
		}
		return
	}
	sc.Counters.FastPath++
	d := k.mat(e).Data
	m := float32(math.Inf(-1))
	for j := 0; j < s; j++ {
		row := d[j*s : j*s+s]
		var r float32
		i := 0
		for ; i+4 <= s; i += 4 {
			r += row[i]*child[i] + row[i+1]*child[i+1] + row[i+2]*child[i+2] + row[i+3]*child[i+3]
		}
		for ; i < s; i++ {
			r += row[i] * child[i]
		}
		if r < LogEps {
			r = LogEps
		}
		r *= sc.prod[j]
		sc.prod[j] = r
		if r > m {
			m = r
		}
	}
	if !(m >= rescaleFloor) {
		k.rescale(sc, m)
	}
}

// Finish completes the combine into dst: prior-multiply and normalize. A
// zero or non-finite result degrades to uniform, exactly like ExpNormalize.
func (k *Kernel) Finish(sc *Scratch, dst []float32) {
	s := k.s
	if sc.log {
		ExpNormalize(dst, sc.prior, sc.acc[:s])
		return
	}
	prior := sc.prior
	var sum float32
	for j := 0; j < s; j++ {
		v := prior[j] * sc.prod[j]
		dst[j] = v
		sum += v
	}
	if !(sum > 0) || math.IsInf(float64(sum), 0) {
		u := 1 / float32(s)
		for j := 0; j < s; j++ {
			dst[j] = u
		}
		return
	}
	inv := 1 / sum
	for j := 0; j < s; j++ {
		dst[j] *= inv
	}
}

// NodeUpdate runs the whole combine for node v, reading parent beliefs
// from the flat array `from` (stride States — pass the engine's prev
// buffer for Jacobi sweeps or g.Beliefs for asynchronous schedules) and
// writing the new belief into dst. It returns the in-degree processed.
func (k *Kernel) NodeUpdate(sc *Scratch, dst []float32, v int32, from []float32) int {
	g := k.g
	s := k.s
	lo, hi := g.InOffsets[v], g.InOffsets[v+1]
	k.Begin(sc, g.Priors[int(v)*s:int(v)*s+s], int(hi-lo))
	for _, e := range g.InEdges[lo:hi] {
		src := int(g.EdgeSrc[e])
		k.Accumulate(sc, e, from[src*s:src*s+s])
	}
	k.Finish(sc, dst)
	if k.damping > 0 {
		k.damp(dst, from[int(v)*s:int(v)*s+s])
	}
	return int(hi - lo)
}

// NodeUpdateMax is NodeUpdate with max-product semantics.
func (k *Kernel) NodeUpdateMax(sc *Scratch, dst []float32, v int32, from []float32) int {
	g := k.g
	s := k.s
	lo, hi := g.InOffsets[v], g.InOffsets[v+1]
	k.Begin(sc, g.Priors[int(v)*s:int(v)*s+s], int(hi-lo))
	for _, e := range g.InEdges[lo:hi] {
		src := int(g.EdgeSrc[e])
		k.AccumulateMax(sc, e, from[src*s:src*s+s])
	}
	k.Finish(sc, dst)
	if k.damping > 0 {
		k.damp(dst, from[int(v)*s:int(v)*s+s])
	}
	return int(hi - lo)
}

// Message writes the normalized message along edge e given the parent
// belief — the materialized form the edge paradigm folds into destination
// accumulators. In LogSpace mode it is bit-for-bit the historical
// computeMessage. Under VariantCircular the message is computed from the
// α-corrected parent and published to the correction state (sc provides
// the correction buffers; it is untouched on the vanilla path).
func (k *Kernel) Message(sc *Scratch, msg []float32, e int32, parent []float32) {
	if k.st != nil {
		k.messageCircular(sc, msg, e, parent)
		return
	}
	k.rawInto(msg, k.matT(e), parent)
	graph.Normalize(msg)
}

// rawInto computes the unnormalized gather raw[j] = Σ_i parent[i]·t[j*s+i]
// under the kernel's dispatch class. The strict class (-1) reproduces the
// historical PropagateInto summation order bit-for-bit (per output entry,
// ascending source state, no blocking).
func (k *Kernel) rawInto(dst, t, parent []float32) {
	s := k.s
	switch k.w {
	case 2:
		p0, p1 := parent[0], parent[1]
		dst[0] = p0*t[0] + p1*t[1]
		dst[1] = p0*t[2] + p1*t[3]
	case 3:
		p0, p1, p2 := parent[0], parent[1], parent[2]
		dst[0] = p0*t[0] + p1*t[1] + p2*t[2]
		dst[1] = p0*t[3] + p1*t[4] + p2*t[5]
		dst[2] = p0*t[6] + p1*t[7] + p2*t[8]
	case 4:
		p0, p1, p2, p3 := parent[0], parent[1], parent[2], parent[3]
		dst[0] = p0*t[0] + p1*t[1] + p2*t[2] + p3*t[3]
		dst[1] = p0*t[4] + p1*t[5] + p2*t[6] + p3*t[7]
		dst[2] = p0*t[8] + p1*t[9] + p2*t[10] + p3*t[11]
		dst[3] = p0*t[12] + p1*t[13] + p2*t[14] + p3*t[15]
	case 0:
		for j := 0; j < s; j++ {
			col := t[j*s : j*s+s]
			var r float32
			i := 0
			for ; i+4 <= s; i += 4 {
				r += parent[i]*col[i] + parent[i+1]*col[i+1] + parent[i+2]*col[i+2] + parent[i+3]*col[i+3]
			}
			for ; i < s; i++ {
				r += parent[i] * col[i]
			}
			dst[j] = r
		}
	default: // strict sequential reference
		for j := 0; j < s; j++ {
			col := t[j*s : j*s+s]
			var r float32
			for i := 0; i < s; i++ {
				r += parent[i] * col[i]
			}
			dst[j] = r
		}
	}
}

// rawMaxInto computes raw[j] = max_i parent[i]·t[j*s+i].
func (k *Kernel) rawMaxInto(dst, t, parent []float32) {
	s := k.s
	for j := 0; j < s; j++ {
		col := t[j*s : j*s+s]
		var best float32
		for i, w := range col {
			if v := parent[i] * w; v > best {
				best = v
			}
		}
		dst[j] = best
	}
}

// rawReverseInto computes raw[j] = Σ_k d[j*s+k]·child[k] over the
// row-major matrix data (the backward ψ direction, already contiguous).
func (k *Kernel) rawReverseInto(dst, d, child []float32) {
	s := k.s
	if k.w < 0 {
		for j := 0; j < s; j++ {
			row := d[j*s : j*s+s]
			var r float32
			for i := 0; i < s; i++ {
				r += row[i] * child[i]
			}
			dst[j] = r
		}
		return
	}
	for j := 0; j < s; j++ {
		row := d[j*s : j*s+s]
		var r float32
		i := 0
		for ; i+4 <= s; i += 4 {
			r += row[i]*child[i] + row[i+1]*child[i+1] + row[i+2]*child[i+2] + row[i+3]*child[i+3]
		}
		for ; i < s; i++ {
			r += row[i] * child[i]
		}
		dst[j] = r
	}
}

// Logf is a float32 natural logarithm clamped at LogEps, shared by every
// engine so that log-domain accumulators agree bit-for-bit across
// implementations.
func Logf(x float32) float32 {
	if x < LogEps {
		x = LogEps
	}
	return float32(math.Log(float64(x)))
}

// ExpNormalize writes normalize(prior · exp(acc)) into dst using the
// max-subtraction trick; dst, prior and acc must share one length.
// Entirely zero rows degrade to uniform. It is the log-space combine stage
// shared by every engine.
func ExpNormalize(dst, prior, acc []float32) {
	maxv := float32(math.Inf(-1))
	for _, a := range acc {
		if a > maxv {
			maxv = a
		}
	}
	var sum float32
	for j := range dst {
		v := prior[j] * float32(math.Exp(float64(acc[j]-maxv)))
		dst[j] = v
		sum += v
	}
	if sum <= 0 || math.IsNaN(float64(sum)) || math.IsInf(float64(sum), 0) {
		u := float32(1) / float32(len(dst))
		for j := range dst {
			dst[j] = u
		}
		return
	}
	inv := 1 / sum
	for j := range dst {
		dst[j] *= inv
	}
}
