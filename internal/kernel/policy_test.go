package kernel_test

import (
	"testing"

	"credo/internal/bp"
	"credo/internal/graph"
	"credo/internal/kernel"
)

// maxBeliefLinf returns the largest per-entry belief difference between
// two runs of the same graph.
func maxBeliefLinf(a, b *graph.Graph) float64 {
	var worst float64
	for v := int32(0); v < int32(a.NumNodes); v++ {
		if d := maxDiff(a.Belief(v), b.Belief(v)); d > worst {
			worst = d
		}
	}
	return worst
}

// TestPowerLawHubMatchesLogOracle is the linear-vs-log policy check at
// power-law scale: a hub with 12,000 in-edges — past the degree of the
// hottest hubs in the paper's social benchmarks — run end-to-end through
// the per-node engine. The default degree guard (1<<16) keeps such hubs
// on the linear fast path, so the run must survive thousands of
// sub-underflow factors through max-rescaling alone and still match the
// historical log-space beliefs within 1e-4 L∞.
func TestPowerLawHubMatchesLogOracle(t *testing.T) {
	const hubDegree = 12000
	for _, states := range []int{2, 3} {
		g := buildStar(t, states, hubDegree, false, int64(states)*1009)

		oracle := g.Clone()
		bp.RunNode(oracle, bp.Options{Kernel: kernel.Config{Mode: kernel.LogSpace}})

		for _, mode := range []kernel.Mode{kernel.Specialized, kernel.Generic} {
			lin := g.Clone()
			res := bp.RunNode(lin, bp.Options{Kernel: kernel.Config{Mode: mode}})
			if d := maxBeliefLinf(lin, oracle); d > 1e-4 {
				t.Errorf("states=%d mode=%v: L∞ vs log oracle = %g, want ≤ 1e-4", states, mode, d)
			}
			if res.Ops.KernelFastPath == 0 {
				t.Errorf("states=%d mode=%v: hub left the linear fast path (FastPath = 0)", states, mode)
			}
			if res.Ops.RescaleOps == 0 {
				t.Errorf("states=%d mode=%v: a %d-degree hub should need rescales", states, mode, hubDegree)
			}
		}

		// The same hub at the kernel level. Under defaults the running
		// product spans thousands of decades, so the magnitude guard must
		// convert the combine to log space mid-fold — that is the guard
		// doing its job, not a failure of the linear path.
		var sc kernel.Scratch
		k := kernel.New(g, kernel.Config{Mode: kernel.Specialized})
		got := make([]float32, states)
		k.NodeUpdate(&sc, got, 0, g.Beliefs)
		if sc.Counters.LogFallbacks == 0 {
			t.Errorf("states=%d: a %d-degree hub should trip the magnitude guard under the default rescale budget",
				states, hubDegree)
		}

		// With the rescale budget effectively unbounded the whole fold
		// stays linear — and must still match the oracle.
		var scLin kernel.Scratch
		kLin := kernel.New(g, kernel.Config{Mode: kernel.Specialized, MaxRescales: 1 << 20})
		gotLin := make([]float32, states)
		kLin.NodeUpdate(&scLin, gotLin, 0, g.Beliefs)
		if scLin.Counters.LogFallbacks != 0 {
			t.Errorf("states=%d: LogFallbacks = %d, want 0 with an unbounded rescale budget",
				states, scLin.Counters.LogFallbacks)
		}
		if scLin.Counters.Rescales == 0 {
			t.Errorf("states=%d: fully-linear %d-degree fold should rescale", states, hubDegree)
		}
		var scO kernel.Scratch
		oracleK := kernel.New(g, kernel.Config{Mode: kernel.LogSpace})
		want := make([]float32, states)
		oracleK.NodeUpdate(&scO, want, 0, g.Beliefs)
		if d := maxDiff(gotLin, want); d > 1e-4 {
			t.Errorf("states=%d: fully-linear hub fold L∞ vs oracle = %g, want ≤ 1e-4", states, d)
		}
	}
}

// TestUnderflowStressFallsBackEndToEnd drives the degenerate
// deterministic-coupling stress through the full per-node engine with the
// magnitude guard tightened to a single rescale, forcing the mid-combine
// conversion to log space, and checks the engine still reproduces the
// log-space oracle's beliefs.
func TestUnderflowStressFallsBackEndToEnd(t *testing.T) {
	g := degenerateStar(t, 40)

	oracle := g.Clone()
	bp.RunNode(oracle, bp.Options{Kernel: kernel.Config{Mode: kernel.LogSpace}})

	cfg := kernel.Config{Mode: kernel.Specialized, MaxRescales: 1}
	lin := g.Clone()
	bp.RunNode(lin, bp.Options{Kernel: cfg})
	if d := maxBeliefLinf(lin, oracle); d > 1e-4 {
		t.Errorf("fallback run L∞ vs log oracle = %g, want ≤ 1e-4", d)
	}

	var sc kernel.Scratch
	k := kernel.New(g, cfg)
	got := make([]float32, g.States)
	k.NodeUpdate(&sc, got, 0, g.Beliefs)
	if sc.Counters.LogFallbacks == 0 {
		t.Fatal("underflow stress did not force the log-space fallback")
	}
}
