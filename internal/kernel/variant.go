package kernel

import (
	"fmt"
	"math"
	"sync/atomic"

	"credo/internal/graph"
)

// Variant names the message-update rule a run uses. The kernel implements
// all three; engines and the selector deal in this enum.
//
// The repo's message convention (bp package, Equation 2) computes a message
// from the FULL source belief — no division by the reverse message. On
// graphs with strong cyclic feedback that echo amplifies around loops and
// vanilla runs oscillate or diverge. The two robust variants counter it
// from opposite sides: damping slows every belief move, Circular BP
// (Bouttier/Jardri/Denève) removes an α-scaled share of the echo itself.
type Variant uint8

const (
	// VariantVanilla is the unmodified update rule — the bit-identical,
	// zero-allocation fast path every benchmark measures.
	VariantVanilla Variant = iota

	// VariantDamped blends each recomputed belief with the previous one:
	// b ← (1−d)·b_new + d·b_old. The classic stabilizer for synchronous
	// oscillation (bipartite flip-flopping under strong attractive
	// coupling).
	VariantDamped

	// VariantCircular applies Circular-BP loop correction: the message
	// along e=(u→v) is computed from the corrected source belief
	// b_u · m_{v→u}^(−α), cancelling an α share of the echo the reverse
	// edge fed into b_u. Requires per-edge correction state (the last
	// message sent on every edge) carried by the kernel.
	VariantCircular
)

// Variants lists every variant in a stable order for tables and sweeps.
func Variants() []Variant {
	return []Variant{VariantVanilla, VariantDamped, VariantCircular}
}

// String names the variant for flags, tables and test output.
func (v Variant) String() string {
	switch v {
	case VariantVanilla:
		return "vanilla"
	case VariantDamped:
		return "damped"
	case VariantCircular:
		return "circular"
	default:
		return "unknown"
	}
}

// ParseVariant parses a -variant flag value.
func ParseVariant(s string) (Variant, error) {
	switch s {
	case "vanilla", "":
		return VariantVanilla, nil
	case "damped":
		return VariantDamped, nil
	case "circular":
		return VariantCircular, nil
	default:
		return VariantVanilla, fmt.Errorf("kernel: unknown variant %q (want vanilla, damped or circular)", s)
	}
}

// Default strengths for the robust variants, calibrated on the enginetest
// hard-graph corpus: every named hard config that diverges under vanilla
// converges under both variants at these values (locked by tests there).
const (
	// DefaultDamping is the blend weight VariantDamped uses when Options
	// leave Damping unset.
	DefaultDamping = 0.5

	// DefaultAlpha is the loop-correction strength VariantCircular uses
	// when Config.Alpha is unset. α=1 cancels the full echo (the standard
	// BP message rule); fractional α interpolates toward vanilla.
	DefaultAlpha = 1.0
)

// edgeState is the per-run Circular-BP correction state: the last message
// sent along every directed edge plus the reverse-edge index. Message
// entries are float32 bit patterns accessed atomically so concurrent
// engines (poolbp, relaxbp, ompbp) can read a reverse message another
// worker is writing without a data race; each entry is independently
// consistent, which is all the α-scaled correction needs.
type edgeState struct {
	alpha float32
	rev   []int32  // rev[e] = edge id of the paired reverse edge, or -1
	msg   []uint32 // last message per edge, len NumEdges·States, atomic bits
}

// newEdgeState builds the correction state for one run over g: the
// reverse-edge index and per-edge messages initialized uniform (a uniform
// reverse message raises every entry equally, so the first sweep's
// corrected messages equal vanilla's).
func newEdgeState(g *graph.Graph, states int, alpha float32) *edgeState {
	st := &edgeState{
		alpha: alpha,
		rev:   buildReverseIndex(g),
		msg:   make([]uint32, g.NumEdges*states),
	}
	u := math.Float32bits(1 / float32(states))
	for i := range st.msg {
		st.msg[i] = u
	}
	return st
}

// buildReverseIndex pairs each directed edge (u,v) with a reverse edge
// (v,u), multigraph-aware: the k-th parallel (u,v) edge pairs with the k-th
// parallel (v,u) edge. Edges without a reverse partner map to -1 and the
// circular correction is a no-op for them.
func buildReverseIndex(g *graph.Graph) []int32 {
	n := g.NumEdges
	rev := make([]int32, n)
	byPair := make(map[uint64][]int32, n)
	ord := make([]int32, n)
	for e := 0; e < n; e++ {
		key := uint64(uint32(g.EdgeSrc[e]))<<32 | uint64(uint32(g.EdgeDst[e]))
		ord[e] = int32(len(byPair[key]))
		byPair[key] = append(byPair[key], int32(e))
	}
	for e := 0; e < n; e++ {
		rkey := uint64(uint32(g.EdgeDst[e]))<<32 | uint64(uint32(g.EdgeSrc[e]))
		rlist := byPair[rkey]
		if int(ord[e]) < len(rlist) {
			rev[e] = rlist[ord[e]]
		} else {
			rev[e] = -1
		}
	}
	return rev
}

// load reads edge e's last message into dst.
func (st *edgeState) load(dst []float32, e int32, s int) {
	base := int(e) * s
	for j := 0; j < s; j++ {
		dst[j] = math.Float32frombits(atomic.LoadUint32(&st.msg[base+j]))
	}
}

// store publishes edge e's new message.
func (st *edgeState) store(src []float32, e int32, s int) {
	base := int(e) * s
	for j := 0; j < s; j++ {
		atomic.StoreUint32(&st.msg[base+j], math.Float32bits(src[j]))
	}
}

// circularParent returns the α-corrected source belief for edge e: the
// parent belief with the reverse message's α-share divided out,
// renormalized by max-shift in log space so extreme corrections cannot
// overflow float32. Edges without a reverse partner return the parent
// unchanged. The result lives in sc.corr.
func (k *Kernel) circularParent(sc *Scratch, e int32, parent []float32) []float32 {
	r := k.st.rev[e]
	if r < 0 {
		return parent
	}
	s := k.s
	rm := sc.rmsg[:s]
	k.st.load(rm, r, s)
	cp := sc.corr[:s]
	alpha := float64(k.st.alpha)
	maxl := math.Inf(-1)
	for i := 0; i < s; i++ {
		l := float64(Logf(parent[i])) - alpha*float64(Logf(rm[i]))
		cp[i] = float32(l)
		if l > maxl {
			maxl = l
		}
	}
	for i := 0; i < s; i++ {
		cp[i] = float32(math.Exp(float64(cp[i]) - maxl))
	}
	return cp
}

// accumulateCircular is the Circular-BP fold of in-edge e: materialize the
// corrected, normalized message, publish it to the correction state, then
// fold it into whichever accumulator (linear or log) the combine is using.
func (k *Kernel) accumulateCircular(sc *Scratch, e int32, parent []float32, maxProduct bool) {
	s := k.s
	cp := k.circularParent(sc, e, parent)
	msg := sc.msg[:s]
	if maxProduct {
		k.rawMaxInto(msg, k.matT(e), cp)
	} else {
		k.rawInto(msg, k.matT(e), cp)
	}
	graph.Normalize(msg)
	k.st.store(msg, e, s)
	if sc.log {
		acc := sc.acc[:s]
		for j := range acc {
			acc[j] += Logf(msg[j])
		}
		return
	}
	sc.Counters.FastPath++
	m := float32(math.Inf(-1))
	for j := 0; j < s; j++ {
		v := msg[j]
		if v < LogEps {
			v = LogEps
		}
		v *= sc.prod[j]
		sc.prod[j] = v
		if v > m {
			m = v
		}
	}
	if !(m >= rescaleFloor) {
		k.rescale(sc, m)
	}
}

// messageCircular is the edge-paradigm form: the corrected normalized
// message is written to dst and published to the correction state.
func (k *Kernel) messageCircular(sc *Scratch, dst []float32, e int32, parent []float32) {
	cp := k.circularParent(sc, e, parent)
	k.rawInto(dst, k.matT(e), cp)
	graph.Normalize(dst)
	k.st.store(dst, e, k.s)
}

// damp blends dst with the previous belief old in place:
// dst ← (1−d)·dst + d·old. Both are distributions, so no renormalization.
func (k *Kernel) damp(dst, old []float32) {
	d := k.damping
	w := 1 - d
	for j := range dst {
		dst[j] = w*dst[j] + d*old[j]
	}
}
