package kernel_test

import (
	"fmt"
	"testing"

	"credo/internal/bp"
	"credo/internal/gen"
	"credo/internal/graph"
	"credo/internal/kernel"
)

// benchModes pairs every kernel mode with its label. LogSpace reproduces
// the pre-kernel scalar path bit-for-bit, so the specialized/logspace
// ratio IS the measured speedup of this layer over the historical code.
var benchModes = []struct {
	name string
	mode kernel.Mode
}{
	{"specialized", kernel.Specialized},
	{"generic", kernel.Generic},
	{"logspace", kernel.LogSpace},
}

func benchGraph(b *testing.B, states int, shared bool) *graph.Graph {
	b.Helper()
	g, err := gen.Synthetic(2000, 8000, gen.Config{Seed: 42, States: states, Shared: shared})
	if err != nil {
		b.Fatalf("Synthetic: %v", err)
	}
	return g
}

// BenchmarkKernels is the kernel layer's measured-wall-clock suite:
// micro-benchmarks of the per-node fold at each specialized width, and
// end-to-end sweeps of the sequential per-node engine per kernel mode.
func BenchmarkKernels(b *testing.B) {
	b.Run("micro", func(b *testing.B) {
		for _, states := range []int{2, 3, 4, 8} {
			for _, m := range benchModes {
				b.Run(fmt.Sprintf("nodeupdate/s%d/%s", states, m.name), func(b *testing.B) {
					g := buildStar(b, states, 16, false, int64(states))
					k := kernel.New(g, kernel.Config{Mode: m.mode})
					var sc kernel.Scratch
					dst := make([]float32, states)
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						k.NodeUpdate(&sc, dst, 0, g.Beliefs)
					}
				})
			}
		}
	})
	b.Run("endtoend", func(b *testing.B) {
		for _, states := range []int{2, 3, 4} {
			for _, m := range benchModes {
				b.Run(fmt.Sprintf("runnode/s%d/%s", states, m.name), func(b *testing.B) {
					g := benchGraph(b, states, states == 2)
					opts := bp.Options{MaxIterations: 10, Kernel: kernel.Config{Mode: m.mode}}
					bp.RunNode(g, opts) // prime the scratch pool
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						b.StopTimer()
						g.ResetBeliefs()
						b.StartTimer()
						bp.RunNode(g, opts)
					}
				})
			}
		}
	})
}
