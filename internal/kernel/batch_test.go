package kernel_test

import (
	"math"
	"math/rand"
	"testing"

	"credo/internal/gen"
	"credo/internal/graph"
	"credo/internal/kernel"
)

// stageBatch replicates g into a K-lane BatchState and then randomizes
// every lane's beliefs independently, returning the state plus one flat
// per-lane belief array per lane — the inputs a solo combine of that lane
// would see.
func stageBatch(t testing.TB, g *graph.Graph, k int, seed int64) (*graph.BatchState, [][]float32) {
	t.Helper()
	bs, err := graph.NewBatchState(g, k)
	if err != nil {
		t.Fatalf("NewBatchState: %v", err)
	}
	rng := rand.New(rand.NewSource(seed))
	flat := make([][]float32, k)
	dist := make([]float32, g.States)
	for l := 0; l < k; l++ {
		flat[l] = make([]float32, len(g.Beliefs))
		copy(flat[l], g.Beliefs)
		for v := 0; v < g.NumNodes; v++ {
			if g.Observed[v] {
				copy(flat[l][v*g.States:(v+1)*g.States], g.Beliefs[v*g.States:(v+1)*g.States])
				continue
			}
			gen.RandomDistribution(rng, dist)
			copy(flat[l][v*g.States:(v+1)*g.States], dist)
			bs.SetLaneNodeBelief(l, int32(v), dist)
		}
	}
	return bs, flat
}

// TestNodeUpdateBatchMatchesSolo is the kernel-level differential: one
// K-way SoA combine must produce, in every lane, bit-for-bit the belief
// the solo kernel computes from that lane's inputs — across widths,
// shared/per-edge matrices, numerical modes, the rescale and log-fallback
// guards, and the damped/circular variants. Lanes carry different parent
// beliefs, so any cross-lane contamination (a stray stride, a shared
// guard flag, a shared circular message) breaks the bitwise match.
func TestNodeUpdateBatchMatchesSolo(t *testing.T) {
	cases := []struct {
		name   string
		build  func(t testing.TB) *graph.Graph
		cfg    kernel.Config
		lanes  int
		counts func(t *testing.T, sc *kernel.BatchScratch)
	}{
		{name: "w2/shared", build: func(t testing.TB) *graph.Graph { return buildStar(t, 2, 6, true, 101) }, lanes: 8},
		{name: "w2/peredge", build: func(t testing.TB) *graph.Graph { return buildStar(t, 2, 6, false, 102) }, lanes: 8},
		{name: "w3", build: func(t testing.TB) *graph.Graph { return buildStar(t, 3, 6, false, 103) }, lanes: 8},
		{name: "w4", build: func(t testing.TB) *graph.Graph { return buildStar(t, 4, 6, false, 104) }, lanes: 8},
		{name: "generic5", build: func(t testing.TB) *graph.Graph { return buildStar(t, 5, 6, false, 105) }, lanes: 8},
		{name: "generic9/k32", build: func(t testing.TB) *graph.Graph { return buildStar(t, 9, 4, false, 106) }, lanes: 32},
		{name: "logspace", build: func(t testing.TB) *graph.Graph { return buildStar(t, 3, 6, false, 107) },
			cfg: kernel.Config{Mode: kernel.LogSpace}, lanes: 8},
		{name: "degree-guard", build: func(t testing.TB) *graph.Graph { return buildStar(t, 3, 8, false, 108) },
			cfg: kernel.Config{LogFallbackDegree: 4}, lanes: 8},
		{name: "rescale", build: func(t testing.TB) *graph.Graph { return degenerateStar(t, 20) }, lanes: 8,
			counts: func(t *testing.T, sc *kernel.BatchScratch) {
				if sc.Counters.Rescales == 0 {
					t.Error("degenerate star did not trigger any per-lane rescale")
				}
			}},
		{name: "magnitude-guard", build: func(t testing.TB) *graph.Graph { return degenerateStar(t, 20) },
			cfg: kernel.Config{MaxRescales: 2}, lanes: 8,
			counts: func(t *testing.T, sc *kernel.BatchScratch) {
				if sc.Counters.LogFallbacks == 0 {
					t.Error("magnitude guard did not convert any lane to log space")
				}
			}},
		{name: "damped", build: func(t testing.TB) *graph.Graph { return buildStar(t, 3, 6, false, 109) },
			cfg: kernel.Config{Damping: 0.5}, lanes: 8},
		{name: "circular", build: func(t testing.TB) *graph.Graph { return buildStar(t, 3, 6, false, 110) },
			cfg: kernel.Config{Alpha: 1}, lanes: 8},
		{name: "circular/w2", build: func(t testing.TB) *graph.Graph { return buildStar(t, 2, 6, true, 111) },
			cfg: kernel.Config{Alpha: 0.7}, lanes: 8},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			g := c.build(t)
			s := g.States
			bs, flat := stageBatch(t, g, c.lanes, 555)
			active := make([]bool, c.lanes)
			for l := range active {
				active[l] = true
			}

			bk := kernel.NewBatch(g, c.cfg, c.lanes)
			var bsc kernel.BatchScratch
			dst := make([]float32, len(bs.Beliefs))
			deg, wrote := bk.NodeUpdateBatch(&bsc, dst, 0, bs.Beliefs, bs.Priors, bs.Observed, active)
			if wrote != c.lanes {
				t.Fatalf("wrote %d lanes, want %d", wrote, c.lanes)
			}
			if deg != int(g.InOffsets[1]-g.InOffsets[0]) {
				t.Fatalf("deg = %d, want %d", deg, g.InOffsets[1]-g.InOffsets[0])
			}

			got := make([]float32, s)
			want := make([]float32, s)
			for l := 0; l < c.lanes; l++ {
				// A fresh solo kernel per lane: the circular variant keeps
				// per-edge message state, which the batch keeps per lane.
				k := kernel.New(g, c.cfg)
				var sc kernel.Scratch
				k.NodeUpdate(&sc, want, 0, flat[l])
				for j := 0; j < s; j++ {
					got[j] = dst[j*c.lanes+l]
				}
				for j := 0; j < s; j++ {
					if math.Float32bits(got[j]) != math.Float32bits(want[j]) {
						t.Fatalf("lane %d state %d: %g, solo %g (not bitwise)", l, j, got[j], want[j])
					}
				}
			}
			if c.counts != nil {
				c.counts(t, &bsc)
			}
		})
	}
}

// TestNodeUpdateBatchMasks pins the write-mask contract: frozen lanes and
// per-lane-clamped nodes keep their belief entries untouched, and a node
// with no writable lane is skipped entirely.
func TestNodeUpdateBatchMasks(t *testing.T) {
	g := buildStar(t, 3, 5, false, 200)
	const k = 4
	bs, _ := stageBatch(t, g, k, 77)
	// Lane 1 is frozen; lane 2 clamps the hub itself.
	active := []bool{true, false, true, true}
	if err := bs.Observe(2, 0, 1); err != nil {
		t.Fatalf("Observe: %v", err)
	}

	bk := kernel.NewBatch(g, kernel.Config{}, k)
	var sc kernel.BatchScratch
	dst := make([]float32, len(bs.Beliefs))
	const sentinel = float32(-42)
	for i := range dst {
		dst[i] = sentinel
	}
	_, wrote := bk.NodeUpdateBatch(&sc, dst, 0, bs.Beliefs, bs.Priors, bs.Observed, active)
	if wrote != 2 {
		t.Fatalf("wrote = %d, want 2 (lane 1 frozen, lane 2 clamped)", wrote)
	}
	for j := 0; j < g.States; j++ {
		if dst[j*k+1] != sentinel {
			t.Errorf("frozen lane 1 state %d written: %g", j, dst[j*k+1])
		}
		if dst[j*k+2] != sentinel {
			t.Errorf("clamped lane 2 state %d written: %g", j, dst[j*k+2])
		}
		if dst[j*k+0] == sentinel || dst[j*k+3] == sentinel {
			t.Errorf("live lane state %d not written", j)
		}
	}

	// All lanes masked: the node must be skipped without touching dst.
	for i := range dst {
		dst[i] = sentinel
	}
	deg, wrote := bk.NodeUpdateBatch(&sc, dst, 0, bs.Beliefs, bs.Priors, bs.Observed, []bool{false, false, false, false})
	if deg != 0 || wrote != 0 {
		t.Fatalf("all-masked node: deg=%d wrote=%d, want 0,0", deg, wrote)
	}
	for i := range dst {
		if dst[i] != sentinel {
			t.Fatalf("all-masked node wrote dst[%d]", i)
		}
	}
}

// TestBatchScratchReuse runs many K-way combines through one scratch —
// including mode flips between log-heavy and linear graphs — and checks
// results never drift, so pooled scratches cannot leak lane state.
func TestBatchScratchReuse(t *testing.T) {
	g := buildStar(t, 4, 5, true, 300)
	stress := degenerateStar(t, 20)
	const k = 8
	bs, _ := stageBatch(t, g, k, 88)
	sbs, _ := stageBatch(t, stress, k, 89)
	active := make([]bool, k)
	for l := range active {
		active[l] = true
	}
	bk := kernel.NewBatch(g, kernel.Config{}, k)
	sk := kernel.NewBatch(stress, kernel.Config{MaxRescales: 2}, k)
	var sc kernel.BatchScratch
	first := make([]float32, len(bs.Beliefs))
	bk.NodeUpdateBatch(&sc, first, 0, bs.Beliefs, bs.Priors, bs.Observed, active)
	scratch := make([]float32, len(sbs.Beliefs))
	again := make([]float32, len(bs.Beliefs))
	for i := 0; i < 5; i++ {
		// Interleave a log-converting combine to dirty the scratch.
		sk.NodeUpdateBatch(&sc, scratch, 0, sbs.Beliefs, sbs.Priors, sbs.Observed, active)
		bk.NodeUpdateBatch(&sc, again, 0, bs.Beliefs, bs.Priors, bs.Observed, active)
		for j := range again {
			if math.Float32bits(again[j]) != math.Float32bits(first[j]) {
				t.Fatalf("round %d: combine drifted at %d: %g != %g", i, j, again[j], first[j])
			}
		}
	}
}

// TestBatchKernelLanes exercises the lane-count accessor.
func TestBatchKernelLanes(t *testing.T) {
	g := buildStar(t, 2, 2, true, 1)
	for _, k := range []int{1, 8, 32} {
		bk := kernel.NewBatch(g, kernel.Config{}, k)
		if bk.Lanes() != k {
			t.Errorf("Lanes() = %d, want %d", bk.Lanes(), k)
		}
	}
}
