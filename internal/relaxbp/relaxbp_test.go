package relaxbp

import (
	"testing"

	"credo/internal/bp"
	"credo/internal/gen"
	"credo/internal/graph"
)

// fixpointTol matches the residual-vs-sweep precedent in internal/bp:
// independently scheduled runs converging to the 0.001 element threshold
// agree to well under 2e-2 per node when the fixpoint is unique.
const fixpointTol = 2e-2

func maxBeliefDiff(a, b *graph.Graph) float32 {
	var worst float32
	for v := int32(0); v < int32(a.NumNodes); v++ {
		if d := graph.L1Diff(a.Belief(v), b.Belief(v)); d > worst {
			worst = d
		}
	}
	return worst
}

// checkAccounting asserts the queue conservation identity of a converged
// run: every push was eventually applied, dropped as stale, or wasted —
// no item lost, and nothing both stale and applied.
func checkAccounting(t *testing.T, res bp.Result) {
	t.Helper()
	total := res.Ops.NodesProcessed + res.Ops.StaleDrops + res.Ops.WastedUpdates
	if res.Ops.QueuePushes != total {
		t.Errorf("accounting identity broken: %d pushes != %d applied + %d stale + %d wasted",
			res.Ops.QueuePushes, res.Ops.NodesProcessed, res.Ops.StaleDrops, res.Ops.WastedUpdates)
	}
}

// TestFixpointMatchesOracle: the relaxed engine must land on the
// sequential sweep oracle's fixpoint for every team size, and each
// converged run must satisfy the conservation identity.
func TestFixpointMatchesOracle(t *testing.T) {
	graphs := []struct {
		name string
		mk   func() (*graph.Graph, error)
	}{
		{"synthetic-200x800-s2", func() (*graph.Graph, error) {
			return gen.Synthetic(200, 800, gen.Config{Seed: 33, States: 2, Shared: true})
		}},
		{"synthetic-400x1600-s3", func() (*graph.Graph, error) {
			return gen.Synthetic(400, 1600, gen.Config{Seed: 33, States: 3, Shared: true, Keep: 0.4})
		}},
		{"powerlaw-1000x4000-s2", func() (*graph.Graph, error) {
			return gen.PowerLaw(1000, 4000, gen.Config{Seed: 5, States: 2, Shared: true, Keep: 0.6})
		}},
	}
	for _, gc := range graphs {
		g0, err := gc.mk()
		if err != nil {
			t.Fatal(err)
		}
		oracle := g0.Clone()
		ores := bp.RunNode(oracle, bp.Options{})
		if !ores.Converged {
			t.Fatalf("%s: oracle did not converge", gc.name)
		}
		for _, workers := range []int{1, 4, 16} {
			g := g0.Clone()
			res := Run(g, Options{Workers: workers})
			if !res.Converged {
				t.Errorf("%s workers=%d: did not converge (final delta %g)", gc.name, workers, res.FinalDelta)
				continue
			}
			if d := maxBeliefDiff(oracle, g); d > fixpointTol {
				t.Errorf("%s workers=%d: diverges from oracle by %g", gc.name, workers, d)
			}
			if res.FinalDelta > bp.DefaultThreshold {
				t.Errorf("%s workers=%d: converged with final delta %g above the threshold", gc.name, workers, res.FinalDelta)
			}
			checkAccounting(t, res)
			if res.Ops.NodesProcessed == 0 || res.Ops.EdgesProcessed == 0 {
				t.Errorf("%s workers=%d: no work recorded (%+v)", gc.name, workers, res.Ops)
			}
		}
	}
}

// TestFewerUpdatesThanSweeps locks the point of residual scheduling: on a
// loopy graph the relaxed engine applies several times fewer belief
// updates than the synchronous sweep oracle needs.
func TestFewerUpdatesThanSweeps(t *testing.T) {
	g0, err := gen.Synthetic(400, 1600, gen.Config{Seed: 33, States: 3, Shared: true, Keep: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	sweep := bp.RunNode(g0.Clone(), bp.Options{})
	relax := Run(g0.Clone(), Options{Workers: 4})
	if !sweep.Converged || !relax.Converged {
		t.Fatalf("convergence: sweep %v relax %v", sweep.Converged, relax.Converged)
	}
	if relax.Ops.NodesProcessed*2 > sweep.Ops.NodesProcessed {
		t.Errorf("relax applied %d updates, sweeps %d — want at least 2x fewer",
			relax.Ops.NodesProcessed, sweep.Ops.NodesProcessed)
	}
}

// TestSeededDeterminism: Workers=1 with a fixed seed is fully
// deterministic — identical applied-update sequences and bitwise
// identical beliefs across runs.
func TestSeededDeterminism(t *testing.T) {
	mk := func() *graph.Graph {
		g, err := gen.Synthetic(200, 800, gen.Config{Seed: 33, States: 2, Shared: true})
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	var t1, t2 []int32
	g1 := mk()
	Run(g1, Options{Workers: 1, Seed: 9, Trace: &t1})
	g2 := mk()
	Run(g2, Options{Workers: 1, Seed: 9, Trace: &t2})
	if len(t1) == 0 {
		t.Fatal("no updates traced")
	}
	if len(t1) != len(t2) {
		t.Fatalf("traces differ in length: %d vs %d", len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("traces diverge at update %d: node %d vs %d", i, t1[i], t2[i])
		}
	}
	for i := range g1.Beliefs {
		if g1.Beliefs[i] != g2.Beliefs[i] {
			t.Fatalf("beliefs not bitwise identical at %d", i)
		}
	}
	// A different seed samples shards differently; the update order is
	// free to change but the fixpoint is not.
	var t3 []int32
	g3 := mk()
	Run(g3, Options{Workers: 1, Seed: 77, Trace: &t3})
	if d := maxBeliefDiff(g1, g3); d > fixpointTol {
		t.Errorf("seeds 9 and 77 reach fixpoints %g apart", d)
	}
}

// TestSeededDeterminismDamped extends the seeded-determinism contract to
// damped mode: the blend is applied under the writing spinlock as a pure
// function of the live belief, so single-worker seeded runs must stay
// bitwise repeatable with damping on, and the damped fixpoint must stay
// within tolerance of the vanilla one on an easy graph.
func TestSeededDeterminismDamped(t *testing.T) {
	mk := func() *graph.Graph {
		g, err := gen.Synthetic(200, 800, gen.Config{Seed: 33, States: 2, Shared: true})
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	opts := Options{Workers: 1, Seed: 9, Options: bp.Options{Damping: 0.5}}
	g1 := mk()
	res1 := Run(g1, opts)
	g2 := mk()
	Run(g2, opts)
	if !res1.Converged {
		t.Fatal("damped seeded run did not converge")
	}
	for i := range g1.Beliefs {
		if g1.Beliefs[i] != g2.Beliefs[i] {
			t.Fatalf("damped beliefs not bitwise identical at %d", i)
		}
	}
	g3 := mk()
	Run(g3, Options{Workers: 1, Seed: 9})
	if d := maxBeliefDiff(g1, g3); d > fixpointTol {
		t.Errorf("damped and vanilla fixpoints %g apart", d)
	}
}

// TestTraceOnlyForSingleWorker: the deterministic trace hook must stay
// silent on nondeterministic (multi-worker) runs.
func TestTraceOnlyForSingleWorker(t *testing.T) {
	g, err := gen.Synthetic(100, 400, gen.Config{Seed: 3, States: 2, Shared: true})
	if err != nil {
		t.Fatal(err)
	}
	var trace []int32
	Run(g, Options{Workers: 4, Trace: &trace})
	if len(trace) != 0 {
		t.Errorf("trace recorded %d entries on a 4-worker run", len(trace))
	}
}

// TestObservedNodesUntouched: clamped evidence must never be scheduled or
// overwritten.
func TestObservedNodesUntouched(t *testing.T) {
	g, err := gen.Synthetic(100, 400, gen.Config{Seed: 3, States: 2, Shared: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Observe(7, 1); err != nil {
		t.Fatal(err)
	}
	want := append([]float32(nil), g.Belief(7)...)
	var trace []int32
	Run(g, Options{Workers: 1, Trace: &trace})
	for j, v := range g.Belief(7) {
		if v != want[j] {
			t.Fatalf("observed belief changed: %v -> %v", want, g.Belief(7))
		}
	}
	for _, v := range trace {
		if v == 7 {
			t.Fatal("observed node 7 received an update")
		}
	}
}

// TestIterationCap: a hard iteration budget must stop the engine and
// report non-convergence instead of spinning.
func TestIterationCap(t *testing.T) {
	g, err := gen.Synthetic(200, 1600, gen.Config{Seed: 4, States: 3})
	if err != nil {
		t.Fatal(err)
	}
	res := Run(g, Options{Workers: 4, Options: bp.Options{MaxIterations: 1}})
	if res.Converged {
		t.Error("run reported convergence under a 1-sweep-equivalent budget")
	}
	cap := int64(1) * int64(g.NumNodes)
	if res.Ops.NodesProcessed > cap+16 {
		t.Errorf("applied %d updates, cap was %d", res.Ops.NodesProcessed, cap)
	}
	if err := g.Validate(); err != nil {
		t.Errorf("beliefs invalid after capped run: %v", err)
	}
}

// TestRaceStress is the -race configuration's engine hammer: a large team
// against a tiny graph maximizes queue contention and overlapping writer
// locks; the run must stay race-free and still land on the oracle.
func TestRaceStress(t *testing.T) {
	g0, err := gen.Synthetic(50, 200, gen.Config{Seed: 11, States: 2, Shared: true, Keep: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	oracle := g0.Clone()
	bp.RunNode(oracle, bp.Options{})
	for round := 0; round < 5; round++ {
		g := g0.Clone()
		res := Run(g, Options{Workers: 16, Seed: int64(round + 1)})
		if !res.Converged {
			t.Fatalf("round %d: did not converge", round)
		}
		if d := maxBeliefDiff(oracle, g); d > fixpointTol {
			t.Fatalf("round %d: diverges from oracle by %g", round, d)
		}
		checkAccounting(t, res)
	}
}
