// Package relaxbp is the relaxed-priority residual BP engine: the
// scheduling discipline of the sequential residual engine
// (internal/bp.RunResidual, after Gonzalez et al.'s Residual Splash)
// made concurrent the way the scheduling literature prescribes.
// Van der Merwe, Joseph & Pingali ("Message Scheduling for Performant,
// Many-Core Belief Propagation") show residual ordering needs far fewer
// message updates than synchronous sweeps; Aksenov, Alistarh & Korhonen
// ("Relaxed Scheduling for Scalable Belief Propagation") show an exact
// concurrent priority queue serializes those updates, and that a relaxed
// MultiQueue — many sequential heaps, pop from the better of two sampled
// tops — keeps nearly the same update count while scaling past the
// bottleneck.
//
// The engine combines the repo's two prior pieces:
//
//   - the persistent worker team of internal/poolbp (spawned once per
//     run, no per-region fork/join), and
//   - the residual discipline of internal/bp's sequential engine.
//
// Work lives in a sharded MultiQueue of c·P sequential heaps. Each
// worker samples two shards and pops from the one with the larger top
// residual. Instead of decrease-key — which needs a global index and
// reintroduces the serialization the MultiQueue removed — every node
// carries an epoch counter: a push bumps the epoch, and a popped entry
// whose recorded epoch is no longer current is dropped as stale
// (Ops.StaleDrops). A popped current entry recomputes its node's true
// residual against the live beliefs; if that has already fallen below
// the threshold the pop was wasted work (Ops.WastedUpdates), the price
// of ordering by estimate rather than recomputing every successor's
// residual eagerly as the sequential engine does.
//
// Beliefs are shared mutably across workers, so every element is read
// and written through atomic float32 bits, and a per-node spinlock
// serializes writers so a finished run always leaves each node holding
// one consistent normalized candidate. Readers deliberately do not take
// the lock: a torn read mixes two normalized candidates and only
// perturbs a residual estimate, which the relaxed model already
// tolerates — the update that acted on it is recomputed or superseded.
//
// Scheduling is nondeterministic for Workers > 1 (beliefs match the
// sequential oracle within the convergence tolerance, not bitwise); with
// Workers = 1 and a fixed Seed the entire run is deterministic.
package relaxbp

import (
	"math"
	"math/rand"
	"runtime"
	"sync/atomic"

	"credo/internal/bp"
	"credo/internal/graph"
	"credo/internal/kernel"
	"credo/internal/poolbp"
	"credo/internal/telemetry"
)

// engineName is how this engine identifies itself in telemetry events.
const engineName = "relax"

// DefaultQueueFactor is c in the MultiQueue's c·P shard count. Two is
// the standard choice: enough slack to keep sampled shards distinct,
// little enough that the popped residual stays near the true maximum.
const DefaultQueueFactor = 2

// maxResidual is the largest possible L1 distance between two
// distributions — the priority that guarantees a node's first pop.
const maxResidual = float32(2)

// Options configures a relaxed residual run.
type Options struct {
	bp.Options

	// Workers is the size of the persistent team. Zero means
	// runtime.NumCPU().
	Workers int

	// QueueFactor scales the MultiQueue: QueueFactor·Workers shards.
	// Zero means DefaultQueueFactor.
	QueueFactor int

	// Seed drives the shard-sampling RNGs. Runs with Workers = 1 and
	// equal seeds apply identical update sequences. Zero means 1.
	Seed int64

	// Trace, when non-nil and Workers == 1, receives the node id of
	// every applied update in order — the hook the seeded-determinism
	// tests record sequences through. Ignored for Workers > 1.
	Trace *[]int32
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.NumCPU()
	}
	if o.QueueFactor <= 0 {
		o.QueueFactor = DefaultQueueFactor
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Threshold == 0 {
		o.Threshold = bp.DefaultThreshold
	}
	if o.MaxIterations == 0 {
		o.MaxIterations = bp.DefaultMaxIterations
	}
	if o.QueueThreshold == 0 {
		o.QueueThreshold = o.Threshold
	}
	o.Options = o.Options.ResolveVariant()
	return o
}

// Run executes relaxed-priority residual BP on the persistent worker
// team. Result.Iterations reports applied updates divided by the node
// count (sweep-equivalents, rounded up) so reports stay comparable with
// the sweep engines, exactly like the sequential residual engine.
func Run(g *graph.Graph, opts Options) bp.Result {
	return RunFrom(g, opts, nil)
}

// RunFrom executes relaxed residual BP resuming from the graph's current
// beliefs: only the given seed nodes enter the initial queue population
// (at the maximum residual, so their first pop computes the true one),
// and the relaxed schedule spreads from there exactly as in a cold run.
// It is the warm-start entry point of the serving layer — see
// bp.RunResidualFrom for the discipline and its guarantees.
//
// A nil seeds slice means every node — identical to Run. An empty
// non-nil slice is a valid warm start with no perturbation: the workers
// find an empty queue and the run returns converged with zero updates.
// Out-of-range, observed and input-free seed nodes are skipped;
// duplicate seeds enqueue superseded entries that the epoch check drops
// as stale.
func RunFrom(g *graph.Graph, opts Options, seeds []int32) bp.Result {
	opts = opts.withDefaults()
	defer opts.Options.Trace.Span(engineName).End()
	s := g.States
	workers := opts.Workers
	gatherLines := int64((s*4 + 63) / 64)
	matLines := int64(0)
	if !g.SharedMatrix() {
		matLines = int64((s*s*4 + 63) / 64)
	}

	// Shared mutable state: belief bits (atomic element access), the
	// per-node push epoch, and the per-node writer spinlock.
	bel := make([]uint32, len(g.Beliefs))
	for i, b := range g.Beliefs {
		bel[i] = math.Float32bits(b)
	}
	seq := make([]uint32, g.NumNodes)
	writing := make([]uint32, g.NumNodes)

	mq := newMultiQueue(opts.QueueFactor * workers)

	var res bp.Result

	// live counts entries in flight: queued (stale included) plus popped
	// but not yet classified. Workers exit when it reaches zero — every
	// pending update has been applied, wasted, or superseded.
	var live atomic.Int64
	var updates atomic.Int64
	var capped atomic.Bool
	maxUpdates := int64(opts.MaxIterations) * int64(g.NumNodes)

	// Live scheduler counters, shared across workers. These atomics are
	// the single source of truth for the relaxation cost: workers account
	// into them directly, the probe's batch events read them mid-flight,
	// and the final OpCounts is populated from the same values — there is
	// no per-worker copy for the reported totals to drift from.
	var staleDrops, wastedUpdates, contention atomic.Int64

	probe := opts.Probe
	ctx, endTask := telemetry.BeginRun(engineName)
	if probe != nil {
		probe.Emit(telemetry.Event{
			Kind:      telemetry.KindRunStart,
			Engine:    engineName,
			Items:     int64(g.NumNodes),
			Threshold: opts.Threshold,
		})
	}
	batch := int64(g.NumNodes)

	// Initial population, serial and seed-deterministic: every
	// unobserved node with inputs enters at the maximum residual so its
	// first pop computes its true one.
	endSeed := telemetry.StartRegion(ctx, "seed")
	initRng := rand.New(rand.NewSource(opts.Seed))
	seedOne := func(v int32) {
		if v < 0 || int(v) >= g.NumNodes || g.Observed[v] || g.InDegree(v) == 0 {
			return
		}
		seq[v]++
		mq.push(initRng, entry{node: v, seq: seq[v], prio: maxResidual}, &contention)
		res.Ops.QueuePushes++
		live.Add(1)
	}
	if seeds == nil {
		for v := int32(0); v < int32(g.NumNodes); v++ {
			seedOne(v)
		}
	} else {
		for _, v := range seeds {
			seedOne(v)
		}
	}
	endSeed()

	workerOps := make([]bp.OpCounts, workers)
	lastApplied := make([]float32, workers) // residual of the worker's last applied update
	maxPending := make([]float32, workers)  // largest sub-threshold residual seen
	k := kernel.New(g, opts.Kernel)
	kss := make([]kernel.Scratch, workers)
	scratch := make([][]float32, workers)
	for w := range scratch {
		scratch[w] = make([]float32, 3*s)
	}

	team := poolbp.NewTeam(workers)
	defer team.Close()

	endSched := telemetry.StartRegion(ctx, "schedule")
	team.Run(func(w int) {
		ops := &workerOps[w]
		ks := &kss[w]
		buf := scratch[w]
		parent, cand, cur := buf[:s], buf[s:2*s], buf[2*s:]
		rng := rand.New(rand.NewSource(opts.Seed + int64(w)*0x9E3779B9))

		loadBelief := func(dst []float32, v int32) {
			base := int(v) * s
			for j := 0; j < s; j++ {
				dst[j] = math.Float32frombits(atomic.LoadUint32(&bel[base+j]))
			}
		}

		// computeCandidate fills cand with the belief v would adopt
		// against the live (possibly mid-update) neighbour beliefs. The
		// parent snapshot goes through an atomic gather into a private
		// buffer, so the kernel itself never touches shared state.
		computeCandidate := func(v int32) {
			lo, hi := g.InOffsets[v], g.InOffsets[v+1]
			k.Begin(ks, g.Prior(v), int(hi-lo))
			for _, e := range g.InEdges[lo:hi] {
				loadBelief(parent, g.EdgeSrc[e])
				k.Accumulate(ks, e, parent)
				ops.EdgesProcessed++
				ops.MatrixOps += int64(s * s)
				ops.LogOps += int64(s)
				ops.RandomLoads += gatherLines + matLines
				ops.MemLoads += int64(s)
			}
			k.Finish(ks, cand)
			ops.LogOps += int64(s)
		}

		for {
			if capped.Load() {
				return
			}
			e, ok := mq.pop(rng, &contention)
			if !ok {
				if live.Load() == 0 {
					return
				}
				runtime.Gosched()
				continue
			}
			if atomic.LoadUint32(&seq[e.node]) != e.seq {
				// A newer push superseded this entry; the current one is
				// still queued and will carry the node's update.
				staleDrops.Add(1)
				live.Add(-1)
				continue
			}

			v := e.node
			computeCandidate(v)

			// Serialize writers on v so the stored belief is always one
			// consistent normalized candidate.
			for !atomic.CompareAndSwapUint32(&writing[v], 0, 1) {
				contention.Add(1)
				runtime.Gosched()
			}
			loadBelief(cur, v)
			// The residual is the UNDAMPED pending move: damping scales
			// every applied step, and measuring the scaled step would
			// drain the queue while the node still wants to move (the
			// fixpoint criterion must not depend on the step size). The
			// blend below applies only to the stored belief. (The kernel
			// can't damp here: the combine composes
			// Begin/Accumulate/Finish, not NodeUpdate.)
			r := graph.L1Diff(cand, cur)
			if r <= opts.QueueThreshold {
				atomic.StoreUint32(&writing[v], 0)
				// The estimate that scheduled this pop overstated the
				// node's movement — already converged, nothing to apply.
				wastedUpdates.Add(1)
				if r > maxPending[w] {
					maxPending[w] = r
				}
				live.Add(-1)
				continue
			}
			bp.Blend(cand, cur, opts.Damping)
			base := int(v) * s
			for j := 0; j < s; j++ {
				atomic.StoreUint32(&bel[base+j], math.Float32bits(cand[j]))
			}
			atomic.StoreUint32(&writing[v], 0)
			ops.NodesProcessed++
			ops.MemStores += int64(s)
			ops.MemLoads += int64(s)
			lastApplied[w] = r
			if opts.Trace != nil && workers == 1 {
				*opts.Trace = append(*opts.Trace, v)
			}
			n := updates.Add(1)
			// Sweep-equivalent batch boundary: every NumNodes applied
			// updates one worker reports the live scheduler state — queue
			// depth, in-flight count, and the relaxation-cost counters the
			// probes share with the final OpCounts.
			if probe != nil && n%batch == 0 {
				d := mq.maxTop()
				if d < 0 {
					d = 0
				}
				probe.Emit(telemetry.Event{
					Kind:       telemetry.KindIteration,
					Engine:     engineName,
					Iter:       int32(n / batch),
					Delta:      d,
					Updated:    batch,
					Active:     live.Load(),
					Items:      int64(g.NumNodes),
					StaleDrops: staleDrops.Load(),
					Wasted:     wastedUpdates.Load(),
					Contention: contention.Load(),
				})
			}
			if n >= maxUpdates {
				capped.Store(true)
				return
			}

			// Push every successor at the applied residual: the sender's
			// movement is the estimate of how far the receiver may move.
			// Recomputing each successor's true residual here — the
			// sequential engine's discipline — would multiply the
			// per-update message work by the out-degree.
			lo, hi := g.OutOffsets[v], g.OutOffsets[v+1]
			for _, oe := range g.OutEdges[lo:hi] {
				dst := g.EdgeDst[oe]
				if g.Observed[dst] {
					continue
				}
				ns := atomic.AddUint32(&seq[dst], 1)
				live.Add(1)
				mq.push(rng, entry{node: dst, seq: ns, prio: r}, &contention)
				ops.QueuePushes++
			}
			// A damped apply moves the belief only (1−d) of the way, so
			// d·r of the node's own residual is still pending; re-queue
			// the node itself or that remainder strands once its
			// neighbors settle (convergence must mean small UNDAMPED
			// residuals everywhere, regardless of step size).
			if rem := opts.Damping * r; rem > opts.QueueThreshold {
				ns := atomic.AddUint32(&seq[v], 1)
				live.Add(1)
				mq.push(rng, entry{node: v, seq: ns, prio: rem}, &contention)
				ops.QueuePushes++
			}
			live.Add(-1)
		}
	})
	endSched()
	res.Ops.SyncOps += int64(workers)

	// Publish the final beliefs. The team barrier ordered all worker
	// stores before this read.
	for i := range g.Beliefs {
		g.Beliefs[i] = math.Float32frombits(bel[i])
	}

	applied := updates.Load()
	res.Converged = !capped.Load()
	for w := range kss {
		res.Ops.KernelFastPath += kss[w].Counters.FastPath
		res.Ops.RescaleOps += kss[w].Counters.Rescales
	}
	for w, ops := range workerOps {
		res.Ops.Add(ops)
		if res.Converged {
			if maxPending[w] > res.FinalDelta {
				res.FinalDelta = maxPending[w]
			}
		} else if lastApplied[w] > res.FinalDelta {
			res.FinalDelta = lastApplied[w]
		}
	}
	// The relaxation-cost counters come straight from the shared live
	// atomics the workers accounted into (and the probes observed) — the
	// per-worker OpCounts no longer carry them, so there is exactly one
	// set of numbers.
	res.Ops.StaleDrops = staleDrops.Load()
	res.Ops.WastedUpdates = wastedUpdates.Load()
	res.Ops.QueueContention = contention.Load()
	res.Iterations = int((applied + int64(g.NumNodes) - 1) / int64(g.NumNodes))
	if res.Iterations == 0 && applied > 0 {
		res.Iterations = 1
	}
	res.Ops.Iterations = int64(res.Iterations)
	if probe != nil {
		probe.Emit(telemetry.Event{
			Kind:       telemetry.KindRunEnd,
			Engine:     engineName,
			Iter:       int32(res.Iterations),
			Delta:      res.FinalDelta,
			Converged:  res.Converged,
			Updated:    res.Ops.NodesProcessed,
			Edges:      res.Ops.EdgesProcessed,
			StaleDrops: res.Ops.StaleDrops,
			Wasted:     res.Ops.WastedUpdates,
			Contention: res.Ops.QueueContention,
			FastPath:   res.Ops.KernelFastPath,
			Rescales:   res.Ops.RescaleOps,
		})
	}
	endTask()
	return res
}
