package relaxbp

import (
	"testing"

	"credo/internal/bp"
	"credo/internal/gen"
	"credo/internal/kernel"
)

// TestUpdatesAllocFree locks the steady-state guarantee for the relaxed
// engine. A run allocates a fixed setup (team, MultiQueue shards, belief
// bits), and the sharded heaps grow amortized to the peak entry count, so
// the test asserts allocations do not scale with applied updates: a run
// capped at ~10× the updates of a short run must not allocate
// proportionally more. A single leaked allocation per update or per push
// would show up thousands of times.
func TestUpdatesAllocFree(t *testing.T) {
	for _, mode := range []kernel.Mode{kernel.Specialized, kernel.LogSpace} {
		// The damped relaxed engine blends under the writing spinlock
		// with no extra state, so its allocation profile must match
		// vanilla's.
		for _, damping := range []float32{0, 0.5} {
			g, err := gen.Synthetic(200, 800, gen.Config{Seed: 5, States: 3})
			if err != nil {
				t.Fatalf("Synthetic: %v", err)
			}
			opts := Options{
				Options: bp.Options{
					// Unreachably small thresholds keep updates flowing to the
					// update cap (MaxIterations sweep-equivalents).
					Threshold:      1e-35,
					QueueThreshold: 1e-35,
					Damping:        damping,
					Kernel:         kernel.Config{Mode: mode},
				},
				Workers: 4,
				Seed:    7,
			}
			measure := func(iters int) float64 {
				opts.MaxIterations = iters
				return testing.AllocsPerRun(3, func() {
					Run(g.Clone(), opts)
				})
			}
			short := measure(2)
			long := measure(20)
			const slack = 400 // runtime noise + amortized heap growth
			if long > short+slack {
				t.Errorf("mode=%v damping=%g: 20-sweep cap allocated %.0f, 2-sweep cap %.0f — allocations scale with updates",
					mode, damping, long, short)
			}
		}
	}
}
