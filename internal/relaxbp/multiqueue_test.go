package relaxbp

import (
	"math/rand"
	"sort"
	"testing"

	"sync/atomic"
)

// TestSingleShardExactOrder: with one shard the MultiQueue degenerates to
// an exact max-heap — pops must come out in non-increasing priority order.
func TestSingleShardExactOrder(t *testing.T) {
	mq := newMultiQueue(1)
	rng := rand.New(rand.NewSource(42))
	var ops atomic.Int64
	const n = 1000
	for i := 0; i < n; i++ {
		mq.push(rng, entry{node: int32(i), seq: 1, prio: rng.Float32() * 2}, &ops)
	}
	last := float32(3)
	for i := 0; i < n; i++ {
		e, ok := mq.pop(rng, &ops)
		if !ok {
			t.Fatalf("pop %d: queue empty early", i)
		}
		if e.prio > last {
			t.Fatalf("pop %d: priority %g after %g — not the exact max", i, e.prio, last)
		}
		last = e.prio
	}
	if _, ok := mq.pop(rng, &ops); ok {
		t.Fatal("pop succeeded on a drained queue")
	}
}

// TestMultiQueueNoItemLost: every pushed entry comes back out exactly
// once, whatever the shard spread — the queue may relax order, never
// membership.
func TestMultiQueueNoItemLost(t *testing.T) {
	for _, shards := range []int{2, 8, 16} {
		mq := newMultiQueue(shards)
		rng := rand.New(rand.NewSource(7))
		var ops atomic.Int64
		const n = 2000
		pushed := make(map[entry]int, n)
		for i := 0; i < n; i++ {
			// Duplicate nodes and priorities on purpose: staleness is the
			// engine's concern, not the queue's.
			e := entry{node: int32(i % 100), seq: uint32(i), prio: rng.Float32()}
			pushed[e]++
			mq.push(rng, e, &ops)
		}
		if got := mq.size(); got != n {
			t.Fatalf("shards=%d: size %d after %d pushes", shards, got, n)
		}
		for i := 0; i < n; i++ {
			e, ok := mq.pop(rng, &ops)
			if !ok {
				t.Fatalf("shards=%d: queue empty after %d of %d pops", shards, i, n)
			}
			pushed[e]--
			if pushed[e] < 0 {
				t.Fatalf("shards=%d: entry %+v popped more times than pushed", shards, e)
			}
		}
		for e, c := range pushed {
			if c != 0 {
				t.Errorf("shards=%d: entry %+v lost (%d copies remain)", shards, e, c)
			}
		}
		if got := mq.size(); got != 0 {
			t.Errorf("shards=%d: size %d after full drain", shards, got)
		}
	}
}

// TestMultiQueueRelaxationBound: single-threaded, the popped priority must
// stay near the true maximum. Each pop takes the max of one shard, so with
// uniformly random shard placement the popped entry's rank among all
// remaining entries concentrates around the shard count; the bounds here
// are generous multiples of that and deterministic under the fixed seed.
func TestMultiQueueRelaxationBound(t *testing.T) {
	const shards = 8
	mq := newMultiQueue(shards)
	rng := rand.New(rand.NewSource(33))
	var ops atomic.Int64
	const n = 4000
	remaining := make([]float32, 0, n)
	for i := 0; i < n; i++ {
		p := rng.Float32() * 2
		remaining = append(remaining, p)
		mq.push(rng, entry{node: int32(i), seq: 1, prio: p}, &ops)
	}
	var rankSum, rankMax int
	for i := 0; i < n; i++ {
		e, ok := mq.pop(rng, &ops)
		if !ok {
			t.Fatalf("pop %d: queue empty early", i)
		}
		rank, at := 0, -1
		for j, p := range remaining {
			if p > e.prio {
				rank++
			}
			if at < 0 && p == e.prio {
				at = j
			}
		}
		if at < 0 {
			t.Fatalf("pop %d: priority %g never pushed", i, e.prio)
		}
		remaining[at] = remaining[len(remaining)-1]
		remaining = remaining[:len(remaining)-1]
		rankSum += rank
		if rank > rankMax {
			rankMax = rank
		}
	}
	mean := float64(rankSum) / float64(n)
	t.Logf("relaxation over %d pops, %d shards: mean rank %.2f, max rank %d", n, shards, mean, rankMax)
	if mean > float64(shards) {
		t.Errorf("mean popped rank %.2f exceeds the shard count %d — relaxation far looser than the sample-two bound", mean, shards)
	}
	if rankMax > 8*shards {
		t.Errorf("max popped rank %d exceeds 8x the shard count %d", rankMax, shards)
	}
}

// TestPQueueHeapInvariant white-boxes one shard: after every push and pop
// the array must satisfy the max-heap property and the cached top must
// equal the root.
func TestPQueueHeapInvariant(t *testing.T) {
	var q pqueue
	q.updateTop()
	rng := rand.New(rand.NewSource(5))
	check := func(step string) {
		t.Helper()
		for i := 1; i < len(q.heap); i++ {
			parent := (i - 1) / 2
			if q.heap[parent].prio < q.heap[i].prio {
				t.Fatalf("%s: heap violated at %d (%g < %g)", step, i, q.heap[parent].prio, q.heap[i].prio)
			}
		}
		want := emptyTop
		if len(q.heap) > 0 {
			want = q.heap[0].prio
		}
		if got := q.peekTop(); got != want {
			t.Fatalf("%s: cached top %g, heap top %g", step, got, want)
		}
	}
	for i := 0; i < 500; i++ {
		if len(q.heap) == 0 || rng.Intn(3) > 0 {
			q.mu.Lock()
			q.pushLocked(entry{node: int32(i), seq: 1, prio: rng.Float32()})
			q.mu.Unlock()
			check("push")
			continue
		}
		q.mu.Lock()
		top := q.heap[0].prio
		e := q.popLocked()
		q.mu.Unlock()
		if e.prio != top {
			t.Fatalf("pop returned %g, root was %g", e.prio, top)
		}
		check("pop")
	}
}

// TestMultiQueueConcurrentDrain hammers one MultiQueue from many
// goroutines (the -race configuration of the CI job): concurrent pushers
// and poppers must neither lose nor duplicate entries.
func TestMultiQueueConcurrentDrain(t *testing.T) {
	const (
		shards  = 8
		workers = 8
		perW    = 2000
	)
	mq := newMultiQueue(shards)
	popped := make(chan entry, workers*perW)
	done := make(chan struct{}, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			rng := rand.New(rand.NewSource(int64(w)))
			var ops atomic.Int64
			for i := 0; i < perW; i++ {
				mq.push(rng, entry{node: int32(w), seq: uint32(i), prio: rng.Float32()}, &ops)
				if i%2 == 1 {
					for {
						if e, ok := mq.pop(rng, &ops); ok {
							popped <- e
							break
						}
					}
				}
			}
			done <- struct{}{}
		}(w)
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	// Half were popped concurrently; drain the rest single-threaded.
	rng := rand.New(rand.NewSource(99))
	var ops atomic.Int64
	for {
		e, ok := mq.pop(rng, &ops)
		if !ok {
			break
		}
		popped <- e
	}
	close(popped)
	counts := make(map[entry]int)
	for e := range popped {
		counts[e]++
	}
	total := 0
	for e, c := range counts {
		if c != 1 {
			t.Fatalf("entry %+v popped %d times", e, c)
		}
		total++
	}
	if total != workers*perW {
		t.Fatalf("popped %d distinct entries, pushed %d", total, workers*perW)
	}
	// Per-worker seqs must each appear exactly once — a sortable view of
	// the same no-loss property.
	for w := 0; w < workers; w++ {
		var seqs []int
		for e := range counts {
			if e.node == int32(w) {
				seqs = append(seqs, int(e.seq))
			}
		}
		sort.Ints(seqs)
		for i, s := range seqs {
			if s != i {
				t.Fatalf("worker %d: seq %d missing (found %d at rank %d)", w, i, s, i)
			}
		}
	}
}
