package relaxbp

import (
	"testing"

	"credo/internal/bp"
	"credo/internal/gen"
	"credo/internal/graph"
)

func fromGrid(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := gen.Grid(16, 16, gen.Config{Seed: 5, States: 2, Shared: true, Keep: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRunFromEmptySeedsIsFree(t *testing.T) {
	g := fromGrid(t)
	if res := Run(g, Options{Workers: 2}); !res.Converged {
		t.Fatalf("cold run did not converge (delta %g)", res.FinalDelta)
	}
	res := RunFrom(g, Options{Workers: 2}, []int32{})
	if !res.Converged {
		t.Fatal("empty-seed warm start did not report convergence")
	}
	if res.Ops.NodesProcessed != 0 {
		t.Fatalf("empty-seed warm start applied %d updates, want 0", res.Ops.NodesProcessed)
	}
}

func TestRunFromWarmMatchesColdWithFewerUpdates(t *testing.T) {
	warm := fromGrid(t)
	if res := Run(warm, Options{Workers: 2}); !res.Converged {
		t.Fatalf("initial run did not converge (delta %g)", res.FinalDelta)
	}
	const clamped = 8*16 + 8
	if err := warm.Observe(clamped, 1); err != nil {
		t.Fatal(err)
	}
	seeds := []int32{clamped}
	for _, e := range warm.OutEdges[warm.OutOffsets[clamped]:warm.OutOffsets[clamped+1]] {
		seeds = append(seeds, warm.EdgeDst[e])
	}
	// Degenerate seeds ride along to prove they are skipped, not fatal.
	seeds = append(seeds, -1, int32(warm.NumNodes)+5, clamped)
	warmRes := RunFrom(warm, Options{Workers: 2}, seeds)
	if !warmRes.Converged {
		t.Fatalf("warm run did not converge (delta %g)", warmRes.FinalDelta)
	}

	cold := fromGrid(t)
	if err := cold.Observe(clamped, 1); err != nil {
		t.Fatal(err)
	}
	coldRes := Run(cold, Options{Workers: 2})
	if !coldRes.Converged {
		t.Fatalf("cold run did not converge (delta %g)", coldRes.FinalDelta)
	}

	// The relaxed schedule is nondeterministic for Workers > 1, so the
	// warm and cold runs are fixpoint-close rather than bitwise equal:
	// each stops once every pending residual is below the element
	// threshold, so the cross-run distance is locked at 10x the threshold
	// (measured ~3x on this grid), the enginetest cross-run precedent.
	tol := float32(10 * bp.DefaultThreshold)
	var worst float32
	for v := int32(0); v < int32(warm.NumNodes); v++ {
		if d := graph.L1Diff(warm.Belief(v), cold.Belief(v)); d > worst {
			worst = d
		}
	}
	if worst > tol {
		t.Fatalf("warm start diverges from cold start by %g (tolerance %g)", worst, tol)
	}
	if warmRes.Ops.NodesProcessed >= coldRes.Ops.NodesProcessed {
		t.Fatalf("warm start applied %d updates, cold %d — no saving",
			warmRes.Ops.NodesProcessed, coldRes.Ops.NodesProcessed)
	}
	t.Logf("updates: warm %d vs cold %d", warmRes.Ops.NodesProcessed, coldRes.Ops.NodesProcessed)
}
