package relaxbp

import (
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
)

// entry is one pending update in the relaxed scheduler: a node, the
// epoch of the push that created the entry (stale entries — those whose
// node was pushed again afterwards — are dropped at pop time instead of
// being decrease-keyed in place), and the residual estimate that orders
// it.
type entry struct {
	node int32
	seq  uint32
	prio float32
}

// emptyTop is the cached-top sentinel of an empty queue. Priorities are
// L1 residuals (≥ 0), so any real top wins a comparison against it.
const emptyTop = float32(-1)

// pqueue is one sequential max-heap shard of the MultiQueue: a mutex, the
// heap itself, and a lock-free cache of the top priority so that the
// sample-two pop can compare shards without taking either lock.
type pqueue struct {
	mu   sync.Mutex
	top  atomic.Uint32 // float32 bits of the current max priority
	heap []entry
}

func (q *pqueue) updateTop() {
	if len(q.heap) == 0 {
		q.top.Store(math.Float32bits(emptyTop))
		return
	}
	q.top.Store(math.Float32bits(q.heap[0].prio))
}

func (q *pqueue) peekTop() float32 {
	return math.Float32frombits(q.top.Load())
}

// siftUp restores the heap property after an append at index i.
func (q *pqueue) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if q.heap[parent].prio >= q.heap[i].prio {
			break
		}
		q.heap[parent], q.heap[i] = q.heap[i], q.heap[parent]
		i = parent
	}
}

// siftDown restores the heap property after a removal replaced the root.
func (q *pqueue) siftDown() {
	i, n := 0, len(q.heap)
	for {
		l, r := 2*i+1, 2*i+2
		max := i
		if l < n && q.heap[l].prio > q.heap[max].prio {
			max = l
		}
		if r < n && q.heap[r].prio > q.heap[max].prio {
			max = r
		}
		if max == i {
			return
		}
		q.heap[i], q.heap[max] = q.heap[max], q.heap[i]
		i = max
	}
}

// pushLocked appends e; the caller holds mu.
func (q *pqueue) pushLocked(e entry) {
	q.heap = append(q.heap, e)
	q.siftUp(len(q.heap) - 1)
	q.updateTop()
}

// popLocked removes and returns the max entry; the caller holds mu and
// has checked the heap is non-empty.
func (q *pqueue) popLocked() entry {
	e := q.heap[0]
	last := len(q.heap) - 1
	q.heap[0] = q.heap[last]
	q.heap = q.heap[:last]
	q.siftDown()
	q.updateTop()
	return e
}

// multiQueue is the relaxed concurrent priority scheduler: Q = c·P
// sequential heaps. A push lands in one uniformly random shard; a pop
// samples two shards, compares their cached tops, and pops the larger —
// the MultiQueue discipline of Rihani/Sanders/Dementiev adopted for BP
// scheduling by Aksenov, Alistarh & Korhonen. The popped residual is not
// the exact global maximum, only close to it with high probability; the
// engine absorbs that slack because residual order affects convergence
// speed, not the fixpoint.
type multiQueue struct {
	queues []pqueue
}

// newMultiQueue builds a scheduler with q shards (minimum 1).
func newMultiQueue(q int) *multiQueue {
	if q < 1 {
		q = 1
	}
	mq := &multiQueue{queues: make([]pqueue, q)}
	for i := range mq.queues {
		mq.queues[i].top.Store(math.Float32bits(emptyTop))
	}
	return mq
}

// lock acquires q's mutex, counting a contention event on the shared
// live counter when the fast TryLock misses and the caller has to wait.
// The counter is the same atomic the probes and the final OpCounts read,
// so contention accounting has one source of truth.
func (mq *multiQueue) lock(q *pqueue, contention *atomic.Int64) {
	if q.mu.TryLock() {
		return
	}
	contention.Add(1)
	q.mu.Lock()
}

// push inserts e into a uniformly random shard.
func (mq *multiQueue) push(rng *rand.Rand, e entry, contention *atomic.Int64) {
	q := &mq.queues[rng.Intn(len(mq.queues))]
	mq.lock(q, contention)
	q.pushLocked(e)
	q.mu.Unlock()
}

// pop samples two distinct shards, pops the one whose cached top is
// larger, and falls back to a full scan when the sampled shards are
// empty (which matters only near the drain, when spread entries must
// still be found). Returns false when every shard is empty.
func (mq *multiQueue) pop(rng *rand.Rand, contention *atomic.Int64) (entry, bool) {
	n := len(mq.queues)
	if n > 1 {
		i := rng.Intn(n)
		j := rng.Intn(n - 1)
		if j >= i {
			j++
		}
		if mq.queues[j].peekTop() > mq.queues[i].peekTop() {
			i = j
		}
		if e, ok := mq.tryPopFrom(&mq.queues[i], contention); ok {
			return e, true
		}
	}
	// Sampled shards were empty (or raced to empty): scan every shard
	// once so pending work cannot hide from the sampler.
	for k := range mq.queues {
		if e, ok := mq.tryPopFrom(&mq.queues[k], contention); ok {
			return e, true
		}
	}
	return entry{}, false
}

// tryPopFrom pops q's max entry, or returns false when q is empty.
func (mq *multiQueue) tryPopFrom(q *pqueue, contention *atomic.Int64) (entry, bool) {
	if q.peekTop() == emptyTop {
		return entry{}, false
	}
	mq.lock(q, contention)
	if len(q.heap) == 0 {
		q.mu.Unlock()
		return entry{}, false
	}
	e := q.popLocked()
	q.mu.Unlock()
	return e, true
}

// maxTop returns the largest cached shard top — a lock-free estimate of
// the largest pending residual, emptyTop when every shard is empty. It
// reads Q atomics and is what the telemetry batch events report as the
// current residual bound.
func (mq *multiQueue) maxTop() float32 {
	top := emptyTop
	for i := range mq.queues {
		if t := mq.queues[i].peekTop(); t > top {
			top = t
		}
	}
	return top
}

// size returns the total number of queued entries (stale included). It
// locks every shard and is meant for tests and termination diagnostics,
// not the hot path.
func (mq *multiQueue) size() int {
	total := 0
	for i := range mq.queues {
		mq.queues[i].mu.Lock()
		total += len(mq.queues[i].heap)
		mq.queues[i].mu.Unlock()
	}
	return total
}
