package xmlbif

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"credo/internal/gen"
)

const familyOutXML = `<?xml version="1.0"?>
<BIF VERSION="0.3">
<NETWORK>
<NAME>family_out</NAME>
<VARIABLE TYPE="nature"><NAME>family-out</NAME><OUTCOME>true</OUTCOME><OUTCOME>false</OUTCOME></VARIABLE>
<VARIABLE TYPE="nature"><NAME>light-on</NAME><OUTCOME>true</OUTCOME><OUTCOME>false</OUTCOME></VARIABLE>
<DEFINITION><FOR>family-out</FOR><TABLE>0.15 0.85</TABLE></DEFINITION>
<DEFINITION><FOR>light-on</FOR><GIVEN>family-out</GIVEN><TABLE>0.6 0.4 0.05 0.95</TABLE></DEFINITION>
</NETWORK>
</BIF>
`

func TestParse(t *testing.T) {
	g, err := Parse(strings.NewReader(familyOutXML))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if g.NumNodes != 2 || g.NumEdges != 1 {
		t.Fatalf("shape %d/%d, want 2/1", g.NumNodes, g.NumEdges)
	}
	if got := g.Prior(0)[0]; math.Abs(float64(got)-0.15) > 1e-6 {
		t.Errorf("prior = %v, want 0.15", got)
	}
	if got := g.Matrix(0).At(1, 0); math.Abs(float64(got)-0.05) > 1e-6 {
		t.Errorf("CPT (1,0) = %v, want 0.05", got)
	}
	if g.Names[1] != "light-on" {
		t.Errorf("name = %q", g.Names[1])
	}
}

func TestParseDocument(t *testing.T) {
	doc, err := ParseDocument(strings.NewReader(familyOutXML))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Version != "0.3" {
		t.Errorf("version = %q", doc.Version)
	}
	if len(doc.Network.Variables) != 2 || len(doc.Network.Definitions) != 2 {
		t.Fatalf("got %d vars, %d defs", len(doc.Network.Variables), len(doc.Network.Definitions))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"not xml", "hello"},
		{"truncated", "<BIF><NETWORK>"},
		{"no outcomes", `<BIF VERSION="0.3"><NETWORK><NAME>x</NAME><VARIABLE TYPE="nature"><NAME>a</NAME></VARIABLE></NETWORK></BIF>`},
		{"bad table value", `<BIF VERSION="0.3"><NETWORK><NAME>x</NAME><VARIABLE TYPE="nature"><NAME>a</NAME><OUTCOME>y</OUTCOME><OUTCOME>n</OUTCOME></VARIABLE><DEFINITION><FOR>a</FOR><TABLE>zz 0.5</TABLE></DEFINITION></NETWORK></BIF>`},
		{"undeclared child", `<BIF VERSION="0.3"><NETWORK><NAME>x</NAME><VARIABLE TYPE="nature"><NAME>a</NAME><OUTCOME>y</OUTCOME><OUTCOME>n</OUTCOME></VARIABLE><DEFINITION><FOR>zz</FOR><TABLE>0.5 0.5</TABLE></DEFINITION></NETWORK></BIF>`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Parse(strings.NewReader(tc.src)); err == nil {
				t.Error("Parse accepted malformed input")
			}
		})
	}
}

func TestWriteRoundTrip(t *testing.T) {
	g, err := gen.DirectedTree(12, 3, gen.Config{Seed: 4, States: 3, UniformPriors: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Parse(&buf)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got.NumNodes != g.NumNodes || got.NumEdges != g.NumEdges || got.States != g.States {
		t.Fatalf("shape %d/%d/%d", got.NumNodes, got.NumEdges, got.States)
	}
	for e := 0; e < g.NumEdges; e++ {
		a, b := g.Matrix(int32(e)), got.Matrix(int32(e))
		for i := range a.Data {
			if d := float64(a.Data[i] - b.Data[i]); math.Abs(d) > 1e-5 {
				t.Fatalf("edge %d matrix entry %d differs by %v", e, i, d)
			}
		}
	}
}

func TestCrossFormatAgreement(t *testing.T) {
	// The same logical network written in XMLBIF and parsed back must
	// match the graph parsed from the equivalent BIF text (shared
	// conversion path).
	g, err := Parse(strings.NewReader(familyOutXML))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range g.Priors {
		if d := float64(g.Priors[i] - g2.Priors[i]); math.Abs(d) > 1e-5 {
			t.Fatalf("prior %d differs by %v", i, d)
		}
	}
}
