// Package xmlbif implements the XML sibling of the Bayesian Interchange
// Format (XMLBIF v0.3), the second baseline of the paper's input-format
// comparison (§3.2.1). As the paper observes of the format, the whole
// document is unmarshalled into memory before the graph can be assembled —
// the cost Credo's streaming mtxbp format eliminates.
//
// The pairwise conversion rules match package bif: multi-parent variables
// become one edge per parent with the CPT marginalized over the others.
package xmlbif

import (
	"bufio"
	"encoding/xml"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"credo/internal/bif"
	"credo/internal/graph"
)

// Document is the root <BIF> element.
type Document struct {
	XMLName xml.Name `xml:"BIF"`
	Version string   `xml:"VERSION,attr"`
	Network Net      `xml:"NETWORK"`
}

// Net is the <NETWORK> element.
type Net struct {
	Name        string       `xml:"NAME"`
	Variables   []Variable   `xml:"VARIABLE"`
	Definitions []Definition `xml:"DEFINITION"`
}

// Variable is a <VARIABLE> declaration with its outcome states.
type Variable struct {
	Name     string   `xml:"NAME"`
	Type     string   `xml:"TYPE,attr"`
	Outcomes []string `xml:"OUTCOME"`
}

// Definition is a <DEFINITION> block: the CPT of one variable.
type Definition struct {
	For   string   `xml:"FOR"`
	Given []string `xml:"GIVEN"`
	Table string   `xml:"TABLE"`
}

// Parse unmarshals an XMLBIF document and converts it to a pairwise belief
// graph.
func Parse(r io.Reader) (*graph.Graph, error) {
	doc, err := ParseDocument(r)
	if err != nil {
		return nil, err
	}
	return doc.ToGraph()
}

// ParseFile parses the XMLBIF file at path.
func ParseFile(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Parse(bufio.NewReaderSize(f, 1<<20))
}

// ParseDocument unmarshals the raw document.
func ParseDocument(r io.Reader) (*Document, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("xmlbif: %w", err)
	}
	var doc Document
	if err := xml.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("xmlbif: %w", err)
	}
	return &doc, nil
}

// ToGraph converts the document to a pairwise belief graph by translating
// it to the bif package's raw network form and reusing its conversion.
func (d *Document) ToGraph() (*graph.Graph, error) {
	n := &bif.Network{Name: d.Network.Name}
	for _, v := range d.Network.Variables {
		if len(v.Outcomes) == 0 {
			return nil, fmt.Errorf("xmlbif: variable %q has no outcomes", v.Name)
		}
		n.Variables = append(n.Variables, bif.Variable{Name: strings.TrimSpace(v.Name), States: trimAll(v.Outcomes)})
	}
	for _, def := range d.Network.Definitions {
		vals, err := parseTable(def.Table)
		if err != nil {
			return nil, fmt.Errorf("xmlbif: definition for %q: %w", def.For, err)
		}
		n.Probs = append(n.Probs, bif.Probability{
			Child:   strings.TrimSpace(def.For),
			Parents: trimAll(def.Given),
			Table:   vals,
		})
	}
	return n.ToGraph()
}

func trimAll(ss []string) []string {
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = strings.TrimSpace(s)
	}
	return out
}

func parseTable(s string) ([]float32, error) {
	fields := strings.Fields(s)
	vals := make([]float32, len(fields))
	for i, f := range fields {
		v, err := strconv.ParseFloat(f, 32)
		if err != nil {
			return nil, fmt.Errorf("bad table value %q: %w", f, err)
		}
		vals[i] = float32(v)
	}
	return vals, nil
}

// Write serializes g as an XMLBIF document. Like the BIF writer it
// requires each node to have at most one parent.
func Write(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	bw.WriteString(xml.Header)
	bw.WriteString("<BIF VERSION=\"0.3\">\n<NETWORK>\n<NAME>credo</NAME>\n")
	for v := 0; v < g.NumNodes; v++ {
		if g.InDegree(int32(v)) > 1 {
			return fmt.Errorf("xmlbif: node %d has %d parents; writer supports at most 1", v, g.InDegree(int32(v)))
		}
		fmt.Fprintf(bw, "<VARIABLE TYPE=\"nature\">\n<NAME>%s</NAME>\n", nodeName(g, v))
		for j := 0; j < g.States; j++ {
			fmt.Fprintf(bw, "<OUTCOME>s%d</OUTCOME>\n", j)
		}
		bw.WriteString("</VARIABLE>\n")
	}
	for v := 0; v < g.NumNodes; v++ {
		fmt.Fprintf(bw, "<DEFINITION>\n<FOR>%s</FOR>\n", nodeName(g, v))
		lo, hi := g.InOffsets[v], g.InOffsets[v+1]
		if lo == hi {
			bw.WriteString("<TABLE>")
			writeValues(bw, g.Prior(int32(v)))
			bw.WriteString("</TABLE>\n</DEFINITION>\n")
			continue
		}
		e := g.InEdges[lo]
		fmt.Fprintf(bw, "<GIVEN>%s</GIVEN>\n<TABLE>", nodeName(g, int(g.EdgeSrc[e])))
		m := g.Matrix(e)
		for i := 0; i < g.States; i++ {
			if i > 0 {
				bw.WriteString(" ")
			}
			writeValues(bw, m.Row(i))
		}
		bw.WriteString("</TABLE>\n</DEFINITION>\n")
	}
	bw.WriteString("</NETWORK>\n</BIF>\n")
	return bw.Flush()
}

func nodeName(g *graph.Graph, v int) string {
	if v < len(g.Names) && g.Names[v] != "" {
		return g.Names[v]
	}
	return "n" + strconv.Itoa(v)
}

func writeValues(bw *bufio.Writer, vals []float32) {
	for i, f := range vals {
		if i > 0 {
			bw.WriteString(" ")
		}
		bw.WriteString(strconv.FormatFloat(float64(f), 'g', 7, 32))
	}
}
