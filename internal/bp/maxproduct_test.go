package bp

import (
	"testing"

	"credo/internal/gen"
	"credo/internal/graph"
)

func TestMaxProductDecodesChainMAP(t *testing.T) {
	// A chain with strong couplings and evidence at one end: max-product
	// on the doubled-edge MRF must recover the exact MAP assignment.
	b := graph.NewBuilder(2)
	for i := 0; i < 6; i++ {
		prior := []float32{0.5, 0.5}
		if i == 0 {
			prior = []float32{0.9, 0.1}
		}
		if _, err := b.AddNode(prior); err != nil {
			t.Fatal(err)
		}
	}
	m := graph.DiagonalJointMatrix(2, 0.8)
	for i := 0; i+1 < 6; i++ {
		if err := b.AddUndirected(int32(i), int32(i+1), &m); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := BruteForceMAP(g)
	if err != nil {
		t.Fatal(err)
	}
	res := RunMaxProduct(g, Options{})
	if !res.Converged {
		t.Fatalf("did not converge: %+v", res)
	}
	got := DecodeMAP(g)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("node %d decoded %d, MAP is %d (got %v, want %v)", v, got[v], want[v], got, want)
		}
	}
}

func TestMaxProductRespectsEvidence(t *testing.T) {
	g, err := gen.Grid(5, 5, gen.Config{Seed: 4, States: 4, Shared: true, Keep: 0.7, UniformPriors: true})
	if err != nil {
		t.Fatal(err)
	}
	_ = g.Observe(12, 3) // center pixel
	res := RunMaxProduct(g, Options{WorkQueue: true})
	if !res.Converged {
		t.Fatalf("did not converge: %+v", res)
	}
	decoded := DecodeMAP(g)
	if decoded[12] != 3 {
		t.Errorf("observed pixel decoded as %d", decoded[12])
	}
	// Smoothness coupling pulls neighbours toward the evidence state.
	for _, nb := range []int{7, 11, 13, 17} {
		if decoded[nb] != 3 {
			t.Errorf("neighbour %d decoded as %d, want 3 under smoothing", nb, decoded[nb])
		}
	}
	if err := g.Validate(); err != nil {
		t.Errorf("beliefs invalid: %v", err)
	}
}

func TestMaxProductVsSumProductDiffer(t *testing.T) {
	// Max-marginals and marginals are different quantities; on a frustrated
	// graph their beliefs should not be identical.
	g1, err := gen.Synthetic(50, 200, gen.Config{Seed: 9, States: 3})
	if err != nil {
		t.Fatal(err)
	}
	g2 := g1.Clone()
	RunNode(g1, Options{})
	RunMaxProduct(g2, Options{})
	if maxBeliefDiff(g1, g2) < 1e-4 {
		t.Error("max-product beliefs identical to sum-product; suspicious")
	}
}

func TestBruteForceMAPGuards(t *testing.T) {
	g, err := gen.Synthetic(64, 128, gen.Config{Seed: 1, States: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := BruteForceMAP(g); err == nil {
		t.Error("accepted an infeasible joint space")
	}
}

func TestDecodeMAPUniform(t *testing.T) {
	g, err := gen.Synthetic(10, 30, gen.Config{Seed: 2, States: 3, UniformPriors: true})
	if err != nil {
		t.Fatal(err)
	}
	d := DecodeMAP(g)
	if len(d) != 10 {
		t.Fatalf("decoded %d states", len(d))
	}
	for _, v := range d {
		if v < 0 || v >= 3 {
			t.Fatalf("state %d out of range", v)
		}
	}
}
