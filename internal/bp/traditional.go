package bp

import (
	"credo/internal/graph"
)

// RunTraditional executes the classical non-loopy, level-ordered BP the
// paper uses as its §2.1.1 control: φ updates sweep forward from the root
// nodes level by level, then ψ updates sweep backward from the terminal
// nodes, and the algorithm runs "simply twice" rather than to convergence.
//
// The implementation deliberately mirrors the naive structure the paper
// profiles — level determination by iterative relaxation over the whole
// edge list and by-level processing that scans the full node array per
// level — because those overheads are precisely what makes the traditional
// algorithm orders of magnitude slower than loopy BP on large graphs.
func RunTraditional(g *graph.Graph, opts Options) Result {
	opts = opts.withDefaults(g.NumNodes)
	s := g.States
	var res Result

	// Level determination: level[v] = 1 + max(level[parent]), computed by
	// repeated relaxation sweeps over the edge list (the "enormous
	// overhead" of §2.1.1). Cycles are cut by capping a node's level at
	// NumNodes. The naive implementation the paper profiles runs the full
	// NumNodes relaxation passes unconditionally — O(V·E) — so that cost
	// is what the operation counts report; execution itself stops at the
	// fixpoint, which leaves the computed levels identical.
	level := make([]int32, g.NumNodes)
	maxLevel := int32(0)
	for pass := 0; pass < g.NumNodes; pass++ {
		changed := false
		for e := 0; e < g.NumEdges; e++ {
			u, v := g.EdgeSrc[e], g.EdgeDst[e]
			if l := level[u] + 1; l > level[v] && l < int32(g.NumNodes) {
				level[v] = l
				changed = true
				if l > maxLevel {
					maxLevel = l
				}
			}
		}
		res.Ops.Iterations++
		if !changed {
			break
		}
	}
	res.Ops.MemLoads += 2 * int64(g.NumNodes) * int64(g.NumEdges)

	acc := make([]float32, s)
	msg := make([]float32, s)

	combineForward := func(v int32) {
		if g.Observed[v] {
			return
		}
		res.Ops.NodesProcessed++
		for j := 0; j < s; j++ {
			acc[j] = 0
		}
		lo, hi := g.InOffsets[v], g.InOffsets[v+1]
		n := 0
		for _, e := range g.InEdges[lo:hi] {
			src := g.EdgeSrc[e]
			if level[src] >= level[v] {
				continue // φ updates flow strictly downward
			}
			computeMessage(msg, g.Belief(src), g.Matrix(e))
			for j := 0; j < s; j++ {
				acc[j] += Logf(msg[j])
			}
			n++
			res.Ops.EdgesProcessed++
			res.Ops.MatrixOps += int64(s * s)
			res.Ops.LogOps += int64(s)
			res.Ops.MemLoads += int64(s)
		}
		if n == 0 {
			return
		}
		ExpNormalize(g.Belief(v), g.Prior(v), acc)
		res.Ops.LogOps += int64(s)
		res.Ops.MemStores += int64(s)
	}

	combineBackward := func(v int32) {
		if g.Observed[v] {
			return
		}
		res.Ops.NodesProcessed++
		for j := 0; j < s; j++ {
			acc[j] = 0
		}
		lo, hi := g.OutOffsets[v], g.OutOffsets[v+1]
		n := 0
		for _, e := range g.OutEdges[lo:hi] {
			dst := g.EdgeDst[e]
			if level[dst] <= level[v] {
				continue // ψ updates flow strictly upward
			}
			// Message from the child back through the edge matrix:
			// m[x_v] = Σ_{x_c} J[x_v, x_c]·b_c[x_c].
			child := g.Belief(dst)
			m := g.Matrix(e)
			for j := 0; j < s; j++ {
				row := m.Row(j)
				var sum float32
				for k := 0; k < s; k++ {
					sum += row[k] * child[k]
				}
				msg[j] = sum
			}
			graph.Normalize(msg)
			for j := 0; j < s; j++ {
				acc[j] += Logf(msg[j])
			}
			n++
			res.Ops.EdgesProcessed++
			res.Ops.MatrixOps += int64(s * s)
			res.Ops.LogOps += int64(s)
			res.Ops.MemLoads += int64(s)
		}
		if n == 0 {
			return
		}
		ExpNormalize(g.Belief(v), g.Belief(v), acc)
		res.Ops.LogOps += int64(s)
		res.Ops.MemStores += int64(s)
	}

	// Forward (φ) sweep: naive by-level processing scans every node at
	// every level.
	for l := int32(0); l <= maxLevel; l++ {
		for v := int32(0); v < int32(g.NumNodes); v++ {
			res.Ops.MemLoads++
			if level[v] == l {
				combineForward(v)
			}
		}
	}
	// Backward (ψ) sweep.
	for l := maxLevel; l >= 0; l-- {
		for v := int32(0); v < int32(g.NumNodes); v++ {
			res.Ops.MemLoads++
			if level[v] == l {
				combineBackward(v)
			}
		}
	}

	res.Iterations = 2
	res.Converged = true
	return res
}
