package bp

import (
	"credo/internal/graph"
	"credo/internal/kernel"
	"credo/internal/telemetry"
)

// RunTraditional executes the classical non-loopy, level-ordered BP the
// paper uses as its §2.1.1 control: φ updates sweep forward from the root
// nodes level by level, then ψ updates sweep backward from the terminal
// nodes, and the algorithm runs "simply twice" rather than to convergence.
//
// The implementation deliberately mirrors the naive structure the paper
// profiles — level determination by iterative relaxation over the whole
// edge list and by-level processing that scans the full node array per
// level — because those overheads are precisely what makes the traditional
// algorithm orders of magnitude slower than loopy BP on large graphs. The
// per-message math itself runs through the kernel layer like every other
// engine, and the run allocates from the pooled scratch arena.
func RunTraditional(g *graph.Graph, opts Options) Result {
	sc := getScratch()
	res := runTraditional(g, opts, sc)
	sc.release()
	return res
}

func runTraditional(g *graph.Graph, opts Options, sc *runScratch) Result {
	opts = opts.withDefaults(g.NumNodes)
	k := kernel.New(g, opts.Kernel)
	var res Result

	probe := opts.Probe
	ctx, endTask := telemetry.BeginRun(engTraditional)
	emitRunStart(probe, engTraditional, int64(g.NumNodes), opts.Threshold)

	endLevels := telemetry.StartRegion(ctx, "levels")
	// Level determination: level[v] = 1 + max(level[parent]), computed by
	// repeated relaxation sweeps over the edge list (the "enormous
	// overhead" of §2.1.1). Cycles are cut by capping a node's level at
	// NumNodes. The naive implementation the paper profiles runs the full
	// NumNodes relaxation passes unconditionally — O(V·E) — so that cost
	// is what the operation counts report; execution itself stops at the
	// fixpoint, which leaves the computed levels identical.
	sc.level = growI32(sc.level, g.NumNodes)
	level := sc.level
	for i := range level {
		level[i] = 0
	}
	maxLevel := int32(0)
	for pass := 0; pass < g.NumNodes; pass++ {
		changed := false
		for e := 0; e < g.NumEdges; e++ {
			u, v := g.EdgeSrc[e], g.EdgeDst[e]
			if l := level[u] + 1; l > level[v] && l < int32(g.NumNodes) {
				level[v] = l
				changed = true
				if l > maxLevel {
					maxLevel = l
				}
			}
		}
		res.Ops.Iterations++
		if !changed {
			break
		}
	}
	res.Ops.MemLoads += 2 * int64(g.NumNodes) * int64(g.NumEdges)
	endLevels()

	// Forward (φ) sweep: naive by-level processing scans every node at
	// every level.
	endForward := telemetry.StartRegion(ctx, "forward")
	for l := int32(0); l <= maxLevel; l++ {
		for v := int32(0); v < int32(g.NumNodes); v++ {
			res.Ops.MemLoads++
			if level[v] == l {
				tradForward(g, &k, sc, &res, v, level)
			}
		}
	}
	endForward()
	// The two passes report as iterations 1 (forward) and 2 (backward):
	// the traditional algorithm has no residual, so Delta stays 0 and the
	// trajectory carries the two sweeps' update counts.
	if probe != nil {
		probe.Emit(telemetry.Event{
			Kind:     telemetry.KindIteration,
			Engine:   engTraditional,
			Iter:     1,
			Updated:  res.Ops.NodesProcessed,
			Edges:    res.Ops.EdgesProcessed,
			Active:   -1,
			Items:    int64(g.NumNodes),
			FastPath: sc.ks.Counters.FastPath,
			Rescales: sc.ks.Counters.Rescales,
		})
	}
	fwdNodes, fwdEdges := res.Ops.NodesProcessed, res.Ops.EdgesProcessed

	// Backward (ψ) sweep.
	endBackward := telemetry.StartRegion(ctx, "backward")
	for l := maxLevel; l >= 0; l-- {
		for v := int32(0); v < int32(g.NumNodes); v++ {
			res.Ops.MemLoads++
			if level[v] == l {
				tradBackward(g, &k, sc, &res, v, level)
			}
		}
	}
	endBackward()
	if probe != nil {
		probe.Emit(telemetry.Event{
			Kind:     telemetry.KindIteration,
			Engine:   engTraditional,
			Iter:     2,
			Updated:  res.Ops.NodesProcessed - fwdNodes,
			Edges:    res.Ops.EdgesProcessed - fwdEdges,
			Active:   -1,
			Items:    int64(g.NumNodes),
			FastPath: sc.ks.Counters.FastPath,
			Rescales: sc.ks.Counters.Rescales,
		})
	}

	res.Iterations = 2
	res.Converged = true
	res.Ops.addKernelCounters(sc.ks.Counters)
	emitRunEnd(probe, engTraditional, &res)
	endTask()
	return res
}

// tradForward folds the φ messages of v's strictly-lower-level parents
// into its belief.
func tradForward(g *graph.Graph, k *kernel.Kernel, sc *runScratch, res *Result, v int32, level []int32) {
	if g.Observed[v] {
		return
	}
	res.Ops.NodesProcessed++
	s := g.States
	lo, hi := g.InOffsets[v], g.InOffsets[v+1]
	k.Begin(&sc.ks, g.Priors[int(v)*s:int(v)*s+s], int(hi-lo))
	n := int64(0)
	for _, e := range g.InEdges[lo:hi] {
		src := g.EdgeSrc[e]
		if level[src] >= level[v] {
			continue // φ updates flow strictly downward
		}
		k.Accumulate(&sc.ks, e, g.Beliefs[int(src)*s:int(src)*s+s])
		n++
	}
	if n == 0 {
		return
	}
	k.Finish(&sc.ks, g.Beliefs[int(v)*s:int(v)*s+s])
	res.Ops.EdgesProcessed += n
	res.Ops.MatrixOps += n * int64(s*s)
	res.Ops.LogOps += n*int64(s) + int64(s)
	res.Ops.MemLoads += n * int64(s)
	res.Ops.MemStores += int64(s)
}

// tradBackward folds the ψ messages of v's strictly-higher-level children
// back through their edge matrices — the reverse (row-major) direction.
// The combine's "prior" is the belief the forward sweep just produced.
func tradBackward(g *graph.Graph, k *kernel.Kernel, sc *runScratch, res *Result, v int32, level []int32) {
	if g.Observed[v] {
		return
	}
	res.Ops.NodesProcessed++
	s := g.States
	b := g.Beliefs[int(v)*s : int(v)*s+s]
	lo, hi := g.OutOffsets[v], g.OutOffsets[v+1]
	k.Begin(&sc.ks, b, int(hi-lo))
	n := int64(0)
	for _, e := range g.OutEdges[lo:hi] {
		dst := g.EdgeDst[e]
		if level[dst] <= level[v] {
			continue // ψ updates flow strictly upward
		}
		// Message from the child back through the edge matrix:
		// m[x_v] = Σ_{x_c} J[x_v, x_c]·b_c[x_c].
		k.AccumulateReverse(&sc.ks, e, g.Beliefs[int(dst)*s:int(dst)*s+s])
		n++
	}
	if n == 0 {
		return
	}
	k.Finish(&sc.ks, b)
	res.Ops.EdgesProcessed += n
	res.Ops.MatrixOps += n * int64(s*s)
	res.Ops.LogOps += n*int64(s) + int64(s)
	res.Ops.MemLoads += n * int64(s)
	res.Ops.MemStores += int64(s)
}
