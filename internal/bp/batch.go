package bp

import (
	"sync"

	"credo/internal/graph"
	"credo/internal/kernel"
	"credo/internal/telemetry"
)

// engBatch is the batched node engine's name in telemetry events.
const engBatch = "bp.batch"

// LaneResult is the per-query outcome of one lane of a batched run — the
// fields of Result that are meaningful per lane.
type LaneResult struct {
	// Iterations is the sweep at which this lane stopped: its own
	// convergence sweep, or the cap.
	Iterations int
	// Converged reports whether the lane's delta fell below the
	// threshold before the iteration cap.
	Converged bool
	// FinalDelta is the lane's global L1 belief delta at its last
	// processed sweep.
	FinalDelta float32
	// Updates counts the lane's belief recombinations — what a solo run
	// of the lane's query would have reported as Ops.NodesProcessed.
	Updates int64
	// Edges counts the lane's edge-message computations — the solo run's
	// Ops.EdgesProcessed.
	Edges int64
}

// BatchResult reports the outcome of a K-way batched run.
type BatchResult struct {
	// Lanes holds one entry per staged lane (length BatchState.Used).
	Lanes []LaneResult
	// Iterations is the number of sweeps executed — the slowest lane's
	// iteration count.
	Iterations int
	// Converged reports whether every lane converged.
	Converged bool
	// Ops are the abstract operation counts of the whole batch. Per-lane
	// algorithmic work (NodesProcessed, EdgesProcessed, MatrixOps, ...)
	// is counted once per lane, exactly as K solo runs would; the
	// random-order structure traffic (RandomLoads) is counted once per
	// sweep — that difference is the amortization the batch buys.
	Ops OpCounts
}

// batchScratch is the pooled per-run state of RunBatch.
type batchScratch struct {
	prev      []float32 // previous sweep's beliefs, SoA, NumNodes*States*K
	laneDelta []float32 // per-lane delta of the current sweep
	laneFinal []float32 // per-lane delta of the lane's last active sweep
	laneNodes []int64   // per-lane unclamped-node counts
	laneEdges []int64   // per-lane in-edge counts over unclamped nodes
	active    []bool    // per-lane liveness
	bks       kernel.BatchScratch
}

func growI64(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	return s[:n]
}

var batchScratchPool = sync.Pool{New: func() any { return new(batchScratch) }}

func getBatchScratch() *batchScratch { return batchScratchPool.Get().(*batchScratch) }

func (sc *batchScratch) release() {
	sc.bks.Counters = kernel.Counters{}
	batchScratchPool.Put(sc)
}

// RunBatch executes loopy BP for the K queries staged in bs over the
// shared structure g — the node paradigm, K lanes at a time. Every sweep
// walks the adjacency once; each node combine folds each in-edge's
// transposed joint matrix into all K lanes through the kernel layer's
// SoA batch path, so the structure traffic that makes the node paradigm
// memory-bound is paid once per sweep instead of once per query.
//
// Sweeps are full Jacobi passes: every unfrozen lane of every unclamped
// node reads the previous sweep's beliefs. The work queue option is
// ignored — per-lane frontiers would make the lanes walk different node
// sets and forfeit the SoA amortization. Each lane carries its own
// convergence state: a lane whose delta falls below the threshold is
// frozen (its beliefs stop changing, folds skip its writes) while the
// remaining lanes continue, so every lane reproduces its standalone
// K=1 run — bitwise, for the vanilla and damped kernels — regardless of
// how long its batch-mates take. Lanes beyond bs.Used are never touched.
func RunBatch(g *graph.Graph, bs *graph.BatchState, opts Options) BatchResult {
	return RunBatchInto(g, bs, opts, make([]LaneResult, bs.Used))
}

// RunBatchInto is RunBatch writing lane outcomes into caller-provided
// storage (len(lanes) >= bs.Used) — the allocation-free form for serving
// loops that pool their result slices.
func RunBatchInto(g *graph.Graph, bs *graph.BatchState, opts Options, lanes []LaneResult) BatchResult {
	sc := getBatchScratch()
	res := runBatch(g, bs, opts, sc, lanes)
	sc.release()
	return res
}

func runBatch(g *graph.Graph, bs *graph.BatchState, opts Options, sc *batchScratch, lanes []LaneResult) BatchResult {
	opts = opts.withDefaults(g.NumNodes)
	defer opts.Trace.Span(engBatch).End()
	s := g.States
	kk := bs.K
	used := bs.Used
	gatherLines := int64((s*kk*4 + 63) / 64) // cache lines per K-wide parent gather
	matLines := int64(0)
	if !g.SharedMatrix() {
		matLines = int64((s*s*4 + 63) / 64)
	}
	bk := kernel.NewBatch(g, opts.Kernel, kk)

	sc.prev = growF32(sc.prev, len(bs.Beliefs))
	prev := sc.prev
	sc.laneDelta = growF32(sc.laneDelta, kk)
	sc.laneFinal = growF32(sc.laneFinal, kk)
	sc.active = growBool(sc.active, kk)
	laneDelta, laneFinal, active := sc.laneDelta, sc.laneFinal, sc.active
	for l := 0; l < kk; l++ {
		active[l] = l < used
		laneFinal[l] = 0
	}
	lanes = lanes[:used]
	for l := range lanes {
		lanes[l] = LaneResult{}
	}

	// Per-lane unclamped-node and in-edge counts: a lane's solo run would
	// process exactly this many nodes (and fold this many edges) per sweep.
	sc.laneNodes = growI64(sc.laneNodes, kk)
	sc.laneEdges = growI64(sc.laneEdges, kk)
	laneNodes, laneEdges := sc.laneNodes, sc.laneEdges
	for l := 0; l < kk; l++ {
		laneNodes[l] = 0
		laneEdges[l] = 0
	}
	for v := 0; v < g.NumNodes; v++ {
		deg := int64(g.InOffsets[v+1] - g.InOffsets[v])
		for l := 0; l < used; l++ {
			if !bs.Observed[v*kk+l] {
				laneNodes[l]++
				laneEdges[l] += deg
			}
		}
	}

	var res BatchResult
	res.Lanes = lanes
	live := used

	probe := opts.Probe
	ctx, endTask := telemetry.BeginRun(engBatch)
	emitRunStart(probe, engBatch, int64(g.NumNodes)*int64(used), opts.Threshold)
	var lastNodes, lastEdges int64

	for iter := 0; iter < opts.MaxIterations && live > 0; iter++ {
		res.Iterations = iter + 1
		res.Ops.Iterations++
		endIter := telemetry.StartRegion(ctx, "iteration")
		copy(prev, bs.Beliefs)
		for l := 0; l < kk; l++ {
			laneDelta[l] = 0
		}

		for v := int32(0); v < int32(g.NumNodes); v++ {
			deg, wrote := bk.NodeUpdateBatch(&sc.bks, bs.Beliefs, v, prev, bs.Priors, bs.Observed, active)
			if wrote == 0 {
				continue
			}
			d64, w64 := int64(deg), int64(wrote)
			res.Ops.NodesProcessed += w64
			res.Ops.EdgesProcessed += d64 * w64
			res.Ops.RandomLoads += d64 * (gatherLines + matLines) // once: the amortized structure pass
			res.Ops.MemLoads += d64*int64(s)*w64 + 2*int64(s)*w64
			res.Ops.MatrixOps += d64 * int64(s*s) * w64
			res.Ops.LogOps += (d64*int64(s) + int64(s)) * w64
			res.Ops.MemStores += int64(s) * w64

			// Per-lane L1 change, accumulated node-by-node in the same
			// order a solo run's global sum grows (graph.L1Diff per node,
			// states ascending), so lane convergence decisions match the
			// standalone run bit-for-bit.
			base := int(v) * s * kk
			for l := 0; l < used; l++ {
				if !active[l] || bs.Observed[int(v)*kk+l] {
					continue
				}
				var d float32
				for j := 0; j < s; j++ {
					x := bs.Beliefs[base+j*kk+l] - prev[base+j*kk+l]
					if x < 0 {
						x = -x
					}
					d += x
				}
				laneDelta[l] += d
			}
		}

		var sum float32
		for l := 0; l < used; l++ {
			if !active[l] {
				continue
			}
			sum += laneDelta[l]
			laneFinal[l] = laneDelta[l]
			lanes[l].Iterations = iter + 1
			lanes[l].FinalDelta = laneDelta[l]
			lanes[l].Updates += laneNodes[l]
			lanes[l].Edges += laneEdges[l]
			if laneDelta[l] < opts.Threshold {
				lanes[l].Converged = true
				active[l] = false
				live--
			}
		}
		endIter()
		if probe != nil {
			probe.Emit(telemetry.Event{
				Kind:     telemetry.KindIteration,
				Engine:   engBatch,
				Iter:     int32(iter + 1),
				Delta:    sum,
				Updated:  res.Ops.NodesProcessed - lastNodes,
				Edges:    res.Ops.EdgesProcessed - lastEdges,
				Active:   int64(live),
				Items:    int64(used),
				FastPath: sc.bks.Counters.FastPath,
				Rescales: sc.bks.Counters.Rescales,
			})
			lastNodes, lastEdges = res.Ops.NodesProcessed, res.Ops.EdgesProcessed
		}
	}

	res.Converged = live == 0
	res.Ops.KernelFastPath += sc.bks.Counters.FastPath
	res.Ops.RescaleOps += sc.bks.Counters.Rescales
	if probe != nil {
		var r Result
		r.Iterations = res.Iterations
		r.Converged = res.Converged
		for l := 0; l < used; l++ {
			r.FinalDelta += laneFinal[l]
		}
		r.Ops = res.Ops
		emitRunEnd(probe, engBatch, &r)
	}
	endTask()
	return res
}
