package bp

import (
	"math"
	"testing"

	"credo/internal/gen"
	"credo/internal/graph"
)

func TestEliminationMatchesBruteForceOnTree(t *testing.T) {
	g, err := gen.DirectedTree(9, 2, gen.Config{Seed: 3, States: 3})
	if err != nil {
		t.Fatal(err)
	}
	want, err := BruteForceMarginals(g)
	if err != nil {
		t.Fatal(err)
	}
	got, err := AllMarginals(g)
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		for j := range want[v] {
			if math.Abs(got[v][j]-want[v][j]) > 1e-9 {
				t.Fatalf("node %d state %d: VE %v, brute force %v", v, j, got[v][j], want[v][j])
			}
		}
	}
}

func TestEliminationMatchesBruteForceOnLoopyGraph(t *testing.T) {
	// A loopy graph ExactTree rejects but VE handles exactly.
	g, err := gen.Synthetic(8, 20, gen.Config{Seed: 7, States: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := ExactTree(g.Clone()); err == nil {
		t.Fatal("expected a cyclic graph")
	}
	want, err := BruteForceMarginals(g)
	if err != nil {
		t.Fatal(err)
	}
	got, err := AllMarginals(g)
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		for j := range want[v] {
			if math.Abs(got[v][j]-want[v][j]) > 1e-9 {
				t.Fatalf("node %d state %d: VE %v, brute force %v", v, j, got[v][j], want[v][j])
			}
		}
	}
}

func TestEliminationWithObservation(t *testing.T) {
	g, _ := familyOut(t)
	_ = g.Observe(2, 0) // light-on = true
	want, err := BruteForceMarginals(g)
	if err != nil {
		t.Fatal(err)
	}
	got, err := VariableElimination(g, 0) // family-out
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[0]-want[0][0]) > 1e-9 {
		t.Errorf("posterior = %v, oracle %v", got[0], want[0][0])
	}
}

func TestEliminationBeatsBruteForceScale(t *testing.T) {
	// 40 binary nodes on a path: 2^40 joint states is far beyond the
	// brute-force cap, but the treewidth is 1 so VE is instant.
	g, err := gen.DirectedTree(40, 1, gen.Config{Seed: 5, States: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BruteForceMarginals(g); err == nil {
		t.Fatal("brute force should refuse 2^40 states")
	}
	got, err := VariableElimination(g, 39)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, p := range got {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("marginal sums to %v", sum)
	}
	// Cross-check the chain end against exact tree BP.
	g2, err := gen.DirectedTree(40, 1, gen.Config{Seed: 5, States: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := ExactTree(g2); err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[0]-float64(g2.Belief(39)[0])) > 1e-5 {
		t.Errorf("VE %v vs exact tree %v", got[0], g2.Belief(39)[0])
	}
}

func TestEliminationTreewidthGuard(t *testing.T) {
	// A dense graph at 32 states blows the factor budget quickly.
	g, err := gen.Synthetic(30, 500, gen.Config{Seed: 2, States: 32})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := VariableElimination(g, 0); err == nil {
		t.Error("expected a treewidth budget error")
	}
}

func TestEliminationQueryRange(t *testing.T) {
	g, err := gen.Synthetic(5, 10, gen.Config{Seed: 1, States: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := VariableElimination(g, -1); err == nil {
		t.Error("negative query accepted")
	}
	if _, err := VariableElimination(g, 5); err == nil {
		t.Error("out-of-range query accepted")
	}
}

func TestEliminationSelfLoop(t *testing.T) {
	b := graph.NewBuilder(2)
	_, _ = b.AddNode([]float32{0.5, 0.5})
	m := graph.NewJointMatrix(2, 2)
	m.Set(0, 0, 0.9)
	m.Set(0, 1, 0.1)
	m.Set(1, 0, 0.4)
	m.Set(1, 1, 0.6)
	_ = b.AddEdge(0, 0, &m)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	got, err := VariableElimination(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	// p ∝ prior · diag = {0.5·0.9, 0.5·0.6} -> {0.6, 0.4}.
	if math.Abs(got[0]-0.6) > 1e-6 || math.Abs(got[1]-0.4) > 1e-6 {
		t.Errorf("self-loop marginal = %v, want [0.6 0.4]", got)
	}
}
