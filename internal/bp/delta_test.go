package bp

import (
	"testing"

	"credo/internal/gen"
	"credo/internal/graph"
	"credo/internal/kernel"
)

// Delta-path scheduling tests: RunResidualFrom driven by the dynamic
// layer's TakeDeltaSeeds frontier. The invariant under test is the
// no-re-enqueue discipline on the delta path — the RunResidual
// regression class of the early warm-start work, now across the
// convergence variants: a mutation mid-stream must seed only work that
// is genuinely above the threshold, and a re-convergence must never
// strand a node short of the fixpoint (the damped engines' failure mode
// before the self-re-enqueue fix).

func deltaTestGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := gen.Synthetic(150, 450, gen.Config{Seed: 21, States: 2, Shared: true, Keep: 0.6})
	if err != nil {
		t.Fatalf("gen: %v", err)
	}
	return g
}

func variantOptions() map[string]Options {
	return map[string]Options{
		"vanilla":  {},
		"damped":   {Variant: kernel.VariantDamped},
		"circular": {Variant: kernel.VariantCircular},
	}
}

// TestDeltaIdempotentMutationSchedulesNothing pins the sharp edge of the
// no-re-enqueue rule: a mutation that does not move any belief (a prior
// rewritten to its current value) produces a seed frontier whose
// residuals are all below the threshold, so the delta run applies zero
// updates — converged nodes stay out of the queue under every variant.
func TestDeltaIdempotentMutationSchedulesNothing(t *testing.T) {
	for name, o := range variantOptions() {
		t.Run(name, func(t *testing.T) {
			g := deltaTestGraph(t)
			if res := RunResidual(g, o); !res.Converged {
				t.Fatalf("cold run did not converge")
			}
			// Rewrite node 7's prior with its exact current value.
			same := append([]float32(nil), g.Prior(7)...)
			if err := g.UpdatePrior(7, same); err != nil {
				t.Fatalf("UpdatePrior: %v", err)
			}
			seeds := g.TakeDeltaSeeds()
			if len(seeds) == 0 {
				t.Fatal("no seeds for a prior update")
			}
			res := RunResidualFrom(g, o, seeds)
			if !res.Converged {
				t.Fatalf("no-op delta run did not converge")
			}
			if res.Ops.NodesProcessed != 0 {
				t.Errorf("no-op mutation applied %d updates, want 0", res.Ops.NodesProcessed)
			}
			if res.Ops.QueuePushes != 0 {
				t.Errorf("no-op mutation pushed %d queue entries, want 0", res.Ops.QueuePushes)
			}
		})
	}
}

// TestDeltaMutationStaysLocal verifies that a single local mutation
// re-converges with a small fraction of a cold run's updates under every
// variant: the frontier spreads only as far as residuals stay above the
// threshold.
func TestDeltaMutationStaysLocal(t *testing.T) {
	for name, o := range variantOptions() {
		t.Run(name, func(t *testing.T) {
			g := deltaTestGraph(t)
			cold := RunResidual(g, o)
			if !cold.Converged {
				t.Fatalf("cold run did not converge")
			}
			if err := g.SetEvidence(3, 1); err != nil {
				t.Fatalf("SetEvidence: %v", err)
			}
			res := RunResidualFrom(g, o, g.TakeDeltaSeeds())
			if !res.Converged {
				t.Fatalf("delta run did not converge (delta %g)", res.FinalDelta)
			}
			if res.Ops.NodesProcessed == 0 {
				t.Fatal("evidence mutation applied no updates")
			}
			if res.Ops.NodesProcessed*2 >= cold.Ops.NodesProcessed {
				t.Errorf("delta run applied %d updates, cold run %d — not local", res.Ops.NodesProcessed, cold.Ops.NodesProcessed)
			}
		})
	}
}

// TestDampedDeltaReachesFixpoint is the regression test for the damped
// self-re-enqueue fix: a large prior swing on one node whose neighbours
// barely move must still be carried all the way to the fixpoint, not
// stranded d·gap short of it. Before the fix, the single seed was popped
// once, moved (1−d) of the way, and — its neighbours staying below the
// threshold — was never re-enqueued.
func TestDampedDeltaReachesFixpoint(t *testing.T) {
	g := deltaTestGraph(t)
	o := Options{Variant: kernel.VariantDamped}
	if res := RunResidual(g, o); !res.Converged {
		t.Fatalf("cold run did not converge")
	}
	if err := g.UpdatePrior(11, []float32{0.95, 0.05}); err != nil {
		t.Fatalf("UpdatePrior: %v", err)
	}
	if res := RunResidualFrom(g, o, g.TakeDeltaSeeds()); !res.Converged {
		t.Fatalf("delta run did not converge")
	}

	// Oracle: the same damped engine, cold, on a clone of the mutated
	// graph restarted from priors.
	oracle := g.Clone()
	oracle.ResetBeliefs()
	if res := RunResidual(oracle, o); !res.Converged {
		t.Fatalf("oracle run did not converge")
	}
	var worst float32
	for v := int32(0); v < int32(g.NumNodes); v++ {
		if d := graph.L1Diff(g.Belief(v), oracle.Belief(v)); d > worst {
			worst = d
		}
	}
	if worst > 2e-2 {
		t.Errorf("damped delta fixpoint off by %g — node stranded short of the fixpoint", worst)
	}
}

// TestDeltaStructuralEdgeAddSchedulesDestination covers the structural
// path end to end on the residual engine: adding an edge re-converges
// the destination's region, and the merged graph's fixpoint matches a
// cold run on the same graph.
func TestDeltaStructuralEdgeAddSchedulesDestination(t *testing.T) {
	for name, o := range variantOptions() {
		t.Run(name, func(t *testing.T) {
			g := deltaTestGraph(t)
			if res := RunResidual(g, o); !res.Converged {
				t.Fatalf("cold run did not converge")
			}
			// Strengthen node 9's pull on node 42 with a fresh edge (shared
			// matrix mode: no per-edge matrix).
			if err := g.AddEdgeDelta(9, 42, nil); err != nil {
				t.Fatalf("AddEdgeDelta: %v", err)
			}
			seeds := g.TakeDeltaSeeds()
			if res := RunResidualFrom(g, o, seeds); !res.Converged {
				t.Fatalf("delta run did not converge")
			}
			oracle := g.Clone()
			oracle.ResetBeliefs()
			if res := RunResidual(oracle, o); !res.Converged {
				t.Fatalf("oracle run did not converge")
			}
			var worst float32
			for v := int32(0); v < int32(g.NumNodes); v++ {
				if d := graph.L1Diff(g.Belief(v), oracle.Belief(v)); d > worst {
					worst = d
				}
			}
			if worst > 2e-2 {
				t.Errorf("delta fixpoint off by %g after structural add", worst)
			}
		})
	}
}
