package bp

import (
	"math"
	"testing"
	"testing/quick"

	"credo/internal/gen"
	"credo/internal/graph"
)

// TestPropertyBeliefsAlwaysValid: every engine leaves normalized, finite
// beliefs for arbitrary seeds, widths and densities.
func TestPropertyBeliefsAlwaysValid(t *testing.T) {
	engines := []struct {
		name string
		run  func(*graph.Graph, Options) Result
	}{
		{"node", RunNode},
		{"edge", RunEdge},
		{"residual", RunResidual},
	}
	f := func(seed int64, statesRaw, densityRaw uint8, queue bool) bool {
		states := 2 + int(statesRaw)%6
		n := 20 + int(seed%40+40)%40
		m := n * (1 + int(densityRaw)%5)
		g, err := gen.Synthetic(n, m, gen.Config{Seed: seed, States: states})
		if err != nil {
			return false
		}
		for _, e := range engines {
			c := g.Clone()
			e.run(c, Options{MaxIterations: 30, WorkQueue: queue})
			if err := c.Validate(); err != nil {
				t.Logf("%s: %v", e.name, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestPropertyObservationMonotone: observing a node can only sharpen its
// own belief to the indicator, never anything else.
func TestPropertyObservationMonotone(t *testing.T) {
	f := func(seed int64, nodeRaw, stateRaw uint8) bool {
		g, err := gen.Synthetic(50, 200, gen.Config{Seed: seed, States: 3})
		if err != nil {
			return false
		}
		v := int32(int(nodeRaw) % g.NumNodes)
		s := int(stateRaw) % g.States
		if err := g.Observe(v, s); err != nil {
			return false
		}
		RunEdge(g, Options{MaxIterations: 20})
		b := g.Belief(v)
		for j := range b {
			want := float32(0)
			if j == s {
				want = 1
			}
			if b[j] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestPropertyConvergenceMonotoneInThreshold: a looser threshold never
// needs more iterations than a tighter one.
func TestPropertyConvergenceMonotoneInThreshold(t *testing.T) {
	f := func(seed int64) bool {
		g, err := gen.Synthetic(100, 400, gen.Config{Seed: seed, States: 2})
		if err != nil {
			return false
		}
		loose := RunNode(g.Clone(), Options{Threshold: 0.01})
		tight := RunNode(g.Clone(), Options{Threshold: 0.0001})
		return loose.Iterations <= tight.Iterations
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestPropertyExactTreeIsDistribution: exact inference on random directed
// trees yields marginals matching the brute-force oracle.
func TestPropertyExactTreeOracle(t *testing.T) {
	f := func(seed int64, branchRaw uint8) bool {
		branching := 1 + int(branchRaw)%3
		g, err := gen.DirectedTree(8, branching, gen.Config{Seed: seed, States: 2})
		if err != nil {
			return false
		}
		want, err := BruteForceMarginals(g)
		if err != nil {
			return false
		}
		if err := ExactTree(g); err != nil {
			return false
		}
		for v := 0; v < g.NumNodes; v++ {
			for j := 0; j < g.States; j++ {
				if math.Abs(float64(g.Belief(int32(v))[j])-want[v][j]) > 1e-4 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestPropertyDampedFixedPointAgrees: damping changes the trajectory, not
// the destination.
func TestPropertyDampedFixedPointAgrees(t *testing.T) {
	f := func(seed int64, dampRaw uint8) bool {
		damping := float32(dampRaw%80) / 100 // [0, 0.79]
		g1, err := gen.Synthetic(80, 320, gen.Config{Seed: seed, States: 2})
		if err != nil {
			return false
		}
		g2 := g1.Clone()
		r1 := RunEdge(g1, Options{})
		r2 := RunEdge(g2, Options{Damping: damping})
		if !r1.Converged || !r2.Converged {
			return true // non-convergent seeds carry no fixed-point claim
		}
		return maxBeliefDiff(g1, g2) < 2e-2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
