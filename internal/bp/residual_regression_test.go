package bp

import (
	"testing"

	"credo/internal/bif"
	"credo/internal/graph"
)

// TestResidualSprinklerUpdateCounts locks the exact, deterministic work
// profile of the sequential residual engine on the sprinkler network as
// an MRF. It is the regression test for the converged-successor bug: the
// successor-refresh loop used to re-enqueue every successor even when its
// refreshed residual was already at or below the element threshold, so
// converged nodes sat in the queue only to be popped and discarded
// (QueuePushes was 46 on this network; the applied-update counts below
// were unchanged by the fix, which is the point — only queue traffic
// shrinks).
func TestResidualSprinklerUpdateCounts(t *testing.T) {
	g, err := bif.ParseFile("../bif/testdata/sprinkler.bif")
	if err != nil {
		t.Fatal(err)
	}
	g, err = g.Undirected()
	if err != nil {
		t.Fatal(err)
	}
	oracle := g.Clone()
	ores := RunNode(oracle, Options{})
	if !ores.Converged {
		t.Fatal("oracle sweep did not converge")
	}

	res := RunResidual(g, Options{})
	if !res.Converged {
		t.Fatalf("residual run did not converge (final delta %g)", res.FinalDelta)
	}
	want := struct {
		iterations     int
		nodesProcessed int64
		edgesProcessed int64
		queuePushes    int64
	}{
		iterations:     6,
		nodesProcessed: 21,
		edgesProcessed: 134,
		queuePushes:    38,
	}
	if res.Iterations != want.iterations {
		t.Errorf("Iterations = %d, want %d", res.Iterations, want.iterations)
	}
	if res.Ops.NodesProcessed != want.nodesProcessed {
		t.Errorf("NodesProcessed = %d, want %d", res.Ops.NodesProcessed, want.nodesProcessed)
	}
	if res.Ops.EdgesProcessed != want.edgesProcessed {
		t.Errorf("EdgesProcessed = %d, want %d", res.Ops.EdgesProcessed, want.edgesProcessed)
	}
	if res.Ops.QueuePushes != want.queuePushes {
		t.Errorf("QueuePushes = %d, want %d", res.Ops.QueuePushes, want.queuePushes)
	}
	// The fix must not move the fixpoint.
	for v := int32(0); v < int32(g.NumNodes); v++ {
		if d := graph.L1Diff(g.Belief(v), oracle.Belief(v)); d > 2e-2 {
			t.Errorf("node %d diverges from the sweep oracle by %g", v, d)
		}
	}
}
