package bp

import (
	"fmt"

	"credo/internal/graph"
)

// maxEnumerationStates bounds the joint state space BruteForceMarginals is
// willing to enumerate.
const maxEnumerationStates = 1 << 24

// BruteForceMarginals computes the exact marginal distribution of every
// node by enumerating the joint state space of the pairwise model
//
//	p(x) ∝ Π_v prior_v(x_v) · Π_e J_e(x_src, x_dst).
//
// It is the test oracle for the exact-inference engines and is only
// feasible for tiny networks (states^nodes combinations).
func BruteForceMarginals(g *graph.Graph) ([][]float64, error) {
	s := g.States
	total := 1
	for i := 0; i < g.NumNodes; i++ {
		if total > maxEnumerationStates/s {
			return nil, fmt.Errorf("bp: brute force infeasible: %d^%d joint states", s, g.NumNodes)
		}
		total *= s
	}

	marginals := make([][]float64, g.NumNodes)
	for v := range marginals {
		marginals[v] = make([]float64, s)
	}

	assign := make([]int, g.NumNodes)
	var z float64
	for idx := 0; idx < total; idx++ {
		rem := idx
		for v := 0; v < g.NumNodes; v++ {
			assign[v] = rem % s
			rem /= s
		}
		w := 1.0
		for v := 0; v < g.NumNodes; v++ {
			w *= float64(g.Prior(int32(v))[assign[v]])
			if w == 0 {
				break
			}
		}
		if w != 0 {
			for e := 0; e < g.NumEdges; e++ {
				w *= float64(g.Matrix(int32(e)).At(assign[g.EdgeSrc[e]], assign[g.EdgeDst[e]]))
				if w == 0 {
					break
				}
			}
		}
		if w == 0 {
			continue
		}
		z += w
		for v := 0; v < g.NumNodes; v++ {
			marginals[v][assign[v]] += w
		}
	}
	if z == 0 {
		return nil, fmt.Errorf("bp: brute force: model has zero total mass")
	}
	for v := range marginals {
		for j := range marginals[v] {
			marginals[v][j] /= z
		}
	}
	return marginals, nil
}
