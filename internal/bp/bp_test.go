package bp

import (
	"math"
	"testing"

	"credo/internal/gen"
	"credo/internal/graph"
)

// chainGraph builds a 3-node directed chain 0→1→2 with the given coupling.
func chainGraph(t *testing.T, states int, keep float32) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(states)
	for i := 0; i < 3; i++ {
		if _, err := b.AddNode(nil); err != nil {
			t.Fatal(err)
		}
	}
	m := graph.DiagonalJointMatrix(states, keep)
	if err := b.AddEdge(0, 1, &m); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(1, 2, &m); err != nil {
		t.Fatal(err)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func maxBeliefDiff(a, b *graph.Graph) float64 {
	var maxd float64
	for i := range a.Beliefs {
		d := math.Abs(float64(a.Beliefs[i] - b.Beliefs[i]))
		if d > maxd {
			maxd = d
		}
	}
	return maxd
}

func TestNodeEdgeEquivalence(t *testing.T) {
	for _, states := range []int{2, 3, 8} {
		g1, err := gen.Synthetic(200, 800, gen.Config{Seed: 42, States: states})
		if err != nil {
			t.Fatal(err)
		}
		g2 := g1.Clone()
		r1 := RunNode(g1, Options{})
		r2 := RunEdge(g2, Options{})
		if d := maxBeliefDiff(g1, g2); d > 1e-3 {
			t.Errorf("states=%d: node/edge beliefs differ by %v", states, d)
		}
		if r1.Iterations == 0 || r2.Iterations == 0 {
			t.Errorf("states=%d: zero iterations (%d/%d)", states, r1.Iterations, r2.Iterations)
		}
	}
}

func TestWorkQueueEquivalence(t *testing.T) {
	g1, err := gen.Synthetic(300, 1200, gen.Config{Seed: 11, States: 3})
	if err != nil {
		t.Fatal(err)
	}
	g2 := g1.Clone()
	g3 := g1.Clone()
	g4 := g1.Clone()
	RunNode(g1, Options{})
	RunNode(g2, Options{WorkQueue: true})
	RunEdge(g3, Options{})
	RunEdge(g4, Options{WorkQueue: true})
	if d := maxBeliefDiff(g1, g2); d > 5e-3 {
		t.Errorf("node with/without queue differ by %v", d)
	}
	if d := maxBeliefDiff(g3, g4); d > 5e-3 {
		t.Errorf("edge with/without queue differ by %v", d)
	}
}

func TestWorkQueueReducesWork(t *testing.T) {
	g1, err := gen.Synthetic(500, 2000, gen.Config{Seed: 5, States: 2})
	if err != nil {
		t.Fatal(err)
	}
	g2 := g1.Clone()
	r1 := RunNode(g1, Options{})
	r2 := RunNode(g2, Options{WorkQueue: true})
	if r2.Ops.NodesProcessed >= r1.Ops.NodesProcessed {
		t.Errorf("work queue did not reduce node processing: %d >= %d",
			r2.Ops.NodesProcessed, r1.Ops.NodesProcessed)
	}
	if r2.Ops.QueuePushes == 0 {
		t.Error("work queue recorded no pushes")
	}
}

func TestConvergenceOnChain(t *testing.T) {
	g := chainGraph(t, 2, 0.9)
	if err := g.Observe(0, 0); err != nil {
		t.Fatal(err)
	}
	res := RunNode(g, Options{})
	if !res.Converged {
		t.Fatalf("chain did not converge: %+v", res)
	}
	// Information must flow down the chain: node 2 leans toward state 0.
	b := g.Belief(2)
	if b[0] <= b[1] {
		t.Errorf("node 2 belief %v does not lean toward observed state", b)
	}
	// Node 1 (closer to evidence) leans harder than node 2.
	if g.Belief(1)[0] <= b[0] {
		t.Errorf("belief should attenuate with distance: node1=%v node2=%v", g.Belief(1), b)
	}
}

func TestObservedNodeStaysClamped(t *testing.T) {
	g, err := gen.Synthetic(50, 200, gen.Config{Seed: 3, States: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Observe(7, 2); err != nil {
		t.Fatal(err)
	}
	for _, run := range []func(*graph.Graph, Options) Result{RunNode, RunEdge} {
		c := g.Clone()
		run(c, Options{})
		b := c.Belief(7)
		if b[0] != 0 || b[1] != 0 || b[2] != 1 {
			t.Errorf("observed node drifted to %v", b)
		}
	}
}

func TestBeliefsStayNormalized(t *testing.T) {
	for _, run := range []struct {
		name string
		fn   func(*graph.Graph, Options) Result
	}{{"node", RunNode}, {"edge", RunEdge}} {
		t.Run(run.name, func(t *testing.T) {
			g, err := gen.PowerLaw(300, 3000, gen.Config{Seed: 9, States: 4})
			if err != nil {
				t.Fatal(err)
			}
			run.fn(g, Options{MaxIterations: 50})
			if err := g.Validate(); err != nil {
				t.Errorf("beliefs invalid after %s run: %v", run.name, err)
			}
		})
	}
}

// TestHighDegreeHubNoUnderflow exercises the log-space accumulator: a hub
// with thousands of in-edges must not collapse to uniform due to float32
// underflow.
func TestHighDegreeHubNoUnderflow(t *testing.T) {
	b := graph.NewBuilder(2)
	_ = b.SetShared(graph.DiagonalJointMatrix(2, 0.7))
	hub, _ := b.AddNode([]float32{0.5, 0.5})
	const leaves = 3000
	for i := 0; i < leaves; i++ {
		leaf, _ := b.AddNode([]float32{0.9, 0.1})
		if err := b.AddEdge(leaf, hub, nil); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	RunNode(g, Options{MaxIterations: 5})
	hb := g.Belief(hub)
	if !(hb[0] > 0.99) {
		t.Errorf("hub belief %v; expected overwhelming evidence for state 0", hb)
	}
	if math.IsNaN(float64(hb[0])) {
		t.Error("hub belief is NaN")
	}
}

func TestSharedVsPerEdgeSameCoupling(t *testing.T) {
	// A shared diagonal matrix and identical per-edge diagonal matrices
	// must produce identical propagation.
	mk := func(shared bool) *graph.Graph {
		b := graph.NewBuilder(2)
		m := graph.DiagonalJointMatrix(2, 0.8)
		if shared {
			_ = b.SetShared(m)
		}
		for i := 0; i < 10; i++ {
			_, _ = b.AddNode([]float32{0.5, 0.5})
		}
		for i := 0; i < 9; i++ {
			var mp *graph.JointMatrix
			if !shared {
				mm := graph.DiagonalJointMatrix(2, 0.8)
				mp = &mm
			}
			_ = b.AddEdge(int32(i), int32(i+1), mp)
		}
		g, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		_ = g.Observe(0, 1)
		return g
	}
	g1, g2 := mk(true), mk(false)
	RunEdge(g1, Options{})
	RunEdge(g2, Options{})
	if d := maxBeliefDiff(g1, g2); d > 1e-6 {
		t.Errorf("shared vs per-edge identical matrices differ by %v", d)
	}
}

func TestMaxIterationsRespected(t *testing.T) {
	g, err := gen.Synthetic(100, 500, gen.Config{Seed: 2, States: 2})
	if err != nil {
		t.Fatal(err)
	}
	res := RunNode(g, Options{MaxIterations: 3, Threshold: 1e-12})
	if res.Iterations > 3 {
		t.Errorf("ran %d iterations, cap was 3", res.Iterations)
	}
	if res.Converged && res.FinalDelta >= 1e-12 {
		t.Error("reported convergence without meeting threshold")
	}
}

func TestExpNormalize(t *testing.T) {
	dst := make([]float32, 3)
	ExpNormalize(dst, []float32{1, 1, 1}, []float32{0, 0, 0})
	for _, v := range dst {
		if math.Abs(float64(v)-1.0/3) > 1e-6 {
			t.Fatalf("uniform case = %v", dst)
		}
	}
	// Huge negative accumulators must not produce NaN.
	ExpNormalize(dst, []float32{1, 1, 1}, []float32{-4000, -4000, -4000})
	var sum float32
	for _, v := range dst {
		if math.IsNaN(float64(v)) {
			t.Fatal("NaN from large negative accumulator")
		}
		sum += v
	}
	if math.Abs(float64(sum)-1) > 1e-5 {
		t.Fatalf("sum = %v, want 1", sum)
	}
	// Zero prior mass everywhere degrades to uniform.
	ExpNormalize(dst, []float32{0, 0, 0}, []float32{0, 0, 0})
	if dst[0] != dst[1] || dst[1] != dst[2] {
		t.Fatalf("zero-prior case = %v, want uniform", dst)
	}
}
