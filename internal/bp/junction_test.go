package bp

import (
	"math"
	"testing"

	"credo/internal/gen"
	"credo/internal/graph"
)

func jtAllMarginals(t *testing.T, g *graph.Graph) [][]float64 {
	t.Helper()
	jt, err := NewJunctionTree(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := jt.Calibrate(); err != nil {
		t.Fatal(err)
	}
	out := make([][]float64, g.NumNodes)
	for v := int32(0); v < int32(g.NumNodes); v++ {
		m, err := jt.Marginal(v)
		if err != nil {
			t.Fatal(err)
		}
		out[v] = m
	}
	return out
}

func TestJunctionTreeMatchesBruteForceTree(t *testing.T) {
	g, err := gen.DirectedTree(10, 2, gen.Config{Seed: 8, States: 3})
	if err != nil {
		t.Fatal(err)
	}
	want, err := BruteForceMarginals(g)
	if err != nil {
		t.Fatal(err)
	}
	got := jtAllMarginals(t, g)
	for v := range want {
		for j := range want[v] {
			if math.Abs(got[v][j]-want[v][j]) > 1e-9 {
				t.Fatalf("node %d state %d: JT %v, brute force %v", v, j, got[v][j], want[v][j])
			}
		}
	}
}

func TestJunctionTreeMatchesBruteForceLoopy(t *testing.T) {
	for _, seed := range []int64{1, 7, 13} {
		g, err := gen.Synthetic(9, 24, gen.Config{Seed: seed, States: 2})
		if err != nil {
			t.Fatal(err)
		}
		want, err := BruteForceMarginals(g)
		if err != nil {
			t.Fatal(err)
		}
		got := jtAllMarginals(t, g)
		for v := range want {
			for j := range want[v] {
				if math.Abs(got[v][j]-want[v][j]) > 1e-9 {
					t.Fatalf("seed %d node %d state %d: JT %v, brute force %v", seed, v, j, got[v][j], want[v][j])
				}
			}
		}
	}
}

func TestJunctionTreeMatchesVariableElimination(t *testing.T) {
	// Larger than brute force can handle; VE is the oracle.
	g, err := gen.Synthetic(40, 70, gen.Config{Seed: 21, States: 2})
	if err != nil {
		t.Fatal(err)
	}
	got := jtAllMarginals(t, g)
	for _, v := range []int32{0, 7, 19, 39} {
		want, err := VariableElimination(g, v)
		if err != nil {
			t.Skipf("treewidth too large for VE on this seed: %v", err)
		}
		for j := range want {
			if math.Abs(got[v][j]-want[j]) > 1e-8 {
				t.Fatalf("node %d state %d: JT %v, VE %v", v, j, got[v][j], want[j])
			}
		}
	}
}

func TestJunctionTreeWithObservation(t *testing.T) {
	g, _ := familyOut(t)
	_ = g.Observe(2, 0) // light-on = true
	want, err := BruteForceMarginals(g)
	if err != nil {
		t.Fatal(err)
	}
	got := jtAllMarginals(t, g)
	if math.Abs(got[0][0]-want[0][0]) > 1e-9 {
		t.Errorf("posterior p(family-out) = %v, oracle %v", got[0][0], want[0][0])
	}
}

func TestJunctionTreeDisconnectedAndIsolated(t *testing.T) {
	b := graph.NewBuilder(2)
	_ = b.SetShared(graph.DiagonalJointMatrix(2, 0.8))
	for i := 0; i < 5; i++ {
		_, _ = b.AddNode([]float32{0.3, 0.7})
	}
	// Component 1: 0-1; component 2: 2-3; node 4 isolated.
	_ = b.AddEdge(0, 1, nil)
	_ = b.AddEdge(2, 3, nil)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	want, err := BruteForceMarginals(g)
	if err != nil {
		t.Fatal(err)
	}
	got := jtAllMarginals(t, g)
	for v := range want {
		for j := range want[v] {
			if math.Abs(got[v][j]-want[v][j]) > 1e-9 {
				t.Fatalf("node %d: JT %v, oracle %v", v, got[v], want[v])
			}
		}
	}
}

func TestJunctionTreeTreewidthGuard(t *testing.T) {
	g, err := gen.Synthetic(24, 250, gen.Config{Seed: 3, States: 32})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewJunctionTree(g); err == nil {
		t.Error("dense 32-state graph accepted; expected treewidth budget error")
	}
}

func TestJunctionTreeAPIContracts(t *testing.T) {
	g, err := gen.DirectedTree(5, 2, gen.Config{Seed: 1, States: 2})
	if err != nil {
		t.Fatal(err)
	}
	jt, err := NewJunctionTree(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := jt.Marginal(0); err == nil {
		t.Error("Marginal before Calibrate accepted")
	}
	if err := jt.Calibrate(); err != nil {
		t.Fatal(err)
	}
	if _, err := jt.Marginal(-1); err == nil {
		t.Error("negative node accepted")
	}
	if _, err := jt.Marginal(99); err == nil {
		t.Error("out-of-range node accepted")
	}
	if jt.Width() < 2 {
		t.Errorf("tree width = %d, want >= 2 for a tree with edges", jt.Width())
	}
	var sum float64
	m, err := jt.Marginal(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range m {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("marginal sums to %v", sum)
	}
}

func TestJunctionTreeChainWidth(t *testing.T) {
	// A chain has treewidth 1: cliques of size 2.
	g, err := gen.DirectedTree(30, 1, gen.Config{Seed: 2, States: 2})
	if err != nil {
		t.Fatal(err)
	}
	jt, err := NewJunctionTree(g)
	if err != nil {
		t.Fatal(err)
	}
	if jt.Width() != 2 {
		t.Errorf("chain clique width = %d, want 2", jt.Width())
	}
}
