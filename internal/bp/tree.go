package bp

import (
	"errors"
	"fmt"

	"credo/internal/graph"
)

// ExactTree runs the classical two-pass sum-product algorithm (paper §2.1,
// the pre-loopy form of BP) on a network whose directed edges form a forest
// when viewed as undirected links. Each directed edge is one pairwise
// factor; messages flow both ways along it (λ upward, π downward), and the
// resulting beliefs are the exact marginals of the pairwise model
//
//	p(x) ∝ Π_v prior_v(x_v) · Π_e J_e(x_src, x_dst).
//
// It returns an error when the undirected structure contains a cycle
// (including the two-directed-edges-per-link representation used by the
// loopy engines, which forms length-2 factor cycles).
func ExactTree(g *graph.Graph) error {
	s := g.States
	type half struct {
		nbr  int32
		edge int32
		fwd  bool // true when this node is the edge's source
	}
	adj := make([][]half, g.NumNodes)
	for e := 0; e < g.NumEdges; e++ {
		u, v := g.EdgeSrc[e], g.EdgeDst[e]
		if u == v {
			return fmt.Errorf("bp: exact tree: self-loop on node %d", u)
		}
		adj[u] = append(adj[u], half{nbr: v, edge: int32(e), fwd: true})
		adj[v] = append(adj[v], half{nbr: u, edge: int32(e), fwd: false})
	}

	// Message storage: two per edge. msgs[2e] is src→dst, msgs[2e+1] dst→src.
	msgs := make([][]float64, 2*g.NumEdges)
	for i := range msgs {
		msgs[i] = make([]float64, s)
	}
	msgIndex := func(e int32, fromSrc bool) int {
		if fromSrc {
			return int(2 * e)
		}
		return int(2*e + 1)
	}

	// sendMessage computes the message from u toward v along h (a half
	// adjacent to u): Σ_{x_u} prior_u(x_u) Π_{other halves} m(x_u) · J.
	buf := make([]float64, s)
	sendMessage := func(u int32, h half) {
		prior := g.Prior(u)
		for x := 0; x < s; x++ {
			buf[x] = float64(prior[x])
		}
		for _, o := range adj[u] {
			if o.edge == h.edge {
				continue
			}
			in := msgs[msgIndex(o.edge, !o.fwd)]
			for x := 0; x < s; x++ {
				buf[x] *= in[x]
			}
		}
		normalize64(buf)
		out := msgs[msgIndex(h.edge, h.fwd)]
		m := g.Matrix(h.edge)
		for y := 0; y < s; y++ {
			out[y] = 0
		}
		if h.fwd { // u is source: out[x_v] = Σ J[x_u, x_v]·buf[x_u]
			for x := 0; x < s; x++ {
				if buf[x] == 0 {
					continue
				}
				row := m.Row(x)
				for y := 0; y < s; y++ {
					out[y] += buf[x] * float64(row[y])
				}
			}
		} else { // u is destination: out[x_v] = Σ J[x_v, x_u]·buf[x_u]
			for y := 0; y < s; y++ {
				row := m.Row(y)
				var acc float64
				for x := 0; x < s; x++ {
					acc += float64(row[x]) * buf[x]
				}
				out[y] = acc
			}
		}
		normalize64(out)
	}

	visited := make([]bool, g.NumNodes)
	parentEdge := make([]int32, g.NumNodes)
	parentHalf := make([]half, g.NumNodes)
	order := make([]int32, 0, g.NumNodes)
	stack := make([]int32, 0, 64)

	for root := int32(0); root < int32(g.NumNodes); root++ {
		if visited[root] {
			continue
		}
		// Iterative DFS establishing a rooted orientation per component.
		visited[root] = true
		parentEdge[root] = -1
		start := len(order)
		stack = append(stack[:0], root)
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			order = append(order, u)
			for _, h := range adj[u] {
				if h.edge == parentEdge[u] {
					continue
				}
				if visited[h.nbr] {
					return errors.New("bp: exact tree: graph contains a cycle (or a doubled undirected link)")
				}
				visited[h.nbr] = true
				parentEdge[h.nbr] = h.edge
				parentHalf[h.nbr] = h
				stack = append(stack, h.nbr)
			}
		}
		comp := order[start:]
		// Upward (λ) pass: children send to parents in reverse DFS order.
		for i := len(comp) - 1; i >= 0; i-- {
			u := comp[i]
			if parentEdge[u] < 0 {
				continue
			}
			h := parentHalf[u] // half stored at parent pointing to u
			// Message from u toward its parent travels the same edge in
			// the opposite orientation.
			sendMessage(u, half{nbr: 0, edge: h.edge, fwd: !h.fwd})
		}
		// Downward (π) pass: parents send to children in DFS order.
		for _, u := range comp {
			for _, h := range adj[u] {
				if h.edge == parentEdge[u] {
					continue
				}
				sendMessage(u, h)
			}
		}
	}

	// Beliefs: prior times all incoming messages, normalized.
	for v := int32(0); v < int32(g.NumNodes); v++ {
		prior := g.Prior(v)
		for x := 0; x < s; x++ {
			buf[x] = float64(prior[x])
		}
		for _, h := range adj[v] {
			in := msgs[msgIndex(h.edge, !h.fwd)]
			for x := 0; x < s; x++ {
				buf[x] *= in[x]
			}
		}
		normalize64(buf)
		b := g.Belief(v)
		for x := 0; x < s; x++ {
			b[x] = float32(buf[x])
		}
	}
	return nil
}

func normalize64(p []float64) {
	var sum float64
	for _, v := range p {
		sum += v
	}
	if sum <= 0 {
		u := 1 / float64(len(p))
		for i := range p {
			p[i] = u
		}
		return
	}
	for i := range p {
		p[i] /= sum
	}
}
