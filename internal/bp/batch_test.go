package bp

import (
	"fmt"
	"math"
	"testing"

	"credo/internal/gen"
	"credo/internal/graph"
	"credo/internal/kernel"
)

// batchEvidence assigns lane l's evidence: lane 0 stays evidence-free,
// odd lanes clamp one node, lanes ≥ 4 clamp two — a spread of different
// posteriors and different convergence times inside one batch.
func batchEvidence(lane, numNodes, states int) [][2]int {
	if lane == 0 {
		return nil
	}
	ev := [][2]int{{(lane * 7) % numNodes, lane % states}}
	if lane >= 4 {
		ev = append(ev, [2]int{(lane*13 + 3) % numNodes, (lane + 1) % states})
	}
	if ev[0][0] == ev[len(ev)-1][0] && len(ev) > 1 {
		ev = ev[:1] // duplicate node: keep one clamp
	}
	return ev
}

// soloRun clones the base graph, applies one lane's evidence and runs the
// standalone engine the batch must reproduce.
func soloRun(t *testing.T, base *graph.Graph, ev [][2]int, opts Options) (*graph.Graph, Result) {
	t.Helper()
	g := base.Clone()
	for _, e := range ev {
		if err := g.Observe(int32(e[0]), e[1]); err != nil {
			t.Fatalf("Observe(%d,%d): %v", e[0], e[1], err)
		}
	}
	return g, RunNode(g, opts)
}

// TestBatchLaneEquivalence is the acceptance differential: every lane of
// a K=8/32 batch — mixed evidence, mixed convergence times — must match
// its standalone K=1 run bitwise, across widths, kernel modes and update
// variants. Bitwise equality of the final beliefs, the stopping sweep,
// the final delta and the update count means the batched path is the solo
// path, K lanes at a time, which is exactly what lets the server batch
// queries without changing answers.
func TestBatchLaneEquivalence(t *testing.T) {
	type cfg struct {
		states  int
		k       int
		mode    kernel.Mode
		variant kernel.Variant
	}
	var cfgs []cfg
	for _, states := range []int{2, 3, 5} {
		for _, k := range []int{8, 32} {
			cfgs = append(cfgs,
				cfg{states, k, kernel.Specialized, kernel.VariantVanilla},
				cfg{states, k, kernel.LogSpace, kernel.VariantVanilla},
			)
		}
		cfgs = append(cfgs,
			cfg{states, 8, kernel.Specialized, kernel.VariantDamped},
			cfg{states, 8, kernel.Specialized, kernel.VariantCircular},
		)
	}
	for _, c := range cfgs {
		name := fmt.Sprintf("states=%d/k=%d/mode=%v/variant=%v", c.states, c.k, c.mode, c.variant)
		t.Run(name, func(t *testing.T) {
			base, err := gen.Synthetic(120, 480, gen.Config{Seed: 7, States: c.states, Shared: c.states == 2})
			if err != nil {
				t.Fatalf("Synthetic: %v", err)
			}
			opts := Options{Variant: c.variant, Kernel: kernel.Config{Mode: c.mode}}

			bs, err := graph.NewBatchState(base, c.k)
			if err != nil {
				t.Fatalf("NewBatchState: %v", err)
			}
			for l := 0; l < c.k; l++ {
				for _, e := range batchEvidence(l, base.NumNodes, c.states) {
					if err := bs.Observe(l, int32(e[0]), e[1]); err != nil {
						t.Fatalf("lane %d Observe: %v", l, err)
					}
				}
			}
			res := RunBatch(base, bs, opts)
			if len(res.Lanes) != c.k {
				t.Fatalf("got %d lane results, want %d", len(res.Lanes), c.k)
			}

			iters := map[int]bool{}
			lane := make([]float32, base.NumNodes*base.States)
			for l := 0; l < c.k; l++ {
				ev := batchEvidence(l, base.NumNodes, c.states)
				sg, sres := soloRun(t, base, ev, opts)
				lr := res.Lanes[l]
				if lr.Iterations != sres.Iterations || lr.Converged != sres.Converged {
					t.Errorf("lane %d: iterations/converged = %d/%v, solo %d/%v",
						l, lr.Iterations, lr.Converged, sres.Iterations, sres.Converged)
				}
				if math.Float32bits(lr.FinalDelta) != math.Float32bits(sres.FinalDelta) {
					t.Errorf("lane %d: final delta %g, solo %g", l, lr.FinalDelta, sres.FinalDelta)
				}
				if lr.Updates != sres.Ops.NodesProcessed {
					t.Errorf("lane %d: updates %d, solo %d", l, lr.Updates, sres.Ops.NodesProcessed)
				}
				if lr.Edges != sres.Ops.EdgesProcessed {
					t.Errorf("lane %d: edges %d, solo %d", l, lr.Edges, sres.Ops.EdgesProcessed)
				}
				bs.ExtractLane(l, lane)
				for i := range lane {
					if math.Float32bits(lane[i]) != math.Float32bits(sg.Beliefs[i]) {
						t.Fatalf("lane %d: belief[%d] = %g, solo %g (not bitwise)",
							l, i, lane[i], sg.Beliefs[i])
					}
				}
				iters[sres.Iterations] = true
			}
			if len(iters) < 2 {
				t.Errorf("every lane converged at the same sweep (%v) — the mixed-convergence case is not exercised", iters)
			}
		})
	}
}

// TestBatchPartialOccupancy pins the Used contract: lanes beyond Used are
// never written (the batcher flushes partial batches through the same
// pooled state), and the staged lanes still match their solo runs.
func TestBatchPartialOccupancy(t *testing.T) {
	base, err := gen.Synthetic(80, 320, gen.Config{Seed: 11, States: 2, Shared: true})
	if err != nil {
		t.Fatalf("Synthetic: %v", err)
	}
	bs, err := graph.NewBatchState(base, 8)
	if err != nil {
		t.Fatalf("NewBatchState: %v", err)
	}
	bs.Used = 3
	for l := 0; l < bs.Used; l++ {
		for _, e := range batchEvidence(l+1, base.NumNodes, 2) {
			if err := bs.Observe(l, int32(e[0]), e[1]); err != nil {
				t.Fatalf("Observe: %v", err)
			}
		}
	}
	res := RunBatch(base, bs, Options{})
	if len(res.Lanes) != 3 {
		t.Fatalf("got %d lane results, want 3", len(res.Lanes))
	}
	lane := make([]float32, base.NumNodes*base.States)
	for l := 0; l < 3; l++ {
		sg, _ := soloRun(t, base, batchEvidence(l+1, base.NumNodes, 2), Options{})
		bs.ExtractLane(l, lane)
		for i := range lane {
			if math.Float32bits(lane[i]) != math.Float32bits(sg.Beliefs[i]) {
				t.Fatalf("lane %d: belief[%d] = %g, solo %g", l, i, lane[i], sg.Beliefs[i])
			}
		}
	}
	// Idle lanes keep the base graph's staged beliefs untouched.
	for l := 3; l < 8; l++ {
		bs.ExtractLane(l, lane)
		for i := range lane {
			if math.Float32bits(lane[i]) != math.Float32bits(base.Beliefs[i]) {
				t.Fatalf("idle lane %d: belief[%d] = %g, staged %g — engines must not touch lanes beyond Used",
					l, i, lane[i], base.Beliefs[i])
			}
		}
	}
}

// TestBatchAllocFree extends the kernel PR's 0-allocs contract to the
// batched path: with the BatchState staged and the lane-result storage
// caller-provided, a batched run allocates nothing after warmup for the
// vanilla and damped kernels. (Circular is exempt: its per-edge-per-lane
// correction state is allocated per run, exactly like the solo engines'.)
func TestBatchAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; the 0-allocs contract is asserted in the non-race build")
	}
	for _, states := range []int{2, 5} {
		for _, damping := range []float32{0, 0.5} {
			g := allocGraph(t, states, states == 2)
			bs, err := graph.NewBatchState(g, 8)
			if err != nil {
				t.Fatalf("NewBatchState: %v", err)
			}
			for l := 0; l < 8; l++ {
				for _, e := range batchEvidence(l, g.NumNodes, states) {
					if err := bs.Observe(l, int32(e[0]), e[1]); err != nil {
						t.Fatalf("Observe: %v", err)
					}
				}
			}
			lanes := make([]LaneResult, 8)
			opts := Options{Damping: damping}
			allocs := testing.AllocsPerRun(5, func() {
				RunBatchInto(g, bs, opts, lanes)
			})
			if allocs != 0 {
				t.Errorf("RunBatchInto states=%d damping=%g: %.1f allocs/run, want 0", states, damping, allocs)
			}
		}
	}
}

// FuzzBatchLaneEquivalence drives the differential with fuzzer-chosen
// evidence: arbitrary (node, state) clamps spread across lanes must
// leave every lane bitwise equal to its standalone run.
func FuzzBatchLaneEquivalence(f *testing.F) {
	f.Add(uint8(2), []byte{0, 1, 2, 3})
	f.Add(uint8(3), []byte{7, 0, 9, 2, 40, 1})
	f.Add(uint8(5), []byte{})
	f.Fuzz(func(t *testing.T, states uint8, evidence []byte) {
		s := int(states)
		if s < 2 || s > 6 {
			t.Skip()
		}
		if len(evidence) > 64 {
			evidence = evidence[:64]
		}
		base, err := gen.Synthetic(60, 240, gen.Config{Seed: 3, States: s, Shared: s == 2})
		if err != nil {
			t.Skip()
		}
		const k = 8
		bs, err := graph.NewBatchState(base, k)
		if err != nil {
			t.Fatalf("NewBatchState: %v", err)
		}
		// Spread the fuzzed (node, state) pairs round-robin across lanes.
		laneEv := make([][][2]int, k)
		for i := 0; i+1 < len(evidence); i += 2 {
			l := (i / 2) % k
			v := int(evidence[i]) % base.NumNodes
			st := int(evidence[i+1]) % s
			laneEv[l] = append(laneEv[l], [2]int{v, st})
			if err := bs.Observe(l, int32(v), st); err != nil {
				t.Fatalf("Observe: %v", err)
			}
		}
		res := RunBatch(base, bs, Options{})
		lane := make([]float32, base.NumNodes*base.States)
		for l := 0; l < k; l++ {
			sg := base.Clone()
			for _, e := range laneEv[l] {
				if err := sg.Observe(int32(e[0]), e[1]); err != nil {
					t.Fatalf("solo Observe: %v", err)
				}
			}
			sres := RunNode(sg, Options{})
			lr := res.Lanes[l]
			if lr.Iterations != sres.Iterations || lr.Converged != sres.Converged {
				t.Fatalf("lane %d: iterations/converged = %d/%v, solo %d/%v",
					l, lr.Iterations, lr.Converged, sres.Iterations, sres.Converged)
			}
			bs.ExtractLane(l, lane)
			for i := range lane {
				if math.Float32bits(lane[i]) != math.Float32bits(sg.Beliefs[i]) {
					t.Fatalf("lane %d: belief[%d] = %g, solo %g (not bitwise)", l, i, lane[i], sg.Beliefs[i])
				}
			}
		}
	})
}
