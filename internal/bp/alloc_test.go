package bp

import (
	"testing"

	"credo/internal/gen"
	"credo/internal/graph"
	"credo/internal/kernel"
)

// allocGraph builds a 200-node synthetic graph (node ids stay below 256 so
// even interface boxing in container/heap is allocation-free).
func allocGraph(t testing.TB, states int, shared bool) *graph.Graph {
	t.Helper()
	g, err := gen.Synthetic(200, 800, gen.Config{Seed: 5, States: states, Shared: shared})
	if err != nil {
		t.Fatalf("Synthetic: %v", err)
	}
	return g
}

// TestEnginesAllocFree locks the satellite guarantee of the kernel PR:
// after a warm-up call primes the pooled scratch arena, the sequential
// engines allocate nothing per run — including RunEdge, which historically
// reallocated its O(NumNodes·States) accumulator on every call.
func TestEnginesAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; the 0-allocs contract is asserted in the non-race build")
	}
	engines := []struct {
		name string
		run  func(*graph.Graph, Options) Result
	}{
		{"RunNode", RunNode},
		{"RunEdge", RunEdge},
		{"RunResidual", RunResidual},
		{"RunTraditional", RunTraditional},
		{"RunMaxProduct", RunMaxProduct},
	}
	modes := []kernel.Mode{kernel.Specialized, kernel.Generic, kernel.LogSpace}
	for _, states := range []int{2, 5} {
		for _, eng := range engines {
			for _, mode := range modes {
				for _, wq := range []bool{false, true} {
					// Damping must ride the same zero-allocation path:
					// the blend happens in place inside the kernel (or
					// the engine's combine), with no extra state.
					for _, damping := range []float32{0, 0.5} {
						g := allocGraph(t, states, states == 2)
						opts := Options{WorkQueue: wq, Damping: damping, Kernel: kernel.Config{Mode: mode}}
						// AllocsPerRun's extra warm-up call primes the pool.
						allocs := testing.AllocsPerRun(5, func() {
							eng.run(g, opts)
						})
						if allocs != 0 {
							t.Errorf("%s states=%d mode=%v workqueue=%v damping=%g: %.1f allocs/run, want 0",
								eng.name, states, mode, wq, damping, allocs)
						}
					}
				}
			}
		}
	}
}
