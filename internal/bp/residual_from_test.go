package bp

import (
	"testing"

	"credo/internal/gen"
	"credo/internal/graph"
)

// warmGrid builds the shared warm-start test graph: a lattice MRF large
// enough that a localized evidence change perturbs only a region.
func warmGrid(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := gen.Grid(16, 16, gen.Config{Seed: 5, States: 2, Shared: true, Keep: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// perturbFrontier returns the warm-start seed set for clamping node v:
// the node itself plus its out-neighbours — everything whose residual
// the evidence change can move directly.
func perturbFrontier(g *graph.Graph, v int32) []int32 {
	seeds := []int32{v}
	for _, e := range g.OutEdges[g.OutOffsets[v]:g.OutOffsets[v+1]] {
		seeds = append(seeds, g.EdgeDst[e])
	}
	return seeds
}

func TestRunResidualFromNilSeedsMatchesCold(t *testing.T) {
	a, b := warmGrid(t), warmGrid(t)
	ra := RunResidual(a, Options{})
	rb := RunResidualFrom(b, Options{}, nil)
	if ra.Ops.NodesProcessed != rb.Ops.NodesProcessed {
		t.Fatalf("nil-seed run applied %d updates, cold %d", rb.Ops.NodesProcessed, ra.Ops.NodesProcessed)
	}
	for i := range a.Beliefs {
		if a.Beliefs[i] != b.Beliefs[i] {
			t.Fatalf("belief %d differs: %g vs %g", i, a.Beliefs[i], b.Beliefs[i])
		}
	}
}

func TestRunResidualFromEmptySeedsIsFree(t *testing.T) {
	g := warmGrid(t)
	if res := RunResidual(g, Options{}); !res.Converged {
		t.Fatalf("cold run did not converge (delta %g)", res.FinalDelta)
	}
	res := RunResidualFrom(g, Options{}, []int32{})
	if !res.Converged {
		t.Fatal("empty-seed warm start did not report convergence")
	}
	if res.Ops.NodesProcessed != 0 {
		t.Fatalf("empty-seed warm start applied %d updates, want 0", res.Ops.NodesProcessed)
	}
}

func TestRunResidualFromWarmMatchesColdWithFewerUpdates(t *testing.T) {
	// Converge once, clamp one interior node, and re-converge from the
	// fixpoint seeding only the perturbed frontier.
	warm := warmGrid(t)
	if res := RunResidual(warm, Options{}); !res.Converged {
		t.Fatalf("initial run did not converge (delta %g)", res.FinalDelta)
	}
	const clamped = 8*16 + 8 // interior node of the 16x16 grid
	if err := warm.Observe(clamped, 1); err != nil {
		t.Fatal(err)
	}
	warmRes := RunResidualFrom(warm, Options{}, perturbFrontier(warm, clamped))
	if !warmRes.Converged {
		t.Fatalf("warm run did not converge (delta %g)", warmRes.FinalDelta)
	}

	cold := warmGrid(t)
	if err := cold.Observe(clamped, 1); err != nil {
		t.Fatal(err)
	}
	coldRes := RunResidual(cold, Options{})
	if !coldRes.Converged {
		t.Fatalf("cold run did not converge (delta %g)", coldRes.FinalDelta)
	}

	// Equivalence: the warm re-convergence must land on the cold-start
	// posterior within the serving convergence tolerance. Both runs stop
	// once every pending residual is below the element threshold, so each
	// sits within a small multiple of it from the unique fixpoint; the
	// cross-run distance is locked at 10x the threshold (measured ~3x on
	// this grid), the same reasoning as enginetest's cross-engine bound.
	tol := float32(10 * DefaultThreshold)
	var worst float32
	for v := int32(0); v < int32(warm.NumNodes); v++ {
		if d := graph.L1Diff(warm.Belief(v), cold.Belief(v)); d > worst {
			worst = d
		}
	}
	if worst > tol {
		t.Fatalf("warm start diverges from cold start by %g (tolerance %g)", worst, tol)
	}

	// The point of warm starting: measurably fewer belief updates.
	if warmRes.Ops.NodesProcessed >= coldRes.Ops.NodesProcessed {
		t.Fatalf("warm start applied %d updates, cold %d — no saving",
			warmRes.Ops.NodesProcessed, coldRes.Ops.NodesProcessed)
	}
	t.Logf("updates: warm %d vs cold %d", warmRes.Ops.NodesProcessed, coldRes.Ops.NodesProcessed)
}

func TestRunResidualFromSkipsBadSeeds(t *testing.T) {
	g := warmGrid(t)
	if res := RunResidual(g, Options{}); !res.Converged {
		t.Fatal("cold run did not converge")
	}
	// Out-of-range and duplicate seeds must be tolerated, not panic.
	res := RunResidualFrom(g, Options{}, []int32{-3, int32(g.NumNodes) + 7, 0, 0})
	if !res.Converged {
		t.Fatal("warm start with degenerate seeds did not converge")
	}
}
