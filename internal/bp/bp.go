// Package bp implements belief propagation over graph.Graph in the two
// processing paradigms of the paper — per-node and per-edge loopy BP
// (Algorithm 1) — plus the classical non-loopy two-pass algorithm used as
// the §2.1.1 baseline and an exact sum-product engine for acyclic networks.
//
// Message convention (Equation 2): the message along directed edge e=(u,v)
// is m_e[j] = Σ_i b_u[i]·J_e[i,j], normalized. A node's belief is its prior
// multiplied by all incoming messages and re-normalized (marginalized).
// Message math runs through the shared kernel layer (package kernel): by
// default products are accumulated in linear space with periodic
// max-rescaling, falling back to log space only when a node's in-degree or
// running magnitude crosses the underflow guard, so that high-degree nodes
// (the power-law hubs of the social benchmarks) still cannot underflow
// float32. Options.Kernel selects kernel.LogSpace to reproduce the
// historical always-log path bit-for-bit.
package bp

import (
	"credo/internal/graph"
	"credo/internal/kernel"
	"credo/internal/telemetry"
)

// Default parameters from the paper's evaluation (§4): convergence within
// 0.001, cut off at 200 iterations.
const (
	DefaultThreshold     = 0.001
	DefaultMaxIterations = 200
)

// Options configures a propagation run.
type Options struct {
	// Threshold is the global convergence bound: the run stops once the
	// sum over nodes of the L1 belief change in one iteration falls below
	// it. Zero means DefaultThreshold.
	Threshold float32

	// MaxIterations caps the number of iterations. Zero means
	// DefaultMaxIterations.
	MaxIterations int

	// WorkQueue enables the unconverged-element queues of paper §3.5:
	// after every iteration only nodes (or edges) whose last change
	// exceeded QueueThreshold are reprocessed.
	WorkQueue bool

	// QueueThreshold is the per-element convergence bound used by the
	// work queues: an element whose last change fell below it drops out
	// of the queue. Zero means Threshold — the paper prunes elements at
	// the same 0.001 bound it checks globally, which is what lets queue
	// runs finish in a handful of iterations while the global sum over a
	// large graph would keep a full sweep running toward the cap (§3.5,
	// §4.2).
	QueueThreshold float32

	// RecordDeltas makes the engines append each iteration's global delta
	// to Result.Deltas — the data behind convergence curves.
	RecordDeltas bool

	// Damping blends each new belief with the previous one:
	// b ← (1−Damping)·b_new + Damping·b_old. Zero disables it. Damping is
	// the standard stabilizer for loopy BP on graphs where synchronous
	// updates oscillate; the ablation benchmark measures its cost. Setting
	// it implies Variant=VariantDamped (see ResolveVariant).
	Damping float32

	// Variant selects the message-update rule: vanilla (the default),
	// damped, or circular (Circular-BP loop correction through the kernel
	// layer's per-edge correction state). VariantDamped with Damping left
	// zero uses kernel.DefaultDamping; VariantCircular with Kernel.Alpha
	// left zero uses kernel.DefaultAlpha. See kernel.Variant.
	Variant kernel.Variant

	// Kernel selects the message-kernel implementation and its numerical
	// policy (see package kernel). The zero value is the width-specialized
	// linear-space fast path; kernel.LogSpace reproduces the historical
	// log-space scalar path bit-for-bit.
	Kernel kernel.Config

	// Probe, when non-nil, receives telemetry events at iteration/batch
	// boundaries: per-iteration residual norms, beliefs-updated counts,
	// frontier/queue occupancy and engine-specific scheduler counters
	// (see package telemetry). Every engine — including the parallel and
	// device ones, whose options embed this struct — reports into the
	// same probe. Nil (the default) keeps every hot path untouched: the
	// disabled path is locked at 0 allocs/run and within benchmark noise
	// of the uninstrumented engines.
	Probe telemetry.Probe

	// Trace, when non-nil, is the request-scoped trace this run belongs
	// to (the serving layer's span tree): the engine opens one span
	// covering its execution, so a query's trace shows exactly how much
	// of its wall clock the propagation itself consumed versus the
	// pipeline around it. Nil (the default) costs one pointer check —
	// the span helpers are nil-safe no-ops and the disabled path stays
	// at 0 allocs/run.
	Trace *telemetry.Trace
}

func (o Options) withDefaults(numNodes int) Options {
	if o.Threshold == 0 {
		o.Threshold = DefaultThreshold
	}
	if o.MaxIterations == 0 {
		o.MaxIterations = DefaultMaxIterations
	}
	if o.QueueThreshold == 0 {
		o.QueueThreshold = o.Threshold
	}
	return o.ResolveVariant()
}

// ResolveVariant normalizes the (Variant, Damping, Kernel.Alpha) triple so
// every engine sees one consistent picture:
//
//   - VariantDamped with Damping unset takes kernel.DefaultDamping;
//     conversely a positive Damping alone implies VariantDamped.
//   - VariantCircular with Kernel.Alpha unset takes kernel.DefaultAlpha;
//     a positive Alpha alone implies VariantCircular.
//   - Kernel.Damping always mirrors Damping, so engines driving the
//     kernel's NodeUpdate path damp inside the kernel while engines with
//     their own combine stage read Damping directly — never both.
//
// Every engine's withDefaults calls it (the parallel engines' option
// structs embed this one), so explicit calls are only needed when passing
// a Config straight to kernel.New.
func (o Options) ResolveVariant() Options {
	switch o.Variant {
	case kernel.VariantDamped:
		if o.Damping <= 0 {
			o.Damping = kernel.DefaultDamping
		}
	case kernel.VariantCircular:
		if o.Kernel.Alpha <= 0 {
			o.Kernel.Alpha = kernel.DefaultAlpha
		}
	default:
		if o.Kernel.Alpha > 0 {
			o.Variant = kernel.VariantCircular
		} else if o.Damping > 0 {
			o.Variant = kernel.VariantDamped
		}
	}
	o.Kernel.Damping = o.Damping
	return o
}

// OpCounts records the abstract operations performed by a run. The
// perfmodel package prices these counts under a CPU or GPU architecture
// profile to regenerate the paper's timing figures.
type OpCounts struct {
	Iterations     int64 // propagation iterations executed
	NodesProcessed int64 // node belief recombinations
	EdgesProcessed int64 // edge message computations
	MemLoads       int64 // float32 loads from belief/message arrays
	MemStores      int64 // float32 stores to belief/message arrays
	MatrixOps      int64 // multiply-accumulate ops through joint matrices
	LogOps         int64 // log/exp evaluations in the combine stage
	AtomicOps      int64 // atomic accumulator updates (per float)
	QueuePushes    int64 // work-queue enqueue operations
	RandomLoads    int64 // random-order parent-state loads (node paradigm)
	SyncOps        int64 // barrier crossings (one per worker per parallel region)

	// Relaxed-scheduling counters (the relaxbp engine). Relaxed priority
	// order trades exactness for scalability; these count what that trade
	// costs: entries superseded before they were popped, pops whose
	// recomputed residual had already fallen below the threshold (work the
	// priority estimate wasted), and failed lock acquisitions on the
	// sharded priority queues.
	StaleDrops      int64 // queue entries dropped because a newer push superseded them
	WastedUpdates   int64 // pops recomputed to a sub-threshold residual (nothing applied)
	QueueContention int64 // failed TryLock acquisitions on the relaxed multiqueue

	// Kernel-layer counters. These are diagnostic: they report what the
	// selected message kernel actually did, while the counters above keep
	// modelling the abstract algorithm (LogOps counts the combine stage's
	// log/exp evaluations whether or not the linear fast path elided them)
	// so that perfmodel pricing stays comparable across kernels and with
	// the pre-kernel engines.
	KernelFastPath int64 // in-edge folds taken through the linear fused fast path
	RescaleOps     int64 // max-rescales of linear running products
}

// Add accumulates other into c.
func (c *OpCounts) Add(other OpCounts) {
	c.Iterations += other.Iterations
	c.NodesProcessed += other.NodesProcessed
	c.EdgesProcessed += other.EdgesProcessed
	c.MemLoads += other.MemLoads
	c.MemStores += other.MemStores
	c.MatrixOps += other.MatrixOps
	c.LogOps += other.LogOps
	c.AtomicOps += other.AtomicOps
	c.QueuePushes += other.QueuePushes
	c.RandomLoads += other.RandomLoads
	c.SyncOps += other.SyncOps
	c.StaleDrops += other.StaleDrops
	c.WastedUpdates += other.WastedUpdates
	c.QueueContention += other.QueueContention
	c.KernelFastPath += other.KernelFastPath
	c.RescaleOps += other.RescaleOps
}

// addKernelCounters folds a scratch's kernel counters into the counts.
func (c *OpCounts) addKernelCounters(kc kernel.Counters) {
	c.KernelFastPath += kc.FastPath
	c.RescaleOps += kc.Rescales
}

// Result reports the outcome of a propagation run.
type Result struct {
	// Iterations is the number of iterations executed.
	Iterations int
	// Converged reports whether the run stopped because the global delta
	// fell below the threshold (as opposed to hitting MaxIterations).
	Converged bool
	// FinalDelta is the global belief delta of the last iteration.
	FinalDelta float32
	// Deltas holds every iteration's global delta when
	// Options.RecordDeltas is set.
	Deltas []float32
	// Ops are the abstract operation counts of the run.
	Ops OpCounts
}

// logEps keeps log() finite: probabilities are clamped to at least logEps
// before entering log space. exp(log(1e-30)) is still exactly zero mass
// after normalization at float32 precision. It equals kernel.LogEps so the
// linear fast path's clamp and the log accumulators agree.
const logEps = kernel.LogEps

// Logf is a float32 natural logarithm clamped at logEps, shared by every
// engine so that log-domain accumulators agree bit-for-bit across
// implementations. The implementation lives in the kernel package; this
// wrapper keeps the historical bp API.
func Logf(x float32) float32 { return kernel.Logf(x) }

// ExpNormalize writes normalize(prior · exp(acc)) into dst using the
// max-subtraction trick; dst, prior and acc must share one length.
// Entirely zero rows degrade to uniform. It is the log-space combine stage
// shared by every engine; the implementation lives in the kernel package.
func ExpNormalize(dst, prior, acc []float32) { kernel.ExpNormalize(dst, prior, acc) }

// Blend applies damping in place: b ← (1−d)·b + d·old. Both inputs are
// distributions, so the result needs no renormalization.
func Blend(b, old []float32, d float32) {
	if d <= 0 {
		return
	}
	for j := range b {
		b[j] = (1-d)*b[j] + d*old[j]
	}
}

// ComputeMessage fills msg with the normalized propagation of src through
// m: msg[j] = Σ_i src[i]·m[i,j], normalized — the scalar reference form of
// the kernel layer's Message, kept for oracles and tests.
func ComputeMessage(msg, src []float32, m *graph.JointMatrix) {
	m.PropagateInto(msg, src)
	graph.Normalize(msg)
}
