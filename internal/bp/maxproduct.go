package bp

import (
	"credo/internal/graph"
	"credo/internal/kernel"
	"credo/internal/telemetry"
)

// RunMaxProduct executes loopy max-product BP (the MAP-decoding sibling of
// Algorithm 1): messages carry the best-scoring assignment rather than the
// marginal mass, so after convergence each node's belief is its
// max-marginal and its argmax decodes the (approximate) most-probable
// joint state. The image-correction use case is the classic application:
// per-pixel argmax of max-marginals is the denoised image.
//
// Processing is per-node (the paradigm's gather loop) with the same
// Jacobi updates, log-space accumulation, damping and work-queue frontier
// as RunNode.
func RunMaxProduct(g *graph.Graph, opts Options) Result {
	sc := getScratch()
	res := runMaxProduct(g, opts, sc)
	sc.release()
	return res
}

func runMaxProduct(g *graph.Graph, opts Options, sc *runScratch) Result {
	opts = opts.withDefaults(g.NumNodes)
	k := kernel.New(g, opts.Kernel)
	sc.prev = growF32(sc.prev, len(g.Beliefs))
	prev := sc.prev

	var res Result
	queue, next := sc.queue, sc.next
	if opts.WorkQueue {
		queue = growI32(queue, g.NumNodes)
		for v := range queue {
			queue[v] = int32(v)
		}
		next = growI32(next, g.NumNodes)[:0]
		sc.inNext = growBool(sc.inNext, g.NumNodes)
		res.Ops.QueuePushes += int64(g.NumNodes)
	}

	probe := opts.Probe
	ctx, endTask := telemetry.BeginRun(engMaxProduct)
	emitRunStart(probe, engMaxProduct, int64(g.NumNodes), opts.Threshold)
	var lastNodes, lastEdges int64

	done := false
	for iter := 0; iter < opts.MaxIterations && !done; iter++ {
		res.Iterations = iter + 1
		res.Ops.Iterations++
		endIter := telemetry.StartRegion(ctx, "iteration")
		copy(prev, g.Beliefs)

		var sum float32
		if opts.WorkQueue {
			next = next[:0]
			for _, v := range queue {
				d := maxStep(g, &k, sc, &res, v, prev)
				sum += d
				if d <= opts.QueueThreshold {
					continue
				}
				lo, hi := g.OutOffsets[v], g.OutOffsets[v+1]
				for _, e := range g.OutEdges[lo:hi] {
					dst := g.EdgeDst[e]
					if !sc.inNext[dst] {
						sc.inNext[dst] = true
						next = append(next, dst)
						res.Ops.QueuePushes++
					}
				}
			}
			for _, v := range next {
				sc.inNext[v] = false
			}
			queue, next = next, queue
		} else {
			for v := int32(0); v < int32(g.NumNodes); v++ {
				sum += maxStep(g, &k, sc, &res, v, prev)
			}
		}

		res.FinalDelta = sum
		if opts.RecordDeltas {
			res.Deltas = append(res.Deltas, sum)
		}
		if sum < opts.Threshold || (opts.WorkQueue && len(queue) == 0) {
			res.Converged = true
			done = true
		}
		endIter()
		if probe != nil {
			active := int64(-1)
			if opts.WorkQueue {
				active = int64(len(queue))
			}
			probe.Emit(telemetry.Event{
				Kind:     telemetry.KindIteration,
				Engine:   engMaxProduct,
				Iter:     int32(iter + 1),
				Delta:    sum,
				Updated:  res.Ops.NodesProcessed - lastNodes,
				Edges:    res.Ops.EdgesProcessed - lastEdges,
				Active:   active,
				Items:    int64(g.NumNodes),
				FastPath: sc.ks.Counters.FastPath,
				Rescales: sc.ks.Counters.Rescales,
			})
			lastNodes, lastEdges = res.Ops.NodesProcessed, res.Ops.EdgesProcessed
		}
	}
	sc.queue, sc.next = queue, next
	res.Ops.addKernelCounters(sc.ks.Counters)
	emitRunEnd(probe, engMaxProduct, &res)
	endTask()
	return res
}

// maxStep recomputes node v's max-marginal from prev through the kernel's
// max-product fold and returns its L1 change. Damping happens inside the
// kernel (Options.Kernel carries it after ResolveVariant).
func maxStep(g *graph.Graph, k *kernel.Kernel, sc *runScratch, res *Result, v int32, prev []float32) float32 {
	if g.Observed[v] {
		return 0
	}
	res.Ops.NodesProcessed++
	s := g.States
	b := g.Beliefs[int(v)*s : int(v)*s+s]
	old := prev[int(v)*s : int(v)*s+s]
	deg := int64(k.NodeUpdateMax(&sc.ks, b, v, prev))
	res.Ops.EdgesProcessed += deg
	res.Ops.MatrixOps += deg * int64(s*s)
	res.Ops.LogOps += deg*int64(s) + int64(s)
	return graph.L1Diff(b, old)
}

// DecodeMAP returns each node's argmax belief state — the approximate MAP
// assignment after a max-product run (or the marginal-maximizer after a
// sum-product run).
func DecodeMAP(g *graph.Graph) []int {
	out := make([]int, g.NumNodes)
	for v := int32(0); v < int32(g.NumNodes); v++ {
		b := g.Belief(v)
		best := 0
		for j, p := range b {
			if p > b[best] {
				best = j
			}
		}
		out[v] = best
	}
	return out
}

// BruteForceMAP enumerates the joint state space and returns the exact
// most-probable assignment and its unnormalized score. Feasible only for
// tiny networks (the max-product test oracle).
func BruteForceMAP(g *graph.Graph) ([]int, float64, error) {
	s := g.States
	total := 1
	for i := 0; i < g.NumNodes; i++ {
		if total > maxEnumerationStates/s {
			return nil, 0, errInfeasible(s, g.NumNodes)
		}
		total *= s
	}
	assign := make([]int, g.NumNodes)
	best := make([]int, g.NumNodes)
	bestW := -1.0
	for idx := 0; idx < total; idx++ {
		rem := idx
		for v := 0; v < g.NumNodes; v++ {
			assign[v] = rem % s
			rem /= s
		}
		w := 1.0
		for v := 0; v < g.NumNodes && w > 0; v++ {
			w *= float64(g.Prior(int32(v))[assign[v]])
		}
		for e := 0; e < g.NumEdges && w > 0; e++ {
			w *= float64(g.Matrix(int32(e)).At(assign[g.EdgeSrc[e]], assign[g.EdgeDst[e]]))
		}
		if w > bestW {
			bestW = w
			copy(best, assign)
		}
	}
	return best, bestW, nil
}

func errInfeasible(s, n int) error {
	return &infeasibleError{states: s, nodes: n}
}

type infeasibleError struct{ states, nodes int }

func (e *infeasibleError) Error() string {
	return "bp: brute force MAP infeasible for the joint state space"
}
