package bp

import (
	"credo/internal/graph"
)

// RunMaxProduct executes loopy max-product BP (the MAP-decoding sibling of
// Algorithm 1): messages carry the best-scoring assignment rather than the
// marginal mass, so after convergence each node's belief is its
// max-marginal and its argmax decodes the (approximate) most-probable
// joint state. The image-correction use case is the classic application:
// per-pixel argmax of max-marginals is the denoised image.
//
// Processing is per-node (the paradigm's gather loop) with the same
// Jacobi updates, log-space accumulation, damping and work-queue frontier
// as RunNode.
func RunMaxProduct(g *graph.Graph, opts Options) Result {
	opts = opts.withDefaults(g.NumNodes)
	s := g.States
	prev := append([]float32(nil), g.Beliefs...)

	acc := make([]float32, s)
	msg := make([]float32, s)

	var res Result
	var queue, next []int32
	var inNext []bool
	if opts.WorkQueue {
		queue = make([]int32, 0, g.NumNodes)
		next = make([]int32, 0, g.NumNodes)
		inNext = make([]bool, g.NumNodes)
		for v := 0; v < g.NumNodes; v++ {
			queue = append(queue, int32(v))
		}
		res.Ops.QueuePushes += int64(g.NumNodes)
	}

	maxMessage := func(dst, src []float32, m *graph.JointMatrix) {
		for j := 0; j < s; j++ {
			best := float32(0)
			for i := 0; i < s; i++ {
				if v := src[i] * m.At(i, j); v > best {
					best = v
				}
			}
			dst[j] = best
		}
		graph.Normalize(dst)
	}

	for iter := 0; iter < opts.MaxIterations; iter++ {
		res.Iterations = iter + 1
		res.Ops.Iterations++
		copy(prev, g.Beliefs)

		var sum float32
		process := func(v int32) float32 {
			if g.Observed[v] {
				return 0
			}
			res.Ops.NodesProcessed++
			for j := 0; j < s; j++ {
				acc[j] = 0
			}
			lo, hi := g.InOffsets[v], g.InOffsets[v+1]
			for _, e := range g.InEdges[lo:hi] {
				src := g.EdgeSrc[e]
				parent := prev[int(src)*s : int(src)*s+s]
				maxMessage(msg, parent, g.Matrix(e))
				for j := 0; j < s; j++ {
					acc[j] += Logf(msg[j])
				}
				res.Ops.EdgesProcessed++
				res.Ops.MatrixOps += int64(s * s)
				res.Ops.LogOps += int64(s)
			}
			b := g.Belief(v)
			old := prev[int(v)*s : int(v)*s+s]
			ExpNormalize(b, g.Prior(v), acc)
			Blend(b, old, opts.Damping)
			res.Ops.LogOps += int64(s)
			return graph.L1Diff(b, old)
		}

		if opts.WorkQueue {
			next = next[:0]
			for _, v := range queue {
				d := process(v)
				sum += d
				if d <= opts.QueueThreshold {
					continue
				}
				lo, hi := g.OutOffsets[v], g.OutOffsets[v+1]
				for _, e := range g.OutEdges[lo:hi] {
					dst := g.EdgeDst[e]
					if !inNext[dst] {
						inNext[dst] = true
						next = append(next, dst)
						res.Ops.QueuePushes++
					}
				}
			}
			for _, v := range next {
				inNext[v] = false
			}
			queue, next = next, queue
		} else {
			for v := int32(0); v < int32(g.NumNodes); v++ {
				sum += process(v)
			}
		}

		res.FinalDelta = sum
		if opts.RecordDeltas {
			res.Deltas = append(res.Deltas, sum)
		}
		if sum < opts.Threshold || (opts.WorkQueue && len(queue) == 0) {
			res.Converged = true
			return res
		}
	}
	return res
}

// DecodeMAP returns each node's argmax belief state — the approximate MAP
// assignment after a max-product run (or the marginal-maximizer after a
// sum-product run).
func DecodeMAP(g *graph.Graph) []int {
	out := make([]int, g.NumNodes)
	for v := int32(0); v < int32(g.NumNodes); v++ {
		b := g.Belief(v)
		best := 0
		for j, p := range b {
			if p > b[best] {
				best = j
			}
		}
		out[v] = best
	}
	return out
}

// BruteForceMAP enumerates the joint state space and returns the exact
// most-probable assignment and its unnormalized score. Feasible only for
// tiny networks (the max-product test oracle).
func BruteForceMAP(g *graph.Graph) ([]int, float64, error) {
	s := g.States
	total := 1
	for i := 0; i < g.NumNodes; i++ {
		if total > maxEnumerationStates/s {
			return nil, 0, errInfeasible(s, g.NumNodes)
		}
		total *= s
	}
	assign := make([]int, g.NumNodes)
	best := make([]int, g.NumNodes)
	bestW := -1.0
	for idx := 0; idx < total; idx++ {
		rem := idx
		for v := 0; v < g.NumNodes; v++ {
			assign[v] = rem % s
			rem /= s
		}
		w := 1.0
		for v := 0; v < g.NumNodes && w > 0; v++ {
			w *= float64(g.Prior(int32(v))[assign[v]])
		}
		for e := 0; e < g.NumEdges && w > 0; e++ {
			w *= float64(g.Matrix(int32(e)).At(assign[g.EdgeSrc[e]], assign[g.EdgeDst[e]]))
		}
		if w > bestW {
			bestW = w
			copy(best, assign)
		}
	}
	return best, bestW, nil
}

func errInfeasible(s, n int) error {
	return &infeasibleError{states: s, nodes: n}
}

type infeasibleError struct{ states, nodes int }

func (e *infeasibleError) Error() string {
	return "bp: brute force MAP infeasible for the joint state space"
}
