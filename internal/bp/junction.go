package bp

import (
	"fmt"
	"sort"

	"credo/internal/graph"
)

// JunctionTree is a compiled clique tree over a pairwise model — the
// "recompile the graph into an optimized form" approach of the paper's
// related work (Bistaffa et al. run BP over junction trees on GPUs, §5.1).
// Compilation triangulates the moralized graph with a min-fill heuristic;
// Calibrate then runs one collect/distribute sweep of Shafer-Shenoy
// message passing, after which every node's exact marginal is available in
// O(clique size). Complexity is exponential in the induced treewidth.
type JunctionTree struct {
	g       *graph.Graph
	cliques []*clique
	// nodeClique maps each variable to one clique containing it.
	nodeClique []int
	calibrated bool
}

type clique struct {
	vars      []int32
	potential *factor
	// tree structure
	nbrs []int // adjacent clique ids
	seps [][]int32
	// calibrated messages, indexed like nbrs
	msgs []*factor
	// belief = potential × all incoming messages (after calibration)
	belief *factor
}

// NewJunctionTree compiles the graph. It fails when the triangulated
// cliques exceed the factor budget (treewidth too large for exact
// inference).
func NewJunctionTree(g *graph.Graph) (*JunctionTree, error) {
	s := g.States
	n := g.NumNodes
	if n == 0 {
		return nil, fmt.Errorf("bp: junction tree: empty graph")
	}

	// Undirected adjacency sets (the moral graph of a pairwise model is
	// the model graph itself).
	adj := make([]map[int32]bool, n)
	for v := range adj {
		adj[v] = map[int32]bool{}
	}
	for e := 0; e < g.NumEdges; e++ {
		u, v := g.EdgeSrc[e], g.EdgeDst[e]
		if u == v {
			continue
		}
		adj[u][v] = true
		adj[v][u] = true
	}

	// Min-fill triangulation, recording elimination cliques.
	work := make([]map[int32]bool, n)
	for v := range adj {
		work[v] = map[int32]bool{}
		for u := range adj[v] {
			work[v][u] = true
		}
	}
	eliminated := make([]bool, n)
	var elimCliques [][]int32
	for round := 0; round < n; round++ {
		v := pickMinFill(work, eliminated)
		// The elimination clique: v plus its remaining neighbours.
		cl := []int32{v}
		for u := range work[v] {
			if !eliminated[u] {
				cl = append(cl, u)
			}
		}
		size := 1
		for range cl {
			size *= s
			if size > maxFactorEntries {
				return nil, fmt.Errorf("bp: junction tree: clique of %d variables exceeds the treewidth budget", len(cl))
			}
		}
		sort.Slice(cl, func(i, j int) bool { return cl[i] < cl[j] })
		elimCliques = append(elimCliques, cl)
		// Connect v's neighbours (fill-in) and remove v.
		nbrs := cl[1:]
		rest := make([]int32, 0, len(cl)-1)
		for _, u := range cl {
			if u != v {
				rest = append(rest, u)
			}
		}
		for i := 0; i < len(rest); i++ {
			for j := i + 1; j < len(rest); j++ {
				work[rest[i]][rest[j]] = true
				work[rest[j]][rest[i]] = true
			}
		}
		_ = nbrs
		eliminated[v] = true
		for u := range work[v] {
			delete(work[u], v)
		}
	}

	// Keep maximal cliques only.
	var maximal [][]int32
	for i, c := range elimCliques {
		isMax := true
		for j, d := range elimCliques {
			if i != j && isSubset(c, d) && (len(c) < len(d) || j < i) {
				isMax = false
				break
			}
		}
		if isMax {
			maximal = append(maximal, c)
		}
	}

	jt := &JunctionTree{g: g, nodeClique: make([]int, n)}
	for i := range jt.nodeClique {
		jt.nodeClique[i] = -1
	}
	for ci, vars := range maximal {
		size := 1
		for range vars {
			size *= s
		}
		pot := &factor{vars: vars, table: make([]float64, size)}
		for i := range pot.table {
			pot.table[i] = 1
		}
		jt.cliques = append(jt.cliques, &clique{vars: vars, potential: pot})
		for _, v := range vars {
			if jt.nodeClique[v] < 0 {
				jt.nodeClique[v] = ci
			}
		}
	}

	// Junction tree: maximum-weight spanning tree on separator sizes
	// (Prim over the clique intersection graph yields the running
	// intersection property for triangulated graphs).
	if err := jt.buildSpanningTree(); err != nil {
		return nil, err
	}

	// Assign each model factor to one containing clique.
	for v := int32(0); v < int32(n); v++ {
		ci := jt.nodeClique[v]
		jt.absorb(ci, unaryFactor(g, v))
	}
	for e := 0; e < g.NumEdges; e++ {
		u, v := g.EdgeSrc[e], g.EdgeDst[e]
		f := pairFactor(g, int32(e))
		ci := jt.findCliqueContaining(u, v)
		if ci < 0 {
			return nil, fmt.Errorf("bp: junction tree: no clique contains edge (%d,%d)", u, v)
		}
		jt.absorb(ci, f)
	}
	return jt, nil
}

func unaryFactor(g *graph.Graph, v int32) *factor {
	s := g.States
	f := &factor{vars: []int32{v}, table: make([]float64, s)}
	for j, p := range g.Prior(v) {
		f.table[j] = float64(p)
	}
	return f
}

func pairFactor(g *graph.Graph, e int32) *factor {
	s := g.States
	src, dst := g.EdgeSrc[e], g.EdgeDst[e]
	m := g.Matrix(e)
	if src == dst {
		f := &factor{vars: []int32{src}, table: make([]float64, s)}
		for j := 0; j < s; j++ {
			f.table[j] = float64(m.At(j, j))
		}
		return f
	}
	f := &factor{vars: []int32{src, dst}, table: make([]float64, s*s)}
	for i := 0; i < s; i++ {
		for j := 0; j < s; j++ {
			f.table[i*s+j] = float64(m.At(i, j))
		}
	}
	return f
}

// absorb multiplies f into clique ci's potential.
func (jt *JunctionTree) absorb(ci int, f *factor) {
	c := jt.cliques[ci]
	prod, _ := multiplyAll([]*factor{c.potential, f}, jt.g.States)
	// Reproject onto the clique's variable order (multiplyAll keeps the
	// clique's order since its vars come first).
	c.potential = prod
}

func (jt *JunctionTree) findCliqueContaining(u, v int32) int {
	for ci, c := range jt.cliques {
		if c.has(u) && c.has(v) {
			return ci
		}
	}
	return -1
}

func (c *clique) has(v int32) bool {
	for _, x := range c.vars {
		if x == v {
			return true
		}
	}
	return false
}

// buildSpanningTree connects cliques by Prim's algorithm on separator
// size, handling forests component by component.
func (jt *JunctionTree) buildSpanningTree() error {
	n := len(jt.cliques)
	inTree := make([]bool, n)
	for start := 0; start < n; start++ {
		if inTree[start] {
			continue
		}
		inTree[start] = true
		for {
			best, bestTo, bestSep := -1, -1, []int32(nil)
			for i := 0; i < n; i++ {
				if !inTree[i] {
					continue
				}
				for j := 0; j < n; j++ {
					if inTree[j] {
						continue
					}
					sep := intersect(jt.cliques[i].vars, jt.cliques[j].vars)
					if len(sep) > len(bestSep) {
						best, bestTo, bestSep = i, j, sep
					}
				}
			}
			if best < 0 || len(bestSep) == 0 {
				break
			}
			jt.connect(best, bestTo, bestSep)
			inTree[bestTo] = true
		}
	}
	return nil
}

func (jt *JunctionTree) connect(i, j int, sep []int32) {
	ci, cj := jt.cliques[i], jt.cliques[j]
	ci.nbrs = append(ci.nbrs, j)
	ci.seps = append(ci.seps, sep)
	ci.msgs = append(ci.msgs, nil)
	cj.nbrs = append(cj.nbrs, i)
	cj.seps = append(cj.seps, sep)
	cj.msgs = append(cj.msgs, nil)
}

func intersect(a, b []int32) []int32 {
	set := map[int32]bool{}
	for _, v := range a {
		set[v] = true
	}
	var out []int32
	for _, v := range b {
		if set[v] {
			out = append(out, v)
		}
	}
	return out
}

func isSubset(a, b []int32) bool {
	set := map[int32]bool{}
	for _, v := range b {
		set[v] = true
	}
	for _, v := range a {
		if !set[v] {
			return false
		}
	}
	return true
}

// Calibrate runs the collect and distribute passes, leaving every clique
// with its calibrated belief.
func (jt *JunctionTree) Calibrate() error {
	s := jt.g.States
	n := len(jt.cliques)
	visited := make([]bool, n)
	// Iterative post-order per component.
	for root := 0; root < n; root++ {
		if visited[root] {
			continue
		}
		var order []int
		parent := make(map[int]int)
		stack := []int{root}
		visited[root] = true
		parent[root] = -1
		for len(stack) > 0 {
			c := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			order = append(order, c)
			for _, nb := range jt.cliques[c].nbrs {
				if !visited[nb] {
					visited[nb] = true
					parent[nb] = c
					stack = append(stack, nb)
				}
			}
		}
		// Collect: leaves to root.
		for i := len(order) - 1; i >= 0; i-- {
			c := order[i]
			if p := parent[c]; p >= 0 {
				if err := jt.send(c, p, s); err != nil {
					return err
				}
			}
		}
		// Distribute: root to leaves.
		for _, c := range order {
			for _, nb := range jt.cliques[c].nbrs {
				if parent[nb] == c {
					if err := jt.send(c, nb, s); err != nil {
						return err
					}
				}
			}
		}
	}
	// Final beliefs.
	for _, c := range jt.cliques {
		fs := []*factor{c.potential}
		for k, m := range c.msgs {
			_ = k
			if m != nil {
				fs = append(fs, m)
			}
		}
		b, err := multiplyAll(fs, s)
		if err != nil {
			return err
		}
		c.belief = b
	}
	jt.calibrated = true
	return nil
}

// send computes the message from clique ci to its neighbour cj.
func (jt *JunctionTree) send(ci, cj int, s int) error {
	c := jt.cliques[ci]
	// Product of potential and incoming messages except from cj.
	fs := []*factor{c.potential}
	sepIdx := -1
	for k, nb := range c.nbrs {
		if nb == cj {
			sepIdx = k
			continue
		}
		if c.msgs[k] != nil {
			fs = append(fs, c.msgs[k])
		}
	}
	if sepIdx < 0 {
		return fmt.Errorf("bp: junction tree: %d is not adjacent to %d", cj, ci)
	}
	prod, err := multiplyAll(fs, s)
	if err != nil {
		return err
	}
	// Sum out everything not in the separator.
	sep := c.seps[sepIdx]
	keep := map[int32]bool{}
	for _, v := range sep {
		keep[v] = true
	}
	msg := prod
	for _, v := range append([]int32(nil), msg.vars...) {
		if !keep[v] {
			msg = msg.sumOut(v, s)
		}
	}
	normalizeFactor(msg)
	// Deliver into cj's slot for ci.
	d := jt.cliques[cj]
	for k, nb := range d.nbrs {
		if nb == ci {
			d.msgs[k] = msg
			return nil
		}
	}
	return fmt.Errorf("bp: junction tree: asymmetric adjacency %d/%d", ci, cj)
}

func normalizeFactor(f *factor) {
	var z float64
	for _, v := range f.table {
		z += v
	}
	if z <= 0 {
		return
	}
	for i := range f.table {
		f.table[i] /= z
	}
}

// Marginal returns the exact marginal of node v. Calibrate must have run.
func (jt *JunctionTree) Marginal(v int32) ([]float64, error) {
	if !jt.calibrated {
		return nil, fmt.Errorf("bp: junction tree: Calibrate first")
	}
	if v < 0 || int(v) >= jt.g.NumNodes {
		return nil, fmt.Errorf("bp: junction tree: node %d out of range", v)
	}
	ci := jt.nodeClique[v]
	if ci < 0 {
		// Isolated node: its marginal is its normalized prior.
		s := jt.g.States
		out := make([]float64, s)
		var z float64
		for j, p := range jt.g.Prior(v) {
			out[j] = float64(p)
			z += out[j]
		}
		for j := range out {
			out[j] /= z
		}
		return out, nil
	}
	s := jt.g.States
	f := jt.cliques[ci].belief
	for _, x := range append([]int32(nil), f.vars...) {
		if x != v {
			f = f.sumOut(x, s)
		}
	}
	out := make([]float64, s)
	var z float64
	for j := range out {
		out[j] = f.table[j]
		z += out[j]
	}
	if z <= 0 {
		return nil, fmt.Errorf("bp: junction tree: zero mass for node %d", v)
	}
	for j := range out {
		out[j] /= z
	}
	return out, nil
}

// Width returns the largest clique size (treewidth + 1).
func (jt *JunctionTree) Width() int {
	w := 0
	for _, c := range jt.cliques {
		if len(c.vars) > w {
			w = len(c.vars)
		}
	}
	return w
}

// pickMinFill selects the uneliminated vertex whose elimination adds the
// fewest fill-in edges (ties by id).
func pickMinFill(adj []map[int32]bool, eliminated []bool) int32 {
	best, bestFill := int32(-1), -1
	for v := range adj {
		if eliminated[v] {
			continue
		}
		var nbrs []int32
		for u := range adj[v] {
			if !eliminated[u] {
				nbrs = append(nbrs, u)
			}
		}
		fill := 0
		for i := 0; i < len(nbrs); i++ {
			for j := i + 1; j < len(nbrs); j++ {
				if !adj[nbrs[i]][nbrs[j]] {
					fill++
				}
			}
		}
		if best < 0 || fill < bestFill || (fill == bestFill && int32(v) < best) {
			best, bestFill = int32(v), fill
		}
	}
	return best
}
