package bp

import (
	"container/heap"

	"credo/internal/graph"
	"credo/internal/kernel"
	"credo/internal/telemetry"
)

// RunResidual executes asynchronous residual belief propagation — the
// scheduling discipline of Gonzalez et al.'s Residual Splash (the paper's
// reference [5], its strongest CPU-side related work). Instead of sweeping
// iterations, a priority queue orders nodes by the residual of their
// pending update (the L1 distance between the belief they would adopt and
// the one they hold); the largest residual is always applied first, and
// only its successors' residuals are refreshed.
//
// On graphs where convergence is bottlenecked by a few regions, residual
// scheduling applies far fewer updates than synchronous sweeps. Credo's
// §3.5 work queues are the synchronous approximation of this engine; the
// ablation benchmark compares the two.
//
// Result.Iterations reports applied updates divided by the node count
// (sweep-equivalents, rounded up), so options and reports stay comparable
// with the sweep engines.
func RunResidual(g *graph.Graph, opts Options) Result {
	sc := getScratch()
	res := runResidual(g, opts, sc, nil)
	sc.release()
	return res
}

// RunResidualFrom executes residual BP resuming from the graph's current
// beliefs: instead of seeding every node, only the given seed nodes'
// residuals are computed and enqueued, and the scheduling loop spreads
// from there exactly as in a cold run (an applied update always
// refreshes its successors). It is the warm-start entry point of the
// serving layer: when the graph holds a converged fixpoint for a nearby
// evidence set, passing the evidence-perturbed frontier (the changed
// nodes plus their out-neighbours) re-converges with a fraction of a
// cold start's belief updates.
//
// A nil seeds slice means every node — identical to RunResidual. An
// empty non-nil slice is a valid warm start with no perturbation: the
// run returns immediately, converged, with zero updates. Out-of-range,
// observed and input-free seed nodes are skipped; duplicates are
// harmless.
func RunResidualFrom(g *graph.Graph, opts Options, seeds []int32) Result {
	sc := getScratch()
	var res Result
	if seeds == nil {
		res = runResidual(g, opts, sc, nil)
	} else {
		res = runResidual(g, opts, sc, &seeds)
	}
	sc.release()
	return res
}

// runResidual drives the residual schedule. seeds == nil seeds the full
// node space (cold start); otherwise only *seeds enter the queue.
func runResidual(g *graph.Graph, opts Options, sc *runScratch, seeds *[]int32) Result {
	opts = opts.withDefaults(g.NumNodes)
	defer opts.Trace.Span(engResidual).End()
	s := g.States
	k := kernel.New(g, opts.Kernel)

	var res Result

	probe := opts.Probe
	ctx, endTask := telemetry.BeginRun(engResidual)
	emitRunStart(probe, engResidual, int64(g.NumNodes), opts.Threshold)

	sc.cand = growF32(sc.cand, s)
	cand := sc.cand

	endSeed := telemetry.StartRegion(ctx, "seed")
	pq := &sc.pq
	pq.reset(g.NumNodes)
	seedOne := func(v int32) {
		if v < 0 || int(v) >= g.NumNodes || g.Observed[v] || g.InDegree(v) == 0 {
			return
		}
		residualCandidate(g, &k, sc, &res, v, cand)
		r := graph.L1Diff(cand, g.Belief(v))
		// Nodes already within the element threshold are converged: they
		// would only ever be popped to be discarded, so they stay out of
		// the queue until a parent's change promotes them.
		if r > opts.QueueThreshold {
			pq.update(v, r)
			res.Ops.QueuePushes++
		}
	}
	if seeds == nil {
		for v := int32(0); v < int32(g.NumNodes); v++ {
			seedOne(v)
		}
	} else {
		for _, v := range *seeds {
			seedOne(v)
		}
	}

	endSeed()

	endSched := telemetry.StartRegion(ctx, "schedule")
	batch := int64(g.NumNodes)
	var lastNodes, lastEdges int64
	maxUpdates := int64(opts.MaxIterations) * int64(g.NumNodes)
	var updates int64
	for updates < maxUpdates && pq.Len() > 0 {
		v, r := pq.popMax()
		if r <= opts.QueueThreshold {
			// Every pending residual is below the element threshold.
			res.Converged = true
			break
		}
		// Apply the update.
		residualCandidate(g, &k, sc, &res, v, cand)
		b := g.Belief(v)
		applied := graph.L1Diff(cand, b)
		copy(b, cand)
		res.Ops.NodesProcessed++
		res.Ops.MemStores += int64(s)
		updates++

		// A damped candidate moves the belief only (1−d) of the way to the
		// recombination, so with unchanged parents the node's next residual
		// is exactly d·applied — the node must re-enter the queue at that
		// estimate or it is stranded d·gap short of the fixpoint whenever
		// its neighbours stay sub-threshold (a cold start hides this behind
		// constant neighbour refreshes; a warm start with one large local
		// perturbation does not). The estimate only orders work: the pop
		// recomputes the candidate from live state, and sub-threshold
		// estimates stay out of the queue, preserving the no-re-enqueue
		// discipline for converged nodes.
		if d := opts.Damping; d > 0 {
			if nr := d * applied; nr > opts.QueueThreshold {
				pq.update(v, nr)
				res.Ops.QueuePushes++
			}
		}

		// Refresh the residuals of the successors only. A successor whose
		// refreshed residual sits at or below the element threshold is
		// converged: it leaves the queue (or never enters it) instead of
		// being re-heapified only to be popped and discarded later.
		lo, hi := g.OutOffsets[v], g.OutOffsets[v+1]
		for _, e := range g.OutEdges[lo:hi] {
			dst := g.EdgeDst[e]
			if g.Observed[dst] {
				continue
			}
			residualCandidate(g, &k, sc, &res, dst, cand)
			nr := graph.L1Diff(cand, g.Belief(dst))
			if nr <= opts.QueueThreshold {
				pq.remove(dst)
				continue
			}
			pq.update(dst, nr)
			res.Ops.QueuePushes++
		}

		// Sweep-equivalent batch boundary: one batch is NumNodes applied
		// updates, so trajectories stay comparable with sweep engines.
		if probe != nil && updates%batch == 0 {
			probe.Emit(telemetry.Event{
				Kind:     telemetry.KindIteration,
				Engine:   engResidual,
				Iter:     int32(updates / batch),
				Delta:    pq.maxResidual(),
				Updated:  res.Ops.NodesProcessed - lastNodes,
				Edges:    res.Ops.EdgesProcessed - lastEdges,
				Active:   int64(pq.Len()),
				Items:    int64(g.NumNodes),
				FastPath: sc.ks.Counters.FastPath,
				Rescales: sc.ks.Counters.Rescales,
			})
			lastNodes, lastEdges = res.Ops.NodesProcessed, res.Ops.EdgesProcessed
		}
	}
	endSched()
	if pq.Len() == 0 {
		res.Converged = true
	}
	res.Iterations = int((updates + int64(g.NumNodes) - 1) / int64(g.NumNodes))
	if res.Iterations == 0 && updates > 0 {
		res.Iterations = 1
	}
	res.Ops.Iterations = int64(res.Iterations)
	res.FinalDelta = pq.maxResidual()
	res.Ops.addKernelCounters(sc.ks.Counters)
	emitRunEnd(probe, engResidual, &res)
	endTask()
	return res
}

// residualCandidate fills cand with the belief v would adopt now, reading
// parents' live beliefs through the kernel's fused gather.
func residualCandidate(g *graph.Graph, k *kernel.Kernel, sc *runScratch, res *Result, v int32, cand []float32) {
	s := g.States
	deg := int64(k.NodeUpdate(&sc.ks, cand, v, g.Beliefs))
	res.Ops.EdgesProcessed += deg
	res.Ops.MatrixOps += deg * int64(s*s)
	res.Ops.LogOps += deg*int64(s) + int64(s)
	res.Ops.RandomLoads += deg * int64((s*4+63)/64)
	res.Ops.MemLoads += deg * int64(s)
}

// residualQueue is an indexed max-heap of node residuals supporting
// decrease/increase-key by node id.
type residualQueue struct {
	nodes []int32   // heap order
	pos   []int32   // node -> heap index, -1 when absent
	val   []float32 // node -> residual
}

func newResidualQueue(n int) *residualQueue {
	pq := &residualQueue{}
	pq.reset(n)
	return pq
}

// reset prepares the queue for n nodes, reusing its buffers when they are
// large enough (the queue lives in the pooled run scratch).
func (pq *residualQueue) reset(n int) {
	pq.nodes = growI32(pq.nodes, n)[:0]
	pq.pos = growI32(pq.pos, n)
	pq.val = growF32(pq.val, n)
	for i := range pq.pos {
		pq.pos[i] = -1
		pq.val[i] = 0
	}
}

// Len implements heap.Interface.
func (pq *residualQueue) Len() int { return len(pq.nodes) }

// Less implements heap.Interface (max-heap on residual).
func (pq *residualQueue) Less(i, j int) bool { return pq.val[pq.nodes[i]] > pq.val[pq.nodes[j]] }

// Swap implements heap.Interface.
func (pq *residualQueue) Swap(i, j int) {
	pq.nodes[i], pq.nodes[j] = pq.nodes[j], pq.nodes[i]
	pq.pos[pq.nodes[i]] = int32(i)
	pq.pos[pq.nodes[j]] = int32(j)
}

// Push implements heap.Interface.
func (pq *residualQueue) Push(x any) {
	v := x.(int32)
	pq.pos[v] = int32(len(pq.nodes))
	pq.nodes = append(pq.nodes, v)
}

// Pop implements heap.Interface.
func (pq *residualQueue) Pop() any {
	v := pq.nodes[len(pq.nodes)-1]
	pq.nodes = pq.nodes[:len(pq.nodes)-1]
	pq.pos[v] = -1
	return v
}

// update sets node v's residual, inserting or re-heapifying as needed.
func (pq *residualQueue) update(v int32, r float32) {
	pq.val[v] = r
	if pq.pos[v] < 0 {
		heap.Push(pq, v)
		return
	}
	heap.Fix(pq, int(pq.pos[v]))
}

// remove drops node v from the queue if present; converged nodes leave
// the heap instead of lingering until a discarding pop.
func (pq *residualQueue) remove(v int32) {
	if pq.pos[v] < 0 {
		return
	}
	heap.Remove(pq, int(pq.pos[v]))
}

// popMax removes and returns the node with the largest residual.
func (pq *residualQueue) popMax() (int32, float32) {
	v := heap.Pop(pq).(int32)
	return v, pq.val[v]
}

// maxResidual peeks at the largest pending residual.
func (pq *residualQueue) maxResidual() float32 {
	if len(pq.nodes) == 0 {
		return 0
	}
	return pq.val[pq.nodes[0]]
}
