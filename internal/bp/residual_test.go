package bp

import (
	"math"
	"testing"

	"credo/internal/gen"
	"credo/internal/graph"
)

func TestResidualMatchesSweepBeliefs(t *testing.T) {
	for _, states := range []int{2, 3} {
		g1, err := gen.Synthetic(200, 800, gen.Config{Seed: 33, States: states})
		if err != nil {
			t.Fatal(err)
		}
		g2 := g1.Clone()
		RunNode(g1, Options{})
		res := RunResidual(g2, Options{})
		if !res.Converged {
			t.Fatalf("states=%d: residual BP did not converge: %+v", states, res)
		}
		// Residual BP is asynchronous; fixed points agree within the
		// per-element threshold scale.
		if d := maxBeliefDiff(g1, g2); d > 2e-2 {
			t.Errorf("states=%d: residual beliefs diverge from sweep by %v", states, d)
		}
	}
}

func TestResidualConvergesOnChainWithEvidence(t *testing.T) {
	g := chainGraph(t, 2, 0.9)
	_ = g.Observe(0, 0)
	res := RunResidual(g, Options{})
	if !res.Converged {
		t.Fatalf("did not converge: %+v", res)
	}
	if b := g.Belief(2); b[0] <= b[1] {
		t.Errorf("evidence did not propagate: %v", b)
	}
}

func TestResidualFocusesWork(t *testing.T) {
	// A graph where only one region receives evidence: residual BP should
	// apply far fewer node updates than a full sweep run processes.
	b := graph.NewBuilder(2)
	_ = b.SetShared(graph.DiagonalJointMatrix(2, 0.9))
	const n = 1000
	for i := 0; i < n; i++ {
		_, _ = b.AddNode([]float32{0.5, 0.5})
	}
	// Two disjoint chains: evidence lands only in the first.
	for i := 0; i+1 < n/2; i++ {
		_ = b.AddEdge(int32(i), int32(i+1), nil)
	}
	for i := n / 2; i+1 < n; i++ {
		_ = b.AddEdge(int32(i), int32(i+1), nil)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	_ = g.Observe(0, 1)

	gr := g.Clone()
	resR := RunResidual(gr, Options{})
	gs := g.Clone()
	resS := RunNode(gs, Options{})
	if resR.Ops.NodesProcessed >= resS.Ops.NodesProcessed {
		t.Errorf("residual applied %d updates, sweep %d; expected focus",
			resR.Ops.NodesProcessed, resS.Ops.NodesProcessed)
	}
	// The quiescent chain must be untouched (uniform priors, no inputs
	// changed => no updates).
	if d := float64(gr.Belief(int32(n - 1))[0]); math.Abs(d-0.5) > 1e-6 {
		t.Errorf("quiescent region belief moved to %v", d)
	}
}

func TestResidualObservedNodesClamped(t *testing.T) {
	g, err := gen.Synthetic(80, 320, gen.Config{Seed: 4, States: 3})
	if err != nil {
		t.Fatal(err)
	}
	_ = g.Observe(9, 2)
	RunResidual(g, Options{})
	b := g.Belief(9)
	if b[0] != 0 || b[1] != 0 || b[2] != 1 {
		t.Errorf("observed node drifted to %v", b)
	}
	if err := g.Validate(); err != nil {
		t.Errorf("invalid beliefs after residual run: %v", err)
	}
}

func TestResidualUpdateCap(t *testing.T) {
	g, err := gen.Synthetic(100, 400, gen.Config{Seed: 5, States: 2})
	if err != nil {
		t.Fatal(err)
	}
	res := RunResidual(g, Options{MaxIterations: 2, Threshold: 1e-12, QueueThreshold: 1e-12})
	if res.Ops.NodesProcessed > 2*int64(g.NumNodes) {
		t.Errorf("applied %d updates, cap was %d", res.Ops.NodesProcessed, 2*g.NumNodes)
	}
}

func TestResidualQueueOrdering(t *testing.T) {
	pq := newResidualQueue(5)
	pq.update(0, 0.1)
	pq.update(1, 0.9)
	pq.update(2, 0.5)
	pq.update(1, 0.05) // decrease key
	pq.update(3, 0.7)
	want := []int32{3, 2, 0, 1}
	for _, w := range want {
		v, _ := pq.popMax()
		if v != w {
			t.Fatalf("pop order wrong: got %d, want %d", v, w)
		}
	}
	if pq.Len() != 0 {
		t.Errorf("queue not empty: %d", pq.Len())
	}
	if pq.maxResidual() != 0 {
		t.Errorf("empty queue max residual = %v", pq.maxResidual())
	}
}

func TestDampingSlowsButConverges(t *testing.T) {
	g1, err := gen.Synthetic(300, 1200, gen.Config{Seed: 6, States: 2})
	if err != nil {
		t.Fatal(err)
	}
	g2 := g1.Clone()
	plain := RunNode(g1, Options{})
	damped := RunNode(g2, Options{Damping: 0.5})
	if !damped.Converged {
		t.Fatalf("damped run did not converge: %+v", damped)
	}
	if damped.Iterations < plain.Iterations {
		t.Errorf("damping converged faster (%d < %d); expected slower or equal",
			damped.Iterations, plain.Iterations)
	}
	// Fixed points agree.
	if d := maxBeliefDiff(g1, g2); d > 1e-2 {
		t.Errorf("damped fixed point diverges by %v", d)
	}
}

func TestBlend(t *testing.T) {
	b := []float32{1, 0}
	old := []float32{0, 1}
	Blend(b, old, 0.25)
	if b[0] != 0.75 || b[1] != 0.25 {
		t.Errorf("blend = %v, want [0.75 0.25]", b)
	}
	Blend(b, old, 0) // no-op
	if b[0] != 0.75 {
		t.Errorf("zero damping modified beliefs: %v", b)
	}
}

func TestRecordDeltas(t *testing.T) {
	g, err := gen.Synthetic(100, 400, gen.Config{Seed: 15, States: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, run := range []struct {
		name string
		fn   func(*graph.Graph, Options) Result
	}{{"node", RunNode}, {"edge", RunEdge}, {"maxproduct", RunMaxProduct}} {
		res := run.fn(g.Clone(), Options{RecordDeltas: true})
		if len(res.Deltas) != res.Iterations {
			t.Errorf("%s: %d deltas for %d iterations", run.name, len(res.Deltas), res.Iterations)
		}
		if len(res.Deltas) > 0 && res.Deltas[len(res.Deltas)-1] != res.FinalDelta {
			t.Errorf("%s: last delta %v != final %v", run.name, res.Deltas[len(res.Deltas)-1], res.FinalDelta)
		}
		// Off by default.
		res = run.fn(g.Clone(), Options{})
		if res.Deltas != nil {
			t.Errorf("%s: deltas recorded without opting in", run.name)
		}
	}
}
