package bp

import "credo/internal/telemetry"

// Engine names as they appear in telemetry events — one per serial
// engine in this package. The parallel packages define their own
// (pool.node, relax, omp.edge, cuda.node, ...), so a mixed event
// stream stays attributable.
const (
	engNode        = "bp.node"
	engEdge        = "bp.edge"
	engResidual    = "bp.residual"
	engTraditional = "bp.traditional"
	engMaxProduct  = "bp.maxproduct"
)

// emitRunStart reports the start of one engine execution. All emit
// helpers are nil-safe: with no probe attached they return before
// building the event, which is what keeps the disabled path free of
// allocations and branches beyond one nil check.
func emitRunStart(p telemetry.Probe, engine string, items int64, threshold float32) {
	if p == nil {
		return
	}
	p.Emit(telemetry.Event{
		Kind:      telemetry.KindRunStart,
		Engine:    engine,
		Items:     items,
		Threshold: threshold,
	})
}

// emitRunEnd reports the outcome of a finished run with the cumulative
// counters of its OpCounts (including the kernel counters, so callers
// must emit after addKernelCounters).
func emitRunEnd(p telemetry.Probe, engine string, res *Result) {
	if p == nil {
		return
	}
	p.Emit(telemetry.Event{
		Kind:       telemetry.KindRunEnd,
		Engine:     engine,
		Iter:       int32(res.Iterations),
		Delta:      res.FinalDelta,
		Converged:  res.Converged,
		Updated:    res.Ops.NodesProcessed,
		Edges:      res.Ops.EdgesProcessed,
		StaleDrops: res.Ops.StaleDrops,
		Wasted:     res.Ops.WastedUpdates,
		Contention: res.Ops.QueueContention,
		FastPath:   res.Ops.KernelFastPath,
		Rescales:   res.Ops.RescaleOps,
	})
}
