package bp

import (
	"credo/internal/graph"
)

// RunNode executes loopy BP with per-node processing (paper §3.3, "C Node"):
// each iteration walks the nodes; a node pulls the state of every parent,
// sends it through the edge's joint matrix, and combines the updates with
// its prior. No accumulator or atomics are needed, but every in-edge costs
// a random-order load of the parent's full belief vector.
//
// Updates are Jacobi-style: all reads within an iteration observe the
// beliefs of the previous iteration, matching the parallel implementations.
//
// With the work queue enabled (§3.5), an iteration processes only the
// frontier: nodes with at least one parent whose belief changed by more
// than QueueThreshold in the previous iteration. Quiescent regions are
// skipped and re-activate automatically when change reaches them; the run
// converges when the frontier empties.
func RunNode(g *graph.Graph, opts Options) Result {
	opts = opts.withDefaults(g.NumNodes)
	s := g.States
	gatherLines := int64((s*4 + 63) / 64) // cache lines per random parent gather
	matLines := int64(0)                  // per-edge joint matrices are a second random gather
	if !g.SharedMatrix() {
		matLines = int64((s*s*4 + 63) / 64)
	}
	prev := append([]float32(nil), g.Beliefs...)

	acc := make([]float32, s)
	msg := make([]float32, s)

	var res Result
	var queue, next []int32
	var inNext []bool
	if opts.WorkQueue {
		queue = make([]int32, 0, g.NumNodes)
		next = make([]int32, 0, g.NumNodes)
		inNext = make([]bool, g.NumNodes)
		for v := 0; v < g.NumNodes; v++ {
			queue = append(queue, int32(v))
		}
		res.Ops.QueuePushes += int64(g.NumNodes)
	}

	for iter := 0; iter < opts.MaxIterations; iter++ {
		res.Iterations = iter + 1
		res.Ops.Iterations++
		copy(prev, g.Beliefs)

		var sum float32
		process := func(v int32) float32 {
			if g.Observed[v] {
				return 0
			}
			res.Ops.NodesProcessed++
			prior := g.Prior(v)
			for j := 0; j < s; j++ {
				acc[j] = 0
			}
			lo, hi := g.InOffsets[v], g.InOffsets[v+1]
			for _, e := range g.InEdges[lo:hi] {
				src := g.EdgeSrc[e]
				parent := prev[int(src)*s : int(src)*s+s]
				computeMessage(msg, parent, g.Matrix(e))
				for j := 0; j < s; j++ {
					acc[j] += Logf(msg[j])
				}
				res.Ops.EdgesProcessed++
				res.Ops.RandomLoads += gatherLines + matLines
				res.Ops.MemLoads += int64(s)
				res.Ops.MatrixOps += int64(s * s)
				res.Ops.LogOps += int64(s)
			}
			b := g.Belief(v)
			old := prev[int(v)*s : int(v)*s+s]
			ExpNormalize(b, prior, acc)
			Blend(b, old, opts.Damping)
			res.Ops.LogOps += int64(s)
			res.Ops.MemLoads += int64(2 * s) // prior + previous belief
			res.Ops.MemStores += int64(s)
			return graph.L1Diff(b, old)
		}

		if opts.WorkQueue {
			next = next[:0]
			for _, v := range queue {
				d := process(v)
				sum += d
				if d <= opts.QueueThreshold {
					continue
				}
				// The node moved: its outgoing messages will change, so
				// its successors join the next frontier.
				lo, hi := g.OutOffsets[v], g.OutOffsets[v+1]
				for _, e := range g.OutEdges[lo:hi] {
					dst := g.EdgeDst[e]
					if !inNext[dst] {
						inNext[dst] = true
						next = append(next, dst)
						res.Ops.QueuePushes++
					}
				}
			}
			for _, v := range next {
				inNext[v] = false
			}
			queue, next = next, queue
		} else {
			for v := int32(0); v < int32(g.NumNodes); v++ {
				sum += process(v)
			}
		}

		res.FinalDelta = sum
		if opts.RecordDeltas {
			res.Deltas = append(res.Deltas, sum)
		}
		if sum < opts.Threshold {
			res.Converged = true
			return res
		}
		if opts.WorkQueue && len(queue) == 0 {
			// The frontier is empty: no node's inputs are changing beyond
			// the per-element threshold.
			res.Converged = true
			return res
		}
	}
	return res
}
