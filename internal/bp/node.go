package bp

import (
	"credo/internal/graph"
	"credo/internal/kernel"
	"credo/internal/telemetry"
)

// RunNode executes loopy BP with per-node processing (paper §3.3, "C Node"):
// each iteration walks the nodes; a node pulls the state of every parent,
// sends it through the edge's joint matrix, and combines the updates with
// its prior. No accumulator or atomics are needed, but every in-edge costs
// a random-order load of the parent's full belief vector. Message math and
// combine run through the kernel layer's fused gather (Options.Kernel).
//
// Updates are Jacobi-style: all reads within an iteration observe the
// beliefs of the previous iteration, matching the parallel implementations.
//
// With the work queue enabled (§3.5), an iteration processes only the
// frontier: nodes with at least one parent whose belief changed by more
// than QueueThreshold in the previous iteration. Quiescent regions are
// skipped and re-activate automatically when change reaches them; the run
// converges when the frontier empties.
//
// The hot path allocates nothing in steady state: all buffers come from a
// pooled scratch arena.
func RunNode(g *graph.Graph, opts Options) Result {
	sc := getScratch()
	res := runNode(g, opts, sc)
	sc.release()
	return res
}

func runNode(g *graph.Graph, opts Options, sc *runScratch) Result {
	opts = opts.withDefaults(g.NumNodes)
	defer opts.Trace.Span(engNode).End()
	s := g.States
	gatherLines := int64((s*4 + 63) / 64) // cache lines per random parent gather
	matLines := int64(0)                  // per-edge joint matrices are a second random gather
	if !g.SharedMatrix() {
		matLines = int64((s*s*4 + 63) / 64)
	}
	k := kernel.New(g, opts.Kernel)
	sc.prev = growF32(sc.prev, len(g.Beliefs))
	prev := sc.prev

	var res Result
	queue, next := sc.queue, sc.next
	if opts.WorkQueue {
		queue = growI32(queue, g.NumNodes)
		for v := range queue {
			queue[v] = int32(v)
		}
		next = growI32(next, g.NumNodes)[:0]
		sc.inNext = growBool(sc.inNext, g.NumNodes)
		res.Ops.QueuePushes += int64(g.NumNodes)
	}

	probe := opts.Probe
	ctx, endTask := telemetry.BeginRun(engNode)
	emitRunStart(probe, engNode, int64(g.NumNodes), opts.Threshold)
	var lastNodes, lastEdges int64

	done := false
	for iter := 0; iter < opts.MaxIterations && !done; iter++ {
		res.Iterations = iter + 1
		res.Ops.Iterations++
		endIter := telemetry.StartRegion(ctx, "iteration")
		copy(prev, g.Beliefs)

		var sum float32
		if opts.WorkQueue {
			next = next[:0]
			for _, v := range queue {
				d := nodeStep(g, &k, sc, &res, v, prev, gatherLines, matLines)
				sum += d
				if d <= opts.QueueThreshold {
					continue
				}
				// The node moved: its outgoing messages will change, so
				// its successors join the next frontier.
				lo, hi := g.OutOffsets[v], g.OutOffsets[v+1]
				for _, e := range g.OutEdges[lo:hi] {
					dst := g.EdgeDst[e]
					if !sc.inNext[dst] {
						sc.inNext[dst] = true
						next = append(next, dst)
						res.Ops.QueuePushes++
					}
				}
			}
			for _, v := range next {
				sc.inNext[v] = false
			}
			queue, next = next, queue
		} else {
			for v := int32(0); v < int32(g.NumNodes); v++ {
				sum += nodeStep(g, &k, sc, &res, v, prev, gatherLines, matLines)
			}
		}

		res.FinalDelta = sum
		if opts.RecordDeltas {
			res.Deltas = append(res.Deltas, sum)
		}
		if sum < opts.Threshold {
			res.Converged = true
			done = true
		} else if opts.WorkQueue && len(queue) == 0 {
			// The frontier is empty: no node's inputs are changing beyond
			// the per-element threshold.
			res.Converged = true
			done = true
		}
		endIter()
		if probe != nil {
			active := int64(-1)
			if opts.WorkQueue {
				active = int64(len(queue))
			}
			probe.Emit(telemetry.Event{
				Kind:     telemetry.KindIteration,
				Engine:   engNode,
				Iter:     int32(iter + 1),
				Delta:    sum,
				Updated:  res.Ops.NodesProcessed - lastNodes,
				Edges:    res.Ops.EdgesProcessed - lastEdges,
				Active:   active,
				Items:    int64(g.NumNodes),
				FastPath: sc.ks.Counters.FastPath,
				Rescales: sc.ks.Counters.Rescales,
			})
			lastNodes, lastEdges = res.Ops.NodesProcessed, res.Ops.EdgesProcessed
		}
	}
	sc.queue, sc.next = queue, next
	res.Ops.addKernelCounters(sc.ks.Counters)
	emitRunEnd(probe, engNode, &res)
	endTask()
	return res
}

// nodeStep recomputes node v's belief from prev through the kernel and
// returns its L1 change. It is the per-node body of both the full sweep
// and the frontier sweep, kept a plain function so RunNode's hot path
// carries no closures (closures allocate). Damping and loop correction
// happen inside the kernel (Options.Kernel carries both after
// ResolveVariant).
func nodeStep(g *graph.Graph, k *kernel.Kernel, sc *runScratch, res *Result, v int32, prev []float32, gatherLines, matLines int64) float32 {
	if g.Observed[v] {
		return 0
	}
	res.Ops.NodesProcessed++
	s := g.States
	b := g.Beliefs[int(v)*s : int(v)*s+s]
	old := prev[int(v)*s : int(v)*s+s]
	deg := int64(k.NodeUpdate(&sc.ks, b, v, prev))
	res.Ops.EdgesProcessed += deg
	res.Ops.RandomLoads += deg * (gatherLines + matLines)
	res.Ops.MemLoads += deg*int64(s) + int64(2*s) // parent gathers + prior + previous belief
	res.Ops.MatrixOps += deg * int64(s*s)
	res.Ops.LogOps += deg*int64(s) + int64(s)
	res.Ops.MemStores += int64(s)
	return graph.L1Diff(b, old)
}
