package bp

import (
	"math"
	"testing"

	"credo/internal/gen"
	"credo/internal/graph"
)

// familyOut builds the pairwise approximation of the paper's Figure 1
// family-out network: fo→lo, fo→do, bp→do, do→hb with hand-written
// conditionals. (The original p(do|fo,bp) CPT is three-variable; the MRF
// move of §2.1 makes all couplings pairwise.)
func familyOut(t *testing.T) (*graph.Graph, map[string]int32) {
	t.Helper()
	b := graph.NewBuilder(2)
	ids := map[string]int32{}
	add := func(name string, prior []float32) {
		id, err := b.AddNamedNode(name, prior)
		if err != nil {
			t.Fatal(err)
		}
		ids[name] = id
	}
	// State 0 = true, state 1 = false.
	add("family-out", []float32{0.15, 0.85})
	add("bowel-problem", []float32{0.01, 0.99})
	add("light-on", []float32{0.5, 0.5})
	add("dog-out", []float32{0.5, 0.5})
	add("hear-bark", []float32{0.5, 0.5})

	mat := func(tt, tf, ft, ff float32) *graph.JointMatrix {
		m := graph.NewJointMatrix(2, 2)
		m.Set(0, 0, tt)
		m.Set(0, 1, tf)
		m.Set(1, 0, ft)
		m.Set(1, 1, ff)
		return &m
	}
	edge := func(src, dst string, m *graph.JointMatrix) {
		if err := b.AddEdge(ids[src], ids[dst], m); err != nil {
			t.Fatal(err)
		}
	}
	edge("family-out", "light-on", mat(0.6, 0.4, 0.05, 0.95))
	edge("family-out", "dog-out", mat(0.88, 0.12, 0.2, 0.8))
	edge("bowel-problem", "dog-out", mat(0.95, 0.05, 0.4, 0.6))
	edge("dog-out", "hear-bark", mat(0.7, 0.3, 0.01, 0.99))

	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g, ids
}

func TestExactTreeMatchesBruteForce(t *testing.T) {
	g, _ := familyOut(t)
	want, err := BruteForceMarginals(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := ExactTree(g); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumNodes; v++ {
		for j := 0; j < g.States; j++ {
			got := float64(g.Belief(int32(v))[j])
			if math.Abs(got-want[v][j]) > 1e-5 {
				t.Errorf("node %d state %d: exact tree %v, brute force %v", v, j, got, want[v][j])
			}
		}
	}
}

func TestExactTreeWithObservation(t *testing.T) {
	g, ids := familyOut(t)
	if err := g.Observe(ids["light-on"], 0); err != nil {
		t.Fatal(err)
	}
	want, err := BruteForceMarginals(g)
	if err != nil {
		t.Fatal(err)
	}
	baseline := want[ids["family-out"]][0]
	if err := ExactTree(g); err != nil {
		t.Fatal(err)
	}
	got := float64(g.Belief(ids["family-out"])[0])
	if math.Abs(got-baseline) > 1e-5 {
		t.Errorf("posterior p(family-out|light-on) = %v, oracle %v", got, baseline)
	}
	// Seeing the light on must raise the probability the family is out
	// above the 0.15 prior.
	if got <= 0.15 {
		t.Errorf("observation did not raise posterior: %v", got)
	}
}

func TestExactTreeRandomTreesMatchOracle(t *testing.T) {
	for _, tc := range []struct{ n, branching, states int }{
		{7, 2, 2}, {10, 3, 2}, {6, 1, 3}, {9, 2, 3},
	} {
		g, err := gen.DirectedTree(tc.n, tc.branching, gen.Config{Seed: int64(tc.n * tc.states), States: tc.states})
		if err != nil {
			t.Fatal(err)
		}
		want, err := BruteForceMarginals(g)
		if err != nil {
			t.Fatal(err)
		}
		if err := ExactTree(g); err != nil {
			t.Fatal(err)
		}
		for v := 0; v < g.NumNodes; v++ {
			for j := 0; j < g.States; j++ {
				got := float64(g.Belief(int32(v))[j])
				if math.Abs(got-want[v][j]) > 1e-4 {
					t.Fatalf("tree n=%d b=%d s=%d node %d state %d: got %v want %v",
						tc.n, tc.branching, tc.states, v, j, got, want[v][j])
				}
			}
		}
	}
}

func TestExactTreeRejectsCycles(t *testing.T) {
	g, err := gen.Synthetic(10, 40, gen.Config{Seed: 1, States: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := ExactTree(g); err == nil {
		t.Error("cyclic graph accepted by exact tree engine")
	}
	// Doubled undirected links are length-2 factor cycles.
	g2, err := gen.Tree(7, 2, gen.Config{Seed: 1, States: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := ExactTree(g2); err == nil {
		t.Error("doubled tree accepted by exact tree engine")
	}
}

func TestBruteForceInfeasible(t *testing.T) {
	g, err := gen.Synthetic(64, 128, gen.Config{Seed: 1, States: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BruteForceMarginals(g); err == nil {
		t.Error("brute force accepted an infeasible state space")
	}
}

func TestTraditionalOnTree(t *testing.T) {
	g, err := gen.DirectedTree(31, 2, gen.Config{Seed: 4, States: 2})
	if err != nil {
		t.Fatal(err)
	}
	res := RunTraditional(g, Options{})
	if res.Iterations != 2 {
		t.Errorf("traditional ran %d sweeps, want 2", res.Iterations)
	}
	if err := g.Validate(); err != nil {
		t.Errorf("beliefs invalid after traditional run: %v", err)
	}
	// Evidence must flow: observe the root and re-run.
	g2, err := gen.DirectedTree(31, 2, gen.Config{Seed: 4, States: 2})
	if err != nil {
		t.Fatal(err)
	}
	_ = g2.Observe(0, 0)
	RunTraditional(g2, Options{})
	if g2.Belief(1)[0] == g.Belief(1)[0] {
		t.Error("observing the root did not change a child's belief")
	}
}

func TestTraditionalIsSlowerThanLoopy(t *testing.T) {
	// The §2.1.1 claim, at miniature scale: naive traditional BP performs
	// far more work (memory loads dominate via level scans) than loopy
	// by-edge on the same graph.
	g, err := gen.Synthetic(1000, 4000, gen.Config{Seed: 6, States: 2})
	if err != nil {
		t.Fatal(err)
	}
	trad := RunTraditional(g.Clone(), Options{})
	loopy := RunEdge(g.Clone(), Options{})
	tradWork := trad.Ops.MemLoads + trad.Ops.MatrixOps
	loopyWork := loopy.Ops.MemLoads + loopy.Ops.MatrixOps
	if tradWork < 2*loopyWork {
		t.Errorf("traditional work %d not clearly above loopy %d", tradWork, loopyWork)
	}
}
