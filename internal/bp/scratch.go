package bp

import (
	"sync"

	"credo/internal/kernel"
)

// runScratch is the reusable arena behind the sequential engines' hot
// paths. Every buffer a run needs lives here; runs borrow one from
// scratchPool and return it on exit, so steady-state calls allocate
// nothing (locked by the AllocsPerRun regression tests).
type runScratch struct {
	prev   []float32      // previous-iteration beliefs (Jacobi reads)
	acc    []float32      // per-node log accumulators (edge paradigm)
	lmsg   []float32      // cached log of each edge's current message
	cand   []float32      // candidate belief (residual engine)
	queue  []int32        // work-queue frontier
	next   []int32        // next frontier
	inNext []bool         // frontier membership flags
	level  []int32        // level numbers (traditional engine)
	pq     residualQueue  // indexed max-heap (residual engine)
	ks     kernel.Scratch // kernel combine state
}

var scratchPool = sync.Pool{New: func() any { return new(runScratch) }}

func getScratch() *runScratch { return scratchPool.Get().(*runScratch) }

func (sc *runScratch) release() {
	sc.ks.Counters = kernel.Counters{}
	scratchPool.Put(sc)
}

// growF32 returns a length-n slice backed by buf when it has the capacity,
// reallocating otherwise. Contents are unspecified; callers initialize.
func growF32(buf []float32, n int) []float32 {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]float32, n)
}

// growI32 is growF32 for int32 slices.
func growI32(buf []int32, n int) []int32 {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]int32, n)
}

// growBool returns a length-n all-false slice backed by buf when possible.
func growBool(buf []bool, n int) []bool {
	if cap(buf) >= n {
		buf = buf[:n]
		for i := range buf {
			buf[i] = false
		}
		return buf
	}
	return make([]bool, n)
}
