package bp

import (
	"credo/internal/graph"
)

// RunEdge executes loopy BP with per-edge processing (paper §3.3, "C Edge"):
// each iteration walks the directed edges; an edge pulls only its source
// node's state, sends it through the joint matrix, and folds the resulting
// message into its destination's accumulator. Each node then finishes by
// combining its accumulator with its prior. The accumulator is kept in log
// space and updated incrementally (new-message minus old-message), which is
// what lets the work queue skip quiescent edges without losing their
// contribution.
//
// With the work queue enabled (§3.5), an iteration processes only the
// frontier: edges whose source belief changed by more than QueueThreshold
// in the previous iteration. The run converges when the frontier empties.
//
// In the single-threaded engine the accumulator updates are plain adds; the
// parallel engines perform the same update atomically (the extra cost the
// paper attributes to the edge paradigm).
func RunEdge(g *graph.Graph, opts Options) Result {
	opts = opts.withDefaults(g.NumNodes)
	s := g.States
	matLines := int64(0) // per-edge joint matrices cost a random gather each
	if !g.SharedMatrix() {
		matLines = int64((s*s*4 + 63) / 64)
	}
	prev := append([]float32(nil), g.Beliefs...)

	// Log-domain accumulator per node, primed with the initial messages.
	acc := make([]float32, g.NumNodes*s)
	for e := 0; e < g.NumEdges; e++ {
		dst := int(g.EdgeDst[e])
		m := g.Message(int32(e))
		for j := 0; j < s; j++ {
			acc[dst*s+j] += Logf(m[j])
		}
	}

	msg := make([]float32, s)

	var res Result
	var queue, next []int32
	var inNext []bool
	if opts.WorkQueue {
		queue = make([]int32, 0, g.NumEdges)
		next = make([]int32, 0, g.NumEdges)
		inNext = make([]bool, g.NumEdges)
		for e := 0; e < g.NumEdges; e++ {
			queue = append(queue, int32(e))
		}
		res.Ops.QueuePushes += int64(g.NumEdges)
	}

	processEdge := func(e int32) {
		res.Ops.EdgesProcessed++
		src, dst := g.EdgeSrc[e], g.EdgeDst[e]
		parent := prev[int(src)*s : int(src)*s+s]
		computeMessage(msg, parent, g.Matrix(e))
		old := g.Message(e)
		a := acc[int(dst)*s : int(dst)*s+s]
		for j := 0; j < s; j++ {
			a[j] += Logf(msg[j]) - Logf(old[j])
			old[j] = msg[j]
		}
		res.Ops.MemLoads += int64(2 * s) // source belief + old message
		res.Ops.RandomLoads += matLines
		res.Ops.MemStores += int64(2 * s)
		res.Ops.MatrixOps += int64(s * s)
		res.Ops.LogOps += int64(2 * s)
	}

	for iter := 0; iter < opts.MaxIterations; iter++ {
		res.Iterations = iter + 1
		res.Ops.Iterations++
		copy(prev, g.Beliefs)

		if opts.WorkQueue {
			for _, e := range queue {
				processEdge(e)
			}
		} else {
			for e := int32(0); e < int32(g.NumEdges); e++ {
				processEdge(e)
			}
		}

		// Combine stage: every node folds its accumulator with its prior.
		var sum float32
		combine := func(v int32) float32 {
			if g.Observed[v] {
				return 0
			}
			res.Ops.NodesProcessed++
			b := g.Beliefs[int(v)*s : int(v)*s+s]
			old := prev[int(v)*s : int(v)*s+s]
			ExpNormalize(b, g.Priors[int(v)*s:int(v)*s+s], acc[int(v)*s:int(v)*s+s])
			Blend(b, old, opts.Damping)
			res.Ops.LogOps += int64(s)
			res.Ops.MemLoads += int64(3 * s) // prior + accumulator + previous
			res.Ops.MemStores += int64(s)
			return graph.L1Diff(b, old)
		}

		if opts.WorkQueue {
			next = next[:0]
			for v := int32(0); v < int32(g.NumNodes); v++ {
				d := combine(v)
				sum += d
				if d <= opts.QueueThreshold {
					continue
				}
				// The node moved: its outgoing edges carry stale messages
				// and join the next frontier.
				lo, hi := g.OutOffsets[v], g.OutOffsets[v+1]
				for _, e := range g.OutEdges[lo:hi] {
					if !inNext[e] {
						inNext[e] = true
						next = append(next, e)
						res.Ops.QueuePushes++
					}
				}
			}
			for _, e := range next {
				inNext[e] = false
			}
			queue, next = next, queue
		} else {
			for v := int32(0); v < int32(g.NumNodes); v++ {
				sum += combine(v)
			}
		}

		res.FinalDelta = sum
		if opts.RecordDeltas {
			res.Deltas = append(res.Deltas, sum)
		}
		if sum < opts.Threshold {
			res.Converged = true
			return res
		}
		if opts.WorkQueue && len(queue) == 0 {
			res.Converged = true
			return res
		}
	}
	return res
}
