package bp

import (
	"credo/internal/graph"
	"credo/internal/kernel"
	"credo/internal/telemetry"
)

// RunEdge executes loopy BP with per-edge processing (paper §3.3, "C Edge"):
// each iteration walks the directed edges; an edge pulls only its source
// node's state, sends it through the joint matrix (the kernel layer's
// transposed fused message), and folds the resulting message into its
// destination's accumulator. Each node then finishes by combining its
// accumulator with its prior. The accumulator is kept in log space and
// updated incrementally (new-message minus old-message), which is what lets
// the work queue skip quiescent edges without losing their contribution;
// the incremental form is inherently logarithmic, so the edge paradigm
// keeps log accumulators under every kernel mode, but a per-edge cache of
// each message's log halves the transcendental count of the steady state.
//
// With the work queue enabled (§3.5), an iteration processes only the
// frontier: edges whose source belief changed by more than QueueThreshold
// in the previous iteration. The run converges when the frontier empties.
//
// In the single-threaded engine the accumulator updates are plain adds; the
// parallel engines perform the same update atomically (the extra cost the
// paper attributes to the edge paradigm).
//
// All buffers — including the O(NumNodes·States) accumulator this engine
// historically reallocated every call — come from a pooled scratch arena,
// so steady-state calls allocate nothing.
func RunEdge(g *graph.Graph, opts Options) Result {
	sc := getScratch()
	res := runEdge(g, opts, sc)
	sc.release()
	return res
}

func runEdge(g *graph.Graph, opts Options, sc *runScratch) Result {
	opts = opts.withDefaults(g.NumNodes)
	defer opts.Trace.Span(engEdge).End()
	s := g.States
	matLines := int64(0) // per-edge joint matrices cost a random gather each
	if !g.SharedMatrix() {
		matLines = int64((s*s*4 + 63) / 64)
	}
	k := kernel.New(g, opts.Kernel)
	sc.prev = growF32(sc.prev, len(g.Beliefs))
	prev := sc.prev

	// Log-domain accumulator per node, primed with the initial messages.
	// lmsg mirrors it per edge: the log of each edge's current message, so
	// the steady-state incremental update computes one Logf, not two.
	sc.acc = growF32(sc.acc, g.NumNodes*s)
	acc := sc.acc
	for i := range acc {
		acc[i] = 0
	}
	sc.lmsg = growF32(sc.lmsg, g.NumEdges*s)
	lmsg := sc.lmsg
	for e := 0; e < g.NumEdges; e++ {
		dst := int(g.EdgeDst[e])
		m := g.Message(int32(e))
		for j := 0; j < s; j++ {
			l := Logf(m[j])
			lmsg[e*s+j] = l
			acc[dst*s+j] += l
		}
	}

	var msgArr [graph.MaxStates]float32
	msg := msgArr[:s]

	var res Result
	queue, next := sc.queue, sc.next
	if opts.WorkQueue {
		queue = growI32(queue, g.NumEdges)
		for e := range queue {
			queue[e] = int32(e)
		}
		next = growI32(next, g.NumEdges)[:0]
		sc.inNext = growBool(sc.inNext, g.NumEdges)
		res.Ops.QueuePushes += int64(g.NumEdges)
	}

	probe := opts.Probe
	ctx, endTask := telemetry.BeginRun(engEdge)
	emitRunStart(probe, engEdge, int64(g.NumEdges), opts.Threshold)
	var lastNodes, lastEdges int64

	done := false
	for iter := 0; iter < opts.MaxIterations && !done; iter++ {
		res.Iterations = iter + 1
		res.Ops.Iterations++
		endIter := telemetry.StartRegion(ctx, "iteration")
		copy(prev, g.Beliefs)

		if opts.WorkQueue {
			for _, e := range queue {
				edgeStep(g, &k, &sc.ks, &res, e, prev, acc, lmsg, msg, matLines)
			}
		} else {
			for e := int32(0); e < int32(g.NumEdges); e++ {
				edgeStep(g, &k, &sc.ks, &res, e, prev, acc, lmsg, msg, matLines)
			}
		}

		// Combine stage: every node folds its accumulator with its prior.
		var sum float32
		if opts.WorkQueue {
			next = next[:0]
			for v := int32(0); v < int32(g.NumNodes); v++ {
				d := edgeCombine(g, &res, v, prev, acc, opts.Damping)
				sum += d
				if d <= opts.QueueThreshold {
					continue
				}
				// The node moved: its outgoing edges carry stale messages
				// and join the next frontier.
				lo, hi := g.OutOffsets[v], g.OutOffsets[v+1]
				for _, e := range g.OutEdges[lo:hi] {
					if !sc.inNext[e] {
						sc.inNext[e] = true
						next = append(next, e)
						res.Ops.QueuePushes++
					}
				}
			}
			for _, e := range next {
				sc.inNext[e] = false
			}
			queue, next = next, queue
		} else {
			for v := int32(0); v < int32(g.NumNodes); v++ {
				sum += edgeCombine(g, &res, v, prev, acc, opts.Damping)
			}
		}

		res.FinalDelta = sum
		if opts.RecordDeltas {
			res.Deltas = append(res.Deltas, sum)
		}
		if sum < opts.Threshold {
			res.Converged = true
			done = true
		} else if opts.WorkQueue && len(queue) == 0 {
			res.Converged = true
			done = true
		}
		endIter()
		if probe != nil {
			active := int64(-1)
			if opts.WorkQueue {
				active = int64(len(queue))
			}
			probe.Emit(telemetry.Event{
				Kind:     telemetry.KindIteration,
				Engine:   engEdge,
				Iter:     int32(iter + 1),
				Delta:    sum,
				Updated:  res.Ops.NodesProcessed - lastNodes,
				Edges:    res.Ops.EdgesProcessed - lastEdges,
				Active:   active,
				Items:    int64(g.NumEdges),
				FastPath: sc.ks.Counters.FastPath,
				Rescales: sc.ks.Counters.Rescales,
			})
			lastNodes, lastEdges = res.Ops.NodesProcessed, res.Ops.EdgesProcessed
		}
	}
	sc.queue, sc.next = queue, next
	res.Ops.addKernelCounters(sc.ks.Counters)
	emitRunEnd(probe, engEdge, &res)
	endTask()
	return res
}

// edgeStep recomputes edge e's message from its source's previous belief
// and folds the change into the destination's log accumulator, using the
// cached log of the outgoing message instead of recomputing it.
func edgeStep(g *graph.Graph, k *kernel.Kernel, ks *kernel.Scratch, res *Result, e int32, prev, acc, lmsg, msg []float32, matLines int64) {
	res.Ops.EdgesProcessed++
	s := len(msg)
	src, dst := g.EdgeSrc[e], g.EdgeDst[e]
	k.Message(ks, msg, e, prev[int(src)*s:int(src)*s+s])
	old := g.Messages[int(e)*s : int(e)*s+s]
	a := acc[int(dst)*s : int(dst)*s+s]
	lm := lmsg[int(e)*s : int(e)*s+s]
	for j := 0; j < s; j++ {
		l := Logf(msg[j])
		a[j] += l - lm[j]
		lm[j] = l
		old[j] = msg[j]
	}
	res.Ops.MemLoads += int64(2 * s) // source belief + old message log
	res.Ops.RandomLoads += matLines
	res.Ops.MemStores += int64(2 * s)
	res.Ops.MatrixOps += int64(s * s)
	// The abstract algorithm evaluates two logs per entry (new and old
	// message); the cache elides one, but the count models the algorithm
	// so perfmodel pricing stays comparable.
	res.Ops.LogOps += int64(2 * s)
}

// edgeCombine folds node v's log accumulator with its prior and returns
// the L1 belief change.
func edgeCombine(g *graph.Graph, res *Result, v int32, prev, acc []float32, damping float32) float32 {
	if g.Observed[v] {
		return 0
	}
	res.Ops.NodesProcessed++
	s := g.States
	b := g.Beliefs[int(v)*s : int(v)*s+s]
	old := prev[int(v)*s : int(v)*s+s]
	ExpNormalize(b, g.Priors[int(v)*s:int(v)*s+s], acc[int(v)*s:int(v)*s+s])
	Blend(b, old, damping)
	res.Ops.LogOps += int64(s)
	res.Ops.MemLoads += int64(3 * s) // prior + accumulator + previous
	res.Ops.MemStores += int64(s)
	return graph.L1Diff(b, old)
}
