package bp

import (
	"fmt"
	"sort"

	"credo/internal/graph"
)

// maxFactorEntries bounds intermediate factor tables during variable
// elimination; exceeding it means the graph's treewidth is too large for
// exact inference (use loopy BP instead).
const maxFactorEntries = 1 << 22

// VariableElimination computes the exact marginal of node query under the
// pairwise model p(x) ∝ Π_v prior_v(x_v) · Π_e J_e(x_src, x_dst), by
// eliminating every other variable in min-degree order. Unlike ExactTree
// it handles loopy graphs — it is the flat cousin of the junction-tree
// compilation the paper's related work (Bistaffa et al.) runs on GPUs —
// at a cost exponential in the graph's treewidth.
func VariableElimination(g *graph.Graph, query int32) ([]float64, error) {
	if query < 0 || int(query) >= g.NumNodes {
		return nil, fmt.Errorf("bp: variable elimination: query %d out of range", query)
	}
	s := g.States

	// Initial factors: one unary per node, one pairwise per edge.
	var factors []*factor
	for v := int32(0); v < int32(g.NumNodes); v++ {
		f := &factor{vars: []int32{v}, table: make([]float64, s)}
		for j, p := range g.Prior(v) {
			f.table[j] = float64(p)
		}
		factors = append(factors, f)
	}
	for e := 0; e < g.NumEdges; e++ {
		src, dst := g.EdgeSrc[e], g.EdgeDst[e]
		m := g.Matrix(int32(e))
		var f *factor
		if src == dst {
			// Self-loop: the diagonal acts as an extra unary potential.
			f = &factor{vars: []int32{src}, table: make([]float64, s)}
			for j := 0; j < s; j++ {
				f.table[j] = float64(m.At(j, j))
			}
		} else {
			f = &factor{vars: []int32{src, dst}, table: make([]float64, s*s)}
			for i := 0; i < s; i++ {
				for j := 0; j < s; j++ {
					f.table[i*s+j] = float64(m.At(i, j))
				}
			}
		}
		factors = append(factors, f)
	}

	// Eliminate in min-degree order (degree = neighbours in the current
	// factor hypergraph), skipping the query.
	remaining := make(map[int32]bool, g.NumNodes)
	for v := int32(0); v < int32(g.NumNodes); v++ {
		if v != query {
			remaining[v] = true
		}
	}
	for len(remaining) > 0 {
		v := pickMinDegree(remaining, factors)
		var touching, rest []*factor
		for _, f := range factors {
			if f.has(v) {
				touching = append(touching, f)
			} else {
				rest = append(rest, f)
			}
		}
		prod, err := multiplyAll(touching, s)
		if err != nil {
			return nil, err
		}
		factors = append(rest, prod.sumOut(v, s))
		delete(remaining, v)
	}

	// Multiply what's left (all over the query variable) and normalize.
	prod, err := multiplyAll(factors, s)
	if err != nil {
		return nil, err
	}
	if len(prod.vars) != 1 || prod.vars[0] != query {
		return nil, fmt.Errorf("bp: variable elimination: residual factor over %v", prod.vars)
	}
	var z float64
	for _, p := range prod.table {
		z += p
	}
	if z <= 0 {
		return nil, fmt.Errorf("bp: variable elimination: zero total mass")
	}
	out := make([]float64, s)
	for j := range out {
		out[j] = prod.table[j] / z
	}
	return out, nil
}

// AllMarginals runs VariableElimination for every node.
func AllMarginals(g *graph.Graph) ([][]float64, error) {
	out := make([][]float64, g.NumNodes)
	for v := int32(0); v < int32(g.NumNodes); v++ {
		m, err := VariableElimination(g, v)
		if err != nil {
			return nil, err
		}
		out[v] = m
	}
	return out, nil
}

// factor is a table over an ordered set of variables, row-major with the
// last variable varying fastest; every variable has the same arity.
type factor struct {
	vars  []int32
	table []float64
}

func (f *factor) has(v int32) bool {
	for _, x := range f.vars {
		if x == v {
			return true
		}
	}
	return false
}

// index returns the position of assignment (one state per var, aligned
// with f.vars) in the flat table.
func (f *factor) index(assign map[int32]int, s int) int {
	idx := 0
	for _, v := range f.vars {
		idx = idx*s + assign[v]
	}
	return idx
}

// multiplyAll returns the product factor over the union of variables.
func multiplyAll(fs []*factor, s int) (*factor, error) {
	if len(fs) == 0 {
		return &factor{table: []float64{1}}, nil
	}
	// Union of variables, stable order.
	seen := map[int32]bool{}
	var vars []int32
	for _, f := range fs {
		for _, v := range f.vars {
			if !seen[v] {
				seen[v] = true
				vars = append(vars, v)
			}
		}
	}
	size := 1
	for range vars {
		size *= s
		if size > maxFactorEntries {
			return nil, fmt.Errorf("bp: variable elimination: factor over %d variables exceeds the treewidth budget", len(vars))
		}
	}
	out := &factor{vars: vars, table: make([]float64, size)}
	assign := make(map[int32]int, len(vars))
	for idx := 0; idx < size; idx++ {
		rem := idx
		for i := len(vars) - 1; i >= 0; i-- {
			assign[vars[i]] = rem % s
			rem /= s
		}
		p := 1.0
		for _, f := range fs {
			p *= f.table[f.index(assign, s)]
			if p == 0 {
				break
			}
		}
		out.table[idx] = p
	}
	return out, nil
}

// sumOut marginalizes variable v out of the factor.
func (f *factor) sumOut(v int32, s int) *factor {
	var vars []int32
	for _, x := range f.vars {
		if x != v {
			vars = append(vars, x)
		}
	}
	size := 1
	for range vars {
		size *= s
	}
	out := &factor{vars: vars, table: make([]float64, size)}
	assign := make(map[int32]int, len(f.vars))
	total := 1
	for range f.vars {
		total *= s
	}
	for idx := 0; idx < total; idx++ {
		rem := idx
		for i := len(f.vars) - 1; i >= 0; i-- {
			assign[f.vars[i]] = rem % s
			rem /= s
		}
		out.table[out.index(assign, s)] += f.table[idx]
	}
	return out
}

// pickMinDegree selects the remaining variable appearing with the fewest
// distinct neighbours across current factors (ties broken by id).
func pickMinDegree(remaining map[int32]bool, factors []*factor) int32 {
	type cand struct {
		v   int32
		deg int
	}
	var cands []cand
	for v := range remaining {
		nbrs := map[int32]bool{}
		for _, f := range factors {
			if !f.has(v) {
				continue
			}
			for _, x := range f.vars {
				if x != v {
					nbrs[x] = true
				}
			}
		}
		cands = append(cands, cand{v, len(nbrs)})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].deg != cands[j].deg {
			return cands[i].deg < cands[j].deg
		}
		return cands[i].v < cands[j].v
	})
	return cands[0].v
}
