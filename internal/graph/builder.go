package graph

import (
	"fmt"
)

// Builder accumulates nodes and directed edges and produces an immutable
// Graph with compressed adjacency indices. It is the single construction
// path shared by the generators and all three input parsers, so every
// implementation sees identical index layouts.
type Builder struct {
	states   int
	shared   *JointMatrix
	names    []string
	priors   []float32
	observed []bool
	src, dst []int32
	mats     []JointMatrix
}

// NewBuilder returns a builder for nodes of the given belief width.
func NewBuilder(states int) *Builder {
	return &Builder{states: states}
}

// States returns the belief width the builder was created with.
func (b *Builder) States() int { return b.states }

// NumNodes returns the number of nodes added so far.
func (b *Builder) NumNodes() int { return len(b.observed) }

// NumEdges returns the number of directed edges added so far.
func (b *Builder) NumEdges() int { return len(b.src) }

// SetShared installs the single joint probability matrix used by every edge
// (the large-graph refinement of paper §2.2). Calling it disables per-edge
// matrices.
func (b *Builder) SetShared(m JointMatrix) error {
	if int(m.Rows) != b.states || int(m.Cols) != b.states {
		return fmt.Errorf("graph: shared matrix %dx%d, want %dx%d", m.Rows, m.Cols, b.states, b.states)
	}
	if len(m.Data) != int(m.Rows)*int(m.Cols) {
		return fmt.Errorf("graph: shared matrix %dx%d backed by %d values", m.Rows, m.Cols, len(m.Data))
	}
	b.shared = &m
	return nil
}

// AddNode appends a node with the given prior distribution and returns its
// id. The prior is copied and normalized. A nil prior means uniform.
func (b *Builder) AddNode(prior []float32) (int32, error) {
	return b.AddNamedNode("", prior)
}

// AddNamedNode appends a named node with the given prior distribution.
func (b *Builder) AddNamedNode(name string, prior []float32) (int32, error) {
	if prior != nil && len(prior) != b.states {
		return 0, fmt.Errorf("graph: node prior has %d states, want %d", len(prior), b.states)
	}
	id := int32(len(b.observed))
	start := len(b.priors)
	b.priors = append(b.priors, make([]float32, b.states)...)
	p := b.priors[start : start+b.states]
	if prior == nil {
		u := float32(1) / float32(b.states)
		for i := range p {
			p[i] = u
		}
	} else {
		copy(p, prior)
		Normalize(p)
	}
	b.observed = append(b.observed, false)
	if name != "" || len(b.names) > 0 {
		for len(b.names) < int(id) {
			b.names = append(b.names, "")
		}
		b.names = append(b.names, name)
	}
	return id, nil
}

// ReserveNodes bulk-appends n anonymous nodes with zeroed priors and
// returns the id of the first, growing every node-indexed array exactly
// once. The caller must subsequently cover the whole reservation with
// SetPriorBlock calls — a node left unset keeps a zero prior, which Build
// does not repair. This is the allocation half of the parallel ingest
// path's bulk append; the filling half is safe to run concurrently.
func (b *Builder) ReserveNodes(n int) int32 {
	id := int32(len(b.observed))
	b.priors = append(b.priors, make([]float32, n*b.states)...)
	b.observed = append(b.observed, make([]bool, n)...)
	return id
}

// SetPriorBlock installs the priors of the contiguous node block starting
// at node id start, normalizing each row exactly as AddNode does. priors
// holds k*States() values for a block of k nodes. It writes only the
// block's own range of the priors array, so concurrent calls on disjoint
// blocks are safe — that is what lets the chunked ingest pipeline
// normalize and install per-chunk arenas in parallel.
func (b *Builder) SetPriorBlock(start int32, priors []float32) error {
	if b.states <= 0 || len(priors)%b.states != 0 {
		return fmt.Errorf("graph: prior block of %d values is not a multiple of %d states", len(priors), b.states)
	}
	k := len(priors) / b.states
	if start < 0 || int(start)+k > len(b.observed) {
		return fmt.Errorf("graph: prior block [%d,%d) outside the %d reserved nodes", start, int(start)+k, len(b.observed))
	}
	dst := b.priors[int(start)*b.states : (int(start)+k)*b.states]
	copy(dst, priors)
	for i := 0; i < k; i++ {
		Normalize(dst[i*b.states : (i+1)*b.states])
	}
	return nil
}

// ReserveEdges bulk-appends m edges with zeroed endpoints (and, in
// per-edge-matrix mode, zero matrices) and returns the index of the
// first. As with ReserveNodes, the caller must cover the reservation with
// SetEdgeBlock calls before Build.
func (b *Builder) ReserveEdges(m int) int {
	start := len(b.src)
	b.src = append(b.src, make([]int32, m)...)
	b.dst = append(b.dst, make([]int32, m)...)
	if b.shared == nil {
		b.mats = append(b.mats, make([]JointMatrix, m)...)
	}
	return start
}

// SetEdgeBlock installs the endpoints (0-based) and, in per-edge mode,
// the joint matrices of the contiguous edge block starting at index
// start, applying the same validation as AddEdge. Matrix Data slices are
// retained, not copied, so per-chunk arenas stay shared. Writes touch
// only the block's own ranges, so concurrent calls on disjoint blocks are
// safe. All nodes must already be added: endpoint range checks are
// against the current node count.
func (b *Builder) SetEdgeBlock(start int, src, dst []int32, mats []JointMatrix) error {
	if len(src) != len(dst) {
		return fmt.Errorf("graph: edge block has %d sources but %d destinations", len(src), len(dst))
	}
	if start < 0 || start+len(src) > len(b.src) {
		return fmt.Errorf("graph: edge block [%d,%d) outside the %d reserved edges", start, start+len(src), len(b.src))
	}
	if b.shared != nil {
		if mats != nil {
			return fmt.Errorf("graph: edge block carries matrices but a shared matrix is installed")
		}
	} else if len(mats) != len(src) {
		return fmt.Errorf("graph: edge block has %d edges but %d matrices", len(src), len(mats))
	}
	n := int32(len(b.observed))
	for i := range src {
		if src[i] < 0 || src[i] >= n || dst[i] < 0 || dst[i] >= n {
			return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", src[i], dst[i], n)
		}
		if b.shared == nil {
			if int(mats[i].Rows) != b.states || int(mats[i].Cols) != b.states {
				return fmt.Errorf("graph: edge (%d,%d) matrix %dx%d, want %dx%d",
					src[i], dst[i], mats[i].Rows, mats[i].Cols, b.states, b.states)
			}
			// Shape alone is not enough: a matrix whose Data backing is
			// shorter than Rows*Cols passes every structural check
			// (EnsureTransposed skips empty Data) and only explodes later,
			// inside a kernel. Reject it here, in lockstep with AddEdge.
			if len(mats[i].Data) != int(mats[i].Rows)*int(mats[i].Cols) {
				return fmt.Errorf("graph: edge (%d,%d) matrix %dx%d backed by %d values",
					src[i], dst[i], mats[i].Rows, mats[i].Cols, len(mats[i].Data))
			}
		}
	}
	copy(b.src[start:], src)
	copy(b.dst[start:], dst)
	if b.shared == nil {
		copy(b.mats[start:], mats)
	}
	return nil
}

// AddEdge appends a directed edge src→dst. mat supplies the per-edge joint
// probability matrix; it must be nil when a shared matrix is installed and
// non-nil otherwise.
func (b *Builder) AddEdge(src, dst int32, mat *JointMatrix) error {
	n := int32(len(b.observed))
	if src < 0 || src >= n || dst < 0 || dst >= n {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", src, dst, n)
	}
	if b.shared != nil {
		if mat != nil {
			return fmt.Errorf("graph: edge (%d,%d) carries a matrix but a shared matrix is installed", src, dst)
		}
	} else {
		if mat == nil {
			return fmt.Errorf("graph: edge (%d,%d) needs a matrix (no shared matrix installed)", src, dst)
		}
		if int(mat.Rows) != b.states || int(mat.Cols) != b.states {
			return fmt.Errorf("graph: edge (%d,%d) matrix %dx%d, want %dx%d", src, dst, mat.Rows, mat.Cols, b.states, b.states)
		}
		if len(mat.Data) != int(mat.Rows)*int(mat.Cols) {
			return fmt.Errorf("graph: edge (%d,%d) matrix %dx%d backed by %d values", src, dst, mat.Rows, mat.Cols, len(mat.Data))
		}
		b.mats = append(b.mats, *mat)
	}
	b.src = append(b.src, src)
	b.dst = append(b.dst, dst)
	return nil
}

// AddUndirected appends both directions of an undirected MRF edge. With
// per-edge matrices, the reverse direction uses the transpose so the
// coupling is symmetric.
func (b *Builder) AddUndirected(u, v int32, mat *JointMatrix) error {
	if err := b.AddEdge(u, v, mat); err != nil {
		return err
	}
	var rev *JointMatrix
	if mat != nil {
		t := transpose(mat)
		rev = &t
	}
	return b.AddEdge(v, u, rev)
}

func transpose(m *JointMatrix) JointMatrix {
	t := NewJointMatrix(int(m.Cols), int(m.Rows))
	for i := 0; i < int(m.Rows); i++ {
		for j := 0; j < int(m.Cols); j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	t.NormalizeRows()
	return t
}

// Build assembles the final Graph, constructing both CSR indices with a
// counting pass (no per-node allocation). The builder must not be reused
// afterwards.
func (b *Builder) Build() (*Graph, error) {
	if b.states <= 0 || b.states > MaxStates {
		return nil, fmt.Errorf("graph: states %d out of range [1,%d]", b.states, MaxStates)
	}
	n := len(b.observed)
	e := len(b.src)
	g := &Graph{
		NumNodes: n,
		NumEdges: e,
		States:   b.states,
		Names:    b.names,
		Priors:   b.priors,
		Observed: b.observed,
		EdgeSrc:  b.src,
		EdgeDst:  b.dst,
		Shared:   b.shared,
		EdgeMats: b.mats,
	}
	g.Beliefs = append([]float32(nil), b.priors...)
	g.Messages = make([]float32, e*b.states)
	u := float32(1) / float32(b.states)
	for i := range g.Messages {
		g.Messages[i] = u
	}
	g.InOffsets, g.InEdges = buildCSR(b.dst, n)
	g.OutOffsets, g.OutEdges = buildCSR(b.src, n)
	// Transposes are built eagerly here rather than lazily in the engines:
	// Clone shares matrix backing arrays, so a lazy first build could race
	// when clones of one graph run on concurrent engines.
	g.EnsureTransposed()
	return g, nil
}

// buildCSR produces offset/index arrays grouping edge ids by the given
// endpoint array.
func buildCSR(endpoint []int32, numNodes int) (offsets, edges []int32) {
	offsets = make([]int32, numNodes+1)
	for _, v := range endpoint {
		offsets[v+1]++
	}
	for i := 0; i < numNodes; i++ {
		offsets[i+1] += offsets[i]
	}
	edges = make([]int32, len(endpoint))
	cursor := make([]int32, numNodes)
	copy(cursor, offsets[:numNodes])
	for e, v := range endpoint {
		edges[cursor[v]] = int32(e)
		cursor[v]++
	}
	return offsets, edges
}

// Undirected returns a copy of g in the paper's §3.3 MRF form: every
// directed edge is replaced by the pair (forward matrix, normalized
// transpose), so loopy messages can flow both ways along each link.
// Names, priors and observations carry over; an installed shared matrix
// is kept as-is for both directions.
func (g *Graph) Undirected() (*Graph, error) {
	b := NewBuilder(g.States)
	if g.Shared != nil {
		m := *g.Shared
		m.Data = append([]float32(nil), g.Shared.Data...)
		if err := b.SetShared(m); err != nil {
			return nil, err
		}
	}
	for v := 0; v < g.NumNodes; v++ {
		name := ""
		if v < len(g.Names) {
			name = g.Names[v]
		}
		if _, err := b.AddNamedNode(name, g.Prior(int32(v))); err != nil {
			return nil, err
		}
	}
	for e := 0; e < g.NumEdges; e++ {
		var mat *JointMatrix
		if g.Shared == nil {
			mat = &g.EdgeMats[e]
		}
		if err := b.AddUndirected(g.EdgeSrc[e], g.EdgeDst[e], mat); err != nil {
			return nil, err
		}
	}
	out, err := b.Build()
	if err != nil {
		return nil, err
	}
	for v := 0; v < g.NumNodes; v++ {
		if g.Observed[v] {
			out.Observed[v] = true
			copy(out.Belief(int32(v)), g.Belief(int32(v)))
			copy(out.Prior(int32(v)), g.Prior(int32(v)))
		}
	}
	return out, nil
}
