package graph

// This file implements the struct-of-arrays (SoA) versus array-of-structs
// (AoS) comparison of paper §3.4. Credo's production layout is flat arrays,
// but the paper's early design decision was driven by a cachegrind study of
// the two candidate layouts; BeliefStore reproduces both candidates with
// instrumented access accounting so the experiment can be regenerated
// (experiment E4 in DESIGN.md).

// BeliefStore abstracts a container of per-node belief vectors together
// with their dimensions, the data the paper stored either as parallel flat
// arrays (SoA) or as an array of fixed-size structs (AoS).
type BeliefStore interface {
	// Len returns the number of vectors stored.
	Len() int
	// States returns the width of vector i.
	States(i int) int
	// Load copies vector i into dst and returns the number of distinct
	// cache lines touched by the read.
	Load(i int, dst []float32) int
	// Store copies src into vector i and returns the number of distinct
	// cache lines touched by the write.
	Store(i int, src []float32) int
}

// cacheLineBytes matches the 64-byte lines of the paper's i7-7700HQ.
const cacheLineBytes = 64

// aosElement mirrors the paper's AoS element: a statically allocated float
// array plus unsigned integers for the dimensions, contiguous in memory.
type aosElement struct {
	data [MaxStates]float32
	n    uint32
	_    uint32 // padding to keep elements 8-byte aligned
}

// AoSStore is the array-of-structs layout: each belief vector and its
// dimension live side by side, so one element spans a fixed, contiguous
// byte range.
type AoSStore struct {
	elems []aosElement
}

// NewAoSStore builds an AoS store of n vectors of the given width.
func NewAoSStore(n, states int) *AoSStore {
	s := &AoSStore{elems: make([]aosElement, n)}
	for i := range s.elems {
		s.elems[i].n = uint32(states)
	}
	return s
}

// Len implements BeliefStore.
func (s *AoSStore) Len() int { return len(s.elems) }

// States implements BeliefStore.
func (s *AoSStore) States(i int) int { return int(s.elems[i].n) }

// Load implements BeliefStore. The vector and its dimension share the same
// contiguous element, so the whole access costs the lines spanned by the
// used prefix of the element (dims ride along for free).
func (s *AoSStore) Load(i int, dst []float32) int {
	e := &s.elems[i]
	n := int(e.n)
	copy(dst, e.data[:n])
	return linesSpanned(4*n + 8) // n floats plus the adjacent dims word
}

// Store implements BeliefStore.
func (s *AoSStore) Store(i int, src []float32) int {
	e := &s.elems[i]
	copy(e.data[:e.n], src)
	return linesSpanned(4*int(e.n) + 8)
}

// SoAStore is the struct-of-arrays layout: one large flattened probability
// array indexed in parallel with a separate dimensions array, as in the
// paper's rejected design.
type SoAStore struct {
	probs  []float32
	dims   []uint32
	stride int
}

// NewSoAStore builds an SoA store of n vectors of the given width.
func NewSoAStore(n, states int) *SoAStore {
	s := &SoAStore{
		probs:  make([]float32, n*MaxStates),
		dims:   make([]uint32, n),
		stride: MaxStates,
	}
	for i := range s.dims {
		s.dims[i] = uint32(states)
	}
	return s
}

// Len implements BeliefStore.
func (s *SoAStore) Len() int { return len(s.dims) }

// States implements BeliefStore.
func (s *SoAStore) States(i int) int { return int(s.dims[i]) }

// Load implements BeliefStore. The dimension lives in a different array
// from the probabilities, so every access touches (at least) one extra
// cache line for the dims lookup — the effect cachegrind exposed in the
// paper's study.
func (s *SoAStore) Load(i int, dst []float32) int {
	n := int(s.dims[i])
	off := i * s.stride
	copy(dst, s.probs[off:off+n])
	return linesSpanned(4*n) + 1 // separate line for dims[i]
}

// Store implements BeliefStore.
func (s *SoAStore) Store(i int, src []float32) int {
	n := int(s.dims[i])
	off := i * s.stride
	copy(s.probs[off:off+n], src)
	return linesSpanned(4*n) + 1
}

func linesSpanned(bytes int) int {
	if bytes <= 0 {
		return 0
	}
	return (bytes + cacheLineBytes - 1) / cacheLineBytes
}
