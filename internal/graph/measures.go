package graph

import "math"

// Information-theoretic measures over belief vectors, used by the examples
// and diagnostics to quantify how much an observation moved the network.

// Entropy returns the Shannon entropy of p in nats (0 for a point mass,
// ln(len(p)) for uniform).
func Entropy(p []float32) float64 {
	var h float64
	for _, v := range p {
		if v > 0 {
			f := float64(v)
			h -= f * math.Log(f)
		}
	}
	return h
}

// KLDivergence returns D(p‖q) in nats. Entries where p is zero contribute
// nothing; entries where q is zero but p is not yield +Inf.
func KLDivergence(p, q []float32) float64 {
	var d float64
	for i := range p {
		pf := float64(p[i])
		if pf == 0 {
			continue
		}
		qf := float64(q[i])
		if qf == 0 {
			return math.Inf(1)
		}
		d += pf * math.Log(pf/qf)
	}
	return d
}

// TotalVariation returns ½·Σ|p−q|, the total variation distance in [0,1].
func TotalVariation(p, q []float32) float64 {
	return float64(L1Diff(p, q)) / 2
}

// MeanEntropy returns the average belief entropy across the graph's nodes
// — a one-number summary of how decided the network is.
func (g *Graph) MeanEntropy() float64 {
	if g.NumNodes == 0 {
		return 0
	}
	var sum float64
	for v := int32(0); v < int32(g.NumNodes); v++ {
		sum += Entropy(g.Belief(v))
	}
	return sum / float64(g.NumNodes)
}
