package graph

import (
	"math"
	"testing"
)

// buildDiamond returns a 4-node diamond graph 0→1, 0→2, 1→3, 2→3 with
// per-edge matrices.
func buildDiamond(t *testing.T, states int) *Graph {
	t.Helper()
	b := NewBuilder(states)
	for i := 0; i < 4; i++ {
		if _, err := b.AddNode(nil); err != nil {
			t.Fatalf("AddNode: %v", err)
		}
	}
	m := DiagonalJointMatrix(states, 0.8)
	for _, e := range [][2]int32{{0, 1}, {0, 2}, {1, 3}, {2, 3}} {
		if err := b.AddEdge(e[0], e[1], &m); err != nil {
			t.Fatalf("AddEdge: %v", err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

func TestBuilderDiamond(t *testing.T) {
	g := buildDiamond(t, 2)
	if g.NumNodes != 4 || g.NumEdges != 4 {
		t.Fatalf("got %d nodes %d edges, want 4/4", g.NumNodes, g.NumEdges)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if d := g.InDegree(3); d != 2 {
		t.Errorf("InDegree(3) = %d, want 2", d)
	}
	if d := g.OutDegree(0); d != 2 {
		t.Errorf("OutDegree(0) = %d, want 2", d)
	}
	if d := g.InDegree(0); d != 0 {
		t.Errorf("InDegree(0) = %d, want 0", d)
	}
}

func TestBuilderSharedMatrix(t *testing.T) {
	b := NewBuilder(3)
	if err := b.SetShared(DiagonalJointMatrix(3, 0.9)); err != nil {
		t.Fatalf("SetShared: %v", err)
	}
	for i := 0; i < 3; i++ {
		if _, err := b.AddNode(nil); err != nil {
			t.Fatalf("AddNode: %v", err)
		}
	}
	if err := b.AddEdge(0, 1, nil); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if err := b.AddEdge(1, 2, nil); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if !g.SharedMatrix() {
		t.Fatal("SharedMatrix() = false, want true")
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if g.Matrix(0) != g.Matrix(1) {
		t.Error("shared mode returned distinct matrices per edge")
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder(2)
	if _, err := b.AddNode([]float32{0.5}); err == nil {
		t.Error("AddNode with wrong width: want error")
	}
	if _, err := b.AddNode(nil); err != nil {
		t.Fatalf("AddNode: %v", err)
	}
	m := DiagonalJointMatrix(2, 0.8)
	if err := b.AddEdge(0, 5, &m); err == nil {
		t.Error("AddEdge out of range: want error")
	}
	if err := b.AddEdge(0, 0, nil); err == nil {
		t.Error("AddEdge without matrix in per-edge mode: want error")
	}
	bad := DiagonalJointMatrix(3, 0.8)
	if err := b.AddEdge(0, 0, &bad); err == nil {
		t.Error("AddEdge with mismatched matrix dims: want error")
	}
	// Shared-mode conflicts.
	b2 := NewBuilder(2)
	if err := b2.SetShared(DiagonalJointMatrix(3, 0.8)); err == nil {
		t.Error("SetShared with wrong dims: want error")
	}
	if err := b2.SetShared(DiagonalJointMatrix(2, 0.8)); err != nil {
		t.Fatalf("SetShared: %v", err)
	}
	if _, err := b2.AddNode(nil); err != nil {
		t.Fatalf("AddNode: %v", err)
	}
	if err := b2.AddEdge(0, 0, &m); err == nil {
		t.Error("AddEdge with matrix in shared mode: want error")
	}
}

func TestBuilderStatesRange(t *testing.T) {
	for _, states := range []int{0, -1, MaxStates + 1} {
		b := NewBuilder(states)
		if _, err := b.Build(); err == nil {
			t.Errorf("Build with states=%d: want error", states)
		}
	}
}

func TestObserve(t *testing.T) {
	g := buildDiamond(t, 3)
	if err := g.Observe(1, 2); err != nil {
		t.Fatalf("Observe: %v", err)
	}
	if !g.Observed[1] {
		t.Error("Observed[1] = false")
	}
	b := g.Belief(1)
	if b[0] != 0 || b[1] != 0 || b[2] != 1 {
		t.Errorf("belief = %v, want [0 0 1]", b)
	}
	if err := g.Observe(1, 3); err == nil {
		t.Error("Observe out-of-range state: want error")
	}
	if err := g.Observe(1, -1); err == nil {
		t.Error("Observe negative state: want error")
	}
}

func TestResetBeliefs(t *testing.T) {
	g := buildDiamond(t, 2)
	g.Belief(0)[0] = 0.9
	g.Belief(0)[1] = 0.1
	g.Message(0)[0] = 0.7
	g.ResetBeliefs()
	if got := g.Belief(0)[0]; got != 0.5 {
		t.Errorf("belief after reset = %v, want 0.5", got)
	}
	if got := g.Message(0)[0]; got != 0.5 {
		t.Errorf("message after reset = %v, want 0.5", got)
	}
}

func TestClone(t *testing.T) {
	g := buildDiamond(t, 2)
	c := g.Clone()
	c.Belief(0)[0] = 0.99
	if g.Belief(0)[0] == 0.99 {
		t.Error("Clone shares belief storage")
	}
	if &c.InOffsets[0] != &g.InOffsets[0] {
		t.Error("Clone copied immutable index arrays")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := buildDiamond(t, 2)
	g.Belief(2)[0] = float32(math.NaN())
	if err := g.Validate(); err == nil {
		t.Error("Validate accepted NaN belief")
	}
	g = buildDiamond(t, 2)
	g.Belief(2)[0] = 5
	if err := g.Validate(); err == nil {
		t.Error("Validate accepted unnormalized belief")
	}
	g = buildDiamond(t, 2)
	g.EdgeDst[0] = 99
	if err := g.Validate(); err == nil {
		t.Error("Validate accepted out-of-range edge endpoint")
	}
	g = buildDiamond(t, 2)
	g.InOffsets[1] = 3
	if err := g.Validate(); err == nil {
		t.Error("Validate accepted corrupted CSR offsets")
	}
}

func TestMemoryFootprint(t *testing.T) {
	g := buildDiamond(t, 2)
	fp := g.MemoryFootprint()
	if fp <= 0 {
		t.Fatalf("MemoryFootprint = %d, want > 0", fp)
	}
	// Per-edge matrices must dominate an equivalent shared-matrix graph.
	b := NewBuilder(2)
	_ = b.SetShared(DiagonalJointMatrix(2, 0.8))
	for i := 0; i < 4; i++ {
		_, _ = b.AddNode(nil)
	}
	for _, e := range [][2]int32{{0, 1}, {0, 2}, {1, 3}, {2, 3}} {
		_ = b.AddEdge(e[0], e[1], nil)
	}
	sg, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if sg.MemoryFootprint() >= fp {
		t.Errorf("shared footprint %d >= per-edge footprint %d", sg.MemoryFootprint(), fp)
	}
}

func TestAddUndirected(t *testing.T) {
	b := NewBuilder(2)
	for i := 0; i < 2; i++ {
		_, _ = b.AddNode(nil)
	}
	m := NewJointMatrix(2, 2)
	m.Set(0, 0, 0.9)
	m.Set(0, 1, 0.1)
	m.Set(1, 0, 0.4)
	m.Set(1, 1, 0.6)
	if err := b.AddUndirected(0, 1, &m); err != nil {
		t.Fatalf("AddUndirected: %v", err)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if g.NumEdges != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges)
	}
	fwd, rev := g.Matrix(0), g.Matrix(1)
	// Reverse matrix is the normalized transpose of the forward one.
	if rev.At(0, 1) >= rev.At(0, 0) {
		t.Errorf("reverse matrix row 0 = %v; expected diagonal dominance", rev.Row(0))
	}
	if fwd.At(0, 0) != 0.9 {
		t.Errorf("forward matrix (0,0) = %v, want 0.9", fwd.At(0, 0))
	}
}

func TestUndirected(t *testing.T) {
	b := NewBuilder(2)
	_, _ = b.AddNamedNode("a", []float32{0.2, 0.8})
	_, _ = b.AddNamedNode("b", nil)
	m := NewJointMatrix(2, 2)
	m.Set(0, 0, 0.9)
	m.Set(0, 1, 0.1)
	m.Set(1, 0, 0.3)
	m.Set(1, 1, 0.7)
	_ = b.AddEdge(0, 1, &m)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	_ = g.Observe(0, 1)
	u, err := g.Undirected()
	if err != nil {
		t.Fatal(err)
	}
	if u.NumEdges != 2*g.NumEdges {
		t.Fatalf("edges = %d, want %d", u.NumEdges, 2*g.NumEdges)
	}
	if u.Names[0] != "a" || u.Names[1] != "b" {
		t.Errorf("names lost: %v", u.Names)
	}
	if !u.Observed[0] || u.Belief(0)[1] != 1 {
		t.Error("observation lost")
	}
	if err := u.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Shared-matrix variant.
	sb := NewBuilder(2)
	_ = sb.SetShared(DiagonalJointMatrix(2, 0.8))
	_, _ = sb.AddNode(nil)
	_, _ = sb.AddNode(nil)
	_ = sb.AddEdge(0, 1, nil)
	sg, err := sb.Build()
	if err != nil {
		t.Fatal(err)
	}
	su, err := sg.Undirected()
	if err != nil {
		t.Fatal(err)
	}
	if !su.SharedMatrix() || su.NumEdges != 2 {
		t.Errorf("shared undirected wrong: shared=%v edges=%d", su.SharedMatrix(), su.NumEdges)
	}
}

func TestObserveSoft(t *testing.T) {
	g := buildDiamond(t, 2)
	if err := g.ObserveSoft(1, []float32{3, 1}); err != nil {
		t.Fatal(err)
	}
	p := g.Prior(1)
	if math.Abs(float64(p[0])-0.75) > 1e-6 {
		t.Errorf("soft prior = %v, want [0.75 0.25]", p)
	}
	if g.Observed[1] {
		t.Error("soft evidence must not clamp the node")
	}
	// Errors.
	if err := g.ObserveSoft(1, []float32{1}); err == nil {
		t.Error("wrong width accepted")
	}
	if err := g.ObserveSoft(99, []float32{1, 1}); err == nil {
		t.Error("out-of-range node accepted")
	}
	if err := g.ObserveSoft(1, []float32{-1, 1}); err == nil {
		t.Error("negative likelihood accepted")
	}
	if err := g.ObserveSoft(1, []float32{0, 0}); err == nil {
		t.Error("zeroing likelihood accepted")
	}
}
