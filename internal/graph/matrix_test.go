package graph

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDiagonalJointMatrix(t *testing.T) {
	m := DiagonalJointMatrix(4, 0.7)
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := m.At(2, 2); got != 0.7 {
		t.Errorf("diagonal = %v, want 0.7", got)
	}
	if got := m.At(0, 3); math.Abs(float64(got)-0.1) > 1e-6 {
		t.Errorf("off-diagonal = %v, want 0.1", got)
	}
	// Single-state degenerate case.
	m1 := DiagonalJointMatrix(1, 0.7)
	if m1.At(0, 0) != 0.7 {
		t.Errorf("1x1 diagonal = %v, want 0.7", m1.At(0, 0))
	}
}

func TestUniformJointMatrix(t *testing.T) {
	m := UniformJointMatrix(5)
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := m.At(3, 1); math.Abs(float64(got)-0.2) > 1e-6 {
		t.Errorf("entry = %v, want 0.2", got)
	}
}

func TestNormalizeRows(t *testing.T) {
	m := NewJointMatrix(2, 3)
	m.Set(0, 0, 2)
	m.Set(0, 1, 2)
	m.Set(0, 2, 4)
	// Row 1 left all-zero: must become uniform.
	m.NormalizeRows()
	if got := m.At(0, 2); math.Abs(float64(got)-0.5) > 1e-6 {
		t.Errorf("row 0 normalized entry = %v, want 0.5", got)
	}
	if got := m.At(1, 0); math.Abs(float64(got)-1.0/3) > 1e-6 {
		t.Errorf("zero row entry = %v, want 1/3", got)
	}
}

func TestMatrixValidateErrors(t *testing.T) {
	m := NewJointMatrix(2, 2)
	if err := m.Validate(); err == nil {
		t.Error("all-zero rows: want error")
	}
	m = DiagonalJointMatrix(2, 0.8)
	m.Set(0, 0, float32(math.NaN()))
	if err := m.Validate(); err == nil {
		t.Error("NaN entry: want error")
	}
	m = DiagonalJointMatrix(2, 0.8)
	m.Set(0, 0, -0.5)
	if err := m.Validate(); err == nil {
		t.Error("negative entry: want error")
	}
	m = JointMatrix{Rows: 2, Cols: 2, Data: make([]float32, 3)}
	if err := m.Validate(); err == nil {
		t.Error("dims/data mismatch: want error")
	}
}

func TestPropagateInto(t *testing.T) {
	m := NewJointMatrix(2, 2)
	m.Set(0, 0, 0.9)
	m.Set(0, 1, 0.1)
	m.Set(1, 0, 0.2)
	m.Set(1, 1, 0.8)
	dst := make([]float32, 2)
	m.PropagateInto(dst, []float32{1, 0})
	if dst[0] != 0.9 || dst[1] != 0.1 {
		t.Errorf("pure state propagation = %v, want [0.9 0.1]", dst)
	}
	m.PropagateInto(dst, []float32{0.5, 0.5})
	if math.Abs(float64(dst[0])-0.55) > 1e-6 {
		t.Errorf("mixed propagation = %v, want [0.55 0.45]", dst)
	}
}

// TestPropagatePreservesMass: a row-stochastic matrix maps distributions to
// distributions (property-based).
func TestPropagatePreservesMass(t *testing.T) {
	f := func(raw [4]float32, keepRaw float32) bool {
		src := make([]float32, 4)
		for i, v := range raw {
			src[i] = float32(math.Abs(float64(v)))
			if math.IsNaN(float64(src[i])) || math.IsInf(float64(src[i]), 0) {
				src[i] = 1
			}
		}
		Normalize(src)
		keep := float32(0.5 + 0.49*math.Abs(math.Mod(float64(keepRaw), 1)))
		m := DiagonalJointMatrix(4, keep)
		dst := make([]float32, 4)
		m.PropagateInto(dst, src)
		var sum float64
		for _, v := range dst {
			if v < -1e-6 {
				return false
			}
			sum += float64(v)
		}
		return math.Abs(sum-1) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestNormalizeDegenerate(t *testing.T) {
	p := []float32{0, 0, 0}
	Normalize(p)
	for _, v := range p {
		if math.Abs(float64(v)-1.0/3) > 1e-6 {
			t.Fatalf("zero vector normalized to %v, want uniform", p)
		}
	}
	p = []float32{float32(math.NaN()), 1, 1}
	Normalize(p)
	for _, v := range p {
		if math.Abs(float64(v)-1.0/3) > 1e-6 {
			t.Fatalf("NaN vector normalized to %v, want uniform", p)
		}
	}
	p = []float32{float32(math.Inf(1)), 1}
	Normalize(p)
	if p[0] != 0.5 || p[1] != 0.5 {
		t.Fatalf("Inf vector normalized to %v, want uniform", p)
	}
}

func TestL1Diff(t *testing.T) {
	if got := L1Diff([]float32{0.3, 0.7}, []float32{0.5, 0.5}); math.Abs(float64(got)-0.4) > 1e-6 {
		t.Errorf("L1Diff = %v, want 0.4", got)
	}
	if got := L1Diff([]float32{1, 0}, []float32{1, 0}); got != 0 {
		t.Errorf("L1Diff of equal vectors = %v, want 0", got)
	}
}

func TestEnsureTransposed(t *testing.T) {
	m := NewJointMatrix(2, 3)
	vals := []float32{1, 2, 3, 4, 5, 6}
	copy(m.Data, vals)
	m.T = nil // Set invalidates; start clean
	m.EnsureTransposed()
	if len(m.T) != len(m.Data) {
		t.Fatalf("T length = %d, want %d", len(m.T), len(m.Data))
	}
	for i := 0; i < int(m.Rows); i++ {
		for j := 0; j < int(m.Cols); j++ {
			if got, want := m.T[j*int(m.Rows)+i], m.At(i, j); got != want {
				t.Errorf("T[%d,%d] = %v, want %v", j, i, got, want)
			}
		}
	}
	// Idempotent: a second call keeps the same backing array.
	first := &m.T[0]
	m.EnsureTransposed()
	if &m.T[0] != first {
		t.Error("EnsureTransposed rebuilt an existing transpose")
	}
	// Mutation invalidates.
	m.Set(1, 2, 9)
	if m.T != nil {
		t.Error("Set did not invalidate the transposed copy")
	}
	m.EnsureTransposed()
	if got := m.T[2*int(m.Rows)+1]; got != 9 {
		t.Errorf("rebuilt T misses mutation: got %v, want 9", got)
	}
	m.NormalizeRows()
	if m.T != nil {
		t.Error("NormalizeRows did not invalidate the transposed copy")
	}
}

func TestBuildPopulatesTransposes(t *testing.T) {
	b := NewBuilder(2)
	for i := 0; i < 2; i++ {
		if _, err := b.AddNode(nil); err != nil {
			t.Fatalf("AddNode: %v", err)
		}
	}
	m := DiagonalJointMatrix(2, 0.8)
	if err := b.AddEdge(0, 1, &m); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if g.Matrix(0).T == nil {
		t.Fatal("Build left edge matrix without a transposed copy")
	}
	if err := g.Matrix(0).Validate(); err != nil {
		t.Fatalf("Validate with T: %v", err)
	}
}
