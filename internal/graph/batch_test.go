package graph

import (
	"math"
	"testing"
)

// batchTestGraph builds a tiny 3-node chain with non-uniform priors so
// replication and clamping are distinguishable.
func batchTestGraph(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(2)
	m := UniformJointMatrix(2)
	if err := b.SetShared(m); err != nil {
		t.Fatalf("SetShared: %v", err)
	}
	for i, p := range [][]float32{{0.9, 0.1}, {0.3, 0.7}, {0.5, 0.5}} {
		if _, err := b.AddNode(p); err != nil {
			t.Fatalf("AddNode %d: %v", i, err)
		}
	}
	if err := b.AddEdge(0, 1, nil); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if err := b.AddEdge(1, 2, nil); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

func TestNewBatchStateReplicates(t *testing.T) {
	g := batchTestGraph(t)
	if err := g.Observe(1, 0); err != nil {
		t.Fatalf("Observe: %v", err)
	}
	const k = 4
	bs, err := NewBatchState(g, k)
	if err != nil {
		t.Fatalf("NewBatchState: %v", err)
	}
	if bs.Used != k || bs.NumNodes != g.NumNodes || bs.States != g.States {
		t.Fatalf("shape: Used=%d NumNodes=%d States=%d", bs.Used, bs.NumNodes, bs.States)
	}
	for v := 0; v < g.NumNodes; v++ {
		for j := 0; j < g.States; j++ {
			for l := 0; l < k; l++ {
				at := (v*g.States+j)*k + l
				if bs.Beliefs[at] != g.Beliefs[v*g.States+j] {
					t.Errorf("belief (%d,%d,%d) = %g, base %g", v, j, l, bs.Beliefs[at], g.Beliefs[v*g.States+j])
				}
				if bs.Priors[at] != g.Priors[v*g.States+j] {
					t.Errorf("prior (%d,%d,%d) = %g, base %g", v, j, l, bs.Priors[at], g.Priors[v*g.States+j])
				}
			}
		}
		for l := 0; l < k; l++ {
			if bs.Observed[v*k+l] != g.Observed[v] {
				t.Errorf("observed (%d,%d) = %v, base %v", v, l, bs.Observed[v*k+l], g.Observed[v])
			}
		}
	}

	if _, err := NewBatchState(g, 0); err == nil {
		t.Error("NewBatchState(g, 0) accepted, want error")
	}
}

func TestBatchObserveIsPerLane(t *testing.T) {
	g := batchTestGraph(t)
	const k = 3
	bs, err := NewBatchState(g, k)
	if err != nil {
		t.Fatalf("NewBatchState: %v", err)
	}
	if err := bs.Observe(1, 0, 1); err != nil {
		t.Fatalf("Observe: %v", err)
	}
	buf := make([]float32, 2)
	if b := bs.LaneBelief(1, 0, buf); b[0] != 0 || b[1] != 1 {
		t.Errorf("clamped lane belief = %v, want [0 1]", b)
	}
	if !bs.Observed[0*k+1] {
		t.Error("lane 1 not marked observed")
	}
	// Neighbouring lanes keep the base state.
	for _, l := range []int{0, 2} {
		bs.LaneBelief(l, 0, buf)
		if buf[0] != g.Beliefs[0] || buf[1] != g.Beliefs[1] {
			t.Errorf("lane %d belief = %v, want base %v", l, buf, g.Beliefs[:2])
		}
		if bs.Observed[0*k+l] {
			t.Errorf("lane %d marked observed", l)
		}
	}

	for _, bad := range []struct {
		lane  int
		v     int32
		state int
	}{{-1, 0, 0}, {3, 0, 0}, {0, -1, 0}, {0, 3, 0}, {0, 0, -1}, {0, 0, 2}} {
		if err := bs.Observe(bad.lane, bad.v, bad.state); err == nil {
			t.Errorf("Observe(%d,%d,%d) accepted, want range error", bad.lane, bad.v, bad.state)
		}
	}
}

func TestBatchLaneRoundTrip(t *testing.T) {
	g := batchTestGraph(t)
	const k = 4
	bs, err := NewBatchState(g, k)
	if err != nil {
		t.Fatalf("NewBatchState: %v", err)
	}
	src := make([]float32, g.NumNodes*g.States)
	for i := range src {
		src[i] = float32(i) * 0.125
	}
	bs.SetLaneBeliefs(2, src)
	got := make([]float32, len(src))
	bs.ExtractLane(2, got)
	for i := range src {
		if math.Float32bits(got[i]) != math.Float32bits(src[i]) {
			t.Fatalf("round trip at %d: %g != %g", i, got[i], src[i])
		}
	}
	// Other lanes untouched.
	bs.ExtractLane(1, got)
	for i := range got {
		if got[i] != g.Beliefs[i] {
			t.Fatalf("lane 1 disturbed at %d: %g != %g", i, got[i], g.Beliefs[i])
		}
	}

	bs.SetLaneNodeBelief(1, 2, []float32{0.25, 0.75})
	bs.ExtractLane(1, got)
	if got[4] != 0.25 || got[5] != 0.75 {
		t.Errorf("SetLaneNodeBelief: node 2 = %v", got[4:6])
	}

	// Reset restages every lane from the base.
	bs.Used = 1
	bs.Reset(g)
	if bs.Used != k {
		t.Errorf("Reset: Used = %d, want %d", bs.Used, k)
	}
	for l := 0; l < k; l++ {
		bs.ExtractLane(l, got)
		for i := range got {
			if got[i] != g.Beliefs[i] {
				t.Fatalf("Reset lane %d at %d: %g != %g", l, i, got[i], g.Beliefs[i])
			}
		}
	}
}
