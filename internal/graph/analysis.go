package graph

import "fmt"

// Analysis helpers over the adjacency indices: connected components,
// breadth-first layers and degree histograms. The experiment harness uses
// them to characterize generated benchmarks, and the residual engine's
// tests use them to reason about evidence reach.

// ConnectedComponents labels every node with a component id (treating
// edges as undirected) and returns the labels plus the component count.
func (g *Graph) ConnectedComponents() (labels []int32, count int) {
	labels = make([]int32, g.NumNodes)
	for i := range labels {
		labels[i] = -1
	}
	var queue []int32
	for root := int32(0); root < int32(g.NumNodes); root++ {
		if labels[root] >= 0 {
			continue
		}
		id := int32(count)
		count++
		labels[root] = id
		queue = append(queue[:0], root)
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, e := range g.OutEdges[g.OutOffsets[v]:g.OutOffsets[v+1]] {
				if d := g.EdgeDst[e]; labels[d] < 0 {
					labels[d] = id
					queue = append(queue, d)
				}
			}
			for _, e := range g.InEdges[g.InOffsets[v]:g.InOffsets[v+1]] {
				if s := g.EdgeSrc[e]; labels[s] < 0 {
					labels[s] = id
					queue = append(queue, s)
				}
			}
		}
	}
	return labels, count
}

// BFSLayers returns each node's directed BFS distance from the source set
// (-1 when unreachable following edge directions).
func (g *Graph) BFSLayers(sources ...int32) []int {
	dist := make([]int, g.NumNodes)
	for i := range dist {
		dist[i] = -1
	}
	var frontier []int32
	for _, s := range sources {
		if dist[s] < 0 {
			dist[s] = 0
			frontier = append(frontier, s)
		}
	}
	for depth := 1; len(frontier) > 0; depth++ {
		var next []int32
		for _, v := range frontier {
			for _, e := range g.OutEdges[g.OutOffsets[v]:g.OutOffsets[v+1]] {
				if d := g.EdgeDst[e]; dist[d] < 0 {
					dist[d] = depth
					next = append(next, d)
				}
			}
		}
		frontier = next
	}
	return dist
}

// InDegreeHistogram returns counts[d] = number of nodes with in-degree d,
// up to the maximum in-degree.
func (g *Graph) InDegreeHistogram() []int {
	maxDeg := 0
	for v := int32(0); v < int32(g.NumNodes); v++ {
		if d := g.InDegree(v); d > maxDeg {
			maxDeg = d
		}
	}
	counts := make([]int, maxDeg+1)
	for v := int32(0); v < int32(g.NumNodes); v++ {
		counts[g.InDegree(v)]++
	}
	return counts
}

// Subgraph returns the graph induced by keep (a set of node ids): nodes
// are renumbered densely in ascending id order, and only edges with both
// endpoints kept survive. Priors, observations, names and the matrix mode
// carry over. The second return value maps old ids to new ones (-1 when
// dropped).
func (g *Graph) Subgraph(keep []int32) (*Graph, []int32, error) {
	remap := make([]int32, g.NumNodes)
	for i := range remap {
		remap[i] = -1
	}
	uniq := make([]int32, 0, len(keep))
	for _, v := range keep {
		if v < 0 || int(v) >= g.NumNodes {
			return nil, nil, fmt.Errorf("graph: subgraph node %d out of range", v)
		}
		if remap[v] < 0 {
			remap[v] = 0 // mark
			uniq = append(uniq, v)
		}
	}
	// Dense renumbering in ascending old-id order.
	for i := range remap {
		remap[i] = -1
	}
	next := int32(0)
	for v := int32(0); v < int32(g.NumNodes); v++ {
		for _, k := range uniq {
			if k == v {
				remap[v] = next
				next++
				break
			}
		}
	}

	b := NewBuilder(g.States)
	if g.Shared != nil {
		m := *g.Shared
		m.Data = append([]float32(nil), g.Shared.Data...)
		if err := b.SetShared(m); err != nil {
			return nil, nil, err
		}
	}
	for v := int32(0); v < int32(g.NumNodes); v++ {
		if remap[v] < 0 {
			continue
		}
		name := ""
		if int(v) < len(g.Names) {
			name = g.Names[v]
		}
		if _, err := b.AddNamedNode(name, g.Prior(v)); err != nil {
			return nil, nil, err
		}
	}
	for e := 0; e < g.NumEdges; e++ {
		src, dst := remap[g.EdgeSrc[e]], remap[g.EdgeDst[e]]
		if src < 0 || dst < 0 {
			continue
		}
		var mat *JointMatrix
		if g.Shared == nil {
			mat = &g.EdgeMats[e]
		}
		if err := b.AddEdge(src, dst, mat); err != nil {
			return nil, nil, err
		}
	}
	out, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	for v := int32(0); v < int32(g.NumNodes); v++ {
		if remap[v] >= 0 && g.Observed[v] {
			out.Observed[remap[v]] = true
			copy(out.Belief(remap[v]), g.Belief(v))
			copy(out.Prior(remap[v]), g.Prior(v))
		}
	}
	return out, remap, nil
}
