package graph

import "testing"

// buildTwoChains returns two disjoint 3-node chains: 0→1→2 and 3→4→5.
func buildTwoChains(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(2)
	_ = b.SetShared(DiagonalJointMatrix(2, 0.8))
	for i := 0; i < 6; i++ {
		_, _ = b.AddNode(nil)
	}
	for _, e := range [][2]int32{{0, 1}, {1, 2}, {3, 4}, {4, 5}} {
		if err := b.AddEdge(e[0], e[1], nil); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestConnectedComponents(t *testing.T) {
	g := buildTwoChains(t)
	labels, count := g.ConnectedComponents()
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Errorf("first chain split: %v", labels)
	}
	if labels[3] != labels[4] || labels[4] != labels[5] {
		t.Errorf("second chain split: %v", labels)
	}
	if labels[0] == labels[3] {
		t.Error("disjoint chains merged")
	}
	// Undirected reachability: reverse edges count too.
	b := NewBuilder(2)
	_ = b.SetShared(DiagonalJointMatrix(2, 0.8))
	for i := 0; i < 3; i++ {
		_, _ = b.AddNode(nil)
	}
	_ = b.AddEdge(1, 0, nil) // 1→0, 1→2: all one component despite directions
	_ = b.AddEdge(1, 2, nil)
	g2, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, c := g2.ConnectedComponents(); c != 1 {
		t.Errorf("directed fan counted as %d components, want 1", c)
	}
}

func TestBFSLayers(t *testing.T) {
	g := buildTwoChains(t)
	dist := g.BFSLayers(0)
	want := []int{0, 1, 2, -1, -1, -1}
	for i := range want {
		if dist[i] != want[i] {
			t.Errorf("dist[%d] = %d, want %d", i, dist[i], want[i])
		}
	}
	// Multiple sources.
	dist = g.BFSLayers(0, 3)
	if dist[3] != 0 || dist[5] != 2 {
		t.Errorf("multi-source distances wrong: %v", dist)
	}
	// Duplicate sources are harmless.
	dist = g.BFSLayers(0, 0)
	if dist[0] != 0 || dist[1] != 1 {
		t.Errorf("duplicate-source distances wrong: %v", dist)
	}
}

func TestInDegreeHistogram(t *testing.T) {
	g := buildTwoChains(t)
	h := g.InDegreeHistogram()
	// Nodes 0 and 3 have in-degree 0; the other four have in-degree 1.
	if h[0] != 2 || h[1] != 4 {
		t.Errorf("histogram = %v, want [2 4]", h)
	}
}

func TestSubgraph(t *testing.T) {
	g := buildTwoChains(t) // 0→1→2, 3→4→5
	_ = g.Observe(1, 1)
	sub, remap, err := g.Subgraph([]int32{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumNodes != 3 || sub.NumEdges != 2 {
		t.Fatalf("subgraph %d/%d, want 3/2", sub.NumNodes, sub.NumEdges)
	}
	if remap[0] != 0 || remap[1] != 1 || remap[2] != 2 || remap[3] != -1 {
		t.Errorf("remap = %v", remap)
	}
	if !sub.Observed[1] || sub.Belief(1)[1] != 1 {
		t.Error("observation lost in subgraph")
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
	// Duplicates in keep collapse; out-of-range rejected.
	sub2, _, err := g.Subgraph([]int32{5, 5, 4})
	if err != nil {
		t.Fatal(err)
	}
	if sub2.NumNodes != 2 || sub2.NumEdges != 1 {
		t.Errorf("dup subgraph %d/%d, want 2/1", sub2.NumNodes, sub2.NumEdges)
	}
	if _, _, err := g.Subgraph([]int32{99}); err == nil {
		t.Error("out-of-range keep accepted")
	}
}
