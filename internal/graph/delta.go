package graph

import (
	"fmt"
	"slices"
)

// Dynamic-graph delta layer. Every engine in this repository was built
// against a frozen Graph; the workloads the paper motivates (rumor and
// malware propagation) are streams — edges appear, priors drift,
// evidence arrives and retracts. This file adds post-build mutation to a
// built *Graph without giving up the flat CSR layout the hot loops
// depend on:
//
//   - Structural mutations (AddEdgeDelta) land in an overlay segment —
//     parallel pending-edge arrays outside the CSR index — and are
//     merged into fresh adjacency arrays on a cadence
//     (DeltaMergeCadence pending edges) or on demand (MergeDelta). A
//     merge is an O(N+E) incremental patch: old edge ids keep their
//     positions, per-node runs are copied once and the overlay ids are
//     appended to their endpoints' runs, so a burst of AddEdgeDelta
//     calls costs one reindex instead of one per edge. Merged arrays
//     are always freshly allocated — clones sharing the old index keep
//     a consistent (pre-mutation) view, which is what lets a serving
//     layer mutate a resident while leased overlays finish in flight.
//
//   - Numeric mutations (UpdatePrior, SetEvidence, RetractEvidence)
//     apply immediately; SetEvidence saves the pre-clamp prior so a
//     later retraction can restore it (Observe alone destroys it).
//
//   - Every mutation bumps a monotonic generation counter
//     (Generation), and structural mutations additionally bump
//     StructuralGeneration. Caches keyed on a fixpoint of the graph —
//     the serving layer's warm-start snapshots — store the generation
//     they were computed at and treat any mismatch as stale.
//
//   - Mutations accumulate a changed-node set. TakeDeltaSeeds drains
//     it as a delta-BP seed frontier — the changed nodes plus their
//     out-neighbours, exactly the warm-start frontier shape of
//     bp.RunResidualFrom / relaxbp.RunFrom — after forcing a merge so
//     the frontier sees the new topology. Seeding only that frontier
//     re-converges an already-converged graph with a fraction of a
//     cold run's updates; the equivalence against a cold run on an
//     equivalently-mutated rebuilt graph is pinned by the enginetest
//     delta harness and FuzzDeltaApply.
//
// Mutation calls are not safe to race with each other or with a running
// engine; callers serialize them (the serving layer holds the
// resident's write lock). Delta-BP re-convergence is defined for the
// node-paradigm engines (sequential residual, pool sweeps, relaxed
// residual), which read beliefs, not per-edge messages; merged overlay
// edges start with uniform messages, so edge-paradigm runs remain
// cold-start only.

// DeltaMergeCadence is the pending-overlay size that triggers an
// automatic CSR merge inside AddEdgeDelta. Merges are O(N+E); batching
// a few hundred structural mutations per reindex keeps sustained
// mutation streams from going quadratic while bounding the overlay a
// run-preparation merge has to fold in.
const DeltaMergeCadence = 256

// graphDelta is the mutable companion state of a built Graph: the
// pending structural overlay, the saved pre-clamp priors, and the
// changed-node frontier accumulator.
type graphDelta struct {
	// Pending overlay segment: directed edges accepted by AddEdgeDelta
	// but not yet merged into the CSR index.
	src, dst []int32
	mats     []JointMatrix

	// savedPriors holds the pre-clamp prior of every node clamped
	// through SetEvidence, so RetractEvidence can restore it.
	savedPriors map[int32][]float32

	// changed is the mutation frontier since the last TakeDeltaSeeds.
	changed map[int32]struct{}
}

// clone deep-copies the delta state for Graph.Clone; nil in, nil out.
func (d *graphDelta) clone() *graphDelta {
	if d == nil {
		return nil
	}
	c := &graphDelta{
		src:         append([]int32(nil), d.src...),
		dst:         append([]int32(nil), d.dst...),
		mats:        append([]JointMatrix(nil), d.mats...),
		savedPriors: make(map[int32][]float32, len(d.savedPriors)),
		changed:     make(map[int32]struct{}, len(d.changed)),
	}
	for v, p := range d.savedPriors {
		c.savedPriors[v] = append([]float32(nil), p...)
	}
	for v := range d.changed {
		c.changed[v] = struct{}{}
	}
	return c
}

func (g *Graph) delta() *graphDelta {
	if g.dyn == nil {
		g.dyn = &graphDelta{
			savedPriors: make(map[int32][]float32),
			changed:     make(map[int32]struct{}),
		}
	}
	return g.dyn
}

// Generation returns the graph's mutation generation: it starts at zero
// for a freshly built graph and increases monotonically with every
// applied delta (structural or numeric). Clones carry their source's
// generation. Anything derived from the graph's numeric fixpoint should
// be keyed by this value and treated as stale on mismatch.
func (g *Graph) Generation() uint64 { return g.gen }

// StructuralGeneration returns the structural mutation generation: it
// increases only when the edge set changes (AddEdgeDelta). Structure
// caches (partitions, batch states sized by edges) key on this.
func (g *Graph) StructuralGeneration() uint64 { return g.structGen }

// PendingDeltaEdges reports how many accepted structural deltas await a
// CSR merge.
func (g *Graph) PendingDeltaEdges() int {
	if g.dyn == nil {
		return 0
	}
	return len(g.dyn.src)
}

// validateDeltaEdge applies exactly the Builder.AddEdge acceptance
// rules (see builder.go: range, shared-vs-per-edge matrix mode, matrix
// shape and backing length) so the post-build mutation path cannot
// accept an edge the construction path would reject, or vice versa.
func (g *Graph) validateDeltaEdge(src, dst int32, mat *JointMatrix) error {
	n := int32(g.NumNodes)
	if src < 0 || src >= n || dst < 0 || dst >= n {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", src, dst, n)
	}
	if g.Shared != nil {
		if mat != nil {
			return fmt.Errorf("graph: edge (%d,%d) carries a matrix but a shared matrix is installed", src, dst)
		}
		return nil
	}
	if mat == nil {
		return fmt.Errorf("graph: edge (%d,%d) needs a matrix (no shared matrix installed)", src, dst)
	}
	if int(mat.Rows) != g.States || int(mat.Cols) != g.States {
		return fmt.Errorf("graph: edge (%d,%d) matrix %dx%d, want %dx%d", src, dst, mat.Rows, mat.Cols, g.States, g.States)
	}
	if len(mat.Data) != int(mat.Rows)*int(mat.Cols) {
		return fmt.Errorf("graph: edge (%d,%d) matrix %dx%d backed by %d values", src, dst, mat.Rows, mat.Cols, len(mat.Data))
	}
	return nil
}

// AddEdgeDelta appends a directed edge src→dst to a built graph. The
// edge lands in the pending overlay segment and becomes visible to
// traversal after the next merge (automatic at DeltaMergeCadence
// pending edges, forced by MergeDelta or TakeDeltaSeeds). Acceptance
// rules match Builder.AddEdge exactly. The destination node joins the
// delta frontier: its belief is the one the new parent can move before
// any update is applied.
func (g *Graph) AddEdgeDelta(src, dst int32, mat *JointMatrix) error {
	if err := g.validateDeltaEdge(src, dst, mat); err != nil {
		return err
	}
	d := g.delta()
	d.src = append(d.src, src)
	d.dst = append(d.dst, dst)
	if g.Shared == nil {
		d.mats = append(d.mats, *mat)
	}
	d.changed[dst] = struct{}{}
	g.gen++
	g.structGen++
	if len(d.src) >= DeltaMergeCadence {
		g.MergeDelta()
	}
	return nil
}

// AddUndirectedDelta appends both directions of an undirected MRF link,
// mirroring Builder.AddUndirected: the reverse direction carries the
// normalized transpose so the coupling stays symmetric.
func (g *Graph) AddUndirectedDelta(u, v int32, mat *JointMatrix) error {
	if err := g.AddEdgeDelta(u, v, mat); err != nil {
		return err
	}
	var rev *JointMatrix
	if mat != nil {
		t := transpose(mat)
		rev = &t
	}
	return g.AddEdgeDelta(v, u, rev)
}

// MergeDelta folds the pending overlay segment into the graph: edge
// endpoint arrays, per-edge matrices (transposed copies included),
// uniform-initialized messages, and freshly built In/Out CSR indices.
// Old edge ids are stable across a merge. All index and edge arrays are
// newly allocated, never patched in place, so clones sharing the
// pre-merge arrays keep a consistent view. A no-op when nothing is
// pending.
func (g *Graph) MergeDelta() {
	if g.dyn == nil || len(g.dyn.src) == 0 {
		return
	}
	d := g.dyn
	oldEdges := g.NumEdges
	add := len(d.src)

	src := make([]int32, oldEdges+add)
	copy(src, g.EdgeSrc)
	copy(src[oldEdges:], d.src)
	dst := make([]int32, oldEdges+add)
	copy(dst, g.EdgeDst)
	copy(dst[oldEdges:], d.dst)

	if g.Shared == nil {
		mats := make([]JointMatrix, oldEdges+add)
		copy(mats, g.EdgeMats)
		copy(mats[oldEdges:], d.mats)
		for i := oldEdges; i < len(mats); i++ {
			mats[i].EnsureTransposed()
		}
		g.EdgeMats = mats
	}

	msgs := make([]float32, (oldEdges+add)*g.States)
	copy(msgs, g.Messages)
	u := float32(1) / float32(g.States)
	for i := oldEdges * g.States; i < len(msgs); i++ {
		msgs[i] = u
	}

	g.InOffsets, g.InEdges = patchCSR(g.InOffsets, g.InEdges, d.dst, oldEdges, g.NumNodes)
	g.OutOffsets, g.OutEdges = patchCSR(g.OutOffsets, g.OutEdges, d.src, oldEdges, g.NumNodes)

	g.EdgeSrc = src
	g.EdgeDst = dst
	g.Messages = msgs
	g.NumEdges = oldEdges + add
	d.src, d.dst, d.mats = nil, nil, nil
}

// patchCSR extends one CSR index with an overlay segment: per-node runs
// of the old index are copied once, and the overlay's edge ids
// (oldEdges, oldEdges+1, ...) are appended to their endpoints' runs.
// One counting pass plus one copy — the incremental analogue of
// buildCSR that never regroups the existing edges.
func patchCSR(oldOffsets, oldEdges []int32, newEndpoint []int32, firstID, numNodes int) (offsets, edges []int32) {
	extra := make([]int32, numNodes)
	for _, v := range newEndpoint {
		extra[v]++
	}
	offsets = make([]int32, numNodes+1)
	for v := 0; v < numNodes; v++ {
		offsets[v+1] = offsets[v] + (oldOffsets[v+1] - oldOffsets[v]) + extra[v]
	}
	edges = make([]int32, len(oldEdges)+len(newEndpoint))
	cursor := make([]int32, numNodes)
	for v := 0; v < numNodes; v++ {
		run := oldEdges[oldOffsets[v]:oldOffsets[v+1]]
		copy(edges[offsets[v]:], run)
		cursor[v] = offsets[v] + int32(len(run))
	}
	for i, v := range newEndpoint {
		edges[cursor[v]] = int32(firstID + i)
		cursor[v]++
	}
	return offsets, edges
}

// UpdatePrior replaces node v's prior distribution (copied and
// normalized, exactly as Builder.AddNode would have). For an unclamped
// node the belief is left for re-convergence to move — except an
// input-free node, whose fixpoint IS its prior, so its belief follows
// immediately (the residual engines never enqueue input-free nodes).
// For a clamped node the new prior is parked in the retraction save
// slot: the clamp keeps winning until it is retracted, matching a
// rebuilt graph with the new prior plus the same clamp.
func (g *Graph) UpdatePrior(v int32, prior []float32) error {
	if v < 0 || int(v) >= g.NumNodes {
		return fmt.Errorf("graph: update prior: node %d out of range [0,%d)", v, g.NumNodes)
	}
	if len(prior) != g.States {
		return fmt.Errorf("graph: update prior: node %d has %d states, want %d", v, len(prior), g.States)
	}
	d := g.delta()
	p := make([]float32, g.States)
	copy(p, prior)
	Normalize(p)
	if g.Observed[v] {
		d.savedPriors[v] = p
		g.gen++
		return nil
	}
	copy(g.Prior(v), p)
	if g.InDegree(v) == 0 {
		copy(g.Belief(v), p)
	}
	d.changed[v] = struct{}{}
	g.gen++
	return nil
}

// SetEvidence clamps node v to state s as a delta: the pre-clamp prior
// is saved for retraction, the clamp applies immediately (belief and
// prior become the indicator, exactly like Observe), and v joins the
// delta frontier so re-convergence propagates the new certainty.
// Re-clamping an already-clamped node keeps its original saved prior.
func (g *Graph) SetEvidence(v int32, s int) error {
	if v < 0 || int(v) >= g.NumNodes {
		return fmt.Errorf("graph: set evidence: node %d out of range [0,%d)", v, g.NumNodes)
	}
	d := g.delta()
	if _, ok := d.savedPriors[v]; !ok && !g.Observed[v] {
		d.savedPriors[v] = append([]float32(nil), g.Prior(v)...)
	}
	if err := g.Observe(v, s); err != nil {
		return err
	}
	d.changed[v] = struct{}{}
	g.gen++
	return nil
}

// RetractEvidence removes the clamp on node v, restoring the prior
// saved by SetEvidence (including any UpdatePrior applied while the
// clamp was active) and returning the node's belief to that prior so
// re-convergence restarts it from the same state a rebuilt unclamped
// graph would. Retracting a node clamped outside the delta layer (at
// build time, or through Observe directly) errors: its pre-clamp prior
// no longer exists.
func (g *Graph) RetractEvidence(v int32) error {
	if v < 0 || int(v) >= g.NumNodes {
		return fmt.Errorf("graph: retract evidence: node %d out of range [0,%d)", v, g.NumNodes)
	}
	if !g.Observed[v] {
		return fmt.Errorf("graph: retract evidence: node %d is not observed", v)
	}
	d := g.delta()
	p, ok := d.savedPriors[v]
	if !ok {
		return fmt.Errorf("graph: retract evidence: node %d was not clamped through SetEvidence", v)
	}
	copy(g.Prior(v), p)
	copy(g.Belief(v), p)
	g.Observed[v] = false
	delete(d.savedPriors, v)
	d.changed[v] = struct{}{}
	g.gen++
	return nil
}

// TakeDeltaSeeds drains the accumulated mutation frontier as a
// delta-BP seed set: every changed node plus each one's out-neighbours
// — the same frontier shape the serving layer's warm-start path feeds
// bp.RunResidualFrom / relaxbp.RunFrom. Pending structural deltas are
// merged first so the frontier reflects the new topology. The returned
// slice is sorted and duplicate-free; nil when nothing changed. After
// the call the frontier is empty — seeds belong to exactly one
// re-convergence.
func (g *Graph) TakeDeltaSeeds() []int32 {
	if g.dyn == nil || len(g.dyn.changed) == 0 {
		g.MergeDelta()
		return nil
	}
	g.MergeDelta()
	d := g.dyn
	seen := make(map[int32]struct{}, 2*len(d.changed))
	for v := range d.changed {
		seen[v] = struct{}{}
		for _, e := range g.OutEdges[g.OutOffsets[v]:g.OutOffsets[v+1]] {
			seen[g.EdgeDst[e]] = struct{}{}
		}
	}
	seeds := make([]int32, 0, len(seen))
	for v := range seen {
		seeds = append(seeds, v)
	}
	sortInt32(seeds)
	d.changed = make(map[int32]struct{})
	return seeds
}

// sortInt32 sorts ascending. Small frontiers (the common delta case)
// take a branch-cheap insertion sort; anything larger goes through
// slices.Sort — TakeDeltaSeeds runs under the serving layer's base
// write lock, and RecommendDelta admits frontiers up to 75% of the
// node count, so a quadratic sort there would stall every query on
// the server for a large mutation batch.
func sortInt32(a []int32) {
	if len(a) > 32 {
		slices.Sort(a)
		return
	}
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}
