package graph

import (
	"fmt"
	"math"
)

// JointMatrix is the row-stochastic joint probability table p(dst|src)
// attached to a directed edge. Data is row-major: Data[i*Cols+j] is the
// probability of the destination being in state j given the source is in
// state i.
type JointMatrix struct {
	Rows, Cols uint32
	Data       []float32

	// T is the column-major (transposed) copy of Data built by
	// EnsureTransposed: T[j*Rows+i] == Data[i*Cols+j]. The gather direction
	// of message computation reads a full column of Data per output entry;
	// reading T instead makes those accesses contiguous (paper §3.4, and
	// the kernel layer's fused update). T is derived state — mutating
	// entries through Set or NormalizeRows invalidates it, and Build
	// repopulates it once per graph.
	T []float32
}

// NewJointMatrix allocates a rows x cols matrix of zeros.
func NewJointMatrix(rows, cols int) JointMatrix {
	return JointMatrix{Rows: uint32(rows), Cols: uint32(cols), Data: make([]float32, rows*cols)}
}

// UniformJointMatrix returns an n x n matrix whose rows are the uniform
// distribution, representing "no information" coupling.
func UniformJointMatrix(n int) JointMatrix {
	m := NewJointMatrix(n, n)
	u := float32(1) / float32(n)
	for i := range m.Data {
		m.Data[i] = u
	}
	return m
}

// DiagonalJointMatrix returns an n x n matrix that keeps the source state
// with probability keep and spreads the remainder uniformly over the other
// states — the standard "same error rate for every pixel / the virus
// affects everyone identically" coupling of paper §2.2.
func DiagonalJointMatrix(n int, keep float32) JointMatrix {
	m := NewJointMatrix(n, n)
	var off float32
	if n > 1 {
		off = (1 - keep) / float32(n-1)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				m.Data[i*n+j] = keep
			} else {
				m.Data[i*n+j] = off
			}
		}
	}
	return m
}

// At returns entry (i, j).
func (m *JointMatrix) At(i, j int) float32 { return m.Data[i*int(m.Cols)+j] }

// Set assigns entry (i, j), invalidating any transposed copy.
func (m *JointMatrix) Set(i, j int, v float32) {
	m.Data[i*int(m.Cols)+j] = v
	m.T = nil
}

// Row returns row i as a view.
func (m *JointMatrix) Row(i int) []float32 {
	c := int(m.Cols)
	return m.Data[i*c : i*c+c]
}

// EnsureTransposed builds the column-major copy T if it is absent. It is
// idempotent and cheap to call repeatedly; Builder.Build calls it for every
// matrix so engines can assume T is present on built graphs. Not safe for
// concurrent first calls on one matrix — build graphs before sharing them.
func (m *JointMatrix) EnsureTransposed() {
	if m.T != nil || len(m.Data) == 0 {
		return
	}
	r, c := int(m.Rows), int(m.Cols)
	t := make([]float32, len(m.Data))
	for i := 0; i < r; i++ {
		row := m.Data[i*c : i*c+c]
		for j, v := range row {
			t[j*r+i] = v
		}
	}
	m.T = t
}

// NormalizeRows rescales every row to sum to 1. Rows summing to zero become
// uniform. Any transposed copy is invalidated.
func (m *JointMatrix) NormalizeRows() {
	m.T = nil
	c := int(m.Cols)
	for i := 0; i < int(m.Rows); i++ {
		row := m.Row(i)
		var sum float32
		for _, v := range row {
			sum += v
		}
		if sum <= 0 {
			u := float32(1) / float32(c)
			for j := range row {
				row[j] = u
			}
			continue
		}
		inv := 1 / sum
		for j := range row {
			row[j] *= inv
		}
	}
}

// Validate checks that the matrix is finite, non-negative and row-stochastic.
func (m *JointMatrix) Validate() error {
	if int(m.Rows)*int(m.Cols) != len(m.Data) {
		return fmt.Errorf("joint matrix: %dx%d does not match data length %d", m.Rows, m.Cols, len(m.Data))
	}
	if m.T != nil && len(m.T) != len(m.Data) {
		return fmt.Errorf("joint matrix: transposed copy length %d does not match data length %d", len(m.T), len(m.Data))
	}
	for i := 0; i < int(m.Rows); i++ {
		var sum float64
		for j := 0; j < int(m.Cols); j++ {
			v := float64(m.At(i, j))
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("joint matrix: entry (%d,%d) not finite", i, j)
			}
			if v < 0 {
				return fmt.Errorf("joint matrix: entry (%d,%d) negative", i, j)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-3 {
			return fmt.Errorf("joint matrix: row %d sums to %v, want 1", i, sum)
		}
	}
	return nil
}

// PropagateInto computes dst[j] = Σ_i src[i]·m[i,j], the φ/ψ update of
// Equation 2 sending the source distribution through the edge matrix. dst
// and src must have lengths m.Cols and m.Rows respectively. It does not
// normalize; callers marginalize after combining.
func (m *JointMatrix) PropagateInto(dst, src []float32) {
	c := int(m.Cols)
	for j := 0; j < c; j++ {
		dst[j] = 0
	}
	for i, s := range src {
		if s == 0 {
			continue
		}
		row := m.Data[i*c : i*c+c]
		for j, w := range row {
			dst[j] += s * w
		}
	}
}

// Normalize rescales p in place to sum to 1 (the marginalization factor Z
// of Equation 2). A zero or non-finite vector becomes uniform so that
// propagation degrades gracefully instead of poisoning the graph with NaNs.
func Normalize(p []float32) {
	var sum float32
	finite := true
	for _, v := range p {
		sum += v
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			finite = false
		}
	}
	if !finite || sum <= 0 || math.IsInf(float64(sum), 0) || math.IsNaN(float64(sum)) {
		u := float32(1) / float32(len(p))
		for i := range p {
			p[i] = u
		}
		return
	}
	inv := 1 / sum
	for i := range p {
		p[i] *= inv
	}
}

// L1Diff returns Σ |a[i]−b[i]|, the convergence contribution of a single
// node (line 12 of Algorithm 1).
func L1Diff(a, b []float32) float32 {
	var sum float32
	for i := range a {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return sum
}
