package graph

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// Tests for the bulk-append builder API backing the parallel ingest
// pipeline: Reserve*/Set*Block must be exactly equivalent to a sequence of
// AddNode/AddEdge calls, and block installs on disjoint ranges must be
// safe to run concurrently.

func bitsEqual(t *testing.T, what string, a, b []float32) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: length %d != %d", what, len(a), len(b))
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			t.Fatalf("%s[%d]: %v != %v", what, i, a[i], b[i])
		}
	}
}

func TestBulkAppendMatchesIncremental(t *testing.T) {
	const states, n, m = 3, 50, 200
	rng := rand.New(rand.NewSource(7))
	priors := make([]float32, n*states)
	for i := range priors {
		priors[i] = rng.Float32()
	}
	src := make([]int32, m)
	dst := make([]int32, m)
	mats := make([]JointMatrix, m)
	for e := 0; e < m; e++ {
		src[e] = int32(rng.Intn(n))
		dst[e] = int32(rng.Intn(n))
		mats[e] = NewJointMatrix(states, states)
		for i := range mats[e].Data {
			mats[e].Data[i] = rng.Float32() + 0.01
		}
		mats[e].NormalizeRows()
	}

	inc := NewBuilder(states)
	for v := 0; v < n; v++ {
		if _, err := inc.AddNode(priors[v*states : (v+1)*states]); err != nil {
			t.Fatal(err)
		}
	}
	for e := 0; e < m; e++ {
		mat := mats[e]
		mat.Data = append([]float32(nil), mats[e].Data...)
		if err := inc.AddEdge(src[e], dst[e], &mat); err != nil {
			t.Fatal(err)
		}
	}
	want, err := inc.Build()
	if err != nil {
		t.Fatal(err)
	}

	bulk := NewBuilder(states)
	if id := bulk.ReserveNodes(n); id != 0 {
		t.Fatalf("first reserved node id %d, want 0", id)
	}
	// Install in two unequal blocks to exercise non-zero starts.
	split := 17
	if err := bulk.SetPriorBlock(0, priors[:split*states]); err != nil {
		t.Fatal(err)
	}
	if err := bulk.SetPriorBlock(int32(split), priors[split*states:]); err != nil {
		t.Fatal(err)
	}
	if at := bulk.ReserveEdges(m); at != 0 {
		t.Fatalf("first reserved edge index %d, want 0", at)
	}
	esplit := 73
	if err := bulk.SetEdgeBlock(0, src[:esplit], dst[:esplit], mats[:esplit]); err != nil {
		t.Fatal(err)
	}
	if err := bulk.SetEdgeBlock(esplit, src[esplit:], dst[esplit:], mats[esplit:]); err != nil {
		t.Fatal(err)
	}
	got, err := bulk.Build()
	if err != nil {
		t.Fatal(err)
	}

	bitsEqual(t, "Priors", want.Priors, got.Priors)
	bitsEqual(t, "Beliefs", want.Beliefs, got.Beliefs)
	for e := 0; e < m; e++ {
		if want.EdgeSrc[e] != got.EdgeSrc[e] || want.EdgeDst[e] != got.EdgeDst[e] {
			t.Fatalf("edge %d endpoints differ", e)
		}
		bitsEqual(t, "EdgeMats.Data", want.EdgeMats[e].Data, got.EdgeMats[e].Data)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestBulkAppendConcurrentBlocks(t *testing.T) {
	const states, n, workers = 2, 4000, 8
	priors := make([]float32, n*states)
	for i := range priors {
		priors[i] = float32(i%7) + 1
	}
	b := NewBuilder(states)
	if err := b.SetShared(uniformJoint(states)); err != nil {
		t.Fatal(err)
	}
	b.ReserveNodes(n)
	b.ReserveEdges(n)
	var wg sync.WaitGroup
	per := n / workers
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lo, hi := w*per, (w+1)*per
			if err := b.SetPriorBlock(int32(lo), priors[lo*states:hi*states]); err != nil {
				t.Error(err)
			}
			src := make([]int32, hi-lo)
			dst := make([]int32, hi-lo)
			for i := range src {
				src[i] = int32(lo + i)
				dst[i] = int32((lo + i + 1) % n)
			}
			if err := b.SetEdgeBlock(lo, src, dst, nil); err != nil {
				t.Error(err)
			}
		}(w)
	}
	wg.Wait()
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	for e := 0; e < n; e++ {
		if g.EdgeSrc[e] != int32(e) || g.EdgeDst[e] != int32((e+1)%n) {
			t.Fatalf("edge %d endpoints (%d,%d)", e, g.EdgeSrc[e], g.EdgeDst[e])
		}
	}
}

func uniformJoint(states int) JointMatrix {
	m := NewJointMatrix(states, states)
	u := float32(1) / float32(states)
	for i := range m.Data {
		m.Data[i] = u
	}
	return m
}

func TestBulkAppendErrors(t *testing.T) {
	b := NewBuilder(2)
	b.ReserveNodes(4)
	if err := b.SetPriorBlock(0, []float32{1, 2, 3}); err == nil {
		t.Error("accepted prior block not a multiple of states")
	}
	if err := b.SetPriorBlock(3, []float32{1, 2, 3, 4}); err == nil {
		t.Error("accepted prior block past the reservation")
	}
	if err := b.SetPriorBlock(-1, []float32{1, 2}); err == nil {
		t.Error("accepted negative block start")
	}
	b.ReserveEdges(2)
	bad := NewJointMatrix(3, 3)
	if err := b.SetEdgeBlock(0, []int32{0}, []int32{1}, []JointMatrix{bad}); err == nil {
		t.Error("accepted wrong-shape matrix")
	}
	if err := b.SetEdgeBlock(0, []int32{0, 1}, []int32{1}, nil); err == nil {
		t.Error("accepted src/dst length mismatch")
	}
	if err := b.SetEdgeBlock(1, []int32{0, 1}, []int32{1, 0}, []JointMatrix{NewJointMatrix(2, 2), NewJointMatrix(2, 2)}); err == nil {
		t.Error("accepted edge block past the reservation")
	}
	if err := b.SetEdgeBlock(0, []int32{9}, []int32{1}, []JointMatrix{NewJointMatrix(2, 2)}); err == nil {
		t.Error("accepted endpoint out of range")
	}

	sh := NewBuilder(2)
	if err := sh.SetShared(uniformJoint(2)); err != nil {
		t.Fatal(err)
	}
	sh.ReserveNodes(2)
	sh.ReserveEdges(1)
	if err := sh.SetEdgeBlock(0, []int32{0}, []int32{1}, []JointMatrix{NewJointMatrix(2, 2)}); err == nil {
		t.Error("accepted matrices in shared mode")
	}
	per := NewBuilder(2)
	per.ReserveNodes(2)
	per.ReserveEdges(1)
	if err := per.SetEdgeBlock(0, []int32{0}, []int32{1}, nil); err == nil {
		t.Error("accepted missing matrices in per-edge mode")
	}
}
