package graph

import (
	"math"
	"testing"
)

func TestStats(t *testing.T) {
	g := buildDiamond(t, 2)
	md := g.Stats()
	if md.NumNodes != 4 || md.NumEdges != 4 {
		t.Fatalf("stats = %+v, want 4 nodes / 4 edges", md)
	}
	if md.MaxInDegree != 2 || md.MaxOutDegree != 2 {
		t.Errorf("max degrees = %d/%d, want 2/2", md.MaxInDegree, md.MaxOutDegree)
	}
	if md.AvgInDegree != 1 {
		t.Errorf("avg in-degree = %v, want 1", md.AvgInDegree)
	}
	if r := md.NodesToEdgesRatio(); r != 1 {
		t.Errorf("nodes/edges = %v, want 1", r)
	}
	if im := md.DegreeImbalance(); im != 1 {
		t.Errorf("imbalance = %v, want 1", im)
	}
	if sk := md.Skew(); math.Abs(sk-0.5) > 1e-9 {
		t.Errorf("skew = %v, want 0.5", sk)
	}
}

func TestStatsEmptyAndStar(t *testing.T) {
	b := NewBuilder(2)
	_, _ = b.AddNode(nil)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	md := g.Stats()
	if md.NodesToEdgesRatio() != 0 || md.DegreeImbalance() != 0 || md.Skew() != 0 {
		t.Errorf("edgeless graph ratios nonzero: %+v", md)
	}

	// Star graph: hub receives from k leaves.
	b = NewBuilder(2)
	hub, _ := b.AddNode(nil)
	m := DiagonalJointMatrix(2, 0.8)
	for i := 0; i < 5; i++ {
		leaf, _ := b.AddNode(nil)
		if err := b.AddEdge(leaf, hub, &m); err != nil {
			t.Fatalf("AddEdge: %v", err)
		}
	}
	g, err = b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	md = g.Stats()
	if md.MaxInDegree != 5 || md.MaxOutDegree != 1 {
		t.Fatalf("star degrees = %d/%d, want 5/1", md.MaxInDegree, md.MaxOutDegree)
	}
	if im := md.DegreeImbalance(); im != 5 {
		t.Errorf("imbalance = %v, want 5", im)
	}
	// Skew: avg in-degree 5/6 over max 5.
	if sk := md.Skew(); math.Abs(sk-(5.0/6.0)/5.0) > 1e-9 {
		t.Errorf("skew = %v, want %v", sk, (5.0/6.0)/5.0)
	}
}
