package graph

import (
	"math"
	"testing"
)

func TestEntropy(t *testing.T) {
	if got := Entropy([]float32{1, 0}); got != 0 {
		t.Errorf("point mass entropy = %v, want 0", got)
	}
	if got := Entropy([]float32{0.5, 0.5}); math.Abs(got-math.Log(2)) > 1e-9 {
		t.Errorf("uniform entropy = %v, want ln 2", got)
	}
	u4 := []float32{0.25, 0.25, 0.25, 0.25}
	if got := Entropy(u4); math.Abs(got-math.Log(4)) > 1e-6 {
		t.Errorf("uniform-4 entropy = %v, want ln 4", got)
	}
}

func TestKLDivergence(t *testing.T) {
	p := []float32{0.5, 0.5}
	if got := KLDivergence(p, p); math.Abs(got) > 1e-9 {
		t.Errorf("D(p||p) = %v, want 0", got)
	}
	q := []float32{0.9, 0.1}
	if got := KLDivergence(p, q); got <= 0 {
		t.Errorf("D(p||q) = %v, want > 0", got)
	}
	// Support mismatch yields +Inf.
	if got := KLDivergence([]float32{0.5, 0.5}, []float32{1, 0}); !math.IsInf(got, 1) {
		t.Errorf("support mismatch = %v, want +Inf", got)
	}
	// p zero entries contribute nothing.
	if got := KLDivergence([]float32{1, 0}, []float32{0.5, 0.5}); math.Abs(got-math.Log(2)) > 1e-6 {
		t.Errorf("D = %v, want ln 2", got)
	}
}

func TestTotalVariation(t *testing.T) {
	if got := TotalVariation([]float32{1, 0}, []float32{0, 1}); got != 1 {
		t.Errorf("disjoint TV = %v, want 1", got)
	}
	if got := TotalVariation([]float32{0.5, 0.5}, []float32{0.5, 0.5}); got != 0 {
		t.Errorf("equal TV = %v, want 0", got)
	}
}

func TestMeanEntropy(t *testing.T) {
	g := buildDiamond(t, 2)
	// All uniform priors: entropy = ln 2.
	if got := g.MeanEntropy(); math.Abs(got-math.Log(2)) > 1e-6 {
		t.Errorf("mean entropy = %v, want ln 2", got)
	}
	_ = g.Observe(0, 1)
	if got := g.MeanEntropy(); got >= math.Log(2) {
		t.Errorf("observation did not lower mean entropy: %v", got)
	}
	empty, err := NewBuilder(2).Build()
	if err == nil {
		_ = empty
	}
	var g0 Graph
	g0.States = 2
	if g0.MeanEntropy() != 0 {
		t.Error("empty graph mean entropy not 0")
	}
}
