package graph

import "fmt"

// BatchState is the struct-of-arrays staging area for K concurrent
// belief-propagation problems over one structure: K independent evidence
// sets, priors and belief vectors carried lane-by-lane so a single pass
// over the adjacency can service all K queries at once.
//
// Layout: entry (node v, state j, lane k) lives at (v*States+j)*K + k —
// the K lanes of one state are contiguous, so a batched kernel loads a
// joint-matrix coefficient once and applies it to K lanes with unit-stride
// reads and writes. Observed is per node per lane (v*K + k): each lane
// clamps its own evidence without touching its neighbours.
//
// A BatchState is built against a base graph and restaged with Reset, so
// serving layers can pool them like evidence overlays.
type BatchState struct {
	// K is the lane capacity of the batch.
	K int
	// Used is the number of leading lanes actually staged with a query;
	// lanes in [Used, K) are idle and engines skip them. NewBatchState
	// and Reset set it to K.
	Used int
	// NumNodes and States mirror the base graph's shape.
	NumNodes int
	States   int

	// Beliefs, Priors: stride States*K per node, K lanes per state
	// contiguous (see the layout note above).
	Beliefs []float32
	Priors  []float32
	// Observed marks node v clamped in lane k at index v*K+k.
	Observed []bool
}

// NewBatchState stages K lanes of g's numeric state: every lane starts
// as a copy of the base graph's priors, beliefs and observations.
func NewBatchState(g *Graph, k int) (*BatchState, error) {
	if k < 1 {
		return nil, fmt.Errorf("graph: batch lane count %d, want >= 1", k)
	}
	bs := &BatchState{
		K:        k,
		Used:     k,
		NumNodes: g.NumNodes,
		States:   g.States,
		Beliefs:  make([]float32, g.NumNodes*g.States*k),
		Priors:   make([]float32, g.NumNodes*g.States*k),
		Observed: make([]bool, g.NumNodes*k),
	}
	bs.Reset(g)
	return bs, nil
}

// Reset restages every lane from the base graph: priors and beliefs are
// replicated across lanes, per-lane observations mirror the base, and
// Used returns to K. The base must have the shape the state was built
// for.
func (bs *BatchState) Reset(g *Graph) {
	s, k := bs.States, bs.K
	for v := 0; v < bs.NumNodes; v++ {
		for j := 0; j < s; j++ {
			b := g.Beliefs[v*s+j]
			p := g.Priors[v*s+j]
			base := (v*s + j) * k
			for l := 0; l < k; l++ {
				bs.Beliefs[base+l] = b
				bs.Priors[base+l] = p
			}
		}
		o := g.Observed[v]
		for l := 0; l < k; l++ {
			bs.Observed[v*k+l] = o
		}
	}
	bs.Used = k
}

// Observe clamps node v to state s in lane lane only: that lane's belief
// and prior become the indicator distribution and the lane's propagation
// will never change them.
func (bs *BatchState) Observe(lane int, v int32, s int) error {
	if lane < 0 || lane >= bs.K {
		return fmt.Errorf("graph: batch lane %d out of range [0,%d)", lane, bs.K)
	}
	if s < 0 || s >= bs.States {
		return fmt.Errorf("graph: observe node %d: state %d out of range [0,%d)", v, s, bs.States)
	}
	if v < 0 || int(v) >= bs.NumNodes {
		return fmt.Errorf("graph: observe node %d out of range [0,%d)", v, bs.NumNodes)
	}
	base := int(v) * bs.States * bs.K
	for j := 0; j < bs.States; j++ {
		bs.Beliefs[base+j*bs.K+lane] = 0
		bs.Priors[base+j*bs.K+lane] = 0
	}
	bs.Beliefs[base+s*bs.K+lane] = 1
	bs.Priors[base+s*bs.K+lane] = 1
	bs.Observed[int(v)*bs.K+lane] = true
	return nil
}

// LaneBelief copies node v's belief in lane lane into dst (length
// States) and returns it. The lanes of one state are strided, so a view
// cannot be returned.
func (bs *BatchState) LaneBelief(lane int, v int32, dst []float32) []float32 {
	base := int(v) * bs.States * bs.K
	for j := 0; j < bs.States; j++ {
		dst[j] = bs.Beliefs[base+j*bs.K+lane]
	}
	return dst
}

// ExtractLane copies lane lane's full belief array into dst, which must
// have length NumNodes*States in the graph's flat stride-States layout.
func (bs *BatchState) ExtractLane(lane int, dst []float32) {
	k := bs.K
	for i := 0; i < bs.NumNodes*bs.States; i++ {
		dst[i] = bs.Beliefs[i*k+lane]
	}
}

// SetLaneBeliefs overwrites lane lane's beliefs from a flat
// stride-States array (warm-start staging from a converged snapshot).
// Clamped entries are intentionally overwritten too — callers stage
// beliefs first and apply clamps after.
func (bs *BatchState) SetLaneBeliefs(lane int, src []float32) {
	k := bs.K
	for i := 0; i < bs.NumNodes*bs.States; i++ {
		bs.Beliefs[i*k+lane] = src[i]
	}
}

// SetLaneNodeBelief overwrites node v's belief in lane lane from a
// stride-States view (e.g. a prior slice when restarting a perturbed
// node).
func (bs *BatchState) SetLaneNodeBelief(lane int, v int32, src []float32) {
	base := int(v) * bs.States * bs.K
	for j := 0; j < bs.States; j++ {
		bs.Beliefs[base+j*bs.K+lane] = src[j]
	}
}
