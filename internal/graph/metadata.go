package graph

// Metadata summarizes the structural statistics of a graph that Credo's
// classifier consumes (paper §3.7). All statistics are derived from the
// adjacency indices alone, so they are available immediately after input
// parsing and before any propagation.
type Metadata struct {
	NumNodes int
	NumEdges int // directed edges
	States   int

	MaxInDegree  int
	MaxOutDegree int
	AvgInDegree  float64
	AvgOutDegree float64
}

// Stats computes the graph's metadata in a single pass over the offset
// arrays.
func (g *Graph) Stats() Metadata {
	md := Metadata{
		NumNodes: g.NumNodes,
		NumEdges: g.NumEdges,
		States:   g.States,
	}
	for v := 0; v < g.NumNodes; v++ {
		if d := g.InDegree(int32(v)); d > md.MaxInDegree {
			md.MaxInDegree = d
		}
		if d := g.OutDegree(int32(v)); d > md.MaxOutDegree {
			md.MaxOutDegree = d
		}
	}
	if g.NumNodes > 0 {
		md.AvgInDegree = float64(g.NumEdges) / float64(g.NumNodes)
		md.AvgOutDegree = md.AvgInDegree
	}
	return md
}

// NodesToEdgesRatio returns #nodes / #edges, one of the five classifier
// features. It returns 0 for an edgeless graph.
func (md Metadata) NodesToEdgesRatio() float64 {
	if md.NumEdges == 0 {
		return 0
	}
	return float64(md.NumNodes) / float64(md.NumEdges)
}

// DegreeImbalance returns max in-degree / max out-degree (paper: "the ratio
// of the max in-degree to the max out-degree").
func (md Metadata) DegreeImbalance() float64 {
	if md.MaxOutDegree == 0 {
		return 0
	}
	return float64(md.MaxInDegree) / float64(md.MaxOutDegree)
}

// Skew returns average in-degree / max in-degree (paper: "the ratio of
// average in-degree to max in-degree"). Values near 1 mean regular graphs;
// values near 0 mean heavy-tailed degree distributions.
func (md Metadata) Skew() float64 {
	if md.MaxInDegree == 0 {
		return 0
	}
	return md.AvgInDegree / float64(md.MaxInDegree)
}
