package graph

// CouplingStats summarizes the edge potentials of a graph: how strongly
// edges couple their endpoints and in which direction. Unlike the
// adjacency statistics in Metadata, these need one pass over the joint
// matrices — still input-only work, available before any propagation, so
// the variant selector can score oscillation risk from parsing alone.
//
// Each square edge matrix is reduced to its mean diagonal mass d̄ (the
// average probability of the destination copying the source state).
// d̄ above uniform is attractive coupling, below uniform repulsive;
// distance from uniform, normalized to [0,1], is the coupling strength.
// Non-square matrices (state-translating edges) carry no copy/anti-copy
// notion and are skipped.
type CouplingStats struct {
	// Edges is the number of square-matrix edges measured.
	Edges int
	// RepulsiveFraction is the fraction of measured edges whose mean
	// diagonal sits below uniform. Anything meaningfully above zero on a
	// loopy graph is a frustration proxy: loops mixing attractive and
	// repulsive couplings (or odd loops of pure repulsion) cannot
	// satisfy every edge, the classic spin-glass failure mode of BP.
	RepulsiveFraction float64
	// MeanStrength and MaxStrength are the average and maximum
	// normalized coupling strength |d̄ − 1/s| / (1 − 1/s) over measured
	// edges. Near 0 the potentials barely constrain endpoints; near 1
	// they approach deterministic (anti-)copying, the regime where
	// synchronous BP oscillates.
	MeanStrength float64
	MaxStrength  float64
}

// matrixCoupling returns the normalized strength and repulsion flag of
// one square matrix, and ok=false for non-square ones.
func matrixCoupling(m *JointMatrix, states int) (strength float64, repulsive, ok bool) {
	if m == nil || m.Rows != m.Cols || int(m.Rows) != states || states <= 1 {
		return 0, false, false
	}
	var diag float64
	for i := 0; i < states; i++ {
		diag += float64(m.At(i, i))
	}
	diag /= float64(states)
	uniform := 1 / float64(states)
	if diag >= uniform {
		strength = (diag - uniform) / (1 - uniform)
	} else {
		// A repulsive diagonal can drop at most uniform below uniform;
		// renormalize that range to [0,1] so "fully repulsive" and
		// "fully attractive" both score 1.
		repulsive = true
		strength = (uniform - diag) / uniform
	}
	if strength > 1 {
		strength = 1
	}
	return strength, repulsive, true
}

// CouplingStats computes the potential summary in one pass. A shared
// matrix is measured once and weighted over every edge.
func (g *Graph) CouplingStats() CouplingStats {
	var cs CouplingStats
	if g.Shared != nil {
		s, rep, ok := matrixCoupling(g.Shared, g.States)
		if !ok || g.NumEdges == 0 {
			return cs
		}
		cs.Edges = g.NumEdges
		cs.MeanStrength = s
		cs.MaxStrength = s
		if rep {
			cs.RepulsiveFraction = 1
		}
		return cs
	}
	var sum float64
	var repulsive int
	for e := range g.EdgeMats {
		s, rep, ok := matrixCoupling(&g.EdgeMats[e], g.States)
		if !ok {
			continue
		}
		cs.Edges++
		sum += s
		if s > cs.MaxStrength {
			cs.MaxStrength = s
		}
		if rep {
			repulsive++
		}
	}
	if cs.Edges > 0 {
		cs.MeanStrength = sum / float64(cs.Edges)
		cs.RepulsiveFraction = float64(repulsive) / float64(cs.Edges)
	}
	return cs
}
