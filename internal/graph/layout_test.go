package graph

import (
	"testing"
)

func fillStore(s BeliefStore, states int) {
	v := make([]float32, states)
	for i := 0; i < s.Len(); i++ {
		for j := range v {
			v[j] = float32(i+j) / float32(s.Len()+states)
		}
		s.Store(i, v)
	}
}

func TestStoreRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		s    BeliefStore
	}{
		{"AoS", NewAoSStore(10, 3)},
		{"SoA", NewSoAStore(10, 3)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			fillStore(tc.s, 3)
			if tc.s.Len() != 10 {
				t.Fatalf("Len = %d, want 10", tc.s.Len())
			}
			if tc.s.States(4) != 3 {
				t.Fatalf("States(4) = %d, want 3", tc.s.States(4))
			}
			got := make([]float32, 3)
			tc.s.Load(7, got)
			want := float32(7+1) / float32(13)
			if got[1] != want {
				t.Errorf("Load(7)[1] = %v, want %v", got[1], want)
			}
		})
	}
}

// TestAoSFewerLines reproduces the direction of the paper's §3.4 result:
// the AoS layout touches fewer cache lines than SoA for small belief
// widths because the dims ride in the same line as the probabilities.
func TestAoSFewerLines(t *testing.T) {
	for _, states := range []int{2, 3, 8} {
		aos := NewAoSStore(1000, states)
		soa := NewSoAStore(1000, states)
		fillStore(aos, states)
		fillStore(soa, states)
		dst := make([]float32, states)
		var aosLines, soaLines int
		for i := 0; i < 1000; i++ {
			aosLines += aos.Load(i, dst)
			soaLines += soa.Load(i, dst)
		}
		if aosLines >= soaLines {
			t.Errorf("states=%d: AoS lines %d >= SoA lines %d", states, aosLines, soaLines)
		}
	}
}

func TestLinesSpanned(t *testing.T) {
	cases := []struct{ bytes, want int }{
		{0, 0}, {1, 1}, {64, 1}, {65, 2}, {128, 2}, {129, 3},
	}
	for _, c := range cases {
		if got := linesSpanned(c.bytes); got != c.want {
			t.Errorf("linesSpanned(%d) = %d, want %d", c.bytes, got, c.want)
		}
	}
}
