package graph

import "fmt"

// CopyStateFrom resets g's numeric state — beliefs, priors, observed
// flags and messages — to src's, leaving g's adjacency, names and joint
// matrices untouched. It is the evidence-overlay primitive behind the
// serving layer: a resident graph stays pristine and read-only while
// each query leases a structural clone, re-bases its numeric state with
// CopyStateFrom, clamps its own evidence and runs propagation, so
// concurrent queries never observe each other's clamps or beliefs.
//
// g and src must have the same shape (node count, edge count, belief
// width); a leased clone always does. Only numeric arrays are written,
// so any number of overlays may CopyStateFrom one shared src
// concurrently.
func (g *Graph) CopyStateFrom(src *Graph) error {
	if g.NumNodes != src.NumNodes || g.NumEdges != src.NumEdges || g.States != src.States {
		return fmt.Errorf("graph: overlay shape %d nodes/%d edges/%d states does not match source %d/%d/%d",
			g.NumNodes, g.NumEdges, g.States, src.NumNodes, src.NumEdges, src.States)
	}
	copy(g.Beliefs, src.Beliefs)
	copy(g.Priors, src.Priors)
	copy(g.Observed, src.Observed)
	copy(g.Messages, src.Messages)
	return nil
}
