// Package graph provides the belief-graph substrate used by every Credo
// implementation: nodes carrying discrete probability distributions
// ("beliefs"), directed edges carrying joint probability matrices, and
// compressed adjacency indices for traversal by node or by edge.
//
// An undirected Markov Random Field edge is stored as two directed edges so
// that observed (clamped) nodes can keep emitting updates without ever being
// overwritten (paper §3.3).
package graph

import (
	"errors"
	"fmt"
	"math"
)

// MaxStates is the largest supported belief width. The paper's three use
// cases need 2 (binary), 3 (virus: susceptible/infected/recovered) and 32
// (one belief per bit of a 32-bit pixel).
const MaxStates = 32

// Graph is a belief network prepared for belief propagation. Beliefs,
// priors and per-edge messages are stored in flat, parallel float32 arrays
// with stride States; adjacency is stored as CSR-style offset/index arrays
// so that the hot loops touch only indices and the flat numeric arrays
// (paper §3.4).
type Graph struct {
	// NumNodes and NumEdges count nodes and *directed* edges.
	NumNodes int
	NumEdges int

	// States is the uniform belief width of every node.
	States int

	// Names holds optional node names; nil when nodes are anonymous.
	Names []string

	// Beliefs is the current belief of each node, flattened with stride
	// States: node i owns Beliefs[i*States : (i+1)*States].
	Beliefs []float32

	// Priors is the original (prior) distribution of each node, with the
	// same layout as Beliefs. Observed nodes have a clamped prior.
	Priors []float32

	// Observed marks nodes whose state is known with certainty; their
	// beliefs never change during propagation (paper §2.1).
	Observed []bool

	// EdgeSrc and EdgeDst give the endpoints of each directed edge.
	EdgeSrc []int32
	EdgeDst []int32

	// InOffsets/InEdges index the edges arriving at each node:
	// InEdges[InOffsets[v]:InOffsets[v+1]] are the edge ids with dst v.
	InOffsets []int32
	InEdges   []int32

	// OutOffsets/OutEdges index the edges leaving each node.
	OutOffsets []int32
	OutEdges   []int32

	// Messages holds the current message along each directed edge,
	// flattened with stride States.
	Messages []float32

	// Shared is the single joint probability matrix used by every edge
	// when the large-graph refinement of paper §2.2 is active.
	Shared *JointMatrix

	// EdgeMats holds one joint probability matrix per directed edge when
	// the original per-edge mode is active. Exactly one of Shared and
	// EdgeMats is set.
	EdgeMats []JointMatrix

	// gen and structGen are the mutation generation counters maintained
	// by the delta layer (see delta.go); read them through Generation and
	// StructuralGeneration. dyn holds the pending structural overlay, the
	// saved pre-clamp priors and the changed-node frontier; nil until the
	// first delta mutation.
	gen       uint64
	structGen uint64
	dyn       *graphDelta
}

// SharedMatrix reports whether the graph uses the single shared joint
// probability matrix refinement.
func (g *Graph) SharedMatrix() bool { return g.Shared != nil }

// EnsureTransposed builds the column-major copy of every joint matrix in
// the graph (see JointMatrix.EnsureTransposed). Builder.Build calls it so
// that built graphs always carry transposes; engines call it defensively
// for graphs assembled by hand. Idempotent; not safe to race with itself
// on a graph whose matrices lack transposes.
func (g *Graph) EnsureTransposed() {
	if g.Shared != nil {
		g.Shared.EnsureTransposed()
		return
	}
	for i := range g.EdgeMats {
		g.EdgeMats[i].EnsureTransposed()
	}
}

// Matrix returns the joint probability matrix governing edge e.
func (g *Graph) Matrix(e int32) *JointMatrix {
	if g.Shared != nil {
		return g.Shared
	}
	return &g.EdgeMats[e]
}

// Belief returns the belief vector of node v (a view, not a copy).
func (g *Graph) Belief(v int32) []float32 {
	return g.Beliefs[int(v)*g.States : int(v)*g.States+g.States]
}

// Prior returns the prior vector of node v (a view, not a copy).
func (g *Graph) Prior(v int32) []float32 {
	return g.Priors[int(v)*g.States : int(v)*g.States+g.States]
}

// Message returns the message vector along directed edge e (a view).
func (g *Graph) Message(e int32) []float32 {
	return g.Messages[int(e)*g.States : int(e)*g.States+g.States]
}

// InDegree returns the number of edges arriving at node v.
func (g *Graph) InDegree(v int32) int {
	return int(g.InOffsets[v+1] - g.InOffsets[v])
}

// OutDegree returns the number of edges leaving node v.
func (g *Graph) OutDegree(v int32) int {
	return int(g.OutOffsets[v+1] - g.OutOffsets[v])
}

// Observe clamps node v to state s: its belief and prior become the
// indicator distribution of s and propagation will never change them.
func (g *Graph) Observe(v int32, s int) error {
	if s < 0 || s >= g.States {
		return fmt.Errorf("graph: observe node %d: state %d out of range [0,%d)", v, s, g.States)
	}
	b := g.Belief(v)
	p := g.Prior(v)
	for i := range b {
		b[i] = 0
		p[i] = 0
	}
	b[s] = 1
	p[s] = 1
	g.Observed[v] = true
	return nil
}

// ResetBeliefs restores every node's belief to its prior and every message
// to the uniform distribution, undoing any propagation.
func (g *Graph) ResetBeliefs() {
	copy(g.Beliefs, g.Priors)
	u := float32(1) / float32(g.States)
	for i := range g.Messages {
		g.Messages[i] = u
	}
}

// Clone returns a deep copy of the graph. The adjacency index arrays are
// shared (they are only ever replaced wholesale, never patched in place —
// see MergeDelta); numeric state is copied. The clone carries its source's
// mutation generations and a deep copy of any delta-layer state, so
// mutating either graph afterwards never leaks into the other.
func (g *Graph) Clone() *Graph {
	c := *g
	c.Beliefs = append([]float32(nil), g.Beliefs...)
	c.Priors = append([]float32(nil), g.Priors...)
	c.Observed = append([]bool(nil), g.Observed...)
	c.Messages = append([]float32(nil), g.Messages...)
	if g.Shared != nil {
		s := *g.Shared
		c.Shared = &s
	}
	c.dyn = g.dyn.clone()
	return &c
}

// MemoryFootprint returns the approximate number of bytes of numeric and
// index data held by the graph. It is used by the VRAM admission check of
// the simulated GPU (paper §4.2 excludes TW and OR for exceeding 8 GB).
func (g *Graph) MemoryFootprint() int64 {
	var b int64
	b += int64(len(g.Beliefs)+len(g.Priors)+len(g.Messages)) * 4
	b += int64(len(g.EdgeSrc)+len(g.EdgeDst)+len(g.InOffsets)+len(g.InEdges)+len(g.OutOffsets)+len(g.OutEdges)) * 4
	b += int64(len(g.Observed))
	if g.Shared != nil {
		b += int64(g.States*g.States) * 4
	}
	b += int64(len(g.EdgeMats)) * int64(g.States*g.States) * 4
	return b
}

// Validate checks the structural invariants of the graph: well-formed CSR
// offsets, edge endpoints in range, normalized finite beliefs, and matrix
// dimensions matching the belief width. It is used by tests and by the
// input parsers after loading.
func (g *Graph) Validate() error {
	if g.States <= 0 || g.States > MaxStates {
		return fmt.Errorf("graph: states %d out of range [1,%d]", g.States, MaxStates)
	}
	if len(g.Beliefs) != g.NumNodes*g.States {
		return fmt.Errorf("graph: beliefs length %d, want %d", len(g.Beliefs), g.NumNodes*g.States)
	}
	if len(g.Priors) != g.NumNodes*g.States {
		return fmt.Errorf("graph: priors length %d, want %d", len(g.Priors), g.NumNodes*g.States)
	}
	if len(g.Observed) != g.NumNodes {
		return fmt.Errorf("graph: observed length %d, want %d", len(g.Observed), g.NumNodes)
	}
	if len(g.EdgeSrc) != g.NumEdges || len(g.EdgeDst) != g.NumEdges {
		return fmt.Errorf("graph: edge endpoint arrays %d/%d, want %d", len(g.EdgeSrc), len(g.EdgeDst), g.NumEdges)
	}
	if len(g.Messages) != g.NumEdges*g.States {
		return fmt.Errorf("graph: messages length %d, want %d", len(g.Messages), g.NumEdges*g.States)
	}
	if g.Shared == nil && len(g.EdgeMats) != g.NumEdges {
		return fmt.Errorf("graph: no shared matrix and %d edge matrices for %d edges", len(g.EdgeMats), g.NumEdges)
	}
	if g.Shared != nil && len(g.EdgeMats) != 0 {
		return errors.New("graph: both shared and per-edge matrices set")
	}
	for e := 0; e < g.NumEdges; e++ {
		if s := g.EdgeSrc[e]; s < 0 || int(s) >= g.NumNodes {
			return fmt.Errorf("graph: edge %d src %d out of range", e, s)
		}
		if d := g.EdgeDst[e]; d < 0 || int(d) >= g.NumNodes {
			return fmt.Errorf("graph: edge %d dst %d out of range", e, d)
		}
		m := g.Matrix(int32(e))
		if int(m.Rows) != g.States || int(m.Cols) != g.States {
			return fmt.Errorf("graph: edge %d matrix %dx%d, want %dx%d", e, m.Rows, m.Cols, g.States, g.States)
		}
	}
	if err := validateCSR(g.InOffsets, g.InEdges, g.EdgeDst, g.NumNodes, g.NumEdges, "in"); err != nil {
		return err
	}
	if err := validateCSR(g.OutOffsets, g.OutEdges, g.EdgeSrc, g.NumNodes, g.NumEdges, "out"); err != nil {
		return err
	}
	for v := 0; v < g.NumNodes; v++ {
		if err := checkDistribution(g.Belief(int32(v))); err != nil {
			return fmt.Errorf("graph: node %d belief: %w", v, err)
		}
		if err := checkDistribution(g.Prior(int32(v))); err != nil {
			return fmt.Errorf("graph: node %d prior: %w", v, err)
		}
	}
	return nil
}

func validateCSR(offsets, edges, endpoint []int32, numNodes, numEdges int, kind string) error {
	if len(offsets) != numNodes+1 {
		return fmt.Errorf("graph: %s-offsets length %d, want %d", kind, len(offsets), numNodes+1)
	}
	if len(edges) != numEdges {
		return fmt.Errorf("graph: %s-edges length %d, want %d", kind, len(edges), numEdges)
	}
	if offsets[0] != 0 || int(offsets[numNodes]) != numEdges {
		return fmt.Errorf("graph: %s-offsets ends %d..%d, want 0..%d", kind, offsets[0], offsets[numNodes], numEdges)
	}
	for v := 0; v < numNodes; v++ {
		if offsets[v] > offsets[v+1] {
			return fmt.Errorf("graph: %s-offsets not monotone at node %d", kind, v)
		}
		for _, e := range edges[offsets[v]:offsets[v+1]] {
			if e < 0 || int(e) >= numEdges {
				return fmt.Errorf("graph: %s-edge id %d out of range at node %d", kind, e, v)
			}
			if endpoint[e] != int32(v) {
				return fmt.Errorf("graph: %s-edge %d endpoint %d listed under node %d", kind, e, endpoint[e], v)
			}
		}
	}
	return nil
}

// checkDistribution verifies that p is a finite, non-negative distribution
// summing to 1 within tolerance.
func checkDistribution(p []float32) error {
	var sum float64
	for i, v := range p {
		f := float64(v)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return fmt.Errorf("entry %d is not finite: %v", i, v)
		}
		if f < 0 {
			return fmt.Errorf("entry %d is negative: %v", i, v)
		}
		sum += f
	}
	if math.Abs(sum-1) > 1e-3 {
		return fmt.Errorf("sums to %v, want 1", sum)
	}
	return nil
}

// ObserveSoft applies virtual (likelihood) evidence to node v: its prior
// is multiplied entrywise by the likelihood and renormalized, without
// clamping the node. This is Pearl's soft-evidence mechanism — the node
// keeps updating during propagation, but its prior now carries the
// observation's weight.
func (g *Graph) ObserveSoft(v int32, likelihood []float32) error {
	if len(likelihood) != g.States {
		return fmt.Errorf("graph: soft evidence on node %d has %d states, want %d", v, len(likelihood), g.States)
	}
	if v < 0 || int(v) >= g.NumNodes {
		return fmt.Errorf("graph: soft evidence node %d out of range", v)
	}
	p := g.Prior(v)
	var sum float32
	for i, l := range likelihood {
		if l < 0 || math.IsNaN(float64(l)) || math.IsInf(float64(l), 0) {
			return fmt.Errorf("graph: soft evidence entry %d is not a valid likelihood: %v", i, l)
		}
		p[i] *= l
		sum += p[i]
	}
	if sum <= 0 {
		return fmt.Errorf("graph: soft evidence on node %d zeroes the prior", v)
	}
	Normalize(p)
	copy(g.Belief(v), p)
	return nil
}
