package graph

import "testing"

// buildDiamond returns a small shared-matrix graph for overlay tests.
func buildOverlayDiamond(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(2)
	if err := b.SetShared(DiagonalJointMatrix(2, 0.8)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := b.AddNode([]float32{0.5, 0.5}); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range [][2]int32{{0, 1}, {0, 2}, {1, 3}, {2, 3}} {
		if err := b.AddUndirected(e[0], e[1], nil); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestCopyStateFrom(t *testing.T) {
	base := buildOverlayDiamond(t)
	overlay := base.Clone()

	// Perturb the overlay the way a query does: clamp evidence (mutating
	// beliefs, priors and observed) and scribble on messages.
	if err := overlay.Observe(1, 0); err != nil {
		t.Fatal(err)
	}
	overlay.Messages[0] = 0.123

	if err := overlay.CopyStateFrom(base); err != nil {
		t.Fatal(err)
	}
	for i := range base.Beliefs {
		if overlay.Beliefs[i] != base.Beliefs[i] {
			t.Fatalf("belief %d = %g, want %g", i, overlay.Beliefs[i], base.Beliefs[i])
		}
		if overlay.Priors[i] != base.Priors[i] {
			t.Fatalf("prior %d = %g, want %g", i, overlay.Priors[i], base.Priors[i])
		}
	}
	for i := range base.Observed {
		if overlay.Observed[i] != base.Observed[i] {
			t.Fatalf("observed %d = %v, want %v", i, overlay.Observed[i], base.Observed[i])
		}
	}
	for i := range base.Messages {
		if overlay.Messages[i] != base.Messages[i] {
			t.Fatalf("message %d = %g, want %g", i, overlay.Messages[i], base.Messages[i])
		}
	}

	// The base must never have been touched by the overlay's evidence.
	if base.Observed[1] {
		t.Fatal("base graph mutated by overlay evidence")
	}
	if err := base.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCopyStateFromShapeMismatch(t *testing.T) {
	base := buildOverlayDiamond(t)
	b := NewBuilder(2)
	if _, err := b.AddNode([]float32{1, 0}); err != nil {
		t.Fatal(err)
	}
	small, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := small.CopyStateFrom(base); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}
