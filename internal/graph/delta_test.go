package graph

import (
	"fmt"
	"testing"
)

// equalInt32 reports whether two int32 slices match elementwise.
func equalInt32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestMergeDeltaMatchesRebuild pins the incremental CSR patch against the
// construction-path ground truth: building base edges then delta edges
// must yield exactly the arrays a fresh Builder fed the concatenated edge
// list produces (patchCSR, like buildCSR, keeps runs in edge-id order).
func TestMergeDeltaMatchesRebuild(t *testing.T) {
	m := DiagonalJointMatrix(2, 0.8)
	base := [][2]int32{{0, 1}, {0, 2}, {1, 3}, {2, 3}}
	added := [][2]int32{{3, 0}, {1, 2}, {3, 3}, {0, 3}}

	g := buildDiamond(t, 2)
	for _, e := range added {
		if err := g.AddEdgeDelta(e[0], e[1], &m); err != nil {
			t.Fatalf("AddEdgeDelta(%v): %v", e, err)
		}
	}
	if got := g.PendingDeltaEdges(); got != len(added) {
		t.Fatalf("PendingDeltaEdges = %d, want %d", got, len(added))
	}
	g.MergeDelta()
	if got := g.PendingDeltaEdges(); got != 0 {
		t.Fatalf("PendingDeltaEdges after merge = %d, want 0", got)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate after merge: %v", err)
	}

	b := NewBuilder(2)
	for i := 0; i < 4; i++ {
		if _, err := b.AddNode(nil); err != nil {
			t.Fatalf("AddNode: %v", err)
		}
	}
	for _, e := range append(append([][2]int32{}, base...), added...) {
		if err := b.AddEdge(e[0], e[1], &m); err != nil {
			t.Fatalf("AddEdge(%v): %v", e, err)
		}
	}
	want, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}

	if g.NumEdges != want.NumEdges {
		t.Fatalf("NumEdges = %d, want %d", g.NumEdges, want.NumEdges)
	}
	if !equalInt32(g.EdgeSrc, want.EdgeSrc) || !equalInt32(g.EdgeDst, want.EdgeDst) {
		t.Errorf("edge endpoint arrays diverge from rebuild")
	}
	if !equalInt32(g.InOffsets, want.InOffsets) || !equalInt32(g.InEdges, want.InEdges) {
		t.Errorf("in-CSR diverges from rebuild:\n got %v %v\nwant %v %v", g.InOffsets, g.InEdges, want.InOffsets, want.InEdges)
	}
	if !equalInt32(g.OutOffsets, want.OutOffsets) || !equalInt32(g.OutEdges, want.OutEdges) {
		t.Errorf("out-CSR diverges from rebuild:\n got %v %v\nwant %v %v", g.OutOffsets, g.OutEdges, want.OutOffsets, want.OutEdges)
	}
	if len(g.Messages) != g.NumEdges*g.States {
		t.Fatalf("messages length %d, want %d", len(g.Messages), g.NumEdges*g.States)
	}
	for e := len(base); e < g.NumEdges; e++ {
		if g.EdgeMats[e].T == nil {
			t.Errorf("merged edge %d matrix missing transpose", e)
		}
	}
}

// TestMergeDeltaSharedMatrix covers the shared-matrix mode: delta edges
// carry no matrices and the merge must not grow EdgeMats.
func TestMergeDeltaSharedMatrix(t *testing.T) {
	b := NewBuilder(2)
	if err := b.SetShared(DiagonalJointMatrix(2, 0.9)); err != nil {
		t.Fatalf("SetShared: %v", err)
	}
	for i := 0; i < 3; i++ {
		if _, err := b.AddNode(nil); err != nil {
			t.Fatalf("AddNode: %v", err)
		}
	}
	if err := b.AddEdge(0, 1, nil); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := g.AddEdgeDelta(1, 2, nil); err != nil {
		t.Fatalf("AddEdgeDelta: %v", err)
	}
	m := DiagonalJointMatrix(2, 0.5)
	if err := g.AddEdgeDelta(2, 0, &m); err == nil {
		t.Fatal("AddEdgeDelta with matrix accepted in shared mode")
	}
	g.MergeDelta()
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if g.NumEdges != 2 || len(g.EdgeMats) != 0 {
		t.Fatalf("got %d edges, %d edge matrices; want 2 and 0", g.NumEdges, len(g.EdgeMats))
	}
}

// TestAddEdgeDeltaAutoMerge verifies the cadence: the overlay never holds
// DeltaMergeCadence pending edges.
func TestAddEdgeDeltaAutoMerge(t *testing.T) {
	b := NewBuilder(2)
	if err := b.SetShared(DiagonalJointMatrix(2, 0.9)); err != nil {
		t.Fatalf("SetShared: %v", err)
	}
	n := DeltaMergeCadence + 10
	for i := 0; i < n+1; i++ {
		if _, err := b.AddNode(nil); err != nil {
			t.Fatalf("AddNode: %v", err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	for i := 0; i < n; i++ {
		if err := g.AddEdgeDelta(int32(i), int32(i+1), nil); err != nil {
			t.Fatalf("AddEdgeDelta: %v", err)
		}
		if p := g.PendingDeltaEdges(); p >= DeltaMergeCadence {
			t.Fatalf("overlay grew to %d pending edges, cadence is %d", p, DeltaMergeCadence)
		}
	}
	g.MergeDelta()
	if g.NumEdges != n {
		t.Fatalf("NumEdges = %d, want %d", g.NumEdges, n)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

// TestDeltaGenerations pins the counter protocol: every mutation bumps
// Generation, only structural ones bump StructuralGeneration, and clones
// carry their source's counters.
func TestDeltaGenerations(t *testing.T) {
	g := buildDiamond(t, 2)
	if g.Generation() != 0 || g.StructuralGeneration() != 0 {
		t.Fatalf("fresh graph generations %d/%d, want 0/0", g.Generation(), g.StructuralGeneration())
	}
	m := DiagonalJointMatrix(2, 0.8)
	if err := g.AddEdgeDelta(3, 0, &m); err != nil {
		t.Fatalf("AddEdgeDelta: %v", err)
	}
	if g.Generation() != 1 || g.StructuralGeneration() != 1 {
		t.Fatalf("after edge add: %d/%d, want 1/1", g.Generation(), g.StructuralGeneration())
	}
	if err := g.UpdatePrior(1, []float32{0.9, 0.1}); err != nil {
		t.Fatalf("UpdatePrior: %v", err)
	}
	if err := g.SetEvidence(2, 1); err != nil {
		t.Fatalf("SetEvidence: %v", err)
	}
	if g.Generation() != 3 || g.StructuralGeneration() != 1 {
		t.Fatalf("after numeric deltas: %d/%d, want 3/1", g.Generation(), g.StructuralGeneration())
	}
	// Rejected mutations must not bump anything.
	if err := g.AddEdgeDelta(0, 99, &m); err == nil {
		t.Fatal("out-of-range AddEdgeDelta accepted")
	}
	if err := g.UpdatePrior(99, []float32{1, 0}); err == nil {
		t.Fatal("out-of-range UpdatePrior accepted")
	}
	if g.Generation() != 3 {
		t.Fatalf("rejected mutations bumped generation to %d", g.Generation())
	}

	c := g.Clone()
	if c.Generation() != 3 || c.StructuralGeneration() != 1 {
		t.Fatalf("clone generations %d/%d, want 3/1", c.Generation(), c.StructuralGeneration())
	}
	// Divergence after cloning stays isolated in both directions.
	if err := c.SetEvidence(0, 0); err != nil {
		t.Fatalf("clone SetEvidence: %v", err)
	}
	if g.Generation() != 3 || g.Observed[0] {
		t.Fatal("clone mutation leaked into source")
	}
	if err := g.RetractEvidence(2); err != nil {
		t.Fatalf("RetractEvidence: %v", err)
	}
	if !c.Observed[2] {
		t.Fatal("source retraction leaked into clone")
	}
}

// TestMergeDeltaPreservesCloneView pins the copy-on-write contract that
// the serving layer depends on: a clone taken before a merge keeps the
// pre-merge adjacency arrays while the source moves on.
func TestMergeDeltaPreservesCloneView(t *testing.T) {
	g := buildDiamond(t, 2)
	c := g.Clone()
	m := DiagonalJointMatrix(2, 0.8)
	if err := g.AddEdgeDelta(3, 0, &m); err != nil {
		t.Fatalf("AddEdgeDelta: %v", err)
	}
	g.MergeDelta()
	if c.NumEdges != 4 || len(c.InEdges) != 4 || c.InDegree(0) != 0 {
		t.Fatalf("clone saw the merge: %d edges, InDegree(0)=%d", c.NumEdges, c.InDegree(0))
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("clone Validate after source merge: %v", err)
	}
	if g.NumEdges != 5 || g.InDegree(0) != 1 {
		t.Fatalf("source missed the merge: %d edges, InDegree(0)=%d", g.NumEdges, g.InDegree(0))
	}
}

func TestUpdatePrior(t *testing.T) {
	g := buildDiamond(t, 2)
	// Node 0 is input-free: its fixpoint is its prior, so the belief must
	// follow immediately (the residual engines never enqueue such nodes).
	if err := g.UpdatePrior(0, []float32{3, 1}); err != nil {
		t.Fatalf("UpdatePrior: %v", err)
	}
	if p := g.Prior(0); p[0] != 0.75 || p[1] != 0.25 {
		t.Fatalf("prior not normalized: %v", p)
	}
	if b := g.Belief(0); b[0] != 0.75 || b[1] != 0.25 {
		t.Fatalf("input-free belief did not follow prior: %v", b)
	}
	// Node 3 has inputs: the prior moves, the belief is left for
	// re-convergence.
	before := append([]float32(nil), g.Belief(3)...)
	if err := g.UpdatePrior(3, []float32{0.9, 0.1}); err != nil {
		t.Fatalf("UpdatePrior: %v", err)
	}
	if b := g.Belief(3); b[0] != before[0] || b[1] != before[1] {
		t.Fatalf("belief of a node with inputs moved eagerly: %v", b)
	}
	// Errors: range and width.
	if err := g.UpdatePrior(-1, []float32{1, 0}); err == nil {
		t.Fatal("negative node accepted")
	}
	if err := g.UpdatePrior(0, []float32{1, 0, 0}); err == nil {
		t.Fatal("wrong-width prior accepted")
	}
}

func TestEvidenceRoundTrip(t *testing.T) {
	g := buildDiamond(t, 2)
	orig := append([]float32(nil), g.Prior(3)...)
	if err := g.SetEvidence(3, 1); err != nil {
		t.Fatalf("SetEvidence: %v", err)
	}
	if !g.Observed[3] || g.Belief(3)[1] != 1 || g.Prior(3)[1] != 1 {
		t.Fatalf("clamp not applied: observed=%v belief=%v prior=%v", g.Observed[3], g.Belief(3), g.Prior(3))
	}
	// Re-clamping keeps the original saved prior; a prior update while
	// clamped lands in the save slot, not the live (clamped) prior.
	if err := g.SetEvidence(3, 0); err != nil {
		t.Fatalf("re-clamp: %v", err)
	}
	if err := g.RetractEvidence(3); err != nil {
		t.Fatalf("RetractEvidence: %v", err)
	}
	if g.Observed[3] {
		t.Fatal("still observed after retraction")
	}
	if p := g.Prior(3); p[0] != orig[0] || p[1] != orig[1] {
		t.Fatalf("prior not restored: got %v, want %v", p, orig)
	}
	if b := g.Belief(3); b[0] != orig[0] || b[1] != orig[1] {
		t.Fatalf("belief not reset to restored prior: %v", b)
	}

	// UpdatePrior while clamped: the clamp wins now, the update wins
	// after retraction.
	if err := g.SetEvidence(1, 0); err != nil {
		t.Fatalf("SetEvidence: %v", err)
	}
	if err := g.UpdatePrior(1, []float32{0.25, 0.75}); err != nil {
		t.Fatalf("UpdatePrior while clamped: %v", err)
	}
	if p := g.Prior(1); p[0] != 1 {
		t.Fatalf("clamp lost to a prior update: %v", p)
	}
	if err := g.RetractEvidence(1); err != nil {
		t.Fatalf("RetractEvidence: %v", err)
	}
	if p := g.Prior(1); p[0] != 0.25 || p[1] != 0.75 {
		t.Fatalf("retraction did not restore the updated prior: %v", p)
	}

	// Errors: invalid state, unobserved retraction, and retraction of a
	// clamp applied outside the delta layer (no saved prior exists).
	if err := g.SetEvidence(0, 7); err == nil {
		t.Fatal("out-of-range state accepted")
	}
	if err := g.RetractEvidence(2); err == nil {
		t.Fatal("retracting an unobserved node succeeded")
	}
	if err := g.Observe(2, 0); err != nil {
		t.Fatalf("Observe: %v", err)
	}
	if err := g.RetractEvidence(2); err == nil {
		t.Fatal("retracting a non-delta clamp succeeded")
	}
}

func TestTakeDeltaSeeds(t *testing.T) {
	g := buildDiamond(t, 2) // 0→1, 0→2, 1→3, 2→3
	if s := g.TakeDeltaSeeds(); s != nil {
		t.Fatalf("seeds on a pristine graph: %v", s)
	}
	if err := g.SetEvidence(0, 1); err != nil {
		t.Fatalf("SetEvidence: %v", err)
	}
	// Frontier: node 0 plus its out-neighbours 1 and 2 — not 3.
	if s := g.TakeDeltaSeeds(); !equalInt32(s, []int32{0, 1, 2}) {
		t.Fatalf("seeds = %v, want [0 1 2]", s)
	}
	// Drained: the frontier belongs to exactly one re-convergence.
	if s := g.TakeDeltaSeeds(); s != nil {
		t.Fatalf("frontier not drained: %v", s)
	}
	// A structural delta changes its destination (the new parent can move
	// it), and the frontier must reflect the merged topology: node 0's
	// out-neighbours come from the post-merge CSR, so the pending merge
	// has to happen inside TakeDeltaSeeds.
	m := DiagonalJointMatrix(2, 0.8)
	if err := g.AddEdgeDelta(3, 0, &m); err != nil {
		t.Fatalf("AddEdgeDelta: %v", err)
	}
	if s := g.TakeDeltaSeeds(); !equalInt32(s, []int32{0, 1, 2}) {
		t.Fatalf("seeds = %v, want [0 1 2]", s)
	}
	if g.PendingDeltaEdges() != 0 || g.NumEdges != 5 {
		t.Fatalf("TakeDeltaSeeds did not merge: pending=%d edges=%d", g.PendingDeltaEdges(), g.NumEdges)
	}
	// Overlapping frontiers dedupe and sort.
	if err := g.UpdatePrior(1, []float32{0.6, 0.4}); err != nil {
		t.Fatalf("UpdatePrior: %v", err)
	}
	if err := g.UpdatePrior(2, []float32{0.6, 0.4}); err != nil {
		t.Fatalf("UpdatePrior: %v", err)
	}
	if s := g.TakeDeltaSeeds(); !equalInt32(s, []int32{1, 2, 3}) {
		t.Fatalf("seeds = %v, want [1 2 3]", s)
	}
}

// TestBuilderEdgePathParity is the differential sweep of the three edge
// construction paths — AddEdge, SetEdgeBlock over a reservation, and
// AddEdgeDelta after Build — over the malformed-input corpus: the readers'
// PR 5 parity audit, now applied to the builder. Every path must agree on
// accept vs reject for every case.
func TestBuilderEdgePathParity(t *testing.T) {
	states := 2
	good := DiagonalJointMatrix(states, 0.8)
	wide := DiagonalJointMatrix(states+1, 0.8)
	short := JointMatrix{Rows: uint32(states), Cols: uint32(states), Data: make([]float32, 1)}
	empty := JointMatrix{Rows: uint32(states), Cols: uint32(states)}

	cases := []struct {
		name   string
		src    int32
		dst    int32
		mat    *JointMatrix
		shared bool
		accept bool
	}{
		{"valid", 0, 1, &good, false, true},
		{"self-loop", 1, 1, &good, false, true}, // the mtxbp readers accept self-loops; the builder matches
		{"src out of range", -1, 1, &good, false, false},
		{"dst out of range", 0, 99, &good, false, false},
		{"nil matrix per-edge", 0, 1, nil, false, false},
		{"wrong dims", 0, 1, &wide, false, false},
		{"short data backing", 0, 1, &short, false, false},
		{"nil data backing", 0, 1, &empty, false, false},
		{"valid shared", 0, 1, nil, true, true},
		{"matrix in shared mode", 0, 1, &good, true, false},
	}

	newBuilder := func(shared bool) *Builder {
		b := NewBuilder(states)
		if shared {
			if err := b.SetShared(DiagonalJointMatrix(states, 0.9)); err != nil {
				t.Fatalf("SetShared: %v", err)
			}
		}
		for i := 0; i < 3; i++ {
			if _, err := b.AddNode(nil); err != nil {
				t.Fatalf("AddNode: %v", err)
			}
		}
		return b
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			addErr := newBuilder(tc.shared).AddEdge(tc.src, tc.dst, tc.mat)

			blk := newBuilder(tc.shared)
			start := blk.ReserveEdges(1)
			var mats []JointMatrix
			if tc.mat != nil {
				mats = []JointMatrix{*tc.mat}
			}
			blkErr := blk.SetEdgeBlock(start, []int32{tc.src}, []int32{tc.dst}, mats)

			built, err := newBuilder(tc.shared).Build()
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			deltaErr := built.AddEdgeDelta(tc.src, tc.dst, tc.mat)

			for path, got := range map[string]error{"AddEdge": addErr, "SetEdgeBlock": blkErr, "AddEdgeDelta": deltaErr} {
				if (got == nil) != tc.accept {
					t.Errorf("%s: got err %v, want accept=%v", path, got, tc.accept)
				}
			}
		})
	}
}

// TestSetSharedRejectsShortData closes the same hole on the shared path:
// a shared matrix with a short backing would otherwise reach the kernels.
func TestSetSharedRejectsShortData(t *testing.T) {
	b := NewBuilder(2)
	err := b.SetShared(JointMatrix{Rows: 2, Cols: 2, Data: make([]float32, 2)})
	if err == nil {
		t.Fatal("short shared backing accepted")
	}
	if want := fmt.Sprintf("backed by %d values", 2); err != nil && !contains(err.Error(), want) {
		t.Fatalf("error %q does not mention the backing length", err)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
