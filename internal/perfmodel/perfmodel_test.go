package perfmodel

import (
	"testing"
	"time"

	"credo/internal/bp"
	"credo/internal/gen"
)

func sampleOps(t *testing.T) bp.OpCounts {
	t.Helper()
	g, err := gen.Synthetic(500, 2000, gen.Config{Seed: 1, States: 2})
	if err != nil {
		t.Fatal(err)
	}
	res := bp.RunNode(g, bp.Options{})
	return res.Ops
}

func TestSequentialTimePositiveAndMonotone(t *testing.T) {
	p := I7_7700HQ()
	ops := sampleOps(t)
	t1 := p.SequentialTime(ops)
	if t1 <= 0 {
		t.Fatalf("sequential time = %v", t1)
	}
	double := ops
	double.MatrixOps *= 2
	double.MemLoads *= 2
	double.RandomLoads *= 2
	if t2 := p.SequentialTime(double); t2 <= t1 {
		t.Errorf("doubling work did not increase time: %v <= %v", t2, t1)
	}
}

// TestOpenMPSlowdownShape reproduces the §2.4 finding: on the i7-7700HQ
// profile, adding threads makes BP slower, and monotonically so across the
// paper's 2/4/8-thread measurements.
func TestOpenMPSlowdownShape(t *testing.T) {
	p := I7_7700HQ()
	ops := sampleOps(t)
	seq := p.SequentialTime(ops).Seconds()
	prev := seq
	for _, threads := range []int{2, 4, 8} {
		par := p.ParallelTime(ops, ParallelOptions{Threads: threads}).Seconds()
		if par <= seq {
			t.Errorf("threads=%d: parallel %.4fs not slower than sequential %.4fs", threads, par, seq)
		}
		if par < prev {
			t.Errorf("threads=%d: slowdown not monotone (%.4fs < %.4fs)", threads, par, prev)
		}
		prev = par
	}
}

func TestHyperthreadingOffReducesPenalty(t *testing.T) {
	p := I7_7700HQ()
	ops := sampleOps(t)
	ht := p.ParallelTime(ops, ParallelOptions{Threads: 4})
	noHT := p.ParallelTime(ops, ParallelOptions{Threads: 4, HyperthreadingOff: true})
	if noHT >= ht {
		t.Errorf("disabling HT did not reduce the penalty: %v >= %v", noHT, ht)
	}
}

func TestSingleThreadEqualsSequential(t *testing.T) {
	p := I7_7700HQ()
	ops := sampleOps(t)
	if p.ParallelTime(ops, ParallelOptions{Threads: 1}) != p.SequentialTime(ops) {
		t.Error("threads=1 should price as sequential")
	}
}

func TestRandomLoadsPenalized(t *testing.T) {
	p := I7_7700HQ()
	var a, b bp.OpCounts
	a.MemLoads = 1_000_000
	b.MemLoads = 1_000_000
	b.RandomLoads = 1_000_000
	if p.SequentialTime(b) <= p.SequentialTime(a) {
		t.Error("random loads not penalized over streaming loads")
	}
}

func TestContentionInterpolation(t *testing.T) {
	p := I7_7700HQ()
	c3 := p.contention(3, false)
	if c3 <= p.MemContention[2] || c3 >= p.MemContention[4] {
		t.Errorf("contention(3) = %v, want between %v and %v", c3, p.MemContention[2], p.MemContention[4])
	}
	// Beyond the calibrated range extrapolates upward.
	if c16 := p.contention(16, false); c16 <= p.MemContention[8] {
		t.Errorf("contention(16) = %v, want > %v", c16, p.MemContention[8])
	}
}

func TestXeonProfile(t *testing.T) {
	x := XeonE5_2686()
	if x.PhysicalCores != 8 {
		t.Errorf("Xeon cores = %d, want 8 (paper §4.4)", x.PhysicalCores)
	}
	// The Xeon scales better: the same work at 8 threads is less penalized
	// relative to its own sequential time than on the i7.
	ops := sampleOps(t)
	i7 := I7_7700HQ()
	ratioXeon := x.ParallelTime(ops, ParallelOptions{Threads: 8}).Seconds() / x.SequentialTime(ops).Seconds()
	ratioI7 := i7.ParallelTime(ops, ParallelOptions{Threads: 8}).Seconds() / i7.SequentialTime(ops).Seconds()
	if ratioXeon >= ratioI7 {
		t.Errorf("Xeon parallel ratio %v not better than i7 %v", ratioXeon, ratioI7)
	}
}

func TestNodeSlowerThanEdgeSequential(t *testing.T) {
	// §4.1.1: in the single-threaded environment the edge paradigm tends
	// to dominate the node paradigm, driven by the node gathers' random
	// loads.
	g, err := gen.Synthetic(2000, 8000, gen.Config{Seed: 2, States: 2})
	if err != nil {
		t.Fatal(err)
	}
	node := bp.RunNode(g.Clone(), bp.Options{})
	edge := bp.RunEdge(g.Clone(), bp.Options{})
	p := I7_7700HQ()
	tn := p.SequentialTime(node.Ops)
	te := p.SequentialTime(edge.Ops)
	if tn <= te {
		t.Errorf("C Node %v not slower than C Edge %v", tn, te)
	}
}

func TestZeroOpsZeroTime(t *testing.T) {
	p := I7_7700HQ()
	if p.SequentialTime(bp.OpCounts{}) != time.Duration(0) {
		t.Error("zero ops priced nonzero")
	}
}

// TestPoolTimeBeatsForkJoin pins the point of the persistent pool: at the
// paper's 8-thread maximum the pool's modelled time is at least 2x better
// than the fork-join port's (which reproduces the §2.4 slowdown) and beats
// the sequential baseline.
func TestPoolTimeBeatsForkJoin(t *testing.T) {
	p := I7_7700HQ()
	ops := sampleOps(t)
	ops.SyncOps = ops.Iterations * 2 * 8 // two regions per sweep, 8 workers
	seq := p.SequentialTime(ops).Seconds()
	fork := p.ParallelTime(ops, ParallelOptions{Threads: 8}).Seconds()
	pool := p.PoolTime(ops, PoolOptions{Workers: 8}).Seconds()
	if pool*2 > fork {
		t.Errorf("pool %.4fs not 2x faster than fork-join %.4fs", pool, fork)
	}
	if pool >= seq {
		t.Errorf("pool %.4fs not faster than sequential %.4fs", pool, seq)
	}
}

func TestPoolTimeSingleWorkerIsSequential(t *testing.T) {
	p := I7_7700HQ()
	ops := sampleOps(t)
	if got, want := p.PoolTime(ops, PoolOptions{Workers: 1}), p.SequentialTime(ops); got != want {
		t.Errorf("one-worker pool time %v, want sequential %v", got, want)
	}
	if got, want := p.PoolTime(ops, PoolOptions{}), p.SequentialTime(ops); got != want {
		t.Errorf("zero-worker pool time %v, want sequential %v", got, want)
	}
}

func TestPoolTimePricesBarriers(t *testing.T) {
	p := I7_7700HQ()
	ops := sampleOps(t)
	base := p.PoolTime(ops, PoolOptions{Workers: 4})
	ops.SyncOps += 1_000_000
	if got := p.PoolTime(ops, PoolOptions{Workers: 4}); got <= base {
		t.Errorf("adding barrier crossings did not increase time: %v <= %v", got, base)
	}
}
