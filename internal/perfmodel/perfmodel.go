// Package perfmodel prices the abstract operation counts reported by the
// BP engines (bp.OpCounts) under a CPU cost profile, so that the figure
// harness can place the C and OpenMP implementations on the same simulated
// time axis as the gpusim device times.
//
// The model separates cache-friendly streaming loads from random-order
// gathers — the distinction at the heart of the paper's per-node versus
// per-edge trade-off (§3.3): the node paradigm's parent gathers miss the
// cache, while the edge paradigm streams its stored messages.
package perfmodel

import (
	"time"

	"credo/internal/bp"
)

// CPUProfile describes a host CPU for the cost model. All costs are in
// seconds per operation.
type CPUProfile struct {
	Name string

	// OpCost is one simple arithmetic op (multiply-accumulate) on one
	// core, amortized over superscalar issue.
	OpCost float64

	// SpecialOpCost is one log/exp evaluation.
	SpecialOpCost float64

	// LoadCost and StoreCost are per-float32 costs for streaming,
	// cache-resident accesses.
	LoadCost  float64
	StoreCost float64

	// RandomLoadPenalty is the cost of one random-order gather
	// transaction (one cache line) that misses the cache hierarchy.
	// Engines count RandomLoads in cache lines, not floats.
	RandomLoadPenalty float64

	// AtomicCost is one CPU atomic CAS update.
	AtomicCost float64

	// QueueOpCost is one work-queue push.
	QueueOpCost float64

	// PhysicalCores and LogicalCores bound parallel scaling; the paper's
	// i7-7700HQ has 4 physical and 4 hyperthreaded logical cores.
	PhysicalCores int
	LogicalCores  int

	// RegionForkCost is the per-thread cost of entering one parallel
	// region (thread wake-up), and RegionJoinCost the barrier at its end.
	RegionForkCost float64
	RegionJoinCost float64

	// SyncCost is one barrier crossing of an already-running worker (a
	// channel or futex round trip) — the per-sweep cost a persistent pool
	// pays instead of RegionForkCost.
	SyncCost float64

	// MemContention maps thread count to the slowdown factor of the
	// memory-bound portion of the work when that many threads share the
	// memory system (hyperthreading pressure included). Missing entries
	// interpolate between neighbours.
	MemContention map[int]float64

	// MemContentionNoHT is the contention map with hyperthreading
	// disabled (the paper's §2.4 mitigation experiment).
	MemContentionNoHT map[int]float64
}

// I7_7700HQ returns the profile of the paper's evaluation CPU (§4): an
// Intel Core i7-7700HQ, 4 physical / 4 logical cores, 32 GB of RAM.
// Contention factors are calibrated to the paper's measured OpenMP
// slowdowns (1.17x at 2 threads, 1.65x at 4, 4.03x at 8; 1.1x and 1.2x
// with hyperthreading off).
func I7_7700HQ() CPUProfile {
	return CPUProfile{
		Name:              "Intel Core i7-7700HQ",
		OpCost:            0.35e-9,
		SpecialOpCost:     4e-9,
		LoadCost:          0.30e-9,
		StoreCost:         0.35e-9,
		RandomLoadPenalty: 65e-9,
		AtomicCost:        8e-9,
		QueueOpCost:       2e-9,
		PhysicalCores:     4,
		LogicalCores:      8,
		RegionForkCost:    6e-6,
		RegionJoinCost:    3e-6,
		SyncCost:          0.2e-6,
		MemContention: map[int]float64{
			1: 1.00, 2: 1.15, 4: 1.60, 8: 3.9,
		},
		MemContentionNoHT: map[int]float64{
			1: 1.00, 2: 1.08, 4: 1.17,
		},
	}
}

// XeonE5_2686 returns the profile of the p3.2xlarge host CPU of the
// portability study (§4.4): an Intel Xeon E5-2686 v4 with 8 cores.
func XeonE5_2686() CPUProfile {
	p := I7_7700HQ()
	p.Name = "Intel Xeon E5-2686 v4"
	p.OpCost = 0.40e-9 // lower clock than the i7
	p.PhysicalCores = 8
	p.LogicalCores = 16
	p.MemContention = map[int]float64{1: 1.00, 2: 1.12, 4: 1.40, 8: 2.2, 16: 4.5}
	return p
}

// split divides the priced cost of ops into its compute-bound and
// memory-bound components (seconds on one core).
func (p CPUProfile) split(ops bp.OpCounts) (compute, memory float64) {
	compute = float64(ops.MatrixOps)*p.OpCost +
		float64(ops.LogOps)*p.SpecialOpCost +
		float64(ops.AtomicOps)*p.AtomicCost +
		float64(ops.QueuePushes)*p.QueueOpCost
	memory = float64(ops.MemLoads)*p.LoadCost +
		float64(ops.MemStores)*p.StoreCost +
		float64(ops.RandomLoads)*p.RandomLoadPenalty
	return compute, memory
}

// SequentialTime prices ops as a single-threaded run — the paper's
// "control yet optimized single threaded implementations".
func (p CPUProfile) SequentialTime(ops bp.OpCounts) time.Duration {
	c, m := p.split(ops)
	return seconds(c + m)
}

// ParallelOptions shapes the OpenMP pricing.
type ParallelOptions struct {
	// Threads is the team size.
	Threads int
	// RegionsPerIteration is the number of fork-join parallel regions
	// each BP iteration enters (collect, update, reduce ≈ 2-3).
	RegionsPerIteration int
	// HyperthreadingOff selects the no-HT contention calibration.
	HyperthreadingOff bool
}

// ParallelTime prices ops as an OpenMP run with the given team. BP's loops
// are load-latency-bound streams — the arithmetic hides behind belief and
// message loads — so threading does not shorten the critical path; it adds
// the measured memory-system contention (stalls plus hyperthreading
// pressure) and every parallel region pays its fork and join overheads.
// This reproduces the paper's §2.4 result: parallelizing the
// sub-millisecond BP loops made 131 of 132 benchmarks slower.
func (p CPUProfile) ParallelTime(ops bp.OpCounts, opt ParallelOptions) time.Duration {
	if opt.Threads <= 1 {
		return p.SequentialTime(ops)
	}
	if opt.RegionsPerIteration <= 0 {
		opt.RegionsPerIteration = 2
	}
	c, m := p.split(ops)
	cont := p.contention(opt.Threads, opt.HyperthreadingOff)
	regions := float64(ops.Iterations) * float64(opt.RegionsPerIteration)
	overhead := regions * (float64(opt.Threads)*p.RegionForkCost + p.RegionJoinCost)
	return seconds((c+m)*cont + overhead)
}

// PoolOptions shapes the persistent worker-pool pricing.
type PoolOptions struct {
	// Workers is the size of the long-lived team.
	Workers int
	// HyperthreadingOff selects the no-HT contention calibration.
	HyperthreadingOff bool
}

// PoolTime prices ops as a persistent worker-pool run (the poolbp engine).
// Unlike ParallelTime — which models the paper's fork-join OpenMP port,
// where per-region thread spin-up and the serial convergence reduction
// leave the critical path unshortened — the pool's workers stay resident:
// the sharded queues divide the sweep across the physical cores, the team
// is forked once per run, and each sweep pays only the barrier crossings
// the engine counts in SyncOps. Memory-bound work still pays the measured
// contention of the shared memory system, which is what bounds the
// speedup on the paper's 4-core laptop.
func (p CPUProfile) PoolTime(ops bp.OpCounts, opt PoolOptions) time.Duration {
	if opt.Workers <= 1 {
		return p.SequentialTime(ops)
	}
	cores := opt.Workers
	if cores > p.PhysicalCores {
		cores = p.PhysicalCores
	}
	c, m := p.split(ops)
	threads := opt.Workers
	if threads > p.LogicalCores {
		threads = p.LogicalCores
	}
	cont := p.contention(threads, opt.HyperthreadingOff)
	spawn := float64(opt.Workers)*p.RegionForkCost + p.RegionJoinCost
	syncs := float64(ops.SyncOps) * p.SyncCost
	return seconds((c+m*cont)/float64(cores) + spawn + syncs)
}

// RelaxOptions shapes the relaxed-scheduling pricing.
type RelaxOptions struct {
	// Workers is the size of the long-lived team.
	Workers int
	// HyperthreadingOff selects the no-HT contention calibration.
	HyperthreadingOff bool
}

// RelaxTime prices ops as a relaxed-priority residual run (the relaxbp
// engine). The compute and memory work divides across the cores like the
// pool's — the workers are the same persistent team, forked once — but
// there are no per-sweep barriers; what the relaxed scheduler pays
// instead is queue traffic: every push is a locked heap operation, every
// stale drop and wasted pop is a queue round trip whose message work (for
// the wasted pops) bought nothing, and every failed TryLock burns an
// atomic. Those counters are exactly the relaxation-vs-wasted-work trade
// the scheduling papers describe; pricing them keeps the relax engine's
// modelled time honest against the update count it saves.
func (p CPUProfile) RelaxTime(ops bp.OpCounts, opt RelaxOptions) time.Duration {
	workers := opt.Workers
	if workers < 1 {
		workers = 1
	}
	cores := workers
	if cores > p.PhysicalCores {
		cores = p.PhysicalCores
	}
	c, m := p.split(ops)
	threads := workers
	if threads > p.LogicalCores {
		threads = p.LogicalCores
	}
	cont := 1.0
	if workers > 1 {
		cont = p.contention(threads, opt.HyperthreadingOff)
	}
	// Queue traffic beyond the pushes already priced in split(): popping
	// costs a heap operation per entry that left the queue (applied,
	// stale, or wasted), and contention events each burn an atomic.
	pops := float64(ops.NodesProcessed + ops.StaleDrops + ops.WastedUpdates)
	queue := pops*p.QueueOpCost + float64(ops.QueueContention)*p.AtomicCost
	spawn := float64(workers)*p.RegionForkCost + p.RegionJoinCost
	syncs := float64(ops.SyncOps) * p.SyncCost
	return seconds((c+queue+m*cont)/float64(cores) + spawn + syncs)
}

// contention interpolates the contention factor for a thread count.
func (p CPUProfile) contention(threads int, noHT bool) float64 {
	m := p.MemContention
	if noHT {
		m = p.MemContentionNoHT
	}
	if f, ok := m[threads]; ok {
		return f
	}
	// Linear interpolation between the nearest calibrated points.
	lo, hi := 1, threads
	loV, hiV := 1.0, 0.0
	for t, f := range m {
		if t <= threads && t >= lo {
			lo, loV = t, f
		}
		if t >= threads && (hiV == 0 || t < hi) {
			hi, hiV = t, f
		}
	}
	if hiV == 0 { // beyond the calibrated range: extrapolate linearly
		return loV * float64(threads) / float64(lo)
	}
	if hi == lo {
		return loV
	}
	frac := float64(threads-lo) / float64(hi-lo)
	return loV + frac*(hiV-loV)
}

func seconds(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}
