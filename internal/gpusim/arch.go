// Package gpusim is the CUDA-device substrate standing in for the paper's
// GPUs (see DESIGN.md §2, substitutions). Kernels are ordinary Go functions
// executed over a grid of thread blocks with real goroutine parallelism, so
// results are functionally identical to a native run, while a deterministic
// cost model charges simulated time for the effects the paper measures:
// host↔device transfers, kernel launches, per-core throughput, global
// memory bandwidth, atomic operations, thread-block synchronization and the
// constant-memory cache.
//
// Two architecture profiles encode the paper's evaluation hardware: the
// Pascal GTX 1070 of the main benchmarks (§4) and the Volta V100 of the
// portability study (§4.4).
package gpusim

// ArchProfile describes a simulated CUDA device. All costs are in seconds
// or derived from the stated rates; the absolute values are calibrated so
// that the relative behaviours the paper reports (transfer-dominated small
// graphs, atomics-vs-loads trade-off, Volta's cheaper atomics and faster
// memory) reproduce.
type ArchProfile struct {
	// Name identifies the architecture in reports.
	Name string

	// SMXCount and CoresPerSMX give the execution width; the paper's
	// GTX 1070 has 15 SMX units of 128 cores (1920 total).
	SMXCount    int
	CoresPerSMX int

	// ClockGHz is the per-core op rate in 10^9 simple ops per second.
	ClockGHz float64

	// SpecialOpCycles is the cost multiplier of transcendental ops
	// (log/exp run on the special function units).
	SpecialOpCycles float64

	// GlobalBandwidthGBps is the VRAM bandwidth in 10^9 bytes/second.
	GlobalBandwidthGBps float64

	// RandomAccessPenalty multiplies the cost of uncoalesced
	// (random-order) global loads such as the node paradigm's parent
	// gathers.
	RandomAccessPenalty float64

	// PCIeBandwidthGBps and PCIeLatency model host↔device copies.
	PCIeBandwidthGBps float64
	PCIeLatency       float64

	// InitOverhead is the fixed context-creation plus cudaMalloc cost
	// paid once per run — the overhead that accounts for 99.8% of the
	// smallest benchmark's CUDA execution time (§4.1.1).
	InitOverhead float64

	// KernelLaunch is the fixed cost of one kernel launch.
	KernelLaunch float64

	// AtomicCost is the effective serialized cost of one global atomic
	// operation after the hardware's combining, in seconds.
	AtomicCost float64

	// SyncCost is the cost of one __syncthreads barrier per block.
	SyncCost float64

	// VRAMBytes bounds device allocations; graphs whose footprint
	// exceeds it cannot run (the paper excludes TW and OR on 8 GB).
	VRAMBytes int64

	// ConstantCacheBytes is the size of the constant-memory cache; data
	// placed there (the shared joint matrix) is read at register speed
	// after first touch.
	ConstantCacheBytes int64

	// WarpSize is the SIMT width (32 on both architectures).
	WarpSize int

	// IndependentThreadScheduling marks Volta's scheduler, which both
	// relaxes __syncthreads placement and lowers its cost.
	IndependentThreadScheduling bool
}

// Cores returns the total CUDA core count.
func (a ArchProfile) Cores() int { return a.SMXCount * a.CoresPerSMX }

// opThroughput returns simple ops per second across the whole device.
func (a ArchProfile) opThroughput() float64 {
	return float64(a.Cores()) * a.ClockGHz * 1e9
}

// Pascal returns the profile of the paper's primary device, an nVidia
// GTX 1070: 15 SMX, 1920 CUDA cores, 8 GB VRAM (§4).
func Pascal() ArchProfile {
	return ArchProfile{
		Name:                "Pascal GTX 1070",
		SMXCount:            15,
		CoresPerSMX:         128,
		ClockGHz:            1.68,
		SpecialOpCycles:     4,
		GlobalBandwidthGBps: 256,
		RandomAccessPenalty: 8,
		PCIeBandwidthGBps:   12,
		PCIeLatency:         10e-6,
		InitOverhead:        0.080,
		KernelLaunch:        8e-6,
		AtomicCost:          3e-9,
		SyncCost:            20e-9,
		VRAMBytes:           8 << 30,
		ConstantCacheBytes:  64 << 10,
		WarpSize:            32,
	}
}

// Volta returns the profile of the p3.2xlarge's V100 SXM2 16GB: 5120 CUDA
// cores, higher memory bandwidth, independent thread scheduling and
// markedly cheaper atomics (§4.4).
func Volta() ArchProfile {
	return ArchProfile{
		Name:                        "Volta V100",
		SMXCount:                    80,
		CoresPerSMX:                 64,
		ClockGHz:                    1.53,
		SpecialOpCycles:             4,
		GlobalBandwidthGBps:         384, // 1.5x Pascal, as the paper cites
		RandomAccessPenalty:         5,
		PCIeBandwidthGBps:           12,
		PCIeLatency:                 10e-6,
		InitOverhead:                0.080,
		KernelLaunch:                6e-6,
		AtomicCost:                  1e-9,
		SyncCost:                    8e-9,
		VRAMBytes:                   16 << 30,
		ConstantCacheBytes:          64 << 10,
		WarpSize:                    32,
		IndependentThreadScheduling: true,
	}
}
