package gpusim

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Device is one simulated CUDA device. Methods mirror the CUDA host API:
// allocate, copy, launch, synchronize. Simulated time accumulates on every
// call and is read back with SimTime; the breakdown is read with Stats.
//
// A Device is not safe for concurrent host calls (like a CUDA stream, it
// serializes); kernels themselves execute their blocks concurrently.
type Device struct {
	Profile ArchProfile

	allocated int64
	simTime   float64
	stats     Stats
	kernels   map[string]*KernelStats
}

// Stats breaks simulated time down by cause and counts device activity.
type Stats struct {
	InitTime     float64
	TransferTime float64
	LaunchTime   float64
	ComputeTime  float64
	MemoryTime   float64
	AtomicTime   float64
	SyncTime     float64

	KernelsLaunched int64
	BytesToDevice   int64
	BytesToHost     int64
	Atomics         int64
}

// Total returns the total simulated seconds across all causes.
func (s Stats) Total() float64 {
	return s.InitTime + s.TransferTime + s.LaunchTime + s.ComputeTime + s.MemoryTime + s.AtomicTime + s.SyncTime
}

// NewDevice initializes a device, charging the context-creation and
// allocation overhead of InitOverhead once.
func NewDevice(p ArchProfile) *Device {
	d := &Device{Profile: p, kernels: make(map[string]*KernelStats)}
	d.simTime += p.InitOverhead
	d.stats.InitTime += p.InitOverhead
	return d
}

// KernelStats is the per-kernel profile a device accumulates — the
// nvprof-style breakdown behind observations like §4.1.1's "GPU memory
// management overhead alone accounts for 99.8% of the CUDA execution
// time".
type KernelStats struct {
	Name     string
	Launches int64
	Time     float64 // seconds of simulated kernel time (launch included)
	Ops      int64
	Bytes    int64
	Atomics  int64
}

// KernelProfile returns the per-kernel breakdown sorted by descending
// simulated time.
func (d *Device) KernelProfile() []KernelStats {
	out := make([]KernelStats, 0, len(d.kernels))
	for _, k := range d.kernels {
		out = append(out, *k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Time > out[j].Time })
	return out
}

// SimTime returns the total simulated elapsed time.
func (d *Device) SimTime() time.Duration {
	return time.Duration(d.simTime * float64(time.Second))
}

// Stats returns the accumulated activity breakdown.
func (d *Device) Stats() Stats { return d.stats }

// Allocated returns the bytes currently allocated on the device.
func (d *Device) Allocated() int64 { return d.allocated }

// Malloc reserves device memory, failing when the graph exceeds VRAM
// exactly as the paper's 8 GB card rejects the TW and OR benchmarks.
func (d *Device) Malloc(bytes int64) error {
	if bytes < 0 {
		return fmt.Errorf("gpusim: negative allocation %d", bytes)
	}
	if d.allocated+bytes > d.Profile.VRAMBytes {
		return fmt.Errorf("gpusim: allocation of %d bytes exceeds %s VRAM (%d of %d in use)",
			bytes, d.Profile.Name, d.allocated, d.Profile.VRAMBytes)
	}
	d.allocated += bytes
	return nil
}

// Free releases device memory.
func (d *Device) Free(bytes int64) {
	d.allocated -= bytes
	if d.allocated < 0 {
		d.allocated = 0
	}
}

// CopyToDevice charges a host→device PCIe transfer.
func (d *Device) CopyToDevice(bytes int64) {
	t := d.Profile.PCIeLatency + float64(bytes)/(d.Profile.PCIeBandwidthGBps*1e9)
	d.simTime += t
	d.stats.TransferTime += t
	d.stats.BytesToDevice += bytes
}

// CopyToHost charges a device→host PCIe transfer.
func (d *Device) CopyToHost(bytes int64) {
	t := d.Profile.PCIeLatency + float64(bytes)/(d.Profile.PCIeBandwidthGBps*1e9)
	d.simTime += t
	d.stats.TransferTime += t
	d.stats.BytesToHost += bytes
}

// LaunchConfig shapes a kernel launch. BlockDim is threads per block; the
// paper uses 1024 for all benchmarks.
type LaunchConfig struct {
	Name     string
	Grid     int
	BlockDim int
	// ThreadStateBytes is the per-thread live state (local arrays and
	// accumulators). When it exceeds the register budget, occupancy
	// collapses and the kernel loses latency hiding — the register
	// pressure that erodes the node paradigm's advantage at 32 beliefs.
	ThreadStateBytes int
}

// registerBudgetBytes is the per-thread register file share below which a
// kernel runs at full occupancy.
const registerBudgetBytes = 128

// charges accumulates the abstract work one worker observed.
type charges struct {
	ops        int64 // simple arithmetic ops
	specialOps int64 // log/exp
	coalesced  int64 // bytes moved to/from global memory, coalesced
	random     int64 // bytes moved with random access patterns
	constant   int64 // bytes read through the constant cache
	atomics    int64
	syncs      int64
	_          [8]int64 // pad to avoid false sharing between workers
}

// Block is the execution context handed to a kernel for one thread block.
// Charge methods record the block's abstract work; Atomic methods perform
// real atomic updates on host-visible memory while charging their cost.
type Block struct {
	// Index is the block index within the grid.
	Index int
	// Dim is the number of threads in the block.
	Dim int

	ch *charges
}

// ChargeOps records n simple arithmetic operations.
func (b *Block) ChargeOps(n int64) { b.ch.ops += n }

// ChargeSpecialOps records n transcendental (log/exp) operations.
func (b *Block) ChargeSpecialOps(n int64) { b.ch.specialOps += n }

// ChargeGlobal records n bytes of coalesced global-memory traffic.
func (b *Block) ChargeGlobal(n int64) { b.ch.coalesced += n }

// ChargeRandomGlobal records n bytes of uncoalesced global-memory traffic
// (the node paradigm's random-order parent loads).
func (b *Block) ChargeRandomGlobal(n int64) { b.ch.random += n }

// ChargeConstant records n bytes read through the constant cache (the
// shared joint matrix of §3.6).
func (b *Block) ChargeConstant(n int64) { b.ch.constant += n }

// SyncThreads records one __syncthreads barrier for this block.
func (b *Block) SyncThreads() { b.ch.syncs++ }

// AtomicAddFloat32 performs a real CAS add of delta into the float stored
// as bits[i] and charges one atomic operation.
func (b *Block) AtomicAddFloat32(bits []uint32, i int, delta float32) {
	b.ch.atomics++
	for {
		old := atomic.LoadUint32(&bits[i])
		f := math.Float32frombits(old) + delta
		if atomic.CompareAndSwapUint32(&bits[i], old, math.Float32bits(f)) {
			return
		}
	}
}

// AtomicAddInt32 atomically adds delta to counter[i], charging one atomic.
func (b *Block) AtomicAddInt32(counter []int32, i int, delta int32) int32 {
	b.ch.atomics++
	return atomic.AddInt32(&counter[i], delta)
}

// Launch executes kernel once per block of the grid, running blocks
// concurrently across host CPUs, and charges the simulated kernel time.
func (d *Device) Launch(cfg LaunchConfig, kernel func(b *Block)) {
	if cfg.Grid <= 0 {
		return
	}
	if cfg.BlockDim <= 0 {
		cfg.BlockDim = 1024
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > cfg.Grid {
		workers = cfg.Grid
	}
	chs := make([]charges, workers)
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			blk := Block{Dim: cfg.BlockDim, ch: &chs[worker]}
			for {
				i := int(cursor.Add(1)) - 1
				if i >= cfg.Grid {
					return
				}
				blk.Index = i
				kernel(&blk)
			}
		}(w)
	}
	wg.Wait()

	var total charges
	for i := range chs {
		total.ops += chs[i].ops
		total.specialOps += chs[i].specialOps
		total.coalesced += chs[i].coalesced
		total.random += chs[i].random
		total.constant += chs[i].constant
		total.atomics += chs[i].atomics
		total.syncs += chs[i].syncs
	}
	d.chargeKernel(cfg, total)
}

// chargeKernel converts a kernel's accumulated work into simulated time.
func (d *Device) chargeKernel(cfg LaunchConfig, c charges) {
	p := d.Profile
	d.stats.KernelsLaunched++
	d.simTime += p.KernelLaunch
	d.stats.LaunchTime += p.KernelLaunch
	before := d.simTime - p.KernelLaunch

	// Register pressure: per-thread state beyond the register budget
	// spills and halves occupancy proportionally, costing latency hiding
	// on both the compute and memory paths.
	pressure := 1.0
	if cfg.ThreadStateBytes > registerBudgetBytes {
		pressure = float64(cfg.ThreadStateBytes) / registerBudgetBytes
	}

	// Compute: simple ops at full throughput, special ops through the SFUs.
	compute := (float64(c.ops) + float64(c.specialOps)*p.SpecialOpCycles) / p.opThroughput()
	// A grid smaller than the SMX count cannot fill the device.
	if occ := float64(cfg.Grid) / float64(p.SMXCount); occ < 1 {
		compute /= occ
	}
	compute *= pressure
	d.simTime += compute
	d.stats.ComputeTime += compute

	mem := (float64(c.coalesced)/(p.GlobalBandwidthGBps*1e9) +
		float64(c.random)*p.RandomAccessPenalty/(p.GlobalBandwidthGBps*1e9)) * pressure
	// Constant-cache reads are register-speed once resident; charge only
	// the first-touch fill of up to the cache size.
	if c.constant > 0 {
		fill := c.constant
		if fill > p.ConstantCacheBytes {
			fill = p.ConstantCacheBytes
		}
		mem += float64(fill) / (p.GlobalBandwidthGBps * 1e9)
	}
	d.simTime += mem
	d.stats.MemoryTime += mem

	at := float64(c.atomics) * p.AtomicCost
	d.simTime += at
	d.stats.AtomicTime += at
	d.stats.Atomics += c.atomics

	sy := float64(c.syncs) * p.SyncCost
	if p.IndependentThreadScheduling {
		sy *= 0.5
	}
	d.simTime += sy
	d.stats.SyncTime += sy

	name := cfg.Name
	if name == "" {
		name = "(anonymous)"
	}
	ks := d.kernels[name]
	if ks == nil {
		ks = &KernelStats{Name: name}
		d.kernels[name] = ks
	}
	ks.Launches++
	ks.Time += d.simTime - before
	ks.Ops += c.ops + c.specialOps
	ks.Bytes += c.coalesced + c.random + c.constant
	ks.Atomics += c.atomics
}

// FusedStage is one phase of a fused kernel: its own grid shape and body.
type FusedStage struct {
	Grid             int
	BlockDim         int
	ThreadStateBytes int
	Kernel           func(b *Block)
}

// LaunchFused executes several dependent stages as one kernel launch — the
// kernel-fusion optimization of Gunrock (paper §5.2): a single launch
// overhead is paid for the whole pipeline, with one grid-wide barrier
// charged between consecutive stages (cooperative-groups style). Work is
// otherwise charged exactly as separate launches would be.
func (d *Device) LaunchFused(name string, stages []FusedStage) {
	if len(stages) == 0 {
		return
	}
	// Pay one launch up front, then refund the per-stage launches by
	// charging each stage as a kernel with zero launch cost.
	saved := d.Profile.KernelLaunch
	d.simTime += saved
	d.stats.LaunchTime += saved
	d.Profile.KernelLaunch = 0
	defer func() { d.Profile.KernelLaunch = saved }()
	for i, st := range stages {
		d.Launch(LaunchConfig{
			Name:             name,
			Grid:             st.Grid,
			BlockDim:         st.BlockDim,
			ThreadStateBytes: st.ThreadStateBytes,
		}, st.Kernel)
		d.stats.KernelsLaunched-- // the stages share one logical launch
		if i > 0 {
			// Grid-wide barrier between stages.
			sy := float64(st.Grid) * d.Profile.SyncCost
			d.simTime += sy
			d.stats.SyncTime += sy
		}
	}
	d.stats.KernelsLaunched++
}
