package gpusim

import (
	"math"
	"sync/atomic"
	"testing"
)

func TestProfiles(t *testing.T) {
	p := Pascal()
	if p.Cores() != 1920 {
		t.Errorf("Pascal cores = %d, want 1920 (paper §4)", p.Cores())
	}
	if p.SMXCount != 15 {
		t.Errorf("Pascal SMX = %d, want 15", p.SMXCount)
	}
	if p.VRAMBytes != 8<<30 {
		t.Errorf("Pascal VRAM = %d, want 8 GiB", p.VRAMBytes)
	}
	v := Volta()
	if v.Cores() != 5120 {
		t.Errorf("Volta cores = %d, want 5120 (paper §4.4)", v.Cores())
	}
	if !v.IndependentThreadScheduling {
		t.Error("Volta must use independent thread scheduling")
	}
	if v.GlobalBandwidthGBps/p.GlobalBandwidthGBps != 1.5 {
		t.Errorf("Volta bandwidth ratio = %v, want 1.5 (paper §4.4)", v.GlobalBandwidthGBps/p.GlobalBandwidthGBps)
	}
	if v.AtomicCost >= p.AtomicCost {
		t.Error("Volta atomics must be cheaper than Pascal's")
	}
}

func TestMallocVRAMLimit(t *testing.T) {
	d := NewDevice(Pascal())
	if err := d.Malloc(4 << 30); err != nil {
		t.Fatalf("Malloc 4 GiB: %v", err)
	}
	if err := d.Malloc(5 << 30); err == nil {
		t.Fatal("Malloc beyond VRAM accepted")
	}
	d.Free(4 << 30)
	if d.Allocated() != 0 {
		t.Errorf("Allocated = %d after free", d.Allocated())
	}
	if err := d.Malloc(-1); err == nil {
		t.Error("negative Malloc accepted")
	}
}

func TestInitOverheadCharged(t *testing.T) {
	d := NewDevice(Pascal())
	if d.SimTime() <= 0 {
		t.Error("device init charged no time")
	}
	if got := d.Stats().InitTime; got != Pascal().InitOverhead {
		t.Errorf("init time = %v, want %v", got, Pascal().InitOverhead)
	}
}

func TestTransfersCharged(t *testing.T) {
	d := NewDevice(Pascal())
	before := d.SimTime()
	d.CopyToDevice(120 << 20) // 120 MiB at 12 GB/s ≈ 10.5 ms
	dt := (d.SimTime() - before).Seconds()
	if dt < 0.008 || dt > 0.02 {
		t.Errorf("transfer time = %vs, want ≈0.0105s", dt)
	}
	if d.Stats().BytesToDevice != 120<<20 {
		t.Errorf("bytes to device = %d", d.Stats().BytesToDevice)
	}
	d.CopyToHost(4)
	if d.Stats().BytesToHost != 4 {
		t.Errorf("bytes to host = %d", d.Stats().BytesToHost)
	}
}

func TestLaunchExecutesAllBlocks(t *testing.T) {
	d := NewDevice(Pascal())
	const grid = 1000
	var hits atomic.Int64
	seen := make([]atomic.Bool, grid)
	d.Launch(LaunchConfig{Name: "touch", Grid: grid, BlockDim: 128}, func(b *Block) {
		hits.Add(1)
		if seen[b.Index].Swap(true) {
			t.Errorf("block %d ran twice", b.Index)
		}
		if b.Dim != 128 {
			t.Errorf("block dim = %d", b.Dim)
		}
		b.ChargeOps(10)
	})
	if hits.Load() != grid {
		t.Fatalf("ran %d blocks, want %d", hits.Load(), grid)
	}
	if d.Stats().KernelsLaunched != 1 {
		t.Errorf("kernels launched = %d", d.Stats().KernelsLaunched)
	}
}

func TestLaunchZeroGridIsNoop(t *testing.T) {
	d := NewDevice(Pascal())
	d.Launch(LaunchConfig{Grid: 0}, func(b *Block) { t.Error("kernel ran for empty grid") })
	if d.Stats().KernelsLaunched != 0 {
		t.Error("empty launch was charged")
	}
}

func TestAtomicAddCorrectUnderContention(t *testing.T) {
	d := NewDevice(Pascal())
	bits := make([]uint32, 4)
	d.Launch(LaunchConfig{Grid: 64, BlockDim: 32}, func(b *Block) {
		for i := 0; i < 100; i++ {
			b.AtomicAddFloat32(bits, i%4, 0.5)
		}
	})
	for i := 0; i < 4; i++ {
		got := math.Float32frombits(bits[i])
		if got != 64*100/4*0.5 {
			t.Errorf("slot %d = %v, want %v", i, got, 64*100/4*0.5)
		}
	}
	if d.Stats().Atomics != 6400 {
		t.Errorf("atomics counted = %d, want 6400", d.Stats().Atomics)
	}
	if d.Stats().AtomicTime <= 0 {
		t.Error("atomics charged no time")
	}
}

func TestAtomicAddInt32(t *testing.T) {
	d := NewDevice(Pascal())
	counter := make([]int32, 1)
	d.Launch(LaunchConfig{Grid: 10, BlockDim: 32}, func(b *Block) {
		b.AtomicAddInt32(counter, 0, 2)
	})
	if counter[0] != 20 {
		t.Errorf("counter = %d, want 20", counter[0])
	}
}

func TestCostModelMonotonicity(t *testing.T) {
	run := func(ops int64, random bool) float64 {
		d := NewDevice(Pascal())
		base := d.SimTime()
		d.Launch(LaunchConfig{Grid: 100, BlockDim: 1024}, func(b *Block) {
			b.ChargeOps(ops)
			if random {
				b.ChargeRandomGlobal(1 << 16)
			} else {
				b.ChargeGlobal(1 << 16)
			}
		})
		return (d.SimTime() - base).Seconds()
	}
	if run(1e6, false) >= run(1e8, false) {
		t.Error("more ops did not cost more time")
	}
	if run(1e6, true) <= run(1e6, false) {
		t.Error("random global access not penalized vs coalesced")
	}
}

func TestVoltaFasterThanPascal(t *testing.T) {
	load := func(p ArchProfile) float64 {
		d := NewDevice(p)
		base := d.SimTime()
		d.Launch(LaunchConfig{Grid: 1000, BlockDim: 1024}, func(b *Block) {
			b.ChargeOps(1e6)
			b.ChargeGlobal(1 << 14)
			for i := 0; i < 100; i++ {
				b.ch.atomics++ // direct charge, no real memory needed
			}
			b.SyncThreads()
		})
		return (d.SimTime() - base).Seconds()
	}
	if load(Volta()) >= load(Pascal()) {
		t.Error("Volta not faster than Pascal on a mixed kernel")
	}
}

func TestSmallGridUnderOccupancyPenalty(t *testing.T) {
	run := func(grid int) float64 {
		d := NewDevice(Pascal())
		base := d.SimTime()
		totalOps := int64(1e8)
		d.Launch(LaunchConfig{Grid: grid, BlockDim: 1024}, func(b *Block) {
			b.ChargeOps(totalOps / int64(grid))
		})
		return (d.SimTime() - base).Seconds()
	}
	// Same total work on 1 block vs 150 blocks: the single block cannot
	// fill 15 SMX units and must be slower.
	if run(1) <= run(150) {
		t.Error("single-block kernel not penalized for low occupancy")
	}
}

func TestConstantCacheCheaperThanGlobal(t *testing.T) {
	run := func(constant bool) float64 {
		d := NewDevice(Pascal())
		base := d.SimTime()
		d.Launch(LaunchConfig{Grid: 1000, BlockDim: 1024}, func(b *Block) {
			if constant {
				b.ChargeConstant(1 << 20)
			} else {
				b.ChargeGlobal(1 << 20)
			}
		})
		return (d.SimTime() - base).Seconds()
	}
	if run(true) >= run(false) {
		t.Error("constant cache reads not cheaper than global reads")
	}
}

func TestStatsTotalMatchesSimTime(t *testing.T) {
	d := NewDevice(Volta())
	d.CopyToDevice(1 << 20)
	d.Launch(LaunchConfig{Grid: 16, BlockDim: 256}, func(b *Block) {
		b.ChargeOps(1000)
		b.ChargeSpecialOps(100)
		b.ChargeGlobal(4096)
		b.SyncThreads()
	})
	d.CopyToHost(4)
	if diff := math.Abs(d.Stats().Total() - d.SimTime().Seconds()); diff > 1e-9 {
		t.Errorf("stats total %v != sim time %v", d.Stats().Total(), d.SimTime().Seconds())
	}
}

func TestKernelProfile(t *testing.T) {
	d := NewDevice(Pascal())
	for i := 0; i < 3; i++ {
		d.Launch(LaunchConfig{Name: "hot", Grid: 64, BlockDim: 128}, func(b *Block) {
			b.ChargeOps(1e6)
			b.ChargeGlobal(1 << 12)
		})
	}
	d.Launch(LaunchConfig{Name: "cold", Grid: 4, BlockDim: 128}, func(b *Block) {
		b.ChargeOps(10)
	})
	d.Launch(LaunchConfig{Grid: 1, BlockDim: 1}, func(b *Block) { b.ChargeOps(1) })
	prof := d.KernelProfile()
	if len(prof) != 3 {
		t.Fatalf("profile has %d kernels, want 3", len(prof))
	}
	if prof[0].Name != "hot" || prof[0].Launches != 3 {
		t.Errorf("hottest kernel = %+v", prof[0])
	}
	for i := 1; i < len(prof); i++ {
		if prof[i].Time > prof[i-1].Time {
			t.Error("profile not sorted by time")
		}
	}
	found := false
	for _, k := range prof {
		if k.Name == "(anonymous)" {
			found = true
		}
	}
	if !found {
		t.Error("anonymous kernel not tracked")
	}
}

func TestLaunchFused(t *testing.T) {
	work := func(d *Device, fused bool) float64 {
		base := d.SimTime().Seconds()
		stageA := func(b *Block) { b.ChargeOps(1000) }
		stageB := func(b *Block) { b.ChargeGlobal(4096) }
		if fused {
			d.LaunchFused("pipeline", []FusedStage{
				{Grid: 32, BlockDim: 256, Kernel: stageA},
				{Grid: 16, BlockDim: 256, Kernel: stageB},
			})
		} else {
			d.Launch(LaunchConfig{Name: "a", Grid: 32, BlockDim: 256}, stageA)
			d.Launch(LaunchConfig{Name: "b", Grid: 16, BlockDim: 256}, stageB)
		}
		return d.SimTime().Seconds() - base
	}
	dSep := NewDevice(Pascal())
	sep := work(dSep, false)
	dFus := NewDevice(Pascal())
	fus := work(dFus, true)
	if fus >= sep {
		t.Errorf("fusion not cheaper: %v >= %v", fus, sep)
	}
	if dFus.Stats().KernelsLaunched != 1 {
		t.Errorf("fused launch counted as %d kernels, want 1", dFus.Stats().KernelsLaunched)
	}
	if dFus.Profile.KernelLaunch != Pascal().KernelLaunch {
		t.Error("launch cost not restored after fusion")
	}
	d := NewDevice(Pascal())
	d.LaunchFused("empty", nil)
	if d.Stats().KernelsLaunched != 0 {
		t.Error("empty fusion charged")
	}
}
