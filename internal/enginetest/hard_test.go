package enginetest

import (
	"testing"

	"credo/internal/bp"
	"credo/internal/graph"
	"credo/internal/kernel"
)

// TestHardCorpusPinnedDivergence is the divergence regression table: for
// every named hard case, the sequential node sweep must fail to converge
// under exactly the variants pinned non-converging and converge under
// exactly the variants pinned converging, landing within HardTol L∞ of
// the variant-matched log-space oracle. A flip on either side fails
// loudly: a diverging case that starts converging means the graph went
// stale as an adversary (and the corpus lost its discriminating power);
// a converging variant that stops means a robustness regression.
func TestHardCorpusPinnedDivergence(t *testing.T) {
	node := func(g *graph.Graph, o bp.Options) bp.Result { return bp.RunNode(g, o) }
	for _, c := range HardCorpus() {
		for _, v := range HardVariants() {
			want, pinned := c.Expect[v]
			if !pinned {
				t.Fatalf("%s: no pinned expectation for variant %s", c.Name, v)
			}
			r, err := RunHard(c, v, node)
			if err != nil {
				t.Fatal(err)
			}
			if r.Converged != want {
				if want {
					t.Errorf("%s/%s: pinned converging but diverged after %d iterations — robustness regression",
						c.Name, v, r.Iters)
				} else {
					t.Errorf("%s/%s: pinned non-converging but converged in %d iterations — case went stale as an adversary",
						c.Name, v, r.Iters)
				}
				continue
			}
			// The matched oracle is the same sweep schedule, so its
			// convergence must agree with the pin too.
			if r.OracleConverged != want {
				t.Errorf("%s/%s: engine converged=%v but matched log-space oracle converged=%v",
					c.Name, v, r.Converged, r.OracleConverged)
			}
			if want && r.Linf > HardTol {
				t.Errorf("%s/%s: converged %g L∞ from the matched oracle, want <= %g",
					c.Name, v, r.Linf, HardTol)
			}
		}
	}
}

// TestHardCorpusAcceptance pins the headline claim directly: at least
// one named config where vanilla diverges while BOTH damped and circular
// converge within HardTol of the oracle. (The pinned table above covers
// it case by case; this test states the invariant in one place so it
// survives corpus edits.)
func TestHardCorpusAcceptance(t *testing.T) {
	node := func(g *graph.Graph, o bp.Options) bp.Result { return bp.RunNode(g, o) }
	found := 0
	for _, c := range HardCorpus() {
		if c.Expect[kernel.VariantVanilla] || !c.Expect[kernel.VariantDamped] || !c.Expect[kernel.VariantCircular] {
			continue
		}
		ok := true
		for _, v := range HardVariants() {
			r, err := RunHard(c, v, node)
			if err != nil {
				t.Fatal(err)
			}
			switch v {
			case kernel.VariantVanilla:
				ok = ok && !r.Converged
			default:
				ok = ok && r.Converged && r.Linf <= HardTol
			}
		}
		if ok {
			found++
		}
	}
	if found == 0 {
		t.Fatal("no hard case has vanilla diverging with damped AND circular both converging within tolerance")
	}
	t.Logf("%d acceptance cases (vanilla diverges; damped and circular both converge within %g)", found, HardTol)
}

// TestHardCorpusAllEngines drives every fixpoint engine over the full
// hard corpus under every variant against cached variant-matched
// oracles, recording converged-fraction and L∞-vs-oracle per engine.
//
// What is pinned per engine class (from seeded measurement):
//
//   - Synchronous sweep engines (node, edge, ompbp, poolbp) share the
//     Jacobi trajectory, so they must all diverge under vanilla on every
//     case and all converge under damping, within tolerance of the
//     matched oracle. (Parallel engines combine in a different order, so
//     they get the easy-corpus DefaultTol rather than HardTol.)
//   - Circular BP's per-edge correction state is schedule-sensitive:
//     the sequential node sweep and the pool's sweep-aligned barriers
//     read coherent reverse messages, while the edge engine and the
//     OpenMP port interleave message stores differently and are not
//     pinned (the sequential pin lives in TestHardCorpusPinnedDivergence).
//   - Asynchronous engines (residual, relaxbp) choose their own update
//     order and generally land on different fixpoints of the hard
//     graphs, so only structural validity plus damped convergence is
//     asserted.
//
// Every run must produce valid normalized beliefs regardless of
// convergence — divergence may oscillate but must never corrupt state.
func TestHardCorpusAllEngines(t *testing.T) {
	if testing.Short() {
		t.Skip("full engine × variant × corpus sweep is slow")
	}
	type key struct {
		c string
		v kernel.Variant
	}
	oracles := make(map[key]HardOracle)
	for _, c := range HardCorpus() {
		for _, v := range HardVariants() {
			o, err := ComputeHardOracle(c, v)
			if err != nil {
				t.Fatal(err)
			}
			oracles[key{c.Name, v}] = o
		}
	}
	for _, e := range Engines(4) {
		if !e.Fixpoint {
			continue
		}
		stats := make(map[kernel.Variant]*RobustStats)
		for _, v := range HardVariants() {
			stats[v] = &RobustStats{Variant: v}
		}
		for _, c := range HardCorpus() {
			for _, v := range HardVariants() {
				r, err := RunHardWithOracle(c, v, e.RunOpts, oracles[key{c.Name, v}])
				if err != nil {
					t.Fatal(err) // includes belief-validity violations
				}
				s := stats[v]
				s.Cases++
				if r.Converged {
					s.Converged++
					s.TotalIters += r.Iters
					if r.OracleConverged && r.Linf > s.MaxLinf {
						s.MaxLinf = r.Linf
					}
				}
				if !e.Sweep {
					if v == kernel.VariantDamped && !r.Converged {
						t.Errorf("%s/%s/%s: asynchronous engine diverged under damping", e.Name, c.Name, v)
					}
					continue
				}
				switch v {
				case kernel.VariantVanilla:
					if r.Converged {
						t.Errorf("%s/%s: sweep engine converged under vanilla — case went stale as an adversary", e.Name, c.Name)
					}
				case kernel.VariantDamped:
					if !r.Converged {
						t.Errorf("%s/%s: sweep engine diverged under damping", e.Name, c.Name)
					} else if r.Linf > DefaultTol {
						t.Errorf("%s/%s/damped: %g L∞ from matched oracle, want <= %g", e.Name, c.Name, r.Linf, DefaultTol)
					}
				}
			}
		}
		for _, v := range HardVariants() {
			s := stats[v]
			t.Logf("%-9s %-8s converged %d/%d  maxLinf=%.3g  iters(conv)=%d",
				e.Name, v, s.Converged, s.Cases, s.MaxLinf, s.TotalIters)
		}
	}
}

// TestRobustSweepNodeEngine pins the aggregate converged-fraction
// profile the credobench `robust` experiment reports: the node engine
// converges on none of the corpus under vanilla, all of it under
// damping, and exactly the echo-loop cases under circular BP.
func TestRobustSweepNodeEngine(t *testing.T) {
	stats, err := RobustSweep(func(g *graph.Graph, o bp.Options) bp.Result { return bp.RunNode(g, o) })
	if err != nil {
		t.Fatal(err)
	}
	wantConverged := map[kernel.Variant]int{
		kernel.VariantVanilla:  0,
		kernel.VariantDamped:   len(HardCorpus()),
		kernel.VariantCircular: 3, // the hub-skew pair and the bipartite tree
	}
	for _, s := range stats {
		if s.Cases != len(HardCorpus()) {
			t.Errorf("%s: ran %d cases, want %d", s.Variant, s.Cases, len(HardCorpus()))
		}
		if s.Converged != wantConverged[s.Variant] {
			t.Errorf("%s: converged %d/%d, want %d", s.Variant, s.Converged, s.Cases, wantConverged[s.Variant])
		}
		if s.Converged > 0 && s.MaxLinf > HardTol {
			t.Errorf("%s: max L∞ vs matched oracle %g, want <= %g", s.Variant, s.MaxLinf, HardTol)
		}
		t.Logf("%-8s converged=%.2f maxLinf=%.3g", s.Variant, s.ConvergedFraction(), s.MaxLinf)
	}
}
