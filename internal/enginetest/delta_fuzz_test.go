package enginetest

import (
	"testing"

	"credo/internal/bp"
	"credo/internal/gen"
	"credo/internal/graph"
)

// FuzzDeltaApply drives the dynamic layer with arbitrary mutation
// sequences decoded from the fuzz input: edge adds, prior rewrites
// (including near-degenerate distributions), evidence arrivals and
// retractions, interleaved with mid-stream frontier-seeded
// re-convergences. The differential oracle is a checkpoint chain: at
// every re-convergence point the mutation prefix is rebuilt from
// scratch through Builder/Observe only, warmed with the previous
// checkpoint's oracle fixpoint, and fully re-run with every node
// seeded. A defect in the overlay merge, the frontier computation or
// the retraction bookkeeping diverges the beliefs at some checkpoint.
// An end-only cold oracle would be wrong here — the fuzzer freely
// composes feedback structures (self loops, duplicated edges) whose
// fixpoint is path-dependent: an intermediate re-convergence may
// legitimately commit to a basin a later mutation cannot undo, so the
// oracle must follow the same checkpoint path. The cold-oracle
// acceptance pin lives in the curated corpus test, whose cases are
// chosen unique-fixpoint. Structural invariants ride along: no panic,
// Validate stays clean, and the delta run converges wherever a cold
// run does.
func FuzzDeltaApply(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 3, 9, 1, 5, 200, 30, 2, 7, 0, 3, 7})
	f.Add([]byte{2, 1, 1, 3, 1, 2, 9, 4, 0, 2, 2, 11, 250, 5})
	f.Add([]byte{1, 0, 255, 0, 1, 1, 0, 255, 2, 2, 0, 3, 2, 1, 2, 5, 9})

	build := func() (*graph.Graph, error) {
		return gen.Synthetic(24, 60, gen.Config{Seed: 17, States: 2, Shared: true, Keep: 0.6})
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 128 {
			data = data[:128]
		}
		g, err := build()
		if err != nil {
			t.Fatalf("build: %v", err)
		}
		o := bp.Options{}
		if res := bp.RunResidual(g, o); !res.Converged {
			t.Fatalf("cold run did not converge")
		}
		base := append([]float32(nil), g.Beliefs...)
		n := int32(g.NumNodes)

		next := func(i *int) (byte, bool) {
			if *i >= len(data) {
				return 0, false
			}
			b := data[*i]
			*i++
			return b, true
		}

		var applied []gen.Mutation
		competent := true
		reconverge := func() {
			seeds := g.TakeDeltaSeeds()
			if len(seeds) == 0 || !competent {
				return
			}
			res := bp.RunResidualFrom(g, o, seeds)
			if !res.Converged {
				probe := g.Clone()
				probe.ResetBeliefs()
				if cres := bp.RunResidual(probe, o); cres.Converged {
					t.Fatalf("delta run from %d seeds did not converge but a cold run does", len(seeds))
				}
				competent = false
				return
			}
			if err := g.Validate(); err != nil {
				t.Fatalf("mutated graph invalid after %d mutations: %v", len(applied), err)
			}
			// Oracle checkpoint: rebuild the prefix, warm it from the previous
			// checkpoint's oracle fixpoint, full rerun, compare. Clamped nodes
			// keep their evidence indicators; input-free nodes keep their
			// build-time beliefs (= final prior, which is what the delta layer
			// leaves on them — the engine never touches either kind).
			oracle, err := RebuildMutated(build, applied)
			if err != nil {
				t.Fatalf("rebuild after %d mutations: %v", len(applied), err)
			}
			for v := int32(0); v < int32(oracle.NumNodes); v++ {
				if !oracle.Observed[v] && oracle.InDegree(v) > 0 {
					copy(oracle.Belief(v), base[int(v)*g.States:(int(v)+1)*g.States])
				}
			}
			if ores := bp.RunResidual(oracle, o); !ores.Converged {
				competent = false // oscillates from this start either way
				return
			}
			if d := MaxBeliefDiff(oracle, g); d > DefaultTol {
				t.Fatalf("delta fixpoint diverges from the rebuilt warm-rerun oracle by %g after %d mutations", d, len(applied))
			}
			base = append(base[:0], oracle.Beliefs...)
		}

		i := 0
		for len(applied) < 32 {
			op, ok := next(&i)
			if !ok {
				break
			}
			var m gen.Mutation
			switch op % 5 {
			case 0:
				src, ok1 := next(&i)
				dst, ok2 := next(&i)
				if !ok1 || !ok2 {
					i = len(data)
					continue
				}
				m = gen.Mutation{Kind: gen.MutAddEdge, Src: int32(src) % n, Dst: int32(dst) % n}
			case 1:
				v, ok1 := next(&i)
				w, ok2 := next(&i)
				if !ok1 || !ok2 {
					i = len(data)
					continue
				}
				// Bytes map to (1,256)/257 so priors are valid but may be
				// nearly degenerate — the regime where a stranded or
				// mis-seeded node is most visible.
				p0 := (float32(w) + 1) / 257
				m = gen.Mutation{Kind: gen.MutPrior, Node: int32(v) % n, Prior: []float32{p0, 1 - p0}}
			case 2:
				v, ok1 := next(&i)
				s, ok2 := next(&i)
				if !ok1 || !ok2 {
					i = len(data)
					continue
				}
				m = gen.Mutation{Kind: gen.MutEvidence, Node: int32(v) % n, State: int(s) % g.States}
			case 3:
				v, ok := next(&i)
				if !ok {
					continue
				}
				m = gen.Mutation{Kind: gen.MutRetract, Node: int32(v) % n}
			case 4:
				// Mid-stream re-convergence: the frontier drains here, so a
				// bug that only shows when mutations land on an
				// already-re-converged warm state is reachable.
				reconverge()
				continue
			}
			if err := m.Apply(g); err != nil {
				// Semantically invalid at this point in the stream (e.g. a
				// retraction of an unclamped node): rejected without effect.
				continue
			}
			applied = append(applied, m)
		}
		reconverge()

		if err := g.Validate(); err != nil {
			t.Fatalf("mutated graph invalid after %d mutations: %v", len(applied), err)
		}
	})
}
