package enginetest

import (
	"testing"

	"credo/internal/bp"
	"credo/internal/gen"
	"credo/internal/graph"
	"credo/internal/kernel"
)

// mutsForCase regenerates the exact mutation stream VerifyDelta replays
// for a case and seed: gen.Mutations is deterministic given the built
// graph's shape and the seed.
func mutsForCase(t *testing.T, c Case, seed int64, n int) []gen.Mutation {
	t.Helper()
	g, err := c.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return gen.Mutations(g, n, gen.Config{Seed: seed})
}

// deltaCorpus is the corpus the delta differential runs on: the two real
// MRFs (one with a build-time clamp, pinning that pre-stream clamps are
// never retracted), the lattice grid, and two synthetics — shared-matrix
// and per-edge — generated at weaker coupling than their cross-engine
// corpus cousins. The delta setting compares a warm-started trajectory
// (resuming from the pre-mutation fixpoint) against a cold one, which is
// the maximal update-order freedom loopy BP allows: on the dense
// strong-coupling synthetics the mutated graphs are demonstrably
// bistable — a full warm re-run, not just the frontier-seeded one, lands
// a basin away from the cold run — so, exactly as the package comment
// prescribes for cross-engine comparison, the corpus here sticks to
// graphs whose fixpoint stays unique under both histories.
func deltaCorpus() []Case {
	var cs []Case
	for _, c := range Corpus() {
		switch c.Name {
		case "sprinkler-mrf", "sprinkler-mrf-observed", "grid-16x16-s2":
			cs = append(cs, c)
		}
	}
	return append(cs,
		genCase("delta-synthetic-200x600-s2", DefaultTol, func() (*graph.Graph, error) {
			return gen.Synthetic(200, 600, gen.Config{Seed: 33, States: 2, Shared: true, Keep: 0.6})
		}),
		genCase("delta-synthetic-300x900-s3", DefaultTol, func() (*graph.Graph, error) {
			return gen.Synthetic(300, 900, gen.Config{Seed: 7, States: 3, Keep: 0.4})
		}),
	)
}

// deltaVariants pairs each convergence variant with options resolved the
// way the solver stack resolves them.
func deltaVariants() []bp.Options {
	return []bp.Options{
		{},
		{Variant: kernel.VariantDamped},
		{Variant: kernel.VariantCircular},
	}
}

// TestDeltaMatchesRebuiltColdOracle is the acceptance pin of the dynamic
// layer: for every delta-capable engine × convergence variant × corpus
// case, a seeded mutation stream applied through the delta APIs and
// re-converged from only the seed frontier must land on the same
// fixpoint as a cold run on the independently rebuilt mutated graph.
func TestDeltaMatchesRebuiltColdOracle(t *testing.T) {
	for _, c := range deltaCorpus() {
		for _, eng := range DeltaEngines(4) {
			for _, o := range deltaVariants() {
				o := o.ResolveVariant()
				name := c.Name + "/" + eng.Name + "/" + o.Variant.String()
				t.Run(name, func(t *testing.T) {
					for _, err := range VerifyDelta(c, eng, o, 1234, 24, 4, nil) {
						t.Error(err)
					}
				})
			}
		}
	}
}

// TestDeltaSpendsFewerUpdatesThanCold is the economy half of the
// acceptance criterion, at test scale: across a batched mutation stream,
// the delta re-convergences must spend strictly fewer belief updates in
// total than the regime they replace — re-running the engine cold (reset
// beliefs, schedule everything) after every batch. The full churn-sweep
// measurement lives in credobench -exp delta.
func TestDeltaSpendsFewerUpdatesThanCold(t *testing.T) {
	c := deltaCorpus()[3] // delta-synthetic-200x600-s2
	const seed, nMut, batches = 99, 20, 4
	for _, eng := range DeltaEngines(4) {
		t.Run(eng.Name, func(t *testing.T) {
			g, err := c.Build()
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			if res := eng.Run(g, bp.Options{}, nil); !res.Converged {
				t.Fatalf("initial cold run did not converge")
			}
			muts := gen.Mutations(g, nMut, gen.Config{Seed: seed})
			per := (len(muts) + batches - 1) / batches
			var deltaUpdates, coldUpdates int64
			for start := 0; start < len(muts); start += per {
				end := start + per
				if end > len(muts) {
					end = len(muts)
				}
				for _, m := range muts[start:end] {
					if err := m.Apply(g); err != nil {
						t.Fatalf("apply %s: %v", m.Kind, err)
					}
				}
				seeds := g.TakeDeltaSeeds()
				if len(seeds) == 0 {
					continue
				}
				// What a full re-run would pay for this batch: a cold run on
				// the same mutated graph, from reset beliefs.
				cold := g.Clone()
				cold.ResetBeliefs()
				coldUpdates += eng.Run(cold, bp.Options{}, nil).Ops.NodesProcessed
				res := eng.Run(g, bp.Options{}, seeds)
				deltaUpdates += res.Ops.NodesProcessed
				if !res.Converged {
					t.Fatalf("delta re-convergence did not converge")
				}
			}
			if deltaUpdates == 0 {
				t.Fatal("delta path recorded no updates — the mutation stream was a no-op")
			}
			if deltaUpdates >= coldUpdates {
				t.Errorf("delta spent %d updates, cold re-runs spend %d — no economy", deltaUpdates, coldUpdates)
			}
		})
	}
}
