package enginetest

import (
	"fmt"

	"credo/internal/bp"
	"credo/internal/gen"
	"credo/internal/graph"
	"credo/internal/kernel"
)

// The adversarial hard-graph corpus: seeded graphs on which vanilla
// synchronous BP demonstrably fails to converge, pinned together with
// which robustness variant rescues each one. The corpus is the empirical
// ground truth behind three consumers:
//
//   - the divergence regression tests (hard_test.go), which fail loudly
//     if a pinned-diverging case starts converging under vanilla or a
//     pinned-converging variant stops;
//   - the variant selector (features.RecommendVariant), whose decision
//     rule was calibrated on exactly these outcomes;
//   - the credobench `robust` experiment, which reports converged
//     fraction and wall time per variant over the same cases.
//
// The failure modes are deliberately complementary — no single variant
// fixes everything:
//
//   - hub-skew attractive graphs (echo through a hub clique): damping and
//     circular BP both rescue them, circular in far fewer sweeps;
//   - frustrated grids (mixed attractive/repulsive couplings): only
//     damping helps — there is no coherent echo for the circular
//     correction to cancel;
//   - strongly-coupled attractive bipartite trees (two-coloring makes
//     synchronous sweeps oscillate between colorings): circular BP
//     converges almost immediately; damping needs a stronger factor than
//     the 0.5 default;
//   - repulsive dense random graphs: only damping helps.

// HardTol is the L∞ belief tolerance against the variant-matched
// log-space oracle for converged hard-corpus runs. Measured agreement is
// ~1e-6; the pin is the acceptance bound, two orders looser.
const HardTol = 1e-4

// HardVariants lists the variants every hard case records expectations
// for, in reporting order.
func HardVariants() []kernel.Variant {
	return []kernel.Variant{kernel.VariantVanilla, kernel.VariantDamped, kernel.VariantCircular}
}

// HardCase is one adversarial corpus entry.
type HardCase struct {
	Name  string
	Build func() (*graph.Graph, error)
	// Damping is the damping factor the damped variant of this case
	// runs with (most cases use kernel.DefaultDamping; the bipartite
	// tree needs more inertia).
	Damping float32
	// Alpha is the circular-BP correction strength for this case.
	Alpha float32
	// Expect records, per variant, whether the synchronous node sweep
	// converges. Pinned from seeded measurement; a flip on either side
	// is a regression (lost robustness, or a case gone stale as an
	// adversary).
	Expect map[kernel.Variant]bool
}

// Options returns the solver options for one variant of the case, with
// the case's calibrated damping factor and correction strength applied.
func (c HardCase) Options(v kernel.Variant) bp.Options {
	o := bp.Options{Variant: v}
	switch v {
	case kernel.VariantDamped:
		o.Damping = c.Damping
	case kernel.VariantCircular:
		o.Kernel.Alpha = c.Alpha
	}
	return o.ResolveVariant()
}

// HardCorpus returns the named adversarial cases. Every graph is seeded
// and deterministic; names encode topology, size and coupling so a
// failure message identifies the regime at a glance.
func HardCorpus() []HardCase {
	return []HardCase{
		{
			// The acceptance-criterion case: vanilla diverges, BOTH
			// rescue variants converge.
			Name:    "hubskew-6x300-k95",
			Damping: kernel.DefaultDamping,
			Alpha:   kernel.DefaultAlpha,
			Build: func() (*graph.Graph, error) {
				return gen.HubSkew(6, 300, gen.Config{Seed: 13, States: 2, Keep: 0.95})
			},
			Expect: map[kernel.Variant]bool{
				kernel.VariantVanilla:  false,
				kernel.VariantDamped:   true,
				kernel.VariantCircular: true,
			},
		},
		{
			Name:    "hubskew-8x400-k90-s3",
			Damping: kernel.DefaultDamping,
			Alpha:   kernel.DefaultAlpha,
			Build: func() (*graph.Graph, error) {
				return gen.HubSkew(8, 400, gen.Config{Seed: 14, States: 3, Keep: 0.9})
			},
			Expect: map[kernel.Variant]bool{
				kernel.VariantVanilla:  false,
				kernel.VariantDamped:   true,
				kernel.VariantCircular: true,
			},
		},
		{
			Name:    "frustgrid-12x12-k95",
			Damping: kernel.DefaultDamping,
			Alpha:   kernel.DefaultAlpha,
			Build: func() (*graph.Graph, error) {
				return gen.FrustratedGrid(12, 12, 0.5, gen.Config{Seed: 11, States: 2, Keep: 0.95})
			},
			Expect: map[kernel.Variant]bool{
				kernel.VariantVanilla:  false,
				kernel.VariantDamped:   true,
				kernel.VariantCircular: false,
			},
		},
		{
			Name:    "frustgrid-10x10-k99",
			Damping: kernel.DefaultDamping,
			Alpha:   kernel.DefaultAlpha,
			Build: func() (*graph.Graph, error) {
				return gen.FrustratedGrid(10, 10, 0.5, gen.Config{Seed: 12, States: 2, Keep: 0.99})
			},
			Expect: map[kernel.Variant]bool{
				kernel.VariantVanilla:  false,
				kernel.VariantDamped:   true,
				kernel.VariantCircular: false,
			},
		},
		{
			// Bipartite oscillation: the 0.5 default still flips between
			// the two colorings; 0.7 crosses into the contractive regime.
			// Circular BP cancels the echo outright and converges in a
			// handful of sweeps.
			Name:    "tree-255-k97",
			Damping: 0.7,
			Alpha:   kernel.DefaultAlpha,
			Build: func() (*graph.Graph, error) {
				return gen.Tree(255, 2, gen.Config{Seed: 15, States: 2, Keep: 0.97})
			},
			Expect: map[kernel.Variant]bool{
				kernel.VariantVanilla:  false,
				kernel.VariantDamped:   true,
				kernel.VariantCircular: true,
			},
		},
		{
			Name:    "denseER-48x500-k05",
			Damping: kernel.DefaultDamping,
			Alpha:   kernel.DefaultAlpha,
			Build: func() (*graph.Graph, error) {
				return gen.DenseER(48, 500, gen.Config{Seed: 16, States: 2, Keep: 0.05})
			},
			Expect: map[kernel.Variant]bool{
				kernel.VariantVanilla:  false,
				kernel.VariantDamped:   true,
				kernel.VariantCircular: false,
			},
		},
		{
			Name:    "denseER-80x900-k10-s3",
			Damping: kernel.DefaultDamping,
			Alpha:   kernel.DefaultAlpha,
			Build: func() (*graph.Graph, error) {
				return gen.DenseER(80, 900, gen.Config{Seed: 17, States: 3, Keep: 0.1})
			},
			Expect: map[kernel.Variant]bool{
				kernel.VariantVanilla:  false,
				kernel.VariantDamped:   true,
				kernel.VariantCircular: false,
			},
		},
	}
}

// MatchedOracle runs the log-space sequential node sweep under the SAME
// variant configuration as the engine under test. On hard graphs the
// vanilla oracle diverges too, so comparing a damped engine against it
// would measure the variant, not the engine; the matched oracle isolates
// the engine's numerics.
func MatchedOracle(g *graph.Graph, o bp.Options) bp.Result {
	o.Kernel.Mode = kernel.LogSpace
	return bp.RunNode(g, o)
}

// MaxBeliefLinf returns the largest per-element belief difference
// between two runs of the same graph (the acceptance metric of the hard
// corpus; MaxBeliefDiff is the per-node L1 used by the easy corpus).
func MaxBeliefLinf(a, b *graph.Graph) float32 {
	var worst float32
	for i := range a.Beliefs {
		d := a.Beliefs[i] - b.Beliefs[i]
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}

// HardRun is the outcome of one engine on one hard case under one
// variant.
type HardRun struct {
	Case      string
	Variant   kernel.Variant
	Converged bool
	Iters     int
	// Linf is the L∞ belief distance to the variant-matched log-space
	// oracle. Meaningful when both the run and the oracle converged;
	// diverging trajectories amplify float noise chaotically.
	Linf float32
	// OracleConverged reports whether the matched oracle converged.
	OracleConverged bool
}

// HardOracle is a variant-matched oracle run, cacheable so harnesses
// driving many engines over the same case pay the (slow, log-space,
// possibly non-converging) oracle once per case × variant.
type HardOracle struct {
	G   *graph.Graph
	Res bp.Result
}

// ComputeHardOracle builds the case graph and runs the variant-matched
// oracle on it.
func ComputeHardOracle(c HardCase, v kernel.Variant) (HardOracle, error) {
	g, err := c.Build()
	if err != nil {
		return HardOracle{}, fmt.Errorf("%s: build: %w", c.Name, err)
	}
	return HardOracle{G: g, Res: MatchedOracle(g, c.Options(v))}, nil
}

// RunHardWithOracle drives one engine over one hard case under one
// variant, comparing against a precomputed matched oracle.
func RunHardWithOracle(c HardCase, v kernel.Variant, run func(g *graph.Graph, o bp.Options) bp.Result, oracle HardOracle) (HardRun, error) {
	g, err := c.Build()
	if err != nil {
		return HardRun{}, fmt.Errorf("%s: build: %w", c.Name, err)
	}
	res := run(g, c.Options(v))
	if err := g.Validate(); err != nil {
		return HardRun{}, fmt.Errorf("%s/%s: invalid beliefs: %w", c.Name, v, err)
	}
	return HardRun{
		Case:            c.Name,
		Variant:         v,
		Converged:       res.Converged,
		Iters:           res.Iterations,
		Linf:            MaxBeliefLinf(g, oracle.G),
		OracleConverged: oracle.Res.Converged,
	}, nil
}

// RunHard drives one engine over one hard case under one variant and
// compares it to the variant-matched oracle.
func RunHard(c HardCase, v kernel.Variant, run func(g *graph.Graph, o bp.Options) bp.Result) (HardRun, error) {
	oracle, err := ComputeHardOracle(c, v)
	if err != nil {
		return HardRun{}, err
	}
	return RunHardWithOracle(c, v, run, oracle)
}

// RobustStats aggregates one variant's behavior over the whole hard
// corpus — the summary the credobench `robust` experiment and the CI
// corpus report print.
type RobustStats struct {
	Variant   kernel.Variant
	Cases     int
	Converged int
	// MaxLinf is the worst L∞ distance to the matched oracle across
	// cases where both the engine and the oracle converged.
	MaxLinf float32
	// TotalIters sums iterations over converged cases (diverging runs
	// always burn MaxIterations and would drown the signal).
	TotalIters int
}

// ConvergedFraction returns the fraction of corpus cases that converged.
func (s RobustStats) ConvergedFraction() float64 {
	if s.Cases == 0 {
		return 0
	}
	return float64(s.Converged) / float64(s.Cases)
}

// RobustSweep runs one engine over the full hard corpus under every
// variant and aggregates per-variant stats.
func RobustSweep(run func(g *graph.Graph, o bp.Options) bp.Result) ([]RobustStats, error) {
	var out []RobustStats
	for _, v := range HardVariants() {
		s := RobustStats{Variant: v}
		for _, c := range HardCorpus() {
			r, err := RunHard(c, v, run)
			if err != nil {
				return nil, err
			}
			s.Cases++
			if r.Converged {
				s.Converged++
				s.TotalIters += r.Iters
				if r.OracleConverged && r.Linf > s.MaxLinf {
					s.MaxLinf = r.Linf
				}
			}
		}
		out = append(out, s)
	}
	return out, nil
}
