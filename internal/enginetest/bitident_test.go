package enginetest

import (
	"hash/fnv"
	"math"
	"testing"

	"credo/internal/bp"
	"credo/internal/gen"
	"credo/internal/graph"
	"credo/internal/kernel"
	"credo/internal/poolbp"
)

// beliefHash folds the exact bit patterns of the final beliefs into an
// FNV-64a digest so a golden can pin a full run to bit identity.
func beliefHash(g *graph.Graph) uint64 {
	h := fnv.New64a()
	var buf [4]byte
	for _, b := range g.Beliefs {
		bits := math.Float32bits(b)
		buf[0] = byte(bits)
		buf[1] = byte(bits >> 8)
		buf[2] = byte(bits >> 16)
		buf[3] = byte(bits >> 24)
		h.Write(buf[:])
	}
	return h.Sum64()
}

// preVariantGoldens are FNV-64a digests of Float32bits of the final
// beliefs, captured on the commit BEFORE the variant layer (damping +
// Circular BP) entered internal/kernel. Damping=0 / vanilla must keep
// every engine bit-identical to these values: the variant branches are
// required to be completely invisible on the fast path.
var preVariantGoldens = map[string]uint64{
	"synthetic-120x480-s3/node/specialized":       0x8620c6b3d6bef2da,
	"synthetic-120x480-s3/edge/specialized":       0x8764185f66caaa31,
	"synthetic-120x480-s3/residual/specialized":   0xfe1fcd98b174a6a7,
	"synthetic-120x480-s3/maxproduct/specialized": 0x08bbfede0d364928,
	"synthetic-120x480-s3/pool4/specialized":      0x582b913274335c6c,
	"synthetic-120x480-s3/node/generic":           0x8620c6b3d6bef2da,
	"synthetic-120x480-s3/edge/generic":           0x8764185f66caaa31,
	"synthetic-120x480-s3/residual/generic":       0xfe1fcd98b174a6a7,
	"synthetic-120x480-s3/maxproduct/generic":     0x08bbfede0d364928,
	"synthetic-120x480-s3/pool4/generic":          0x582b913274335c6c,
	"synthetic-120x480-s3/node/logspace":          0x8f69afc53238087d,
	"synthetic-120x480-s3/edge/logspace":          0x8764185f66caaa31,
	"synthetic-120x480-s3/residual/logspace":      0xd657b4df3f5b6684,
	"synthetic-120x480-s3/maxproduct/logspace":    0x8a5d038ebd7994cb,
	"synthetic-120x480-s3/pool4/logspace":         0x8e709d7d57b049ac,
	"grid-12x12-s2/node/specialized":              0x5614045111398034,
	"grid-12x12-s2/edge/specialized":              0x8e13e45edf1b75b2,
	"grid-12x12-s2/residual/specialized":          0x6ef009e52594b862,
	"grid-12x12-s2/maxproduct/specialized":        0xe2bbebde64100384,
	"grid-12x12-s2/pool4/specialized":             0xb55d7d8140039ba5,
	"grid-12x12-s2/node/generic":                  0x5614045111398034,
	"grid-12x12-s2/edge/generic":                  0x8e13e45edf1b75b2,
	"grid-12x12-s2/residual/generic":              0x6ef009e52594b862,
	"grid-12x12-s2/maxproduct/generic":            0xe2bbebde64100384,
	"grid-12x12-s2/pool4/generic":                 0xb55d7d8140039ba5,
	"grid-12x12-s2/node/logspace":                 0x32e702b26efb9a62,
	"grid-12x12-s2/edge/logspace":                 0x8e13e45edf1b75b2,
	"grid-12x12-s2/residual/logspace":             0x7b4fa69367db8119,
	"grid-12x12-s2/maxproduct/logspace":           0xf04ef86a726dad4b,
	"grid-12x12-s2/pool4/logspace":                0x5fc6dfe0cad745a4,
}

func goldenGraphs() map[string]func(t *testing.T) *graph.Graph {
	return map[string]func(t *testing.T) *graph.Graph{
		"synthetic-120x480-s3": func(t *testing.T) *graph.Graph {
			g, err := gen.Synthetic(120, 480, gen.Config{Seed: 21, States: 3})
			if err != nil {
				t.Fatalf("synthetic: %v", err)
			}
			return g
		},
		"grid-12x12-s2": func(t *testing.T) *graph.Graph {
			g, err := gen.Grid(12, 12, gen.Config{Seed: 9, States: 2, Shared: true, Keep: 0.6})
			if err != nil {
				t.Fatalf("grid: %v", err)
			}
			return g
		},
	}
}

// TestVanillaBitIdenticalToPreVariantKernels locks the damping=0 /
// vanilla-variant path of every engine to the exact belief bits the
// kernels produced before the variant layer existed.
func TestVanillaBitIdenticalToPreVariantKernels(t *testing.T) {
	engines := []struct {
		name string
		run  func(g *graph.Graph, kc kernel.Config)
	}{
		{"node", func(g *graph.Graph, kc kernel.Config) { bp.RunNode(g, bp.Options{Kernel: kc}) }},
		{"edge", func(g *graph.Graph, kc kernel.Config) { bp.RunEdge(g, bp.Options{Kernel: kc}) }},
		{"residual", func(g *graph.Graph, kc kernel.Config) { bp.RunResidual(g, bp.Options{Kernel: kc}) }},
		{"maxproduct", func(g *graph.Graph, kc kernel.Config) { bp.RunMaxProduct(g, bp.Options{Kernel: kc}) }},
		{"pool4", func(g *graph.Graph, kc kernel.Config) {
			poolbp.RunNode(g, poolbp.Options{Workers: 4, Options: bp.Options{Kernel: kc}})
		}},
	}
	modes := []kernel.Mode{kernel.Specialized, kernel.Generic, kernel.LogSpace}
	for name, build := range goldenGraphs() {
		for _, eng := range engines {
			for _, mode := range modes {
				key := name + "/" + eng.name + "/" + mode.String()
				want, ok := preVariantGoldens[key]
				if !ok {
					t.Fatalf("no golden recorded for %s", key)
				}
				g := build(t)
				eng.run(g, kernel.Config{Mode: mode})
				if got := beliefHash(g); got != want {
					t.Errorf("%s: belief bits drifted from pre-variant kernels: got %#016x want %#016x", key, got, want)
				}
			}
		}
	}
}
