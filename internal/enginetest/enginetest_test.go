package enginetest

import "testing"

// TestCorpusEngines drives the differential table in-package: every
// engine over every corpus case, at a team size that exercises the
// parallel paths.
func TestCorpusEngines(t *testing.T) {
	engines := Engines(4)
	for _, c := range Corpus() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			for _, err := range VerifyCase(c, engines) {
				t.Error(err)
			}
		})
	}
}

// TestCorpusBuildsFresh guards the harness contract that Build returns an
// independent graph each call: engines must never observe each other's
// posterior beliefs.
func TestCorpusBuildsFresh(t *testing.T) {
	for _, c := range Corpus() {
		a, err := c.Build()
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		b, err := c.Build()
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		Oracle(a)
		if d := MaxBeliefDiff(a, b); d == 0 {
			t.Errorf("%s: second Build shares beliefs with the first (no movement after a run)", c.Name)
		}
		a.Beliefs[0] = 0.123
		if b.Beliefs[0] == 0.123 {
			t.Errorf("%s: Build returns aliased belief storage", c.Name)
		}
	}
}
