package enginetest

import (
	"fmt"

	"credo/internal/bp"
	"credo/internal/gen"
	"credo/internal/graph"
	"credo/internal/poolbp"
	"credo/internal/relaxbp"
)

// This file is the dynamic-graph differential harness: delta-BP — apply
// a mutation stream to an already-converged graph and re-converge from
// only the delta seed frontier — against the one oracle that cannot be
// fooled by a delta-layer bug, a cold run on an independently rebuilt
// graph carrying the same mutations. The rebuild goes through
// graph.Builder and Observe only, never the delta APIs, so a defect in
// the overlay merge, the frontier computation or the retraction
// bookkeeping shows up as a belief divergence rather than cancelling
// out.

// DeltaEngine is one row of the delta differential table: an engine that
// can re-converge a mutated graph from its current beliefs. Run with nil
// seeds is a cold full run; with a non-nil seed slice it must restrict
// initial scheduling to those seeds (the sweep engines instead resume
// from current beliefs, which subsumes any seed set).
type DeltaEngine struct {
	Name string
	Run  func(g *graph.Graph, o bp.Options, seeds []int32) bp.Result
}

// DeltaEngines returns the engines supporting delta re-convergence: the
// node-paradigm engines that schedule from beliefs. The sequential
// residual and relaxed schedulers take the frontier directly; the pool's
// Jacobi sweeps restart from the mutated beliefs, so a near-fixpoint
// start converges in a handful of cheap sweeps without explicit seeds.
// Edge-paradigm engines are excluded by design: merged overlay edges
// start with uniform messages, which only the belief-driven engines
// ignore.
func DeltaEngines(workers int) []DeltaEngine {
	return []DeltaEngine{
		{Name: "residual", Run: func(g *graph.Graph, o bp.Options, seeds []int32) bp.Result {
			return bp.RunResidualFrom(g, o, seeds)
		}},
		{Name: "poolbp", Run: func(g *graph.Graph, o bp.Options, seeds []int32) bp.Result {
			// WorkQueue turns on the pool's active-list frontier — the sweep
			// analogue of seed scheduling: only nodes whose inputs moved stay
			// active, so a near-fixpoint warm start drains in a sweep or two.
			// CheckEvery 1 keeps the batched convergence check from rounding
			// those short runs up to the batching quantum.
			o.WorkQueue = true
			return poolbp.RunNode(g, poolbp.Options{Workers: workers, CheckEvery: 1, Options: o})
		}},
		{Name: "relaxbp", Run: func(g *graph.Graph, o bp.Options, seeds []int32) bp.Result {
			return relaxbp.RunFrom(g, relaxbp.Options{Workers: workers, Options: o}, seeds)
		}},
	}
}

// RebuildMutated constructs the mutated graph from scratch: a fresh
// build of the base case replayed through plain Builder construction —
// base edges plus streamed edge adds in order, final priors, final
// clamps. The result is what a cold system handed the post-mutation
// world would build, with no delta machinery involved.
func RebuildMutated(build func() (*graph.Graph, error), muts []gen.Mutation) (*graph.Graph, error) {
	base, err := build()
	if err != nil {
		return nil, err
	}

	// Replay the stream against a flat model of the final node state.
	// A prior drift always lands in the declared prior — on a clamped
	// node the delta layer parks it in the retraction slot, and either
	// the clamp survives to the end (declared prior irrelevant: Observe
	// overwrites it) or a retraction restores it (declared prior wins).
	prior := append([]float32(nil), base.Priors...)
	clamp := make([]int, base.NumNodes)
	for v := 0; v < base.NumNodes; v++ {
		clamp[v] = -1
		if base.Observed[v] {
			for s, p := range base.Prior(int32(v)) {
				if p == 1 {
					clamp[v] = s
				}
			}
		}
	}
	var addSrc, addDst []int32
	var addMat []*graph.JointMatrix
	for _, m := range muts {
		switch m.Kind {
		case gen.MutAddEdge:
			addSrc = append(addSrc, m.Src)
			addDst = append(addDst, m.Dst)
			addMat = append(addMat, m.Mat)
		case gen.MutPrior:
			p := prior[int(m.Node)*base.States : (int(m.Node)+1)*base.States]
			copy(p, m.Prior)
			graph.Normalize(p)
		case gen.MutEvidence:
			clamp[m.Node] = m.State
		case gen.MutRetract:
			clamp[m.Node] = -1
		}
	}

	b := graph.NewBuilder(base.States)
	if base.Shared != nil {
		m := *base.Shared
		m.Data = append([]float32(nil), base.Shared.Data...)
		m.T = nil
		if err := b.SetShared(m); err != nil {
			return nil, err
		}
	}
	for v := 0; v < base.NumNodes; v++ {
		name := ""
		if v < len(base.Names) {
			name = base.Names[v]
		}
		if _, err := b.AddNamedNode(name, prior[v*base.States:(v+1)*base.States]); err != nil {
			return nil, err
		}
	}
	for e := 0; e < base.NumEdges; e++ {
		var mat *graph.JointMatrix
		if base.Shared == nil {
			mat = &base.EdgeMats[e]
		}
		if err := b.AddEdge(base.EdgeSrc[e], base.EdgeDst[e], mat); err != nil {
			return nil, err
		}
	}
	for i := range addSrc {
		if err := b.AddEdge(addSrc[i], addDst[i], addMat[i]); err != nil {
			return nil, err
		}
	}
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	for v, s := range clamp {
		if s >= 0 {
			if err := g.Observe(int32(v), s); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}

// VerifyDelta drives one delta-BP scenario end to end: build the case,
// converge cold, replay a seeded mutation stream in batches with a
// frontier-seeded re-convergence after each batch, and compare the final
// beliefs against a cold run of the same engine on the independently
// rebuilt graph. It returns one error per violated invariant. The total
// belief updates spent across the delta re-convergences are written to
// deltaUpdates when non-nil (the bench experiment's measurement; the
// correctness criterion here is fixpoint equality).
func VerifyDelta(c Case, eng DeltaEngine, o bp.Options, seed int64, nMut, batches int, deltaUpdates *int64) []error {
	g, err := c.Build()
	if err != nil {
		return []error{fmt.Errorf("%s: build: %w", c.Name, err)}
	}
	tol := c.Tol
	if tol == 0 {
		tol = DefaultTol
	}
	var errs []error
	if res := eng.Run(g, o, nil); !res.Converged {
		return append(errs, fmt.Errorf("%s/%s: initial cold run did not converge (delta %g)", c.Name, eng.Name, res.FinalDelta))
	}

	muts := gen.Mutations(g, nMut, gen.Config{Seed: seed})
	if batches < 1 {
		batches = 1
	}
	per := (len(muts) + batches - 1) / batches
	for start := 0; start < len(muts); start += per {
		end := start + per
		if end > len(muts) {
			end = len(muts)
		}
		for _, m := range muts[start:end] {
			if err := m.Apply(g); err != nil {
				return append(errs, fmt.Errorf("%s/%s: apply %s: %w", c.Name, eng.Name, m.Kind, err))
			}
		}
		seeds := g.TakeDeltaSeeds()
		if len(seeds) == 0 {
			continue
		}
		res := eng.Run(g, o, seeds)
		if deltaUpdates != nil {
			*deltaUpdates += res.Ops.NodesProcessed
		}
		if !res.Converged {
			// Competence check before blaming the delta layer: synchronous
			// sweep engines can limit-cycle on particular mutated graphs
			// from any start (the corpus's known oscillation behavior). The
			// delta path is only at fault if a cold run on the very same
			// mutated graph converges where the warm-seeded one did not.
			probe := g.Clone()
			probe.ResetBeliefs()
			if cres := eng.Run(probe, o, nil); cres.Converged {
				errs = append(errs, fmt.Errorf("%s/%s: delta re-convergence from %d seeds did not converge (delta %g) but a cold run does",
					c.Name, eng.Name, len(seeds), res.FinalDelta))
			}
		}
	}
	if err := g.Validate(); err != nil {
		errs = append(errs, fmt.Errorf("%s/%s: mutated graph invalid: %w", c.Name, eng.Name, err))
	}

	oracle, err := RebuildMutated(c.Build, muts)
	if err != nil {
		return append(errs, fmt.Errorf("%s/%s: rebuild: %w", c.Name, eng.Name, err))
	}
	if res := eng.Run(oracle, o, nil); !res.Converged {
		errs = append(errs, fmt.Errorf("%s/%s: rebuilt-graph cold run did not converge (delta %g)", c.Name, eng.Name, res.FinalDelta))
	}
	if d := MaxBeliefDiff(oracle, g); d > tol {
		errs = append(errs, fmt.Errorf("%s/%s: delta fixpoint diverges from the rebuilt-cold oracle by %g (tolerance %g)",
			c.Name, eng.Name, d, tol))
	}
	return errs
}
