// Package enginetest is the cross-engine differential harness: one shared
// corpus of small real networks (the BIF testdata, as MRFs) and seeded
// synthetic graphs, and one table of every BP engine in the repository,
// with the invariants each engine must satisfy on every corpus case.
//
// The oracle is the reference sequential per-node sweep engine
// (internal/bp.RunNode). Engines that compute the loopy fixpoint — edge,
// residual, the OpenMP port, the persistent pool and the relaxed residual
// scheduler — must land within a per-case tolerance of the oracle's
// beliefs. The corpus deliberately sticks to graphs whose loopy fixpoint
// is unique in practice (small networks, moderate coupling): on large
// dense graphs with strong attractive potentials loopy BP has multiple
// fixpoints and update order selects among them, which would make
// cross-engine belief comparison meaningless.
//
// The traditional two-pass engine is the paper's §2.1.1 control: it runs
// "simply twice" (forward then backward by level) instead of iterating to
// convergence, and so computes a different quantity than the loopy
// fixpoint by design — on loopy graphs and even on trees its backward
// belief pass diverges numerically from the converged loopy beliefs. Its
// row therefore asserts the structural invariants every engine shares —
// valid normalized beliefs and run-to-run determinism — rather than
// fixpoint proximity.
package enginetest

import (
	"fmt"
	"path/filepath"
	"runtime"

	"credo/internal/bif"
	"credo/internal/bp"
	"credo/internal/gen"
	"credo/internal/graph"
	"credo/internal/kernel"
	"credo/internal/ompbp"
	"credo/internal/poolbp"
	"credo/internal/relaxbp"
)

// DefaultTol is the per-node L1 belief tolerance against the oracle,
// matching the precedent of the residual-vs-sweep equivalence tests:
// engines iterate to a 0.001 element threshold, so independent runs agree
// to well under 2e-2 per node when the fixpoint is unique.
const DefaultTol = 2e-2

// Case is one corpus graph. Build returns a fresh graph every call so
// engines never see each other's beliefs.
type Case struct {
	Name  string
	Tol   float32
	Build func() (*graph.Graph, error)
}

// testdataPath resolves a file in internal/bif/testdata relative to this
// source file, so the corpus loads regardless of the test's working
// directory (the harness is driven both in-package and from the module
// root).
func testdataPath(name string) string {
	_, file, _, _ := runtime.Caller(0)
	return filepath.Join(filepath.Dir(file), "..", "bif", "testdata", name)
}

// bifCase loads a BIF network and doubles its edges into the MRF form, so
// evidence flows against edge direction and every unobserved node has
// inputs.
func bifCase(name, file string, observe int32) Case {
	return Case{Name: name, Tol: DefaultTol, Build: func() (*graph.Graph, error) {
		g, err := bif.ParseFile(testdataPath(file))
		if err != nil {
			return nil, err
		}
		g, err = g.Undirected()
		if err != nil {
			return nil, err
		}
		if observe >= 0 {
			if err := g.Observe(observe, 0); err != nil {
				return nil, err
			}
		}
		return g, nil
	}}
}

func genCase(name string, tol float32, build func() (*graph.Graph, error)) Case {
	return Case{Name: name, Tol: tol, Build: build}
}

// Corpus returns the shared differential corpus: the three BIF testdata
// networks (sprinkler is a loopy diamond once doubled into an MRF), one of
// them with evidence clamped, and seeded synthetic graphs covering the
// generator families — uniform random at two belief widths, shared and
// per-edge matrices, a power-law graph, a lattice grid and a tree.
func Corpus() []Case {
	return []Case{
		bifCase("sprinkler-mrf", "sprinkler.bif", -1),
		bifCase("sprinkler-mrf-observed", "sprinkler.bif", 0),
		bifCase("cancer-mrf", "cancer.bif", -1),
		bifCase("asia-mrf", "asia.bif", -1),
		genCase("synthetic-200x800-s2", DefaultTol, func() (*graph.Graph, error) {
			return gen.Synthetic(200, 800, gen.Config{Seed: 33, States: 2, Shared: true})
		}),
		genCase("synthetic-300x1200-s3", DefaultTol, func() (*graph.Graph, error) {
			return gen.Synthetic(300, 1200, gen.Config{Seed: 7, States: 3, Keep: 0.45})
		}),
		genCase("powerlaw-500x2000-s2", DefaultTol, func() (*graph.Graph, error) {
			return gen.PowerLaw(500, 2000, gen.Config{Seed: 11, States: 2, Shared: true, Keep: 0.6})
		}),
		genCase("grid-16x16-s2", DefaultTol, func() (*graph.Graph, error) {
			return gen.Grid(16, 16, gen.Config{Seed: 5, States: 2, Shared: true, Keep: 0.6})
		}),
		// The tree is bipartite, so synchronous sweeps oscillate under
		// strong attractive coupling; moderate Keep holds the fixpoint
		// unique and reachable for Jacobi and asynchronous engines alike.
		genCase("tree-127-s3", DefaultTol, func() (*graph.Graph, error) {
			return gen.Tree(127, 2, gen.Config{Seed: 3, States: 3, Keep: 0.5})
		}),
	}
}

// Engine is one row of the differential table.
type Engine struct {
	Name string
	// Fixpoint marks engines that converge to the loopy fixpoint and are
	// belief-compared against the oracle; the traditional two-pass
	// control is instead checked for structural invariants only (see the
	// package comment).
	Fixpoint bool
	// Deterministic marks engines whose runs are bitwise repeatable for a
	// fixed configuration. The relaxed scheduler is deliberately not for
	// Workers > 1: worker interleaving chooses the update order, and only
	// the fixpoint tolerance is guaranteed.
	Deterministic bool
	// Sweep marks synchronous Jacobi-schedule engines: every sweep reads
	// the previous sweep's beliefs, so their trajectory — and on hard
	// graphs their divergence behavior — matches the sequential node
	// oracle. Asynchronous engines (residual, relaxbp) choose their own
	// update order and may converge where synchronous sweeps oscillate.
	Sweep bool
	// RunOpts executes the engine under full solver options, including
	// the convergence-robustness variant fields (Variant, Damping,
	// Alpha). The hard-graph corpus drives this entry point.
	RunOpts func(g *graph.Graph, o bp.Options) bp.Result
	// Run executes the engine on g under the given message-kernel
	// configuration; the harness drives every row once per kernel mode.
	Run func(g *graph.Graph, kc kernel.Config) bp.Result
}

// Engines returns the full engine table. Parallel engines run with the
// given team size.
func Engines(workers int) []Engine {
	rows := []Engine{
		{Name: "traditional", Fixpoint: false, Deterministic: true, Sweep: false, RunOpts: func(g *graph.Graph, o bp.Options) bp.Result {
			return bp.RunTraditional(g, o)
		}},
		{Name: "node", Fixpoint: true, Deterministic: true, Sweep: true, RunOpts: func(g *graph.Graph, o bp.Options) bp.Result {
			return bp.RunNode(g, o)
		}},
		{Name: "edge", Fixpoint: true, Deterministic: true, Sweep: true, RunOpts: func(g *graph.Graph, o bp.Options) bp.Result {
			return bp.RunEdge(g, o)
		}},
		{Name: "residual", Fixpoint: true, Deterministic: true, Sweep: false, RunOpts: func(g *graph.Graph, o bp.Options) bp.Result {
			return bp.RunResidual(g, o)
		}},
		{Name: "ompbp", Fixpoint: true, Deterministic: true, Sweep: true, RunOpts: func(g *graph.Graph, o bp.Options) bp.Result {
			return ompbp.RunNode(g, ompbp.Options{Threads: workers, Options: o})
		}},
		{Name: "poolbp", Fixpoint: true, Deterministic: true, Sweep: true, RunOpts: func(g *graph.Graph, o bp.Options) bp.Result {
			return poolbp.RunNode(g, poolbp.Options{Workers: workers, Options: o})
		}},
		{Name: "relaxbp", Fixpoint: true, Deterministic: workers <= 1, Sweep: false, RunOpts: func(g *graph.Graph, o bp.Options) bp.Result {
			return relaxbp.Run(g, relaxbp.Options{Workers: workers, Options: o})
		}},
	}
	for i := range rows {
		run := rows[i].RunOpts
		rows[i].Run = func(g *graph.Graph, kc kernel.Config) bp.Result {
			return run(g, bp.Options{Kernel: kc})
		}
	}
	return rows
}

// Kernels returns the kernel configurations every engine row is driven
// under: the width-specialized linear fast path and the blocked generic
// fallback. (The oracle itself runs the historical log-space path, so the
// pair also pins both linear variants to the pre-kernel numerics.)
func Kernels() []kernel.Config {
	return []kernel.Config{
		{Mode: kernel.Specialized},
		{Mode: kernel.Generic},
	}
}

// Oracle runs the reference engine the fixpoint rows are compared to: the
// sequential per-node sweep on the historical log-space kernel.
func Oracle(g *graph.Graph) bp.Result {
	return bp.RunNode(g, bp.Options{Kernel: kernel.Config{Mode: kernel.LogSpace}})
}

// MaxBeliefDiff returns the largest per-node L1 belief distance between
// two runs of the same graph.
func MaxBeliefDiff(a, b *graph.Graph) float32 {
	var worst float32
	for v := int32(0); v < int32(a.NumNodes); v++ {
		if d := graph.L1Diff(a.Belief(v), b.Belief(v)); d > worst {
			worst = d
		}
	}
	return worst
}

// VerifyCase runs every engine over fresh copies of one corpus case —
// once per kernel configuration — and returns one error per violated
// invariant (nil for a fully clean case). Beyond the per-kernel oracle
// comparison, the specialized and generic runs of each engine are
// compared with each other, so a regression in either kernel path that
// happens to stay near the log-space oracle still trips the harness.
func VerifyCase(c Case, engines []Engine) []error {
	g, err := c.Build()
	if err != nil {
		return []error{fmt.Errorf("%s: build: %w", c.Name, err)}
	}
	tol := c.Tol
	if tol == 0 {
		tol = DefaultTol
	}
	oracle := g.Clone()
	ores := Oracle(oracle)
	var errs []error
	if !ores.Converged {
		errs = append(errs, fmt.Errorf("%s: oracle did not converge in %d iterations", c.Name, ores.Iterations))
	}
	for _, e := range engines {
		var kernelRuns []*graph.Graph
		for _, kc := range Kernels() {
			mode := kc.Mode.String()
			eg := g.Clone()
			res := e.Run(eg, kc)
			if err := eg.Validate(); err != nil {
				errs = append(errs, fmt.Errorf("%s/%s/%s: invalid beliefs: %w", c.Name, e.Name, mode, err))
				continue
			}
			kernelRuns = append(kernelRuns, eg)
			if e.Deterministic {
				rg := g.Clone()
				e.Run(rg, kc)
				if d := MaxBeliefDiff(eg, rg); d != 0 {
					errs = append(errs, fmt.Errorf("%s/%s/%s: two identical runs differ by %g", c.Name, e.Name, mode, d))
				}
			}
			if !e.Fixpoint {
				continue
			}
			if !res.Converged {
				errs = append(errs, fmt.Errorf("%s/%s/%s: did not converge (final delta %g)", c.Name, e.Name, mode, res.FinalDelta))
			}
			if d := MaxBeliefDiff(oracle, eg); d > tol {
				errs = append(errs, fmt.Errorf("%s/%s/%s: diverges from the oracle by %g (tolerance %g)", c.Name, e.Name, mode, d, tol))
			}
		}
		// Cross-kernel comparison. Deterministic engines follow the same
		// update schedule under both kernels, so their results differ only
		// by linear-vs-blocked rounding — well inside the case tolerance.
		// The relaxed scheduler resolves update order at runtime, so its
		// pair is only fixpoint-close (2× the one-sided tolerance).
		if len(kernelRuns) == 2 {
			crossTol := tol
			if !e.Deterministic {
				crossTol = 2 * tol
			}
			if d := MaxBeliefDiff(kernelRuns[0], kernelRuns[1]); d > crossTol {
				errs = append(errs, fmt.Errorf("%s/%s: specialized and generic kernels disagree by %g (tolerance %g)", c.Name, e.Name, d, crossTol))
			}
		}
	}
	return errs
}
