package features

import (
	"credo/internal/graph"
	"credo/internal/kernel"
)

// Oscillation-risk features and the variant recommendation rule.
//
// The paper's five-feature vector predicts which PARADIGM (node vs edge)
// wins; this file predicts which UPDATE RULE survives: vanilla, damped,
// or Circular BP. Everything derives from input parsing alone — degree
// structure from Metadata, potential structure from CouplingStats — so
// the selector can pick a variant before any propagation runs.
//
// The rule is calibrated on the enginetest hard-graph corpus (locked by
// tests there) plus the easy differential corpus:
//
//   - weak coupling never needs help: every easy-corpus graph converges
//     vanilla, and vanilla is the only bit-identical zero-overhead path;
//   - any meaningful repulsive share under strong coupling frustrates
//     loops, and only damping rescues those (frustrated grids, repulsive
//     dense ER) — the circular correction finds no coherent echo to
//     cancel there;
//   - strong attractive coupling oscillates through echo loops (hub
//     cliques, bipartite trees), where Circular BP both converges and is
//     several times faster than damping (the tree case: 15 sweeps vs
//     187).

// RiskCount is the oscillation-risk feature vector length.
const RiskCount = 5

// RiskNames returns the risk feature names in vector order.
func RiskNames() []string {
	return []string{"avg_degree", "coupling_strength", "max_coupling", "repulsive_fraction", "degree_skew"}
}

// RiskVector builds the oscillation-risk feature vector: average degree
// (loop density), mean and max normalized coupling strength, the
// repulsive edge fraction (frustration proxy), and 1−Skew (hub skew:
// 0 for regular graphs, →1 when a few hubs dominate).
func RiskVector(g *graph.Graph) []float64 {
	md := g.Stats()
	cs := g.CouplingStats()
	return []float64{
		md.AvgInDegree,
		cs.MeanStrength,
		cs.MaxStrength,
		cs.RepulsiveFraction,
		1 - md.Skew(),
	}
}

// Calibrated decision thresholds. StrongCoupling separates the easy
// corpus (mean strength ≤ 0.25 at its strongest, all vanilla-convergent)
// from the hard corpus (≥ 0.8 everywhere, all vanilla-divergent) with a
// wide margin on both sides. FrustrationFloor tolerates a stray
// repulsive edge on an otherwise attractive graph; every frustrated hard
// case sits at 0.4+.
const (
	StrongCoupling   = 0.6
	FrustrationFloor = 0.05
)

// RecommendVariant picks the update rule for a graph from its risk
// vector:
//
//	weak coupling              → vanilla  (the zero-overhead fast path)
//	strong + repulsive share   → damped   (frustration: only damping helps)
//	strong, purely attractive  → circular (echo loops: converges and is
//	                                       far cheaper than damping)
//
// The rule is deliberately conservative toward vanilla: robustness
// variants cost extra sweeps (damping) or per-edge state (circular), so
// they engage only in the regime where vanilla demonstrably fails.
func RecommendVariant(g *graph.Graph) kernel.Variant {
	cs := g.CouplingStats()
	if cs.MeanStrength < StrongCoupling {
		return kernel.VariantVanilla
	}
	if cs.RepulsiveFraction > FrustrationFloor {
		return kernel.VariantDamped
	}
	return kernel.VariantCircular
}
