package features_test

import (
	"testing"

	"credo/internal/enginetest"
	"credo/internal/features"
	"credo/internal/gen"
	"credo/internal/kernel"
	"credo/internal/ml"
)

func TestRiskVectorShape(t *testing.T) {
	if len(features.RiskNames()) != features.RiskCount {
		t.Fatalf("RiskNames has %d entries, RiskCount is %d", len(features.RiskNames()), features.RiskCount)
	}
	g, err := gen.Synthetic(50, 200, gen.Config{Seed: 1, States: 2})
	if err != nil {
		t.Fatal(err)
	}
	v := features.RiskVector(g)
	if len(v) != features.RiskCount {
		t.Fatalf("RiskVector has %d entries, want %d", len(v), features.RiskCount)
	}
	// All risk features except avg_degree are ratios in [0,1].
	for i, x := range v[1:] {
		if x < 0 || x > 1 {
			t.Errorf("feature %s = %g outside [0,1]", features.RiskNames()[i+1], x)
		}
	}
}

// TestRecommendVariantHardCorpus ties the decision rule to its
// calibration ground truth: for every adversarial corpus case the
// recommended variant must be one that is pinned CONVERGING for that
// case — never vanilla (pinned diverging everywhere there), and never
// the rescue variant that fails (e.g. circular on a frustrated grid).
func TestRecommendVariantHardCorpus(t *testing.T) {
	for _, c := range enginetest.HardCorpus() {
		g, err := c.Build()
		if err != nil {
			t.Fatal(err)
		}
		got := features.RecommendVariant(g)
		if !c.Expect[got] {
			t.Errorf("%s: recommended %s, which is pinned non-converging (expectations: %v)",
				c.Name, got, c.Expect)
		}
		if got == kernel.VariantVanilla {
			t.Errorf("%s: recommended vanilla on an adversarial case", c.Name)
		}
	}
}

// TestRecommendVariantEasyCorpus guards the other side: the rule must
// keep every generator graph of the easy differential corpus — all
// vanilla-convergent by construction — on the zero-overhead vanilla
// path. (BIF cases are skipped: real CPTs don't reduce to a single
// diagonal-coupling axis, and the corpus pins their convergence
// elsewhere.)
func TestRecommendVariantEasyCorpus(t *testing.T) {
	for _, c := range enginetest.Corpus() {
		g, err := c.Build()
		if err != nil {
			t.Fatal(err)
		}
		cs := g.CouplingStats()
		if cs.Edges == 0 {
			continue
		}
		if got := features.RecommendVariant(g); got != kernel.VariantVanilla {
			t.Errorf("%s: recommended %s on a vanilla-convergent graph (mean strength %.2f)",
				c.Name, got, cs.MeanStrength)
		}
	}
}

// TestCouplingStats pins the potential summary on known generators.
func TestCouplingStats(t *testing.T) {
	attract, err := gen.HubSkew(4, 40, gen.Config{Seed: 2, States: 2, Keep: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	cs := attract.CouplingStats()
	if cs.RepulsiveFraction != 0 {
		t.Errorf("attractive graph: repulsive fraction %g, want 0", cs.RepulsiveFraction)
	}
	if cs.MeanStrength < 0.85 || cs.MeanStrength > 0.95 {
		t.Errorf("keep=0.95 s=2: mean strength %g, want ≈0.9", cs.MeanStrength)
	}
	repulse, err := gen.DenseER(30, 100, gen.Config{Seed: 3, States: 2, Keep: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	cs = repulse.CouplingStats()
	if cs.RepulsiveFraction != 1 {
		t.Errorf("repulsive graph: repulsive fraction %g, want 1", cs.RepulsiveFraction)
	}
	mixed, err := gen.FrustratedGrid(8, 8, 0.5, gen.Config{Seed: 4, States: 2, Keep: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	cs = mixed.CouplingStats()
	if cs.RepulsiveFraction < 0.3 || cs.RepulsiveFraction > 0.7 {
		t.Errorf("flip=0.5 grid: repulsive fraction %g, want ≈0.5", cs.RepulsiveFraction)
	}
}

// TestVariantClassifierFromCorpus demonstrates the trained path the
// selector exposes (Selector.VariantClassifier): a random forest fit on
// the risk vectors of the two corpora, labeled with each graph's
// calibrated variant, must reproduce the rule's calls on its training
// graphs. (Tiny corpus, so this is a smoke check of the plumbing, not a
// generalization claim — the threshold rule stays the default.)
func TestVariantClassifierFromCorpus(t *testing.T) {
	X, y := trainingSet(t)
	forest := &ml.RandomForest{Trees: 20, MaxDepth: 4, Seed: 1}
	if err := forest.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	for i := range X {
		if got := forest.Predict(X[i]); got != y[i] {
			t.Errorf("training graph %d: forest predicts %s, labeled %s",
				i, kernel.Variant(got), kernel.Variant(y[i]))
		}
	}
}

// trainingSet builds the (risk vector, variant label) pairs from both
// corpora: hard cases labeled with their cheapest pinned-converging
// rescue variant, easy generator cases labeled vanilla.
func trainingSet(t *testing.T) ([][]float64, []int) {
	t.Helper()
	var X [][]float64
	var y []int
	for _, c := range enginetest.HardCorpus() {
		g, err := c.Build()
		if err != nil {
			t.Fatal(err)
		}
		label := kernel.VariantDamped
		if c.Expect[kernel.VariantCircular] {
			label = kernel.VariantCircular // converges in far fewer sweeps
		}
		X = append(X, features.RiskVector(g))
		y = append(y, int(label))
	}
	for _, c := range enginetest.Corpus() {
		g, err := c.Build()
		if err != nil {
			t.Fatal(err)
		}
		if g.CouplingStats().Edges == 0 {
			continue
		}
		X = append(X, features.RiskVector(g))
		y = append(y, int(kernel.VariantVanilla))
	}
	return X, y
}
