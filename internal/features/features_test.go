package features

import (
	"math"
	"testing"

	"credo/internal/gen"
	"credo/internal/graph"
)

func TestVector(t *testing.T) {
	g, err := gen.Synthetic(1000, 4000, gen.Config{Seed: 1, States: 3})
	if err != nil {
		t.Fatal(err)
	}
	v := FromGraph(g)
	if len(v) != Count {
		t.Fatalf("vector length %d, want %d", len(v), Count)
	}
	if math.Abs(v[0]-math.Log10(1001)) > 1e-9 {
		t.Errorf("num_nodes feature = %v, want log10(1001)", v[0])
	}
	if v[1] != 0.25 {
		t.Errorf("nodes/edges = %v, want 0.25", v[1])
	}
	if v[2] != 3 {
		t.Errorf("beliefs = %v, want 3", v[2])
	}
	if v[3] <= 0 || v[4] <= 0 || v[4] > 1 {
		t.Errorf("imbalance/skew out of range: %v / %v", v[3], v[4])
	}
}

func TestNamesAlignWithVector(t *testing.T) {
	if len(Names()) != Count {
		t.Fatalf("names length %d, want %d", len(Names()), Count)
	}
}

func TestLabels(t *testing.T) {
	if LabelNode.String() != "Node" || LabelEdge.String() != "Edge" {
		t.Error("label names wrong")
	}
	if LabelNames()[LabelNode] != "Node" || LabelNames()[LabelEdge] != "Edge" {
		t.Error("LabelNames misaligned")
	}
}

func TestPoolGates(t *testing.T) {
	small := graph.Metadata{NumNodes: 1000, NumEdges: MinPoolEdges - 1, States: 2}
	big := graph.Metadata{NumNodes: 250_000, NumEdges: 1_000_000, States: 2}
	if PoolViable(small) {
		t.Error("pool viable below the edge floor")
	}
	if !PoolViable(big) {
		t.Error("pool not viable on the million-edge graph")
	}
	if got := PoolWorkers(big, 8); got != 8 {
		t.Errorf("million-edge team size %d, want the cap 8", got)
	}
	if got := PoolWorkers(small, 8); got != 6 {
		t.Errorf("small-graph team size %d, want 6 (49999/8192)", got)
	}
	if got := PoolWorkers(graph.Metadata{NumEdges: 10}, 8); got != 1 {
		t.Errorf("tiny-graph team size %d, want 1", got)
	}
	if got := PoolWorkers(big, 0); got != 1 {
		t.Errorf("zero cap gave %d workers, want 1", got)
	}
}
