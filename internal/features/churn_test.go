package features_test

import (
	"testing"

	"credo/internal/bp"
	"credo/internal/features"
	"credo/internal/gen"
	"credo/internal/graph"
	"credo/internal/ml"
)

func TestChurnVectorShape(t *testing.T) {
	if len(features.ChurnNames()) != features.ChurnCount {
		t.Fatalf("ChurnNames has %d entries, ChurnCount is %d", len(features.ChurnNames()), features.ChurnCount)
	}
	g, err := gen.Synthetic(50, 200, gen.Config{Seed: 1, States: 2})
	if err != nil {
		t.Fatal(err)
	}
	v := features.ChurnVector(g.Stats(), 10, 3, 25)
	if len(v) != features.ChurnCount {
		t.Fatalf("ChurnVector has %d entries, want %d", len(v), features.ChurnCount)
	}
	if v[0] != 10.0/50 || v[1] != 25.0/50 || v[2] != 3.0/10 {
		t.Errorf("fraction features wrong: got %v", v[:3])
	}
	// An empty batch must not divide by zero.
	for i, x := range features.ChurnVector(g.Stats(), 0, 0, 0) {
		if x != x || (i < 3 && x != 0) {
			t.Errorf("empty-batch feature %s = %g", features.ChurnNames()[i], x)
		}
	}
}

func TestRecommendDelta(t *testing.T) {
	g, err := gen.Synthetic(100, 300, gen.Config{Seed: 2, States: 2})
	if err != nil {
		t.Fatal(err)
	}
	md := g.Stats()
	if !features.RecommendDelta(md, 10) {
		t.Error("small frontier not recommended for delta re-convergence")
	}
	if features.RecommendDelta(md, md.NumNodes) {
		t.Error("whole-graph frontier recommended for delta re-convergence")
	}
}

// churnSample is one measured mutation batch: its churn vector and
// whether frontier-seeded re-convergence actually beat the cold re-run
// on belief updates.
type churnSample struct {
	x        []float64
	deltaWon bool
	churnPct int
}

// measureChurn replays seeded mutation streams over a graph at several
// churn rates, one sample per batch, measuring delta vs cold updates
// with the sequential residual engine (deterministic, so the labels are
// stable run to run).
func measureChurn(t *testing.T, base *graph.Graph, seed int64) []churnSample {
	t.Helper()
	var out []churnSample
	md := base.Stats()
	for _, churn := range []int{1, 5, 25} {
		g := base.Clone()
		if res := bp.RunResidual(g, bp.Options{}); !res.Converged {
			t.Fatalf("initial cold run did not converge at churn %d%%", churn)
		}
		per := g.NumNodes * churn / 100
		if per < 1 {
			per = 1
		}
		const batches = 3
		muts := gen.Mutations(g, per*batches, gen.Config{Seed: seed + int64(churn)})
		for at := 0; at < len(muts); at += per {
			end := at + per
			if end > len(muts) {
				end = len(muts)
			}
			structural := 0
			for _, m := range muts[at:end] {
				if err := m.Apply(g); err != nil {
					t.Fatalf("apply %s: %v", m.Kind, err)
				}
				if m.Kind == gen.MutAddEdge {
					structural++
				}
			}
			seeds := g.TakeDeltaSeeds()
			if len(seeds) == 0 {
				continue
			}
			res := bp.RunResidualFrom(g, bp.Options{}, seeds)
			cold := g.Clone()
			cold.ResetBeliefs()
			cres := bp.RunResidual(cold, bp.Options{})
			out = append(out, churnSample{
				x:        features.ChurnVector(md, end-at, structural, len(seeds)),
				deltaWon: res.Ops.NodesProcessed < cres.Ops.NodesProcessed,
				churnPct: churn,
			})
		}
	}
	return out
}

// TestRecommendDeltaMatchesMeasurement ties the rule to its calibration
// ground truth: on every measured batch at ≤25% churn the delta path
// must both be recommended (the frontier stays under the share bound)
// and actually win on belief updates — the same invariant the -exp
// delta study reports.
func TestRecommendDeltaMatchesMeasurement(t *testing.T) {
	grid, err := gen.Grid(16, 16, gen.Config{Seed: 11, States: 2, Shared: true, Keep: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	syn, err := gen.Synthetic(200, 600, gen.Config{Seed: 12, States: 2, Shared: true, Keep: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	for name, g := range map[string]*graph.Graph{"grid": grid, "synthetic": syn} {
		md := g.Stats()
		for _, s := range measureChurn(t, g, 77) {
			frontier := int(s.x[1] * float64(md.NumNodes))
			if !features.RecommendDelta(md, frontier) {
				t.Errorf("%s churn %d%%: frontier %d of %d nodes not recommended for delta",
					name, s.churnPct, frontier, md.NumNodes)
			}
			if !s.deltaWon {
				t.Errorf("%s churn %d%%: delta re-convergence did not beat the cold re-run", name, s.churnPct)
			}
		}
	}
}

// TestChurnClassifierFromMeasurement demonstrates the trained path: a
// decision tree fit on measured (churn vector, delta-won) pairs must
// reproduce its training labels. (Small sample, so this is a smoke
// check of the plumbing, as with the variant classifier — the
// threshold rule stays the default.)
func TestChurnClassifierFromMeasurement(t *testing.T) {
	grid, err := gen.Grid(16, 16, gen.Config{Seed: 11, States: 2, Shared: true, Keep: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	samples := measureChurn(t, grid, 77)
	if len(samples) < 4 {
		t.Fatalf("only %d measured batches", len(samples))
	}
	var X [][]float64
	var y []int
	for _, s := range samples {
		X = append(X, s.x)
		label := 0
		if s.deltaWon {
			label = 1
		}
		y = append(y, label)
	}
	tree := &ml.DecisionTree{MaxDepth: 3}
	if err := tree.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	for i := range X {
		if got := tree.Predict(X[i]); got != y[i] {
			t.Errorf("training batch %d: tree predicts %d, labeled %d", i, got, y[i])
		}
	}
}
