package features

import (
	"math"

	"credo/internal/graph"
)

// Churn-rate features and the re-convergence strategy rule.
//
// The paper's five-feature vector predicts which paradigm wins and the
// risk vector predicts which update rule survives; this file covers the
// dynamic-graph axis: after a mutation batch lands on a built graph,
// should the system re-converge incrementally from the delta frontier
// (bp.RunResidualFrom on TakeDeltaSeeds), or drop its warm state and
// pay a full re-run? Everything derives from batch bookkeeping the
// delta layer already does — mutation counts and the seed frontier —
// plus static metadata, so the decision costs nothing beyond the
// mutations themselves.

// ChurnCount is the churn feature vector length.
const ChurnCount = 5

// ChurnNames returns the churn feature names in vector order.
func ChurnNames() []string {
	return []string{"churn_fraction", "frontier_fraction", "structural_fraction", "avg_degree", "log_nodes"}
}

// ChurnVector builds the churn feature vector for one mutation batch:
// mutated is the number of applied mutations, structural how many of
// them were edge adds, and frontier the delta seed count the batch
// produced (changed nodes plus out-neighbours). The first two are
// fractions of the node count — the regime knobs the delta experiment
// sweeps — structural_fraction separates reshaping batches (which also
// invalidate SoA batch state) from pure node-state drift, and the last
// two carry the static context: average degree bounds how fast the
// frontier grows per propagation hop, and the node count enters in log
// scale as in the paradigm vector.
func ChurnVector(md graph.Metadata, mutated, structural, frontier int) []float64 {
	n := float64(md.NumNodes)
	if n == 0 {
		n = 1
	}
	sf := 0.0
	if mutated > 0 {
		sf = float64(structural) / float64(mutated)
	}
	return []float64{
		float64(mutated) / n,
		float64(frontier) / n,
		sf,
		md.AvgInDegree,
		math.Log10(n + 1),
	}
}

// DeltaFrontierShare is the frontier-size ceiling (as a fraction of
// nodes) below which frontier-seeded re-convergence is recommended over
// a full re-run. Calibrated against the -exp delta study: at 25% churn
// the frontier reaches about two thirds of the nodes and the delta path
// still applies strictly fewer belief updates than the cold control on
// every measured graph; past ~three quarters the residual run touches
// nearly everything anyway and the warm start's remaining edge no
// longer covers the bookkeeping a rebuild avoids.
const DeltaFrontierShare = 0.75

// RecommendDelta reports whether incremental re-convergence from the
// given seed frontier is expected to beat dropping warm state and
// re-running from priors. Conservative toward delta at the margin: the
// frontier bound is the measured crossover, and below it the win grows
// rapidly (two orders of magnitude at 1% churn in the study).
func RecommendDelta(md graph.Metadata, frontier int) bool {
	return float64(frontier) <= DeltaFrontierShare*float64(md.NumNodes)
}
