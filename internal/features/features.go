// Package features extracts the classifier feature vector of paper §3.7
// from graph metadata: the number of nodes, the nodes-to-edges ratio, the
// number of beliefs, the degree imbalance and the skew. All five derive
// from input parsing alone, so Credo can pick an implementation before any
// propagation runs.
package features

import (
	"math"

	"credo/internal/graph"
)

// Count is the feature vector length.
const Count = 5

// Names returns the feature names in vector order.
func Names() []string {
	return []string{"num_nodes", "nodes_to_edges", "num_beliefs", "degree_imbalance", "skew"}
}

// Vector builds the paper's five-element feature vector from metadata. The
// node count enters in log scale (the benchmark suite spans 10 to 2x10^7
// nodes); the remaining features are the paper's ratios, already "heavily
// normalized" by construction.
func Vector(md graph.Metadata) []float64 {
	return []float64{
		math.Log10(float64(md.NumNodes) + 1),
		md.NodesToEdgesRatio(),
		float64(md.States),
		md.DegreeImbalance(),
		md.Skew(),
	}
}

// FromGraph computes the feature vector directly from a graph.
func FromGraph(g *graph.Graph) []float64 {
	return Vector(g.Stats())
}

// Label is the classification target: which processing paradigm wins.
type Label int

// The two labels of §3.7.
const (
	LabelNode Label = iota
	LabelEdge
)

// String returns the paper's label name.
func (l Label) String() string {
	if l == LabelNode {
		return "Node"
	}
	return "Edge"
}

// LabelNames returns class names indexed by label value.
func LabelNames() []string { return []string{"Node", "Edge"} }

// Pool-candidate gating. The persistent worker-pool engine (the fifth
// implementation candidate, internal/poolbp) pays a one-time team spawn
// plus two barrier crossings per sweep; like the paper's CUDA crossover
// (§3.6), whether that overhead amortizes is decidable from input parsing
// alone, so the selector can gate the pool engine before any propagation
// runs.
const (
	// MinPoolEdges is the sweep-work floor below which the pool's spawn
	// and barrier overheads dominate the parallel gain.
	MinPoolEdges = 50_000

	// PoolEdgesPerWorker is the per-sweep work each additional worker
	// should own; teams larger than NumEdges/PoolEdgesPerWorker spend
	// their time at barriers rather than on messages.
	PoolEdgesPerWorker = 8_192
)

// PoolViable reports whether the graph carries enough per-sweep parallel
// work for the persistent worker-pool engine to pay for itself.
func PoolViable(md graph.Metadata) bool { return md.NumEdges >= MinPoolEdges }

// PoolWorkers recommends a team size for the pool engine from metadata
// alone, capped at maxWorkers (typically the host's core count).
func PoolWorkers(md graph.Metadata, maxWorkers int) int {
	if maxWorkers < 1 {
		maxWorkers = 1
	}
	w := md.NumEdges / PoolEdgesPerWorker
	if w < 1 {
		w = 1
	}
	if w > maxWorkers {
		w = maxWorkers
	}
	return w
}

// Relaxed-scheduling gating. The relaxed residual engine (the sixth
// implementation candidate, internal/relaxbp) replaces sweeps with a
// sharded priority queue; every applied update pays queue traffic
// (pushes to each successor, stale drops, wasted pops), so its win —
// far fewer message updates to convergence — needs enough per-update
// fan-out work to amortize. Like the pool gate, viability is decidable
// from input parsing alone.
const (
	// MinRelaxNodes is the graph-size floor for the relaxed engine: below
	// it the sequential residual engine's exact priority order wins, as
	// the whole run fits a handful of heap operations.
	MinRelaxNodes = 4_096

	// RelaxNodesPerWorker is the per-worker node share below which the
	// shard-sampling workers mostly collide and spin; teams larger than
	// NumNodes/RelaxNodesPerWorker stop scaling.
	RelaxNodesPerWorker = 2_048
)

// RelaxViable reports whether the graph is large enough for the relaxed
// residual engine's queue traffic to amortize over its update savings.
func RelaxViable(md graph.Metadata) bool { return md.NumNodes >= MinRelaxNodes }

// RelaxWorkers recommends a team size for the relaxed residual engine
// from metadata alone, capped at maxWorkers (typically the host's core
// count).
func RelaxWorkers(md graph.Metadata, maxWorkers int) int {
	if maxWorkers < 1 {
		maxWorkers = 1
	}
	w := md.NumNodes / RelaxNodesPerWorker
	if w < 1 {
		w = 1
	}
	if w > maxWorkers {
		w = maxWorkers
	}
	return w
}
