// Package serve is the long-lived inference layer behind the credoserved
// daemon: graphs load once into a resident registry and every posterior
// query runs against them in place, so the engines built for repeated
// inference over a resident graph finally serve repeated inference.
//
// Three pieces make concurrent serving cheap and safe:
//
//   - Evidence overlays. The resident graph is pristine and read-only;
//     each query leases a structural clone from a per-graph pool (shared
//     adjacency and joint matrices, private numeric arrays), re-bases it
//     with graph.CopyStateFrom, clamps its own evidence and runs
//     propagation there. Concurrent queries never share kernel arenas or
//     observe each other's clamps.
//
//   - Warm starts. After any converged query the resident snapshots the
//     fixpoint beliefs together with the evidence they were converged
//     under. The next query diffs its evidence against the snapshot and
//     seeds only the perturbed frontier — the changed nodes plus their
//     out-neighbours — into the residual/relaxed queues
//     (bp.RunResidualFrom / relaxbp.RunFrom), re-converging from the old
//     fixpoint instead of from uniform priors. The residual scheduling
//     papers (Aksenov et al.; Van der Merwe et al.) make this nearly
//     free: unperturbed residuals stay below threshold and never enter
//     the queue. Cold start is the automatic fallback, and warm results
//     are locked within WarmTol of a cold start by the equivalence tests.
//
//   - Admission control. A bounded two-stage admission queue (execution
//     slots plus a waiting line) sheds load with 429 + Retry-After once
//     the line fills, so a burst degrades into fast rejections instead of
//     unbounded queueing. Every outcome is observable through the
//     internal/telemetry probe (KindServe events, Prometheus counters on
//     the ops sidecar).
package serve

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"credo/internal/bif"
	"credo/internal/bp"
	"credo/internal/core"
	"credo/internal/graph"
	"credo/internal/mtxbp"
	"credo/internal/telemetry"
	"credo/internal/xmlbif"
)

// WarmTol is the locked bound on the per-node L∞ belief distance between
// a warm-started query and a cold start of the same evidence set. Both
// runs stop once every pending residual falls below the element
// threshold, so each sits within a small multiple of the threshold from
// the unique fixpoint; ten thresholds bounds their distance with margin
// (measured ~3x on the regression graphs), the same reasoning as the
// enginetest cross-engine tolerance.
const WarmTol = 10 * bp.DefaultThreshold

// Config shapes a serving instance.
type Config struct {
	// Selector drives per-request engine selection for cold starts when
	// the request does not override the engine: the internal/ml
	// classifier (when loaded) decides the Node/Edge paradigm and the
	// platform rule the backend, exactly as in batch runs.
	Selector core.Selector

	// Options is the propagation parameter template applied to every
	// query run (threshold, iteration cap, kernel config). The probe is
	// installed from Probe, not from here.
	Options bp.Options

	// Workers sizes the worker teams of the relax and pool engines when
	// a query routes to them. Zero means runtime.NumCPU (resolved by the
	// engines themselves).
	Workers int

	// MaxInFlight bounds the queries executing concurrently. Zero means
	// DefaultMaxInFlight.
	MaxInFlight int

	// MaxQueue bounds the admitted-but-waiting line beyond MaxInFlight;
	// requests arriving past it are shed with 429. Zero means
	// 4*MaxInFlight.
	MaxQueue int

	// RetryAfter is the hint returned with shed responses. Zero means
	// one second.
	RetryAfter time.Duration

	// BatchK is the lane capacity of the cross-query batcher: auto-engine
	// queries against one resident accumulate and run as a single K-way
	// SoA batch. Zero means DefaultBatchK; 1 or negative disables
	// batching (every query runs solo, the pre-batching behaviour).
	BatchK int

	// BatchWindow is the batcher's accumulation deadline: a partial batch
	// flushes this long after its first query arrives. Zero means
	// DefaultBatchWindow.
	BatchWindow time.Duration

	// Probe receives both the engines' run telemetry and the serving
	// layer's KindServe events. Nil disables instrumentation.
	Probe telemetry.Probe

	// Tracer, when non-nil, samples requests into request-scoped traces:
	// the HTTP layer opens a trace per sampled query and every stage the
	// request crosses (admission, decode, batching, staging, the engine
	// run, extraction) records a span on it. Anomalous traces land in the
	// tracer's flight recorder. Nil disables tracing entirely.
	Tracer *telemetry.Tracer

	// MRF doubles directed BIF/XMLBIF networks into MRF form on load, so
	// evidence flows against edge direction (recommended; mtxbp inputs
	// are stored pre-doubled).
	MRF bool

	// IngestWorkers is the parallel chunked ingest fan-out for mtxbp
	// loads (0 = NumCPU, 1 = sequential).
	IngestWorkers int
}

// DefaultMaxInFlight is the execution-slot count when Config leaves
// MaxInFlight zero: enough to keep a small host busy without thrashing
// the worker teams.
const DefaultMaxInFlight = 4

// Server is the resident-graph registry plus the admission gate. It is
// safe for concurrent use; the HTTP layer in http.go is a thin shell
// over it.
type Server struct {
	cfg Config
	adm *admission

	// variant labels every query's latency observation with the resolved
	// message-update rule; the config template never changes after New,
	// so it is resolved once.
	variant string

	mu     sync.RWMutex
	graphs map[string]*Resident

	batchMu  sync.Mutex
	batchers map[string]*batcher
}

// New returns an empty serving instance.
func New(cfg Config) *Server {
	inflight := cfg.MaxInFlight
	if inflight <= 0 {
		inflight = DefaultMaxInFlight
	}
	maxQueue := cfg.MaxQueue
	if maxQueue <= 0 {
		maxQueue = 4 * inflight
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.BatchK == 0 {
		cfg.BatchK = DefaultBatchK
	}
	if cfg.BatchWindow == 0 {
		cfg.BatchWindow = DefaultBatchWindow
	}
	return &Server{
		cfg:      cfg,
		adm:      newAdmission(inflight, maxQueue),
		variant:  cfg.Options.ResolveVariant().Variant.String(),
		graphs:   make(map[string]*Resident),
		batchers: make(map[string]*batcher),
	}
}

// Load registers a built graph under name, replacing any previous
// resident with that name. The graph must validate; the server takes
// ownership (callers must not keep mutating it).
func (s *Server) Load(name string, g *graph.Graph) (*Resident, error) {
	return s.load(name, g, 0)
}

func (s *Server) load(name string, g *graph.Graph, wall time.Duration) (*Resident, error) {
	if name == "" {
		return nil, fmt.Errorf("serve: empty graph name")
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("serve: load %s: %w", name, err)
	}
	r := NewResident(name, g)
	s.mu.Lock()
	s.graphs[name] = r
	s.mu.Unlock()
	// Drop any batcher bound to a replaced resident; batcherFor rebuilds
	// one against the new graph on the next batched query.
	s.batchMu.Lock()
	delete(s.batchers, name)
	s.batchMu.Unlock()
	if s.cfg.Probe != nil {
		s.cfg.Probe.Emit(telemetry.Event{
			Kind:   telemetry.KindServe,
			Engine: "serve.load",
			Worker: -1,
			Items:  int64(g.NumNodes),
			BusyNs: wall.Nanoseconds(),
		})
	}
	return r, nil
}

// LoadSpec names an on-disk graph for LoadFiles: a BIF or XMLBIF
// document, or an mtxbp node/edge file pair (which goes through the
// parallel chunked ingest path).
type LoadSpec struct {
	BIF    string `json:"bif,omitempty"`
	XMLBIF string `json:"xmlbif,omitempty"`
	Nodes  string `json:"nodes,omitempty"`
	Edges  string `json:"edges,omitempty"`
}

// LoadFiles reads the spec'd input and registers it under name. BIF and
// XMLBIF networks are doubled into MRF form when Config.MRF is set;
// mtxbp pairs load through mtxbp.ReadParallel with the server's probe
// attached, so ingest telemetry flows to the same sinks as queries.
func (s *Server) LoadFiles(name string, spec LoadSpec) (*Resident, error) {
	start := time.Now()
	var g *graph.Graph
	var err error
	switch {
	case spec.BIF != "":
		g, err = bif.ParseFile(spec.BIF)
	case spec.XMLBIF != "":
		g, err = xmlbif.ParseFile(spec.XMLBIF)
	case spec.Nodes != "" && spec.Edges != "":
		g, err = mtxbp.ReadParallel(spec.Nodes, spec.Edges,
			mtxbp.ReadOptions{Workers: s.cfg.IngestWorkers, Probe: s.cfg.Probe})
	default:
		return nil, fmt.Errorf("serve: load %s: need bif, xmlbif, or nodes+edges", name)
	}
	if err != nil {
		return nil, fmt.Errorf("serve: load %s: %w", name, err)
	}
	if s.cfg.MRF && (spec.BIF != "" || spec.XMLBIF != "") {
		if g, err = g.Undirected(); err != nil {
			return nil, fmt.Errorf("serve: load %s: %w", name, err)
		}
	}
	return s.load(name, g, time.Since(start))
}

// Get returns the resident registered under name.
func (s *Server) Get(name string) (*Resident, bool) {
	s.mu.RLock()
	r, ok := s.graphs[name]
	s.mu.RUnlock()
	return r, ok
}

// Names returns the registered graph names, sorted.
func (s *Server) Names() []string {
	s.mu.RLock()
	names := make([]string, 0, len(s.graphs))
	for n := range s.graphs {
		names = append(names, n)
	}
	s.mu.RUnlock()
	sort.Strings(names)
	return names
}

// only returns the single resident when exactly one is registered — the
// convenience default for requests that omit ?graph=.
func (s *Server) only() (*Resident, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.graphs) != 1 {
		return nil, false
	}
	for _, r := range s.graphs {
		return r, true
	}
	return nil, false
}

// Resident is one graph loaded for serving: the pristine base (read-only
// after registration), a lease pool of structural clones for query
// overlays, and the warm-start snapshot.
type Resident struct {
	Name string

	// baseMu orders base mutations (the /v1/update delta path) against
	// readers. Queries hold it only while copying state out of the base —
	// their runs happen on private overlay clones — while batch flushes
	// hold it for the whole run, since the batched engine reads the base's
	// adjacency arrays directly.
	baseMu sync.RWMutex
	base   *graph.Graph
	names  map[string]int32

	// mdMu guards the cached structural statistics, which go stale when
	// a structural delta reshapes the base and are refreshed by the
	// update path. A lock of its own (never held together with baseMu)
	// so readers on the query path cannot nest read locks against a
	// waiting base writer.
	mdMu      sync.RWMutex
	md        graph.Metadata
	footprint int64

	pool sync.Pool

	warmMu sync.Mutex
	warm   *warmState
	warmed int64 // queries served warm (diagnostics)
}

// NewResident wraps a built graph for serving without registering it in
// any server — the direct entry point for tests and for the credobench
// serve experiment.
func NewResident(name string, g *graph.Graph) *Resident {
	r := &Resident{
		Name:      name,
		base:      g,
		md:        g.Stats(),
		footprint: g.MemoryFootprint(),
		names:     make(map[string]int32, len(g.Names)),
	}
	for i, n := range g.Names {
		if n != "" {
			r.names[n] = int32(i)
		}
	}
	r.pool.New = func() any { return g.Clone() }
	return r
}

// Metadata returns the resident's structural statistics — recomputed
// after every structural delta, so edge counts and degree moments track
// the merged graph, not the one loaded at registration.
func (r *Resident) Metadata() graph.Metadata {
	r.mdMu.RLock()
	defer r.mdMu.RUnlock()
	return r.md
}

// stats returns the metadata/footprint pair the engine selector reads.
func (r *Resident) stats() (graph.Metadata, int64) {
	r.mdMu.RLock()
	defer r.mdMu.RUnlock()
	return r.md, r.footprint
}

// refreshStats publishes recomputed statistics. The caller computes
// them (g.Stats walks the adjacency arrays) while it still holds baseMu,
// so the walk cannot race a concurrent merge reassigning the index.
func (r *Resident) refreshStats(md graph.Metadata, footprint int64) {
	r.mdMu.Lock()
	r.md = md
	r.footprint = footprint
	r.mdMu.Unlock()
}

// HasWarm reports whether a live warm-start snapshot is available — one
// taken at the base's current mutation generation. A snapshot stranded
// behind a base mutation counts as absent.
func (r *Resident) HasWarm() bool { return r.snapshot() != nil }

// Generation returns the base graph's mutation generation — the value
// warm snapshots are keyed by.
func (r *Resident) Generation() uint64 {
	r.baseMu.RLock()
	defer r.baseMu.RUnlock()
	return r.base.Generation()
}

// structuralGeneration returns the base's structural (edge-add)
// generation — the value the batcher's SoA pool is keyed by.
func (r *Resident) structuralGeneration() uint64 {
	r.baseMu.RLock()
	defer r.baseMu.RUnlock()
	return r.base.StructuralGeneration()
}

// lease borrows an overlay clone with the base's pristine numeric state,
// returning it together with the base generation that state was copied
// at — the key any fixpoint converged on the clone must be published
// under. A clone whose shape no longer matches (the base grew edges via
// a structural delta since the clone was pooled) is dropped for a fresh
// structural clone of the current base.
func (r *Resident) lease() (*graph.Graph, uint64) {
	r.baseMu.RLock()
	defer r.baseMu.RUnlock()
	g := r.pool.Get().(*graph.Graph)
	if err := g.CopyStateFrom(r.base); err != nil {
		g = r.base.Clone()
	}
	return g, r.base.Generation()
}

// release returns an overlay to the lease pool.
func (r *Resident) release(g *graph.Graph) { r.pool.Put(g) }

// nodeLabel names node v for response payloads: its name when it has
// one, its decimal id otherwise.
func (r *Resident) nodeLabel(v int32) string {
	if int(v) < len(r.base.Names) && r.base.Names[v] != "" {
		return r.base.Names[v]
	}
	return strconv.Itoa(int(v))
}
