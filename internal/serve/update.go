package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"

	"credo/internal/bp"
	"credo/internal/features"
	"credo/internal/gen"
	"credo/internal/graph"
)

// This file is the dynamic-graph entry of the serving layer: POST
// /v1/update applies a batch of graph deltas — evidence arrivals and
// retractions, prior drifts, edge adds — to the resident base in place
// and re-converges the warm snapshot from the delta frontier, so the
// next query warm-starts against the mutated world instead of paying a
// cold run for it. Structural deltas (edge adds) reshape the graph;
// they invalidate the warm snapshot and retire the resident's batcher,
// and the next query re-converges cold.

// updatePayload is the POST /v1/update body: an ordered list of delta
// operations applied atomically per operation (a rejected operation
// aborts the rest of the list but does not roll back the ones before
// it — the response reports how many landed).
type updatePayload struct {
	Updates []updateOp `json:"updates"`
}

// updateOp is one wire-shape delta. Op selects the kind; exactly the
// fields of that kind are read:
//
//	{"op":"evidence","node":N,"state":S}   clamp node N to state S
//	{"op":"retract","node":N}              lift a previous update clamp
//	{"op":"prior","node":N,"prior":[...]}  replace N's prior
//	{"op":"edge","src":A,"dst":B}          add edge A->B ("mat" gives the
//	                                       row-major joint matrix, required
//	                                       on per-edge-matrix graphs)
type updateOp struct {
	Op    string    `json:"op"`
	Node  string    `json:"node,omitempty"`
	State *int      `json:"state,omitempty"`
	Prior []float32 `json:"prior,omitempty"`
	Src   string    `json:"src,omitempty"`
	Dst   string    `json:"dst,omitempty"`
	Mat   []float32 `json:"mat,omitempty"`
}

// ResolvedUpdate is a decoded, validated update bound to one resident.
type ResolvedUpdate struct {
	muts []gen.Mutation
}

// UpdateResponse is the wire shape of an applied update: how much
// landed, where the graph's generation moved, and what the warm
// re-convergence cost (zero updates when there was no snapshot to
// re-converge or the delta was structural).
type UpdateResponse struct {
	Graph      string `json:"graph"`
	Applied    int    `json:"applied"`
	Generation uint64 `json:"generation"`
	Structural bool   `json:"structural"`
	Warm       bool   `json:"warm"`
	Converged  bool   `json:"converged"`
	Updates    int64  `json:"updates"`
	WallNs     int64  `json:"wall_ns"`
	// Error is set (by the HTTP handler) when an operation was rejected
	// mid-batch: the applied prefix stays committed, and Applied and
	// Generation tell the client how much landed and where the graph
	// moved, so it can resync without parsing the error string.
	Error string `json:"error,omitempty"`
}

// DecodeUpdate parses and validates an update document against the
// resident's node space, with the same strictness contract as
// DecodeQuery: unknown fields, trailing data, unresolvable nodes,
// malformed distributions and unknown ops all error and never panic.
// Validation that depends on graph state at apply time (retracting a
// node that is not update-clamped, matrix mode mismatches) is left to
// the delta layer.
func (r *Resident) DecodeUpdate(data []byte) (*ResolvedUpdate, error) {
	if len(data) > maxQueryBytes {
		return nil, fmt.Errorf("serve: update document exceeds %d bytes", maxQueryBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var p updatePayload
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("serve: decode update: %w", err)
	}
	if _, err := dec.Token(); !errors.Is(err, io.EOF) {
		return nil, fmt.Errorf("serve: trailing data after update document")
	}
	if len(p.Updates) == 0 {
		return nil, fmt.Errorf("serve: update document has no operations")
	}

	ru := &ResolvedUpdate{muts: make([]gen.Mutation, 0, len(p.Updates))}
	states := r.base.States
	for i, op := range p.Updates {
		switch op.Op {
		case "evidence":
			v, err := r.resolveNode(op.Node)
			if err != nil {
				return nil, fmt.Errorf("serve: update %d: %w", i, err)
			}
			if op.State == nil {
				return nil, fmt.Errorf("serve: update %d: evidence for %q has no state", i, op.Node)
			}
			if *op.State < 0 || *op.State >= states {
				return nil, fmt.Errorf("serve: update %d: state %d out of range [0,%d)", i, *op.State, states)
			}
			ru.muts = append(ru.muts, gen.Mutation{Kind: gen.MutEvidence, Node: v, State: *op.State})
		case "retract":
			v, err := r.resolveNode(op.Node)
			if err != nil {
				return nil, fmt.Errorf("serve: update %d: %w", i, err)
			}
			ru.muts = append(ru.muts, gen.Mutation{Kind: gen.MutRetract, Node: v})
		case "prior":
			v, err := r.resolveNode(op.Node)
			if err != nil {
				return nil, fmt.Errorf("serve: update %d: %w", i, err)
			}
			if len(op.Prior) != states {
				return nil, fmt.Errorf("serve: update %d: prior has %d entries, want %d", i, len(op.Prior), states)
			}
			ru.muts = append(ru.muts, gen.Mutation{
				Kind: gen.MutPrior, Node: v,
				Prior: append([]float32(nil), op.Prior...),
			})
		case "edge":
			src, err := r.resolveNode(op.Src)
			if err != nil {
				return nil, fmt.Errorf("serve: update %d: src: %w", i, err)
			}
			dst, err := r.resolveNode(op.Dst)
			if err != nil {
				return nil, fmt.Errorf("serve: update %d: dst: %w", i, err)
			}
			var mat *graph.JointMatrix
			if len(op.Mat) > 0 {
				if len(op.Mat) != states*states {
					return nil, fmt.Errorf("serve: update %d: matrix has %d entries, want %d", i, len(op.Mat), states*states)
				}
				mat = &graph.JointMatrix{
					Rows: uint32(states), Cols: uint32(states),
					Data: append([]float32(nil), op.Mat...),
				}
			}
			ru.muts = append(ru.muts, gen.Mutation{Kind: gen.MutAddEdge, Src: src, Dst: dst, Mat: mat})
		default:
			return nil, fmt.Errorf("serve: update %d: unknown op %q (want evidence, retract, prior or edge)", i, op.Op)
		}
	}
	return ru, nil
}

// UpdateResident applies the decoded delta batch to the resident's base
// graph and refreshes the warm snapshot:
//
//   - Mutations land on the base under the write lock; every query
//     leased after the unlock sees the mutated world, and the generation
//     bump makes the pre-update warm snapshot unreachable (snapshot()
//     keys on it), so no query can seed from the stale fixpoint.
//   - With a warm snapshot keyed to the pre-update generation (any
//     other generation means the fixpoint does not describe the base
//     this batch mutated — a slow query's late publication, or a racing
//     update) and a non-structural delta, the snapshot is re-converged
//     in place: an overlay adopts the old fixpoint, the
//     delta frontier (changed nodes plus out-neighbours, from
//     TakeDeltaSeeds) seeds bp.RunResidualFrom, and the re-converged
//     beliefs are published under the new generation. This is the whole
//     point of the endpoint — the mutation pays the (frontier-sized)
//     re-convergence once, instead of every subsequent query paying a
//     cold run.
//   - Structural deltas drop the snapshot and leave re-convergence to
//     the next query's cold run: merged edges reshape the overlay pool
//     and the batcher's SoA states, both of which re-key off the
//     structural generation.
//
// An operation rejected by the delta layer aborts the remainder; the
// error reports the position, and the returned response (non-nil even
// on error) reports the committed prefix: Applied and Generation tell
// the caller how much landed and where the graph moved, so a client
// can resync without parsing the position out of the error string.
func (s *Server) UpdateResident(r *Resident, ru *ResolvedUpdate) (*UpdateResponse, error) {
	start := time.Now()

	r.baseMu.Lock()
	genBefore := r.base.Generation()
	structBefore := r.base.StructuralGeneration()
	applied := 0
	var applyErr error
	for i, m := range ru.muts {
		if err := m.Apply(r.base); err != nil {
			applyErr = fmt.Errorf("serve: update %d (%s): %w", i, m.Kind, err)
			break
		}
		applied++
	}
	seeds := r.base.TakeDeltaSeeds()
	structural := r.base.StructuralGeneration() != structBefore
	gen := r.base.Generation()
	var newMD graph.Metadata
	var newFootprint int64
	if structural {
		// TakeDeltaSeeds merged the overlay, so the cached statistics —
		// the registry listing, the engine selector's inputs, the churn
		// rule's node count — describe a graph that no longer exists.
		// Recompute under the write lock (Stats walks the just-merged
		// adjacency arrays) and publish after it drops.
		newMD, newFootprint = r.base.Stats(), r.base.MemoryFootprint()
	}
	r.baseMu.Unlock()
	if structural {
		r.refreshStats(newMD, newFootprint)
	}
	resp := &UpdateResponse{
		Graph:      r.Name,
		Applied:    applied,
		Generation: gen,
		Structural: structural,
	}
	if applyErr != nil {
		// The applied prefix is committed and its frontier is drained, so
		// no snapshot at or below the new generation can be carried
		// forward — drop the storage (the generation keys already make it
		// unreachable) and report the prefix alongside the error.
		if gen != genBefore {
			r.invalidateWarmThrough(gen)
		}
		resp.WallNs = time.Since(start).Nanoseconds()
		return resp, applyErr
	}

	if len(seeds) == 0 {
		// Nothing moved (every operation was a no-op rewrite); the old
		// snapshot, if any, is still keyed to the current generation.
		resp.Warm = r.HasWarm()
		resp.Converged = true
		resp.WallNs = time.Since(start).Nanoseconds()
		return resp, nil
	}

	r.warmMu.Lock()
	w := r.warm
	r.warmMu.Unlock()
	if w != nil && w.gen != genBefore {
		// The stored fixpoint is not one of the base this batch mutated:
		// either it predates an earlier update whose frontier is already
		// drained (a slow query's late publication), or a racing later
		// update republished after our generation. Re-converging from it
		// would publish a non-fixpoint at the current generation — the
		// same check snapshot() applies on the query path, against the
		// pre-update generation here because our own mutations just
		// bumped it.
		w = nil
	}
	if structural || w == nil || !features.RecommendDelta(r.Metadata(), len(seeds)) {
		// No fixpoint to carry forward (or one the reshaped graph cannot
		// reuse lane-for-lane, or a frontier so large the churn-rate rule
		// says re-convergence would touch most of the graph anyway): the
		// stale snapshot is unreachable already — its generation differs
		// from gen — so just drop the storage (without destroying a
		// fresher snapshot a racing later update may have published) and
		// let the next query run cold.
		r.invalidateWarmThrough(gen)
		resp.Converged = true
		resp.WallNs = time.Since(start).Nanoseconds()
		return resp, nil
	}

	// Re-converge the warm snapshot in place on an overlay: mutated base
	// state, the snapshot's still-valid query clamps, the old fixpoint
	// beliefs everywhere the engine will read them, and the delta
	// frontier as seeds.
	g, leaseGen := r.lease()
	defer r.release(g)
	dense := append([]int32(nil), w.evidence...)
	for v := range dense {
		if dense[v] < 0 {
			continue
		}
		if g.Observed[v] {
			// The update clamped this node at base level; the newer clamp
			// wins over the snapshot's query-time evidence.
			dense[v] = -1
			continue
		}
		if err := g.Observe(int32(v), int(dense[v])); err != nil {
			// The mutations are committed; only the re-convergence failed.
			// Report the full prefix and leave the next query to run cold.
			r.invalidateWarmThrough(gen)
			resp.WallNs = time.Since(start).Nanoseconds()
			return resp, fmt.Errorf("serve: re-clamp node %d: %w", v, err)
		}
	}
	for v := int32(0); v < int32(g.NumNodes); v++ {
		// Input-free nodes keep their leased beliefs: the delta layer
		// maintains them (prior updates land directly) and the engine
		// never recomputes them, so the stale snapshot value must not
		// overwrite them. Clamped nodes keep their indicators.
		if !g.Observed[v] && g.InDegree(v) > 0 {
			copy(g.Belief(v), w.beliefs[int(v)*g.States:(int(v)+1)*g.States])
		}
	}
	opts := s.cfg.Options
	opts.Probe = s.cfg.Probe
	res := bp.RunResidualFrom(g, opts, seeds)
	resp.Converged = res.Converged
	resp.Updates = res.Ops.NodesProcessed
	if res.Converged && leaseGen == gen {
		r.storeSnapshotBeliefs(g.Beliefs, dense, leaseGen)
		resp.Warm = true
	} else {
		// Failed to re-converge (or raced yet another update): drop our
		// stale snapshot rather than publishing a fixpoint that is not
		// one, but keep anything fresher a racing update published.
		r.invalidateWarmThrough(gen)
	}
	resp.WallNs = time.Since(start).Nanoseconds()
	return resp, nil
}
