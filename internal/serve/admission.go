package serve

import "sync/atomic"

// admission is the load-shedding gate: a fixed set of execution slots
// plus a bounded waiting line. A request first tries to take a slot
// directly; failing that it joins the line and blocks until a slot
// frees — unless the line is already full, in which case it is shed
// immediately (the HTTP layer turns that into 429 + Retry-After).
//
// Shedding at the door instead of queueing without bound is what keeps a
// burst survivable: latency for admitted queries stays bounded by
// line-length x service time, and rejected clients learn to back off at
// the cost of one fast round trip.
type admission struct {
	slots   chan struct{}
	waiting atomic.Int64
	maxWait int64
}

func newAdmission(inflight, maxQueue int) *admission {
	return &admission{
		slots:   make(chan struct{}, inflight),
		maxWait: int64(maxQueue),
	}
}

// admit takes an execution slot, waiting in line when none is free.
// It reports false — without blocking — when the line is full.
func (a *admission) admit() bool {
	select {
	case a.slots <- struct{}{}:
		return true
	default:
	}
	if a.waiting.Add(1) > a.maxWait {
		a.waiting.Add(-1)
		return false
	}
	a.slots <- struct{}{}
	a.waiting.Add(-1)
	return true
}

// release frees an execution slot.
func (a *admission) release() { <-a.slots }

// waitDepth is the number of requests currently blocked in the waiting
// line — the queue a shed request failed to join.
func (a *admission) waitDepth() int64 { return a.waiting.Load() }

// depth is the current admission depth: queries executing plus waiting.
func (a *admission) depth() int64 { return int64(len(a.slots)) + a.waiting.Load() }

// capacity is the depth at which requests start being shed.
func (a *admission) capacity() int64 { return int64(cap(a.slots)) + a.maxWait }
