package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"credo/internal/graph"
	"credo/internal/telemetry"
)

// Handler returns the query-plane HTTP API. The ops plane (Prometheus
// metrics, expvar, pprof) is a separate telemetry.Server on its own
// port, so operational scraping never competes with queries for the
// admission gate.
//
//	GET  /healthz              liveness
//	GET  /v1/graphs            registered graphs with metadata
//	GET  /v1/graphs/{name}     one graph's metadata
//	POST /v1/load?graph=NAME   register an on-disk graph (LoadSpec body)
//	POST /v1/query?graph=NAME&engine=E
//	                           posterior query (evidence + nodes body)
//	POST /v1/update?graph=NAME graph delta (updates body): mutate the
//	                           resident in place and re-converge its
//	                           warm snapshot from the delta frontier
//
// ?graph= may be omitted when exactly one graph is registered.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /v1/graphs", s.handleGraphs)
	mux.HandleFunc("GET /v1/graphs/{name}", s.handleGraph)
	mux.HandleFunc("POST /v1/load", s.handleLoad)
	mux.HandleFunc("POST /v1/query", s.handleQuery)
	mux.HandleFunc("POST /v1/update", s.handleUpdate)
	return mux
}

// graphInfo is the wire shape of a registry entry.
type graphInfo struct {
	Name       string         `json:"name"`
	Nodes      int            `json:"nodes"`
	Edges      int            `json:"edges"`
	States     int            `json:"states"`
	Warm       bool           `json:"warm"`
	Generation uint64         `json:"generation"`
	Metadata   graph.Metadata `json:"metadata"`
}

func (s *Server) info(r *Resident) graphInfo {
	md := r.Metadata()
	return graphInfo{
		Name:       r.Name,
		Nodes:      md.NumNodes,
		Edges:      md.NumEdges,
		States:     md.States,
		Warm:       r.HasWarm(),
		Generation: r.Generation(),
		Metadata:   md,
	}
}

func (s *Server) handleGraphs(w http.ResponseWriter, _ *http.Request) {
	infos := make([]graphInfo, 0)
	for _, name := range s.Names() {
		if r, ok := s.Get(name); ok {
			infos = append(infos, s.info(r))
		}
	}
	writeJSON(w, http.StatusOK, infos)
}

func (s *Server) handleGraph(w http.ResponseWriter, req *http.Request) {
	r, ok := s.Get(req.PathValue("name"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown graph %q", req.PathValue("name")))
		return
	}
	writeJSON(w, http.StatusOK, s.info(r))
}

// loadPayload is the POST /v1/load body: an optional name (the ?graph=
// parameter wins) plus the file spec.
type loadPayload struct {
	Name string `json:"name"`
	LoadSpec
}

func (s *Server) handleLoad(w http.ResponseWriter, req *http.Request) {
	var p loadPayload
	if err := decodeStrict(req, &p); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	name := req.URL.Query().Get("graph")
	if name == "" {
		name = p.Name
	}
	r, err := s.LoadFiles(name, p.LoadSpec)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, s.info(r))
}

func (s *Server) handleQuery(w http.ResponseWriter, req *http.Request) {
	r, ok := s.resident(req)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown graph (set ?graph=, see GET /v1/graphs)")
		return
	}
	engine, err := ParseEngine(req.URL.Query().Get("engine"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	// Auto-engine queries route through the cross-query batcher when it
	// is enabled: same-graph requests accumulate for up to BatchWindow
	// (or until BatchK lanes fill) and run as one SoA batch, paying one
	// admission slot and one structure pass for the whole flush. Explicit
	// engine overrides keep the solo path.
	if s.cfg.BatchK > 1 && (engine == EngineAuto || engine == EngineBatch) {
		s.handleBatchedQuery(w, req, r)
		return
	}

	tr := s.cfg.Tracer.Start("query")
	defer tr.Finish()

	admit := tr.Span("admit")
	admitted := s.adm.admit()
	admit.End()
	if !admitted {
		s.shed(tr)
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.cfg.RetryAfter)))
		writeError(w, http.StatusTooManyRequests, "server saturated, retry later")
		return
	}
	defer s.adm.release()

	dec := tr.Span("decode")
	body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, maxQueryBytes))
	if err != nil {
		dec.End()
		writeError(w, http.StatusBadRequest, fmt.Sprintf("read query: %v", err))
		return
	}
	rq, err := r.DecodeQuery(body)
	dec.End()
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	resp, err := s.queryResident(r, engine, rq, tr)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	s.emit(telemetry.Event{
		Kind:      telemetry.KindServe,
		Engine:    "serve.query",
		Worker:    -1,
		Impl:      resp.Engine,
		Variant:   s.variant,
		Warm:      resp.Warm,
		Converged: resp.Converged,
		Updated:   resp.Updates,
		Iter:      int32(resp.Iterations),
		BusyNs:    resp.WallNs,
		Active:    s.adm.depth(),
		Items:     s.adm.capacity(),
	})
	writeJSON(w, http.StatusOK, resp)
}

// shed flags the trace and emits the single serve.shed event for one
// rejected request, carrying the Retry-After hint actually sent on the
// wire and the waiting-line depth at rejection time — the two numbers a
// backoff post-mortem needs side by side.
func (s *Server) shed(tr *telemetry.Trace) {
	tr.MarkShed()
	s.emit(telemetry.Event{
		Kind:          telemetry.KindServe,
		Engine:        "serve.shed",
		Worker:        -1,
		Active:        s.adm.depth(),
		Items:         s.adm.capacity(),
		RetryAfterSec: int64(retryAfterSeconds(s.cfg.RetryAfter)),
		Waiting:       s.adm.waitDepth(),
	})
}

// handleBatchedQuery enqueues one request on the resident's batcher and
// blocks until its flush completes. Admission happens per flush inside
// the batcher; a shed flush surfaces here as errSaturated and keeps the
// solo path's 429 contract. Each batched request still emits its own
// serve.query event, so the per-query counters stay comparable across
// batched and solo serving.
func (s *Server) handleBatchedQuery(w http.ResponseWriter, req *http.Request, r *Resident) {
	tr := s.cfg.Tracer.Start("query")
	defer tr.Finish()

	dec := tr.Span("decode")
	body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, maxQueryBytes))
	if err != nil {
		dec.End()
		writeError(w, http.StatusBadRequest, fmt.Sprintf("read query: %v", err))
		return
	}
	rq, err := r.DecodeQuery(body)
	dec.End()
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	resp, err := s.batcherFor(r).enqueue(rq, tr)
	if err != nil {
		if errors.Is(err, errSaturated) {
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.cfg.RetryAfter)))
			writeError(w, http.StatusTooManyRequests, "server saturated, retry later")
			return
		}
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	s.emit(telemetry.Event{
		Kind:      telemetry.KindServe,
		Engine:    "serve.query",
		Worker:    -1,
		Impl:      resp.Engine,
		Variant:   s.variant,
		Batched:   true,
		Warm:      resp.Warm,
		Converged: resp.Converged,
		Updated:   resp.Updates,
		Iter:      int32(resp.Iterations),
		BusyNs:    resp.WallNs,
		Active:    s.adm.depth(),
		Items:     s.adm.capacity(),
	})
	writeJSON(w, http.StatusOK, resp)
}

// handleUpdate applies a delta batch to the resident and re-converges
// its warm snapshot. The re-convergence is a propagation run, so the
// request pays an admission slot exactly like a query; a full line
// sheds it with the same 429 contract.
func (s *Server) handleUpdate(w http.ResponseWriter, req *http.Request) {
	r, ok := s.resident(req)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown graph (set ?graph=, see GET /v1/graphs)")
		return
	}
	if !s.adm.admit() {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.cfg.RetryAfter)))
		writeError(w, http.StatusTooManyRequests, "server saturated, retry later")
		return
	}
	defer s.adm.release()

	body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, maxQueryBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("read update: %v", err))
		return
	}
	ru, err := r.DecodeUpdate(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	resp, err := s.UpdateResident(r, ru)
	if err != nil {
		if resp != nil {
			// An operation was rejected after a prefix already landed (or
			// re-convergence failed after the whole batch did): return the
			// structured response alongside the error so the client sees
			// Applied and Generation and can resync, instead of parsing
			// the position out of the error string.
			resp.Error = err.Error()
			writeJSON(w, http.StatusBadRequest, resp)
			return
		}
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.emit(telemetry.Event{
		Kind:      telemetry.KindServe,
		Engine:    "serve.update",
		Worker:    -1,
		Variant:   s.variant,
		Warm:      resp.Warm,
		Converged: resp.Converged,
		Updated:   resp.Updates,
		Iter:      int32(resp.Applied),
		BusyNs:    resp.WallNs,
		Active:    s.adm.depth(),
		Items:     s.adm.capacity(),
	})
	writeJSON(w, http.StatusOK, resp)
}

// resident resolves the target graph of a request: ?graph= when given,
// the sole registered graph otherwise.
func (s *Server) resident(req *http.Request) (*Resident, bool) {
	if name := req.URL.Query().Get("graph"); name != "" {
		return s.Get(name)
	}
	return s.only()
}

func (s *Server) emit(e telemetry.Event) {
	if s.cfg.Probe != nil {
		s.cfg.Probe.Emit(e)
	}
}

func retryAfterSeconds(d time.Duration) int {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// decodeStrict decodes one JSON document from the request body,
// rejecting unknown fields and trailing data.
func decodeStrict(req *http.Request, v any) error {
	dec := json.NewDecoder(io.LimitReader(req.Body, maxQueryBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decode body: %w", err)
	}
	if _, err := dec.Token(); !errors.Is(err, io.EOF) {
		return fmt.Errorf("trailing data after body")
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
