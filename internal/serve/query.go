package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"
)

// Engine override names accepted by queries (?engine= or
// Config default). Empty and "auto" both mean automatic selection.
const (
	EngineAuto     = "auto"
	EngineNode     = "node"
	EngineEdge     = "edge"
	EngineResidual = "residual"
	EngineRelax    = "relax"
	EnginePool     = "pool"
	// EngineBatch requests the cross-query batcher explicitly; auto
	// routes there too whenever batching is enabled (Config.BatchK > 1).
	EngineBatch = "batch"
)

// queryPayload is the wire shape of a posterior query. Evidence is a
// list, not a map, so duplicate clamps of one node are visible to the
// decoder (encoding/json silently merges duplicate object keys) and are
// rejected.
type queryPayload struct {
	Evidence []evidencePayload `json:"evidence"`
	Nodes    []string          `json:"nodes"`
}

type evidencePayload struct {
	Node  string `json:"node"`
	State *int   `json:"state"`
}

// ResolvedQuery is a decoded, validated query bound to one resident:
// evidence as (node id, state) pairs plus the dense per-node view the
// warm-start diff needs, and the resolved response node set (nil = all).
type ResolvedQuery struct {
	evidence []evPair
	dense    []int32 // per-node clamped state, -1 = unobserved
	nodes    []int32 // nil means every node
}

type evPair struct {
	node  int32
	state int32
}

// maxQueryBytes bounds a query document; the HTTP layer enforces the
// same limit on request bodies.
const maxQueryBytes = 1 << 20

// DecodeQuery parses and validates a posterior-query document against
// the resident's node space. It is strict by construction — unknown
// fields, trailing data, unresolvable or duplicate evidence nodes,
// missing or out-of-range states and malformed JSON all error and never
// panic (locked by FuzzQueryDecode).
func (r *Resident) DecodeQuery(data []byte) (*ResolvedQuery, error) {
	if len(data) > maxQueryBytes {
		return nil, fmt.Errorf("serve: query document exceeds %d bytes", maxQueryBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var q queryPayload
	if err := dec.Decode(&q); err != nil {
		return nil, fmt.Errorf("serve: decode query: %w", err)
	}
	// One JSON value per document: trailing content is a malformed (or
	// smuggled) request, not data to ignore.
	if _, err := dec.Token(); !errors.Is(err, io.EOF) {
		return nil, fmt.Errorf("serve: trailing data after query document")
	}

	rq := &ResolvedQuery{
		dense: make([]int32, r.base.NumNodes),
	}
	for i := range rq.dense {
		rq.dense[i] = -1
	}
	for _, e := range q.Evidence {
		v, err := r.resolveNode(e.Node)
		if err != nil {
			return nil, fmt.Errorf("serve: evidence: %w", err)
		}
		if e.State == nil {
			return nil, fmt.Errorf("serve: evidence for %q has no state", e.Node)
		}
		st := *e.State
		if st < 0 || st >= r.base.States {
			return nil, fmt.Errorf("serve: evidence state %d for %q out of range [0,%d)", st, e.Node, r.base.States)
		}
		if rq.dense[v] != -1 {
			return nil, fmt.Errorf("serve: duplicate evidence for node %q", e.Node)
		}
		rq.dense[v] = int32(st)
		rq.evidence = append(rq.evidence, evPair{node: v, state: int32(st)})
	}
	for _, n := range q.Nodes {
		v, err := r.resolveNode(n)
		if err != nil {
			return nil, fmt.Errorf("serve: nodes: %w", err)
		}
		rq.nodes = append(rq.nodes, v)
	}
	return rq, nil
}

// resolveNode maps a wire node reference — a name or a decimal id — to
// a node index.
func (r *Resident) resolveNode(s string) (int32, error) {
	if s == "" {
		return 0, fmt.Errorf("empty node reference")
	}
	if v, ok := r.names[s]; ok {
		return v, nil
	}
	id, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("unknown node %q", s)
	}
	if id < 0 || id >= r.base.NumNodes {
		return 0, fmt.Errorf("node id %d out of range [0,%d)", id, r.base.NumNodes)
	}
	return int32(id), nil
}

// ParseEngine validates an engine override, mapping "" to EngineAuto.
func ParseEngine(s string) (string, error) {
	switch s {
	case "", EngineAuto:
		return EngineAuto, nil
	case EngineNode, EngineEdge, EngineResidual, EngineRelax, EnginePool, EngineBatch:
		return s, nil
	}
	return "", fmt.Errorf("serve: unknown engine %q (want auto, node, edge, residual, relax, pool or batch)", s)
}
