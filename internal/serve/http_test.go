package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"credo/internal/telemetry"
)

// newHTTPServer stands up the query plane over a grid resident with a
// Metrics sink attached, returning the test server and the sink.
func newHTTPServer(t *testing.T, cfg Config) (*Server, *httptest.Server, *telemetry.Metrics) {
	t.Helper()
	m := &telemetry.Metrics{}
	cfg.Probe = m
	s, _ := newGridServer(t, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, m
}

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func TestHTTPQueryRoundTrip(t *testing.T) {
	_, ts, m := newHTTPServer(t, Config{})

	// Liveness and registry listing.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/graphs")
	if err != nil {
		t.Fatal(err)
	}
	var infos []graphInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(infos) != 1 || infos[0].Name != "grid" || infos[0].Nodes != 256 {
		t.Fatalf("graphs listing = %+v", infos)
	}

	// First query: cold, converged, full belief map.
	hr, body := postJSON(t, ts.URL+"/v1/query", `{"evidence":[{"node":"136","state":1}]}`)
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("query = %d: %s", hr.StatusCode, body)
	}
	var qr Response
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatalf("response is not valid JSON: %v\n%s", err, body)
	}
	if qr.Warm || !qr.Converged || len(qr.Beliefs) != 256 {
		t.Fatalf("first query: warm=%v converged=%v beliefs=%d", qr.Warm, qr.Converged, len(qr.Beliefs))
	}

	// Second query: warm path over HTTP.
	hr, body = postJSON(t, ts.URL+"/v1/query?graph=grid&engine=residual",
		`{"evidence":[{"node":"136","state":1},{"node":"40","state":0}],"nodes":["40","136"]}`)
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("warm query = %d: %s", hr.StatusCode, body)
	}
	var warm Response
	if err := json.Unmarshal(body, &warm); err != nil {
		t.Fatal(err)
	}
	if !warm.Warm || !warm.Converged || len(warm.Beliefs) != 2 {
		t.Fatalf("warm query: warm=%v converged=%v beliefs=%d", warm.Warm, warm.Converged, len(warm.Beliefs))
	}

	// The Metrics sink saw both queries and one warm start.
	var text bytes.Buffer
	m.WriteText(&text)
	for _, want := range []string{"credo_serve_queries_total 2", "credo_serve_warm_total 1"} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("metrics text misses %q:\n%s", want, text.String())
		}
	}
}

func TestHTTPErrorPaths(t *testing.T) {
	_, ts, _ := newHTTPServer(t, Config{})
	cases := []struct {
		name, url, body string
		status          int
	}{
		{"unknown graph", "/v1/query?graph=nope", `{}`, http.StatusNotFound},
		{"unknown engine", "/v1/query?engine=openmp", `{}`, http.StatusBadRequest},
		{"malformed body", "/v1/query", `{"evidence":`, http.StatusBadRequest},
		{"unknown node", "/v1/query", `{"evidence":[{"node":"bogus","state":0}]}`, http.StatusBadRequest},
		{"duplicate evidence", "/v1/query",
			`{"evidence":[{"node":"0","state":0},{"node":"0","state":1}]}`, http.StatusBadRequest},
		{"bad load spec", "/v1/load?graph=x", `{}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			hr, body := postJSON(t, ts.URL+tc.url, tc.body)
			if hr.StatusCode != tc.status {
				t.Fatalf("status = %d, want %d (%s)", hr.StatusCode, tc.status, body)
			}
			var e map[string]string
			if err := json.Unmarshal(body, &e); err != nil || e["error"] == "" {
				t.Fatalf("error body is not {\"error\":...}: %s", body)
			}
		})
	}

	resp, err := http.Get(ts.URL + "/v1/graphs/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown graph detail = %d", resp.StatusCode)
	}
}

func TestHTTPLoadEndpointSprinkler(t *testing.T) {
	m := &telemetry.Metrics{}
	s := New(Config{MRF: true, Probe: m})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	hr, body := postJSON(t, ts.URL+"/v1/load?graph=sprinkler",
		`{"bif":`+strconv.Quote(sprinklerPath())+`}`)
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("load = %d: %s", hr.StatusCode, body)
	}
	var info graphInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.Name != "sprinkler" || info.Nodes != 4 {
		t.Fatalf("load info = %+v", info)
	}

	hr, body = postJSON(t, ts.URL+"/v1/query",
		`{"evidence":[{"node":"wetgrass","state":1}],"nodes":["rain"]}`)
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("query after load = %d: %s", hr.StatusCode, body)
	}
	var qr Response
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if _, ok := qr.Beliefs["rain"]; !ok {
		t.Fatalf("rain posterior missing: %s", body)
	}
}

// TestHTTPShedsWithRetryAfter saturates the admission gate and locks the
// load-shedding contract: 429, Retry-After, JSON error body, and the
// shed counter on the metrics sink.
func TestHTTPShedsWithRetryAfter(t *testing.T) {
	s, ts, m := newHTTPServer(t, Config{MaxInFlight: 1, MaxQueue: 1, RetryAfter: 7 * time.Second})

	// Fill the slot and the waiting line directly — the gate is the unit
	// under test; occupying it with real long-running queries would make
	// the test timing-dependent.
	s.adm.slots <- struct{}{}
	s.adm.waiting.Add(1)
	defer func() {
		<-s.adm.slots
		s.adm.waiting.Add(-1)
	}()

	hr, body := postJSON(t, ts.URL+"/v1/query", `{}`)
	if hr.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated query = %d: %s", hr.StatusCode, body)
	}
	if got := hr.Header.Get("Retry-After"); got != "7" {
		t.Fatalf("Retry-After = %q, want \"7\"", got)
	}
	var e map[string]string
	if err := json.Unmarshal(body, &e); err != nil || e["error"] == "" {
		t.Fatalf("shed body is not {\"error\":...}: %s", body)
	}

	var text bytes.Buffer
	m.WriteText(&text)
	if !strings.Contains(text.String(), "credo_serve_shed_total 1") {
		t.Errorf("metrics text misses the shed counter:\n%s", text.String())
	}
}
