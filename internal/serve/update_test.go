package serve

import (
	"math"
	"testing"

	"credo/internal/bp"
	"credo/internal/graph"
)

// coldOracle converges a from-priors run of the resident's current base
// under the given dense evidence and returns the graph — the reference
// any served beliefs for that evidence are judged against.
func coldOracle(t *testing.T, r *Resident, evidence map[int32]int) *graph.Graph {
	t.Helper()
	o := r.base.Clone()
	o.ResetBeliefs()
	for v, s := range evidence {
		if err := o.Observe(v, s); err != nil {
			t.Fatal(err)
		}
	}
	if res := bp.RunResidual(o, bp.Options{}); !res.Converged {
		t.Fatalf("cold oracle did not converge (delta %g)", res.FinalDelta)
	}
	return o
}

// worstGap compares a response's belief map against an oracle graph.
func worstGap(t *testing.T, r *Resident, resp *Response, oracle *graph.Graph) float64 {
	t.Helper()
	worst := 0.0
	for v := int32(0); v < int32(oracle.NumNodes); v++ {
		got, ok := resp.Beliefs[r.nodeLabel(v)]
		if !ok {
			t.Fatalf("response missing node %d", v)
		}
		for i, w := range oracle.Belief(v) {
			if d := math.Abs(float64(got[i]) - float64(w)); d > worst {
				worst = d
			}
		}
	}
	return worst
}

// TestWarmSnapshotStaleAfterBaseMutation is the staleness regression
// test: once the base graph is mutated out-of-band (not through
// UpdateResident, which republishes a re-converged snapshot), the old
// fixpoint must be unreachable. Before generation keying, the second
// query here — same evidence as the first, so an empty perturbation
// frontier — would have adopted the stale snapshot, applied zero
// updates and served the pre-mutation posteriors verbatim.
func TestWarmSnapshotStaleAfterBaseMutation(t *testing.T) {
	s, r := newGridServer(t, Config{})
	q := decode(t, r, `{"evidence":[{"node":"17","state":1}]}`)
	first, err := s.QueryResident(r, EngineResidual, q)
	if err != nil {
		t.Fatal(err)
	}
	if !first.Converged || !r.HasWarm() {
		t.Fatalf("first query converged=%v warm-cached=%v", first.Converged, r.HasWarm())
	}
	genBefore := r.Generation()

	// Out-of-band base mutation: an operator (or a test) reaching past
	// the update endpoint straight into the delta layer.
	if err := r.base.UpdatePrior(40, []float32{0.95, 0.05}); err != nil {
		t.Fatal(err)
	}
	if r.Generation() == genBefore {
		t.Fatal("mutation did not advance the generation")
	}
	if r.HasWarm() {
		t.Fatal("stale warm snapshot still reachable after base mutation")
	}

	second, err := s.QueryResident(r, EngineResidual, decode(t, r, `{"evidence":[{"node":"17","state":1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if second.Warm {
		t.Fatal("query after base mutation took the warm path from a stale fixpoint")
	}
	if !second.Converged {
		t.Fatalf("post-mutation cold query did not converge (delta %g)", second.FinalDelta)
	}
	oracle := coldOracle(t, r, map[int32]int{17: 1})
	if gap := worstGap(t, r, second, oracle); gap > float64(WarmTol) {
		t.Errorf("post-mutation beliefs off by %g (want <= %g) — stale state leaked into the answer", gap, float64(WarmTol))
	}
	// The mutation seeds stay drained into nothing: the next converged
	// query re-arms the cache at the current generation.
	r.base.TakeDeltaSeeds()
	if !r.HasWarm() {
		t.Fatal("converged post-mutation query did not re-arm the warm cache")
	}
}

// TestUpdateReconvergesWarmSnapshot drives the endpoint's whole point:
// after a prior-drift delta, the warm snapshot has been re-converged in
// place, the next same-evidence query is served warm with zero or near
// zero work, and its beliefs match a cold run of the mutated graph.
func TestUpdateReconvergesWarmSnapshot(t *testing.T) {
	s, r := newGridServer(t, Config{})
	q := decode(t, r, `{"evidence":[{"node":"136","state":1}]}`)
	if _, err := s.QueryResident(r, EngineResidual, q); err != nil {
		t.Fatal(err)
	}

	ru, err := r.DecodeUpdate([]byte(`{"updates":[
		{"op":"prior","node":"40","prior":[0.9,0.1]},
		{"op":"evidence","node":"200","state":0},
		{"op":"prior","node":"41","prior":[0.2,0.8]}
	]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := s.UpdateResident(r, ru)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Applied != 3 || resp.Structural {
		t.Fatalf("applied=%d structural=%v, want 3/false", resp.Applied, resp.Structural)
	}
	if !resp.Converged || !resp.Warm {
		t.Fatalf("update did not re-converge the snapshot (converged=%v warm=%v)", resp.Converged, resp.Warm)
	}
	if resp.Updates == 0 {
		t.Fatal("re-convergence applied no belief updates for a non-trivial delta")
	}
	if resp.Generation != r.Generation() {
		t.Fatalf("response generation %d, resident at %d", resp.Generation, r.Generation())
	}
	if !r.HasWarm() {
		t.Fatal("snapshot not re-published under the new generation")
	}

	oracle := coldOracle(t, r, map[int32]int{136: 1})
	cold := bp.RunResidual(func() *graph.Graph {
		g := r.base.Clone()
		g.ResetBeliefs()
		if err := g.Observe(136, 1); err != nil {
			t.Fatal(err)
		}
		return g
	}(), bp.Options{})
	warm, err := s.QueryResident(r, EngineResidual, decode(t, r, `{"evidence":[{"node":"136","state":1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Warm {
		t.Fatal("query after non-structural update did not take the warm path")
	}
	if gap := worstGap(t, r, warm, oracle); gap > float64(WarmTol) {
		t.Errorf("warm post-update beliefs off by %g (want <= %g)", gap, float64(WarmTol))
	}
	if warm.Updates >= cold.Ops.NodesProcessed {
		t.Errorf("warm post-update query applied %d updates, cold %d — warm start bought nothing",
			warm.Updates, cold.Ops.NodesProcessed)
	}
}

// TestUpdateStructuralInvalidatesWarm: edge adds reshape the graph, so
// the snapshot is dropped rather than re-converged, the next query runs
// cold, and its answer reflects the new edge.
func TestUpdateStructuralInvalidatesWarm(t *testing.T) {
	s, r := newGridServer(t, Config{})
	if _, err := s.QueryResident(r, EngineResidual, decode(t, r, `{"evidence":[{"node":"17","state":1}]}`)); err != nil {
		t.Fatal(err)
	}
	edgesBefore := r.base.NumEdges

	ru, err := r.DecodeUpdate([]byte(`{"updates":[{"op":"edge","src":"3","dst":"250"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := s.UpdateResident(r, ru)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Structural {
		t.Fatal("edge add not reported structural")
	}
	if r.HasWarm() {
		t.Fatal("warm snapshot survived a structural delta")
	}
	if r.base.NumEdges != edgesBefore+1 {
		t.Fatalf("base has %d edges, want %d", r.base.NumEdges, edgesBefore+1)
	}

	second, err := s.QueryResident(r, EngineResidual, decode(t, r, `{"evidence":[{"node":"17","state":1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if second.Warm {
		t.Fatal("query after structural update took the warm path")
	}
	oracle := coldOracle(t, r, map[int32]int{17: 1})
	if gap := worstGap(t, r, second, oracle); gap > float64(WarmTol) {
		t.Errorf("post-structural-update beliefs off by %g (want <= %g)", gap, float64(WarmTol))
	}
}

// TestUpdateRefreshesMetadata is the stale-statistics regression test:
// the cached Metadata (registry listing, engine-selector inputs) is
// computed at load, so before the refresh a structural delta left
// /v1/graphs reporting the pre-merge edge count forever.
func TestUpdateRefreshesMetadata(t *testing.T) {
	s, r := newGridServer(t, Config{})
	before := r.Metadata()

	ru, err := r.DecodeUpdate([]byte(`{"updates":[{"op":"edge","src":"3","dst":"250"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.UpdateResident(r, ru); err != nil {
		t.Fatal(err)
	}
	after := r.Metadata()
	if after.NumEdges != before.NumEdges+1 {
		t.Fatalf("metadata reports %d edges after the edge add, want %d", after.NumEdges, before.NumEdges+1)
	}

	// A numeric delta reshapes nothing; the statistics must not churn.
	ru, err = r.DecodeUpdate([]byte(`{"updates":[{"op":"prior","node":"17","prior":[0.9,0.1]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.UpdateResident(r, ru); err != nil {
		t.Fatal(err)
	}
	if got := r.Metadata().NumEdges; got != after.NumEdges {
		t.Fatalf("numeric delta moved the edge count: %d -> %d", after.NumEdges, got)
	}
}

// TestUpdateIgnoresStaleWarmSnapshot is the stale-adoption regression
// test. The race: a query leased at generation G converges slowly; a
// /v1/update meanwhile moves the base to G+1 and republishes a
// re-converged fixpoint; the late query then stores its gen-G snapshot.
// Two defences must both hold: the monotonic store refuses to clobber
// the fresher fixpoint, and — even if a stale snapshot is the only one
// in storage — the update path refuses to adopt a snapshot whose
// generation is not the pre-update base's, because the earlier update's
// frontier is already drained and re-converging from the stale fixpoint
// would publish beliefs that never saw that update's changes.
func TestUpdateIgnoresStaleWarmSnapshot(t *testing.T) {
	s, r := newGridServer(t, Config{})
	if _, err := s.QueryResident(r, EngineResidual, decode(t, r, `{"evidence":[{"node":"17","state":1}]}`)); err != nil {
		t.Fatal(err)
	}
	r.warmMu.Lock()
	stale := r.warm
	r.warmMu.Unlock()
	if stale == nil {
		t.Fatal("first query did not arm the warm cache")
	}

	// The update clamps a node near the queried region and republishes a
	// re-converged snapshot at the new generation.
	ru, err := r.DecodeUpdate([]byte(`{"updates":[{"op":"evidence","node":"16","state":0}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := s.UpdateResident(r, ru)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Warm || !resp.Converged {
		t.Fatalf("update did not republish the snapshot (warm=%v converged=%v)", resp.Warm, resp.Converged)
	}

	// The slow query publishes late: the monotonic store must keep the
	// fresher fixpoint.
	r.storeSnapshotBeliefs(stale.beliefs, stale.evidence, stale.gen)
	if snap := r.snapshot(); snap == nil || snap.gen != r.Generation() {
		t.Fatal("late stale publication clobbered the re-converged snapshot")
	}

	// Force the hazardous precondition anyway — the stale fixpoint is
	// the only snapshot in storage — and drive another non-structural
	// update through. It must go cold, not seed from the stale fixpoint
	// with only its own frontier.
	r.InvalidateWarm()
	r.storeSnapshotBeliefs(stale.beliefs, stale.evidence, stale.gen)
	ru, err = r.DecodeUpdate([]byte(`{"updates":[{"op":"prior","node":"200","prior":[0.9,0.1]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp, err = s.UpdateResident(r, ru)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Warm {
		t.Fatal("update adopted a warm snapshot from a stale generation")
	}
	if r.HasWarm() {
		t.Fatal("stale snapshot still reachable after the update dropped it")
	}

	// The next query runs cold against the fully-mutated base; its
	// posteriors must reflect the first update's clamp (the information a
	// stale-seeded re-convergence would have dropped).
	q, err := s.QueryResident(r, EngineResidual, decode(t, r, `{"evidence":[{"node":"17","state":1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if q.Warm {
		t.Fatal("post-update query warm-started from a stale fixpoint")
	}
	oracle := coldOracle(t, r, map[int32]int{17: 1})
	if gap := worstGap(t, r, q, oracle); gap > float64(WarmTol) {
		t.Errorf("post-update beliefs off by %g (want <= %g) — stale fixpoint leaked into the answer", gap, float64(WarmTol))
	}
}

// TestUpdateRejectedMidBatchReportsApplied: a rejection mid-batch keeps
// the applied prefix committed, and the structured response comes back
// alongside the error so a client can resync from Applied and
// Generation instead of parsing the position out of the error string.
func TestUpdateRejectedMidBatchReportsApplied(t *testing.T) {
	s, r := newGridServer(t, Config{})
	genBefore := r.Generation()
	ru, err := r.DecodeUpdate([]byte(`{"updates":[
		{"op":"prior","node":"40","prior":[0.9,0.1]},
		{"op":"retract","node":"41"},
		{"op":"prior","node":"42","prior":[0.2,0.8]}
	]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := s.UpdateResident(r, ru)
	if err == nil {
		t.Fatal("retract of an unclamped node applied without error")
	}
	if resp == nil {
		t.Fatal("rejected update returned no structured response")
	}
	if resp.Applied != 1 {
		t.Errorf("applied = %d, want 1 (the prefix before the rejected op)", resp.Applied)
	}
	if resp.Generation != r.Generation() {
		t.Errorf("response generation %d, resident at %d", resp.Generation, r.Generation())
	}
	if resp.Generation == genBefore {
		t.Error("committed prefix did not advance the generation")
	}
}

// TestUpdateDecodeRejects locks the decoder's strictness contract.
func TestUpdateDecodeRejects(t *testing.T) {
	_, r := newGridServer(t, Config{})
	for name, doc := range map[string]string{
		"empty":         `{"updates":[]}`,
		"unknown-op":    `{"updates":[{"op":"rename","node":"3"}]}`,
		"unknown-field": `{"updates":[{"op":"prior","node":"3","prior":[0.5,0.5]}],"extra":1}`,
		"no-state":      `{"updates":[{"op":"evidence","node":"3"}]}`,
		"bad-state":     `{"updates":[{"op":"evidence","node":"3","state":7}]}`,
		"bad-node":      `{"updates":[{"op":"retract","node":"nope"}]}`,
		"short-prior":   `{"updates":[{"op":"prior","node":"3","prior":[1.0]}]}`,
		"short-matrix":  `{"updates":[{"op":"edge","src":"3","dst":"9","mat":[0.5]}]}`,
		"trailing":      `{"updates":[{"op":"retract","node":"3"}]}{}`,
	} {
		if _, err := r.DecodeUpdate([]byte(doc)); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
	// Apply-time rejection: retracting a clamp the update path never
	// placed surfaces the delta layer's error and reports the position.
	ru, err := r.DecodeUpdate([]byte(`{"updates":[{"op":"retract","node":"3"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{})
	if _, err := s.UpdateResident(r, ru); err == nil {
		t.Error("retract of an unclamped node applied without error")
	}
}
