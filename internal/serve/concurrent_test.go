package serve

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"credo/internal/enginetest"
	"credo/internal/graph"
)

// TestConcurrentQueriesMatchOracle is the serving-layer differential
// test: many goroutines fire mixed-evidence queries at one resident —
// warm and cold starts interleaving, snapshots racing to publish — and
// every response must land within the cross-engine tolerance of a fresh
// single-threaded oracle run of the same evidence. Run under -race in CI.
func TestConcurrentQueriesMatchOracle(t *testing.T) {
	s, r := newGridServer(t, Config{Workers: 2, MaxInFlight: 8})

	// The evidence mix: disjoint clamps so consecutive queries genuinely
	// perturb each other's snapshots, plus the evidence-free query so
	// retraction races too.
	docs := []string{
		`{}`,
		`{"evidence":[{"node":"136","state":1}]}`,
		`{"evidence":[{"node":"40","state":0}]}`,
		`{"evidence":[{"node":"136","state":1},{"node":"40","state":0}]}`,
		`{"evidence":[{"node":"200","state":1}]}`,
	}

	// Oracle posteriors per evidence set, computed single-threaded on a
	// fresh clone with the reference sweep engine.
	oracles := make([]*graph.Graph, len(docs))
	for i, doc := range docs {
		rq := decode(t, r, doc)
		g := r.base.Clone()
		for _, ev := range rq.evidence {
			if err := g.Observe(ev.node, int(ev.state)); err != nil {
				t.Fatal(err)
			}
		}
		if res := enginetest.Oracle(g); !res.Converged {
			t.Fatalf("oracle did not converge on %s (delta %g)", doc, res.FinalDelta)
		}
		oracles[i] = g
	}

	const (
		workers = 8
		rounds  = 6
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers*rounds)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				pick := (w + round) % len(docs)
				rq, err := r.DecodeQuery([]byte(docs[pick]))
				if err != nil {
					errs <- err
					return
				}
				resp, err := s.QueryResident(r, EngineAuto, rq)
				if err != nil {
					errs <- err
					return
				}
				if !resp.Converged {
					errs <- fmt.Errorf("worker %d round %d: not converged (delta %g)", w, round, resp.FinalDelta)
					return
				}
				if err := compareToOracle(resp, oracles[pick], r); err != nil {
					errs <- fmt.Errorf("worker %d round %d evidence %s: %w", w, round, docs[pick], err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// compareToOracle checks every reported posterior against the oracle
// graph's converged beliefs at the enginetest cross-engine tolerance
// (per-node L1, the same bound the batch engines are held to).
func compareToOracle(resp *Response, oracle *graph.Graph, r *Resident) error {
	for v := int32(0); v < int32(oracle.NumNodes); v++ {
		got, ok := resp.Beliefs[r.nodeLabel(v)]
		if !ok {
			return fmt.Errorf("node %d missing from response", v)
		}
		want := oracle.Belief(v)
		if len(got) != len(want) {
			return fmt.Errorf("node %d has %d states, oracle %d", v, len(got), len(want))
		}
		l1 := 0.0
		for i := range want {
			l1 += math.Abs(float64(got[i]) - float64(want[i]))
		}
		if l1 > float64(enginetest.DefaultTol) {
			return fmt.Errorf("node %d L1 distance %g exceeds %g (got %v, oracle %v)",
				v, l1, float64(enginetest.DefaultTol), got, want)
		}
	}
	return nil
}

// TestConcurrentLeasesAreIsolated: overlays leased to concurrent queries
// never alias, and the resident base never sees a clamp.
func TestConcurrentLeasesAreIsolated(t *testing.T) {
	_, r := newGridServer(t, Config{})
	a, _ := r.lease()
	b, _ := r.lease()
	if a == b {
		t.Fatal("two live leases alias the same overlay")
	}
	if a == r.base || b == r.base {
		t.Fatal("lease handed out the resident base")
	}
	if err := a.Observe(0, 1); err != nil {
		t.Fatal(err)
	}
	if r.base.Observed[0] || b.Observed[0] {
		t.Fatal("clamping one lease leaked into the base or a sibling lease")
	}
	r.release(a)
	c, _ := r.lease() // may reuse a's arrays — must come back pristine
	if c.Observed[0] {
		t.Fatal("recycled lease kept the previous query's evidence")
	}
	r.release(b)
	r.release(c)
}
