package serve

import (
	"fmt"
	"math"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"credo/internal/gen"
	"credo/internal/graph"
)

// testGrid builds the warm-start regression graph: a 16x16 lattice MRF,
// large enough that localized evidence perturbs only a region (the same
// graph the bp/relaxbp seeded-entry tests lock).
func testGrid(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := gen.Grid(16, 16, gen.Config{Seed: 5, States: 2, Shared: true, Keep: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func newGridServer(t *testing.T, cfg Config) (*Server, *Resident) {
	t.Helper()
	s := New(cfg)
	r, err := s.Load("grid", testGrid(t))
	if err != nil {
		t.Fatal(err)
	}
	return s, r
}

// decode resolves a query document against the resident or fails the test.
func decode(t *testing.T, r *Resident, doc string) *ResolvedQuery {
	t.Helper()
	rq, err := r.DecodeQuery([]byte(doc))
	if err != nil {
		t.Fatalf("DecodeQuery(%s): %v", doc, err)
	}
	return rq
}

// maxBeliefGap returns the largest per-entry belief distance between two
// responses covering the same node set.
func maxBeliefGap(t *testing.T, a, b *Response) float64 {
	t.Helper()
	if len(a.Beliefs) != len(b.Beliefs) {
		t.Fatalf("belief maps cover %d vs %d nodes", len(a.Beliefs), len(b.Beliefs))
	}
	worst := 0.0
	for name, av := range a.Beliefs {
		bv, ok := b.Beliefs[name]
		if !ok || len(av) != len(bv) {
			t.Fatalf("node %q missing or mis-shaped in second response", name)
		}
		for i := range av {
			if d := math.Abs(float64(av[i]) - float64(bv[i])); d > worst {
				worst = d
			}
		}
	}
	return worst
}

// sprinklerPath resolves the shared BIF fixture relative to this source
// file, mirroring the enginetest corpus loader.
func sprinklerPath() string {
	_, file, _, _ := runtime.Caller(0)
	return filepath.Join(filepath.Dir(file), "..", "bif", "testdata", "sprinkler.bif")
}

// TestWarmMatchesColdWithFewerUpdates is the serving-layer acceptance
// lock: a warm-started query must land within WarmTol of a cold start of
// the same evidence while applying measurably fewer belief updates.
func TestWarmMatchesColdWithFewerUpdates(t *testing.T) {
	for _, engine := range []string{EngineResidual, EngineRelax} {
		t.Run(engine, func(t *testing.T) {
			warmSrv, warmRes := newGridServer(t, Config{Workers: 2})
			q1 := decode(t, warmRes, `{"evidence":[{"node":"136","state":1}]}`)
			first, err := warmSrv.QueryResident(warmRes, engine, q1)
			if err != nil {
				t.Fatal(err)
			}
			if first.Warm {
				t.Fatal("first query claims a warm start on an empty cache")
			}
			if !first.Converged {
				t.Fatalf("first query did not converge (delta %g)", first.FinalDelta)
			}
			if !warmRes.HasWarm() {
				t.Fatal("converged query did not publish a warm snapshot")
			}

			q2 := decode(t, warmRes, `{"evidence":[{"node":"136","state":1},{"node":"40","state":0}]}`)
			warm, err := warmSrv.QueryResident(warmRes, engine, q2)
			if err != nil {
				t.Fatal(err)
			}
			if !warm.Warm {
				t.Fatal("second query did not take the warm path")
			}
			if !warm.Converged {
				t.Fatalf("warm query did not converge (delta %g)", warm.FinalDelta)
			}

			coldSrv, coldRes := newGridServer(t, Config{Workers: 2})
			cold, err := coldSrv.QueryResident(coldRes,
				engine, decode(t, coldRes, `{"evidence":[{"node":"136","state":1},{"node":"40","state":0}]}`))
			if err != nil {
				t.Fatal(err)
			}
			if cold.Warm || !cold.Converged {
				t.Fatalf("cold control: warm=%v converged=%v", cold.Warm, cold.Converged)
			}

			if gap := maxBeliefGap(t, warm, cold); gap > float64(WarmTol) {
				t.Errorf("warm beliefs diverge from cold by %g, tolerance %g", gap, float64(WarmTol))
			}
			if warm.Updates >= cold.Updates {
				t.Errorf("warm start applied %d updates, cold %d — warm must be measurably cheaper",
					warm.Updates, cold.Updates)
			}
		})
	}
}

// TestWarmIdenticalEvidenceIsFree locks the degenerate warm start: asking
// the converged question again touches nothing and returns the snapshot.
func TestWarmIdenticalEvidenceIsFree(t *testing.T) {
	s, r := newGridServer(t, Config{})
	doc := `{"evidence":[{"node":"136","state":1}]}`
	if _, err := s.QueryResident(r, EngineResidual, decode(t, r, doc)); err != nil {
		t.Fatal(err)
	}
	again, err := s.QueryResident(r, EngineResidual, decode(t, r, doc))
	if err != nil {
		t.Fatal(err)
	}
	if !again.Warm || !again.Converged {
		t.Fatalf("repeat query: warm=%v converged=%v", again.Warm, again.Converged)
	}
	if again.Updates != 0 {
		t.Errorf("identical-evidence warm start applied %d updates, want 0", again.Updates)
	}
}

// TestWarmEvidenceRetraction checks the un-clamp path: retracting
// evidence warm-starts back to (within tolerance of) the evidence-free
// posterior, because CopyStateFrom restores the base priors before the
// snapshot diff seeds the retracted node.
func TestWarmEvidenceRetraction(t *testing.T) {
	s, r := newGridServer(t, Config{})
	if _, err := s.QueryResident(r, EngineResidual,
		decode(t, r, `{"evidence":[{"node":"136","state":1}]}`)); err != nil {
		t.Fatal(err)
	}
	warm, err := s.QueryResident(r, EngineResidual, decode(t, r, `{}`))
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Warm || !warm.Converged {
		t.Fatalf("retraction query: warm=%v converged=%v", warm.Warm, warm.Converged)
	}

	coldSrv, coldRes := newGridServer(t, Config{})
	cold, err := coldSrv.QueryResident(coldRes, EngineResidual, decode(t, coldRes, `{}`))
	if err != nil {
		t.Fatal(err)
	}
	if gap := maxBeliefGap(t, warm, cold); gap > float64(WarmTol) {
		t.Errorf("retraction beliefs diverge from cold by %g, tolerance %g", gap, float64(WarmTol))
	}
}

// TestInvalidateWarmFallsBackCold locks the operator hook: dropping the
// snapshot sends the next query down the cold path.
func TestInvalidateWarmFallsBackCold(t *testing.T) {
	s, r := newGridServer(t, Config{})
	if _, err := s.QueryResident(r, EngineResidual,
		decode(t, r, `{"evidence":[{"node":"136","state":1}]}`)); err != nil {
		t.Fatal(err)
	}
	r.InvalidateWarm()
	if r.HasWarm() {
		t.Fatal("InvalidateWarm left a snapshot behind")
	}
	resp, err := s.QueryResident(r, EngineResidual, decode(t, r, `{}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Warm {
		t.Fatal("query after invalidation claims a warm start")
	}
}

// TestNonSeedableEngineStaysCold: explicit node/edge/pool overrides have
// no seeded entry point, so they must run cold even with a snapshot
// available — and their converged result must refresh the snapshot.
func TestNonSeedableEngineStaysCold(t *testing.T) {
	s, r := newGridServer(t, Config{Workers: 2})
	if _, err := s.QueryResident(r, EngineResidual,
		decode(t, r, `{"evidence":[{"node":"136","state":1}]}`)); err != nil {
		t.Fatal(err)
	}
	resp, err := s.QueryResident(r, EngineNode, decode(t, r, `{}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Warm {
		t.Fatal("node-engine query claims a warm start")
	}
	if !resp.Converged {
		t.Fatalf("node-engine query did not converge (delta %g)", resp.FinalDelta)
	}
}

// TestQueryBeliefsSubsetAndNormalization: requested node subsets come
// back exactly, and every reported posterior is a distribution.
func TestQueryBeliefsSubsetAndNormalization(t *testing.T) {
	s, r := newGridServer(t, Config{})
	resp, err := s.QueryResident(r, EngineAuto,
		decode(t, r, `{"evidence":[{"node":"0","state":1}],"nodes":["1","17","255"]}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Beliefs) != 3 {
		t.Fatalf("asked for 3 nodes, got %d", len(resp.Beliefs))
	}
	for _, name := range []string{"1", "17", "255"} {
		b, ok := resp.Beliefs[name]
		if !ok {
			t.Fatalf("node %q missing from response", name)
		}
		sum := 0.0
		for _, p := range b {
			if p < 0 || p > 1 {
				t.Fatalf("node %q belief %v outside [0,1]", name, b)
			}
			sum += float64(p)
		}
		if math.Abs(sum-1) > 1e-4 {
			t.Fatalf("node %q beliefs sum to %g", name, sum)
		}
	}
}

// TestDecodeQueryErrors locks the strict decoder: every malformed shape
// the fuzz target explores must error (never panic) deterministically.
func TestDecodeQueryErrors(t *testing.T) {
	_, r := newGridServer(t, Config{})
	cases := []struct{ name, doc string }{
		{"malformed json", `{"evidence":`},
		{"trailing data", `{} {}`},
		{"unknown field", `{"evidenze":[]}`},
		{"unknown node", `{"evidence":[{"node":"bogus","state":0}]}`},
		{"node id out of range", `{"evidence":[{"node":"999","state":0}]}`},
		{"negative node id", `{"evidence":[{"node":"-1","state":0}]}`},
		{"empty node", `{"evidence":[{"node":"","state":0}]}`},
		{"missing state", `{"evidence":[{"node":"0"}]}`},
		{"state out of range", `{"evidence":[{"node":"0","state":2}]}`},
		{"negative state", `{"evidence":[{"node":"0","state":-1}]}`},
		{"duplicate evidence", `{"evidence":[{"node":"0","state":0},{"node":"0","state":1}]}`},
		{"unknown response node", `{"nodes":["nope"]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := r.DecodeQuery([]byte(tc.doc)); err == nil {
				t.Fatalf("DecodeQuery(%s) accepted a malformed document", tc.doc)
			}
		})
	}
	if _, err := r.DecodeQuery([]byte(fmt.Sprintf(`{"nodes":[%q]}`, "0"))); err != nil {
		t.Fatalf("valid minimal document rejected: %v", err)
	}
}

// TestParseEngine locks the override vocabulary.
func TestParseEngine(t *testing.T) {
	for _, ok := range []string{"", "auto", "node", "edge", "residual", "relax", "pool"} {
		if _, err := ParseEngine(ok); err != nil {
			t.Errorf("ParseEngine(%q): %v", ok, err)
		}
	}
	if _, err := ParseEngine("openmp"); err == nil {
		t.Error("ParseEngine accepted an unknown engine")
	}
}

// TestAdmission exercises the two-stage gate directly: slots fill, the
// waiting line bounds blocking admits, and overflows shed immediately.
func TestAdmission(t *testing.T) {
	a := newAdmission(2, 1)
	if got := a.capacity(); got != 3 {
		t.Fatalf("capacity = %d, want 3", got)
	}
	if !a.admit() || !a.admit() {
		t.Fatal("free slots refused admission")
	}
	if got := a.depth(); got != 2 {
		t.Fatalf("depth = %d, want 2", got)
	}

	// Both slots busy: one waiter may block, so admit from a goroutine.
	waited := make(chan bool, 1)
	go func() { waited <- a.admit() }()
	// The waiter parks in the line; an arrival behind it must shed. Spin
	// until the waiter registers (no timing assumption beyond progress).
	for a.depth() < 3 {
		time.Sleep(time.Millisecond)
	}
	if a.admit() {
		t.Fatal("gate admitted past capacity")
	}
	a.release() // frees the waiter
	if !<-waited {
		t.Fatal("queued admit was shed")
	}
	a.release()
	a.release()
	if got := a.depth(); got != 0 {
		t.Fatalf("depth after drain = %d, want 0", got)
	}
}

// TestLoadFilesSprinkler covers the file-spec load path end to end,
// including the MRF doubling the serving config defaults to.
func TestLoadFilesSprinkler(t *testing.T) {
	s := New(Config{MRF: true})
	r, err := s.LoadFiles("sprinkler", LoadSpec{BIF: sprinklerPath()})
	if err != nil {
		t.Fatal(err)
	}
	if md := r.Metadata(); md.NumNodes != 4 || md.States != 2 {
		t.Fatalf("sprinkler metadata = %+v", md)
	}
	resp, err := s.QueryResident(r, EngineAuto,
		decode(t, r, `{"evidence":[{"node":"wetgrass","state":1}],"nodes":["rain"]}`))
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Converged {
		t.Fatalf("sprinkler query did not converge (delta %g)", resp.FinalDelta)
	}
	if _, ok := resp.Beliefs["rain"]; !ok {
		t.Fatalf("response misses rain posterior: %v", resp.Beliefs)
	}

	if _, err := s.LoadFiles("empty", LoadSpec{}); err == nil {
		t.Fatal("empty LoadSpec accepted")
	}
	if _, err := s.Load("", testGrid(t)); err == nil {
		t.Fatal("empty graph name accepted")
	}
}

// TestOnlyDefault: the single-graph convenience default resolves iff
// exactly one graph is registered.
func TestOnlyDefault(t *testing.T) {
	s, _ := newGridServer(t, Config{})
	if _, ok := s.only(); !ok {
		t.Fatal("single registered graph not returned as default")
	}
	if _, err := s.Load("second", testGrid(t)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.only(); ok {
		t.Fatal("ambiguous default returned with two graphs registered")
	}
	if got := s.Names(); len(got) != 2 || got[0] != "grid" || got[1] != "second" {
		t.Fatalf("Names() = %v", got)
	}
}

var sinkOps int64

// BenchmarkQueryColdVsWarm quantifies the warm-start saving outside the
// pass/fail lock (run with -bench to see the update-count gap).
func BenchmarkQueryColdVsWarm(b *testing.B) {
	g, err := gen.Grid(16, 16, gen.Config{Seed: 5, States: 2, Shared: true, Keep: 0.6})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("cold", func(b *testing.B) {
		s := New(Config{})
		r, _ := s.Load("grid", g.Clone())
		rq, _ := r.DecodeQuery([]byte(`{"evidence":[{"node":"136","state":1}]}`))
		for i := 0; i < b.N; i++ {
			r.InvalidateWarm()
			resp, err := s.QueryResident(r, EngineResidual, rq)
			if err != nil {
				b.Fatal(err)
			}
			sinkOps += resp.Updates
		}
	})
	b.Run("warm", func(b *testing.B) {
		s := New(Config{})
		r, _ := s.Load("grid", g.Clone())
		rq, _ := r.DecodeQuery([]byte(`{"evidence":[{"node":"136","state":1}]}`))
		alt, _ := r.DecodeQuery([]byte(`{"evidence":[{"node":"136","state":1},{"node":"40","state":0}]}`))
		if _, err := s.QueryResident(r, EngineResidual, rq); err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			q := rq
			if i%2 == 0 {
				q = alt
			}
			resp, err := s.QueryResident(r, EngineResidual, q)
			if err != nil {
				b.Fatal(err)
			}
			sinkOps += resp.Updates
		}
	})
}
