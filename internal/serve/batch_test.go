package serve

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"credo/internal/telemetry"
)

// batchDocs builds n distinct query documents over the grid resident —
// different evidence per lane, a node subset on some.
func batchDocs(n int) []string {
	docs := make([]string, n)
	for i := range docs {
		switch {
		case i == 0:
			docs[i] = `{}`
		case i%3 == 0:
			docs[i] = fmt.Sprintf(`{"evidence":[{"node":"%d","state":%d},{"node":"%d","state":%d}]}`,
				(i*7)%256, i%2, (i*13+3)%256, (i+1)%2)
		default:
			docs[i] = fmt.Sprintf(`{"evidence":[{"node":"%d","state":%d}]}`, (i*7)%256, i%2)
		}
	}
	return docs
}

// TestQueryBatchedMatchesSolo is the serving-layer differential: every
// lane of a cold batch flush must land within WarmTol of the same query
// served solo on a fresh server — the batch must not change answers.
func TestQueryBatchedMatchesSolo(t *testing.T) {
	s, r := newGridServer(t, Config{})
	docs := batchDocs(6)
	rqs := make([]*ResolvedQuery, len(docs))
	for i, d := range docs {
		rqs[i] = decode(t, r, d)
	}
	out, err := s.QueryBatched(r, rqs)
	if err != nil {
		t.Fatalf("QueryBatched: %v", err)
	}
	if len(out) != len(docs) {
		t.Fatalf("got %d responses, want %d", len(out), len(docs))
	}
	for i, resp := range out {
		if resp.Engine != EngineBatch {
			t.Errorf("lane %d: engine %q, want %q", i, resp.Engine, EngineBatch)
		}
		if resp.Warm || !resp.Converged {
			t.Errorf("lane %d: warm=%v converged=%v, want cold converged", i, resp.Warm, resp.Converged)
		}
		soloSrv, soloRes := newGridServer(t, Config{})
		solo, err := soloSrv.QueryResident(soloRes, EngineAuto, decode(t, soloRes, docs[i]))
		if err != nil {
			t.Fatalf("solo lane %d: %v", i, err)
		}
		if gap := maxBeliefGap(t, resp, solo); gap > WarmTol {
			t.Errorf("lane %d: belief gap %g vs solo, tol %g", i, gap, WarmTol)
		}
		if resp.Updates <= 0 || resp.Edges <= 0 || resp.Iterations <= 0 {
			t.Errorf("lane %d: empty accounting %+v", i, resp)
		}
	}
}

// TestQueryBatchedWarmStart locks the batcher's warm staging: a second
// flush adopts the snapshot the first stored, reports warm, re-converges
// in fewer sweeps than the cold flush, and still lands within WarmTol of
// a cold run of the same evidence.
func TestQueryBatchedWarmStart(t *testing.T) {
	s, r := newGridServer(t, Config{})
	first, err := s.QueryBatched(r, []*ResolvedQuery{
		decode(t, r, `{"evidence":[{"node":"136","state":1}]}`),
		decode(t, r, `{"evidence":[{"node":"40","state":0}]}`),
	})
	if err != nil {
		t.Fatalf("cold flush: %v", err)
	}
	if first[0].Warm || !r.HasWarm() {
		t.Fatalf("cold flush: warm=%v hasWarm=%v", first[0].Warm, r.HasWarm())
	}

	warmDoc := `{"evidence":[{"node":"40","state":0},{"node":"137","state":1}]}`
	warm, err := s.QueryBatched(r, []*ResolvedQuery{decode(t, r, warmDoc)})
	if err != nil {
		t.Fatalf("warm flush: %v", err)
	}
	if !warm[0].Warm || !warm[0].Converged {
		t.Fatalf("warm flush: warm=%v converged=%v", warm[0].Warm, warm[0].Converged)
	}
	if warm[0].Iterations >= first[0].Iterations {
		t.Errorf("warm flush took %d sweeps, cold took %d — the snapshot bought nothing",
			warm[0].Iterations, first[0].Iterations)
	}

	coldSrv, coldRes := newGridServer(t, Config{})
	cold, err := coldSrv.QueryBatched(coldRes, []*ResolvedQuery{decode(t, coldRes, warmDoc)})
	if err != nil {
		t.Fatalf("cold reference: %v", err)
	}
	if gap := maxBeliefGap(t, warm[0], cold[0]); gap > WarmTol {
		t.Errorf("warm flush gap %g vs cold, tol %g", gap, WarmTol)
	}
}

// TestBatcherFlushOnFull pins the K trigger: with an effectively infinite
// window, BatchK concurrent requests complete as exactly one flush at
// full occupancy.
func TestBatcherFlushOnFull(t *testing.T) {
	m := &telemetry.Metrics{}
	s, r := newGridServer(t, Config{BatchK: 4, BatchWindow: time.Hour, Probe: m})
	b := s.batcherFor(r)

	var wg sync.WaitGroup
	resps := make([]*Response, 4)
	errs := make([]error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resps[i], errs[i] = b.enqueue(decode(t, r, fmt.Sprintf(`{"evidence":[{"node":"%d","state":1}]}`, i*11)), nil)
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("full batch never flushed — the K trigger did not fire")
	}
	for i := 0; i < 4; i++ {
		if errs[i] != nil {
			t.Fatalf("lane %d: %v", i, errs[i])
		}
		if !resps[i].Converged || resps[i].Engine != EngineBatch {
			t.Errorf("lane %d: %+v", i, resps[i])
		}
	}
	var text bytes.Buffer
	m.WriteText(&text)
	for _, want := range []string{`credo_serve_batch_flushes{reason="full"} 1`, "credo_serve_batch_occupancy 4"} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("metrics text misses %q:\n%s", want, text.String())
		}
	}
}

// TestBatcherFlushOnDeadline pins the window trigger: a lone query in an
// 8-lane batcher flushes at the window, not at K.
func TestBatcherFlushOnDeadline(t *testing.T) {
	m := &telemetry.Metrics{}
	s, r := newGridServer(t, Config{BatchK: 8, BatchWindow: 5 * time.Millisecond, Probe: m})
	resp, err := s.batcherFor(r).enqueue(decode(t, r, `{"evidence":[{"node":"136","state":1}]}`), nil)
	if err != nil {
		t.Fatalf("enqueue: %v", err)
	}
	if !resp.Converged || resp.Engine != EngineBatch {
		t.Fatalf("deadline flush: %+v", resp)
	}
	var text bytes.Buffer
	m.WriteText(&text)
	for _, want := range []string{`credo_serve_batch_flushes{reason="deadline"} 1`, "credo_serve_batch_occupancy 1"} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("metrics text misses %q:\n%s", want, text.String())
		}
	}
}

// TestBatcherShedsWhenSaturated locks the admission contract of a flush:
// a saturated gate sheds the whole batch as errSaturated (the HTTP layer
// turns that into 429) and counts one shed per pending request.
func TestBatcherShedsWhenSaturated(t *testing.T) {
	m := &telemetry.Metrics{}
	s, r := newGridServer(t, Config{MaxInFlight: 1, MaxQueue: 1, BatchK: 4, BatchWindow: time.Millisecond, Probe: m})
	s.adm.slots <- struct{}{}
	s.adm.waiting.Add(1)
	defer func() {
		<-s.adm.slots
		s.adm.waiting.Add(-1)
	}()

	_, err := s.batcherFor(r).enqueue(decode(t, r, `{}`), nil)
	if !errors.Is(err, errSaturated) {
		t.Fatalf("saturated enqueue: err = %v, want errSaturated", err)
	}
	var text bytes.Buffer
	m.WriteText(&text)
	if !strings.Contains(text.String(), "credo_serve_shed_total 1") {
		t.Errorf("metrics text misses the shed counter:\n%s", text.String())
	}
}

// TestQueryBatchedValidation pins the flush-size contract.
func TestQueryBatchedValidation(t *testing.T) {
	s, r := newGridServer(t, Config{BatchK: 2})
	if _, err := s.QueryBatched(r, nil); err == nil {
		t.Error("empty flush accepted")
	}
	rq := decode(t, r, `{}`)
	if _, err := s.QueryBatched(r, []*ResolvedQuery{rq, rq, rq}); err == nil {
		t.Error("over-capacity flush accepted")
	}
}

// TestBatcherReplacedOnReload pins the registry interaction: reloading a
// graph under the same name rebinds the batcher to the new resident.
func TestBatcherReplacedOnReload(t *testing.T) {
	s, r := newGridServer(t, Config{})
	b1 := s.batcherFor(r)
	r2, err := s.Load("grid", testGrid(t))
	if err != nil {
		t.Fatal(err)
	}
	b2 := s.batcherFor(r2)
	if b1 == b2 {
		t.Error("batcher survived a reload — flushes would run against the dropped resident")
	}
}
