package serve

import (
	"testing"
	"time"

	"credo/internal/gen"
	"credo/internal/telemetry"
)

// newTracedServer wires a grid server to a force-capture tracer: every
// traced query is flagged slow (SlowNs = 0) and lands in the flight
// recorder, so tests can assert on complete span trees.
func newTracedServer(t *testing.T, cfg Config) (*Server, *Resident, *telemetry.FlightRecorder) {
	t.Helper()
	tc := telemetry.NewTracer(1)
	tc.SlowNs = 0
	tc.Flight = telemetry.NewFlightRecorder(16)
	cfg.Tracer = tc
	s, r := newGridServer(t, cfg)
	return s, r, tc.Flight
}

func spanNames(rec *telemetry.FlightRecord) map[string]bool {
	names := make(map[string]bool, len(rec.Spans))
	for _, sp := range rec.Spans {
		names[sp.Name] = true
	}
	return names
}

// TestSoloQueryTrace drives one solo query through the HTTP handler and
// checks the captured flight record holds the full pipeline span tree —
// admission, decode, engine selection, the engine's own run span,
// extraction — plus the convergence trajectory the engine's iteration
// events mirrored into the trace.
func TestSoloQueryTrace(t *testing.T) {
	s, ts, _ := newHTTPServer(t, Config{BatchK: 1}) // solo path
	tc := telemetry.NewTracer(1)
	tc.SlowNs = 0
	tc.Flight = telemetry.NewFlightRecorder(16)
	s.cfg.Tracer = tc

	// The node engine emits an iteration event every sweep, so the
	// trajectory assertion is deterministic.
	hr, body := postJSON(t, ts.URL+"/v1/query?engine=node", `{"evidence":[{"node":"0","state":1}]}`)
	if hr.StatusCode != 200 {
		t.Fatalf("query = %d: %s", hr.StatusCode, body)
	}

	recs := tc.Flight.Records()
	if len(recs) != 1 {
		t.Fatalf("captured %d flight records, want 1", len(recs))
	}
	rec := recs[0]
	names := spanNames(rec)
	for _, want := range []string{"admit", "decode", "bp.node", "extract"} {
		if !names[want] {
			t.Errorf("span %q missing from %v", want, rec.Spans)
		}
	}
	if rec.Engine == "" || rec.Warm || rec.Batched {
		t.Errorf("labels: engine=%q warm=%v batched=%v", rec.Engine, rec.Warm, rec.Batched)
	}
	if len(rec.Trajectory) == 0 {
		t.Error("no convergence trajectory mirrored into the trace")
	}
	if rec.WallNs <= 0 {
		t.Errorf("wall = %d", rec.WallNs)
	}
}

// TestWarmQueryTraceStagesWarm runs the same evidence twice: the second
// query must warm-start and its trace must carry the stage.warm span and
// the warm label.
func TestWarmQueryTraceStagesWarm(t *testing.T) {
	s, r, flight := newTracedServer(t, Config{BatchK: 1})
	tr1 := s.cfg.Tracer.Start("query")
	if _, err := s.queryResident(r, EngineAuto, decode(t, r, `{"evidence":[{"node":"0","state":1}]}`), tr1); err != nil {
		t.Fatal(err)
	}
	tr1.Finish()
	tr2 := s.cfg.Tracer.Start("query")
	if _, err := s.queryResident(r, EngineAuto, decode(t, r, `{"evidence":[{"node":"0","state":0}]}`), tr2); err != nil {
		t.Fatal(err)
	}
	tr2.Finish()

	recs := flight.Records()
	if len(recs) != 2 {
		t.Fatalf("captured %d records, want 2", len(recs))
	}
	if !recs[1].Warm {
		t.Fatal("second query did not warm-start")
	}
	if names := spanNames(recs[1]); !names["stage.warm"] || !names["bp.residual"] {
		t.Errorf("warm trace spans: %v", recs[1].Spans)
	}
	if names := spanNames(recs[0]); !names["select"] {
		t.Errorf("cold auto trace misses the select span: %v", recs[0].Spans)
	}
}

// TestShedEventCarriesRetryAfterAndWaiting is the shed observability
// contract: one rejected request emits exactly one serve.shed event, and
// that event carries the Retry-After value actually sent on the wire
// plus the waiting-line depth at rejection time.
func TestShedEventCarriesRetryAfterAndWaiting(t *testing.T) {
	rec := &telemetry.Recorder{}
	s, ts, _ := newHTTPServer(t, Config{MaxInFlight: 1, MaxQueue: 1, RetryAfter: 7 * time.Second, BatchK: 1})
	s.cfg.Probe = rec

	s.adm.slots <- struct{}{}
	s.adm.waiting.Add(1)
	defer func() {
		<-s.adm.slots
		s.adm.waiting.Add(-1)
	}()

	hr, body := postJSON(t, ts.URL+"/v1/query", `{}`)
	if hr.StatusCode != 429 {
		t.Fatalf("saturated query = %d: %s", hr.StatusCode, body)
	}

	sheds := 0
	var shed telemetry.Event
	for _, e := range rec.Events() {
		if e.Kind == telemetry.KindServe && e.Engine == "serve.shed" {
			sheds++
			shed = e
		}
	}
	if sheds != 1 {
		t.Fatalf("shed path emitted %d serve.shed events, want exactly 1", sheds)
	}
	if shed.RetryAfterSec != 7 {
		t.Errorf("RetryAfterSec = %d, want 7 (the wire Retry-After)", shed.RetryAfterSec)
	}
	if shed.Waiting != 1 {
		t.Errorf("Waiting = %d, want 1 (the occupied waiting line)", shed.Waiting)
	}
}

// TestShedTraceFlagged: a shed request's trace reaches the flight
// recorder flagged "shed".
func TestShedTraceFlagged(t *testing.T) {
	s, ts, _ := newHTTPServer(t, Config{MaxInFlight: 1, MaxQueue: 1, BatchK: 1})
	tc := telemetry.NewTracer(1)
	tc.Flight = telemetry.NewFlightRecorder(4)
	s.cfg.Tracer = tc // SlowNs = -1: only the shed flag can capture

	s.adm.slots <- struct{}{}
	s.adm.waiting.Add(1)
	defer func() {
		<-s.adm.slots
		s.adm.waiting.Add(-1)
	}()

	if hr, _ := postJSON(t, ts.URL+"/v1/query", `{}`); hr.StatusCode != 429 {
		t.Fatalf("status %d", hr.StatusCode)
	}
	recs := tc.Flight.Records()
	if len(recs) != 1 {
		t.Fatalf("captured %d, want 1", len(recs))
	}
	if len(recs[0].Reasons) != 1 || recs[0].Reasons[0] != "shed" {
		t.Errorf("reasons = %v, want [shed]", recs[0].Reasons)
	}
}

// TestBatchedQueryTrace checks the batched path's span tree: the wait
// span from accumulation, per-lane staging, the shared run and the
// per-lane extraction, all labelled batched.
func TestBatchedQueryTrace(t *testing.T) {
	s, r, flight := newTracedServer(t, Config{BatchK: 8, BatchWindow: 5 * time.Millisecond})
	tr := s.cfg.Tracer.Start("query")
	resp, err := s.batcherFor(r).enqueue(decode(t, r, `{"evidence":[{"node":"0","state":1}]}`), tr)
	if err != nil {
		t.Fatal(err)
	}
	tr.Finish()
	if resp.Engine != EngineBatch {
		t.Fatalf("engine %q", resp.Engine)
	}

	recs := flight.Records()
	if len(recs) != 1 {
		t.Fatalf("captured %d, want 1", len(recs))
	}
	rec := recs[0]
	if !rec.Batched || rec.Engine != EngineBatch {
		t.Errorf("labels: %+v", rec)
	}
	names := spanNames(rec)
	for _, want := range []string{"batch.wait", "stage", "run", "extract"} {
		if !names[want] {
			t.Errorf("span %q missing from %v", want, rec.Spans)
		}
	}
	if len(rec.Trajectory) == 0 {
		t.Error("batched trace carries no trajectory")
	}
}

// TestDrainBatchersFlushesShutdown: pending queries flush immediately on
// drain with the shutdown reason label.
func TestDrainBatchersFlushesShutdown(t *testing.T) {
	rec := &telemetry.Recorder{}
	s, r := newGridServer(t, Config{BatchK: 8, BatchWindow: time.Hour, Probe: rec})

	respc := make(chan *Response, 1)
	go func() {
		resp, err := s.batcherFor(r).enqueue(decode(t, r, `{"evidence":[{"node":"0","state":1}]}`), nil)
		if err != nil {
			respc <- nil
			return
		}
		respc <- resp
	}()
	// Wait for the query to join the pending batch before draining.
	deadline := time.Now().Add(5 * time.Second)
	for {
		b := s.batcherFor(r)
		b.mu.Lock()
		n := len(b.pending)
		b.mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("query never joined the pending batch")
		}
		time.Sleep(time.Millisecond)
	}
	s.DrainBatchers()
	resp := <-respc
	if resp == nil || !resp.Converged {
		t.Fatalf("drained response: %+v", resp)
	}

	found := false
	for _, e := range rec.Events() {
		if e.Kind == telemetry.KindServe && e.Engine == "serve.batch" {
			if e.Flush != telemetry.FlushShutdown {
				t.Errorf("flush reason = %v, want shutdown", e.Flush)
			}
			found = true
		}
	}
	if !found {
		t.Error("no serve.batch event from the drain flush")
	}
}

// BenchmarkTraceOverhead measures the serving path with tracing off
// (nil tracer — the default) and with every request traced, so the
// enabled-path overhead stays visible in the bench-smoke artifact.
func BenchmarkTraceOverhead(b *testing.B) {
	run := func(b *testing.B, tc *telemetry.Tracer) {
		s := New(Config{BatchK: 1, Tracer: tc})
		g, err := gen.Grid(16, 16, gen.Config{Seed: 5, States: 2, Shared: true, Keep: 0.6})
		if err != nil {
			b.Fatal(err)
		}
		r, err := s.Load("grid", g)
		if err != nil {
			b.Fatal(err)
		}
		rq, err := r.DecodeQuery([]byte(`{"evidence":[{"node":"0","state":1}]}`))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tr := tc.Start("query")
			if _, err := s.queryResident(r, EngineResidual, rq, tr); err != nil {
				b.Fatal(err)
			}
			tr.Finish()
		}
	}
	b.Run("disabled", func(b *testing.B) { run(b, nil) })
	b.Run("traced", func(b *testing.B) {
		tc := telemetry.NewTracer(1)
		tc.Metrics = &telemetry.Metrics{}
		run(b, tc)
	})
}
