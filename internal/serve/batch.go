package serve

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"credo/internal/core"
	"credo/internal/graph"
	"credo/internal/telemetry"
)

// DefaultBatchK is the lane capacity of a batch flush when Config leaves
// BatchK zero: eight lanes keep the K-wide gathers inside one or two
// cache lines for small state counts, which is where the SoA
// amortization pays most.
const DefaultBatchK = 8

// DefaultBatchWindow is the accumulation deadline when Config leaves
// BatchWindow zero. Two milliseconds is well under interactive latency
// budgets but long enough for concurrent clients to land in one flush.
const DefaultBatchWindow = 2 * time.Millisecond

// errSaturated marks a batch flush rejected by admission control; the
// HTTP layer turns it into 429 + Retry-After, exactly like a solo shed.
var errSaturated = errors.New("serve: saturated")

// warmDeltaMax is the per-lane warm-staging gate: a lane adopts the
// snapshot fixpoint only when the fraction of nodes whose clamp differs
// from the snapshot's evidence is at most this. The solo warm path has
// no such gate because residual scheduling is frontier-seeded — its
// cost scales with the delta and degrades gracefully toward a cold run.
// The batch is full-sweep Jacobi: started from a fixpoint the new
// evidence contradicts wholesale, it can oscillate to the iteration cap
// and drag every lane of the flush with it, so large-delta lanes stage
// cold (prior + evidence) instead. A small absolute delta is always a
// frontier-sized perturbation no matter the graph size — on a 4-node
// sprinkler one toggled clamp is 25% of nodes — so deltas up to
// warmDeltaMinNodes warm-start regardless of the fraction.
const (
	warmDeltaMax      = 0.10
	warmDeltaMinNodes = 8
)

// batcher accumulates same-graph queries and runs them as one K-way SoA
// batch. One batcher exists per resident; requests append to pending and
// block on their done channel. The batch flushes when K lanes fill or
// when the accumulation window expires, whichever comes first, so a lone
// query pays at most the window in added latency while a burst pays one
// structure pass for all K of its queries.
type batcher struct {
	s      *Server
	r      *Resident
	k      int
	window time.Duration

	// pool recycles the SoA overlay between flushes — the batch analogue
	// of the resident's solo lease pool.
	pool sync.Pool

	mu      sync.Mutex
	pending []*pendingQuery
	timer   *time.Timer
	// epoch numbers the accumulation windows: it advances every time the
	// pending batch is taken (full flush, deadline flush or drain). The
	// deadline timer is armed with the epoch of the window it belongs to
	// and fires into a no-op when that window was already taken — without
	// the stamp, a timer whose callback was already in flight when a full
	// flush Stop()ped it would grab the NEXT window's queries (flushing
	// them thousands of times early) and clear that window's armed timer
	// field, cascading the same interleaving onto every later window.
	epoch uint64

	// structGen is the base's structural generation the batcher's SoA
	// pool was built against; batcherFor retires the batcher when the
	// base has since grown edges.
	structGen uint64
}

// take removes and returns the accumulated window under b.mu, advancing
// the epoch and disarming the window's timer. Every path that flushes
// goes through here, so epoch and window stay in lockstep.
func (b *batcher) take() []*pendingQuery {
	batch := b.pending
	b.pending = nil
	b.epoch++
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	return batch
}

// pendingQuery is one enqueued request: its decoded query going in, its
// response (or error) coming back out of the flush, plus the request's
// trace — its wait span measures exactly the accumulation delay the
// batching window cost this query.
type pendingQuery struct {
	rq   *ResolvedQuery
	tr   *telemetry.Trace
	wait telemetry.Span
	resp *Response
	err  error
	done chan struct{}
}

func newBatcher(s *Server, r *Resident) *batcher {
	b := &batcher{s: s, r: r, k: s.cfg.BatchK, window: s.cfg.BatchWindow,
		structGen: r.structuralGeneration()}
	b.pool.New = func() any {
		bs, err := graph.NewBatchState(r.base, b.k)
		if err != nil {
			// Unreachable: the server only builds batchers with k > 1.
			panic(err)
		}
		return bs
	}
	return b
}

// batcherFor returns the resident's batcher, creating it on first use.
// A resident replaced by a reload — or grown by a structural delta,
// which reshapes the SoA states the batcher pools — gets a fresh
// batcher; in-flight flushes against the old resident drain
// independently (retired BatchStates keep referencing the pre-merge
// adjacency arrays, which MergeDelta never patches in place).
func (s *Server) batcherFor(r *Resident) *batcher {
	s.batchMu.Lock()
	defer s.batchMu.Unlock()
	b := s.batchers[r.Name]
	if b == nil || b.r != r || b.structGen != r.structuralGeneration() {
		b = newBatcher(s, r)
		s.batchers[r.Name] = b
	}
	return b
}

// enqueue adds one query to the pending batch and blocks until its flush
// completes. The Kth arrival flushes immediately on its own goroutine;
// otherwise the window timer (armed by the first arrival) flushes
// whatever accumulated.
func (b *batcher) enqueue(rq *ResolvedQuery, tr *telemetry.Trace) (*Response, error) {
	p := &pendingQuery{rq: rq, tr: tr, wait: tr.Span("batch.wait"), done: make(chan struct{})}
	b.mu.Lock()
	b.pending = append(b.pending, p)
	if len(b.pending) >= b.k {
		batch := b.take()
		b.mu.Unlock()
		b.flush(batch, telemetry.FlushFull)
	} else {
		if len(b.pending) == 1 {
			// Stamp the timer with its window: Stop() cannot un-fire a
			// callback already in flight, so the stamp is what actually
			// keeps a raced deadline away from later windows.
			epoch := b.epoch
			b.timer = time.AfterFunc(b.window, func() { b.flushDeadline(epoch) })
		}
		b.mu.Unlock()
	}
	<-p.done
	return p.resp, p.err
}

// flushDeadline is the window-expiry path: take whatever accumulated in
// the window the timer was armed for. A stale epoch means that window
// was already flushed (the Kth arrival or a drain won the race while
// this callback was in flight) — the queries now pending belong to a
// newer window with its own timer, so touching them here would flush
// them early and leave their window's timer field clobbered.
func (b *batcher) flushDeadline(epoch uint64) {
	b.mu.Lock()
	if b.epoch != epoch {
		b.mu.Unlock()
		return
	}
	batch := b.take()
	b.mu.Unlock()
	if len(batch) > 0 {
		b.flush(batch, telemetry.FlushDeadline)
	}
}

// drain flushes whatever is pending right now — the shutdown path, so
// in-flight clients get answers instead of hung connections.
func (b *batcher) drain() {
	b.mu.Lock()
	batch := b.take()
	b.mu.Unlock()
	if len(batch) > 0 {
		b.flush(batch, telemetry.FlushShutdown)
	}
}

// DrainBatchers flushes every batcher's pending queries immediately,
// labelled as shutdown flushes. The daemon calls it after the listener
// stops accepting so graceful shutdown never waits out a batch window.
func (s *Server) DrainBatchers() {
	s.batchMu.Lock()
	bs := make([]*batcher, 0, len(s.batchers))
	for _, b := range s.batchers {
		bs = append(bs, b)
	}
	s.batchMu.Unlock()
	for _, b := range bs {
		b.drain()
	}
}

// flush runs one accumulated batch through admission and the batched
// engine, fanning results back to the waiting requests. The whole flush
// takes a single admission slot — that is the batching win on the
// admission side: K queries cost one unit of the concurrency budget.
func (b *batcher) flush(batch []*pendingQuery, reason telemetry.FlushReason) {
	for _, p := range batch {
		p.wait.End()
	}
	defer func() {
		for _, p := range batch {
			close(p.done)
		}
	}()
	if !b.s.adm.admit() {
		for _, p := range batch {
			p.tr.MarkShed()
			b.s.emit(telemetry.Event{
				Kind:          telemetry.KindServe,
				Engine:        "serve.shed",
				Worker:        -1,
				Active:        b.s.adm.depth(),
				Items:         b.s.adm.capacity(),
				RetryAfterSec: int64(retryAfterSeconds(b.s.cfg.RetryAfter)),
				Waiting:       b.s.adm.waitDepth(),
			})
		}
		for _, p := range batch {
			p.err = errSaturated
		}
		return
	}
	defer b.s.adm.release()

	rqs := make([]*ResolvedQuery, len(batch))
	trs := make([]*telemetry.Trace, len(batch))
	for i, p := range batch {
		rqs[i] = p.rq
		trs[i] = p.tr
	}
	out, err := b.runFlush(rqs, trs, reason)
	for i, p := range batch {
		if err != nil {
			p.err = err
			continue
		}
		p.resp = out[i]
	}
}

// QueryBatched runs up to Config.BatchK decoded queries as one SoA batch
// flush against the resident — the direct entry point for tests and the
// credobench serve experiment. It bypasses the accumulation window and
// admission control (callers own their concurrency) but is otherwise the
// batcher's exact execution path: warm staging, one batched run, one
// snapshot store, per-lane responses labelled "batch".
func (s *Server) QueryBatched(r *Resident, rqs []*ResolvedQuery) ([]*Response, error) {
	return s.batcherFor(r).runFlush(rqs, nil, telemetry.FlushDirect)
}

// runFlush stages the queries into a pooled BatchState, runs the batched
// node-paradigm engine over the resident's base structure, snapshots a
// converged lane for future warm starts and marshals per-lane responses.
// trs carries the requests' traces lane-aligned with rqs (nil when the
// caller owns no traces): each lane records its staging, the shared run
// and its extraction, and lanes that stage cold despite an available
// snapshot — the large-delta demotion — are flagged for the flight
// recorder, since that demotion is exactly the pathology the staging
// gate exists to catch.
func (b *batcher) runFlush(rqs []*ResolvedQuery, trs []*telemetry.Trace, reason telemetry.FlushReason) ([]*Response, error) {
	if len(rqs) == 0 || len(rqs) > b.k {
		return nil, fmt.Errorf("serve: batch of %d queries, want 1..%d", len(rqs), b.k)
	}
	if trs == nil {
		trs = make([]*telemetry.Trace, len(rqs))
	}
	start := time.Now()

	bs := b.pool.Get().(*graph.BatchState)
	defer b.pool.Put(bs)

	// The batched engine reads the base's numeric and adjacency arrays
	// directly (no overlay clone), so the whole flush holds the base read
	// lock: /v1/update mutations serialize before or after it. The warm
	// pointer is read directly rather than through snapshot() — its
	// generation check re-acquires baseMu, and a nested RLock behind a
	// waiting writer deadlocks.
	b.r.baseMu.RLock()
	defer b.r.baseMu.RUnlock()
	gen := b.r.base.Generation()
	bs.Reset(b.r.base)
	bs.Used = len(rqs)

	b.r.warmMu.Lock()
	snap := b.r.warm
	b.r.warmMu.Unlock()
	if snap != nil && snap.gen != gen {
		snap = nil
	}
	laneWarm := make([]bool, len(rqs))
	for l, rq := range rqs {
		stage := trs[l].Span("stage")
		w, err := b.stageLane(bs, l, rq, snap)
		stage.End()
		if err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		laneWarm[l] = w
		if snap != nil && !w {
			trs[l].MarkColdDelta()
		}
	}
	warm := false
	for _, w := range laneWarm {
		warm = warm || w
	}

	opts := b.s.cfg.Options
	opts.Probe = b.s.cfg.Probe
	for _, tr := range trs {
		if tr != nil {
			// Every lane's trace sees the shared run's iteration events:
			// the flush converges (or fails to) as one unit, so the
			// trajectory belongs on each query it carried.
			opts.Probe = telemetry.Multi(opts.Probe, tr)
		}
	}
	eng := core.Engine{Selector: b.s.cfg.Selector, Options: opts}
	if eng.PoolWorkers <= 0 {
		eng.PoolWorkers = b.s.cfg.Workers
	}
	runSpans := make([]telemetry.Span, len(trs))
	for l, tr := range trs {
		runSpans[l] = tr.Span("run")
	}
	rep := eng.RunBatch(b.r.base, bs)
	for _, sp := range runSpans {
		sp.End()
	}
	wall := time.Since(start)

	// Publish one converged lane as the warm snapshot; the last staged
	// lane wins so back-to-back flushes behave like sequential queries.
	for l := len(rqs) - 1; l >= 0; l-- {
		if !rep.Result.Lanes[l].Converged {
			continue
		}
		flat := make([]float32, len(b.r.base.Beliefs))
		bs.ExtractLane(l, flat)
		b.r.storeSnapshotBeliefs(flat, rqs[l].dense, gen)
		if laneWarm[l] {
			b.r.warmMu.Lock()
			b.r.warmed++
			b.r.warmMu.Unlock()
		}
		break
	}

	out := make([]*Response, len(rqs))
	for l, rq := range rqs {
		lr := rep.Result.Lanes[l]
		trs[l].SetQuery(EngineBatch, b.s.variant, laneWarm[l], true)
		if !lr.Converged {
			trs[l].MarkNonConverged()
			if lr.Iterations >= maxIterCap(b.s.cfg.Options.MaxIterations) {
				trs[l].MarkIterCap()
			}
		}
		ext := trs[l].Span("extract")
		beliefs := marshalLaneBeliefs(b.r, bs, l, rq.nodes)
		ext.End()
		out[l] = &Response{
			Graph:      b.r.Name,
			Engine:     EngineBatch,
			Warm:       laneWarm[l],
			Converged:  lr.Converged,
			Iterations: lr.Iterations,
			Updates:    lr.Updates,
			Edges:      lr.Edges,
			FinalDelta: float64(lr.FinalDelta),
			WallNs:     wall.Nanoseconds(),
			Beliefs:    beliefs,
		}
	}
	b.s.emit(telemetry.Event{
		Kind:      telemetry.KindServe,
		Engine:    "serve.batch",
		Worker:    -1,
		Flush:     reason,
		Warm:      warm,
		Converged: rep.Result.Converged,
		Iter:      int32(rep.Result.Iterations),
		BusyNs:    wall.Nanoseconds(),
		Active:    int64(len(rqs)), // occupancy: lanes actually staged
		Items:     int64(b.k),      // capacity: lanes available
	})
	return out, nil
}

// stageLane prepares one lane and reports whether it warm-started: lanes
// whose evidence delta against the snapshot passes warmDeltaMax adopt
// the snapshot fixpoint, with changed-and-unclamped nodes restarted from
// their prior — the same staging the solo warm path applies to its
// overlay, done per lane on the SoA state. Lanes with no snapshot or too
// large a delta stage cold (priors plus evidence, the Reset state).
func (b *batcher) stageLane(bs *graph.BatchState, l int, rq *ResolvedQuery, snap *warmState) (bool, error) {
	warm := false
	if snap != nil {
		changed := 0
		for v := range rq.dense {
			if snap.evidence[v] != rq.dense[v] {
				changed++
			}
		}
		warm = changed <= warmDeltaMinNodes ||
			float64(changed) <= warmDeltaMax*float64(bs.NumNodes)
	}
	if warm {
		bs.SetLaneBeliefs(l, snap.beliefs)
	}
	for _, ev := range rq.evidence {
		if err := bs.Observe(l, ev.node, int(ev.state)); err != nil {
			return false, err
		}
	}
	if !warm {
		return false, nil
	}
	s, kk := bs.States, bs.K
	for v := 0; v < bs.NumNodes; v++ {
		// Unchanged clamps keep the fixpoint; re-clamped nodes were just
		// reset by Observe. Only retracted or never-clamped changed nodes
		// need their beliefs returned to the prior.
		if snap.evidence[v] == rq.dense[v] || rq.dense[v] != -1 {
			continue
		}
		base := v * s * kk
		for j := 0; j < s; j++ {
			bs.Beliefs[base+j*kk+l] = bs.Priors[base+j*kk+l]
		}
	}
	return true, nil
}

// marshalLaneBeliefs copies one lane's requested posteriors (all nodes
// when nodes is nil) into a name-keyed response map.
func marshalLaneBeliefs(r *Resident, bs *graph.BatchState, lane int, nodes []int32) map[string][]float32 {
	get := func(v int32) []float32 {
		return bs.LaneBelief(lane, v, make([]float32, bs.States))
	}
	if nodes == nil {
		out := make(map[string][]float32, bs.NumNodes)
		for v := int32(0); v < int32(bs.NumNodes); v++ {
			out[r.nodeLabel(v)] = get(v)
		}
		return out
	}
	out := make(map[string][]float32, len(nodes))
	for _, v := range nodes {
		out[r.nodeLabel(v)] = get(v)
	}
	return out
}
