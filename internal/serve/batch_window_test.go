package serve

import (
	"testing"
	"time"
)

// TestStaleDeadlineTimerCannotTouchNewerWindow is the regression test
// for the shutdown-drain / deadline-timer interleaving: time.Timer.Stop
// cannot un-fire a callback already in flight, so a full flush (or a
// drain) that races the window deadline leaves a live flushDeadline
// behind. Before epoch stamping, that stale callback would grab the
// NEXT window's pending queries — flushing them a full window early,
// mislabelled as a deadline flush — and clear that window's timer
// field, so the following first arrival armed a second timer and the
// interleaving cascaded indefinitely. The epochs make the stale
// callback provably a no-op; this test drives it directly (the
// interleaving is a few-microsecond race, the callback is not).
func TestStaleDeadlineTimerCannotTouchNewerWindow(t *testing.T) {
	s, r := newGridServer(t, Config{BatchK: 2, BatchWindow: time.Hour})
	b := s.batcherFor(r)

	// Window 0: two arrivals, the second flushes full. The window-0
	// deadline timer was armed with epoch 0 and then stopped — this is
	// the timer whose callback we replay below as if Stop had lost the
	// race.
	type result struct {
		resp *Response
		err  error
	}
	done := make(chan result, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, err := b.enqueue(decode(t, r, `{"evidence":[{"node":"17","state":1}],"nodes":["17"]}`), nil)
			done <- result{resp, err}
		}()
	}
	for i := 0; i < 2; i++ {
		if got := <-done; got.err != nil {
			t.Fatalf("full flush query: %v", got.err)
		}
	}
	b.mu.Lock()
	staleEpoch := b.epoch - 1 // the epoch window 0's timer carries
	b.mu.Unlock()

	// Window 1: a single arrival, waiting out its (one-hour) deadline.
	solo := make(chan result, 1)
	go func() {
		resp, err := b.enqueue(decode(t, r, `{"evidence":[{"node":"40","state":0}],"nodes":["40"]}`), nil)
		solo <- result{resp, err}
	}()
	waitForPending := func(n int) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			b.mu.Lock()
			got := len(b.pending)
			b.mu.Unlock()
			if got == n {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("pending never reached %d", n)
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitForPending(1)

	// The stale window-0 callback fires. It must not flush window 1's
	// query, and it must not disarm window 1's timer.
	b.flushDeadline(staleEpoch)
	b.mu.Lock()
	pending, timer := len(b.pending), b.timer
	b.mu.Unlock()
	if pending != 1 {
		t.Fatalf("stale deadline callback took %d pending queries from a newer window", 1-pending)
	}
	if timer == nil {
		t.Fatal("stale deadline callback disarmed the newer window's timer")
	}
	select {
	case got := <-solo:
		t.Fatalf("window-1 query answered by the stale window-0 deadline (err=%v)", got.err)
	case <-time.After(20 * time.Millisecond):
	}

	// The genuine window-1 deadline still flushes it.
	b.mu.Lock()
	liveEpoch := b.epoch
	b.mu.Unlock()
	b.flushDeadline(liveEpoch)
	got := <-solo
	if got.err != nil {
		t.Fatalf("deadline flush: %v", got.err)
	}
	if got.resp == nil || !got.resp.Converged {
		t.Fatal("deadline-flushed query did not converge")
	}

	// The admission gate is whole again: every slot taken by the flushes
	// above was released (the leak mode when a window is flushed twice).
	if d := s.adm.depth(); d != 0 {
		t.Fatalf("admission depth %d after all flushes returned, want 0", d)
	}
}
