package serve

import (
	"testing"

	"credo/internal/gen"
)

// FuzzQueryDecode throws arbitrary bytes at the strict query decoder.
// The invariant is total: DecodeQuery never panics, and anything it
// accepts is internally consistent — evidence nodes unique and in range,
// states within the graph's belief width, response nodes resolvable.
// Malformed states, unknown nodes and duplicate evidence must error
// (the deterministic cases are locked by TestDecodeQueryErrors; the
// fuzzer explores the space between them).
func FuzzQueryDecode(f *testing.F) {
	g, err := gen.Grid(4, 4, gen.Config{Seed: 9, States: 3, Shared: true, Keep: 0.6})
	if err != nil {
		f.Fatal(err)
	}
	r := NewResident("fuzz", g)

	seeds := []string{
		`{}`,
		`{"evidence":[],"nodes":[]}`,
		`{"evidence":[{"node":"0","state":1}]}`,
		`{"evidence":[{"node":"3","state":2}],"nodes":["1","2"]}`,
		`{"evidence":[{"node":"0","state":0},{"node":"0","state":1}]}`,
		`{"evidence":[{"node":"bogus","state":0}]}`,
		`{"evidence":[{"node":"0"}]}`,
		`{"evidence":[{"node":"0","state":99}]}`,
		`{"evidence":[{"node":"-7","state":0}]}`,
		`{"nodes":["15"]} trailing`,
		`{"unknown":true}`,
		`[1,2,3]`,
		`"a string"`,
		"\x00\xff\xfe",
		`{"evidence":[{"node":"0","state":null}]}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		rq, err := r.DecodeQuery(data)
		if err != nil {
			return
		}
		seen := make(map[int32]bool)
		for _, ev := range rq.evidence {
			if ev.node < 0 || int(ev.node) >= g.NumNodes {
				t.Fatalf("accepted out-of-range evidence node %d", ev.node)
			}
			if ev.state < 0 || int(ev.state) >= g.States {
				t.Fatalf("accepted out-of-range state %d for node %d", ev.state, ev.node)
			}
			if seen[ev.node] {
				t.Fatalf("accepted duplicate evidence for node %d", ev.node)
			}
			seen[ev.node] = true
			if rq.dense[ev.node] != ev.state {
				t.Fatalf("dense view disagrees with evidence pair for node %d", ev.node)
			}
		}
		for _, v := range rq.nodes {
			if v < 0 || int(v) >= g.NumNodes {
				t.Fatalf("accepted out-of-range response node %d", v)
			}
		}
	})
}
