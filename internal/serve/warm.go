package serve

import (
	"fmt"
	"time"

	"credo/internal/bp"
	"credo/internal/core"
	"credo/internal/graph"
	"credo/internal/relaxbp"
	"credo/internal/telemetry"
)

// warmState is one converged fixpoint: the beliefs, the evidence they
// were converged under, and the base-graph mutation generation the run
// observed. A stored warmState is immutable — Query builds a fresh one
// per convergence and swaps the pointer under warmMu — so readers only
// need the pointer.
type warmState struct {
	beliefs  []float32
	evidence []int32 // dense per-node clamped state, -1 = unobserved
	gen      uint64  // base generation the fixpoint was converged against
}

// snapshot returns the current warm state, or nil when none exists or
// the stored one is stale — its generation differs from the base's,
// meaning the base was mutated (a /v1/update delta, an operator edit)
// after the fixpoint was taken. Seeding from a stale fixpoint would
// re-converge toward the wrong graph; generation keying makes staleness
// structurally impossible instead of a protocol the mutating paths must
// each remember (the bug this replaces: only an explicit InvalidateWarm
// call dropped the snapshot, and the mutation paths didn't call it).
func (r *Resident) snapshot() *warmState {
	r.warmMu.Lock()
	w := r.warm
	r.warmMu.Unlock()
	if w == nil || w.gen != r.Generation() {
		return nil
	}
	return w
}

// storeSnapshot publishes a converged fixpoint as the new warm state,
// keyed by the base generation the run leased its state at.
func (r *Resident) storeSnapshot(g *graph.Graph, dense []int32, gen uint64) {
	r.storeSnapshotBeliefs(g.Beliefs, dense, gen)
}

// storeSnapshotBeliefs is storeSnapshot over a bare belief array — the
// batched path extracts one lane of its SoA state and publishes it
// here. Publication is monotonic in generation: a fixpoint computed
// against a generation the base has since left behind must not clobber
// a fresher snapshot (the race: a query leased at generation G
// converges after a /v1/update has already moved the base to G+1 and
// re-published — the late store would otherwise overwrite the G+1
// fixpoint with one missing the update's changes, and the next
// non-structural update would adopt it as its re-convergence start).
// The comparison is against the stored snapshot rather than
// r.Generation() because the batched flush publishes while holding
// baseMu.RLock — a nested RLock behind a waiting writer deadlocks.
func (r *Resident) storeSnapshotBeliefs(beliefs []float32, dense []int32, gen uint64) {
	w := &warmState{
		beliefs:  append([]float32(nil), beliefs...),
		evidence: append([]int32(nil), dense...),
		gen:      gen,
	}
	r.warmMu.Lock()
	if r.warm == nil || r.warm.gen <= gen {
		r.warm = w
	}
	r.warmMu.Unlock()
}

// InvalidateWarm drops the warm-start snapshot (operator hook: after
// reloading a graph in place the old fixpoint is meaningless).
func (r *Resident) InvalidateWarm() {
	r.warmMu.Lock()
	r.warm = nil
	r.warmMu.Unlock()
}

// invalidateWarmThrough drops the warm-start snapshot only if its
// generation is at or below gen — the update path's invalidation: it
// must drop the snapshot it decided not to carry forward without
// destroying a fresher one a racing later update may have published in
// the meantime.
func (r *Resident) invalidateWarmThrough(gen uint64) {
	r.warmMu.Lock()
	if r.warm != nil && r.warm.gen <= gen {
		r.warm = nil
	}
	r.warmMu.Unlock()
}

// perturbedFrontier returns the warm-start seed set for moving from the
// snapshot's evidence to the query's: every node whose clamp changed
// (added, retracted or re-stated) plus each such node's out-neighbours —
// exactly the nodes whose residual the evidence delta can move before
// any update is applied. The returned changed list is the nodes whose
// beliefs must not be taken from the snapshot.
func perturbedFrontier(g *graph.Graph, old, cur []int32) (changed, seeds []int32) {
	for v := int32(0); v < int32(g.NumNodes); v++ {
		if old[v] == cur[v] {
			continue
		}
		changed = append(changed, v)
		seeds = append(seeds, v)
		for _, e := range g.OutEdges[g.OutOffsets[v]:g.OutOffsets[v+1]] {
			seeds = append(seeds, g.EdgeDst[e])
		}
	}
	return changed, seeds
}

// Response is the wire shape of a served posterior query.
type Response struct {
	Graph      string               `json:"graph"`
	Engine     string               `json:"engine"`
	Warm       bool                 `json:"warm"`
	Converged  bool                 `json:"converged"`
	Iterations int                  `json:"iterations"`
	Updates    int64                `json:"updates"`
	Edges      int64                `json:"edges"`
	FinalDelta float64              `json:"final_delta"`
	WallNs     int64                `json:"wall_ns"`
	Beliefs    map[string][]float32 `json:"beliefs"`
}

// QueryResident executes one posterior query against the resident:
// lease an overlay, clamp the evidence, pick an engine (the explicit
// override first, the warm path when a snapshot exists and the engine
// family supports seeded starts, the classifier-driven cold selection
// otherwise), run, snapshot on convergence, and marshal the requested
// beliefs.
func (s *Server) QueryResident(r *Resident, engine string, rq *ResolvedQuery) (*Response, error) {
	return s.queryResident(r, engine, rq, nil)
}

// queryResident is QueryResident carrying the request's trace: staging,
// the engine run (via Options.Trace plus the probe chain) and belief
// extraction each record a span, and the run outcome sets the trace's
// anomaly flags. A nil trace is free.
func (s *Server) queryResident(r *Resident, engine string, rq *ResolvedQuery, tr *telemetry.Trace) (*Response, error) {
	engine, err := ParseEngine(engine)
	if err != nil {
		return nil, err
	}
	if engine == EngineBatch {
		// The solo path has no batched implementation; an explicit batch
		// override reaching it (direct callers, batching disabled) runs
		// as auto.
		engine = EngineAuto
	}
	start := time.Now()

	g, gen := r.lease()
	defer r.release(g)
	for _, ev := range rq.evidence {
		if err := g.Observe(ev.node, int(ev.state)); err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
	}

	opts := s.cfg.Options
	opts.Probe = s.cfg.Probe
	if tr != nil {
		opts.Trace = tr
		opts.Probe = telemetry.Multi(opts.Probe, tr)
	}

	// Warm path: the residual-family engines resume from the snapshot.
	// The snapshot must match the generation the overlay was leased at —
	// not merely the current one — or a base mutation racing this query
	// could pair a new-generation fixpoint with an old-generation overlay.
	warmable := engine == EngineAuto || engine == EngineResidual || engine == EngineRelax
	var res bp.Result
	var label string
	warm := false
	if snap := r.snapshot(); warmable && snap != nil && snap.gen == gen {
		warm = true
		stage := tr.Span("stage.warm")
		changed, seeds := perturbedFrontier(g, snap.evidence, rq.dense)
		// Adopt the fixpoint everywhere the evidence still supports it;
		// changed nodes restart from their (possibly re-clamped) prior.
		copy(g.Beliefs, snap.beliefs)
		for _, v := range changed {
			copy(g.Belief(v), g.Prior(v))
		}
		stage.End()
		if engine == EngineRelax {
			label = EngineRelax
			res = relaxbp.RunFrom(g, relaxbp.Options{Options: opts, Workers: s.cfg.Workers}, seeds)
		} else {
			label = EngineResidual
			res = bp.RunResidualFrom(g, opts, seeds)
		}
	} else {
		label, res, err = s.runCold(r, g, engine, opts, tr)
		if err != nil {
			return nil, err
		}
	}
	tr.SetQuery(label, s.variant, warm, false)
	if cap := opts.MaxIterations; res.Iterations >= maxIterCap(cap) && !res.Converged {
		tr.MarkIterCap()
	}

	if res.Converged {
		r.storeSnapshot(g, rq.dense, gen)
		if warm {
			r.warmMu.Lock()
			r.warmed++
			r.warmMu.Unlock()
		}
	}

	ext := tr.Span("extract")
	beliefs := marshalBeliefs(r, g, rq.nodes)
	ext.End()
	resp := &Response{
		Graph:      r.Name,
		Engine:     label,
		Warm:       warm,
		Converged:  res.Converged,
		Iterations: res.Iterations,
		Updates:    res.Ops.NodesProcessed,
		Edges:      res.Ops.EdgesProcessed,
		FinalDelta: float64(res.FinalDelta),
		WallNs:     time.Since(start).Nanoseconds(),
		Beliefs:    beliefs,
	}
	return resp, nil
}

// maxIterCap resolves the effective iteration cap of an options
// template (zero means the bp default), the bound the iter_cap anomaly
// flag is judged against.
func maxIterCap(configured int) int {
	if configured > 0 {
		return configured
	}
	return bp.DefaultMaxIterations
}

// runCold dispatches a cold start: an explicit engine when overridden,
// the selector's choice (platform rule + Node/Edge classifier) for auto.
func (s *Server) runCold(r *Resident, g *graph.Graph, engine string, opts bp.Options, tr *telemetry.Trace) (string, bp.Result, error) {
	eng := core.Engine{Selector: s.cfg.Selector, Options: opts}
	var impl core.Implementation
	switch engine {
	case EngineAuto:
		sel := tr.Span("select")
		md, footprint := r.stats()
		impl = eng.Choose(md, footprint)
		sel.End()
	case EngineNode:
		impl = core.CNode
	case EngineEdge:
		impl = core.CEdge
	case EngineResidual:
		// Sequential residual scheduling has no core implementation id;
		// run it directly.
		return EngineResidual, bp.RunResidualFrom(g, opts, nil), nil
	case EngineRelax:
		return EngineRelax, relaxbp.Run(g, relaxbp.Options{Options: opts, Workers: s.cfg.Workers}), nil
	case EnginePool:
		impl = core.Pool
		if eng.PoolWorkers <= 0 {
			eng.PoolWorkers = s.cfg.Workers
		}
	}
	if impl == core.Relax && eng.RelaxWorkers <= 0 {
		eng.RelaxWorkers = s.cfg.Workers
	}
	rep, err := eng.RunWith(g, impl)
	if err != nil {
		return "", bp.Result{}, fmt.Errorf("serve: %w", err)
	}
	return rep.Implementation.String(), rep.Result, nil
}

// marshalBeliefs copies the requested nodes' posteriors (all nodes when
// nodes is nil) into a name-keyed response map.
func marshalBeliefs(r *Resident, g *graph.Graph, nodes []int32) map[string][]float32 {
	if nodes == nil {
		out := make(map[string][]float32, g.NumNodes)
		for v := int32(0); v < int32(g.NumNodes); v++ {
			out[r.nodeLabel(v)] = append([]float32(nil), g.Belief(v)...)
		}
		return out
	}
	out := make(map[string][]float32, len(nodes))
	for _, v := range nodes {
		out[r.nodeLabel(v)] = append([]float32(nil), g.Belief(v)...)
	}
	return out
}
