package poolbp

// pool is a team of long-lived worker goroutines. It is the structural
// opposite of ompbp.parallelFor: the workers are spawned once per Run and
// every parallel region afterwards costs two channel operations per worker
// instead of a goroutine spawn and a WaitGroup join — the fork-join
// overhead the paper measures as a net slowdown for sub-millisecond
// regions (§2.4).
type pool struct {
	workers int
	cmds    []chan func(worker int)
	done    chan struct{}
}

// newPool spawns the team. Every worker blocks on its command channel
// until run hands it a region body or close retires it.
func newPool(workers int) *pool {
	p := &pool{
		workers: workers,
		cmds:    make([]chan func(worker int), workers),
		done:    make(chan struct{}, workers),
	}
	for w := range p.cmds {
		p.cmds[w] = make(chan func(worker int), 1)
		go func(w int) {
			for body := range p.cmds[w] {
				body(w)
				p.done <- struct{}{}
			}
		}(w)
	}
	return p
}

// run executes body on every worker and returns when all of them have
// finished — one parallel region with a barrier at its end. The channel
// round trip orders all worker memory accesses before run returns, so a
// region may read plainly what the previous region wrote atomically.
func (p *pool) run(body func(worker int)) {
	for _, c := range p.cmds {
		c <- body
	}
	for i := 0; i < p.workers; i++ {
		<-p.done
	}
}

// close retires the workers. The pool must be idle.
func (p *pool) close() {
	for _, c := range p.cmds {
		close(c)
	}
}

// Team is the exported handle to a persistent worker team, so that other
// engines (the relaxed-scheduling runtime in internal/relaxbp) can share
// this package's long-lived-worker machinery instead of growing their own.
type Team struct {
	p *pool
}

// NewTeam spawns a persistent team of the given size (minimum 1).
func NewTeam(workers int) *Team {
	if workers < 1 {
		workers = 1
	}
	return &Team{p: newPool(workers)}
}

// Workers returns the team size.
func (t *Team) Workers() int { return t.p.workers }

// Run executes body on every worker and returns when all have finished —
// one parallel region with a barrier at its end. The barrier orders all
// worker memory accesses before Run returns.
func (t *Team) Run(body func(worker int)) { t.p.run(body) }

// Close retires the workers. The team must be idle.
func (t *Team) Close() { t.p.close() }
