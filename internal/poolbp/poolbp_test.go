package poolbp

import (
	"math"
	"sync/atomic"
	"testing"

	"credo/internal/bp"
	"credo/internal/gen"
	"credo/internal/graph"
)

func maxBeliefDiff(a, b *graph.Graph) float64 {
	var maxd float64
	for i := range a.Beliefs {
		d := math.Abs(float64(a.Beliefs[i] - b.Beliefs[i]))
		if d > maxd {
			maxd = d
		}
	}
	return maxd
}

func testGraph(t *testing.T, n, m int, seed int64, states int) *graph.Graph {
	t.Helper()
	g, err := gen.Synthetic(n, m, gen.Config{Seed: seed, States: states})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestPoolPrimitive exercises the persistent team directly: every worker
// runs every region, and regions are serialized by the barrier.
func TestPoolPrimitive(t *testing.T) {
	const workers, regions = 7, 50
	p := newPool(workers)
	defer p.close()
	var total atomic.Int64
	for r := 0; r < regions; r++ {
		seen := make([]atomic.Bool, workers)
		p.run(func(w int) {
			if seen[w].Swap(true) {
				t.Errorf("region %d ran twice on worker %d", r, w)
			}
			total.Add(1)
		})
		for w := range seen {
			if !seen[w].Load() {
				t.Fatalf("region %d skipped worker %d", r, w)
			}
		}
	}
	if total.Load() != workers*regions {
		t.Errorf("ran %d bodies, want %d", total.Load(), workers*regions)
	}
}

// TestNodeDeterministicAcrossWorkerCounts is the pool engine's core
// contract: the per-node paradigm produces bitwise-identical beliefs and
// identical convergence bookkeeping for any team size.
func TestNodeDeterministicAcrossWorkerCounts(t *testing.T) {
	for _, queue := range []bool{false, true} {
		base := testGraph(t, 400, 1600, 21, 3)
		ref := base.Clone()
		refRes := RunNode(ref, Options{Workers: 1, Options: bp.Options{WorkQueue: queue}})
		for _, workers := range []int{4, 16} {
			g := base.Clone()
			res := RunNode(g, Options{Workers: workers, Options: bp.Options{WorkQueue: queue}})
			for i := range ref.Beliefs {
				if ref.Beliefs[i] != g.Beliefs[i] {
					t.Fatalf("queue=%v workers=%d: belief[%d] %v != %v (not bitwise identical)",
						queue, workers, i, g.Beliefs[i], ref.Beliefs[i])
				}
			}
			if res.Iterations != refRes.Iterations || res.Converged != refRes.Converged {
				t.Errorf("queue=%v workers=%d: iterations/converged %d/%v, want %d/%v",
					queue, workers, res.Iterations, res.Converged, refRes.Iterations, refRes.Converged)
			}
			if res.FinalDelta != refRes.FinalDelta {
				t.Errorf("queue=%v workers=%d: final delta %v, want %v",
					queue, workers, res.FinalDelta, refRes.FinalDelta)
			}
			if res.Ops.NodesProcessed != refRes.Ops.NodesProcessed ||
				res.Ops.EdgesProcessed != refRes.Ops.EdgesProcessed {
				t.Errorf("queue=%v workers=%d: work counts diverge: %+v vs %+v",
					queue, workers, res.Ops, refRes.Ops)
			}
		}
	}
}

// TestNodeMatchesSequential checks the per-node paradigm against the
// single-threaded engine (same Jacobi schedule, so only reduction order
// differs).
func TestNodeMatchesSequential(t *testing.T) {
	g1 := testGraph(t, 400, 1600, 5, 2)
	g2 := g1.Clone()
	bp.RunNode(g1, bp.Options{})
	RunNode(g2, Options{Workers: 4, CheckEvery: 1})
	if d := maxBeliefDiff(g1, g2); d > 1e-3 {
		t.Errorf("pool node beliefs diverge from sequential by %v", d)
	}
}

// TestEdgeMatchesSequentialOracle checks the per-edge paradigm against the
// sequential oracle within the convergence tolerance, with and without the
// work queue.
func TestEdgeMatchesSequentialOracle(t *testing.T) {
	for _, queue := range []bool{false, true} {
		g1 := testGraph(t, 400, 1600, 9, 3)
		g2 := g1.Clone()
		bp.RunEdge(g1, bp.Options{WorkQueue: queue})
		res := RunEdge(g2, Options{Workers: 4, Options: bp.Options{WorkQueue: queue}})
		if d := maxBeliefDiff(g1, g2); d > 5e-3 {
			t.Errorf("queue=%v: pool edge beliefs diverge from oracle by %v", queue, d)
		}
		if !res.Converged {
			t.Errorf("queue=%v: pool edge run did not converge", queue)
		}
	}
}

// TestBatchedConvergenceCheck verifies the CheckEvery contract: a batched
// run still converges, overshoots the per-sweep check by fewer than
// CheckEvery sweeps, and records one delta per check.
func TestBatchedConvergenceCheck(t *testing.T) {
	base := testGraph(t, 300, 1200, 17, 2)
	perSweep := RunNode(base.Clone(), Options{Workers: 2, CheckEvery: 1})
	batched := RunNode(base.Clone(), Options{Workers: 2, CheckEvery: 5, Options: bp.Options{RecordDeltas: true}})
	if !perSweep.Converged || !batched.Converged {
		t.Fatalf("runs did not converge: per-sweep %v, batched %v", perSweep.Converged, batched.Converged)
	}
	if batched.Iterations < perSweep.Iterations || batched.Iterations >= perSweep.Iterations+5 {
		t.Errorf("batched run took %d sweeps, want within [%d, %d)",
			batched.Iterations, perSweep.Iterations, perSweep.Iterations+5)
	}
	wantChecks := (batched.Iterations + 4) / 5
	if len(batched.Deltas) != wantChecks {
		t.Errorf("recorded %d deltas, want one per check (%d)", len(batched.Deltas), wantChecks)
	}
}

func TestObservedNodesClamped(t *testing.T) {
	g := testGraph(t, 80, 320, 3, 3)
	if err := g.Observe(11, 1); err != nil {
		t.Fatal(err)
	}
	for name, run := range map[string]func(*graph.Graph, Options) bp.Result{"node": RunNode, "edge": RunEdge} {
		c := g.Clone()
		run(c, Options{Workers: 4})
		b := c.Belief(11)
		if b[0] != 0 || b[1] != 1 || b[2] != 0 {
			t.Errorf("%s: observed node drifted to %v", name, b)
		}
	}
}

// TestWorkQueueReducesWork checks that the sharded queues actually skip
// quiescent items.
func TestWorkQueueReducesWork(t *testing.T) {
	base := testGraph(t, 500, 2000, 13, 2)
	full := RunNode(base.Clone(), Options{Workers: 4})
	queued := RunNode(base.Clone(), Options{Workers: 4, Options: bp.Options{WorkQueue: true}})
	if queued.Ops.NodesProcessed >= full.Ops.NodesProcessed {
		t.Errorf("node queue did not reduce work: %d >= %d", queued.Ops.NodesProcessed, full.Ops.NodesProcessed)
	}
	if queued.Ops.QueuePushes == 0 {
		t.Error("node queue recorded no pushes")
	}
	fullE := RunEdge(base.Clone(), Options{Workers: 4})
	queuedE := RunEdge(base.Clone(), Options{Workers: 4, Options: bp.Options{WorkQueue: true}})
	if queuedE.Ops.EdgesProcessed >= fullE.Ops.EdgesProcessed {
		t.Errorf("edge queue did not reduce work: %d >= %d", queuedE.Ops.EdgesProcessed, fullE.Ops.EdgesProcessed)
	}
}

// TestOpAccounting spot-checks the counters the perfmodel prices.
func TestOpAccounting(t *testing.T) {
	g := testGraph(t, 100, 400, 7, 2)
	res := RunEdge(g, Options{Workers: 3})
	if res.Ops.AtomicOps != res.Ops.EdgesProcessed*int64(g.States) {
		t.Errorf("atomic ops %d, want %d", res.Ops.AtomicOps, res.Ops.EdgesProcessed*int64(g.States))
	}
	if res.Ops.SyncOps == 0 {
		t.Error("edge run recorded no barrier crossings")
	}
	// Two regions per sweep without the queue, 3 workers each.
	if want := int64(res.Iterations) * 2 * 3; res.Ops.SyncOps != want {
		t.Errorf("sync ops %d, want %d", res.Ops.SyncOps, want)
	}
	nres := RunNode(g.Clone(), Options{Workers: 3})
	if nres.Ops.AtomicOps != 0 {
		t.Errorf("node paradigm touched %d atomics, want none", nres.Ops.AtomicOps)
	}
}

// TestDegenerateGraphs covers empty and single-node inputs and teams
// larger than the item space.
func TestDegenerateGraphs(t *testing.T) {
	empty := &graph.Graph{States: 2, InOffsets: []int32{0}, OutOffsets: []int32{0}}
	if err := empty.Validate(); err != nil {
		t.Fatalf("empty graph invalid: %v", err)
	}
	for name, run := range map[string]func(*graph.Graph, Options) bp.Result{"node": RunNode, "edge": RunEdge} {
		res := run(empty.Clone(), Options{Workers: 4})
		if !res.Converged {
			t.Errorf("%s: empty graph did not converge", name)
		}
		single := testGraph(t, 2, 1, 1, 2)
		res = run(single, Options{Workers: 16})
		if !res.Converged {
			t.Errorf("%s: tiny graph did not converge under an oversized team", name)
		}
		if err := single.Validate(); err != nil {
			t.Errorf("%s: tiny graph corrupted: %v", name, err)
		}
	}
}

// TestDampingStabilizes mirrors the bp property test: damping must not
// break convergence or produce invalid distributions.
func TestDampingStabilizes(t *testing.T) {
	g := testGraph(t, 200, 800, 29, 2)
	res := RunNode(g, Options{Workers: 4, Options: bp.Options{Damping: 0.3}})
	if !res.Converged {
		t.Error("damped run did not converge")
	}
	if err := g.Validate(); err != nil {
		t.Errorf("damped beliefs invalid: %v", err)
	}
}

// TestDampedNodeDeterministicAcrossWorkerCounts extends the pool's
// fixpoint-determinism contract to damped mode: the in-kernel blend is a
// pure function of the previous sweep's beliefs, so damped runs must stay
// bitwise identical across team sizes exactly like vanilla runs.
func TestDampedNodeDeterministicAcrossWorkerCounts(t *testing.T) {
	base := testGraph(t, 400, 1600, 21, 3)
	ref := base.Clone()
	refRes := RunNode(ref, Options{Workers: 1, Options: bp.Options{Damping: 0.5}})
	for _, workers := range []int{4, 16} {
		g := base.Clone()
		res := RunNode(g, Options{Workers: workers, Options: bp.Options{Damping: 0.5}})
		for i := range ref.Beliefs {
			if ref.Beliefs[i] != g.Beliefs[i] {
				t.Fatalf("workers=%d: damped belief[%d] %v != %v (not bitwise identical)",
					workers, i, g.Beliefs[i], ref.Beliefs[i])
			}
		}
		if res.Iterations != refRes.Iterations || res.Converged != refRes.Converged {
			t.Errorf("workers=%d: iterations/converged %d/%v, want %d/%v",
				workers, res.Iterations, res.Converged, refRes.Iterations, refRes.Converged)
		}
	}
}

// TestShardCountIndependentOfWorkers pins the property the determinism
// contract rests on.
func TestShardCountIndependentOfWorkers(t *testing.T) {
	for _, items := range []int{0, 1, 7, 100, 2047, 2048, 100000} {
		s := shardCount(items, 0)
		if items > 0 && s < 1 {
			t.Errorf("items=%d: shard count %d < 1", items, s)
		}
		if s > items && items > 0 {
			t.Errorf("items=%d: more shards (%d) than items", items, s)
		}
		// Ranges must tile the item space exactly.
		covered := 0
		for sh := 0; sh < s; sh++ {
			lo, hi := shardRange(sh, items, s)
			covered += hi - lo
		}
		if covered != items {
			t.Errorf("items=%d shards=%d cover %d items", items, s, covered)
		}
	}
	if got := shardCount(100, 16); got != 16 {
		t.Errorf("override ignored: %d", got)
	}
	if got := shardCount(8, 100); got != 8 {
		t.Errorf("override not clamped to items: %d", got)
	}
}
