package poolbp

import (
	"sync/atomic"

	"credo/internal/bp"
	"credo/internal/graph"
	"credo/internal/kernel"
	"credo/internal/telemetry"
)

// engBatch is the batched pool engine's name in telemetry events.
const engBatch = "pool.batch"

// RunBatch executes the K queries staged in bs over the shared structure
// g on the persistent pool — the parallel form of bp.RunBatch. Workers
// claim contiguous node shards of the *whole batch*: a shard carries its
// K-lane belief range into the next buffer, then recomputes every lane
// of its active nodes through the kernel layer's SoA batch path, so one
// random-order pass over adjacency and matrices per sweep services all K
// queries on all cores.
//
// Determinism mirrors RunNode: the shard count derives from the node
// count alone, each node (all its lanes) is owned by exactly one worker
// per sweep, updates are Jacobi against a double buffer, and per-shard
// per-lane deltas are reduced serially in shard order — so the final
// beliefs and every lane's stopping sweep are bitwise identical for any
// worker count, and each lane matches a solo RunNode of its query run
// with the same CheckEvery. Lane convergence is evaluated at the same
// batched check boundaries as RunNode (every CheckEvery sweeps); a lane
// that passes freezes — folds stop writing it — while its batch-mates
// continue. The work queue option is ignored, as in bp.RunBatch:
// per-lane frontiers would forfeit the SoA amortization.
func RunBatch(g *graph.Graph, bs *graph.BatchState, opts Options) bp.BatchResult {
	opts = opts.withDefaults()
	o := opts.Options
	defer o.Trace.Span(engBatch).End()
	s := g.States
	kk := bs.K
	used := bs.Used
	gatherLines := int64((s*kk*4 + 63) / 64) // cache lines per K-wide parent gather
	matLines := int64(0)
	if !g.SharedMatrix() {
		matLines = int64((s*s*4 + 63) / 64)
	}

	shards := shardCount(g.NumNodes, opts.Shards)
	workers := opts.Workers

	// Double buffer over the batch state: cur is read, nxt written.
	cur := bs.Beliefs
	nxt := make([]float32, len(bs.Beliefs))
	curIsBeliefs := true

	shardLaneDelta := make([]float32, shards*kk)
	laneBuf := make([]float32, workers*kk)
	workerOps := make([]bp.OpCounts, workers)
	bk := kernel.NewBatch(g, o.Kernel, kk)
	bks := make([]kernel.BatchScratch, workers)

	active := make([]bool, kk)
	for l := 0; l < used; l++ {
		active[l] = true
	}
	lanes := make([]bp.LaneResult, used)
	laneNodes := make([]int64, used)
	laneEdges := make([]int64, used)
	for v := 0; v < g.NumNodes; v++ {
		deg := int64(g.InOffsets[v+1] - g.InOffsets[v])
		for l := 0; l < used; l++ {
			if !bs.Observed[v*kk+l] {
				laneNodes[l]++
				laneEdges[l] += deg
			}
		}
	}
	laneDelta := make([]float32, kk)
	live := used

	var res bp.BatchResult
	res.Lanes = lanes

	probe := o.Probe
	ctx, endTask := telemetry.BeginRun(engBatch)
	emitRunStart(probe, engBatch, int64(g.NumNodes)*int64(used), o.Threshold)

	p := newPool(workers)
	defer p.close()
	rr := newRegionRunner(p, workers, probe != nil)
	var cursor atomic.Int64
	var lastNodes, lastEdges int64

	// Compute region: built once, reads cur/nxt through the enclosing
	// variables. The active mask is only mutated at check boundaries,
	// where every worker is parked at the pool barrier.
	computeBody := func(w int) {
		ops := &workerOps[w]
		sc := &bks[w]
		ld := laneBuf[w*kk : w*kk+kk]
		for {
			sh := int(cursor.Add(1)) - 1
			if sh >= shards {
				return
			}
			lo, hi := shardRange(sh, g.NumNodes, shards)
			copy(nxt[lo*s*kk:hi*s*kk], cur[lo*s*kk:hi*s*kk])
			ops.MemLoads += int64((hi - lo) * s * kk)
			ops.MemStores += int64((hi - lo) * s * kk)
			for l := range ld {
				ld[l] = 0
			}
			for v := int32(lo); v < int32(hi); v++ {
				deg, wrote := bk.NodeUpdateBatch(sc, nxt, v, cur, bs.Priors, bs.Observed, active)
				if wrote == 0 {
					continue
				}
				d64, w64 := int64(deg), int64(wrote)
				ops.NodesProcessed += w64
				ops.EdgesProcessed += d64 * w64
				ops.RandomLoads += d64 * (gatherLines + matLines)
				ops.MemLoads += d64*int64(s)*w64 + 2*int64(s)*w64
				ops.MatrixOps += d64 * int64(s*s) * w64
				ops.LogOps += (d64*int64(s) + int64(s)) * w64
				ops.MemStores += int64(s) * w64
				base := int(v) * s * kk
				for l := 0; l < used; l++ {
					if !active[l] || bs.Observed[int(v)*kk+l] {
						continue
					}
					var d float32
					for j := 0; j < s; j++ {
						x := nxt[base+j*kk+l] - cur[base+j*kk+l]
						if x < 0 {
							x = -x
						}
						d += x
					}
					ld[l] += d
				}
			}
			copy(shardLaneDelta[sh*kk:sh*kk+kk], ld)
		}
	}

	for sweep := 0; sweep < o.MaxIterations && live > 0; sweep++ {
		res.Iterations = sweep + 1
		res.Ops.Iterations++
		for i := range shardLaneDelta {
			shardLaneDelta[i] = 0
		}

		cursor.Store(0)
		endCompute := telemetry.StartRegion(ctx, "compute")
		rr.run(computeBody)
		endCompute()
		res.Ops.SyncOps += int64(workers)

		cur, nxt = nxt, cur
		curIsBeliefs = !curIsBeliefs
		for l := 0; l < used; l++ {
			if active[l] {
				lanes[l].Updates += laneNodes[l]
				lanes[l].Edges += laneEdges[l]
			}
		}

		if (sweep+1)%opts.CheckEvery == 0 || sweep+1 == o.MaxIterations {
			// Reduce per-shard per-lane deltas serially in shard order —
			// the same association a solo run's shard reduction uses.
			for l := 0; l < kk; l++ {
				laneDelta[l] = 0
			}
			for sh := 0; sh < shards; sh++ {
				row := shardLaneDelta[sh*kk : sh*kk+kk]
				for l := 0; l < used; l++ {
					laneDelta[l] += row[l]
				}
			}
			var sum float32
			for l := 0; l < used; l++ {
				if !active[l] {
					continue
				}
				sum += laneDelta[l]
				lanes[l].Iterations = sweep + 1
				lanes[l].FinalDelta = laneDelta[l]
				if laneDelta[l] < o.Threshold {
					lanes[l].Converged = true
					active[l] = false
					live--
				}
			}
			if probe != nil {
				var nodes, edges, fast, resc int64
				for w := range workerOps {
					nodes += workerOps[w].NodesProcessed
					edges += workerOps[w].EdgesProcessed
					fast += bks[w].Counters.FastPath
					resc += bks[w].Counters.Rescales
				}
				probe.Emit(telemetry.Event{
					Kind:     telemetry.KindIteration,
					Engine:   engBatch,
					Iter:     int32(sweep + 1),
					Delta:    sum,
					Updated:  nodes - lastNodes,
					Edges:    edges - lastEdges,
					Active:   int64(live),
					Items:    int64(used),
					FastPath: fast,
					Rescales: resc,
				})
				lastNodes, lastEdges = nodes, edges
			}
		}
	}

	if !curIsBeliefs {
		copy(bs.Beliefs, cur)
	}
	res.Converged = live == 0
	for _, ops := range workerOps {
		res.Ops.Add(ops)
	}
	for w := range bks {
		res.Ops.KernelFastPath += bks[w].Counters.FastPath
		res.Ops.RescaleOps += bks[w].Counters.Rescales
	}
	rr.emitWorkers(probe, engBatch)
	if probe != nil {
		var r bp.Result
		r.Iterations = res.Iterations
		r.Converged = res.Converged
		for l := 0; l < used; l++ {
			r.FinalDelta += lanes[l].FinalDelta
		}
		r.Ops = res.Ops
		emitRunEnd(probe, engBatch, &r)
	}
	endTask()
	return res
}
