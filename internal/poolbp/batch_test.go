package poolbp

import (
	"fmt"
	"math"
	"testing"

	"credo/internal/bp"
	"credo/internal/gen"
	"credo/internal/graph"
	"credo/internal/kernel"
)

// laneEvidence mirrors the bp package's batch-test evidence spread: lane
// 0 evidence-free, odd lanes one clamp, lanes ≥ 4 two.
func laneEvidence(lane, numNodes, states int) [][2]int {
	if lane == 0 {
		return nil
	}
	ev := [][2]int{{(lane * 7) % numNodes, lane % states}}
	if lane >= 4 {
		ev = append(ev, [2]int{(lane*13 + 3) % numNodes, (lane + 1) % states})
	}
	return ev
}

// TestPoolBatchLaneEquivalence pins the parallel batch against the solo
// pool engine: every lane of a pool batch must be bitwise the solo
// RunNode of its query at the same CheckEvery — the pool's shard-ordered
// delta reduction and Jacobi double buffer make both sides exact — and
// that must hold at every worker count.
func TestPoolBatchLaneEquivalence(t *testing.T) {
	for _, c := range []struct {
		states     int
		k          int
		checkEvery int
		variant    kernel.Variant
	}{
		{2, 8, 1, kernel.VariantVanilla},
		{2, 8, 4, kernel.VariantVanilla},
		{3, 8, 1, kernel.VariantDamped},
		{5, 32, 1, kernel.VariantVanilla},
	} {
		name := fmt.Sprintf("states=%d/k=%d/check=%d/variant=%v", c.states, c.k, c.checkEvery, c.variant)
		t.Run(name, func(t *testing.T) {
			base, err := gen.Synthetic(150, 600, gen.Config{Seed: 9, States: c.states, Shared: c.states == 2})
			if err != nil {
				t.Fatalf("Synthetic: %v", err)
			}
			opts := Options{
				Options:    bp.Options{Variant: c.variant},
				Workers:    4,
				CheckEvery: c.checkEvery,
			}

			bs, err := graph.NewBatchState(base, c.k)
			if err != nil {
				t.Fatalf("NewBatchState: %v", err)
			}
			for l := 0; l < c.k; l++ {
				for _, e := range laneEvidence(l, base.NumNodes, c.states) {
					if err := bs.Observe(l, int32(e[0]), e[1]); err != nil {
						t.Fatalf("Observe: %v", err)
					}
				}
			}
			res := RunBatch(base, bs, opts)

			lane := make([]float32, base.NumNodes*base.States)
			for l := 0; l < c.k; l++ {
				sg := base.Clone()
				for _, e := range laneEvidence(l, base.NumNodes, c.states) {
					if err := sg.Observe(int32(e[0]), e[1]); err != nil {
						t.Fatalf("solo Observe: %v", err)
					}
				}
				sres := RunNode(sg, opts)
				lr := res.Lanes[l]
				if lr.Iterations != sres.Iterations || lr.Converged != sres.Converged {
					t.Errorf("lane %d: iterations/converged = %d/%v, solo %d/%v",
						l, lr.Iterations, lr.Converged, sres.Iterations, sres.Converged)
				}
				if math.Float32bits(lr.FinalDelta) != math.Float32bits(sres.FinalDelta) {
					t.Errorf("lane %d: final delta %g, solo %g", l, lr.FinalDelta, sres.FinalDelta)
				}
				bs.ExtractLane(l, lane)
				for i := range lane {
					if math.Float32bits(lane[i]) != math.Float32bits(sg.Beliefs[i]) {
						t.Fatalf("lane %d: belief[%d] = %g, solo %g (not bitwise)",
							l, i, lane[i], sg.Beliefs[i])
					}
				}
			}
		})
	}
}

// TestPoolBatchWorkerDeterminism pins the worker-count independence of
// the batched pool: the shard count derives from the node count alone
// and per-shard per-lane deltas reduce in shard order, so 1, 3 and 8
// workers must produce bitwise-identical batches.
func TestPoolBatchWorkerDeterminism(t *testing.T) {
	base, err := gen.Synthetic(200, 900, gen.Config{Seed: 21, States: 3, Shared: false})
	if err != nil {
		t.Fatalf("Synthetic: %v", err)
	}
	const k = 8
	run := func(workers int) (*graph.BatchState, bp.BatchResult) {
		bs, err := graph.NewBatchState(base, k)
		if err != nil {
			t.Fatalf("NewBatchState: %v", err)
		}
		for l := 0; l < k; l++ {
			for _, e := range laneEvidence(l, base.NumNodes, 3) {
				if err := bs.Observe(l, int32(e[0]), e[1]); err != nil {
					t.Fatalf("Observe: %v", err)
				}
			}
		}
		return bs, RunBatch(base, bs, Options{Workers: workers})
	}
	refState, refRes := run(1)
	for _, workers := range []int{3, 8} {
		st, res := run(workers)
		for l := 0; l < k; l++ {
			if res.Lanes[l] != refRes.Lanes[l] {
				t.Errorf("workers=%d lane %d: %+v, want %+v", workers, l, res.Lanes[l], refRes.Lanes[l])
			}
		}
		for i := range st.Beliefs {
			if math.Float32bits(st.Beliefs[i]) != math.Float32bits(refState.Beliefs[i]) {
				t.Fatalf("workers=%d: belief[%d] = %g, 1-worker %g (not bitwise)",
					workers, i, st.Beliefs[i], refState.Beliefs[i])
			}
		}
	}
}
