package poolbp

import (
	"time"

	"credo/internal/bp"
	"credo/internal/telemetry"
)

// Engine names as they appear in telemetry events.
const (
	engNode = "pool.node"
	engEdge = "pool.edge"
)

// regionRunner launches parallel regions on the pool. With a probe
// attached it wraps every region body in per-worker busy-time
// accounting and accumulates the regions' wall-clock span, which is
// what the per-worker utilization events report (sync wait = wall −
// busy: time a worker spent parked at the pool barrier or starved by
// uneven shards). With no probe it launches directly — the timed
// closure is never built, so the untimed path costs nothing beyond one
// branch.
type regionRunner struct {
	p     *pool
	timed bool
	busy  []int64 // per-worker ns spent executing region bodies
	wall  int64   // total wall ns across all regions
}

func newRegionRunner(p *pool, workers int, timed bool) *regionRunner {
	r := &regionRunner{p: p, timed: timed}
	if timed {
		r.busy = make([]int64, workers)
	}
	return r
}

// run executes one parallel region. Each worker owns its busy slot and
// the pool barrier orders the writes before emitWorkers reads them.
func (r *regionRunner) run(body func(int)) {
	if !r.timed {
		r.p.run(body)
		return
	}
	start := time.Now()
	r.p.run(func(w int) {
		t0 := time.Now()
		body(w)
		r.busy[w] += time.Since(t0).Nanoseconds()
	})
	r.wall += time.Since(start).Nanoseconds()
}

// emitWorkers reports one KindWorker utilization event per worker.
func (r *regionRunner) emitWorkers(probe telemetry.Probe, engine string) {
	if !r.timed || probe == nil {
		return
	}
	for w, b := range r.busy {
		probe.Emit(telemetry.Event{
			Kind:   telemetry.KindWorker,
			Engine: engine,
			Worker: int32(w),
			BusyNs: b,
			WallNs: r.wall,
		})
	}
}

// emitRunStart and emitRunEnd mirror the serial engines' run framing;
// both are nil-safe so the disabled path never builds an event.
func emitRunStart(probe telemetry.Probe, engine string, items int64, threshold float32) {
	if probe == nil {
		return
	}
	probe.Emit(telemetry.Event{
		Kind:      telemetry.KindRunStart,
		Engine:    engine,
		Items:     items,
		Threshold: threshold,
	})
}

func emitRunEnd(probe telemetry.Probe, engine string, res *bp.Result) {
	if probe == nil {
		return
	}
	probe.Emit(telemetry.Event{
		Kind:      telemetry.KindRunEnd,
		Engine:    engine,
		Iter:      int32(res.Iterations),
		Delta:     res.FinalDelta,
		Converged: res.Converged,
		Updated:   res.Ops.NodesProcessed,
		Edges:     res.Ops.EdgesProcessed,
		FastPath:  res.Ops.KernelFastPath,
		Rescales:  res.Ops.RescaleOps,
	})
}
