package poolbp

import (
	"sync"
	"testing"

	"credo/internal/bp"
	"credo/internal/gen"
	"credo/internal/graph"
	"credo/internal/ompbp"
	"credo/internal/perfmodel"
)

// The benchmark workload is the generated million-edge synthetic graph
// (250k nodes, 1M directed edges), the scale at which the paper's parallel
// comparisons run. Built once and cloned per measurement.
const (
	benchNodes   = 250_000
	benchEdges   = 1_000_000
	benchWorkers = 8
	benchSweeps  = 5
)

var (
	benchOnce  sync.Once
	benchGraph *graph.Graph
)

func millionEdgeGraph(b *testing.B) *graph.Graph {
	b.Helper()
	benchOnce.Do(func() {
		g, err := gen.Synthetic(benchNodes, benchEdges, gen.Config{Seed: 42, States: 2, Shared: true})
		if err != nil {
			b.Fatal(err)
		}
		benchGraph = g
	})
	return benchGraph
}

// benchOpts pins the sweep count so every engine does identical total work
// and the measurement compares runtime overhead, not convergence luck.
func benchOpts() bp.Options {
	return bp.Options{MaxIterations: benchSweeps, Threshold: 1e-12}
}

// reportModelled attaches the perfmodel's full-scale time (the number
// EXPERIMENTS.md quotes; wall clock on the test host depends on its core
// count) as a custom benchmark metric.
func reportModelled(b *testing.B, d float64) {
	b.ReportMetric(d, "modelled-ms/op")
}

func BenchmarkMillionEdgeNode(b *testing.B) {
	base := millionEdgeGraph(b)
	cpu := perfmodel.I7_7700HQ()

	b.Run("seq", func(b *testing.B) {
		var last bp.Result
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			g := base.Clone()
			b.StartTimer()
			last = bp.RunNode(g, benchOpts())
		}
		reportModelled(b, cpu.SequentialTime(last.Ops).Seconds()*1e3)
	})
	b.Run("omp8", func(b *testing.B) {
		var last bp.Result
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			g := base.Clone()
			b.StartTimer()
			last = ompbp.RunNode(g, ompbp.Options{Threads: benchWorkers, Options: benchOpts()})
		}
		reportModelled(b, cpu.ParallelTime(last.Ops, perfmodel.ParallelOptions{Threads: benchWorkers}).Seconds()*1e3)
	})
	b.Run("pool8", func(b *testing.B) {
		var last bp.Result
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			g := base.Clone()
			b.StartTimer()
			last = RunNode(g, Options{Workers: benchWorkers, Options: benchOpts()})
		}
		reportModelled(b, cpu.PoolTime(last.Ops, perfmodel.PoolOptions{Workers: benchWorkers}).Seconds()*1e3)
	})
}

func BenchmarkMillionEdgeEdge(b *testing.B) {
	base := millionEdgeGraph(b)
	cpu := perfmodel.I7_7700HQ()

	b.Run("seq", func(b *testing.B) {
		var last bp.Result
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			g := base.Clone()
			b.StartTimer()
			last = bp.RunEdge(g, benchOpts())
		}
		reportModelled(b, cpu.SequentialTime(last.Ops).Seconds()*1e3)
	})
	b.Run("omp8", func(b *testing.B) {
		var last bp.Result
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			g := base.Clone()
			b.StartTimer()
			last = ompbp.RunEdge(g, ompbp.Options{Threads: benchWorkers, Options: benchOpts()})
		}
		reportModelled(b, cpu.ParallelTime(last.Ops, perfmodel.ParallelOptions{Threads: benchWorkers}).Seconds()*1e3)
	})
	b.Run("pool8", func(b *testing.B) {
		var last bp.Result
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			g := base.Clone()
			b.StartTimer()
			last = RunEdge(g, Options{Workers: benchWorkers, Options: benchOpts()})
		}
		reportModelled(b, cpu.PoolTime(last.Ops, perfmodel.PoolOptions{Workers: benchWorkers}).Seconds()*1e3)
	})
}

// BenchmarkPoolBarrier isolates the cost of one signal-and-join round trip
// of the persistent team — the per-region price poolbp pays instead of
// ompbp's per-region goroutine spawn.
func BenchmarkPoolBarrier(b *testing.B) {
	p := newPool(benchWorkers)
	defer p.close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.run(func(int) {})
	}
}
