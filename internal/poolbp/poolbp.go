// Package poolbp is the persistent worker-pool runtime for loopy BP — the
// Go-native answer to the fork-join OpenMP port of paper §2.4 (reproduced
// in ompbp). Where ompbp forks and joins fresh goroutines around every
// sub-millisecond loop, poolbp spins up a fixed team once per Run and
// drives it with channel signals, following the long-lived-worker designs
// of the relaxed-scheduling BP literature (Aksenov et al.; Van der Merwe
// et al.).
//
// Both paradigms of the paper are provided:
//
//   - RunNode: per-node, pull-based processing. No atomics touch the
//     numeric state; each node is owned by exactly one worker per sweep
//     and updates are Jacobi-style against a double buffer, so the final
//     beliefs are bitwise identical for any worker count.
//   - RunEdge: per-edge processing with the sharded atomic combine into
//     the destination accumulators (the CAS cost the paper weighs against
//     the node paradigm's redundant loads).
//
// Work is organized as sharded queues of unconverged items: the item space
// is cut into contiguous shards (a count derived from the graph alone, so
// results never depend on the worker count), each shard keeps its own
// active list, and workers claim whole shards from an atomic cursor.
// Convergence bookkeeping is batched — per-shard partial deltas are
// reduced serially in shard order only every CheckEvery sweeps — so no
// global barrier or shared counter is touched per item.
package poolbp

import (
	"math"
	"runtime"
	"sync/atomic"

	"credo/internal/bp"
	"credo/internal/graph"
	"credo/internal/kernel"
	"credo/internal/ompbp"
	"credo/internal/telemetry"
)

// DefaultCheckEvery is the convergence-check batching factor: the global
// delta reduction runs once per this many sweeps.
const DefaultCheckEvery = 4

// Options configures a pool run.
type Options struct {
	bp.Options

	// Workers is the size of the persistent team. Zero means
	// runtime.NumCPU().
	Workers int

	// CheckEvery batches the convergence check: the per-shard deltas are
	// reduced and compared against the threshold every CheckEvery sweeps
	// (and always on the final sweep and on queue exhaustion). A run may
	// therefore execute up to CheckEvery-1 sweeps past the point a
	// per-sweep check would have stopped it. Zero means DefaultCheckEvery.
	// With RecordDeltas set, Result.Deltas holds one entry per check, not
	// per sweep.
	CheckEvery int

	// Shards overrides the shard count of the paradigm's item space
	// (nodes for RunNode, edges for RunEdge). Zero derives it from the
	// item count alone — never from Workers, which is what keeps the
	// per-node paradigm deterministic under any team size.
	Shards int
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.NumCPU()
	}
	if o.CheckEvery <= 0 {
		o.CheckEvery = DefaultCheckEvery
	}
	if o.Threshold == 0 {
		o.Threshold = bp.DefaultThreshold
	}
	if o.MaxIterations == 0 {
		o.MaxIterations = bp.DefaultMaxIterations
	}
	if o.QueueThreshold == 0 {
		o.QueueThreshold = o.Threshold
	}
	o.Options = o.Options.ResolveVariant()
	return o
}

// shardCount picks the number of item shards: enough for dynamic load
// balance on large graphs, at least ~8 items per shard on small ones. It
// depends only on the item count (and an explicit override), never on the
// worker count.
func shardCount(items, override int) int {
	if override > 0 {
		if override > items {
			override = items
		}
		if override < 1 {
			override = 1
		}
		return override
	}
	s := 256
	if items < 8*s {
		s = (items + 7) / 8
	}
	if s < 1 {
		s = 1
	}
	return s
}

// shardRange returns the half-open item range of shard sh.
func shardRange(sh, items, shards int) (lo, hi int) {
	return sh * items / shards, (sh + 1) * items / shards
}

// initialShardLists fills one active list per shard with every item id.
func initialShardLists(items, shards int) [][]int32 {
	lists := make([][]int32, shards)
	for sh := range lists {
		lo, hi := shardRange(sh, items, shards)
		lst := make([]int32, 0, hi-lo)
		for i := lo; i < hi; i++ {
			lst = append(lst, int32(i))
		}
		lists[sh] = lst
	}
	return lists
}

// newShardRebuilder returns the frontier-rebuild region as a reusable
// step: every shard rescans its item range, promotes marked items into its
// active list and clears the marks. Each shard is rebuilt by exactly one
// worker and items are promoted in id order, so the resulting queues are
// independent of the worker count. The returned func runs one rebuild and
// reports the total number of active items; building the region body once
// per run keeps the sweep loop allocation-free.
func newShardRebuilder(run func(func(int)), cursor *atomic.Int64, lists [][]int32, mark []uint32, items, shards int, workerOps []bp.OpCounts) func() int {
	body := func(w int) {
		ops := &workerOps[w]
		for {
			sh := int(cursor.Add(1)) - 1
			if sh >= shards {
				return
			}
			lo, hi := shardRange(sh, items, shards)
			lst := lists[sh][:0]
			for i := lo; i < hi; i++ {
				// The marks were stored atomically in the previous
				// region; the pool barrier orders them before this read.
				if mark[i] != 0 {
					mark[i] = 0
					lst = append(lst, int32(i))
					ops.QueuePushes++
				}
			}
			lists[sh] = lst
		}
	}
	return func() int {
		cursor.Store(0)
		run(body)
		total := 0
		for _, lst := range lists {
			total += len(lst)
		}
		return total
	}
}

// markOnce sets mark[i] if it is not already set. Marking is idempotent,
// so concurrent markers need no CAS — the load merely skips redundant
// stores on hot items.
func markOnce(mark []uint32, i int32) {
	if atomic.LoadUint32(&mark[i]) == 0 {
		atomic.StoreUint32(&mark[i], 1)
	}
}

// RunNode executes loopy BP with per-node processing on the persistent
// pool. Beliefs are double-buffered and every node is owned by exactly one
// worker per sweep, so no atomics touch the numeric state and the final
// beliefs are bitwise identical for any worker count.
func RunNode(g *graph.Graph, opts Options) bp.Result {
	opts = opts.withDefaults()
	o := opts.Options
	defer o.Trace.Span(engNode).End()
	s := g.States
	gatherLines := int64((s*4 + 63) / 64) // cache lines per random parent gather
	matLines := int64(0)                  // per-edge joint matrices are a second random gather
	if !g.SharedMatrix() {
		matLines = int64((s*s*4 + 63) / 64)
	}

	shards := shardCount(g.NumNodes, opts.Shards)
	workers := opts.Workers

	// Double buffer: cur is read, nxt written; the pair swaps each sweep.
	cur := g.Beliefs
	nxt := make([]float32, len(g.Beliefs))
	curIsBeliefs := true

	activeNodes := initialShardLists(g.NumNodes, shards)
	mark := make([]uint32, g.NumNodes)
	shardDelta := make([]float32, shards)
	workerOps := make([]bp.OpCounts, workers)
	k := kernel.New(g, o.Kernel)
	ks := make([]kernel.Scratch, workers)

	var res bp.Result
	if o.WorkQueue {
		res.Ops.QueuePushes += int64(g.NumNodes)
	}

	probe := o.Probe
	ctx, endTask := telemetry.BeginRun(engNode)
	emitRunStart(probe, engNode, int64(g.NumNodes), o.Threshold)

	p := newPool(workers)
	defer p.close()
	rr := newRegionRunner(p, workers, probe != nil)
	var cursor atomic.Int64
	totalActive := g.NumNodes
	rebuild := newShardRebuilder(rr.run, &cursor, activeNodes, mark, g.NumNodes, shards, workerOps)
	var lastNodes, lastEdges int64

	// Compute region: workers claim shards; a shard first carries its
	// belief range into the next buffer, then recomputes its active nodes
	// against the current buffer (Jacobi) through the shared kernel. The
	// region body is built once — it reads cur/nxt through the enclosing
	// variables, which swap between sweeps — so steady-state sweeps
	// allocate nothing. Per-node accumulation order is the in-edge order
	// regardless of which worker owns the shard, so the kernel's numerics
	// stay bitwise identical for any worker count.
	computeBody := func(w int) {
		ops := &workerOps[w]
		sc := &ks[w]
		for {
			sh := int(cursor.Add(1)) - 1
			if sh >= shards {
				return
			}
			lo, hi := shardRange(sh, g.NumNodes, shards)
			copy(nxt[lo*s:hi*s], cur[lo*s:hi*s])
			ops.MemLoads += int64((hi - lo) * s)
			ops.MemStores += int64((hi - lo) * s)
			var d float32
			for _, v := range activeNodes[sh] {
				if g.Observed[v] {
					continue
				}
				ops.NodesProcessed++
				b := nxt[int(v)*s : int(v)*s+s]
				old := cur[int(v)*s : int(v)*s+s]
				deg := int64(k.NodeUpdate(sc, b, v, cur)) // damping applied in-kernel
				dv := graph.L1Diff(b, old)
				d += dv
				ops.EdgesProcessed += deg
				ops.RandomLoads += deg * (gatherLines + matLines)
				ops.MemLoads += deg*int64(s) + int64(2*s)
				ops.MatrixOps += deg * int64(s*s)
				ops.LogOps += deg*int64(s) + int64(s)
				ops.MemStores += int64(s)
				if o.WorkQueue && dv > o.QueueThreshold {
					// The node moved: its successors' inputs changed.
					olo, ohi := g.OutOffsets[v], g.OutOffsets[v+1]
					for _, e := range g.OutEdges[olo:ohi] {
						markOnce(mark, g.EdgeDst[e])
					}
					// A damped update moved the belief only (1−d) of the way
					// to the recombination, so the node itself still owes a
					// d·gap follow-up: it must stay active even when none of
					// its neighbours move back above the threshold, or it is
					// stranded short of the fixpoint.
					if o.Damping > 0 {
						markOnce(mark, v)
					}
				}
			}
			shardDelta[sh] = d
		}
	}

	for sweep := 0; sweep < o.MaxIterations; sweep++ {
		res.Iterations = sweep + 1
		res.Ops.Iterations++
		for sh := range shardDelta {
			shardDelta[sh] = 0
		}

		cursor.Store(0)
		endCompute := telemetry.StartRegion(ctx, "compute")
		rr.run(computeBody)
		endCompute()
		res.Ops.SyncOps += int64(workers)

		if o.WorkQueue {
			endRebuild := telemetry.StartRegion(ctx, "rebuild")
			totalActive = rebuild()
			endRebuild()
			res.Ops.SyncOps += int64(workers)
		}

		cur, nxt = nxt, cur
		curIsBeliefs = !curIsBeliefs

		exhausted := o.WorkQueue && totalActive == 0
		if (sweep+1)%opts.CheckEvery == 0 || sweep+1 == o.MaxIterations || exhausted {
			var sum float32
			for _, d := range shardDelta {
				sum += d
			}
			res.FinalDelta = sum
			if o.RecordDeltas {
				res.Deltas = append(res.Deltas, sum)
			}
			// Check boundary: the workers are parked at the pool barrier,
			// so the per-worker counters are quiescent and safe to reduce.
			if probe != nil {
				var nodes, edges, fast, resc int64
				for w := range workerOps {
					nodes += workerOps[w].NodesProcessed
					edges += workerOps[w].EdgesProcessed
					fast += ks[w].Counters.FastPath
					resc += ks[w].Counters.Rescales
				}
				active := int64(-1)
				if o.WorkQueue {
					active = int64(totalActive)
				}
				probe.Emit(telemetry.Event{
					Kind:     telemetry.KindIteration,
					Engine:   engNode,
					Iter:     int32(sweep + 1),
					Delta:    sum,
					Updated:  nodes - lastNodes,
					Edges:    edges - lastEdges,
					Active:   active,
					Items:    int64(g.NumNodes),
					FastPath: fast,
					Rescales: resc,
				})
				lastNodes, lastEdges = nodes, edges
			}
			if sum < o.Threshold || exhausted {
				res.Converged = true
				break
			}
		}
	}

	if !curIsBeliefs {
		copy(g.Beliefs, cur)
	}
	for _, ops := range workerOps {
		res.Ops.Add(ops)
	}
	for w := range ks {
		res.Ops.KernelFastPath += ks[w].Counters.FastPath
		res.Ops.RescaleOps += ks[w].Counters.Rescales
	}
	rr.emitWorkers(probe, engNode)
	emitRunEnd(probe, engNode, &res)
	endTask()
	return res
}

// RunEdge executes loopy BP with per-edge processing on the persistent
// pool. Edges sharing a destination combine into its log-domain
// accumulator with an atomic CAS add; nodes then fold their accumulator
// with their prior in a second region. Scheduling is nondeterministic, so
// the result matches the sequential oracle within the convergence
// tolerance rather than bitwise.
func RunEdge(g *graph.Graph, opts Options) bp.Result {
	opts = opts.withDefaults()
	o := opts.Options
	defer o.Trace.Span(engEdge).End()
	s := g.States
	matLines := int64(0)
	if !g.SharedMatrix() {
		matLines = int64((s*s*4 + 63) / 64)
	}

	eShards := shardCount(g.NumEdges, opts.Shards)
	nShards := shardCount(g.NumNodes, 0)
	workers := opts.Workers

	prev := append([]float32(nil), g.Beliefs...)

	// Log-domain accumulators stored as raw float bits for the CAS adds,
	// primed with the initial messages. lmsg caches each message's log
	// alongside it so the edge region evaluates one Logf per component
	// instead of two; each edge is owned by exactly one worker per sweep,
	// so the cache needs no synchronization beyond the pool barrier.
	accBits := make([]uint32, g.NumNodes*s)
	lmsg := make([]float32, g.NumEdges*s)
	for e := 0; e < g.NumEdges; e++ {
		dst := int(g.EdgeDst[e])
		m := g.Message(int32(e))
		for j := 0; j < s; j++ {
			l := bp.Logf(m[j])
			lmsg[e*s+j] = l
			f := math.Float32frombits(accBits[dst*s+j]) + l
			accBits[dst*s+j] = math.Float32bits(f)
		}
	}

	activeEdges := initialShardLists(g.NumEdges, eShards)
	mark := make([]uint32, g.NumEdges)
	shardDelta := make([]float32, nShards)
	workerOps := make([]bp.OpCounts, workers)
	k := kernel.New(g, o.Kernel)
	scratch := make([][]float32, workers)
	for w := range scratch {
		scratch[w] = make([]float32, 2*s)
	}
	kss := make([]kernel.Scratch, workers)

	var res bp.Result
	if o.WorkQueue {
		res.Ops.QueuePushes += int64(g.NumEdges)
	}

	probe := o.Probe
	ctx, endTask := telemetry.BeginRun(engEdge)
	emitRunStart(probe, engEdge, int64(g.NumEdges), o.Threshold)

	p := newPool(workers)
	defer p.close()
	rr := newRegionRunner(p, workers, probe != nil)
	var cursor atomic.Int64
	totalActive := g.NumEdges
	rebuild := newShardRebuilder(rr.run, &cursor, activeEdges, mark, g.NumEdges, eShards, workerOps)
	var lastNodes, lastEdges int64

	// Edge region: recompute active messages through the kernel and CAS
	// the log-domain change into the destination accumulators. LogOps
	// still counts the abstract algorithm's two evaluations per component
	// (new and old message) even though the lmsg cache halves the actual
	// calls, so perfmodel pricing stays comparable.
	edgeBody := func(w int) {
		ops := &workerOps[w]
		msg := scratch[w][:s]
		ks := &kss[w]
		for {
			sh := int(cursor.Add(1)) - 1
			if sh >= eShards {
				return
			}
			for _, e := range activeEdges[sh] {
				ops.EdgesProcessed++
				src, dst := g.EdgeSrc[e], g.EdgeDst[e]
				parent := prev[int(src)*s : int(src)*s+s]
				k.Message(ks, msg, e, parent)
				old := g.Message(e)
				base := int(dst) * s
				lm := lmsg[int(e)*s : int(e)*s+s]
				for j := 0; j < s; j++ {
					l := bp.Logf(msg[j])
					ompbp.AtomicAddFloat32(accBits, base+j, l-lm[j])
					lm[j] = l
					old[j] = msg[j]
				}
				ops.AtomicOps += int64(s)
				ops.MemLoads += int64(2 * s)
				ops.RandomLoads += matLines
				ops.MemStores += int64(2 * s)
				ops.MatrixOps += int64(s * s)
				ops.LogOps += int64(2 * s)
			}
		}
	}

	// Combine region: every node folds its accumulator with its prior,
	// refreshes the prev snapshot for the next sweep, and marks the
	// out-edges of nodes that moved.
	combineBody := func(w int) {
		ops := &workerOps[w]
		acc := scratch[w][s:]
		for {
			sh := int(cursor.Add(1)) - 1
			if sh >= nShards {
				return
			}
			lo, hi := shardRange(sh, g.NumNodes, nShards)
			var d float32
			for v := lo; v < hi; v++ {
				if g.Observed[v] {
					continue
				}
				ops.NodesProcessed++
				for j := 0; j < s; j++ {
					// The edge region's CAS stores are ordered before
					// this read by the pool barrier.
					acc[j] = math.Float32frombits(accBits[v*s+j])
				}
				b := g.Beliefs[v*s : v*s+s]
				old := prev[v*s : v*s+s]
				bp.ExpNormalize(b, g.Priors[v*s:v*s+s], acc)
				bp.Blend(b, old, o.Damping)
				dv := graph.L1Diff(b, old)
				d += dv
				copy(old, b)
				ops.LogOps += int64(s)
				ops.MemLoads += int64(3 * s)
				ops.MemStores += int64(2 * s)
				if o.WorkQueue && dv > o.QueueThreshold {
					olo, ohi := g.OutOffsets[v], g.OutOffsets[v+1]
					for _, e := range g.OutEdges[olo:ohi] {
						markOnce(mark, e)
					}
				}
			}
			shardDelta[sh] = d
		}
	}

	for sweep := 0; sweep < o.MaxIterations; sweep++ {
		res.Iterations = sweep + 1
		res.Ops.Iterations++
		for sh := range shardDelta {
			shardDelta[sh] = 0
		}

		cursor.Store(0)
		endEdges := telemetry.StartRegion(ctx, "edges")
		rr.run(edgeBody)
		endEdges()
		res.Ops.SyncOps += int64(workers)

		cursor.Store(0)
		endCombine := telemetry.StartRegion(ctx, "combine")
		rr.run(combineBody)
		endCombine()
		res.Ops.SyncOps += int64(workers)

		if o.WorkQueue {
			endRebuild := telemetry.StartRegion(ctx, "rebuild")
			totalActive = rebuild()
			endRebuild()
			res.Ops.SyncOps += int64(workers)
		}

		exhausted := o.WorkQueue && totalActive == 0
		if (sweep+1)%opts.CheckEvery == 0 || sweep+1 == o.MaxIterations || exhausted {
			var sum float32
			for _, d := range shardDelta {
				sum += d
			}
			res.FinalDelta = sum
			if o.RecordDeltas {
				res.Deltas = append(res.Deltas, sum)
			}
			if probe != nil {
				var nodes, edges int64
				for w := range workerOps {
					nodes += workerOps[w].NodesProcessed
					edges += workerOps[w].EdgesProcessed
				}
				active := int64(-1)
				if o.WorkQueue {
					active = int64(totalActive)
				}
				probe.Emit(telemetry.Event{
					Kind:    telemetry.KindIteration,
					Engine:  engEdge,
					Iter:    int32(sweep + 1),
					Delta:   sum,
					Updated: nodes - lastNodes,
					Edges:   edges - lastEdges,
					Active:  active,
					Items:   int64(g.NumEdges),
				})
				lastNodes, lastEdges = nodes, edges
			}
			if sum < o.Threshold || exhausted {
				res.Converged = true
				break
			}
		}
	}

	for _, ops := range workerOps {
		res.Ops.Add(ops)
	}
	rr.emitWorkers(probe, engEdge)
	emitRunEnd(probe, engEdge, &res)
	endTask()
	return res
}
