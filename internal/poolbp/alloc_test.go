package poolbp

import (
	"testing"

	"credo/internal/bp"
	"credo/internal/gen"
	"credo/internal/graph"
	"credo/internal/kernel"
)

func allocGraph(t testing.TB, states int, shared bool) *graph.Graph {
	t.Helper()
	g, err := gen.Synthetic(200, 800, gen.Config{Seed: 5, States: states, Shared: shared})
	if err != nil {
		t.Fatalf("Synthetic: %v", err)
	}
	return g
}

// TestSweepsAllocFree locks the steady-state guarantee for the pool
// engines. A run necessarily allocates a fixed setup (worker team, shard
// lists, double buffer), so instead of asserting zero allocations per run
// the test asserts allocations do not scale with sweeps: a run forced
// through ~50 extra sweeps must allocate no more than a short run, because
// every sweep reuses the hoisted region bodies and per-worker scratch. A
// single leaked allocation per node update would show up ~10,000 times.
func TestSweepsAllocFree(t *testing.T) {
	engines := []struct {
		name string
		run  func(*graph.Graph, Options) bp.Result
	}{
		{"RunNode", RunNode},
		{"RunEdge", RunEdge},
	}
	const slack = 200 // runtime noise (goroutine scheduling, timer wheel)
	for _, eng := range engines {
		for _, mode := range []kernel.Mode{kernel.Specialized, kernel.LogSpace} {
			// Damped sweeps must reuse the same hoisted state as vanilla:
			// the blend is in place, so the per-sweep allocation profile
			// cannot change.
			for _, damping := range []float32{0, 0.5} {
				g := allocGraph(t, 3, false)
				opts := Options{
					Options: bp.Options{
						// Unreachably small threshold keeps every sweep running
						// to the iteration cap.
						Threshold: 1e-35,
						Damping:   damping,
						Kernel:    kernel.Config{Mode: mode},
					},
					Workers: 4,
				}
				measure := func(iters int) float64 {
					opts.MaxIterations = iters
					return testing.AllocsPerRun(3, func() {
						eng.run(g.Clone(), opts)
					})
				}
				short := measure(4)
				long := measure(54)
				if long > short+slack {
					t.Errorf("%s mode=%v damping=%g: %d sweeps allocated %.0f, %d sweeps %.0f — allocations scale with sweeps",
						eng.name, mode, damping, 54, long, 4, short)
				}
			}
		}
	}
}
