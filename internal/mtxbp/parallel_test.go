package mtxbp

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"credo/internal/gen"
	"credo/internal/graph"
	"credo/internal/telemetry"
)

// withMinChunk shrinks the chunk floor so tiny test files still split
// into multiple chunks, restoring the default afterwards. Tests using it
// must not call t.Parallel.
func withMinChunk(t *testing.T, n int64) {
	t.Helper()
	old := minChunkBytes
	minChunkBytes = n
	t.Cleanup(func() { minChunkBytes = old })
}

// f32Equal compares two float arrays bit for bit — the parallel reader's
// contract is bit-identical output, so no tolerance.
func f32Equal(t *testing.T, what string, a, b []float32) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: length %d != %d", what, len(a), len(b))
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			t.Fatalf("%s[%d]: %v (bits %08x) != %v (bits %08x)",
				what, i, a[i], math.Float32bits(a[i]), b[i], math.Float32bits(b[i]))
		}
	}
}

func i32Equal(t *testing.T, what string, a, b []int32) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: length %d != %d", what, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s[%d]: %d != %d", what, i, a[i], b[i])
		}
	}
}

// graphsIdentical asserts g2 is bit-identical to g1 across every array the
// Builder fills: same shapes, same values, same order.
func graphsIdentical(t *testing.T, g1, g2 *graph.Graph) {
	t.Helper()
	if g1.NumNodes != g2.NumNodes || g1.NumEdges != g2.NumEdges || g1.States != g2.States {
		t.Fatalf("shape: %d/%d/%d != %d/%d/%d",
			g1.NumNodes, g1.NumEdges, g1.States, g2.NumNodes, g2.NumEdges, g2.States)
	}
	f32Equal(t, "Priors", g1.Priors, g2.Priors)
	f32Equal(t, "Beliefs", g1.Beliefs, g2.Beliefs)
	f32Equal(t, "Messages", g1.Messages, g2.Messages)
	i32Equal(t, "EdgeSrc", g1.EdgeSrc, g2.EdgeSrc)
	i32Equal(t, "EdgeDst", g1.EdgeDst, g2.EdgeDst)
	i32Equal(t, "InOffsets", g1.InOffsets, g2.InOffsets)
	i32Equal(t, "InEdges", g1.InEdges, g2.InEdges)
	i32Equal(t, "OutOffsets", g1.OutOffsets, g2.OutOffsets)
	i32Equal(t, "OutEdges", g1.OutEdges, g2.OutEdges)
	if len(g1.Observed) != len(g2.Observed) {
		t.Fatalf("Observed length %d != %d", len(g1.Observed), len(g2.Observed))
	}
	for i := range g1.Observed {
		if g1.Observed[i] != g2.Observed[i] {
			t.Fatalf("Observed[%d] differs", i)
		}
	}
	if g1.SharedMatrix() != g2.SharedMatrix() {
		t.Fatalf("shared mode %v != %v", g1.SharedMatrix(), g2.SharedMatrix())
	}
	if g1.SharedMatrix() {
		f32Equal(t, "Shared.Data", g1.Shared.Data, g2.Shared.Data)
		f32Equal(t, "Shared.T", g1.Shared.T, g2.Shared.T)
	} else {
		if len(g1.EdgeMats) != len(g2.EdgeMats) {
			t.Fatalf("EdgeMats length %d != %d", len(g1.EdgeMats), len(g2.EdgeMats))
		}
		for e := range g1.EdgeMats {
			f32Equal(t, "EdgeMats.Data", g1.EdgeMats[e].Data, g2.EdgeMats[e].Data)
			f32Equal(t, "EdgeMats.T", g1.EdgeMats[e].T, g2.EdgeMats[e].T)
		}
	}
}

// writeCorpus materializes a generated graph as an mtxbp file pair.
func writeCorpus(t *testing.T, dir, name string, n, m int, cfg gen.Config) (nodePath, edgePath string) {
	t.Helper()
	g, err := gen.Synthetic(n, m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	nodePath = filepath.Join(dir, name+".nodes.mtx")
	edgePath = filepath.Join(dir, name+".edges.mtx")
	if err := WriteFiles(nodePath, edgePath, g); err != nil {
		t.Fatal(err)
	}
	return nodePath, edgePath
}

// TestParallelReadBitIdentical is the differential pin: for every corpus
// and every worker count, the chunked parallel reader must produce a graph
// bit-identical to the sequential streaming reader.
func TestParallelReadBitIdentical(t *testing.T) {
	withMinChunk(t, 256)
	dir := t.TempDir()
	corpora := []struct {
		name string
		n, m int
		cfg  gen.Config
	}{
		{"binary", 120, 480, gen.Config{Seed: 11, States: 2}},
		{"ternary", 90, 400, gen.Config{Seed: 12, States: 3}},
		{"shared", 150, 700, gen.Config{Seed: 13, States: 4, Shared: true}},
		{"wide", 40, 120, gen.Config{Seed: 14, States: 8}},
		{"edgeless", 17, 0, gen.Config{Seed: 15, States: 2}},
	}
	for _, c := range corpora {
		np, ep := writeCorpus(t, dir, c.name, c.n, c.m, c.cfg)
		want, err := readFilesSequential(np, ep)
		if err != nil {
			t.Fatalf("%s: sequential: %v", c.name, err)
		}
		for _, workers := range []int{1, 2, 3, 5, 16} {
			got, err := ReadParallel(np, ep, ReadOptions{Workers: workers})
			if err != nil {
				t.Fatalf("%s/w=%d: ReadParallel: %v", c.name, workers, err)
			}
			t.Run(c.name, func(t *testing.T) { graphsIdentical(t, want, got) })
		}
	}
}

// TestParallelReadGzipFallback pins the fallback: gzip inputs are not
// seekable, so ReadParallel must route them through the sequential reader
// and still match it.
func TestParallelReadGzipFallback(t *testing.T) {
	dir := t.TempDir()
	g, err := gen.Synthetic(60, 240, gen.Config{Seed: 21, States: 3})
	if err != nil {
		t.Fatal(err)
	}
	np := filepath.Join(dir, "g.nodes.mtx.gz")
	ep := filepath.Join(dir, "g.edges.mtx.gz")
	if err := WriteFiles(np, ep, g); err != nil {
		t.Fatal(err)
	}
	want, err := readFilesSequential(np, ep)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadParallel(np, ep, ReadOptions{Workers: 8})
	if err != nil {
		t.Fatalf("ReadParallel on gzip: %v", err)
	}
	graphsIdentical(t, want, got)
}

// TestParallelReadComments forces a multi-chunk split over a file whose
// data region is littered with comments and blank lines, including
// indented ones, so chunk workers exercise the same classification as the
// sequential path.
func TestParallelReadComments(t *testing.T) {
	withMinChunk(t, 16)
	dir := t.TempDir()
	nodes := "%%MatrixMarket credo node beliefs\n% header comment\n4 4 2\n1 1 0.5 0.5\n  % indented\n2 2 0.25 0.75\n\n3 3 0.1 0.9\n\t% tabbed\n4 4 0.6 0.4\n"
	edges := "%%MatrixMarket credo edge joint shared\n4 4 3\n0 0 0.8 0.2 0.3 0.7\n1 2\n% mid-stream comment\n2 3\n   % another\n3 4\n"
	np := filepath.Join(dir, "c.nodes.mtx")
	ep := filepath.Join(dir, "c.edges.mtx")
	if err := os.WriteFile(np, []byte(nodes), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ep, []byte(edges), 0o644); err != nil {
		t.Fatal(err)
	}
	want, err := readFilesSequential(np, ep)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadParallel(np, ep, ReadOptions{Workers: 4})
	if err != nil {
		t.Fatalf("ReadParallel: %v", err)
	}
	graphsIdentical(t, want, got)
}

// TestParallelReadErrors pins error parity on the malformed inputs the
// sequential reader rejects: the parallel path must reject them too, even
// when the defect straddles a chunk boundary.
func TestParallelReadErrors(t *testing.T) {
	withMinChunk(t, 16)
	dir := t.TempDir()
	nodesOK := "%%MatrixMarket credo node beliefs\n3 3 2\n1 1 0.5 0.5\n2 2 0.5 0.5\n3 3 0.5 0.5\n"
	cases := []struct {
		name, nodes, edges, want string
	}{
		{"trailing node data", nodesOK + "4 4 0.5 0.5\n",
			"%%MatrixMarket credo edge joint\n3 3 0\n", "trailing data"},
		{"truncated node file", "%%MatrixMarket credo node beliefs\n3 3 2\n1 1 0.5 0.5\n",
			"%%MatrixMarket credo edge joint\n3 3 0\n", "3 declared"},
		{"node id out of order", "%%MatrixMarket credo node beliefs\n3 3 2\n1 1 0.5 0.5\n3 3 0.5 0.5\n2 2 0.5 0.5\n",
			"%%MatrixMarket credo edge joint\n3 3 0\n", "out of order"},
		{"node dims not square", "%%MatrixMarket credo node beliefs\n3 4 2\n",
			"%%MatrixMarket credo edge joint\n3 3 0\n", "not square"},
		{"negative edge count", nodesOK,
			"%%MatrixMarket credo edge joint\n3 3 -1\n", "negative edge count"},
		{"endpoint out of range", nodesOK,
			"%%MatrixMarket credo edge joint\n3 3 1\n1 9 0.9 0.1 0.2 0.8\n", "out of range"},
		{"trailing edge data", nodesOK,
			"%%MatrixMarket credo edge joint shared\n3 3 1\n0 0 0.5 0.5 0.5 0.5\n1 2\n2 3\n", "trailing data"},
		{"edge count mismatch", nodesOK,
			"%%MatrixMarket credo edge joint\n4 4 0\n", "declares"},
		{"bad edge header", nodesOK, "%%wrong\n3 3 0\n", "header"},
		{"garbage probability mid-file", "%%MatrixMarket credo node beliefs\n3 3 2\n1 1 0.5 0.5\n2 2 zz 0.5\n3 3 0.5 0.5\n",
			"%%MatrixMarket credo edge joint\n3 3 0\n", "probability"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			np := filepath.Join(dir, "e.nodes.mtx")
			ep := filepath.Join(dir, "e.edges.mtx")
			if err := os.WriteFile(np, []byte(tc.nodes), 0o644); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(ep, []byte(tc.edges), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := readFilesSequential(np, ep); err == nil {
				t.Fatal("sequential reader accepted malformed input")
			}
			_, err := ReadParallel(np, ep, ReadOptions{Workers: 4})
			if err == nil {
				t.Fatal("parallel reader accepted malformed input")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

// collectProbe records events for assertion.
type collectProbe struct {
	events []telemetry.Event
}

func (p *collectProbe) Emit(e telemetry.Event) { p.events = append(p.events, e) }

// TestParallelReadProbe checks the ingest telemetry contract: per-chunk
// events whose line counts sum to the phase summary, for both phases.
func TestParallelReadProbe(t *testing.T) {
	withMinChunk(t, 256)
	dir := t.TempDir()
	np, ep := writeCorpus(t, dir, "p", 200, 800, gen.Config{Seed: 31, States: 3})
	probe := &collectProbe{}
	g, err := ReadParallel(np, ep, ReadOptions{Workers: 4, Probe: probe})
	if err != nil {
		t.Fatal(err)
	}
	phases := map[string]struct {
		chunkLines int64
		summary    *telemetry.Event
	}{}
	for i := range probe.events {
		e := probe.events[i]
		if e.Kind != telemetry.KindIngest {
			t.Fatalf("unexpected event kind %v", e.Kind)
		}
		ph := phases[e.Engine]
		if e.Worker >= 0 {
			ph.chunkLines += e.Updated
		} else {
			ph.summary = &probe.events[i]
		}
		phases[e.Engine] = ph
	}
	for _, engine := range []string{"ingest.nodes", "ingest.edges"} {
		ph, ok := phases[engine]
		if !ok || ph.summary == nil {
			t.Fatalf("missing %s summary event", engine)
		}
		if ph.chunkLines != ph.summary.Updated {
			t.Errorf("%s: chunk lines %d != summary %d", engine, ph.chunkLines, ph.summary.Updated)
		}
		if int(ph.summary.Iter) < 2 {
			t.Errorf("%s: expected a multi-chunk split, got %d chunks", engine, ph.summary.Iter)
		}
	}
	if want := int64(g.NumNodes); phases["ingest.nodes"].summary.Updated != want {
		t.Errorf("node lines %d != %d nodes", phases["ingest.nodes"].summary.Updated, want)
	}
	if want := int64(g.NumEdges); phases["ingest.edges"].summary.Updated != want {
		t.Errorf("edge lines %d != %d edges", phases["ingest.edges"].summary.Updated, want)
	}
}

// FuzzParallelRead is the differential fuzz target: any input pair the
// sequential reader accepts must be accepted by the parallel reader with a
// bit-identical graph, and any input it rejects must be rejected too.
func FuzzParallelRead(f *testing.F) {
	f.Add(
		"%%MatrixMarket credo node beliefs\n2 2 2\n1 1 0.5 0.5\n2 2 0.25 0.75\n",
		"%%MatrixMarket credo edge joint\n2 2 1\n1 2 0.9 0.1 0.2 0.8\n",
	)
	f.Add(
		"%%MatrixMarket credo node beliefs\n1 1 2\n1 1 1 0\n",
		"%%MatrixMarket credo edge joint shared\n1 1 1\n0 0 0.5 0.5 0.5 0.5\n1 1\n",
	)
	f.Add(
		"%%MatrixMarket credo node beliefs\n2 2 2\n1 1 0.5 0.5\n  % indented comment\n2 2 0.25 0.75\n",
		"%%MatrixMarket credo edge joint\n2 2 0\n",
	)
	f.Add("", "")
	f.Fuzz(func(t *testing.T, nodes, edges string) {
		old := minChunkBytes
		minChunkBytes = 8
		defer func() { minChunkBytes = old }()
		dir := t.TempDir()
		np := filepath.Join(dir, "f.nodes.mtx")
		ep := filepath.Join(dir, "f.edges.mtx")
		if err := os.WriteFile(np, []byte(nodes), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(ep, []byte(edges), 0o644); err != nil {
			t.Fatal(err)
		}
		want, seqErr := readFilesSequential(np, ep)
		got, parErr := ReadParallel(np, ep, ReadOptions{Workers: 3})
		if (seqErr == nil) != (parErr == nil) {
			t.Fatalf("accept/reject disagreement: sequential=%v parallel=%v", seqErr, parErr)
		}
		if seqErr != nil {
			return
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("parallel reader accepted input but built invalid graph: %v", err)
		}
		graphsIdentical(t, want, got)
	})
}
