package mtxbp

import (
	"bufio"
	"errors"
	"strings"
	"testing"
)

// Regression tests for the historical parser defects fixed alongside the
// parallel ingest work. Each test failed against the old reader.

// The old Read verified only the edge file for trailing data; extra lines
// after the declared node entries were silently ignored.
func TestReadRejectsTrailingNodeData(t *testing.T) {
	nodes := "%%MatrixMarket credo node beliefs\n2 2 2\n1 1 0.5 0.5\n2 2 0.5 0.5\n3 3 0.5 0.5\n"
	edges := "%%MatrixMarket credo edge joint\n2 2 0\n"
	_, err := Read(strings.NewReader(nodes), strings.NewReader(edges))
	if err == nil {
		t.Fatal("Read accepted node file with trailing data")
	}
	if !strings.Contains(err.Error(), "trailing data") {
		t.Fatalf("error %q does not mention trailing data", err)
	}
}

// The old trailing-data check treated any non-EOF scanner state as
// trailing data, so a real failure — here a line past the scanner's
// buffer cap — surfaced as a misleading "trailing data" report instead of
// the underlying error.
func TestReadSurfacesScannerErrorAtTrailingCheck(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("%%MatrixMarket credo node beliefs\n1 1 2\n1 1 0.5 0.5\n")
	sb.WriteString("% ")
	sb.WriteString(strings.Repeat("x", maxLineBytes+1))
	sb.WriteByte('\n')
	edges := "%%MatrixMarket credo edge joint\n1 1 0\n"
	_, err := Read(strings.NewReader(sb.String()), strings.NewReader(edges))
	if err == nil {
		t.Fatal("Read accepted input with an over-long line")
	}
	if !errors.Is(err, bufio.ErrTooLong) {
		t.Fatalf("error %q does not wrap bufio.ErrTooLong", err)
	}
	if strings.Contains(err.Error(), "trailing data") {
		t.Fatalf("scanner failure misreported as trailing data: %q", err)
	}
}

// errAfterReader yields its payload, then a non-EOF error — an I/O
// failure hitting exactly at the trailing-data check.
type errAfterReader struct {
	r   *strings.Reader
	err error
}

func (e *errAfterReader) Read(p []byte) (int, error) {
	n, err := e.r.Read(p)
	if err != nil {
		return n, e.err
	}
	return n, nil
}

func TestReadSurfacesIOErrorAtTrailingCheck(t *testing.T) {
	ioErr := errors.New("disk on fire")
	nodes := &errAfterReader{r: strings.NewReader("%%MatrixMarket credo node beliefs\n1 1 2\n1 1 0.5 0.5\n"), err: ioErr}
	edges := strings.NewReader("%%MatrixMarket credo edge joint\n1 1 0\n")
	_, err := Read(nodes, edges)
	if err == nil {
		t.Fatal("Read swallowed the I/O error")
	}
	if !errors.Is(err, ioErr) {
		t.Fatalf("error %q does not wrap the underlying I/O error", err)
	}
	if strings.Contains(err.Error(), "trailing data") {
		t.Fatalf("I/O failure misreported as trailing data: %q", err)
	}
}

// The old data-line classifier tested line[0] == '%' before trimming, so
// a comment indented by whitespace was parsed as a data line and failed
// with an identifier error.
func TestReadAcceptsIndentedComments(t *testing.T) {
	nodes := "%%MatrixMarket credo node beliefs\n2 2 2\n1 1 0.5 0.5\n  % indented comment\n\t% tab-indented comment\n2 2 0.25 0.75\n"
	edges := "%%MatrixMarket credo edge joint\n2 2 1\n   % another one\n1 2 0.9 0.1 0.2 0.8\n"
	g, err := Read(strings.NewReader(nodes), strings.NewReader(edges))
	if err != nil {
		t.Fatalf("Read rejected indented comments: %v", err)
	}
	if g.NumNodes != 2 || g.NumEdges != 1 {
		t.Fatalf("shape %d/%d", g.NumNodes, g.NumEdges)
	}
	if g.Belief(1)[1] != 0.75 {
		t.Errorf("node 2 prior = %v", g.Belief(1))
	}
}

// The old reader used only dims[0] and never cross-checked dims[1], so a
// non-square dimension header — a malformed file by the Matrix Market
// convention the format inherits — was accepted without complaint.
func TestReadRejectsNonSquareDims(t *testing.T) {
	nodesOK := "%%MatrixMarket credo node beliefs\n2 2 2\n1 1 0.5 0.5\n2 2 0.5 0.5\n"
	cases := []struct {
		name, nodes, edges, want string
	}{
		{
			"node dims",
			"%%MatrixMarket credo node beliefs\n2 3 2\n1 1 0.5 0.5\n2 2 0.5 0.5\n",
			"%%MatrixMarket credo edge joint\n2 2 0\n",
			"not square",
		},
		{
			"edge dims",
			nodesOK,
			"%%MatrixMarket credo edge joint\n2 3 0\n",
			"not square",
		},
		{
			"negative edge count",
			nodesOK,
			"%%MatrixMarket credo edge joint\n2 2 -1\n",
			"negative edge count",
		},
		{
			"negative node count",
			"%%MatrixMarket credo node beliefs\n-2 -2 2\n",
			"%%MatrixMarket credo edge joint\n-2 -2 0\n",
			"negative node count",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Read(strings.NewReader(tc.nodes), strings.NewReader(tc.edges))
			if err == nil {
				t.Fatal("Read accepted malformed dimension header")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}
