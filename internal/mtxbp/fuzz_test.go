package mtxbp

import (
	"strings"
	"testing"
)

// FuzzRead checks the streaming parser never panics and that accepted
// inputs build structurally valid graphs.
func FuzzRead(f *testing.F) {
	f.Add(
		"%%MatrixMarket credo node beliefs\n2 2 2\n1 1 0.5 0.5\n2 2 0.25 0.75\n",
		"%%MatrixMarket credo edge joint\n2 2 1\n1 2 0.9 0.1 0.2 0.8\n",
	)
	f.Add(
		"%%MatrixMarket credo node beliefs\n1 1 2\n1 1 1 0\n",
		"%%MatrixMarket credo edge joint shared\n1 1 0\n0 0 0.5 0.5 0.5 0.5\n",
	)
	f.Add(
		"%%MatrixMarket credo node beliefs\n2 2 2\n1 1 0.5 0.5\n2 2 0.25 0.75\n",
		"%%MatrixMarket credo edge joint shared\n2 2 2\n0 0 0.8 0.2 0.3 0.7\n1 2\n2 1\n",
	)
	f.Add(
		"%%MatrixMarket credo node beliefs\n2 2 2\n1 1 0.5 0.5\n  % indented comment\n2 2 0.25 0.75\n",
		"%%MatrixMarket credo edge joint\n2 2 1\n\t% tabbed comment\n1 2 0.9 0.1 0.2 0.8\n",
	)
	f.Add("", "")
	f.Add("%%MatrixMarket credo node beliefs\n-1 -1 -1\n", "%%MatrixMarket credo edge joint\n0 0 0\n")
	f.Add("%%MatrixMarket credo node beliefs\n999999999 999999999 2\n", "%%MatrixMarket credo edge joint\n999999999 999999999 0\n")
	f.Fuzz(func(t *testing.T, nodes, edges string) {
		g, err := Read(strings.NewReader(nodes), strings.NewReader(edges))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted input produced invalid graph: %v", err)
		}
	})
}
