package mtxbp

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"testing"
)

// checkProbExact asserts parseProb returns bit-identical results to
// strconv.ParseFloat, the file's stated invariant.
func checkProbExact(t *testing.T, tok string) {
	t.Helper()
	got, err := parseProb([]byte(tok))
	if err != nil {
		t.Fatalf("parseProb(%q): %v", tok, err)
	}
	w, err := strconv.ParseFloat(tok, 32)
	if err != nil {
		t.Fatalf("strconv.ParseFloat(%q): %v", tok, err)
	}
	want := float32(w)
	if math.Float32bits(got) != math.Float32bits(want) {
		t.Errorf("parseProb(%q) = %v (%#08x), strconv = %v (%#08x)",
			tok, got, math.Float32bits(got), want, math.Float32bits(want))
	}
}

// The fast path originally admitted 8 significant digits (mantissas up to
// 99,999,999 > 2^24), where float32(mant) is inexact and the scale
// multiply double-rounds — inputs like "16777217e-8" parsed 1 ulp off
// from strconv. These must now match strconv exactly (via fallback).
func TestParseProbEightDigitMantissas(t *testing.T) {
	cases := []string{
		"16777217e-8", // 2^24+1: first integer inexact in float32
		"0.16777217",
		"16777217",
		"1.6777217",
		"99999999e-9",
		"0.99999999",
		"33554431e-8", // 2^25-1
		"0.000000016777217",
		"16777219e-4",
	}
	for _, tok := range cases {
		checkProbExact(t, tok)
	}
	// Boundary sweep around 2^24, every decimal-point placement.
	for mant := uint64(1<<24 - 20); mant <= 1<<24+20; mant++ {
		d := strconv.FormatUint(mant, 10)
		for exp := -10; exp <= 2; exp++ {
			checkProbExact(t, fmt.Sprintf("%se%d", d, exp))
		}
	}
	// Random 8-digit mantissas (deterministic seed).
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		mant := 10_000_000 + rng.Int63n(90_000_000)
		exp := rng.Intn(13) - 10
		checkProbExact(t, fmt.Sprintf("%de%d", mant, exp))
	}
}

// Seven significant digits must stay on the allocation-free fast path and
// still agree with strconv bit for bit.
func TestParseProbFastSevenDigitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		mant := rng.Int63n(10_000_000)
		exp := rng.Intn(21) - 10
		tok := fmt.Sprintf("%de%d", mant, exp)
		if _, ok := parseProbFast([]byte(tok)); !ok {
			t.Fatalf("parseProbFast rejected 7-digit token %q", tok)
		}
		checkProbExact(t, tok)
	}
	// The writer's own %g output (up to 7 significant digits, possible
	// leading zeros after the point) must also stay fast.
	for _, tok := range []string{"0.5", "0.0078125", "1e-07", "0.9999999", "9999999", "0.001234567"} {
		if _, ok := parseProbFast([]byte(tok)); !ok {
			t.Errorf("parseProbFast rejected writer-shaped token %q", tok)
		}
		checkProbExact(t, tok)
	}
}
