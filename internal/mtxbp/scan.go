package mtxbp

import (
	"fmt"
	"math"
	"strconv"
)

// This file is the zero-allocation field/float scanner shared by the
// sequential and parallel ingest paths. The old reader split every line
// with strings.Fields (one []string plus one string per field) and ran
// strconv over the pieces; at Table-1 scale those per-line allocations
// dominate ingest. Here a data line is consumed directly as bytes: fields
// are sliced out in place, identifiers are parsed with a hand-rolled
// integer loop, and probabilities take a Clinger-style fast path — up to 7
// significant digits and a small decimal exponent are assembled with one
// exact float32 multiply or divide, which is bit-identical to strconv's
// correctly rounded result (both operands are exact in float32, so the
// single IEEE rounding is the correct rounding of the true value). The
// writers emit %g with 7 significant digits, so round-tripped files stay
// on the fast path throughout; anything longer or stranger (long
// mantissas, huge exponents, inf/nan spellings, hex floats) falls back to
// strconv.ParseFloat on an allocated copy.

// pow10f32 holds the powers of ten exact in float32: 10^10 = 2^10 * 5^10
// and 5^10 = 9765625 < 2^24, so every entry is representable.
var pow10f32 = [11]float32{1, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10}

// isLineSpace reports the ASCII whitespace accepted between fields.
func isLineSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f'
}

// trimLine strips leading and trailing ASCII whitespace in place (a
// subslice, no copy).
func trimLine(b []byte) []byte {
	for len(b) > 0 && isLineSpace(b[0]) {
		b = b[1:]
	}
	for len(b) > 0 && isLineSpace(b[len(b)-1]) {
		b = b[:len(b)-1]
	}
	return b
}

// nextField slices the first whitespace-delimited field off b, returning
// the field and the remainder. An empty field means b was exhausted.
func nextField(b []byte) (field, rest []byte) {
	for len(b) > 0 && isLineSpace(b[0]) {
		b = b[1:]
	}
	i := 0
	for i < len(b) && !isLineSpace(b[i]) {
		i++
	}
	return b[:i], b[i:]
}

// parseID parses a decimal identifier (sign accepted so that negative ids
// reach the range checks with their value, as strconv.Atoi allowed).
func parseID(b []byte) (int, error) {
	s := b
	neg := false
	if len(s) > 0 && (s[0] == '+' || s[0] == '-') {
		neg = s[0] == '-'
		s = s[1:]
	}
	if len(s) == 0 {
		return 0, fmt.Errorf("identifier %q: invalid syntax", b)
	}
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("identifier %q: invalid syntax", b)
		}
		if n > (math.MaxInt-9)/10 {
			return 0, fmt.Errorf("identifier %q: value out of range", b)
		}
		n = n*10 + int(c-'0')
	}
	if neg {
		n = -n
	}
	return n, nil
}

// parseProbFast is the allocation-free float32 fast path. ok is false when
// the token needs the strconv fallback (which also handles every syntax
// error, so this function never rejects anything itself).
func parseProbFast(b []byte) (v float32, ok bool) {
	i, n := 0, len(b)
	if n == 0 || n > 24 {
		return 0, false
	}
	neg := false
	if b[0] == '+' || b[0] == '-' {
		neg = b[0] == '-'
		i++
	}
	var mant uint32
	sawDigit, sawDot := false, false
	fracDigits := 0
	for ; i < n; i++ {
		c := b[i]
		switch {
		case c >= '0' && c <= '9':
			sawDigit = true
			if mant >= 1_000_000 {
				// Appending an 8th significant digit could push mant past
				// 2^24, where float32(mant) is no longer exact and the
				// multiply below double-rounds; cap at 7 digits
				// (mant <= 9,999,999 < 2^24) and let strconv handle the rest.
				return 0, false
			}
			mant = mant*10 + uint32(c-'0')
			if sawDot {
				fracDigits++
			}
		case c == '.':
			if sawDot {
				return 0, false
			}
			sawDot = true
		case c == 'e' || c == 'E':
			goto exponent
		default:
			return 0, false
		}
	}
	i = n
exponent:
	if !sawDigit {
		return 0, false
	}
	exp := -fracDigits
	if i < n { // b[i] is 'e' or 'E'
		i++
		eneg := false
		if i < n && (b[i] == '+' || b[i] == '-') {
			eneg = b[i] == '-'
			i++
		}
		if i == n {
			return 0, false
		}
		e := 0
		for ; i < n; i++ {
			c := b[i]
			if c < '0' || c > '9' {
				return 0, false
			}
			e = e*10 + int(c-'0')
			if e > 99 {
				return 0, false
			}
		}
		if eneg {
			e = -e
		}
		exp += e
	}
	if exp < -10 || exp > 10 {
		return 0, false
	}
	// mant < 2^24 and 10^|exp| are both exact float32 values, so the one
	// multiply or divide below performs the single correct rounding.
	v = float32(mant)
	if exp >= 0 {
		v *= pow10f32[exp]
	} else {
		v /= pow10f32[-exp]
	}
	if neg {
		v = -v
	}
	return v, true
}

// parseProb parses one probability token, fast path first.
func parseProb(b []byte) (float32, error) {
	if v, ok := parseProbFast(b); ok {
		return v, nil
	}
	v, err := strconv.ParseFloat(string(b), 32)
	if err != nil {
		return 0, fmt.Errorf("probability %q: %w", b, err)
	}
	return float32(v), nil
}

// parseEntry splits a data line into its two identifiers and
// probabilities. The probabilities are appended into probs[:0] so callers
// can reuse one buffer across lines; the returned slice aliases it.
func parseEntry(line []byte, probs []float32) (id1, id2 int, out []float32, err error) {
	f1, rest := nextField(line)
	f2, rest := nextField(rest)
	if len(f2) == 0 {
		return 0, 0, nil, fmt.Errorf("line has fewer than 2 fields")
	}
	id1, err = parseID(f1)
	if err != nil {
		return 0, 0, nil, err
	}
	id2, err = parseID(f2)
	if err != nil {
		return 0, 0, nil, err
	}
	out = probs[:0]
	for {
		var f []byte
		f, rest = nextField(rest)
		if len(f) == 0 {
			return id1, id2, out, nil
		}
		v, perr := parseProb(f)
		if perr != nil {
			return 0, 0, nil, perr
		}
		if v < 0 || math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			return 0, 0, nil, fmt.Errorf("probability %q is not a valid probability", f)
		}
		out = append(out, v)
	}
}
