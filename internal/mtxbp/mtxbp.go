// Package mtxbp implements the paper's flexible input format for massive
// belief networks (§3.2): a pair of Matrix-Market–derived text files, one
// for node data and one for edge data.
//
// Both files share one structure — two identifiers followed by
// probabilities — so the node file "appears to be nothing but self-cycling
// nodes". Crucially the format is processed line by line, first nodes then
// edges, without ever holding a parsed file in memory, which is what lets
// Credo load graphs of hundreds of millions of edges where BIF and XML-BIF
// exhaust memory at a hundred thousand nodes.
//
// Node file:
//
//	%%MatrixMarket credo node beliefs
//	% optional comments
//	<numNodes> <numNodes> <states>
//	<id> <id> <p_1> ... <p_states>
//
// Edge file (per-edge matrices):
//
//	%%MatrixMarket credo edge joint
//	<numNodes> <numNodes> <numEdges>
//	<src> <dst> <m_11> ... <m_ss>        (row-major states x states)
//
// Edge file (shared-matrix refinement of §2.2): the first data line uses
// the reserved identifier pair "0 0" to carry the single joint matrix, and
// subsequent edge lines carry only endpoints:
//
//	%%MatrixMarket credo edge joint shared
//	<numNodes> <numNodes> <numEdges>
//	0 0 <m_11> ... <m_ss>
//	<src> <dst>
//
// Identifiers are 1-based as in Matrix Market.
package mtxbp

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"credo/internal/graph"
)

// Header magic strings.
const (
	nodeHeader       = "%%MatrixMarket credo node beliefs"
	edgeHeader       = "%%MatrixMarket credo edge joint"
	edgeHeaderShared = "%%MatrixMarket credo edge joint shared"
)

// maxLineBytes caps a single input line (a 32-state joint matrix line is
// ~10 KB; this leaves generous headroom).
const maxLineBytes = 1 << 20

// Write serializes g to the node and edge writers.
func Write(nodeW, edgeW io.Writer, g *graph.Graph) error {
	if err := writeNodes(nodeW, g); err != nil {
		return err
	}
	return writeEdges(edgeW, g)
}

// WriteFiles serializes g to a pair of files. Paths ending in ".gz" are
// transparently gzip-compressed — at Table 1 scale the text files shrink
// roughly 3-4x, which matters when the format's whole point is graphs of
// hundreds of millions of edges.
func WriteFiles(nodePath, edgePath string, g *graph.Graph) (err error) {
	nf, err := os.Create(nodePath)
	if err != nil {
		return err
	}
	defer closeKeepErr(nf, &err)
	ef, err := os.Create(edgePath)
	if err != nil {
		return err
	}
	defer closeKeepErr(ef, &err)

	nw, finishNode := newFileWriter(nf, nodePath)
	ew, finishEdge := newFileWriter(ef, edgePath)
	if err := Write(nw, ew, g); err != nil {
		return err
	}
	if err := finishNode(); err != nil {
		return err
	}
	return finishEdge()
}

// newFileWriter wraps f in a buffered (and, for .gz paths, gzip) writer,
// returning the writer and a finish function that flushes everything.
func newFileWriter(f *os.File, path string) (io.Writer, func() error) {
	if strings.HasSuffix(path, ".gz") {
		gz := gzip.NewWriter(f)
		bw := bufio.NewWriterSize(gz, 1<<20)
		return bw, func() error {
			if err := bw.Flush(); err != nil {
				return err
			}
			return gz.Close()
		}
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	return bw, bw.Flush
}

func closeKeepErr(c io.Closer, err *error) {
	if cerr := c.Close(); cerr != nil && *err == nil {
		*err = cerr
	}
}

func writeNodes(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	fmt.Fprintf(bw, "%s\n", nodeHeader)
	fmt.Fprintf(bw, "%d %d %d\n", g.NumNodes, g.NumNodes, g.States)
	var sb strings.Builder
	for v := 0; v < g.NumNodes; v++ {
		sb.Reset()
		id := strconv.Itoa(v + 1)
		sb.WriteString(id)
		sb.WriteByte(' ')
		sb.WriteString(id)
		appendProbs(&sb, g.Prior(int32(v)))
		sb.WriteByte('\n')
		if _, err := bw.WriteString(sb.String()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func writeEdges(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	header := edgeHeader
	if g.SharedMatrix() {
		header = edgeHeaderShared
	}
	fmt.Fprintf(bw, "%s\n", header)
	fmt.Fprintf(bw, "%d %d %d\n", g.NumNodes, g.NumNodes, g.NumEdges)
	var sb strings.Builder
	if g.SharedMatrix() {
		sb.WriteString("0 0")
		appendProbs(&sb, g.Shared.Data)
		sb.WriteByte('\n')
		if _, err := bw.WriteString(sb.String()); err != nil {
			return err
		}
	}
	for e := 0; e < g.NumEdges; e++ {
		sb.Reset()
		sb.WriteString(strconv.Itoa(int(g.EdgeSrc[e]) + 1))
		sb.WriteByte(' ')
		sb.WriteString(strconv.Itoa(int(g.EdgeDst[e]) + 1))
		if !g.SharedMatrix() {
			appendProbs(&sb, g.EdgeMats[e].Data)
		}
		sb.WriteByte('\n')
		if _, err := bw.WriteString(sb.String()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func appendProbs(sb *strings.Builder, p []float32) {
	for _, v := range p {
		sb.WriteByte(' ')
		sb.WriteString(strconv.FormatFloat(float64(v), 'g', 7, 32))
	}
}

// WriteNodeBeliefs writes the graph's *current beliefs* (posteriors after
// propagation) in the node-file format, so results can round-trip back
// into any mtxbp consumer or spreadsheet.
func WriteNodeBeliefs(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	fmt.Fprintf(bw, "%s\n", nodeHeader)
	fmt.Fprintf(bw, "%d %d %d\n", g.NumNodes, g.NumNodes, g.States)
	var sb strings.Builder
	for v := 0; v < g.NumNodes; v++ {
		sb.Reset()
		id := strconv.Itoa(v + 1)
		sb.WriteString(id)
		sb.WriteByte(' ')
		sb.WriteString(id)
		appendProbs(&sb, g.Belief(int32(v)))
		sb.WriteByte('\n')
		if _, err := bw.WriteString(sb.String()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a node reader and an edge reader into a graph, streaming
// line by line.
func Read(nodeR, edgeR io.Reader) (*graph.Graph, error) {
	np, err := newLineParser(nodeR)
	if err != nil {
		return nil, fmt.Errorf("mtxbp: node file: %w", err)
	}
	if np.header != nodeHeader {
		return nil, fmt.Errorf("mtxbp: node file: unexpected header %q", np.header)
	}
	if np.dims[0] != np.dims[1] {
		return nil, fmt.Errorf("mtxbp: node file: dimension header %d x %d is not square", np.dims[0], np.dims[1])
	}
	numNodes, states := np.dims[0], np.dims[2]
	if states <= 0 || states > graph.MaxStates {
		return nil, fmt.Errorf("mtxbp: node file: states %d out of range [1,%d]", states, graph.MaxStates)
	}
	if numNodes < 0 {
		return nil, fmt.Errorf("mtxbp: node file: negative node count %d", numNodes)
	}

	ep, err := newLineParser(edgeR)
	if err != nil {
		return nil, fmt.Errorf("mtxbp: edge file: %w", err)
	}
	shared := ep.header == edgeHeaderShared
	if !shared && ep.header != edgeHeader {
		return nil, fmt.Errorf("mtxbp: edge file: unexpected header %q", ep.header)
	}
	if ep.dims[0] != ep.dims[1] {
		return nil, fmt.Errorf("mtxbp: edge file: dimension header %d x %d is not square", ep.dims[0], ep.dims[1])
	}
	if ep.dims[0] != numNodes {
		return nil, fmt.Errorf("mtxbp: edge file declares %d nodes, node file %d", ep.dims[0], numNodes)
	}
	numEdges := ep.dims[2]
	if numEdges < 0 {
		return nil, fmt.Errorf("mtxbp: edge file: negative edge count %d", numEdges)
	}

	b := graph.NewBuilder(states)
	scratch := make([]float32, 0, states*states)

	// Node pass.
	for line := 0; line < numNodes; line++ {
		data, err := np.next()
		if err != nil {
			return nil, fmt.Errorf("mtxbp: node file line %d: %w", line+3, err)
		}
		id1, id2, probs, err := parseEntry(data, scratch)
		if err != nil {
			return nil, fmt.Errorf("mtxbp: node file line %d: %w", line+3, err)
		}
		if id1 != id2 {
			return nil, fmt.Errorf("mtxbp: node file line %d: identifiers %d/%d differ", line+3, id1, id2)
		}
		if id1 != line+1 {
			return nil, fmt.Errorf("mtxbp: node file line %d: node id %d out of order (want %d)", line+3, id1, line+1)
		}
		if len(probs) != states {
			return nil, fmt.Errorf("mtxbp: node file line %d: %d probabilities, want %d", line+3, len(probs), states)
		}
		if _, err := b.AddNode(probs); err != nil {
			return nil, fmt.Errorf("mtxbp: node file line %d: %w", line+3, err)
		}
	}
	if err := np.expectEOF("node file", numNodes, "nodes"); err != nil {
		return nil, err
	}

	// Shared matrix line, when present.
	if shared {
		data, err := ep.next()
		if err != nil {
			return nil, fmt.Errorf("mtxbp: edge file shared matrix: %w", err)
		}
		id1, id2, probs, err := parseEntry(data, scratch)
		if err != nil {
			return nil, fmt.Errorf("mtxbp: edge file shared matrix: %w", err)
		}
		if id1 != 0 || id2 != 0 {
			return nil, fmt.Errorf("mtxbp: edge file: shared header without 0 0 matrix line")
		}
		if len(probs) != states*states {
			return nil, fmt.Errorf("mtxbp: shared matrix has %d entries, want %d", len(probs), states*states)
		}
		m := graph.JointMatrix{Rows: uint32(states), Cols: uint32(states), Data: append([]float32(nil), probs...)}
		if err := m.Validate(); err != nil {
			return nil, fmt.Errorf("mtxbp: shared matrix: %w", err)
		}
		if err := b.SetShared(m); err != nil {
			return nil, err
		}
	}

	// Edge pass.
	for line := 0; line < numEdges; line++ {
		data, err := ep.next()
		if err != nil {
			return nil, fmt.Errorf("mtxbp: edge file entry %d: %w", line+1, err)
		}
		src, dst, probs, err := parseEntry(data, scratch)
		if err != nil {
			return nil, fmt.Errorf("mtxbp: edge file entry %d: %w", line+1, err)
		}
		if src < 1 || src > numNodes || dst < 1 || dst > numNodes {
			return nil, fmt.Errorf("mtxbp: edge file entry %d: endpoints (%d,%d) out of range", line+1, src, dst)
		}
		var mp *graph.JointMatrix
		if shared {
			if len(probs) != 0 {
				return nil, fmt.Errorf("mtxbp: edge file entry %d: matrix data in shared mode", line+1)
			}
		} else {
			if len(probs) != states*states {
				return nil, fmt.Errorf("mtxbp: edge file entry %d: %d matrix entries, want %d", line+1, len(probs), states*states)
			}
			m := graph.JointMatrix{Rows: uint32(states), Cols: uint32(states), Data: append([]float32(nil), probs...)}
			if err := m.Validate(); err != nil {
				return nil, fmt.Errorf("mtxbp: edge file entry %d: %w", line+1, err)
			}
			mp = &m
		}
		if err := b.AddEdge(int32(src-1), int32(dst-1), mp); err != nil {
			return nil, fmt.Errorf("mtxbp: edge file entry %d: %w", line+1, err)
		}
	}
	if err := ep.expectEOF("edge file", numEdges, "edges"); err != nil {
		return nil, err
	}
	return b.Build()
}

// ReadFiles parses a node file and an edge file into a graph. Paths
// ending in ".gz" are transparently decompressed. Seekable (non-gzip)
// inputs are ingested by the parallel chunked pipeline with one worker
// per CPU; the result is bit-identical to the sequential Read.
func ReadFiles(nodePath, edgePath string) (*graph.Graph, error) {
	return ReadParallel(nodePath, edgePath, ReadOptions{})
}

// readFilesSequential is the single-threaded file path: the streaming
// reader over buffered (and, for .gz, gzip) file readers.
func readFilesSequential(nodePath, edgePath string) (*graph.Graph, error) {
	nf, err := os.Open(nodePath)
	if err != nil {
		return nil, err
	}
	defer nf.Close()
	ef, err := os.Open(edgePath)
	if err != nil {
		return nil, err
	}
	defer ef.Close()
	nr, err := newFileReader(nf, nodePath)
	if err != nil {
		return nil, err
	}
	er, err := newFileReader(ef, edgePath)
	if err != nil {
		return nil, err
	}
	return Read(nr, er)
}

// newFileReader wraps f in a buffered (and, for .gz paths, gzip) reader.
func newFileReader(f *os.File, path string) (io.Reader, error) {
	if strings.HasSuffix(path, ".gz") {
		gz, err := gzip.NewReader(bufio.NewReaderSize(f, 1<<20))
		if err != nil {
			return nil, fmt.Errorf("mtxbp: %s: %w", path, err)
		}
		return bufio.NewReaderSize(gz, 1<<20), nil
	}
	return bufio.NewReaderSize(f, 1<<20), nil
}

// lineParser scans a file line by line, skipping comments, after consuming
// the header and dimension lines.
type lineParser struct {
	sc     *bufio.Scanner
	header string
	dims   [3]int
}

func newLineParser(r io.Reader) (*lineParser, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), maxLineBytes)
	p := &lineParser{sc: sc}
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, io.ErrUnexpectedEOF
	}
	p.header = strings.TrimSpace(sc.Text())
	// Dimension line: first non-comment line.
	for {
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				return nil, err
			}
			return nil, io.ErrUnexpectedEOF
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("dimension line has %d fields, want 3", len(fields))
		}
		for i, f := range fields {
			v, err := strconv.Atoi(f)
			if err != nil {
				return nil, fmt.Errorf("dimension %q: %w", f, err)
			}
			p.dims[i] = v
		}
		return p, nil
	}
}

// next returns the next data line — trimmed of surrounding whitespace,
// with comment and blank lines skipped — or io.EOF. The returned bytes
// alias the scanner's buffer and are only valid until the next call. The
// line is trimmed *before* the comment check, so a comment indented by
// whitespace is still a comment (the historical untrimmed check parsed
// "  % note" as a data line and failed with an identifier error).
func (p *lineParser) next() ([]byte, error) {
	for p.sc.Scan() {
		line := trimLine(p.sc.Bytes())
		if len(line) == 0 || line[0] == '%' {
			continue
		}
		return line, nil
	}
	if err := p.sc.Err(); err != nil {
		return nil, err
	}
	return nil, io.EOF
}

// expectEOF verifies the stream holds no further data lines, keeping real
// scanner failures (an over-long line, an I/O error) distinct from genuine
// trailing data — the historical check collapsed both into a misleading
// "trailing data" report.
func (p *lineParser) expectEOF(file string, declared int, what string) error {
	switch _, err := p.next(); err {
	case io.EOF:
		return nil
	case nil:
		return fmt.Errorf("mtxbp: %s: trailing data after %d declared %s", file, declared, what)
	default:
		return fmt.Errorf("mtxbp: %s: %w", file, err)
	}
}
