package mtxbp

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"credo/internal/graph"
	"credo/internal/telemetry"
)

// This file is the parallel chunked ingest pipeline (the loader-side
// counterpart of the engines' worker pools). A seekable mtxbp file is
// split into byte ranges aligned to line boundaries, the ranges are
// parsed concurrently into per-chunk arenas by the zero-allocation
// scanner of scan.go, and the arenas are stitched back in file order
// through the graph builder's bulk-append API. Because node ids are
// positional (the format requires them sequential) and edges land at
// offsets computed by a prefix sum over per-chunk line counts, the
// resulting graph is bit-identical to the sequential Read: same values,
// same order, same normalization (each prior is normalized exactly once,
// by SetPriorBlock, just as AddNode normalizes it on the sequential
// path). Gzip inputs are not seekable mid-stream and fall back to the
// sequential reader, which shares the same scanner.

// ReadOptions configures the file-based ingest path.
type ReadOptions struct {
	// Workers is the parse fan-out. 0 uses one worker per CPU; 1 forces
	// the sequential path. Gzip inputs always read sequentially.
	Workers int
	// Probe, when non-nil, receives telemetry.KindIngest events: one per
	// parsed chunk and one summary per file phase ("ingest.nodes",
	// "ingest.edges").
	Probe telemetry.Probe
}

// minChunkBytes is the smallest byte range worth dispatching to a worker;
// below it, goroutine and stitch overhead beat the parse savings. A
// variable so the tests can force multi-chunk splits on tiny files.
var minChunkBytes = int64(1 << 16)

// ReadParallel parses a node file and an edge file into a graph using
// chunked parallel ingest. The result is bit-identical to the sequential
// Read over the same bytes.
func ReadParallel(nodePath, edgePath string, opts ReadOptions) (*graph.Graph, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || strings.HasSuffix(nodePath, ".gz") || strings.HasSuffix(edgePath, ".gz") {
		return readSequentialWithProbe(nodePath, edgePath, opts.Probe)
	}

	nf, err := os.Open(nodePath)
	if err != nil {
		return nil, err
	}
	defer nf.Close()
	ef, err := os.Open(edgePath)
	if err != nil {
		return nil, err
	}
	defer ef.Close()

	// Node prologue: header and dimension line.
	nlr, err := newOffsetLineReader(nf)
	if err != nil {
		return nil, fmt.Errorf("mtxbp: node file: %w", err)
	}
	nHeader, nDims, err := nlr.prologue()
	if err != nil {
		return nil, fmt.Errorf("mtxbp: node file: %w", err)
	}
	if nHeader != nodeHeader {
		return nil, fmt.Errorf("mtxbp: node file: unexpected header %q", nHeader)
	}
	if nDims[0] != nDims[1] {
		return nil, fmt.Errorf("mtxbp: node file: dimension header %d x %d is not square", nDims[0], nDims[1])
	}
	numNodes, states := nDims[0], nDims[2]
	if states <= 0 || states > graph.MaxStates {
		return nil, fmt.Errorf("mtxbp: node file: states %d out of range [1,%d]", states, graph.MaxStates)
	}
	if numNodes < 0 {
		return nil, fmt.Errorf("mtxbp: node file: negative node count %d", numNodes)
	}

	// Edge prologue: header, dimension line and, in shared mode, the
	// matrix line (it must precede every edge, so it belongs to the
	// sequential prologue, not to a chunk).
	elr, err := newOffsetLineReader(ef)
	if err != nil {
		return nil, fmt.Errorf("mtxbp: edge file: %w", err)
	}
	eHeader, eDims, err := elr.prologue()
	if err != nil {
		return nil, fmt.Errorf("mtxbp: edge file: %w", err)
	}
	shared := eHeader == edgeHeaderShared
	if !shared && eHeader != edgeHeader {
		return nil, fmt.Errorf("mtxbp: edge file: unexpected header %q", eHeader)
	}
	if eDims[0] != eDims[1] {
		return nil, fmt.Errorf("mtxbp: edge file: dimension header %d x %d is not square", eDims[0], eDims[1])
	}
	if eDims[0] != numNodes {
		return nil, fmt.Errorf("mtxbp: edge file declares %d nodes, node file %d", eDims[0], numNodes)
	}
	numEdges := eDims[2]
	if numEdges < 0 {
		return nil, fmt.Errorf("mtxbp: edge file: negative edge count %d", numEdges)
	}

	b := graph.NewBuilder(states)
	scratch := make([]float32, 0, states*states)

	if shared {
		line, err := elr.nextData()
		if err != nil {
			return nil, fmt.Errorf("mtxbp: edge file shared matrix: %w", err)
		}
		id1, id2, probs, err := parseEntry(line, scratch)
		if err != nil {
			return nil, fmt.Errorf("mtxbp: edge file shared matrix: %w", err)
		}
		if id1 != 0 || id2 != 0 {
			return nil, fmt.Errorf("mtxbp: edge file: shared header without 0 0 matrix line")
		}
		if len(probs) != states*states {
			return nil, fmt.Errorf("mtxbp: shared matrix has %d entries, want %d", len(probs), states*states)
		}
		m := graph.JointMatrix{Rows: uint32(states), Cols: uint32(states), Data: append([]float32(nil), probs...)}
		if err := m.Validate(); err != nil {
			return nil, fmt.Errorf("mtxbp: shared matrix: %w", err)
		}
		if err := b.SetShared(m); err != nil {
			return nil, err
		}
	}

	if err := parseNodesParallel(nf, nlr.off, b, numNodes, states, workers, opts.Probe); err != nil {
		return nil, err
	}
	if err := parseEdgesParallel(ef, elr.off, b, numNodes, numEdges, states, shared, workers, opts.Probe); err != nil {
		return nil, err
	}
	return b.Build()
}

// eofStampReader records the wall-clock instant its underlying reader
// first returns io.EOF. Wrapped around the node file, that instant is the
// node/edge phase boundary of the sequential Read: the node reader is
// drained to EOF (expectEOF) before the first edge data line is parsed.
// The scanner's read-ahead buffer makes the stamp early by at most one
// buffer fill, which is negligible against whole-file parse time.
type eofStampReader struct {
	r  io.Reader
	at time.Time
}

func (s *eofStampReader) Read(p []byte) (int, error) {
	n, err := s.r.Read(p)
	if err == io.EOF && s.at.IsZero() {
		s.at = time.Now()
	}
	return n, err
}

// readSequentialWithProbe is the fallback path (gzip inputs, one worker):
// the streaming reader, framed by the same ingest telemetry. The node and
// edge phases are timed separately so parse_wall_ns stays meaningful for
// Amdahl modelling over gzip/1-worker runs.
func readSequentialWithProbe(nodePath, edgePath string, probe telemetry.Probe) (*graph.Graph, error) {
	if probe == nil {
		return readFilesSequential(nodePath, edgePath)
	}
	nf, err := os.Open(nodePath)
	if err != nil {
		return nil, err
	}
	defer nf.Close()
	ef, err := os.Open(edgePath)
	if err != nil {
		return nil, err
	}
	defer ef.Close()
	nr, err := newFileReader(nf, nodePath)
	if err != nil {
		return nil, err
	}
	er, err := newFileReader(ef, edgePath)
	if err != nil {
		return nil, err
	}
	stamp := &eofStampReader{r: nr}
	start := time.Now()
	g, err := Read(stamp, er)
	if err != nil {
		return nil, err
	}
	wall := time.Since(start).Nanoseconds()
	nodeWall := wall
	if !stamp.at.IsZero() {
		nodeWall = stamp.at.Sub(start).Nanoseconds()
	}
	edgeWall := wall - nodeWall
	nBytes := fileSizeOrZero(nodePath)
	eBytes := fileSizeOrZero(edgePath)
	emitIngestPhase(probe, "ingest.nodes", 1, int64(g.NumNodes), nBytes, nodeWall, nodeWall, []chunkStat{{lines: int64(g.NumNodes), bytes: nBytes, busyNs: nodeWall}})
	eLines := int64(g.NumEdges)
	if g.SharedMatrix() {
		eLines++
	}
	emitIngestPhase(probe, "ingest.edges", 1, eLines, eBytes, edgeWall, edgeWall, []chunkStat{{lines: eLines, bytes: eBytes, busyNs: edgeWall}})
	return g, nil
}

func fileSizeOrZero(path string) int64 {
	fi, err := os.Stat(path)
	if err != nil {
		return 0
	}
	return fi.Size()
}

// chunkStat is the per-chunk accounting behind the telemetry events.
type chunkStat struct {
	lines  int64
	bytes  int64
	busyNs int64
}

// emitIngestPhase sends one KindIngest event per chunk plus the phase
// summary (Worker == -1). parseWallNs is the wall clock of the phase's
// fan-out sub-spans alone (chunk parse plus block install) — the
// parallelizable span, carried in the summary's Active field so scaling
// models can separate it from the serial prologue and stitch checks.
func emitIngestPhase(probe telemetry.Probe, engine string, chunks int, lines, totalBytes, wallNs, parseWallNs int64, stats []chunkStat) {
	if probe == nil {
		return
	}
	var busy int64
	for i, s := range stats {
		busy += s.busyNs
		probe.Emit(telemetry.Event{
			Kind:    telemetry.KindIngest,
			Engine:  engine,
			Worker:  int32(i),
			Updated: s.lines,
			Edges:   s.bytes,
			BusyNs:  s.busyNs,
		})
	}
	probe.Emit(telemetry.Event{
		Kind:    telemetry.KindIngest,
		Engine:  engine,
		Worker:  -1,
		Iter:    int32(chunks),
		Updated: lines,
		Edges:   totalBytes,
		Items:   totalBytes,
		Active:  parseWallNs,
		BusyNs:  busy,
		WallNs:  wallNs,
	})
}

// offsetLineReader reads lines while tracking the count of consumed bytes,
// so the prologue scan can report the exact offset where data begins.
type offsetLineReader struct {
	br  *bufio.Reader
	off int64
	buf []byte
}

func newOffsetLineReader(r io.Reader) (*offsetLineReader, error) {
	return &offsetLineReader{br: bufio.NewReaderSize(r, 1<<16)}, nil
}

// line returns the next raw line without its terminator, advancing off
// past it (terminator included). io.EOF is returned only with no bytes
// consumed.
func (r *offsetLineReader) line() ([]byte, error) {
	r.buf = r.buf[:0]
	for {
		chunk, err := r.br.ReadSlice('\n')
		r.off += int64(len(chunk))
		if err == bufio.ErrBufferFull {
			r.buf = append(r.buf, chunk...)
			if len(r.buf) > maxLineBytes {
				return nil, bufio.ErrTooLong
			}
			continue
		}
		line := chunk
		if len(r.buf) > 0 {
			r.buf = append(r.buf, chunk...)
			line = r.buf
		}
		if len(line) > maxLineBytes {
			return nil, bufio.ErrTooLong
		}
		if err != nil {
			if err == io.EOF && len(line) > 0 {
				return line, nil
			}
			return nil, err
		}
		line = line[:len(line)-1] // strip '\n'
		if n := len(line); n > 0 && line[n-1] == '\r' {
			line = line[:n-1]
		}
		return line, nil
	}
}

// prologue consumes the header line and the dimension line (skipping
// comments and blanks), mirroring newLineParser.
func (r *offsetLineReader) prologue() (header string, dims [3]int, err error) {
	hline, err := r.line()
	if err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return "", dims, err
	}
	header = string(bytes.TrimSpace(hline))
	for {
		raw, err := r.line()
		if err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return "", dims, err
		}
		line := trimLine(raw)
		if len(line) == 0 || line[0] == '%' {
			continue
		}
		var fields [3][]byte
		n := 0
		rest := line
		for n < 3 {
			var f []byte
			f, rest = nextField(rest)
			if len(f) == 0 {
				break
			}
			fields[n] = f
			n++
		}
		if extra, _ := nextField(rest); n != 3 || len(extra) != 0 {
			return "", dims, fmt.Errorf("dimension line has wrong field count, want 3")
		}
		for i := 0; i < 3; i++ {
			v, err := parseID(fields[i])
			if err != nil {
				return "", dims, fmt.Errorf("dimension %q: %w", fields[i], err)
			}
			dims[i] = v
		}
		return header, dims, nil
	}
}

// nextData returns the next data line, skipping comments and blanks.
func (r *offsetLineReader) nextData() ([]byte, error) {
	for {
		raw, err := r.line()
		if err != nil {
			return nil, err
		}
		line := trimLine(raw)
		if len(line) == 0 || line[0] == '%' {
			continue
		}
		return line, nil
	}
}

// chunkBoundaries splits the byte range [start, end) of f into up to n
// ranges whose boundaries sit immediately after a newline, so every line
// belongs to exactly one chunk. Returned as an ascending offset list
// b[0]=start … b[len-1]=end describing len-1 chunks.
func chunkBoundaries(f *os.File, start, end int64, n int) ([]int64, error) {
	bounds := []int64{start}
	if size := end - start; int64(n) > size/minChunkBytes {
		n = int(size / minChunkBytes)
	}
	if n < 1 {
		n = 1
	}
	target := (end - start) / int64(n)
	for k := 1; k < n; k++ {
		pos := start + int64(k)*target
		if pos <= bounds[len(bounds)-1] {
			continue
		}
		aligned, err := alignToLine(f, pos, end)
		if err != nil {
			return nil, err
		}
		if aligned >= end {
			break
		}
		if aligned > bounds[len(bounds)-1] {
			bounds = append(bounds, aligned)
		}
	}
	return append(bounds, end), nil
}

// alignToLine returns the offset of the first byte after the next '\n' at
// or after pos, or end when the range holds no further newline.
func alignToLine(f *os.File, pos, end int64) (int64, error) {
	buf := make([]byte, 32<<10)
	scanned := int64(0)
	for pos < end {
		n := int64(len(buf))
		if end-pos < n {
			n = end - pos
		}
		m, err := f.ReadAt(buf[:n], pos)
		if m == 0 && err != nil {
			if err == io.EOF {
				return end, nil
			}
			return 0, err
		}
		if i := bytes.IndexByte(buf[:m], '\n'); i >= 0 {
			return pos + int64(i) + 1, nil
		}
		pos += int64(m)
		scanned += int64(m)
		if scanned > maxLineBytes {
			return 0, bufio.ErrTooLong
		}
	}
	return end, nil
}

// chunkScanner wraps a section of f in a line scanner with the package's
// line-size cap.
func chunkScanner(f *os.File, off, end int64) *bufio.Scanner {
	sc := bufio.NewScanner(io.NewSectionReader(f, off, end-off))
	sc.Buffer(make([]byte, 64*1024), maxLineBytes)
	return sc
}

// nodeChunk is one parsed node byte range.
type nodeChunk struct {
	priors  []float32 // raw (un-normalized) parsed rows, states apart
	count   int
	firstID int
	busyNs  int64
	err     error
}

// parseNodesParallel fans the node data region out to the worker pool and
// stitches the chunks into b in file order.
func parseNodesParallel(f *os.File, dataOff int64, b *graph.Builder, numNodes, states, workers int, probe telemetry.Probe) error {
	fi, err := f.Stat()
	if err != nil {
		return err
	}
	end := fi.Size()
	bounds, err := chunkBoundaries(f, dataOff, end, workers)
	if err != nil {
		return fmt.Errorf("mtxbp: node file: %w", err)
	}
	phaseStart := time.Now()
	chunks := make([]nodeChunk, len(bounds)-1)
	var wg sync.WaitGroup
	for i := range chunks {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			parseNodeChunk(f, bounds[i], bounds[i+1], states, &chunks[i])
		}(i)
	}
	wg.Wait()
	parseWall := time.Since(phaseStart).Nanoseconds()

	total := 0
	for i := range chunks {
		c := &chunks[i]
		if c.err != nil {
			return fmt.Errorf("mtxbp: node file: %w", c.err)
		}
		if c.count == 0 {
			continue
		}
		if c.firstID != total+1 {
			return fmt.Errorf("mtxbp: node file: node id %d out of order (want %d)", c.firstID, total+1)
		}
		total += c.count
	}
	switch {
	case total < numNodes:
		return fmt.Errorf("mtxbp: node file: %d nodes present, %d declared: %w", total, numNodes, io.ErrUnexpectedEOF)
	case total > numNodes:
		return fmt.Errorf("mtxbp: node file: trailing data after %d declared nodes", numNodes)
	}

	// Stitch: one reservation, then concurrent installs of disjoint
	// blocks (SetPriorBlock also normalizes, so that cost parallelizes).
	b.ReserveNodes(numNodes)
	installStart := time.Now()
	errs := make([]error, len(chunks))
	start := int32(0)
	for i := range chunks {
		c := &chunks[i]
		if c.count == 0 {
			continue
		}
		wg.Add(1)
		go func(i int, at int32) {
			defer wg.Done()
			errs[i] = b.SetPriorBlock(at, chunks[i].priors)
		}(i, start)
		start += int32(c.count)
	}
	wg.Wait()
	parseWall += time.Since(installStart).Nanoseconds()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	if probe != nil {
		stats := make([]chunkStat, len(chunks))
		for i := range chunks {
			stats[i] = chunkStat{lines: int64(chunks[i].count), bytes: bounds[i+1] - bounds[i], busyNs: chunks[i].busyNs}
		}
		emitIngestPhase(probe, "ingest.nodes", len(chunks), int64(total), end-dataOff, time.Since(phaseStart).Nanoseconds(), parseWall, stats)
	}
	return nil
}

func parseNodeChunk(f *os.File, off, end int64, states int, c *nodeChunk) {
	begin := time.Now()
	defer func() { c.busyNs = time.Since(begin).Nanoseconds() }()
	sc := chunkScanner(f, off, end)
	scratch := make([]float32, 0, states)
	for sc.Scan() {
		line := trimLine(sc.Bytes())
		if len(line) == 0 || line[0] == '%' {
			continue
		}
		id1, id2, probs, err := parseEntry(line, scratch)
		if err != nil {
			c.err = err
			return
		}
		if id1 != id2 {
			c.err = fmt.Errorf("node %d: identifiers %d/%d differ", id1, id1, id2)
			return
		}
		if len(probs) != states {
			c.err = fmt.Errorf("node %d: %d probabilities, want %d", id1, len(probs), states)
			return
		}
		if c.count == 0 {
			c.firstID = id1
		} else if id1 != c.firstID+c.count {
			c.err = fmt.Errorf("node id %d out of order (want %d)", id1, c.firstID+c.count)
			return
		}
		c.priors = append(c.priors, probs...)
		c.count++
	}
	c.err = sc.Err()
}

// edgeChunk is one parsed edge byte range. In per-edge-matrix mode the
// matrices live in one arena, states*states values per edge.
type edgeChunk struct {
	src, dst []int32
	matData  []float32
	busyNs   int64
	err      error
}

// parseEdgesParallel fans the edge data region out to the worker pool and
// stitches the chunks into b in file order at prefix-sum offsets.
func parseEdgesParallel(f *os.File, dataOff int64, b *graph.Builder, numNodes, numEdges, states int, shared bool, workers int, probe telemetry.Probe) error {
	fi, err := f.Stat()
	if err != nil {
		return err
	}
	end := fi.Size()
	bounds, err := chunkBoundaries(f, dataOff, end, workers)
	if err != nil {
		return fmt.Errorf("mtxbp: edge file: %w", err)
	}
	phaseStart := time.Now()
	chunks := make([]edgeChunk, len(bounds)-1)
	var wg sync.WaitGroup
	for i := range chunks {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			parseEdgeChunk(f, bounds[i], bounds[i+1], numNodes, states, shared, &chunks[i])
		}(i)
	}
	wg.Wait()
	parseWall := time.Since(phaseStart).Nanoseconds()

	total := 0
	for i := range chunks {
		c := &chunks[i]
		if c.err != nil {
			return fmt.Errorf("mtxbp: edge file: %w", c.err)
		}
		total += len(c.src)
	}
	switch {
	case total < numEdges:
		return fmt.Errorf("mtxbp: edge file: %d edges present, %d declared: %w", total, numEdges, io.ErrUnexpectedEOF)
	case total > numEdges:
		return fmt.Errorf("mtxbp: edge file: trailing data after %d declared edges", numEdges)
	}

	// Stitch at prefix-sum offsets, concurrently per chunk.
	b.ReserveEdges(numEdges)
	installStart := time.Now()
	errs := make([]error, len(chunks))
	start := 0
	ss := states * states
	for i := range chunks {
		c := &chunks[i]
		if len(c.src) == 0 {
			continue
		}
		wg.Add(1)
		go func(i, at int) {
			defer wg.Done()
			c := &chunks[i]
			var mats []graph.JointMatrix
			if !shared {
				mats = make([]graph.JointMatrix, len(c.src))
				for e := range mats {
					mats[e] = graph.JointMatrix{Rows: uint32(states), Cols: uint32(states), Data: c.matData[e*ss : (e+1)*ss]}
				}
			}
			errs[i] = b.SetEdgeBlock(at, c.src, c.dst, mats)
		}(i, start)
		start += len(c.src)
	}
	wg.Wait()
	parseWall += time.Since(installStart).Nanoseconds()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	if probe != nil {
		stats := make([]chunkStat, len(chunks))
		for i := range chunks {
			stats[i] = chunkStat{lines: int64(len(chunks[i].src)), bytes: bounds[i+1] - bounds[i], busyNs: chunks[i].busyNs}
		}
		emitIngestPhase(probe, "ingest.edges", len(chunks), int64(total), end-dataOff, time.Since(phaseStart).Nanoseconds(), parseWall, stats)
	}
	return nil
}

func parseEdgeChunk(f *os.File, off, end int64, numNodes, states int, shared bool, c *edgeChunk) {
	begin := time.Now()
	defer func() { c.busyNs = time.Since(begin).Nanoseconds() }()
	sc := chunkScanner(f, off, end)
	ss := states * states
	scratch := make([]float32, 0, ss)
	for sc.Scan() {
		line := trimLine(sc.Bytes())
		if len(line) == 0 || line[0] == '%' {
			continue
		}
		src, dst, probs, err := parseEntry(line, scratch)
		if err != nil {
			c.err = err
			return
		}
		if src < 1 || src > numNodes || dst < 1 || dst > numNodes {
			c.err = fmt.Errorf("endpoints (%d,%d) out of range", src, dst)
			return
		}
		if shared {
			if len(probs) != 0 {
				c.err = fmt.Errorf("edge (%d,%d): matrix data in shared mode", src, dst)
				return
			}
		} else {
			if len(probs) != ss {
				c.err = fmt.Errorf("edge (%d,%d): %d matrix entries, want %d", src, dst, len(probs), ss)
				return
			}
			m := graph.JointMatrix{Rows: uint32(states), Cols: uint32(states), Data: probs}
			if err := m.Validate(); err != nil {
				c.err = fmt.Errorf("edge (%d,%d): %w", src, dst, err)
				return
			}
			c.matData = append(c.matData, probs...)
		}
		c.src = append(c.src, int32(src-1))
		c.dst = append(c.dst, int32(dst-1))
	}
	c.err = sc.Err()
}
