package mtxbp

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"credo/internal/graph"
)

// StreamWriter emits the mtxbp format incrementally — node by node, edge
// by edge — without ever materializing a graph.Graph. It is how the
// generators produce benchmark files larger than memory, the counterpart
// of the parser's line-by-line reading (§3.2: the format exists precisely
// so that neither side ever holds the whole network).
//
// Usage: NewStreamWriter, then exactly numNodes WriteNode calls, then
// exactly numEdges WriteEdge calls, then Close.
type StreamWriter struct {
	nodes, edges *bufio.Writer
	states       int
	numNodes     int
	numEdges     int
	shared       bool

	nodesWritten int
	edgesWritten int
	sb           strings.Builder
}

// NewStreamWriter starts a streaming serialization. A non-nil shared
// matrix selects the §2.2 shared-matrix layout, in which WriteEdge must be
// called with a nil matrix.
func NewStreamWriter(nodeW, edgeW io.Writer, numNodes, numEdges, states int, shared *graph.JointMatrix) (*StreamWriter, error) {
	if states <= 0 || states > graph.MaxStates {
		return nil, fmt.Errorf("mtxbp: stream: states %d out of range [1,%d]", states, graph.MaxStates)
	}
	if numNodes < 0 || numEdges < 0 {
		return nil, fmt.Errorf("mtxbp: stream: negative dimensions %d/%d", numNodes, numEdges)
	}
	w := &StreamWriter{
		nodes:    bufio.NewWriterSize(nodeW, 1<<20),
		edges:    bufio.NewWriterSize(edgeW, 1<<20),
		states:   states,
		numNodes: numNodes,
		numEdges: numEdges,
		shared:   shared != nil,
	}
	fmt.Fprintf(w.nodes, "%s\n%d %d %d\n", nodeHeader, numNodes, numNodes, states)
	header := edgeHeader
	if w.shared {
		header = edgeHeaderShared
	}
	fmt.Fprintf(w.edges, "%s\n%d %d %d\n", header, numNodes, numNodes, numEdges)
	if w.shared {
		if int(shared.Rows) != states || int(shared.Cols) != states {
			return nil, fmt.Errorf("mtxbp: stream: shared matrix %dx%d, want %dx%d", shared.Rows, shared.Cols, states, states)
		}
		w.sb.Reset()
		w.sb.WriteString("0 0")
		appendProbs(&w.sb, shared.Data)
		w.sb.WriteByte('\n')
		if _, err := w.edges.WriteString(w.sb.String()); err != nil {
			return nil, err
		}
	}
	return w, nil
}

// WriteNode appends the next node's prior distribution (ids are assigned
// sequentially from 1, matching the format's ordering requirement).
func (w *StreamWriter) WriteNode(prior []float32) error {
	if w.nodesWritten >= w.numNodes {
		return fmt.Errorf("mtxbp: stream: more than the declared %d nodes", w.numNodes)
	}
	if len(prior) != w.states {
		return fmt.Errorf("mtxbp: stream: prior has %d states, want %d", len(prior), w.states)
	}
	w.nodesWritten++
	id := strconv.Itoa(w.nodesWritten)
	w.sb.Reset()
	w.sb.WriteString(id)
	w.sb.WriteByte(' ')
	w.sb.WriteString(id)
	appendProbs(&w.sb, prior)
	w.sb.WriteByte('\n')
	_, err := w.nodes.WriteString(w.sb.String())
	return err
}

// WriteEdge appends a directed edge with 0-based endpoints. mat must be
// nil in shared mode and a states x states matrix otherwise.
func (w *StreamWriter) WriteEdge(src, dst int32, mat *graph.JointMatrix) error {
	if w.edgesWritten >= w.numEdges {
		return fmt.Errorf("mtxbp: stream: more than the declared %d edges", w.numEdges)
	}
	if src < 0 || int(src) >= w.numNodes || dst < 0 || int(dst) >= w.numNodes {
		return fmt.Errorf("mtxbp: stream: edge (%d,%d) out of range", src, dst)
	}
	if w.shared != (mat == nil) {
		return fmt.Errorf("mtxbp: stream: matrix presence inconsistent with shared mode")
	}
	w.edgesWritten++
	w.sb.Reset()
	w.sb.WriteString(strconv.Itoa(int(src) + 1))
	w.sb.WriteByte(' ')
	w.sb.WriteString(strconv.Itoa(int(dst) + 1))
	if mat != nil {
		if int(mat.Rows) != w.states || int(mat.Cols) != w.states {
			return fmt.Errorf("mtxbp: stream: edge matrix %dx%d, want %dx%d", mat.Rows, mat.Cols, w.states, w.states)
		}
		appendProbs(&w.sb, mat.Data)
	}
	w.sb.WriteByte('\n')
	_, err := w.edges.WriteString(w.sb.String())
	return err
}

// Close flushes both streams and verifies the declared counts were met.
func (w *StreamWriter) Close() error {
	if w.nodesWritten != w.numNodes {
		return fmt.Errorf("mtxbp: stream: wrote %d of %d declared nodes", w.nodesWritten, w.numNodes)
	}
	if w.edgesWritten != w.numEdges {
		return fmt.Errorf("mtxbp: stream: wrote %d of %d declared edges", w.edgesWritten, w.numEdges)
	}
	if err := w.nodes.Flush(); err != nil {
		return err
	}
	return w.edges.Flush()
}
