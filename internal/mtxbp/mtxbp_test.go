package mtxbp

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"credo/internal/gen"
	"credo/internal/graph"
)

func roundTrip(t *testing.T, g *graph.Graph) *graph.Graph {
	t.Helper()
	var nodeBuf, edgeBuf bytes.Buffer
	if err := Write(&nodeBuf, &edgeBuf, g); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&nodeBuf, &edgeBuf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	return got
}

func TestRoundTripPerEdge(t *testing.T) {
	g, err := gen.Synthetic(40, 160, gen.Config{Seed: 1, States: 3})
	if err != nil {
		t.Fatal(err)
	}
	got := roundTrip(t, g)
	if got.NumNodes != g.NumNodes || got.NumEdges != g.NumEdges || got.States != g.States {
		t.Fatalf("shape mismatch: %d/%d/%d", got.NumNodes, got.NumEdges, got.States)
	}
	for i := range g.Priors {
		if diff := g.Priors[i] - got.Priors[i]; diff > 1e-5 || diff < -1e-5 {
			t.Fatalf("prior %d: %v != %v", i, g.Priors[i], got.Priors[i])
		}
	}
	for e := 0; e < g.NumEdges; e++ {
		if g.EdgeSrc[e] != got.EdgeSrc[e] || g.EdgeDst[e] != got.EdgeDst[e] {
			t.Fatalf("edge %d endpoints differ", e)
		}
		a, b := g.Matrix(int32(e)), got.Matrix(int32(e))
		for i := range a.Data {
			if diff := a.Data[i] - b.Data[i]; diff > 1e-5 || diff < -1e-5 {
				t.Fatalf("edge %d matrix entry %d: %v != %v", e, i, a.Data[i], b.Data[i])
			}
		}
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestRoundTripShared(t *testing.T) {
	g, err := gen.Synthetic(30, 120, gen.Config{Seed: 2, States: 4, Shared: true})
	if err != nil {
		t.Fatal(err)
	}
	got := roundTrip(t, g)
	if !got.SharedMatrix() {
		t.Fatal("shared mode lost in round trip")
	}
	for i := range g.Shared.Data {
		if diff := g.Shared.Data[i] - got.Shared.Data[i]; diff > 1e-5 || diff < -1e-5 {
			t.Fatalf("shared matrix entry %d differs", i)
		}
	}
}

func TestReadWriteFiles(t *testing.T) {
	dir := t.TempDir()
	np := filepath.Join(dir, "g.nodes.mtx")
	ep := filepath.Join(dir, "g.edges.mtx")
	g, err := gen.Synthetic(25, 100, gen.Config{Seed: 3, States: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFiles(np, ep, g); err != nil {
		t.Fatalf("WriteFiles: %v", err)
	}
	got, err := ReadFiles(np, ep)
	if err != nil {
		t.Fatalf("ReadFiles: %v", err)
	}
	if got.NumNodes != 25 || got.NumEdges != 100 {
		t.Fatalf("got %d/%d", got.NumNodes, got.NumEdges)
	}
}

func TestReadCommentsAndBlankLines(t *testing.T) {
	nodes := `%%MatrixMarket credo node beliefs
% a comment

2 2 2
1 1 0.5 0.5
% interleaved comment
2 2 0.25 0.75
`
	edges := `%%MatrixMarket credo edge joint
2 2 1
1 2 0.9 0.1 0.2 0.8
`
	g, err := Read(strings.NewReader(nodes), strings.NewReader(edges))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if g.Belief(1)[1] != 0.75 {
		t.Errorf("node 2 prior = %v", g.Belief(1))
	}
	if g.Matrix(0).At(0, 0) != 0.9 {
		t.Errorf("matrix (0,0) = %v", g.Matrix(0).At(0, 0))
	}
}

func TestReadErrors(t *testing.T) {
	nodesOK := "%%MatrixMarket credo node beliefs\n2 2 2\n1 1 0.5 0.5\n2 2 0.5 0.5\n"
	cases := []struct {
		name, nodes, edges string
	}{
		{"bad node header", "%%wrong\n2 2 2\n1 1 0.5 0.5\n2 2 0.5 0.5\n", "%%MatrixMarket credo edge joint\n2 2 0\n"},
		{"bad edge header", nodesOK, "%%wrong\n2 2 0\n"},
		{"node count mismatch in edge file", nodesOK, "%%MatrixMarket credo edge joint\n3 3 0\n"},
		{"states out of range", "%%MatrixMarket credo node beliefs\n1 1 99\n", "%%MatrixMarket credo edge joint\n1 1 0\n"},
		{"self-identifier mismatch", "%%MatrixMarket credo node beliefs\n1 1 2\n1 2 0.5 0.5\n", "%%MatrixMarket credo edge joint\n1 1 0\n"},
		{"wrong probability count", "%%MatrixMarket credo node beliefs\n1 1 2\n1 1 0.5\n", "%%MatrixMarket credo edge joint\n1 1 0\n"},
		{"negative prior", "%%MatrixMarket credo node beliefs\n1 1 2\n1 1 -0.5 1.5\n", "%%MatrixMarket credo edge joint\n1 1 0\n"},
		{"NaN prior", "%%MatrixMarket credo node beliefs\n1 1 2\n1 1 NaN 0.5\n", "%%MatrixMarket credo edge joint\n1 1 0\n"},
		{"edge endpoint out of range", nodesOK, "%%MatrixMarket credo edge joint\n2 2 1\n1 9 0.9 0.1 0.2 0.8\n"},
		{"edge matrix truncated", nodesOK, "%%MatrixMarket credo edge joint\n2 2 1\n1 2 0.9 0.1\n"},
		{"edge matrix not stochastic", nodesOK, "%%MatrixMarket credo edge joint\n2 2 1\n1 2 0.9 0.9 0.2 0.8\n"},
		{"missing shared matrix line", nodesOK, "%%MatrixMarket credo edge joint shared\n2 2 1\n1 2\n"},
		{"trailing edges", nodesOK, "%%MatrixMarket credo edge joint\n2 2 0\n1 2 0.9 0.1 0.2 0.8\n"},
		{"truncated node file", "%%MatrixMarket credo node beliefs\n2 2 2\n1 1 0.5 0.5\n", "%%MatrixMarket credo edge joint\n2 2 0\n"},
		{"garbage probability", "%%MatrixMarket credo node beliefs\n1 1 2\n1 1 zz 0.5\n", "%%MatrixMarket credo edge joint\n1 1 0\n"},
		{"empty node file", "", "%%MatrixMarket credo edge joint\n1 1 0\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Read(strings.NewReader(tc.nodes), strings.NewReader(tc.edges)); err == nil {
				t.Errorf("Read accepted malformed input")
			}
		})
	}
}

func TestReadSharedWithoutMatrixData(t *testing.T) {
	nodes := "%%MatrixMarket credo node beliefs\n2 2 2\n1 1 0.5 0.5\n2 2 0.5 0.5\n"
	edges := "%%MatrixMarket credo edge joint shared\n2 2 2\n0 0 0.8 0.2 0.3 0.7\n1 2\n2 1\n"
	g, err := Read(strings.NewReader(nodes), strings.NewReader(edges))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !g.SharedMatrix() || g.NumEdges != 2 {
		t.Fatalf("shared graph mis-parsed: shared=%v edges=%d", g.SharedMatrix(), g.NumEdges)
	}
}

func TestGzipRoundTrip(t *testing.T) {
	dir := t.TempDir()
	np := filepath.Join(dir, "g.nodes.mtx.gz")
	ep := filepath.Join(dir, "g.edges.mtx.gz")
	g, err := gen.Synthetic(200, 800, gen.Config{Seed: 9, States: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFiles(np, ep, g); err != nil {
		t.Fatalf("WriteFiles: %v", err)
	}
	got, err := ReadFiles(np, ep)
	if err != nil {
		t.Fatalf("ReadFiles: %v", err)
	}
	if got.NumNodes != 200 || got.NumEdges != 800 {
		t.Fatalf("shape %d/%d", got.NumNodes, got.NumEdges)
	}
	// The compressed files must be materially smaller than plain text.
	plainN := filepath.Join(dir, "p.nodes.mtx")
	plainE := filepath.Join(dir, "p.edges.mtx")
	if err := WriteFiles(plainN, plainE, g); err != nil {
		t.Fatal(err)
	}
	gzSize := fileSize(t, np) + fileSize(t, ep)
	plainSize := fileSize(t, plainN) + fileSize(t, plainE)
	if gzSize*2 >= plainSize {
		t.Errorf("gzip %d bytes not < half of plain %d", gzSize, plainSize)
	}
	// A corrupt gzip stream is rejected.
	if err := os.WriteFile(np, []byte("not gzip"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFiles(np, ep); err == nil {
		t.Error("corrupt gzip accepted")
	}
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}
