package bench

import (
	"fmt"
	"io"
	"time"

	"credo/internal/bp"
	"credo/internal/cudabp"
	"credo/internal/gpusim"
	"credo/internal/graph"
	"credo/internal/perfmodel"
	"credo/internal/poolbp"
	"credo/internal/relaxbp"
)

// implRunner executes one implementation on a graph and returns its
// modelled time at the graph's own size (no extrapolation).
type implRunner func(g *graph.Graph, cfg Config) (time.Duration, error)

func cEdgeRunner(g *graph.Graph, cfg Config) (time.Duration, error) {
	res := bp.RunEdge(g, cfg.Options)
	return cfg.CPU.SequentialTime(res.Ops), nil
}

func cNodeRunner(g *graph.Graph, cfg Config) (time.Duration, error) {
	res := bp.RunNode(g, cfg.Options)
	return cfg.CPU.SequentialTime(res.Ops), nil
}

func cudaEdgeRunner(g *graph.Graph, cfg Config) (time.Duration, error) {
	dev := gpusim.NewDevice(cfg.GPU)
	res, err := cudabp.RunEdge(g, dev, cudabp.Options{Options: cfg.Options})
	if err != nil {
		return 0, err
	}
	return res.SimTime, nil
}

func cudaNodeRunner(g *graph.Graph, cfg Config) (time.Duration, error) {
	dev := gpusim.NewDevice(cfg.GPU)
	res, err := cudabp.RunNode(g, dev, cudabp.Options{Options: cfg.Options})
	if err != nil {
		return 0, err
	}
	return res.SimTime, nil
}

func poolEdgeRunner(g *graph.Graph, cfg Config) (time.Duration, error) {
	res := poolbp.RunEdge(g, poolbp.Options{Options: cfg.Options, Workers: cfg.PoolWorkers})
	return cfg.CPU.PoolTime(res.Ops, perfmodel.PoolOptions{Workers: cfg.PoolWorkers}), nil
}

func poolNodeRunner(g *graph.Graph, cfg Config) (time.Duration, error) {
	res := poolbp.RunNode(g, poolbp.Options{Options: cfg.Options, Workers: cfg.PoolWorkers})
	return cfg.CPU.PoolTime(res.Ops, perfmodel.PoolOptions{Workers: cfg.PoolWorkers}), nil
}

func relaxRunner(g *graph.Graph, cfg Config) (time.Duration, error) {
	res := relaxbp.Run(g, relaxbp.Options{Options: cfg.Options, Workers: cfg.PoolWorkers, Seed: cfg.Seed})
	return cfg.CPU.RelaxTime(res.Ops, perfmodel.RelaxOptions{Workers: cfg.PoolWorkers}), nil
}

// Scaled runner variants extrapolate the run to r times the executed size
// (the full-scale modelled time of the dataset machinery).
func cEdgeScaledRunner(r float64) implRunner {
	return func(g *graph.Graph, cfg Config) (time.Duration, error) {
		res := bp.RunEdge(g, cfg.Options)
		return cfg.CPU.SequentialTime(scaleOps(res.Ops, r)), nil
	}
}

func cudaEdgeScaledRunner(r float64) implRunner {
	return func(g *graph.Graph, cfg Config) (time.Duration, error) {
		dev := gpusim.NewDevice(cfg.GPU)
		if _, err := cudabp.RunEdge(g, dev, cudabp.Options{Options: cfg.Options}); err != nil {
			return 0, err
		}
		return scaleDeviceTime(dev.Stats(), cfg.GPU, r), nil
	}
}

func cudaNodeScaledRunner(r float64) implRunner {
	return func(g *graph.Graph, cfg Config) (time.Duration, error) {
		dev := gpusim.NewDevice(cfg.GPU)
		if _, err := cudabp.RunNode(g, dev, cudabp.Options{Options: cfg.Options}); err != nil {
			return 0, err
		}
		return scaleDeviceTime(dev.Stats(), cfg.GPU, r), nil
	}
}

// RunOpenMP reproduces §2.4: the OpenMP port's slowdowns at 2/4/8 threads
// (with and without hyperthreading) and the OpenACC port's behaviour
// against the CUDA baseline.
func RunOpenMP(w io.Writer, cfg Config) error {
	fmt.Fprintf(w, "§2.4 — OpenMP parallelization (tier %s, binary beliefs)\n", cfg.Tier.Name)
	fmt.Fprintf(w, "%-12s %12s %10s %10s %10s | %10s %10s\n",
		"graph", "sequential", "2 thr", "4 thr", "8 thr", "2 noHT", "4 noHT")
	slow := map[int][]float64{2: nil, 4: nil, 8: nil}
	for _, s := range boldSubset(sortedBySize(Table1())) {
		g, err := s.Generate(2, cfg.Tier, cfg.Seed)
		if err != nil {
			return err
		}
		res := bp.RunEdge(g.Clone(), cfg.Options)
		seq := cfg.CPU.SequentialTime(res.Ops)
		row := fmt.Sprintf("%-12s %12s", s.Abbrev, fmtDur(seq))
		for _, threads := range []int{2, 4, 8} {
			par := cfg.CPU.ParallelTime(res.Ops, perfmodel.ParallelOptions{Threads: threads})
			slowdown := ratio(par, seq)
			slow[threads] = append(slow[threads], slowdown)
			row += fmt.Sprintf(" %10s", fmtRatio(slowdown))
		}
		row += " |"
		for _, threads := range []int{2, 4} {
			par := cfg.CPU.ParallelTime(res.Ops, perfmodel.ParallelOptions{Threads: threads, HyperthreadingOff: true})
			row += fmt.Sprintf(" %10s", fmtRatio(ratio(par, seq)))
		}
		fmt.Fprintln(w, row)
	}
	fmt.Fprintf(w, "geo-mean slowdowns: 2 thr %s, 4 thr %s, 8 thr %s\n",
		fmtRatio(geoMean(slow[2])), fmtRatio(geoMean(slow[4])), fmtRatio(geoMean(slow[8])))
	fmt.Fprintln(w, "(paper: 1.17x at 2, 1.65x at 4, 4.03x at 8; 1.1x/1.2x with HT off)")

	// OpenACC against CUDA and C on mid-size graphs, extrapolated to the
	// benchmarks' full scale.
	fmt.Fprintf(w, "\n§2.4 — OpenACC vs CUDA (edge paradigm, full-scale modelled times)\n")
	fmt.Fprintf(w, "%-12s %12s %12s %14s %12s %10s %10s\n",
		"graph", "C Edge", "CUDA Edge", "ACC default", "ACC batched", "ACC iters", "CUDA iters")
	for _, abbrev := range []string{"100kx400k", "2Mx8M", "K21"} {
		spec, ok := specByAbbrev(abbrev)
		if !ok {
			continue
		}
		g, err := spec.Generate(2, cfg.Tier, cfg.Seed)
		if err != nil {
			return err
		}
		r := spec.ScaleFactor(cfg.Tier)
		cTime, err := cEdgeScaledRunner(r)(g.Clone(), cfg)
		if err != nil {
			return err
		}
		cuDev := gpusim.NewDevice(cfg.GPU)
		cuRes, err := cudabp.RunEdge(g.Clone(), cuDev, cudabp.Options{Options: cfg.Options})
		if err != nil {
			return err
		}
		cuTime := scaleDeviceTime(cuDev.Stats(), cfg.GPU, r)
		accDev := gpusim.NewDevice(cfg.GPU)
		accRes, err := cudabp.RunOpenACCEdge(g.Clone(), accDev, cudabp.OpenACCOptions{Options: cudabp.Options{Options: cfg.Options}})
		if err != nil {
			return err
		}
		accTime := scaleDeviceTime(accDev.Stats(), cfg.GPU, r)
		accDev2 := gpusim.NewDevice(cfg.GPU)
		_, err = cudabp.RunOpenACCEdge(g.Clone(), accDev2, cudabp.OpenACCOptions{
			Options:        cudabp.Options{Options: cfg.Options},
			BatchTransfers: true,
		})
		if err != nil {
			return err
		}
		accTime2 := scaleDeviceTime(accDev2.Stats(), cfg.GPU, r)
		fmt.Fprintf(w, "%-12s %12s %12s %14s %12s %10d %10d\n",
			spec.Abbrev, fmtDur(cTime), fmtDur(cuTime), fmtDur(accTime), fmtDur(accTime2),
			accRes.Iterations, cuRes.Iterations)
	}
	fmt.Fprintln(w, "(paper: OpenACC at best 1.25x over C on K21, overruns iterations due to imprecise convergence)")
	return nil
}

func specByAbbrev(abbrev string) (GraphSpec, bool) {
	for _, s := range Table1() {
		if s.Abbrev == abbrev {
			return s, true
		}
	}
	return GraphSpec{}, false
}
